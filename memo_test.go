package compreuse

// Concurrency tests for the Go-facing reuse runtime: run with -race.
// These cover the sharded Memo/Memo2 wrappers (singleflight duplicate
// suppression, atomic stats) and the sharded MemoTable (parallel lookups
// and stores with eviction churn, race-free Stats).

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// TestMemoSingleflight asserts f runs exactly once per distinct in-flight
// key: ten goroutines request the same key while the leader's computation
// is blocked, so nine of them must join it rather than recompute.
func TestMemoSingleflight(t *testing.T) {
	var invocations atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	f, stats := Memo(func(x int) int {
		if invocations.Add(1) == 1 {
			close(started)
		}
		<-release
		return x * 2
	})

	const callers = 10
	var wg sync.WaitGroup
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func() {
			defer wg.Done()
			if got := f(21); got != 42 {
				t.Errorf("f(21) = %d", got)
			}
		}()
	}
	<-started // the leader is inside f
	close(release)
	wg.Wait()

	if n := invocations.Load(); n != 1 {
		t.Fatalf("f invoked %d times for one key, want 1 (singleflight)", n)
	}
	st := stats.Snapshot()
	if st.Calls != callers || st.Distinct != 1 || st.Hits != callers-1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestMemoSingleflightDistinctKeys checks dedup is per key: concurrent
// callers with different keys still each compute their own value once.
func TestMemoSingleflightDistinctKeys(t *testing.T) {
	var invocations atomic.Int64
	release := make(chan struct{})
	var started sync.WaitGroup
	const keys = 4
	started.Add(keys)
	f, stats := Memo(func(x int) int {
		invocations.Add(1)
		started.Done()
		<-release
		return -x
	})
	var wg sync.WaitGroup
	for k := 0; k < keys; k++ {
		for dup := 0; dup < 3; dup++ {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				if got := f(k); got != -k {
					t.Errorf("f(%d) = %d", k, got)
				}
			}(k)
		}
	}
	started.Wait() // one leader per key is inside f
	close(release)
	wg.Wait()
	if n := invocations.Load(); n != keys {
		t.Fatalf("f invoked %d times, want %d (once per distinct key)", n, keys)
	}
	if st := stats.Snapshot(); st.Distinct != keys || st.Calls != 3*keys {
		t.Fatalf("stats: %+v", st)
	}
}

// TestMemoParallelSnapshot hammers a memoized function from many
// goroutines while others read the stats through Snapshot; under -race
// this is the stats-visibility regression test (the old runtime's bare
// field reads raced with the wrapper's mutations).
func TestMemoParallelSnapshot(t *testing.T) {
	f, stats := Memo(func(x int) int { return x * x })
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					st := stats.Snapshot()
					if st.Hits > st.Calls || st.Distinct > st.Calls {
						t.Error("impossible snapshot")
						return
					}
					_ = st.HitRatio()
					_ = st.ReuseRate()
				}
			}
		}()
	}
	const workers, ops, keys = 8, 5000, 97
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < ops; i++ {
				x := rng.Intn(keys)
				if f(x) != x*x {
					t.Error("wrong value")
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	st := stats.Snapshot()
	if st.Calls != workers*ops {
		t.Fatalf("calls = %d, want %d", st.Calls, workers*ops)
	}
	if st.Distinct != keys {
		t.Fatalf("distinct = %d, want %d", st.Distinct, keys)
	}
	if st.Hits != st.Calls-keys {
		t.Fatalf("hits = %d, want %d", st.Hits, st.Calls-keys)
	}
}

func TestMemo2Parallel(t *testing.T) {
	f, stats := Memo2(func(a, b int) int { return a*1000 + b })
	var wg sync.WaitGroup
	const workers, ops = 8, 2000
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < ops; i++ {
				a, b := rng.Intn(10), rng.Intn(10)
				if f(a, b) != a*1000+b {
					t.Error("wrong value")
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	st := stats.Snapshot()
	if st.Calls != workers*ops || st.Distinct != 100 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestMemoTableParallel drives sharded MemoTables — unbounded, bounded
// direct-addressed, and bounded LRU (eviction churn) — from parallel
// goroutines with overlapping keys while a reader polls Stats.
func TestMemoTableParallel(t *testing.T) {
	configs := []MemoTableConfig{
		{Name: "opt", Shards: 8},
		{Name: "direct", Entries: 64, Shards: 8},
		{Name: "lru", Entries: 32, LRU: true, Shards: 8},
	}
	for _, cfg := range configs {
		t.Run(cfg.Name, func(t *testing.T) {
			mt := NewMemoTable(cfg)
			stop := make(chan struct{})
			var reader sync.WaitGroup
			reader.Add(1)
			go func() {
				defer reader.Done()
				for {
					select {
					case <-stop:
						return
					default:
						st := mt.Stats()
						if st.Hits > st.Calls {
							t.Error("impossible stats")
							return
						}
					}
				}
			}()
			const workers, ops, keys = 8, 3000, 200
			var wg sync.WaitGroup
			wg.Add(workers)
			for w := 0; w < workers; w++ {
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < ops; i++ {
						k := EncodeInt(nil, int64(rng.Intn(keys)))
						if v, ok := mt.Lookup(k); ok {
							if v >= keys {
								t.Errorf("impossible value %d", v)
								return
							}
						} else {
							mt.Store(k, uint64(rng.Intn(keys)))
						}
					}
				}(int64(w))
			}
			wg.Wait()
			close(stop)
			reader.Wait()
			st := mt.Stats()
			if st.Calls != workers*ops {
				t.Fatalf("calls = %d, want %d", st.Calls, workers*ops)
			}
			if st.Distinct <= 0 || st.Distinct > keys {
				t.Fatalf("distinct = %d, want 1..%d", st.Distinct, keys)
			}
		})
	}
}

// TestMemoTableBoundedDistinct is the regression test for the wrong-stats
// bug: bounded tables used to report Distinct = 0, which made ReuseRate()
// return 1.0 regardless of the input stream.
func TestMemoTableBoundedDistinct(t *testing.T) {
	for _, cfg := range []MemoTableConfig{
		{Name: "direct8", Entries: 8},
		{Name: "lru8", Entries: 8, LRU: true},
		{Name: "direct-sharded", Entries: 16, Shards: 4},
	} {
		mt := NewMemoTable(cfg)
		// 16 distinct keys, 10 rounds each: a repeating input stream.
		const distinct, rounds = 16, 10
		for r := 0; r < rounds; r++ {
			for k := int64(0); k < distinct; k++ {
				key := EncodeInt(nil, k)
				if _, ok := mt.Lookup(key); !ok {
					mt.Store(key, uint64(k))
				}
			}
		}
		st := mt.Stats()
		if st.Distinct != distinct {
			t.Errorf("%s: Distinct = %d, want %d", cfg.Name, st.Distinct, distinct)
		}
		if st.Calls != distinct*rounds {
			t.Errorf("%s: Calls = %d, want %d", cfg.Name, st.Calls, distinct*rounds)
		}
		if r := st.ReuseRate(); r >= 1 || r <= 0 {
			t.Errorf("%s: ReuseRate = %v, want in (0, 1)", cfg.Name, r)
		}
	}
}

// TestMemoStatsSnapshotSequential pins the Snapshot accessor's behavior
// in the simple single-goroutine case.
func TestMemoStatsSnapshotSequential(t *testing.T) {
	f, stats := Memo(func(x int) int { return x + 1 })
	for i := 0; i < 10; i++ {
		f(i % 5)
	}
	st := stats.Snapshot()
	if st.Calls != 10 || st.Distinct != 5 || st.Hits != 5 {
		t.Fatalf("snapshot: %+v", st)
	}
	if st.HitRatio() != 0.5 || st.ReuseRate() != 0.5 {
		t.Fatalf("ratios: %v %v", st.HitRatio(), st.ReuseRate())
	}
}
