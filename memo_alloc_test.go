package compreuse

import (
	"testing"
)

// The memoization runtime's profitability condition (paper formula 3,
// R·C − O > 0) is judged against the lookup overhead O; these tests pin
// the warm hit paths — generic Memoized, byte-keyed MemoTable, and the
// TieredMemo L1 tier, including KeyBuf key encoding — at exactly zero
// allocations per operation.

func assertZeroAllocs(t *testing.T, name string, f func()) {
	t.Helper()
	if avg := testing.AllocsPerRun(100, f); avg != 0 {
		t.Errorf("%s: %.1f allocs/op, want 0", name, avg)
	}
}

func TestMemoizedHitZeroAlloc(t *testing.T) {
	m := NewMemoized(func(x int) int { return x * x })
	for i := 0; i < 64; i++ {
		m.Call(i)
	}
	i := 0
	assertZeroAllocs(t, "memoized/hit", func() {
		if got := m.Call(i & 63); got != (i&63)*(i&63) {
			t.Fatalf("Call(%d) = %d", i&63, got)
		}
		i++
	})
}

func TestMemoTableHitZeroAlloc(t *testing.T) {
	for _, cfg := range []MemoTableConfig{
		{Name: "alloc-unbounded"},
		{Name: "alloc-sharded", Shards: 8},
		{Name: "alloc-lru", Entries: 256, LRU: true},
	} {
		m := NewMemoTable(cfg)
		var kb KeyBuf
		for i := 0; i < 64; i++ {
			m.Store(kb.Reset().Int(int64(i)).Int(int64(i*31)).Bytes(), uint64(i))
		}
		// Probe each key once before measuring: a first-ever probe inserts
		// the key into the distinct-key census (the paper's N_ds), which is
		// the one legitimate allocation on the probe path.
		for i := 0; i < 64; i++ {
			m.Lookup(kb.Reset().Int(int64(i)).Int(int64(i * 31)).Bytes())
		}
		i := 0
		assertZeroAllocs(t, cfg.Name+"/lookup-hit", func() {
			k := kb.Reset().Int(int64(i & 63)).Int(int64((i & 63) * 31)).Bytes()
			v, ok := m.Lookup(k)
			if !ok || v != uint64(i&63) {
				t.Fatalf("Lookup: ok=%v v=%d want %d", ok, v, i&63)
			}
			i++
		})
		assertZeroAllocs(t, cfg.Name+"/store-resident", func() {
			m.Store(kb.Reset().Int(int64(i&63)).Int(int64((i&63)*31)).Bytes(), uint64(i))
			i++
		})
	}
}

// TestTieredMemoL1HitZeroAlloc pins the tiered fast path: an L1 hit
// returns before the remote tier is consulted and must allocate nothing,
// key encoding included.
func TestTieredMemoL1HitZeroAlloc(t *testing.T) {
	tm := &TieredMemo{l1: NewMemoTable(MemoTableConfig{Name: "alloc-tiered/l1", Shards: 4})}
	var kb KeyBuf
	compute := func() uint64 { t.Fatal("L1 hit must not compute"); return 0 }
	for i := 0; i < 64; i++ {
		tm.l1.Store(kb.Reset().Int(int64(i)).Float(float64(i)).Bytes(), uint64(i))
	}
	// First probes insert into the distinct-key census; warm them out of
	// the measured loop.
	for i := 0; i < 64; i++ {
		tm.Do(kb.Reset().Int(int64(i)).Float(float64(i)).Bytes(), compute)
	}
	i := 0
	assertZeroAllocs(t, "tiered/l1-hit", func() {
		k := kb.Reset().Int(int64(i & 63)).Float(float64(i & 63)).Bytes()
		if got := tm.Do(k, compute); got != uint64(i&63) {
			t.Fatalf("Do = %d, want %d", got, i&63)
		}
		i++
	})
}

// BenchmarkMemoizedHit measures the generic memo hit path (tracked in
// BENCH_6.json; the acceptance gate is 0 allocs/op).
func BenchmarkMemoizedHit(b *testing.B) {
	m := NewMemoized(func(x int) int { return x * x })
	for i := 0; i < 256; i++ {
		m.Call(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Call(i & 255)
	}
}

// BenchmarkMemoTableHit measures the byte-keyed table hit path with
// KeyBuf encoding inside the measured loop.
func BenchmarkMemoTableHit(b *testing.B) {
	m := NewMemoTable(MemoTableConfig{Name: "bench-memotable", Shards: 8})
	var kb KeyBuf
	for i := 0; i < 256; i++ {
		k := kb.Reset().Int(int64(i)).Int(int64(i * 31)).Bytes()
		m.Store(k, uint64(i))
		m.Lookup(k) // first probe census-inserts; keep it out of the loop
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Lookup(kb.Reset().Int(int64(i & 255)).Int(int64((i & 255) * 31)).Bytes())
	}
}
