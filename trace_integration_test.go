package compreuse_test

import (
	"testing"
	"time"

	"compreuse"
	"compreuse/internal/obs"
	"compreuse/internal/reused"
)

// TestTraceStitchesAcrossTiers is the end-to-end tracing acceptance
// test at the library level: a TieredMemo over a real in-process
// crcserve must record, for one traced Do, the client-side spans
// (tiered.do root, rpc round trip, compute) and the server-side span
// adopted from the wire frame's trace id — one stitched trace per
// level the request traversed, with the right outcomes.
func TestTraceStitchesAcrossTiers(t *testing.T) {
	_, addr := startNode(t, reused.Config{})
	c, err := compreuse.DialCache(compreuse.ClientConfig{Addr: addr, Conns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	tm, err := compreuse.NewTieredMemo(c, compreuse.TieredMemoConfig{Name: "traced"})
	if err != nil {
		t.Fatal(err)
	}

	obs.EnableTrace(1, 256)
	obs.ResetTraces()
	defer obs.DisableTrace()

	key := []byte("trace-me")
	// First Do: L1 and L2 miss, compute, PUT to the server.
	if v := tm.Do(key, func() uint64 { time.Sleep(time.Millisecond); return 99 }); v != 99 {
		t.Fatalf("Do = %d, want 99", v)
	}
	// Second Do: L1 hit, no wire traffic.
	if v := tm.Do(key, func() uint64 { return 0 }); v != 99 {
		t.Fatalf("second Do = %d, want the memoized 99", v)
	}

	bd := obs.Summarize(obs.TraceSpans())
	if len(bd.Traces) != 2 {
		t.Fatalf("recorded %d traces, want 2 (one per Do): %+v", len(bd.Traces), bd.Traces)
	}
	if bd.Stitched == 0 {
		t.Fatal("no trace stitched across the wire (client root + server span)")
	}

	outcomes := map[string]bool{}
	names := map[string]int{}
	for _, tr := range bd.Traces {
		for _, sp := range tr.Spans {
			names[sp.Name]++
			if sp.Kind == obs.KindRoot {
				outcomes[sp.Outcome] = true
			}
		}
	}
	// One Do computed, the other hit L1.
	if !outcomes["compute"] || !outcomes["l1_hit"] {
		t.Errorf("root outcomes = %v, want both compute and l1_hit", outcomes)
	}
	// The miss trace carried a compute span, the wire round trips, and
	// the adopted server spans for GET and PUT.
	for _, want := range []string{"tiered.do", "compute", "rpc.get", "rpc.put", "srv.get", "srv.put"} {
		if names[want] == 0 {
			t.Errorf("no %q span recorded; got %v", want, names)
		}
	}

	// The stitched trace's per-hop durations nest sanely: the root
	// covers its compute child.
	for _, tr := range bd.Traces {
		if !tr.Stitched() {
			continue
		}
		root := tr.Root()
		if root == nil {
			t.Fatal("stitched trace lost its root")
		}
		for _, sp := range tr.Spans {
			if sp.Name == "compute" && sp.Dur > root.Dur {
				t.Errorf("compute span (%dns) outlasts its root (%dns)", sp.Dur, root.Dur)
			}
		}
	}
}

// TestTracingDisabledRecordsNothing pins the off switch: with tracing
// off (the default), Do must leave the ring untouched.
func TestTracingDisabledRecordsNothing(t *testing.T) {
	if compreuse.TracingEnabled() {
		t.Fatal("tracing unexpectedly on at test start")
	}
	_, addr := startNode(t, reused.Config{})
	c, err := compreuse.DialCache(compreuse.ClientConfig{Addr: addr, Conns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	tm, err := compreuse.NewTieredMemo(c, compreuse.TieredMemoConfig{Name: "untraced"})
	if err != nil {
		t.Fatal(err)
	}
	obs.ResetTraces()
	tm.Do([]byte("k"), func() uint64 { return 1 })
	tm.Do([]byte("k"), func() uint64 { return 1 })
	if spans := obs.TraceSpans(); len(spans) != 0 {
		t.Fatalf("tracing off but %d spans recorded: %+v", len(spans), spans)
	}
}
