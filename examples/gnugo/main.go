// GNU Go: demonstrate hash-table merging (paper §2.5). The game's
// accumulate_influence contains eight code segments with identical input
// variables; merging their tables shares one key column plus a valid-bit
// vector per entry. In the paper the unmerged version ran out of memory on
// the iPAQ, while the merged version gained over 20% performance.
//
// Run with: go run ./examples/gnugo
package main

import (
	"fmt"
	"log"

	"compreuse"
)

func main() {
	prog, err := compreuse.ProgramByName("GNUGO")
	if err != nil {
		log.Fatal(err)
	}

	merged, err := compreuse.Run(prog.RunOptions("O0"))
	if err != nil {
		log.Fatal(err)
	}
	noMergeOpts := prog.RunOptions("O0")
	noMergeOpts.NoMerge = true
	split, err := compreuse.Run(noMergeOpts)
	if err != nil {
		log.Fatal(err)
	}

	sum := func(rep *compreuse.Report) (tables, bytes int, hits int64) {
		for _, t := range rep.Tables {
			tables++
			bytes += t.SizeBytes
			hits += t.Stats.Hits
		}
		return
	}
	mt, mb, mh := sum(merged)
	st, sb, sh := sum(split)

	fmt.Printf("%s: %d influence segments transformed\n\n", prog.Name, merged.SegmentsTransformed)
	fmt.Printf("merged  (§2.5): %d table(s), %7d bytes, %d hits, speedup %.2fx\n",
		mt, mb, mh, merged.Speedup())
	fmt.Printf("unmerged:       %d table(s), %7d bytes, %d hits, speedup %.2fx\n",
		st, sb, sh, split.Speedup())
	if sb > 0 {
		fmt.Printf("\nmerging saves %.1f%% of table memory (the paper's iPAQ ran out\n"+
			"of memory without it) at identical hit behavior.\n",
			(1-float64(mb)/float64(sb))*100)
	}
	for _, t := range merged.Tables {
		fmt.Printf("\nmerged table %q:\n  %d entries x %dB (16B key + 8 outputs + 8B bit vector)\n",
			t.Name, t.Entries, t.EntryBytes)
	}
}
