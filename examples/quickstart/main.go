// Quickstart: apply the computation-reuse scheme to the paper's running
// example — the G.721 quantizer quan (Ding & Li, CGO 2004, Figures 2/4).
//
// The program below uses the *original* three-parameter quan. The scheme
// (1) specializes it because every call site passes the invariant table
// power2 and the constant 15 (§2.4), (2) profiles the specialized
// function's input values, (3) decides via R·C − O > 0 that reuse pays,
// and (4) rewrites the function body into a hash-table look-up (Fig. 2b).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"compreuse"
)

const src = `
int power2[15] = {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384};

int quan(int val, int *table, int size) {
    int i;
    for (i = 0; i < size; i++)
        if (val < table[i])
            break;
    return (i);
}

/* A toy codec loop: quantize a slowly wandering signal. */
int main(int seed, int n) {
    int s = 0;
    int x = seed;
    int v;
    for (v = 0; v < n; v++) {
        x = (x * 75 + 74) & 2047;
        s += quan(x, power2, 15);
    }
    print_int(s);
    return s & 255;
}
`

func main() {
	rep, err := compreuse.Run(compreuse.Options{
		Name:     "quickstart.c",
		Source:   src,
		MainArgs: []int64{7, 20000},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("segments: %d analyzed, %d profiled, %d transformed\n",
		rep.SegmentsAnalyzed, rep.SegmentsProfiled, rep.SegmentsTransformed)
	fmt.Printf("specialized functions: %v\n\n", rep.Specialized)

	for _, d := range rep.Decisions {
		if !d.Selected {
			continue
		}
		fmt.Printf("transformed %s:\n", d.Name)
		fmt.Printf("  instances N        = %d\n", d.Profile.N)
		fmt.Printf("  distinct inputs    = %d\n", d.Profile.Nds)
		fmt.Printf("  reuse rate R       = %.1f%%\n", d.Profile.ReuseRate()*100)
		fmt.Printf("  granularity C      = %.0f cycles (%.2f us at 206MHz)\n",
			d.Profile.MeasuredC, d.Profile.MeasuredC/206)
		fmt.Printf("  hashing overhead O = %.0f cycles\n", d.Profile.Overhead)
		fmt.Printf("  gain R*C - O       = %.0f cycles per instance\n\n", d.Gain)
	}

	fmt.Printf("baseline: %.4f simulated seconds, %.3f J\n",
		rep.Baseline.Seconds, rep.Baseline.Energy.Joules)
	fmt.Printf("reuse:    %.4f simulated seconds, %.3f J\n",
		rep.Reuse.Seconds, rep.Reuse.Energy.Joules)
	fmt.Printf("speedup:  %.2fx   energy saving: %.1f%%\n\n",
		rep.Speedup(), rep.EnergySaving()*100)

	fmt.Println("transformed source (paper Fig. 2b style):")
	fmt.Println(rep.TransformedSource)
}
