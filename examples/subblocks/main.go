// Subblocks: the paper's §5 future work, implemented as an extension —
// "a candidate code segment can be a part of a loop body, a function body,
// or an IF branch, instead of the entire body."
//
// The function below interleaves a heavy, input-determined computation
// with per-call bookkeeping (a sequence counter). The whole-function
// segment keys on the counter and never repeats, so the paper's three
// segment shapes find nothing. With Options.SubBlocks the scheme carves
// out the reusable prefix and memoizes just that.
//
// Run with: go run ./examples/subblocks
package main

import (
	"fmt"
	"log"

	"compreuse"
)

const src = `
int tick;
int weights[16] = {3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3};

int score(int v) {
    /* reusable: depends only on v */
    int heavy = 0;
    int k;
    for (k = 0; k < 32; k++)
        heavy += weights[k & 15] * ((v >> (k & 3)) + 1) + (heavy >> 7);
    /* not reusable: stamps every call */
    int seq = tick;
    tick = tick + 1;
    int r = heavy + (seq & 1);
    return r;
}

int main(void) {
    int s = 0;
    int i;
    for (i = 0; i < 4000; i++)
        s = (s + score(i & 7)) & 16777215;
    print_int(s);
    return s & 255;
}
`

func main() {
	report := func(label string, opts compreuse.Options) *compreuse.Report {
		rep, err := compreuse.Run(opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s transformed=%d speedup=%.2fx\n",
			label, rep.SegmentsTransformed, rep.Speedup())
		for _, d := range rep.Decisions {
			if d.Selected {
				fmt.Printf("    selected %s (kind %s): R=%.1f%% C=%.0f cycles\n",
					d.Name, d.Kind, d.Profile.ReuseRate()*100, d.Profile.MeasuredC)
			}
		}
		return rep
	}

	base := compreuse.Options{Name: "score.c", Source: src}
	report("paper's segments", base)

	withSub := base
	withSub.SubBlocks = true
	rep := report("with sub-blocks (§5)", withSub)

	fmt.Println("\ntransformed source:")
	fmt.Println(rep.TransformedSource)
}
