// G721: run the suite's G721_encode benchmark — the paper's flagship
// example — at both optimization levels and compare against the published
// numbers (Tables 6 and 7: speedups 1.56 at O0 and 1.31 at O3).
//
// Run with: go run ./examples/g721
package main

import (
	"fmt"
	"log"

	"compreuse"
)

func main() {
	prog, err := compreuse.ProgramByName("G721_encode")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s — kernel %s\n", prog.Name, prog.KernelFunc)
	fmt.Printf("scale: %s\n\n", prog.ScaleNote)

	paper := map[string]float64{"O0": 1.56, "O3": 1.31}
	for _, level := range []string{"O0", "O3"} {
		rep, err := prog.Run(level)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: baseline %.3fs -> reuse %.3fs  speedup %.2fx (paper: %.2fx)\n",
			level, rep.Baseline.Seconds, rep.Reuse.Seconds, rep.Speedup(), paper[level])
		for _, d := range rep.Decisions {
			if d.Selected {
				fmt.Printf("    %s: N=%d distinct=%d R=%.1f%%\n",
					d.Name, d.Profile.N, d.Profile.Nds, d.Profile.ReuseRate()*100)
			}
		}
		for _, t := range rep.Tables {
			fmt.Printf("    table: %d entries x %dB = %dB, %d hits / %d probes\n",
				t.Entries, t.EntryBytes, t.SizeBytes, t.Stats.Hits, t.Stats.Probes)
		}
		fmt.Println()
	}

	// The paper's Figures 9/10 variants: binary search and shift versions
	// of quan still profit from reuse, just less (Table 6: 1.11 and 1.48).
	for _, name := range []string{"G721_encode_s", "G721_encode_b"} {
		v, err := compreuse.ProgramByName(name)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := v.Run("O0")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: speedup %.2fx\n", name, rep.Speedup())
	}
}
