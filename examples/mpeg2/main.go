// MPEG2: sweep the reuse-table size for the MPEG2_decode benchmark, whose
// Reference_IDCT kernel has 64-int-block keys — the case the paper uses to
// argue software tables beat small hardware reuse buffers (Table 5,
// Figures 14/15): tiny LRU buffers catch almost nothing, while a software
// table sized from profiling captures the full 48% reuse rate.
//
// Run with: go run ./examples/mpeg2
package main

import (
	"fmt"
	"log"

	"compreuse"
)

func main() {
	prog, err := compreuse.ProgramByName("MPEG2_decode")
	if err != nil {
		log.Fatal(err)
	}
	opts := prog.RunOptions("O0")

	// Hardware-buffer emulation (1..64 entries, LRU) vs software sizes.
	points := []compreuse.SweepPoint{
		{Entries: 1, LRU: true},
		{Entries: 4, LRU: true},
		{Entries: 16, LRU: true},
		{Entries: 64, LRU: true},
		{Entries: 64},  // direct-addressed, same budget
		{Entries: 256}, // growing software tables
		{Entries: 0},   // profiling-derived optimal
	}
	rep, outs, err := compreuse.RunSweep(opts, points)
	if err != nil {
		log.Fatal(err)
	}

	d := func() *compreuse.Decision {
		for i := range rep.Decisions {
			if rep.Decisions[i].Selected {
				return &rep.Decisions[i]
			}
		}
		return nil
	}()
	if d != nil {
		fmt.Printf("%s: Reference_IDCT reuse rate %.1f%% over %d blocks (%d distinct)\n\n",
			prog.Name, d.Profile.ReuseRate()*100, d.Profile.N, d.Profile.Nds)
	}

	fmt.Printf("%-28s %-12s %-10s %s\n", "table", "size", "hit ratio", "speedup")
	for _, out := range outs {
		kind := "direct"
		if out.Point.LRU {
			kind = "LRU"
		}
		entries := out.Point.Entries
		label := fmt.Sprintf("%d-entry %s", entries, kind)
		if entries == 0 {
			label = "optimal (from profiling)"
		}
		var probes, hits int64
		for _, t := range out.Tables {
			probes += t.Stats.Probes
			hits += t.Stats.Hits
		}
		ratio := 0.0
		if probes > 0 {
			ratio = float64(hits) / float64(probes)
		}
		fmt.Printf("%-28s %-12d %-10.1f %.2fx\n", label, out.SizeBytes, ratio*100, out.Speedup)
	}
}
