// Memoize: use the standalone Go reuse runtime on ordinary Go code — the
// paper's technique without the compiler. The cost–benefit rule carries
// over directly: memoize when R·C > O, i.e. when inputs repeat and the
// computation dwarfs a map probe.
//
// Run with: go run ./examples/memoize
package main

import (
	"fmt"
	"time"

	"compreuse"
)

// spectralWeight is an artificially expensive pure function (an iterative
// series evaluation), standing in for the FR4TR-style kernels the paper
// memoizes.
func spectralWeight(band int) float64 {
	x := float64(band) * 0.31
	acc := 0.0
	for k := 1; k < 20000; k++ {
		acc += 1.0 / (x*float64(k) + float64(k*k)/1000.0 + 1.0)
	}
	return acc
}

func main() {
	memoized, stats := compreuse.Memo(spectralWeight)

	// A RASTA-like workload: many frames, few distinct quantized bands.
	bands := make([]int, 0, 20000)
	seed := int64(5)
	for i := 0; i < 20000; i++ {
		seed = (seed*1103515245 + 12345) & (1<<30 - 1)
		bands = append(bands, int((seed>>9)%31))
	}

	start := time.Now()
	plain := 0.0
	for _, b := range bands {
		plain += spectralWeight(b)
	}
	plainTime := time.Since(start)

	start = time.Now()
	reused := 0.0
	for _, b := range bands {
		reused += memoized(b)
	}
	memoTime := time.Since(start)

	fmt.Printf("plain:    %v (sum %.4f)\n", plainTime, plain)
	fmt.Printf("memoized: %v (sum %.4f)\n", memoTime, reused)
	fmt.Printf("speedup:  %.1fx\n\n", float64(plainTime)/float64(memoTime))
	fmt.Printf("calls=%d distinct=%d hit ratio=%.1f%% reuse rate R=%.3f\n",
		stats.Calls, stats.Distinct, stats.HitRatio()*100, stats.ReuseRate())

	// Bounded tables with the paper's replacement policies.
	direct := compreuse.NewMemoTable(compreuse.MemoTableConfig{Name: "direct", Entries: 8})
	for _, b := range bands[:2000] {
		key := compreuse.EncodeInt(nil, int64(b))
		if _, ok := direct.Lookup(key); !ok {
			direct.Store(key, uint64(b*b))
		}
	}
	st := direct.Stats()
	fmt.Printf("\n8-entry direct-addressed table: hit ratio %.1f%% (31 distinct keys contend)\n",
		st.HitRatio()*100)
}
