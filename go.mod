module compreuse

go 1.24
