module compreuse

go 1.22
