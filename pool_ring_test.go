package compreuse

import (
	"fmt"
	"sort"
	"testing"
)

// TestRingBalance is the regression for a real routing collapse: raw
// FNV-1a over short, similar strings (sequential keys; a node's vnode
// counter) leaves the high bits nearly constant, so every hash landed
// inside one ring arc and a single node owned the whole key space. The
// mix64 finalizer must keep both the primary and the first-replica
// assignment roughly uniform for adversarially-similar inputs.
func TestRingBalance(t *testing.T) {
	p := &Pool{cfg: PoolConfig{VirtualNodes: DefaultVirtualNodes}}
	// Realistic worst case: same host, nearby ports — the exact address
	// shape an in-process fleet or a single-box deployment produces.
	addrs := []string{"127.0.0.1:40001", "127.0.0.1:40002", "127.0.0.1:40003"}
	for i, a := range addrs {
		p.node = append(p.node, &poolNode{addr: a})
		for v := 0; v < DefaultVirtualNodes; v++ {
			p.ring = append(p.ring, ringPoint{hash: ringHash(a, v), node: i})
		}
	}
	sort.Slice(p.ring, func(i, j int) bool { return p.ring[i].hash < p.ring[j].hash })

	const keys = 3000
	var primary, replica [3]int
	var scratch [8]int
	for i := 0; i < keys; i++ {
		nodes := p.route(keyHash("seg", []byte(fmt.Sprintf("key-%08d", i))), 2, scratch[:0])
		if len(nodes) != 2 || nodes[0] == nodes[1] {
			t.Fatalf("route returned %v, want 2 distinct nodes", nodes)
		}
		primary[nodes[0]]++
		replica[nodes[1]]++
	}
	// Uniform would be 1000 per node; demand every node carries at least
	// a third of its fair share in both roles. The broken hash gave 0.
	for i := range addrs {
		if primary[i] < keys/9 {
			t.Errorf("node %d owns %d/%d primaries (distribution %v): ring collapsed",
				i, primary[i], keys, primary)
		}
		if replica[i] < keys/9 {
			t.Errorf("node %d holds %d/%d replicas (distribution %v): ring collapsed",
				i, replica[i], keys, replica)
		}
	}
}
