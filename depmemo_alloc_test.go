package compreuse

import (
	"testing"
)

// The dependence-tracked probe walks the footprint trie instead of
// hashing a flat key, so its overhead model (cost.Model.DepOverhead) has
// no per-byte term — but that economics only holds if the warm hit path
// allocates nothing. These tests pin it, including the no-copy content
// keys for slice inputs.

func TestDepMemoHitZeroAlloc(t *testing.T) {
	m := NewDepMemo(DepConfig{Name: "alloc-dep"})
	f := func(d *Dep) uint64 { return uint64(d.Get(0)) * uint64(d.Get(1)) }
	var in DepInputs
	for i := int64(0); i < 64; i++ {
		m.Do(in.Reset().Int(i).Int(i+1), f)
	}
	i := int64(0)
	assertZeroAllocs(t, "depmemo/hit", func() {
		k := i & 63
		if got := m.Do(in.Reset().Int(k).Int(k+1), f); got != uint64(k)*uint64(k+1) {
			t.Fatalf("Do(%d) = %d", k, got)
		}
		i++
	})
}

// TestDepMemoSliceKeyZeroAlloc pins the no-copy content key: probing
// with a large byte slice and a large word slice hashes both in place —
// no per-call copy, no allocation, however big the inputs.
func TestDepMemoSliceKeyZeroAlloc(t *testing.T) {
	m := NewDepMemo(DepConfig{Name: "alloc-dep-slice"})
	f := func(d *Dep) uint64 {
		b := d.Bytes(0)
		w := d.Slice(1)
		return uint64(b[0]) + w[0]
	}
	big := make([]byte, 1<<16)
	words := make([]uint64, 1<<12)
	for i := range big {
		big[i] = byte(i)
	}
	for i := range words {
		words[i] = uint64(i)
	}
	var in DepInputs
	want := m.Do(in.Reset().Bytes(big).Words(words), f)
	assertZeroAllocs(t, "depmemo/slice-content-hit", func() {
		if got := m.Do(in.Reset().Bytes(big).Words(words), f); got != want {
			t.Fatalf("Do = %d, want %d", got, want)
		}
	})
}

// TestDepMemoElementKeyZeroAlloc pins the element-granular path: a hit
// keyed on two words of a large slice reads just those words.
func TestDepMemoElementKeyZeroAlloc(t *testing.T) {
	m := NewDepMemo(DepConfig{Name: "alloc-dep-elem"})
	f := func(d *Dep) uint64 { return d.Word(0, 3) + d.Word(0, 1000) }
	words := make([]uint64, 4096)
	for i := range words {
		words[i] = uint64(i) * 7
	}
	var in DepInputs
	want := m.Do(in.Reset().Words(words), f)
	assertZeroAllocs(t, "depmemo/element-hit", func() {
		if got := m.Do(in.Reset().Words(words), f); got != want {
			t.Fatalf("Do = %d, want %d", got, want)
		}
	})
}

// BenchmarkDepMemoHit measures the footprint-trie hit path (tracked in
// BENCH_10.json; the acceptance gate is 0 allocs/op).
func BenchmarkDepMemoHit(b *testing.B) {
	m := NewDepMemo(DepConfig{Name: "bench-dep"})
	f := func(d *Dep) uint64 { return uint64(d.Get(0)) * uint64(d.Get(1)) }
	var in DepInputs
	for i := int64(0); i < 256; i++ {
		m.Do(in.Reset().Int(i).Int(i+1), f)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := int64(i & 255)
		m.Do(in.Reset().Int(k).Int(k+1), f)
	}
}

// BenchmarkDepMemoSliceHit measures a hit keyed on the content of a 64
// KiB slice hashed in place — the case a flat-key memo would pay a
// per-byte pass and a key copy for.
func BenchmarkDepMemoSliceHit(b *testing.B) {
	m := NewDepMemo(DepConfig{Name: "bench-dep-slice"})
	f := func(d *Dep) uint64 { return uint64(d.Bytes(0)[0]) }
	big := make([]byte, 1<<16)
	var in DepInputs
	m.Do(in.Reset().Bytes(big), f)
	b.ReportAllocs()
	b.SetBytes(1 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Do(in.Reset().Bytes(big), f)
	}
}
