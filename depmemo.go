package compreuse

import (
	"hash/maphash"
	"math"
	"sync"
	"time"

	"compreuse/internal/depmemo"
)

// DepMemo is a dependence-tracked selective memoizer (Acar–Blelloch–
// Harper via the reuse scheme's cost model; see internal/depmemo): the
// compute function runs against a tracked view of its inputs, the memo
// records which inputs the run actually touched, and later calls probe
// keyed only on that footprint. A computation with ten declared inputs
// that reads two of them on the common path is keyed — and deduplicated
// — on those two; calls differing only in untouched inputs share one
// result. Differing read-sets coexist in one footprint trie.
//
// Compared to Memo/MemoTable, which key on the full argument list:
//
//   - keys narrow dynamically, so wide, mostly-irrelevant inputs (big
//     slices, config blobs) stop poisoning the hit rate and the probe
//     cost;
//   - per-input custom equality applies: slice inputs key on content
//     (hashed in place, never copied) and float inputs can use
//     tolerance-based equality;
//   - an explicit space budget bounds resident results with LRU
//     eviction.
//
// The compute function must be deterministic over the inputs it reads
// through the Dep view — that is the soundness condition for footprint
// keying: the values read so far determine the next read, so a probe
// that matches every recorded read would have recomputed the recorded
// result. Reads that bypass the view (globals, captured variables) are
// invisible and break the contract, exactly as they would break Memo.
//
// DepMemo is safe for concurrent use. Concurrent misses of identical
// input sets are deduplicated singleflight-style: one caller computes,
// the rest wait and re-probe.
type DepMemo struct {
	cfg  DepConfig
	seed maphash.Seed

	mu    sync.Mutex
	tab   *depmemo.Table
	fetch depFetch
	sf    map[uint64]*depCall
	calls int64
	hits  int64

	depPool sync.Pool
}

// DepConfig configures a DepMemo.
type DepConfig struct {
	// Name labels the memo in stats and, for TieredDepMemo, names the
	// shared remote segment.
	Name string
	// Budget bounds resident results (0 = unbounded); the least
	// recently used result is evicted when full.
	Budget int
	// FloatTolerance, when positive, keys Float reads on their value
	// quantized to this grid instead of exact bits: two floats in the
	// same grid cell are equal. Grid equality is a true equivalence
	// (unlike an epsilon ball, which is not transitive), but values
	// within the tolerance can still straddle a cell boundary.
	FloatTolerance float64
}

// DepStats reports a DepMemo's reuse behavior (PR 4 stats convention:
// cumulative counters, Snapshot-consistent, survive across calls until
// Reset).
type DepStats struct {
	// Calls is the number of Do invocations.
	Calls int64
	// Hits is the subset served from the footprint trie without running
	// compute — including callers that joined an in-flight compute and
	// found its freshly recorded result on re-probe.
	Hits int64
	// Distinct counts distinct dependence footprints ever recorded.
	Distinct int64
	// Evictions counts results displaced by the space budget.
	Evictions int64
	// Resident is the number of currently stored results.
	Resident int
	// MeanFootprint and MaxFootprint describe the recorded dynamic key
	// widths, in tracked reads per call.
	MeanFootprint float64
	MaxFootprint  int
}

// HitRatio is Hits/Calls (0 when never called).
func (s DepStats) HitRatio() float64 {
	if s.Calls == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Calls)
}

// depCall is one in-flight compute; the leader closes done after
// recording. Followers re-probe rather than adopt a value, so a flight-
// key collision can cost a duplicate compute but never a wrong result.
type depCall struct {
	done chan struct{}
}

// NewDepMemo builds a DepMemo.
func NewDepMemo(cfg DepConfig) *DepMemo {
	m := &DepMemo{
		cfg:  cfg,
		seed: maphash.MakeSeed(),
		tab:  depmemo.New(depmemo.Config{Name: cfg.Name, Entries: cfg.Budget}),
		sf:   map[uint64]*depCall{},
	}
	m.fetch.m = m
	m.depPool.New = func() any { return &Dep{m: m, seen: map[depmemo.Loc]struct{}{}} }
	return m
}

// ---------------------------------------------------------------------------
// Inputs

type depKind uint8

const (
	depInt depKind = iota
	depFloat
	depBytes
	depWords
)

type depInput struct {
	kind depKind
	word uint64
	f    float64
	b    []byte
	w    []uint64
}

// DepInputs is a reusable positional input list for DepMemo.Do, in the
// KeyBuf style: build with Reset().Int(a).Float(x).Bytes(buf), reuse
// across calls to keep the hit path allocation-free. Slice inputs are
// referenced, never copied; they must not be mutated until Do returns.
// A DepInputs is not safe for concurrent use; give each goroutine its
// own.
type DepInputs struct {
	vals []depInput
}

// Reset empties the list, keeping capacity, and returns the receiver
// for chaining.
func (in *DepInputs) Reset() *DepInputs {
	in.vals = in.vals[:0]
	return in
}

// Int appends an integer input.
func (in *DepInputs) Int(v int64) *DepInputs {
	in.vals = append(in.vals, depInput{kind: depInt, word: uint64(v)})
	return in
}

// Float appends a float input (subject to the memo's FloatTolerance).
func (in *DepInputs) Float(v float64) *DepInputs {
	in.vals = append(in.vals, depInput{kind: depFloat, f: v})
	return in
}

// Bytes appends a byte-slice input keyed by content. The slice is not
// copied: whole-content reads hash it in place with maphash.
func (in *DepInputs) Bytes(b []byte) *DepInputs {
	in.vals = append(in.vals, depInput{kind: depBytes, b: b})
	return in
}

// Words appends a word-slice input keyed by content; elements are
// addressable individually through Dep.Word. The slice is not copied.
func (in *DepInputs) Words(w []uint64) *DepInputs {
	in.vals = append(in.vals, depInput{kind: depWords, w: w})
	return in
}

// Len returns the number of inputs appended since the last Reset.
func (in *DepInputs) Len() int { return len(in.vals) }

// ---------------------------------------------------------------------------
// Labels: the per-key custom equality. A label is the 64-bit equality
// class of one tracked read; two reads are equal iff their labels are.
// Int and Word reads use the value itself. Float reads quantize to the
// tolerance grid. Whole-slice reads use a content hash (maphash for
// bytes, seeded mix64 folding for words) — 64-bit, so a hash collision
// can alias two contents; the probability (~2⁻⁶⁴ per comparison) is the
// same one every content-addressed cache accepts.

func (m *DepMemo) label(in *DepInputs, l depmemo.Loc) uint64 {
	if int(l.Input) >= len(in.vals) {
		return oobLabel(uint64(l.Input))
	}
	v := &in.vals[l.Input]
	switch l.Off {
	case depmemo.OffWhole:
		switch v.kind {
		case depInt:
			return v.word
		case depFloat:
			return m.quantize(v.f)
		case depBytes:
			return maphash.Bytes(m.seed, v.b)
		default:
			return m.hashWords(v.w)
		}
	case depmemo.OffLen:
		if v.kind == depBytes {
			return uint64(len(v.b))
		}
		return uint64(len(v.w))
	default:
		switch v.kind {
		case depWords:
			if int(l.Off) < len(v.w) {
				return v.w[l.Off]
			}
		case depBytes:
			if int(l.Off) < len(v.b) {
				return uint64(v.b[l.Off])
			}
		}
		return oobLabel(uint64(l.Off))
	}
}

// oobLabel marks an element read that the probing input set cannot
// serve (shorter slice, fewer inputs): a constant-mixed sentinel that a
// recorded in-range label matches with probability ~2⁻⁶⁴, forcing the
// probe to diverge from the resident path.
func oobLabel(x uint64) uint64 { return mix64(x ^ 0x6f6f625f6465705f) }

// quantize maps a float to its equality class under the tolerance grid.
func (m *DepMemo) quantize(v float64) uint64 {
	if m.cfg.FloatTolerance > 0 && !math.IsNaN(v) && !math.IsInf(v, 0) {
		return uint64(int64(math.Round(v / m.cfg.FloatTolerance)))
	}
	return math.Float64bits(v)
}

// hashWords folds a word slice through the seeded murmur3 finalizer —
// content hashing without copying the slice into bytes.
func (m *DepMemo) hashWords(w []uint64) uint64 {
	h := maphash.Bytes(m.seed, nil) // seed-derived initial state
	for _, x := range w {
		h = mix64(h ^ x)
	}
	return mix64(h ^ uint64(len(w)))
}

// depFetch adapts label lookup to the trie's Fetcher without a per-call
// closure allocation; it is reused under the memo's lock.
type depFetch struct {
	m  *DepMemo
	in *DepInputs
}

func (f *depFetch) Fetch(l depmemo.Loc) uint64 { return f.m.label(f.in, l) }

// flightKey hashes the full input list — the singleflight identity for
// concurrent misses. (The footprint is unknown until the leader runs,
// so in-flight dedup is necessarily full-key; followers re-probe on the
// narrowed key afterwards.)
func (m *DepMemo) flightKey(in *DepInputs) uint64 {
	h := maphash.Bytes(m.seed, nil)
	for i := range in.vals {
		h = mix64(h ^ m.label(in, depmemo.Loc{Input: int32(i), Off: depmemo.OffWhole}))
	}
	return mix64(h ^ uint64(len(in.vals)))
}

// ---------------------------------------------------------------------------
// The tracked view

// Dep is the tracked input view a compute function runs against. Every
// accessor records the dependence (input, granularity) → value so the
// memo can key this run on exactly what it read. Reading the same
// location twice records it once. A Dep is only valid inside its
// compute invocation.
type Dep struct {
	m    *DepMemo
	in   *DepInputs
	path []depmemo.Step
	seen map[depmemo.Loc]struct{}
	out  [1]uint64
}

func (d *Dep) note(l depmemo.Loc) {
	if _, ok := d.seen[l]; ok {
		return
	}
	d.seen[l] = struct{}{}
	d.path = append(d.path, depmemo.Step{Loc: l, Label: d.m.label(d.in, l)})
}

// Get reads integer input i, recording the dependence.
func (d *Dep) Get(i int) int64 {
	d.note(depmemo.Loc{Input: int32(i), Off: depmemo.OffWhole})
	return int64(d.in.vals[i].word)
}

// Float reads float input i, recording the dependence under the memo's
// tolerance equality. The exact value is returned; only the key is
// quantized.
func (d *Dep) Float(i int) float64 {
	d.note(depmemo.Loc{Input: int32(i), Off: depmemo.OffWhole})
	return d.in.vals[i].f
}

// Slice reads word-slice input i whole, recording a single content-hash
// dependence; the returned slice aliases the input (no copy). Use Word
// for element-granular dependence instead when the computation touches
// only part of the slice.
func (d *Dep) Slice(i int) []uint64 {
	d.note(depmemo.Loc{Input: int32(i), Off: depmemo.OffWhole})
	return d.in.vals[i].w
}

// Bytes reads byte-slice input i whole, recording a single content-hash
// dependence computed in place with maphash (the slice is never
// copied).
func (d *Dep) Bytes(i int) []byte {
	d.note(depmemo.Loc{Input: int32(i), Off: depmemo.OffWhole})
	return d.in.vals[i].b
}

// Word reads element j of word-slice input i, recording an element-
// granular dependence: later calls differing only in elements this run
// never read still hit.
func (d *Dep) Word(i, j int) uint64 {
	d.note(depmemo.Loc{Input: int32(i), Off: int32(j)})
	return d.in.vals[i].w[j]
}

// Len reads the length of slice input i, recording a length-only
// dependence.
func (d *Dep) Len(i int) int {
	d.note(depmemo.Loc{Input: int32(i), Off: depmemo.OffLen})
	v := &d.in.vals[i]
	if v.kind == depBytes {
		return len(v.b)
	}
	return len(v.w)
}

func (m *DepMemo) getDep(in *DepInputs) *Dep {
	d := m.depPool.Get().(*Dep)
	d.in = in
	d.path = d.path[:0]
	clear(d.seen)
	return d
}

func (m *DepMemo) putDep(d *Dep) {
	d.in = nil
	m.depPool.Put(d)
}

// ---------------------------------------------------------------------------
// Do

// Do returns the memoized result for the footprint compute reads out of
// in, running compute on a miss. compute must be deterministic over its
// tracked reads; see the type comment.
func (m *DepMemo) Do(in *DepInputs, compute func(*Dep) uint64) uint64 {
	waited := false
	for {
		m.mu.Lock()
		if !waited {
			m.calls++
		}
		m.fetch.in = in
		r := m.tab.Probe(&m.fetch)
		m.fetch.in = nil
		if r.Hit {
			m.hits++
			v := r.Outs[0]
			m.mu.Unlock()
			return v
		}
		if waited {
			// Already joined one flight and still missing: compute
			// directly — flight keys are hashes, and a duplicate
			// compute is cheaper than a wrong adoption or a livelock.
			m.mu.Unlock()
			return m.computeDirect(in, compute)
		}
		fk := m.flightKey(in)
		if c, ok := m.sf[fk]; ok {
			// Join the in-flight compute, then re-probe: if the
			// leader's inputs were ours, its record is our hit.
			m.mu.Unlock()
			<-c.done
			waited = true
			continue
		}
		c := &depCall{done: make(chan struct{})}
		m.sf[fk] = c
		m.mu.Unlock()
		return m.lead(in, compute, fk, c)
	}
}

// lead runs compute as the flight leader, records the footprint, and
// releases followers. A panic in compute still releases them (they
// retry or compute themselves) and propagates.
func (m *DepMemo) lead(in *DepInputs, compute func(*Dep) uint64, fk uint64, c *depCall) uint64 {
	d := m.getDep(in)
	normal := false
	defer func() {
		if !normal {
			m.mu.Lock()
			delete(m.sf, fk)
			m.mu.Unlock()
			close(c.done)
			m.putDep(d)
		}
	}()
	v := compute(d)
	normal = true
	d.out[0] = v
	m.mu.Lock()
	m.tab.Record(d.path, d.out[:])
	delete(m.sf, fk)
	m.mu.Unlock()
	close(c.done)
	m.putDep(d)
	return v
}

// computeDirect runs compute with tracking and records, without
// registering a flight.
func (m *DepMemo) computeDirect(in *DepInputs, compute func(*Dep) uint64) uint64 {
	d := m.getDep(in)
	defer m.putDep(d)
	v := compute(d)
	d.out[0] = v
	m.mu.Lock()
	m.tab.Record(d.path, d.out[:])
	m.mu.Unlock()
	return v
}

// Stats returns a consistent snapshot of the memo's counters.
func (m *DepMemo) Stats() DepStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	ts := m.tab.Stats()
	return DepStats{
		Calls:         m.calls,
		Hits:          m.hits,
		Distinct:      ts.Distinct,
		Evictions:     ts.Evictions,
		Resident:      m.tab.Resident(),
		MeanFootprint: ts.MeanFootprint(),
		MaxFootprint:  ts.MaxFootprint,
	}
}

// Reset drops every memoized result and counter, returning the memo to
// its freshly constructed state (PR 4 convention). Computations already
// in flight record into the fresh table when they finish.
func (m *DepMemo) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tab.Reset()
	m.calls = 0
	m.hits = 0
}

// ---------------------------------------------------------------------------
// Tiered: dep-narrowed keys on the remote L2 wire path

// TieredDepMemoConfig sizes a TieredDepMemo.
type TieredDepMemoConfig struct {
	// Name is the shared segment name on the server.
	Name string
	// Budget bounds the process-local footprint trie (0 picks 4096 —
	// the tier exists to recover from eviction, so the budget must
	// bind).
	Budget int
	// FloatTolerance is the local grid equality (see DepConfig).
	FloatTolerance float64
	// Remote configures the server-side table (OutWords forced to 1).
	Remote SegmentConfig
}

// TieredDepStats counts where a TieredDepMemo's calls were served from.
type TieredDepStats struct {
	Calls int64
	// L1Hits were served from the local footprint trie.
	L1Hits int64
	// GhostHits matched an evicted result's retained key and refilled
	// it from the remote tier — the probe proved which result was
	// needed without recomputing it.
	GhostHits int64
	// Computes ran the computation (fresh footprint, remote miss, or
	// remote error).
	Computes int64
	// Errors is the subset of Computes taken because the remote tier
	// failed.
	Errors int64
}

// TieredDepMemo layers a budgeted local DepMemo over a remote crcserve
// segment, with the dep-narrowed key on the wire: when the space budget
// evicts a result, its footprint path stays resident as a ghost — the
// encoded dependence key without the value — so a later matching probe
// can fetch the result from the shared remote table by key instead of
// recomputing. Freshly computed results are published under the same
// canonical key encoding.
//
// Unlike the full-key TieredMemo, a cold process cannot ask the fleet
// for a result it never computed: a dependence key is only discoverable
// by reading the footprint, which is what the compute does. The remote
// tier is therefore an eviction-recovery tier — it converts budget
// evictions from recomputations into round trips — not a cold-start
// accelerator. It degrades gracefully: on remote errors Do computes
// locally and never fails.
type TieredDepMemo struct {
	dm  *DepMemo
	seg remoteCache

	statMu sync.Mutex
	stats  TieredDepStats
}

// NewTieredDepMemo builds a TieredDepMemo over one server connection.
func NewTieredDepMemo(c *Client, cfg TieredDepMemoConfig) (*TieredDepMemo, error) {
	rc := cfg.Remote
	rc.OutWords = 1
	seg, err := c.Segment(cfg.Name, rc)
	if err != nil {
		return nil, err
	}
	return newTieredDepMemo(seg, cfg), nil
}

// NewTieredDepMemoFleet builds a TieredDepMemo over a consistent-hash
// fleet.
func NewTieredDepMemoFleet(p *Pool, cfg TieredDepMemoConfig) (*TieredDepMemo, error) {
	rc := cfg.Remote
	rc.OutWords = 1
	seg, err := p.Segment(cfg.Name, rc)
	if err != nil {
		return nil, err
	}
	return newTieredDepMemo(seg, cfg), nil
}

func newTieredDepMemo(seg remoteCache, cfg TieredDepMemoConfig) *TieredDepMemo {
	budget := cfg.Budget
	if budget <= 0 {
		budget = 4096
	}
	dm := &DepMemo{
		cfg:  DepConfig{Name: cfg.Name, Budget: budget, FloatTolerance: cfg.FloatTolerance},
		seed: maphash.MakeSeed(),
		tab:  depmemo.New(depmemo.Config{Name: cfg.Name, Entries: budget, Ghosts: true}),
		sf:   map[uint64]*depCall{},
	}
	dm.fetch.m = dm
	dm.depPool.New = func() any { return &Dep{m: dm, seen: map[depmemo.Loc]struct{}{}} }
	return &TieredDepMemo{dm: dm, seg: seg}
}

// Do returns the memoized result for the footprint compute reads out of
// in: local trie first, then — when the probe matches an evicted
// result's ghost — the remote tier by dependence key, then compute.
func (t *TieredDepMemo) Do(in *DepInputs, compute func(*Dep) uint64) uint64 {
	t.statMu.Lock()
	t.stats.Calls++
	t.statMu.Unlock()

	m := t.dm
	m.mu.Lock()
	m.fetch.in = in
	r := m.tab.Probe(&m.fetch)
	m.fetch.in = nil
	if r.Hit {
		v := r.Outs[0]
		m.mu.Unlock()
		t.statMu.Lock()
		t.stats.L1Hits++
		t.statMu.Unlock()
		return v
	}
	if r.Ghost {
		// The key aliases trie storage; copy it out before dropping the
		// lock for the round trip. The copy must be per-call — a shared
		// scratch would be clobbered by a concurrent ghost probe while
		// the remote Get is still reading it — and the path is already
		// paying a round trip, so the allocation is immaterial.
		key := append([]byte(nil), r.Key...)
		m.mu.Unlock()
		vals, status, err := t.seg.Get(key)
		if err == nil && status == Hit && len(vals) == 1 {
			m.mu.Lock()
			m.tab.Refill(r, key, vals)
			m.mu.Unlock()
			t.statMu.Lock()
			t.stats.GhostHits++
			t.statMu.Unlock()
			return vals[0]
		}
		return t.compute(in, compute, err != nil)
	}
	m.mu.Unlock()
	return t.compute(in, compute, false)
}

// compute runs the computation with tracking, records it locally, and
// publishes it to the remote tier under the canonical dependence key.
func (t *TieredDepMemo) compute(in *DepInputs, compute func(*Dep) uint64, remoteErr bool) uint64 {
	m := t.dm
	d := m.getDep(in)
	start := time.Now()
	v := compute(d)
	cost := time.Since(start)
	d.out[0] = v
	key := depmemo.EncodeSteps(nil, d.path)
	m.mu.Lock()
	m.tab.Record(d.path, d.out[:])
	m.mu.Unlock()
	m.putDep(d)
	if err := t.seg.Put(key, []uint64{v}, cost); err != nil {
		remoteErr = true
	}
	t.statMu.Lock()
	t.stats.Computes++
	if remoteErr {
		t.stats.Errors++
	}
	t.statMu.Unlock()
	return v
}

// Stats returns a snapshot of the tier counters.
func (t *TieredDepMemo) Stats() TieredDepStats {
	t.statMu.Lock()
	defer t.statMu.Unlock()
	return t.stats
}

// Local returns the local DepMemo's stats (footprints, evictions,
// residency).
func (t *TieredDepMemo) Local() DepStats { return t.dm.Stats() }

// Reset drops the local tier (PR 4 convention); the shared remote table
// is left to its owner (use the segment's Flush for that).
func (t *TieredDepMemo) Reset() {
	t.dm.Reset()
	t.statMu.Lock()
	t.stats = TieredDepStats{}
	t.statMu.Unlock()
}
