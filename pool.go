package compreuse

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"compreuse/internal/obs"
)

// Fleet metrics. The aggregate series are registered at init; the
// per-node series (up/down gauge, failover counter) are registered
// when DialPool first sees the address — registration is idempotent by
// name, so pools sharing an address set share the series.
var (
	mPoolFailovers = obs.NewCounter("crc_pool_failovers_total",
		"fleet reads or writes re-routed away from a failed node")
	mPoolReplicaDrops = obs.NewCounter("crc_pool_replica_drops_total",
		"fire-and-forget replica writes dropped because the queue was full")
	mPoolNodesDown = obs.NewGauge("crc_pool_nodes_down",
		"fleet nodes currently marked down")
	mPoolRedials = obs.NewCounter("crc_pool_redial_attempts_total",
		"background redial attempts against nodes marked down")
)

func nodeUpGauge(addr string) *obs.Gauge {
	return obs.NewGauge(fmt.Sprintf("crc_pool_node_up{node=%q}", addr),
		"1 while the fleet node is dialed and serving, 0 while marked down")
}

func nodeFailoverCounter(addr string) *obs.Counter {
	return obs.NewCounter(fmt.Sprintf("crc_pool_node_failovers_total{node=%q}", addr),
		"calls re-routed away from this node because it errored or was down")
}

// PoolConfig configures a client for a fleet of crcserve nodes.
type PoolConfig struct {
	// Addrs are the node addresses (TCP host:port or unix:///path), one
	// per crcserve instance. Order is irrelevant: placement comes from
	// the consistent-hash ring, so every Pool dialing the same set
	// routes identically.
	Addrs []string
	// Replicas is the number of copies of each record, primary included.
	// PUTs go synchronously to the primary and fire-and-forget to the
	// next Replicas-1 ring nodes; GETs fall back along the same walk.
	// 0 means 2; clamped to len(Addrs).
	Replicas int
	// VirtualNodes is the number of ring points per node; more points
	// smooth the key distribution at the cost of a larger ring. 0 means
	// DefaultVirtualNodes.
	VirtualNodes int
	// ReplicaQueue bounds the fire-and-forget replica write queue;
	// when it is full further replica writes are dropped (and counted),
	// never blocked on. 0 means DefaultReplicaQueue.
	ReplicaQueue int
	// RedialEvery is the retry period for re-dialing a node that was
	// marked down. 0 means DefaultRedialEvery.
	RedialEvery time.Duration

	// Conns, MaxInflight and DialTimeout configure each node's
	// underlying Client as in ClientConfig.
	Conns       int
	MaxInflight int
	DialTimeout time.Duration
}

// Pool defaults.
const (
	DefaultVirtualNodes = 64
	DefaultReplicaQueue = 1024
	DefaultRedialEvery  = time.Second
	replicaWorkers      = 4
)

func (c PoolConfig) replicas() int {
	r := c.Replicas
	if r <= 0 {
		r = 2
	}
	if r > len(c.Addrs) {
		r = len(c.Addrs)
	}
	return r
}

func (c PoolConfig) virtualNodes() int {
	if c.VirtualNodes <= 0 {
		return DefaultVirtualNodes
	}
	return c.VirtualNodes
}

func (c PoolConfig) replicaQueue() int {
	if c.ReplicaQueue <= 0 {
		return DefaultReplicaQueue
	}
	return c.ReplicaQueue
}

func (c PoolConfig) redialEvery() time.Duration {
	if c.RedialEvery <= 0 {
		return DefaultRedialEvery
	}
	return c.RedialEvery
}

func (c PoolConfig) clientConfig(addr string) ClientConfig {
	return ClientConfig{Addr: addr, Conns: c.Conns,
		MaxInflight: c.MaxInflight, DialTimeout: c.DialTimeout}
}

// ErrNodeDown is the per-node fast-fail error while a fleet node is
// marked down and being re-dialed; callers of Pool never see it unless
// every ring node for a key is down at once.
var ErrNodeDown = errors.New("compreuse: fleet node is down")

// ErrPoolClosed is returned by calls on a closed Pool.
var ErrPoolClosed = errors.New("compreuse: fleet pool closed")

// Pool is the fleet-tier client: one consistent-hash ring over N
// crcserve nodes. Every (segment, key) pair maps to a primary node and
// an ordered list of fallbacks (the next distinct nodes on the ring),
// so all workers dialing the same address set agree on placement
// without coordination. Reads go to the primary and fall back along
// the ring on transport errors; writes go synchronously to the first
// live ring node and fire-and-forget to the next Replicas-1, so a node
// crash loses no acknowledged record that had a replica. A node that
// fails is marked down — subsequent calls skip it without a network
// timeout — and re-dialed in the background until it comes back (a
// restarted crcserve answers warm when it was started from a
// snapshot; see cmd/crcserve -snapshot).
type Pool struct {
	cfg  PoolConfig
	node []*poolNode
	ring []ringPoint // sorted by hash

	repCh   chan repWrite
	closed  atomic.Bool
	closeCh chan struct{}
	wg      sync.WaitGroup

	segMu sync.Mutex
	segs  map[string]*PoolSegment
}

// ringPoint is one virtual node on the hash ring.
type ringPoint struct {
	hash uint64
	node int
}

// poolNode is one fleet member: its address, its live client (nil while
// down), and its failure counters.
type poolNode struct {
	addr string
	ccfg ClientConfig

	mu sync.Mutex
	c  *Client

	down      atomic.Bool
	redialing atomic.Bool
	// failovers counts calls re-routed away from this node because it
	// errored or was down.
	failovers atomic.Int64

	// up mirrors the node's liveness into the metrics registry; fo is
	// the per-node failover series. Liveness flips are cold-path, so up
	// is kept current unconditionally; fo increments are gated on
	// obs.On() like every other hot-path metric.
	up *obs.Gauge
	fo *obs.Counter
}

// repWrite is one queued fire-and-forget replica record.
type repWrite struct {
	node *poolNode
	seg  *PoolSegment
	key  []byte
	vals []uint64
	cost time.Duration
}

// DialPool connects to every node of a crcserve fleet. Like DialCache
// it dials eagerly — a misconfigured address fails at startup — but a
// node that dies later only degrades the pool (failover + background
// redial), it never fails it.
func DialPool(cfg PoolConfig) (*Pool, error) {
	if len(cfg.Addrs) == 0 {
		return nil, errors.New("compreuse: PoolConfig.Addrs is empty")
	}
	p := &Pool{
		cfg:     cfg,
		repCh:   make(chan repWrite, cfg.replicaQueue()),
		closeCh: make(chan struct{}),
		segs:    map[string]*PoolSegment{},
	}
	for i, addr := range cfg.Addrs {
		n := &poolNode{addr: addr, ccfg: cfg.clientConfig(addr),
			up: nodeUpGauge(addr), fo: nodeFailoverCounter(addr)}
		c, err := DialCache(n.ccfg)
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("dial fleet node %q: %w", addr, err)
		}
		n.c = c
		n.up.Set(1)
		p.node = append(p.node, n)
		for v := 0; v < cfg.virtualNodes(); v++ {
			p.ring = append(p.ring, ringPoint{hash: ringHash(addr, v), node: i})
		}
	}
	sort.Slice(p.ring, func(i, j int) bool { return p.ring[i].hash < p.ring[j].hash })
	for i := 0; i < replicaWorkers; i++ {
		p.wg.Add(1)
		go p.replicaLoop()
	}
	return p, nil
}

// Close tears down every node client and stops the background workers.
func (p *Pool) Close() error {
	if p.closed.Swap(true) {
		return nil
	}
	close(p.closeCh)
	for _, n := range p.node {
		n.mu.Lock()
		if n.c != nil {
			n.c.Close()
			n.c = nil
		}
		n.mu.Unlock()
	}
	p.wg.Wait()
	return nil
}

// mix64 is the murmur3 finalizer: full avalanche over 64 bits. FNV-1a
// alone is not enough here — on short inputs that differ only in their
// trailing bytes (sequential keys, a node's vnode counter) its high
// bits barely change, so raw FNV values cluster in bands narrower than
// a ring arc and the "ring" degenerates to one node owning every key.
// The finalizer spreads those bands over the whole 64-bit circle.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// ringHash places one virtual node on the ring.
func ringHash(addr string, vnode int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(addr))
	h.Write([]byte{'#'})
	h.Write([]byte(strconv.Itoa(vnode)))
	return mix64(h.Sum64())
}

// keyHash is the routing hash over (segment name, key bytes). The
// segment name participates so two segments' identical keys spread to
// different primaries, and the zero byte separates the fields so
// ("ab","c") and ("a","bc") cannot collide structurally.
func keyHash(seg string, key []byte) uint64 {
	h := fnv.New64a()
	h.Write([]byte(seg))
	h.Write([]byte{0})
	h.Write(key)
	return mix64(h.Sum64())
}

// route walks the ring clockwise from h and returns the first
// maxNodes distinct node indices: the primary first, then the
// replica/fallback order. The walk is deterministic in the address
// set, so every pool member routes identically.
func (p *Pool) route(h uint64, maxNodes int, dst []int) []int {
	if maxNodes > len(p.node) {
		maxNodes = len(p.node)
	}
	start := sort.Search(len(p.ring), func(i int) bool { return p.ring[i].hash >= h })
	seen := 0
	for i := 0; i < len(p.ring) && seen < maxNodes; i++ {
		pt := p.ring[(start+i)%len(p.ring)]
		dup := false
		for _, d := range dst {
			if d == pt.node {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, pt.node)
			seen++
		}
	}
	return dst
}

// client returns the node's live client, or ErrNodeDown immediately —
// a down node must cost a ring hop, not a dial timeout. The error is
// wrapped as a transport failure so callers fall back along the ring
// exactly as they would for a freshly dead socket.
func (n *poolNode) client() (*Client, error) {
	if n.down.Load() {
		return nil, &transportError{ErrNodeDown}
	}
	n.mu.Lock()
	c := n.c
	n.mu.Unlock()
	if c == nil {
		return nil, &transportError{ErrNodeDown}
	}
	return c, nil
}

// segment resolves the node's handle for a named segment (registering
// it on the node if this client has not yet).
func (n *poolNode) segment(name string, cfg SegmentConfig) (*RemoteSegment, error) {
	c, err := n.client()
	if err != nil {
		return nil, err
	}
	return c.Segment(name, cfg)
}

// markDown flags the node dead after a transport error, closes its
// client so every in-flight and future call on it fails fast, and
// starts the background redial if one is not already running.
func (p *Pool) markDown(n *poolNode) {
	if p.closed.Load() {
		return
	}
	n.mu.Lock()
	if n.c != nil {
		n.c.Close()
		n.c = nil
	}
	first := !n.down.Swap(true)
	n.mu.Unlock()
	if first {
		// Liveness flips are rare; keep the gauges truthful even while
		// instrumentation is globally off, so enabling obs later shows
		// the fleet's actual state instead of a stale zero.
		n.up.Set(0)
		mPoolNodesDown.Add(1)
	}
	if n.redialing.CompareAndSwap(false, true) {
		p.wg.Add(1)
		go p.redial(n)
	}
}

// redial retries the node until it answers again, then swaps the fresh
// client in. Segment handles re-register lazily on first use (the new
// Client's HELLO), so a node restarted from a snapshot resumes serving
// its warm table without any pool-level re-registration pass.
func (p *Pool) redial(n *poolNode) {
	defer p.wg.Done()
	t := time.NewTicker(p.cfg.redialEvery())
	defer t.Stop()
	for {
		select {
		case <-p.closeCh:
			n.redialing.Store(false)
			return
		case <-t.C:
		}
		mPoolRedials.Inc()
		c, err := DialCache(n.ccfg)
		if err != nil {
			continue
		}
		n.mu.Lock()
		n.c = c
		n.mu.Unlock()
		n.down.Store(false)
		n.redialing.Store(false)
		n.up.Set(1)
		mPoolNodesDown.Add(-1)
		return
	}
}

// replicaLoop drains the fire-and-forget replica queue. Errors are
// absorbed: a replica write is a durability bet, not an acknowledged
// record, and the primary copy already succeeded.
func (p *Pool) replicaLoop() {
	defer p.wg.Done()
	for {
		select {
		case <-p.closeCh:
			return
		case w := <-p.repCh:
			seg, err := w.node.segment(w.seg.name, w.seg.cfg)
			if err == nil {
				err = seg.Put(w.key, w.vals, w.cost)
			}
			if err != nil && isTransportErr(err) {
				p.markDown(w.node)
			}
		}
	}
}

// Segment registers a named segment on the fleet and returns its
// routed handle. Registration happens lazily per node (each node's
// HELLO goes out on first use), so a down node does not block Segment.
func (p *Pool) Segment(name string, cfg SegmentConfig) (*PoolSegment, error) {
	if p.closed.Load() {
		return nil, ErrPoolClosed
	}
	p.segMu.Lock()
	if s, ok := p.segs[name]; ok {
		p.segMu.Unlock()
		return s, nil
	}
	p.segMu.Unlock()

	if cfg.OutWords <= 0 {
		cfg.OutWords = 1
	}
	s := &PoolSegment{p: p, name: name, cfg: cfg}
	// Eagerly register on every live node so geometry is fixed
	// fleet-wide before traffic; a down node registers on redial.
	var lastErr error
	live := 0
	for _, n := range p.node {
		if _, err := n.segment(name, cfg); err != nil {
			lastErr = err
			if isTransportErr(err) {
				p.markDown(n)
			}
			continue
		}
		live++
	}
	if live == 0 {
		return nil, fmt.Errorf("register segment %q: no live fleet node: %w", name, lastErr)
	}
	p.segMu.Lock()
	if prior, ok := p.segs[name]; ok {
		s = prior
	} else {
		p.segs[name] = s
	}
	p.segMu.Unlock()
	return s, nil
}

// PoolSegment is the fleet-routed handle to one named segment: the same
// Get/Put/Stats/Flush surface as RemoteSegment, with consistent-hash
// routing, replicated writes and ring-fallback reads behind it.
type PoolSegment struct {
	p    *Pool
	name string
	cfg  SegmentConfig

	// replicaDrops counts fire-and-forget replica writes dropped
	// because the queue was full.
	replicaDrops atomic.Int64
}

// Get probes the fleet: the key's primary first, then — on transport
// errors only, a governor BYPASS or a plain miss is an answer — each
// fallback node along the ring. A dead primary therefore costs one
// failed round trip at most (nothing at all once it is marked down),
// and the replicas answer with the same data the PUT fanned out.
func (s *PoolSegment) Get(key []byte) ([]uint64, GetStatus, error) {
	return s.GetTraced(key, obs.TraceCtx{})
}

// GetTraced is Get with a parent trace context: a sampled request
// records a "pool.get" span whose hops annotation counts the failover
// walk, and the per-node probe (an "rpc.get" child) carries the trace
// id to whichever node finally answered.
func (s *PoolSegment) GetTraced(key []byte, tr obs.TraceCtx) ([]uint64, GetStatus, error) {
	sp := obs.StartSpan(tr, "pool.get")
	var scratch [8]int
	nodes := s.p.route(keyHash(s.name, key), len(s.p.node), scratch[:0])
	var lastErr error
	for i, ni := range nodes {
		n := s.p.node[ni]
		seg, err := n.segment(s.name, s.cfg)
		if err == nil {
			var vals []uint64
			var status GetStatus
			vals, status, err = seg.GetTraced(key, sp.Context())
			if err == nil {
				if i > 0 {
					s.countFailover(nodes[:i])
				}
				sp.Annotate("hops", int64(i))
				switch status {
				case Hit:
					sp.Outcome("hit")
				case Bypass:
					sp.Outcome("bypass")
				default:
					sp.Outcome("miss")
				}
				sp.End()
				return vals, status, nil
			}
		}
		lastErr = err
		if !isTransportErr(err) {
			// The node answered: a protocol error is this request's
			// problem, not the node's. Surface it.
			sp.Annotate("hops", int64(i))
			sp.Outcome("proto_err")
			sp.End()
			return nil, Miss, err
		}
		s.p.markDown(n)
	}
	s.countFailover(nodes)
	sp.Annotate("hops", int64(len(nodes)))
	sp.Outcome("all_down")
	sp.End()
	return nil, Miss, lastErr
}

// Put records the computed outputs on the fleet: synchronously on the
// first live ring node (normally the primary; writes re-route past a
// dead one), fire-and-forget on the next Replicas-1 — so a PUT costs
// one round trip like the single-node client, and losing any one node
// still leaves a copy for its ring successor to serve.
func (s *PoolSegment) Put(key []byte, vals []uint64, cost time.Duration) error {
	return s.PutTraced(key, vals, cost, obs.TraceCtx{})
}

// PutTraced is Put with a parent trace context: a sampled request
// records a "pool.put" span annotated with the failover hops to the
// synchronous copy, the replicas queued, and any dropped on a full
// queue; the synchronous write carries the trace id to its node.
func (s *PoolSegment) PutTraced(key []byte, vals []uint64, cost time.Duration, tr obs.TraceCtx) error {
	sp := obs.StartSpan(tr, "pool.put")
	var scratch [8]int
	nodes := s.p.route(keyHash(s.name, key), len(s.p.node), scratch[:0])
	var lastErr error
	primary := -1
	for i, ni := range nodes {
		n := s.p.node[ni]
		seg, err := n.segment(s.name, s.cfg)
		if err == nil {
			err = seg.PutTraced(key, vals, cost, sp.Context())
		}
		if err == nil {
			primary = i
			break
		}
		lastErr = err
		if !isTransportErr(err) {
			sp.Annotate("hops", int64(i))
			sp.Outcome("proto_err")
			sp.End()
			return err
		}
		s.p.markDown(n)
	}
	if primary < 0 {
		s.countFailover(nodes)
		sp.Annotate("hops", int64(len(nodes)))
		sp.Outcome("all_down")
		sp.End()
		return lastErr
	}
	if primary > 0 {
		s.countFailover(nodes[:primary])
	}
	// Replicate to the remaining ring successors of the synchronous
	// copy, up to Replicas total. Fire-and-forget: the queue is bounded
	// and never blocks the caller; an overflowing fleet drops replicas
	// (counted) rather than stalling the hot path.
	queued, dropped := int64(0), int64(0)
	for _, ni := range remaining(nodes, primary, s.p.cfg.replicas()-1) {
		w := repWrite{
			node: s.p.node[ni],
			seg:  s,
			key:  append([]byte(nil), key...),
			vals: append([]uint64(nil), vals...),
			cost: cost,
		}
		select {
		case s.p.repCh <- w:
			queued++
		default:
			dropped++
			s.replicaDrops.Add(1)
			if obs.On() {
				mPoolReplicaDrops.Inc()
			}
		}
	}
	sp.Annotate("hops", int64(primary))
	sp.Annotate("replicas", queued)
	if dropped > 0 {
		sp.Annotate("replica_drops", dropped)
	}
	sp.Outcome("ok")
	sp.End()
	return nil
}

// remaining returns up to count node indices after position primary.
func remaining(nodes []int, primary, count int) []int {
	rest := nodes[primary+1:]
	if count < 0 {
		count = 0
	}
	if count > len(rest) {
		count = len(rest)
	}
	return rest[:count]
}

// countFailover charges one failover to each node that was skipped.
func (s *PoolSegment) countFailover(skipped []int) {
	for _, ni := range skipped {
		n := s.p.node[ni]
		n.failovers.Add(1)
		if obs.On() {
			mPoolFailovers.Inc()
			n.fo.Inc()
		}
	}
}

// Flush empties the segment on every live node.
func (s *PoolSegment) Flush() error {
	var lastErr error
	for _, n := range s.p.node {
		seg, err := n.segment(s.name, s.cfg)
		if err == nil {
			err = seg.Flush()
		}
		if err != nil {
			lastErr = err
			if isTransportErr(err) {
				s.p.markDown(n)
			}
		}
	}
	return lastErr
}

// Stats aggregates the segment's counters across live nodes: counter
// fields sum, the governor estimates R, C and O are probe-weighted
// averages, and BypassedNow is true when any node's governor has the
// segment bypassed. Down nodes contribute nothing (their state is
// whatever their snapshot will restore).
func (s *PoolSegment) Stats() (RemoteStats, error) {
	var sum RemoteStats
	var rWeighted, cWeighted, oWeighted float64
	var lastErr error
	live := 0
	for _, n := range s.p.node {
		seg, err := n.segment(s.name, s.cfg)
		if err != nil {
			lastErr = err
			continue
		}
		st, err := seg.Stats()
		if err != nil {
			lastErr = err
			if isTransportErr(err) {
				s.p.markDown(n)
			}
			continue
		}
		live++
		sum.Probes += st.Probes
		sum.Hits += st.Hits
		sum.Misses += st.Misses
		sum.Records += st.Records
		sum.Distinct += st.Distinct
		sum.Resident += st.Resident
		sum.Bypassed += st.Bypassed
		sum.BypassedNow = sum.BypassedNow || st.BypassedNow
		w := float64(st.Probes)
		if w == 0 {
			w = 1
		}
		rWeighted += w * st.R
		cWeighted += w * float64(st.C)
		oWeighted += w * float64(st.O)
	}
	if live == 0 {
		return RemoteStats{}, lastErr
	}
	totalW := float64(sum.Probes)
	if totalW == 0 {
		totalW = float64(live)
	}
	sum.R = rWeighted / totalW
	sum.C = time.Duration(cWeighted / totalW)
	sum.O = time.Duration(oWeighted / totalW)
	return sum, nil
}

// PoolNodeStats is one fleet member's view of a segment plus the
// pool-side failure counters for that node.
type PoolNodeStats struct {
	// Addr is the node's address.
	Addr string
	// Down reports whether the node is currently marked down.
	Down bool
	// Failovers counts calls re-routed away from this node.
	Failovers int64
	// Stats is the node's server-side view of the segment; zero while
	// the node is down or unreachable.
	Stats RemoteStats
}

// HitRate returns the node's segment hit rate, or 0 when never probed.
func (s PoolNodeStats) HitRate() float64 {
	if s.Stats.Probes == 0 {
		return 0
	}
	return float64(s.Stats.Hits) / float64(s.Stats.Probes)
}

// NodeStats returns the per-node segment statistics in Addrs order —
// the fleet loadgen's per-node hit-rate and failover report.
func (s *PoolSegment) NodeStats() []PoolNodeStats {
	out := make([]PoolNodeStats, len(s.p.node))
	for i, n := range s.p.node {
		out[i] = PoolNodeStats{
			Addr:      n.addr,
			Down:      n.down.Load(),
			Failovers: n.failovers.Load(),
		}
		if seg, err := n.segment(s.name, s.cfg); err == nil {
			if st, err := seg.Stats(); err == nil {
				out[i].Stats = st
			}
		}
	}
	return out
}

// ReplicaDrops returns how many fire-and-forget replica writes were
// dropped on the floor because the replica queue was full.
func (s *PoolSegment) ReplicaDrops() int64 { return s.replicaDrops.Load() }

// Nodes returns the fleet addresses in configuration order.
func (p *Pool) Nodes() []string {
	out := make([]string, len(p.node))
	for i, n := range p.node {
		out[i] = n.addr
	}
	return out
}

// DownNodes returns the addresses currently marked down.
func (p *Pool) DownNodes() []string {
	var out []string
	for _, n := range p.node {
		if n.down.Load() {
			out = append(out, n.addr)
		}
	}
	return out
}
