package compreuse

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (Ding & Li, CGO 2004, §3). Each benchmark regenerates
// its table/figure through internal/bench, printing the rows on the first
// iteration, and reports the paper's headline metric as custom b.Report
// metrics (speedups, reuse rates, energy savings).
//
// The shared runner memoizes pipeline runs across benchmarks, so
// `go test -bench=. -benchmem` performs one full evaluation. Benchmarks
// run at a reduced workload scale (benchScale) to keep the suite fast;
// `cmd/crcbench` runs the full published configuration.

import (
	"fmt"
	"io"
	"os"
	"sync"
	"testing"

	"compreuse/internal/bench"
)

// benchScale divides workload sizes for the in-test harness (cmd/crcbench
// uses scale 1).
const benchScale = 4

var (
	benchRunnerOnce sync.Once
	benchRunner     *bench.Runner
)

func sharedRunner() *bench.Runner {
	benchRunnerOnce.Do(func() {
		benchRunner = bench.NewRunner()
		benchRunner.Scale = benchScale
	})
	return benchRunner
}

// runExperiment drives one table/figure generator; output is printed once.
func runExperiment(b *testing.B, name string) {
	b.Helper()
	var exp *bench.Experiment
	for _, e := range bench.Experiments() {
		if e.Name == name {
			exp = &e
			break
		}
	}
	if exp == nil {
		b.Fatalf("unknown experiment %s", name)
	}
	r := sharedRunner()
	for i := 0; i < b.N; i++ {
		var w io.Writer = io.Discard
		if i == 0 {
			w = os.Stdout
			fmt.Println()
		}
		if err := exp.Run(w, r); err != nil {
			b.Fatal(err)
		}
	}
}

// reportSpeedups attaches per-program speedups as benchmark metrics.
func reportSpeedups(b *testing.B, level string) {
	r := sharedRunner()
	for _, p := range bench.Core() {
		rep, err := r.Report(p.Name, level)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.Speedup(), p.Name+"_speedup")
	}
}

// BenchmarkTable3 regenerates Table 3 (optimization-decision factors:
// granularity, overhead, DIP#, reuse rate, table size).
func BenchmarkTable3(b *testing.B) {
	runExperiment(b, "table3")
	r := sharedRunner()
	for _, p := range bench.Core() {
		rep, err := r.Report(p.Name, "O0")
		if err != nil {
			b.Fatal(err)
		}
		if d := bench.MainDecision(rep); d != nil {
			b.ReportMetric(d.Profile.ReuseRate(), p.Name+"_R")
		}
	}
}

// BenchmarkTable4 regenerates Table 4 (segments analyzed / profiled /
// transformed).
func BenchmarkTable4(b *testing.B) { runExperiment(b, "table4") }

// BenchmarkTable5 regenerates Table 5 (hit ratios with 1/4/16/64-entry LRU
// buffers emulating the hardware proposals).
func BenchmarkTable5(b *testing.B) { runExperiment(b, "table5") }

// BenchmarkTable6 regenerates Table 6 (speedups at O0, with the G721 _s/_b
// variants and the harmonic mean).
func BenchmarkTable6(b *testing.B) {
	runExperiment(b, "table6")
	reportSpeedups(b, "O0")
}

// BenchmarkTable7 regenerates Table 7 (speedups at O3).
func BenchmarkTable7(b *testing.B) {
	runExperiment(b, "table7")
	reportSpeedups(b, "O3")
}

// BenchmarkTable8 regenerates Table 8 (energy savings at O0).
func BenchmarkTable8(b *testing.B) {
	runExperiment(b, "table8")
	r := sharedRunner()
	for _, p := range bench.Core() {
		rep, err := r.Report(p.Name, "O0")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.EnergySaving()*100, p.Name+"_save%")
	}
}

// BenchmarkTable9 regenerates Table 9 (energy savings at O3).
func BenchmarkTable9(b *testing.B) { runExperiment(b, "table9") }

// BenchmarkTable10 regenerates Table 10 (speedups on inputs other than the
// profiled one, at O3).
func BenchmarkTable10(b *testing.B) { runExperiment(b, "table10") }

// BenchmarkFigure5 regenerates Figure 5 (G721_encode input-value histogram).
func BenchmarkFigure5(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFigure6 regenerates Figure 6 (G721_decode input-value histogram).
func BenchmarkFigure6(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFigure7 regenerates Figure 7 (G721_encode accessed-entry
// histogram).
func BenchmarkFigure7(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFigure8 regenerates Figure 8 (G721_decode accessed-entry
// histogram).
func BenchmarkFigure8(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFigure11 regenerates Figure 11 (RASTA distinct-input-pattern
// histogram).
func BenchmarkFigure11(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkFigure12 regenerates Figure 12 (UNEPIC input-value histogram).
func BenchmarkFigure12(b *testing.B) { runExperiment(b, "fig12") }

// BenchmarkFigure13 regenerates Figure 13 (GNU Go input-value histogram).
func BenchmarkFigure13(b *testing.B) { runExperiment(b, "fig13") }

// BenchmarkFigure14 regenerates Figure 14 (speedups vs hash-table size,
// O0).
func BenchmarkFigure14(b *testing.B) { runExperiment(b, "fig14") }

// BenchmarkFigure15 regenerates Figure 15 (speedups vs hash-table size,
// O3).
func BenchmarkFigure15(b *testing.B) { runExperiment(b, "fig15") }

// BenchmarkVM measures the raw interpreter throughput on the quan loop —
// a substrate microbenchmark, not a paper artifact.
func BenchmarkVM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Execute("quan.c", quanSrc, []int64{7, 2000}, "O0"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMemo measures the Go-level memoization wrapper overhead.
func BenchmarkMemo(b *testing.B) {
	f, _ := Memo(func(x int) int { return x * x })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f(i & 63)
	}
}

// ---- Concurrent-runtime benchmarks ----
//
// The paper's profitability condition R·C − O > 0 (formula 3) makes the
// lookup overhead O the whole game: a memoized segment only wins while a
// probe stays cheap. These benchmarks compare the sharded runtime against
// the single-global-mutex design it replaced, under parallel load; run
// with -cpu=1,4,8 to see the sharded variants scale with GOMAXPROCS while
// the mutex baselines flatline or regress.

// singleMutexMemo is the pre-sharding Memo: one mutex around one map.
// It is kept here (not in memo.go) purely as the benchmark baseline.
func singleMutexMemo[K comparable, V any](f func(K) V) func(K) V {
	var mu sync.Mutex
	table := map[K]V{}
	return func(k K) V {
		mu.Lock()
		if v, ok := table[k]; ok {
			mu.Unlock()
			return v
		}
		mu.Unlock()
		v := f(k)
		mu.Lock()
		table[k] = v
		mu.Unlock()
		return v
	}
}

// BenchmarkMemoParallel measures the sharded, singleflight Memo under
// parallel reuse-heavy load (64 hot keys, the quan regime).
func BenchmarkMemoParallel(b *testing.B) {
	f, _ := Memo(func(x int) int { return x * x })
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			f(i & 63)
			i++
		}
	})
}

// BenchmarkMemoSingleMutexParallel is the contended baseline for
// BenchmarkMemoParallel.
func BenchmarkMemoSingleMutexParallel(b *testing.B) {
	f := singleMutexMemo(func(x int) int { return x * x })
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			f(i & 63)
			i++
		}
	})
}

// benchMemoTableParallel drives a MemoTable with the byte-key probe/record
// protocol of the transformed programs.
func benchMemoTableParallel(b *testing.B, cfg MemoTableConfig) {
	mt := NewMemoTable(cfg)
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		var buf [8]byte
		for pb.Next() {
			key := EncodeInt(buf[:0], int64(i&255))
			if _, ok := mt.Lookup(key); !ok {
				mt.Store(key, uint64(i))
			}
			i++
		}
	})
}

// BenchmarkMemoTableShardedParallel stripes the table 16 ways.
func BenchmarkMemoTableShardedParallel(b *testing.B) {
	benchMemoTableParallel(b, MemoTableConfig{Name: "sharded", Shards: 16})
}

// BenchmarkMemoTableSingleShardParallel serializes every probe behind one
// shard, the historical MemoTable behavior.
func BenchmarkMemoTableSingleShardParallel(b *testing.B) {
	benchMemoTableParallel(b, MemoTableConfig{Name: "single", Shards: 1})
}

// BenchmarkMemoTableLRUShardedParallel exercises the O(1) LRU under
// parallel eviction churn (256 keys through 16×8-entry stripes).
func BenchmarkMemoTableLRUShardedParallel(b *testing.B) {
	benchMemoTableParallel(b, MemoTableConfig{Name: "lru", Entries: 128, LRU: true, Shards: 16})
}
