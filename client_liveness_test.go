package compreuse

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"compreuse/internal/obs"
	"compreuse/internal/reused"
)

// These are liveness regressions: each guards a path that used to hang
// forever rather than fail, so every wait here runs against a deadline
// — a timeout is the bug coming back, not slowness.

// waitOrFatal fails the test if done does not close within d.
func waitOrFatal(t *testing.T, done <-chan struct{}, d time.Duration, what string) {
	t.Helper()
	select {
	case <-done:
	case <-time.After(d):
		t.Fatal(what)
	}
}

// TestTeardownNoDeadlock kills the server out from under a pile of
// concurrent callers and requires every call to return. The historical
// bug: writeLoop exits on a write error without draining writeCh, and a
// caller that had already passed the cc.err check then parks forever on
// a full writeCh — no receiver ever comes back. The fix selects the
// send against the connection's done channel.
func TestTeardownNoDeadlock(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := reused.New(reused.Config{})
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	defer func() { srv.Close(); <-serveDone }()

	// One connection and a deep pipeline: the more senders share a
	// writeCh, the likelier the undrained-queue window is occupied when
	// the write side dies.
	c, err := DialCache(ClientConfig{Addr: ln.Addr().String(), Conns: 1, MaxInflight: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	seg, err := c.Segment("teardown", SegmentConfig{})
	if err != nil {
		t.Fatal(err)
	}

	const workers = 32
	var started sync.WaitGroup
	finished := make(chan struct{})
	var wg sync.WaitGroup
	started.Add(workers)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(id int) {
			defer wg.Done()
			started.Done()
			for i := 0; ; i++ {
				k := []byte(fmt.Sprintf("k-%d-%d", id, i))
				if _, _, err := seg.Get(k); err != nil {
					return // server is gone; an error return is the fix working
				}
				if err := seg.Put(k, []uint64{1}, time.Microsecond); err != nil {
					return
				}
			}
		}(w)
	}
	go func() { wg.Wait(); close(finished) }()

	started.Wait()
	time.Sleep(10 * time.Millisecond) // let the pipeline fill mid-flight
	srv.Close()

	waitOrFatal(t, finished, 10*time.Second,
		"callers still blocked 10s after server teardown (writeCh deadlock)")
}

// fakeRemote is an L2 that always misses, so every TieredMemo.Do takes
// the singleflight leader path.
type fakeRemote struct{ puts atomic.Int64 }

func (f *fakeRemote) Get(key []byte) ([]uint64, GetStatus, error) { return nil, Miss, nil }
func (f *fakeRemote) GetTraced(key []byte, _ obs.TraceCtx) ([]uint64, GetStatus, error) {
	return f.Get(key)
}
func (f *fakeRemote) Put(key []byte, vals []uint64, cost time.Duration) error {
	f.puts.Add(1)
	return nil
}
func (f *fakeRemote) PutTraced(key []byte, vals []uint64, cost time.Duration, _ obs.TraceCtx) error {
	return f.Put(key, vals, cost)
}
func (f *fakeRemote) Stats() (RemoteStats, error) { return RemoteStats{}, nil }
func (f *fakeRemote) Flush() error                { return nil }

// TestTieredPanicPropagatesAndFollowersRetry parks followers behind a
// leader whose compute panics. The historical bug: the leader's panic
// skipped the delete-and-close of the singleflight entry, so the panic
// vanished into the Do caller and every follower waited forever on a
// done channel nobody would close. Now the leader re-propagates the
// panic and the followers wake to ok=false and retry — one of them
// becomes the new leader and everyone gets its value.
func TestTieredPanicPropagatesAndFollowersRetry(t *testing.T) {
	tm := newTieredMemo(&fakeRemote{}, TieredMemoConfig{Name: "panic"})
	key := []byte("the-key")

	leaderIn := make(chan struct{}) // closed once the leader is inside compute
	release := make(chan struct{})  // closed to let the leader panic
	panicked := make(chan any, 1)   // the leader's recovered panic value
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		defer func() { panicked <- recover() }()
		tm.Do(key, func() uint64 {
			close(leaderIn)
			<-release
			panic("compute exploded")
		})
	}()
	<-leaderIn

	// Followers pile onto the in-flight key. Their computes return a
	// real value, so whichever one takes over as leader settles the key.
	const followers = 8
	var wg sync.WaitGroup
	results := make([]uint64, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = tm.Do(key, func() uint64 { return 42 })
		}(i)
	}
	time.Sleep(20 * time.Millisecond) // let the followers park on the call
	close(release)

	waitOrFatal(t, leaderDone, 10*time.Second, "panicking leader never returned")
	if v := <-panicked; v != "compute exploded" {
		t.Fatalf("leader panic = %v, want %q re-propagated", v, "compute exploded")
	}
	followersDone := make(chan struct{})
	go func() { wg.Wait(); close(followersDone) }()
	waitOrFatal(t, followersDone, 10*time.Second,
		"followers still parked after the leader panicked (unclosed singleflight)")
	for i, v := range results {
		if v != 42 {
			t.Errorf("follower %d got %d, want 42 (the retry leader's value)", i, v)
		}
	}

	// The singleflight map must be empty again: the next Do on the key
	// is a fresh flight, not a wait on a ghost.
	done := make(chan struct{})
	go func() { tm.Do(key, func() uint64 { return 7 }); close(done) }()
	waitOrFatal(t, done, 10*time.Second, "Do after panic recovery blocked")
}

// TestObserveRTTConcurrent hammers the RTT estimator from many
// goroutines. The historical bug was a load/store pair (a lost-update
// race the race detector flags); the fix is a CAS loop, which this
// exercises under -race.
func TestObserveRTTConcurrent(t *testing.T) {
	var c Client
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 1; i <= 1000; i++ {
				c.observeRTT(time.Duration(g*1000+i)*time.Nanosecond, 0)
			}
		}(g)
	}
	wg.Wait()
	if c.RTT() <= 0 {
		t.Fatalf("RTT = %v after 8000 observations, want > 0", c.RTT())
	}
}
