package compreuse

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

const quanSrc = `
int power2[15] = {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384};

int quan(int val, int *table, int size) {
    int i;
    for (i = 0; i < size; i++)
        if (val < table[i])
            break;
    return (i);
}

int main(int seed, int n) {
    int s = 0;
    int x = seed;
    int v;
    for (v = 0; v < n; v++) {
        x = (x * 75 + 74) & 1023;
        s += quan(x, power2, 15);
    }
    print_int(s);
    return s & 255;
}
`

func TestRunPublicAPI(t *testing.T) {
	rep, err := Run(Options{Name: "quan.c", Source: quanSrc, MainArgs: []int64{7, 5000}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SegmentsTransformed != 1 {
		t.Fatalf("transformed = %d", rep.SegmentsTransformed)
	}
	if rep.Baseline.Ret != rep.Reuse.Ret || rep.Baseline.Output != rep.Reuse.Output {
		t.Fatal("semantics not preserved")
	}
	if rep.Speedup() <= 1.2 {
		t.Fatalf("speedup = %.2f", rep.Speedup())
	}
	for _, want := range []string{"__crc_probe", "__crc_record", "__crc_fetch"} {
		if !strings.Contains(rep.TransformedSource, want) {
			t.Fatalf("transformed source missing %s", want)
		}
	}
}

func TestExecute(t *testing.T) {
	res, err := Execute("quan.c", quanSrc, []int64{7, 100}, "O0")
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 || res.Seconds <= 0 || res.Joules <= 0 {
		t.Fatalf("bad measurements: %+v", res)
	}
	res3, err := Execute("quan.c", quanSrc, []int64{7, 100}, "O3")
	if err != nil {
		t.Fatal(err)
	}
	if res3.Ret != res.Ret {
		t.Fatal("O-levels disagree")
	}
	if res3.Cycles >= res.Cycles {
		t.Fatal("O3 must be faster")
	}
}

func TestRunSweepPublicAPI(t *testing.T) {
	_, outs, err := RunSweep(
		Options{Name: "quan.c", Source: quanSrc, MainArgs: []int64{7, 5000}},
		[]SweepPoint{{Entries: 4, LRU: true}, {Entries: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 {
		t.Fatalf("outcomes: %d", len(outs))
	}
	if outs[0].Speedup >= outs[1].Speedup {
		t.Fatalf("4-entry LRU (%.2f) must lose to optimal (%.2f)",
			outs[0].Speedup, outs[1].Speedup)
	}
}

func TestProgramsSuite(t *testing.T) {
	progs := Programs()
	if len(progs) != 11 {
		t.Fatalf("suite has %d programs, want 11", len(progs))
	}
	if _, err := ProgramByName("G721_encode"); err != nil {
		t.Fatal(err)
	}
	if _, err := ProgramByName("nope"); err == nil {
		t.Fatal("expected error for unknown program")
	}
}

func TestMemo(t *testing.T) {
	calls := 0
	f, stats := Memo(func(x int) int {
		calls++
		return x * x
	})
	for i := 0; i < 100; i++ {
		if got := f(i % 10); got != (i%10)*(i%10) {
			t.Fatalf("f(%d) = %d", i%10, got)
		}
	}
	if calls != 10 {
		t.Fatalf("underlying called %d times, want 10", calls)
	}
	if stats.Calls != 100 || stats.Hits != 90 || stats.Distinct != 10 {
		t.Fatalf("stats: %+v", *stats)
	}
	if stats.HitRatio() != 0.9 {
		t.Fatalf("hit ratio %v", stats.HitRatio())
	}
	if r := stats.ReuseRate(); r != 0.9 {
		t.Fatalf("reuse rate %v", r)
	}
}

func TestMemoConcurrent(t *testing.T) {
	f, stats := Memo(func(x int) int { return x + 1 })
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if f(i%17) != i%17+1 {
					t.Error("wrong value")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if stats.Calls != 8000 {
		t.Fatalf("calls = %d", stats.Calls)
	}
	if stats.Distinct != 17 {
		t.Fatalf("distinct = %d", stats.Distinct)
	}
}

func TestMemo2(t *testing.T) {
	f, stats := Memo2(func(a, b int) int { return a*100 + b })
	if f(1, 2) != 102 || f(1, 2) != 102 || f(2, 1) != 201 {
		t.Fatal("wrong values")
	}
	if stats.Calls != 3 || stats.Hits != 1 || stats.Distinct != 2 {
		t.Fatalf("stats: %+v", *stats)
	}
}

func TestMemoProperty(t *testing.T) {
	// Memoized function is extensionally equal to the original.
	f := func(x int32) int64 { return int64(x)*2654435761 ^ 0x5bd1e995 }
	m, _ := Memo(f)
	prop := func(x int32) bool { return m(x) == f(x) && m(x) == f(x) }
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMemoTable(t *testing.T) {
	mt := NewMemoTable(MemoTableConfig{Name: "t", Entries: 16})
	key := EncodeInt(nil, 5)
	if _, ok := mt.Lookup(key); ok {
		t.Fatal("hit on empty table")
	}
	mt.Store(key, 42)
	v, ok := mt.Lookup(key)
	if !ok || v != 42 {
		t.Fatalf("lookup: %v %v", v, ok)
	}
	st := mt.Stats()
	if st.Calls != 2 || st.Hits != 1 {
		t.Fatalf("stats: %+v", st)
	}
	fk := EncodeFloat(nil, 3.25)
	if len(fk) != 8 {
		t.Fatalf("float key length %d", len(fk))
	}
}
