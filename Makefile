# Development targets; `make check` is the CI gate
# (.github/workflows/ci.yml runs the same sequence).

GO ?= go

.PHONY: build vet test race check bench eval

build:
	$(GO) build ./...

vet: build
	$(GO) vet ./...

test:
	$(GO) test ./...

# race runs the whole suite under the race detector, including the
# parallel Memo/MemoTable/Sharded tests.
race:
	$(GO) test -race ./...

check: build vet race

bench:
	$(GO) test -run=NONE -bench=. -benchmem .

# eval regenerates every table and figure of the paper plus the ablations
# and the concurrent-runtime sweep.
eval:
	$(GO) run ./cmd/crcbench
