# Development targets; `make check` is the CI gate
# (.github/workflows/ci.yml runs the same sequence).

GO ?= go

.PHONY: build vet test race check bench eval serve eval-json

build:
	$(GO) build ./...

vet: build
	$(GO) vet ./...

test:
	$(GO) test ./...

# race runs the whole suite under the race detector, including the
# parallel Memo/MemoTable/Sharded tests.
race:
	$(GO) test -race ./...

check: build vet race

bench:
	$(GO) test -run=NONE -bench=. -benchmem .

# eval regenerates every table and figure of the paper plus the ablations
# and the concurrent-runtime sweep.
eval:
	$(GO) run ./cmd/crcbench

# eval-json also writes the results + decision ledgers as JSON
# (BENCH_<date>.json).
eval-json:
	$(GO) run ./cmd/crcbench -json BENCH_$$(date +%Y%m%d).json

# serve runs the evaluation with live /metrics, /decisions and
# /debug/pprof at localhost:8344.
serve:
	$(GO) run ./cmd/crcbench serve -scale 8
