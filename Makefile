# Development targets; `make check` is the CI gate
# (.github/workflows/ci.yml runs the same sequence).

GO ?= go

.PHONY: build vet test race check bench bench-json bench-gate eval serve eval-serve eval-json fuzz loadgen smoke fleet fleet-smoke trace-smoke

build:
	$(GO) build ./...

vet: build
	$(GO) vet ./...

test:
	$(GO) test ./...

# race runs the whole suite under the race detector, including the
# parallel Memo/MemoTable/Sharded tests.
race:
	$(GO) test -race ./...

check: build vet race

bench:
	$(GO) test -run=NONE -bench=. -benchmem .

# bench-json snapshots the perf trajectory (hot-path ns + allocs/op,
# loadgen throughput, GET RTT p50/p99 over TCP loopback vs a unix
# socket) into the committed baseline; schema crcbench-perf/1.
bench-json:
	$(GO) run ./cmd/crcbench perfjson -o BENCH_10.json

# bench-gate re-measures and diffs against the committed baseline:
# allocs/op regressions fail hard, timing regressions warn (CI runs
# this).
bench-gate:
	$(GO) run ./cmd/crcbench perfjson -o bench-perf.json -compare BENCH_10.json

# eval regenerates every table and figure of the paper plus the ablations
# and the concurrent-runtime sweep.
eval:
	$(GO) run ./cmd/crcbench

# eval-json also writes the results + decision ledgers as JSON
# (BENCH_<date>.json).
eval-json:
	$(GO) run ./cmd/crcbench -json BENCH_$$(date +%Y%m%d).json

# eval-serve runs the evaluation with live /metrics, /decisions and
# /debug/pprof at localhost:8344.
eval-serve:
	$(GO) run ./cmd/crcbench serve -scale 8

# serve starts the networked reuse-cache tier (cache on :8345, metrics
# and the governor's decision ledger on :8346).
serve:
	$(GO) run ./cmd/crcserve

# loadgen hammers a running crcserve with a modeled fleet and prints
# throughput, RTT percentiles and governor decisions.
loadgen:
	$(GO) run ./cmd/crcserve loadgen

# fuzz exercises the wire codec's decoder against corrupt frames.
fuzz:
	$(GO) test -fuzz=FuzzDecodeFrame -fuzztime=20s ./internal/wire/

# smoke is the CI loadgen smoke test: boot crcserve, drive 2s of real
# traffic, require nonzero shared hits and a clean SIGTERM drain — all
# under the race detector.
smoke:
	$(GO) test -race -count=1 -run 'TestLoadgenSmoke|TestCrcserve' -v ./cmd/crcserve/

# trace-smoke is the CI tracing smoke: loadgen with -trace 1 against an
# in-process server must stitch client roots to server spans, serve them
# at /traces, and the integration test must see every tier's span — all
# under the race detector.
trace-smoke:
	$(GO) test -race -count=1 -run 'TestTraceSmoke|TestTraceStitchesAcrossTiers' -v . ./cmd/crcserve/

# fleet runs the distributed-tier demo: a 3-node in-process crcserve
# ring, replicated PUTs, a mid-run node kill, and a warm restart from
# the victim's drain-time snapshot.
fleet:
	$(GO) run ./cmd/crcbench fleet

# fleet-smoke is the CI failover smoke: kill-one-node with zero failed
# Do calls, ring-balance regression, snapshot round-trips — all under
# the race detector.
fleet-smoke:
	$(GO) test -race -count=1 -run 'TestPoolFailover|TestRingBalance|TestFleetDemo|TestSnapshot|TestShutdownWritesFinalSnapshot' -v . ./cmd/crcbench/ ./internal/reused/
