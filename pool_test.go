package compreuse_test

import (
	"fmt"
	"net"
	"testing"
	"time"

	"compreuse"
	"compreuse/internal/reused"
)

// startNode runs one in-process crcserve on a loopback listener.
func startNode(t *testing.T, cfg reused.Config) (*reused.Server, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := reused.New(cfg)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() { srv.Close(); <-done })
	return srv, ln.Addr().String()
}

func fleetKey(i int) []byte { return []byte(fmt.Sprintf("pool-key-%05d", i)) }

// TestPoolFailover is the fleet acceptance scenario: a 3-node ring with
// 2-way replication loses a node under traffic. Reads for keys whose
// primary died must fail over along the ring (served from the replica,
// no error), writes must re-route, and the pool must report the node
// down and count the failovers.
func TestPoolFailover(t *testing.T) {
	// Governor off: this test is about routing, and a mid-test BYPASS
	// verdict would turn hits into governor answers.
	cfg := reused.Config{Governor: reused.GovernorConfig{Window: -1}}
	srvs := make([]*reused.Server, 3)
	addrs := make([]string, 3)
	for i := range srvs {
		srvs[i], addrs[i] = startNode(t, cfg)
	}

	pool, err := compreuse.DialPool(compreuse.PoolConfig{
		Addrs:    addrs,
		Replicas: 2,
		// Keep the dead node dead for the whole test: no background
		// redial resurrecting it into the ring between assertions.
		RedialEvery: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	seg, err := pool.Segment("failover", compreuse.SegmentConfig{OutWords: 1})
	if err != nil {
		t.Fatal(err)
	}

	const n = 200
	for i := 0; i < n; i++ {
		if err := seg.Put(fleetKey(i), []uint64{uint64(i)}, time.Millisecond); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	// Replica writes are fire-and-forget; wait for the queue to drain so
	// the fallback copies exist before the primary dies.
	deadline := time.Now().Add(5 * time.Second)
	for {
		total := int64(0)
		for _, ns := range seg.NodeStats() {
			total += ns.Stats.Resident
		}
		if total >= 2*n || time.Now().After(deadline) {
			if total < 2*n {
				t.Fatalf("replicas never landed: %d resident fleet-wide, want %d", total, 2*n)
			}
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if drops := seg.ReplicaDrops(); drops != 0 {
		t.Fatalf("%d replica writes dropped with an idle queue", drops)
	}

	// Baseline: everything hits, nothing fails over.
	for i := 0; i < n; i++ {
		vals, status, err := seg.Get(fleetKey(i))
		if err != nil || status != compreuse.Hit || vals[0] != uint64(i) {
			t.Fatalf("pre-kill get %d: vals=%v status=%v err=%v", i, vals, status, err)
		}
	}

	// Kill one node. With 3 nodes, roughly a third of the keys lose
	// their primary and every one of them must be answered by a replica.
	srvs[2].Close()

	for i := 0; i < n; i++ {
		vals, status, err := seg.Get(fleetKey(i))
		if err != nil {
			t.Fatalf("post-kill get %d: %v (reads must fail over, not fail)", i, err)
		}
		if status != compreuse.Hit || vals[0] != uint64(i) {
			t.Fatalf("post-kill get %d: status=%v vals=%v, want replica hit", i, status, vals)
		}
	}

	// The pool noticed: the dead node is marked down and the reads that
	// skipped it were counted.
	downs := pool.DownNodes()
	if len(downs) != 1 || downs[0] != addrs[2] {
		t.Errorf("DownNodes = %v, want [%s]", downs, addrs[2])
	}
	var failovers int64
	for _, ns := range seg.NodeStats() {
		if ns.Addr == addrs[2] {
			if !ns.Down {
				t.Errorf("node %s not reported down", ns.Addr)
			}
			failovers += ns.Failovers
		}
	}
	if failovers == 0 {
		t.Error("no failovers counted against the dead node")
	}

	// Writes re-route: new keys whose primary died land on the next ring
	// node and read back as hits.
	for i := n; i < n+100; i++ {
		if err := seg.Put(fleetKey(i), []uint64{uint64(i)}, time.Millisecond); err != nil {
			t.Fatalf("post-kill put %d: %v (writes must re-route)", i, err)
		}
	}
	for i := n; i < n+100; i++ {
		vals, status, err := seg.Get(fleetKey(i))
		if err != nil || status != compreuse.Hit || vals[0] != uint64(i) {
			t.Fatalf("re-routed get %d: vals=%v status=%v err=%v", i, vals, status, err)
		}
	}
}

// TestPoolSingleNodeDegeneratesToClient checks the ring with one node:
// no replication partners, no fallbacks, but the same surface.
func TestPoolSingleNodeDegeneratesToClient(t *testing.T) {
	_, addr := startNode(t, reused.Config{Governor: reused.GovernorConfig{Window: -1}})
	pool, err := compreuse.DialPool(compreuse.PoolConfig{Addrs: []string{addr}})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	seg, err := pool.Segment("solo", compreuse.SegmentConfig{OutWords: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := seg.Put([]byte("k"), []uint64{3, 9}, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	vals, status, err := seg.Get([]byte("k"))
	if err != nil || status != compreuse.Hit || len(vals) != 2 || vals[1] != 9 {
		t.Fatalf("get = %v %v %v", vals, status, err)
	}
	st, err := seg.Stats()
	if err != nil || st.Hits != 1 {
		t.Fatalf("stats = %+v, %v", st, err)
	}
}
