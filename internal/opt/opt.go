// Package opt is the MiniC optimizer standing in for GCC -O3 in the
// paper's Tables 7 and 9. Together with the registerized O3 cost model
// (cost.O3), it narrows — but, as in the paper, does not close — the gap
// that computation reuse exploits.
//
// Passes (applied to a fixpoint):
//
//   - constant folding (integer and float, including casts and unary ops)
//   - algebraic simplification (x+0, x*1, x|0, x^0, x<<0, ...)
//   - strength reduction (x*2^k → x<<k)
//   - dead control elimination (if with constant condition, while(0))
//   - pure-statement elimination (expression statements with no effects)
//   - block-local copy propagation (x = y; use(x) → use(y))
//   - conservative loop-invariant code motion (hoisting pure, invariant
//     top-level declarations out of loop bodies)
//
// All rewrites are semantics-preserving on MiniC's evaluation rules;
// integer division and modulo are never strength-reduced because C's
// truncating division differs from arithmetic shifts on negatives.
package opt

import (
	"compreuse/internal/minic"
)

// Stats counts the rewrites performed.
type Stats struct {
	Folded          int
	Simplified      int
	StrengthReduced int
	DeadRemoved     int
	Hoisted         int
	Propagated      int
}

// Total returns the total number of rewrites.
func (s Stats) Total() int {
	return s.Folded + s.Simplified + s.StrengthReduced + s.DeadRemoved +
		s.Hoisted + s.Propagated
}

// Run optimizes prog in place until no more rewrites apply (bounded by a
// generous iteration cap as a livelock backstop — rewrites monotonically
// shrink or canonicalize the tree, so real programs converge in a few
// passes).
func Run(prog *minic.Program) Stats {
	o := &optimizer{prog: prog}
	for iter := 0; iter < 50; iter++ {
		before := o.stats.Total()
		for _, fn := range prog.Funcs {
			if fn.Body != nil {
				o.block(fn.Body)
				o.copyPropBlock(fn.Body)
				o.licmBlock(fn.Body)
			}
		}
		if o.stats.Total() == before {
			break
		}
	}
	return o.stats
}

type optimizer struct {
	prog  *minic.Program
	stats Stats
}

// sideEffectFree reports whether evaluating e has no observable effect.
func sideEffectFree(e minic.Expr) bool {
	pure := true
	minic.InspectExprs(e, func(x minic.Expr) bool {
		switch x.(type) {
		case *minic.AssignExpr, *minic.IncDec, *minic.Call:
			pure = false
		}
		return pure
	})
	return pure
}

func (o *optimizer) block(b *minic.Block) {
	var out []minic.Stmt
	for _, s := range b.Stmts {
		s = o.stmt(s)
		if s == nil {
			continue
		}
		// Flatten a block substituted for an if/while.
		if inner, ok := s.(*minic.Block); ok {
			o.block(inner)
			out = append(out, inner.Stmts...)
			continue
		}
		out = append(out, s)
	}
	b.Stmts = out
}

// stmt rewrites one statement; nil means "delete".
func (o *optimizer) stmt(s minic.Stmt) minic.Stmt {
	switch s := s.(type) {
	case *minic.Block:
		o.block(s)
		if len(s.Stmts) == 0 {
			o.stats.DeadRemoved++
			return nil
		}
		return s
	case *minic.DeclStmt:
		for _, d := range s.Decls {
			if d.Init != nil {
				d.Init = o.expr(d.Init)
			}
			for i := range d.InitList {
				d.InitList[i] = o.expr(d.InitList[i])
			}
		}
		return s
	case *minic.ExprStmt:
		s.X = o.expr(s.X)
		if sideEffectFree(s.X) {
			o.stats.DeadRemoved++
			return nil
		}
		return s
	case *minic.IfStmt:
		s.Cond = o.expr(s.Cond)
		if lit, ok := s.Cond.(*minic.IntLit); ok {
			o.stats.DeadRemoved++
			if lit.Val != 0 {
				return o.stmt(s.Then)
			}
			if s.Else != nil {
				return o.stmt(s.Else)
			}
			return nil
		}
		s.Then = o.keepStmt(s.Then)
		if s.Else != nil {
			s.Else = o.stmt(s.Else)
			if s.Else == nil {
				// fine: if without else
			}
		}
		return s
	case *minic.WhileStmt:
		s.Cond = o.expr(s.Cond)
		if lit, ok := s.Cond.(*minic.IntLit); ok && lit.Val == 0 {
			o.stats.DeadRemoved++
			if s.DoWhile {
				// Body runs exactly once.
				return o.keepStmt(s.Body)
			}
			return nil
		}
		s.Body = o.keepStmt(s.Body)
		return s
	case *minic.ForStmt:
		if s.Init != nil {
			s.Init = o.stmt(s.Init)
		}
		if s.Cond != nil {
			s.Cond = o.expr(s.Cond)
			if lit, ok := s.Cond.(*minic.IntLit); ok && lit.Val == 0 {
				o.stats.DeadRemoved++
				if s.Init != nil {
					return s.Init
				}
				return nil
			}
		}
		if s.Post != nil {
			s.Post = o.expr(s.Post)
		}
		s.Body = o.keepStmt(s.Body)
		return s
	case *minic.ReturnStmt:
		if s.X != nil {
			s.X = o.expr(s.X)
		}
		return s
	case *minic.ReuseRegion:
		for i := range s.Inputs {
			s.Inputs[i] = o.expr(s.Inputs[i])
		}
		s.Body = o.keepStmt(s.Body)
		return s
	default:
		return s
	}
}

// keepStmt rewrites a nested statement, substituting an empty statement if
// it is deleted (if/loop bodies must remain present).
func (o *optimizer) keepStmt(s minic.Stmt) minic.Stmt {
	ns := o.stmt(s)
	if ns == nil {
		e := &minic.EmptyStmt{}
		o.prog.AssignID(e)
		return e
	}
	return ns
}

func (o *optimizer) expr(e minic.Expr) minic.Expr {
	switch e := e.(type) {
	case *minic.Unary:
		e.X = o.expr(e.X)
		return o.foldUnary(e)
	case *minic.IncDec:
		e.X = o.expr(e.X)
		return e
	case *minic.Binary:
		e.X = o.expr(e.X)
		e.Y = o.expr(e.Y)
		return o.foldBinary(e)
	case *minic.AssignExpr:
		e.RHS = o.expr(e.RHS)
		e.LHS = o.expr(e.LHS)
		return e
	case *minic.Cond:
		e.Cond = o.expr(e.Cond)
		if lit, ok := e.Cond.(*minic.IntLit); ok {
			o.stats.Folded++
			if lit.Val != 0 {
				return o.expr(e.Then)
			}
			return o.expr(e.Else)
		}
		e.Then = o.expr(e.Then)
		e.Else = o.expr(e.Else)
		return e
	case *minic.Call:
		for i := range e.Args {
			e.Args[i] = o.expr(e.Args[i])
		}
		return e
	case *minic.Index:
		e.X = o.expr(e.X)
		e.Idx = o.expr(e.Idx)
		return e
	case *minic.FieldExpr:
		e.X = o.expr(e.X)
		return e
	case *minic.Cast:
		e.X = o.expr(e.X)
		if minic.IsInt(e.To) {
			if lit, ok := e.X.(*minic.FloatLit); ok {
				o.stats.Folded++
				return o.intLit(int64(lit.Val))
			}
			if lit, ok := e.X.(*minic.IntLit); ok {
				o.stats.Folded++
				return lit
			}
		}
		if minic.IsFloat(e.To) {
			if lit, ok := e.X.(*minic.IntLit); ok {
				o.stats.Folded++
				return o.floatLit(float64(lit.Val))
			}
			if lit, ok := e.X.(*minic.FloatLit); ok {
				o.stats.Folded++
				return lit
			}
		}
		return e
	case *minic.SizeofExpr:
		o.stats.Folded++
		return o.intLit(int64(e.T.Bytes()))
	default:
		return e
	}
}

func (o *optimizer) intLit(v int64) *minic.IntLit { return o.prog.NewIntLit(v) }

func (o *optimizer) floatLit(v float64) *minic.FloatLit { return o.prog.NewFloatLit(v) }

func (o *optimizer) foldUnary(e *minic.Unary) minic.Expr {
	switch x := e.X.(type) {
	case *minic.IntLit:
		switch e.Op {
		case minic.Minus:
			o.stats.Folded++
			return o.intLit(-x.Val)
		case minic.Plus:
			o.stats.Folded++
			return x
		case minic.Tilde:
			o.stats.Folded++
			return o.intLit(^x.Val)
		case minic.Not:
			o.stats.Folded++
			return o.intLit(b2i(x.Val == 0))
		}
	case *minic.FloatLit:
		switch e.Op {
		case minic.Minus:
			o.stats.Folded++
			return o.floatLit(-x.Val)
		case minic.Plus:
			o.stats.Folded++
			return x
		case minic.Not:
			o.stats.Folded++
			return o.intLit(b2i(x.Val == 0))
		}
	}
	return e
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func (o *optimizer) foldBinary(e *minic.Binary) minic.Expr {
	xl, xIsInt := e.X.(*minic.IntLit)
	yl, yIsInt := e.Y.(*minic.IntLit)
	xf, xIsFlt := e.X.(*minic.FloatLit)
	yf, yIsFlt := e.Y.(*minic.FloatLit)

	// Full integer fold.
	if xIsInt && yIsInt {
		if v, ok := foldIntOp(e.Op, xl.Val, yl.Val); ok {
			o.stats.Folded++
			return o.intLit(v)
		}
		return e
	}
	// Float folds (mixed int/float promote).
	if (xIsFlt || yIsFlt) && (xIsFlt || xIsInt) && (yIsFlt || yIsInt) {
		a, b := 0.0, 0.0
		if xIsFlt {
			a = xf.Val
		} else {
			a = float64(xl.Val)
		}
		if yIsFlt {
			b = yf.Val
		} else {
			b = float64(yl.Val)
		}
		if v, isInt, ok := foldFloatOp(e.Op, a, b); ok {
			o.stats.Folded++
			if isInt {
				return o.intLit(int64(v))
			}
			return o.floatLit(v)
		}
		return e
	}

	// Algebraic identities (side-effect considerations: the kept operand
	// is returned unchanged; the dropped operand is a literal, so nothing
	// is lost).
	if yIsInt {
		switch {
		case yl.Val == 0 && (e.Op == minic.Plus || e.Op == minic.Minus ||
			e.Op == minic.Pipe || e.Op == minic.Caret ||
			e.Op == minic.Shl || e.Op == minic.Shr):
			o.stats.Simplified++
			return e.X
		case yl.Val == 1 && (e.Op == minic.Star || e.Op == minic.Slash):
			if minic.IsInt(e.X.Type()) {
				o.stats.Simplified++
				return e.X
			}
		case yl.Val == 0 && e.Op == minic.Star && sideEffectFree(e.X) && minic.IsInt(e.X.Type()):
			o.stats.Simplified++
			return o.intLit(0)
		}
		// Strength reduction: x * 2^k -> x << k (int only).
		if e.Op == minic.Star && minic.IsInt(e.X.Type()) && yl.Val > 1 && isPow2(yl.Val) {
			o.stats.StrengthReduced++
			return o.prog.NewBinary(minic.Shl, e.X, o.intLit(log2(yl.Val)))
		}
	}
	if xIsInt {
		switch {
		case xl.Val == 0 && (e.Op == minic.Plus || e.Op == minic.Pipe || e.Op == minic.Caret):
			o.stats.Simplified++
			return e.Y
		case xl.Val == 1 && e.Op == minic.Star && minic.IsInt(e.Y.Type()):
			o.stats.Simplified++
			return e.Y
		case xl.Val == 0 && e.Op == minic.Star && sideEffectFree(e.Y) && minic.IsInt(e.Y.Type()):
			o.stats.Simplified++
			return o.intLit(0)
		}
		if e.Op == minic.Star && minic.IsInt(e.Y.Type()) && xl.Val > 1 && isPow2(xl.Val) {
			o.stats.StrengthReduced++
			return o.prog.NewBinary(minic.Shl, e.Y, o.intLit(log2(xl.Val)))
		}
	}
	// Float identities: x*1.0, x+0.0 are unsafe in full IEEE (signed
	// zeros, NaN); MiniC floats follow Go float64 semantics where these
	// hold for the workloads, but we stay conservative and skip them.
	return e
}

func isPow2(v int64) bool { return v > 0 && v&(v-1) == 0 }

func log2(v int64) int64 {
	var k int64
	for v > 1 {
		v >>= 1
		k++
	}
	return k
}

// foldIntOp evaluates an integer binary op at compile time.
func foldIntOp(op minic.TokKind, a, b int64) (int64, bool) {
	switch op {
	case minic.Plus:
		return a + b, true
	case minic.Minus:
		return a - b, true
	case minic.Star:
		return a * b, true
	case minic.Slash:
		if b == 0 {
			return 0, false // preserve the runtime fault
		}
		return a / b, true
	case minic.Percent:
		if b == 0 {
			return 0, false
		}
		return a % b, true
	case minic.Shl:
		return a << uint(b&63), true
	case minic.Shr:
		return a >> uint(b&63), true
	case minic.Amp:
		return a & b, true
	case minic.Pipe:
		return a | b, true
	case minic.Caret:
		return a ^ b, true
	case minic.Lt:
		return b2i(a < b), true
	case minic.Gt:
		return b2i(a > b), true
	case minic.Le:
		return b2i(a <= b), true
	case minic.Ge:
		return b2i(a >= b), true
	case minic.EqEq:
		return b2i(a == b), true
	case minic.NotEq:
		return b2i(a != b), true
	case minic.AndAnd:
		return b2i(a != 0 && b != 0), true
	case minic.OrOr:
		return b2i(a != 0 || b != 0), true
	}
	return 0, false
}

// foldFloatOp evaluates a float binary op; isInt marks comparison results.
func foldFloatOp(op minic.TokKind, a, b float64) (v float64, isInt, ok bool) {
	switch op {
	case minic.Plus:
		return a + b, false, true
	case minic.Minus:
		return a - b, false, true
	case minic.Star:
		return a * b, false, true
	case minic.Slash:
		if b == 0 {
			return 0, false, false
		}
		return a / b, false, true
	case minic.Lt:
		return float64(b2i(a < b)), true, true
	case minic.Gt:
		return float64(b2i(a > b)), true, true
	case minic.Le:
		return float64(b2i(a <= b)), true, true
	case minic.Ge:
		return float64(b2i(a >= b)), true, true
	case minic.EqEq:
		return float64(b2i(a == b)), true, true
	case minic.NotEq:
		return float64(b2i(a != b)), true, true
	}
	return 0, false, false
}
