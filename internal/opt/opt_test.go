package opt

import (
	"strings"
	"testing"
	"testing/quick"

	"compreuse/internal/cost"
	"compreuse/internal/interp"
	"compreuse/internal/minic"
)

func compile(t *testing.T, src string) *minic.Program {
	t.Helper()
	prog, err := minic.Parse("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := minic.Check(prog); err != nil {
		t.Fatal(err)
	}
	return prog
}

// optBoth runs src unoptimized and optimized and checks identical results.
func optBoth(t *testing.T, src string) (before, after *interp.Result, stats Stats) {
	t.Helper()
	p1 := compile(t, src)
	r1, err := interp.Run(p1, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p2 := compile(t, src)
	st := Run(p2)
	r2, err := interp.Run(p2, interp.Options{})
	if err != nil {
		t.Fatalf("optimized run: %v\n%s", err, minic.Print(p2))
	}
	if r1.Ret != r2.Ret || r1.Output != r2.Output {
		t.Fatalf("optimization changed semantics: ret %d->%d out %q->%q\n%s",
			r1.Ret, r2.Ret, r1.Output, r2.Output, minic.Print(p2))
	}
	return r1, r2, st
}

func TestConstantFolding(t *testing.T) {
	_, _, st := optBoth(t, `
int main(void) {
    int a = 2 + 3 * 4;           // 14
    int b = (10 / 3) % 2;        // 1
    int c = 1 << 10;             // 1024
    float f = 2.5 * 4.0;         // 10.0
    int d = (int)(1.0 + 2.5);    // 3
    return a + b + c + d + (int)f;
}`)
	if st.Folded == 0 {
		t.Fatal("nothing folded")
	}
}

func TestFoldedProgramIsCheaper(t *testing.T) {
	r1, r2, _ := optBoth(t, `
int main(void) {
    int s = 0;
    int i;
    for (i = 0; i < 1000; i++)
        s += 3 * 4 + (i * 8);    // folds and strength-reduces
    return s & 1023;
}`)
	if r2.Cycles >= r1.Cycles {
		t.Fatalf("optimized not cheaper: %d vs %d", r2.Cycles, r1.Cycles)
	}
}

func TestStrengthReduction(t *testing.T) {
	p := compile(t, `int f(int x) { return x * 8; }`)
	st := Run(p)
	if st.StrengthReduced != 1 {
		t.Fatalf("strength reduced = %d", st.StrengthReduced)
	}
	out := minic.Print(p)
	if !strings.Contains(out, "x << 3") {
		t.Fatalf("expected shift:\n%s", out)
	}
}

func TestStrengthReductionProperty(t *testing.T) {
	// x*2^k == x<<k for all int32 x (the fold must preserve semantics on
	// negatives too).
	f := func(x int32, k uint8) bool {
		shift := int64(k % 16)
		mult := int64(1) << uint(shift)
		return int64(x)*mult == int64(x)<<uint(shift)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNoDivStrengthReduction(t *testing.T) {
	// -7/2 == -3 but -7>>1 == -4: division must never become a shift.
	p := compile(t, `int f(int x) { return x / 2; }`)
	Run(p)
	out := minic.Print(p)
	if strings.Contains(out, ">>") {
		t.Fatalf("unsound division strength reduction:\n%s", out)
	}
	optBoth(t, `int main(void) { int x = -7; return x / 2; }`)
}

func TestAlgebraicIdentities(t *testing.T) {
	p := compile(t, `int f(int x) { return (x + 0) * 1 + (x | 0) + (x ^ 0) + (x << 0); }`)
	st := Run(p)
	if st.Simplified < 4 {
		t.Fatalf("simplified = %d, want >= 4", st.Simplified)
	}
	optBoth(t, `int main(void) { int x = 5; return (x + 0) * 1 + (x | 0); }`)
}

func TestMulZeroKeepsSideEffects(t *testing.T) {
	// f() * 0 must still call f.
	_, _, _ = optBoth(t, `
int calls = 0;
int f(void) { calls++; return 7; }
int main(void) {
    int r = f() * 0;
    __assert(calls == 1);
    return r;
}`)
}

func TestDeadBranchElimination(t *testing.T) {
	p := compile(t, `
int main(void) {
    int s = 0;
    if (1) s = 10; else s = 20;
    if (0) s += 100;
    while (0) s += 1000;
    return s;
}`)
	st := Run(p)
	if st.DeadRemoved == 0 {
		t.Fatal("no dead code removed")
	}
	out := minic.Print(p)
	if strings.Contains(out, "100") || strings.Contains(out, "while") {
		t.Fatalf("dead code survived:\n%s", out)
	}
	optBoth(t, `
int main(void) {
    int s = 0;
    if (1) s = 10; else s = 20;
    if (0) s += 100;
    while (0) s += 1000;
    return s;
}`)
}

func TestDoWhileZeroRunsOnce(t *testing.T) {
	optBoth(t, `
int main(void) {
    int n = 0;
    do { n++; } while (0);
    __assert(n == 1);
    return n;
}`)
}

func TestPureStatementRemoved(t *testing.T) {
	p := compile(t, `
int main(void) {
    int x = 3;
    x + 4;       // pure: removed
    x;           // pure: removed
    return x;
}`)
	st := Run(p)
	if st.DeadRemoved < 2 {
		t.Fatalf("dead removed = %d", st.DeadRemoved)
	}
}

func TestTernaryFold(t *testing.T) {
	optBoth(t, `
int main(void) {
    int a = 1 ? 10 : 20;
    int b = 0 ? 30 : 40;
    __assert(a == 10);
    __assert(b == 40);
    return a + b;
}`)
}

func TestOptPreservesComplexProgram(t *testing.T) {
	optBoth(t, `
int power2[15] = {1,2,4,8,16,32,64,128,256,512,1024,2048,4096,8192,16384};
int quan(int val) {
    int i;
    for (i = 0; i < 15; i++)
        if (val < power2[i])
            break;
    return (i);
}
int main(void) {
    int s = 0;
    int v;
    for (v = 0; v < 300; v++)
        s += quan(v * 2);
    print_int(s);
    return s & 255;
}`)
}

func TestO3PipelineCheaperThanO0(t *testing.T) {
	src := `
int main(void) {
    int s = 0;
    int i;
    for (i = 0; i < 2000; i++)
        s += (i * 4) + (3 * 5) + (i % 7);
    return s & 4095;
}`
	p0 := compile(t, src)
	r0, err := interp.Run(p0, interp.Options{Model: cost.O0()})
	if err != nil {
		t.Fatal(err)
	}
	p3 := compile(t, src)
	Run(p3)
	r3, err := interp.Run(p3, interp.Options{Model: cost.O3()})
	if err != nil {
		t.Fatal(err)
	}
	if r3.Ret != r0.Ret {
		t.Fatal("results differ")
	}
	if float64(r3.Cycles) > 0.8*float64(r0.Cycles) {
		t.Fatalf("O3 pipeline should be much cheaper: O0=%d O3=%d", r0.Cycles, r3.Cycles)
	}
}

func TestFixpointTermination(t *testing.T) {
	// Cascading folds must terminate and fully reduce.
	p := compile(t, `int main(void) { return ((1 + 2) * (3 + 4)) << (2 - 1); }`)
	Run(p)
	ret := p.Func("main").Body.Stmts[0].(*minic.ReturnStmt)
	lit, ok := ret.X.(*minic.IntLit)
	if !ok || lit.Val != 42 {
		t.Fatalf("not fully folded: %s", minic.PrintExpr(ret.X))
	}
}

func TestLICMHoistsInvariantDecl(t *testing.T) {
	p := compile(t, `
int base;
int f(int n) {
    int s = 0;
    int i;
    for (i = 0; i < n; i++) {
        int scale = base * 3 + 7;   // invariant: hoisted
        int varying = i * 2;        // depends on i: stays
        s += scale + varying;
    }
    return s;
}`)
	st := Run(p)
	if st.Hoisted != 1 {
		t.Fatalf("hoisted = %d, want 1\n%s", st.Hoisted, minic.Print(p))
	}
	out := minic.Print(p)
	// The hoisted declaration appears before the for loop.
	forIdx := strings.Index(out, "for (")
	declIdx := strings.Index(out, "int scale")
	if declIdx == -1 || forIdx == -1 || declIdx > forIdx {
		t.Fatalf("scale not hoisted before loop:\n%s", out)
	}
	optBoth(t, `
int base = 5;
int f(int n) {
    int s = 0;
    int i;
    for (i = 0; i < n; i++) {
        int scale = base * 3 + 7;
        int varying = i * 2;
        s += scale + varying;
    }
    return s;
}
int main(void) { return f(9); }`)
}

func TestLICMRespectsLoopWrites(t *testing.T) {
	p := compile(t, `
int f(int n) {
    int s = 0;
    int base = 1;
    int i;
    for (i = 0; i < n; i++) {
        int x = base * 2;   // base changes below: NOT invariant
        base = base + 1;
        s += x;
    }
    return s;
}`)
	st := Run(p)
	if st.Hoisted != 0 {
		t.Fatalf("hoisted = %d, want 0\n%s", st.Hoisted, minic.Print(p))
	}
	optBoth(t, `
int f(int n) {
    int s = 0;
    int base = 1;
    int i;
    for (i = 0; i < n; i++) {
        int x = base * 2;
        base = base + 1;
        s += x;
    }
    return s;
}
int main(void) { return f(7); }`)
}

func TestLICMDependentDecls(t *testing.T) {
	// b reads a: both hoist (in order); c reads the loop-varying i: stays.
	p := compile(t, `
int k = 3;
int f(int n) {
    int s = 0;
    int i;
    for (i = 0; i < n; i++) {
        int a = k * 2;
        int b = a + 5;
        int c = i + b;
        s += c;
    }
    return s;
}`)
	st := Run(p)
	if st.Hoisted != 2 {
		t.Fatalf("hoisted = %d, want 2 (a and b)\n%s", st.Hoisted, minic.Print(p))
	}
	optBoth(t, `
int k = 3;
int f(int n) {
    int s = 0;
    int i;
    for (i = 0; i < n; i++) {
        int a = k * 2;
        int b = a + 5;
        int c = i + b;
        s += c;
    }
    return s;
}
int main(void) { return f(5); }`)
}

func TestLICMSkipsLoopsWithCalls(t *testing.T) {
	p := compile(t, `
int g;
int bump(void) { g++; return g; }
int f(int n) {
    int s = 0;
    int i;
    for (i = 0; i < n; i++) {
        int x = g * 2;    // g changes through bump(): must stay
        s += x + bump();
    }
    return s;
}`)
	st := Run(p)
	if st.Hoisted != 0 {
		t.Fatalf("hoisted = %d, want 0", st.Hoisted)
	}
}

func TestLICMReducesCycles(t *testing.T) {
	src := `
int base = 9;
int main(void) {
    int s = 0;
    int i;
    for (i = 0; i < 2000; i++) {
        int heavy = (base * base + base / 3) % 1001;
        s = (s + heavy + i) & 65535;
    }
    return s;
}`
	p1 := compile(t, src)
	r1, err := interp.Run(p1, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p2 := compile(t, src)
	Run(p2)
	r2, err := interp.Run(p2, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Ret != r2.Ret {
		t.Fatal("semantics broken")
	}
	// The division and modulo leave the loop: big win.
	if float64(r2.Cycles) > 0.7*float64(r1.Cycles) {
		t.Fatalf("LICM saved too little: %d -> %d", r1.Cycles, r2.Cycles)
	}
}

func TestCopyPropagation(t *testing.T) {
	p := compile(t, `
int f(int a) {
    int x = a;
    int y = x + x;   // reads become a + a
    return y;
}`)
	st := Run(p)
	if st.Propagated < 2 {
		t.Fatalf("propagated = %d, want >= 2\n%s", st.Propagated, minic.Print(p))
	}
	out := minic.Print(p)
	if !strings.Contains(out, "a + a") {
		t.Fatalf("copies not propagated:\n%s", out)
	}
	optBoth(t, `
int f(int a) {
    int x = a;
    int y = x + x;
    return y;
}
int main(void) { return f(21); }`)
}

func TestCopyPropagationKilledByWrite(t *testing.T) {
	optBoth(t, `
int main(void) {
    int a = 3;
    int x = a;
    a = 10;          // kills the copy
    int y = x + a;   // x must still be 3
    __assert(y == 13);
    return y;
}`)
}

func TestCopyPropagationSelfAssign(t *testing.T) {
	// The degenerate self-copy (often produced by folding) terminates.
	optBoth(t, `
int main(void) {
    int c = 5;
    c = c + 0;      // folds to c = c
    int d = c;
    return d;
}`)
}

func TestCopyPropagationSkipsAddressTaken(t *testing.T) {
	optBoth(t, `
int set(int *p) { *p = 99; return 0; }
int main(void) {
    int a = 3;
    int x = a;      // a is address-taken: no propagation
    set(&a);
    __assert(x == 3);
    __assert(a == 99);
    return x + a;
}`)
}
