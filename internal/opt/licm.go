package opt

import (
	"compreuse/internal/minic"
)

// Loop-invariant code motion, in a deliberately conservative form: a
// top-level declaration of a loop body whose initializer is pure (no
// calls, assignments, increments, dereferences) and reads only symbols the
// loop never writes is moved in front of the loop. Moving a declaration is
// safe even for zero-trip loops — the variable is invisible outside the
// body, and a pure initializer has no observable effect beyond its cost.
//
//	for (i = 0; i < n; i++) {          int scale = base * 4;
//	    int scale = base * 4;    =>    for (i = 0; i < n; i++) {
//	    use(scale, i);                     use(scale, i);
//	}                                  }

// licmBlock hoists invariant declarations inside the loops of b, rewriting
// the statement list in place. Returns the number of hoists.
func (o *optimizer) licmBlock(b *minic.Block) int {
	hoists := 0
	var out []minic.Stmt
	for _, s := range b.Stmts {
		pre := o.licmStmt(s)
		hoists += len(pre)
		out = append(out, pre...)
		out = append(out, s)
	}
	b.Stmts = out
	return hoists
}

// licmStmt recurses into control statements and returns declarations
// hoisted out of loops to be placed before the statement.
func (o *optimizer) licmStmt(s minic.Stmt) []minic.Stmt {
	switch s := s.(type) {
	case *minic.Block:
		o.licmBlock(s)
		return nil
	case *minic.IfStmt:
		o.licmNested(&s.Then)
		if s.Else != nil {
			o.licmNested(&s.Else)
		}
		return nil
	case *minic.WhileStmt:
		pre := o.hoistFromLoop(s.Body, s)
		o.licmNested(&s.Body)
		return pre
	case *minic.ForStmt:
		pre := o.hoistFromLoop(s.Body, s)
		o.licmNested(&s.Body)
		return pre
	case *minic.ReuseRegion:
		o.licmNested(&s.Body)
		return nil
	}
	return nil
}

func (o *optimizer) licmNested(sp *minic.Stmt) {
	if b, ok := (*sp).(*minic.Block); ok {
		o.licmBlock(b)
		return
	}
	pre := o.licmStmt(*sp)
	if len(pre) > 0 {
		*sp = o.prog.NewBlock(append(pre, *sp)...)
	}
}

// hoistFromLoop removes hoistable declarations from the top level of a
// loop body and returns them.
func (o *optimizer) hoistFromLoop(body minic.Stmt, loop minic.Stmt) []minic.Stmt {
	blk, ok := body.(*minic.Block)
	if !ok {
		return nil
	}
	written, declared := loopWrites(loop)
	if written == nil {
		return nil // a call somewhere: assume everything may change
	}
	// A read of a body-declared variable is only invariant if that
	// variable is itself being hoisted (its per-iteration value would
	// otherwise differ from the hoisted single evaluation).
	hoistedSyms := map[*minic.Symbol]bool{}
	varies := func(sym *minic.Symbol) bool {
		if written[sym] {
			return true
		}
		return declared[sym] && !hoistedSyms[sym]
	}

	var hoisted []minic.Stmt
	var kept []minic.Stmt
	for _, st := range blk.Stmts {
		ds, isDecl := st.(*minic.DeclStmt)
		if !isDecl {
			kept = append(kept, st)
			continue
		}
		var keepDecls []*minic.VarDecl
		for _, d := range ds.Decls {
			if d.Init != nil && d.InitList == nil &&
				!written[d.Sym] && invariantExpr(d.Init, varies) {
				hoisted = append(hoisted, o.prog.NewDeclStmt(d))
				hoistedSyms[d.Sym] = true
				o.stats.Hoisted++
			} else {
				keepDecls = append(keepDecls, d)
			}
		}
		if len(keepDecls) > 0 {
			ds.Decls = keepDecls
			kept = append(kept, ds)
		}
	}
	blk.Stmts = kept
	return hoisted
}

// loopWrites collects the symbols the loop may assign (assignment targets,
// inc/dec, array-element bases, reuse outputs) and, separately, the
// symbols it declares. It returns (nil, nil) — meaning "unknown" — if the
// loop contains any call or pointer store.
func loopWrites(loop minic.Stmt) (written, declared map[*minic.Symbol]bool) {
	w := map[*minic.Symbol]bool{}
	d := map[*minic.Symbol]bool{}
	ok := true
	minic.Inspect(loop, func(n minic.Node) bool {
		switch x := n.(type) {
		case *minic.Call:
			ok = false
		case *minic.VarDecl:
			d[x.Sym] = true
		case *minic.AssignExpr:
			collectWriteTarget(x.LHS, w, &ok)
		case *minic.IncDec:
			collectWriteTarget(x.X, w, &ok)
		case *minic.ReuseRegion:
			for _, out := range x.Outputs {
				collectWriteTarget(out, w, &ok)
			}
		}
		return ok
	})
	if !ok {
		return nil, nil
	}
	return w, d
}

func collectWriteTarget(lv minic.Expr, w map[*minic.Symbol]bool, ok *bool) {
	switch lv := lv.(type) {
	case *minic.Ident:
		if lv.Sym != nil {
			w[lv.Sym] = true
		}
	case *minic.Index:
		if id, isID := lv.X.(*minic.Ident); isID && id.Sym != nil {
			w[id.Sym] = true
			return
		}
		*ok = false // complex base: give up
	case *minic.FieldExpr:
		root := minic.Expr(lv)
		for {
			f, isF := root.(*minic.FieldExpr)
			if !isF || f.Arrow {
				break
			}
			root = f.X
		}
		if id, isID := root.(*minic.Ident); isID && id.Sym != nil {
			w[id.Sym] = true
			return
		}
		*ok = false
	default:
		*ok = false // pointer store etc.
	}
}

// invariantExpr reports whether e is pure and reads nothing that varies
// per iteration. Array reads are allowed only when the base array is
// unwritten; dereferences are never allowed (aliasing is not tracked
// here).
func invariantExpr(e minic.Expr, varies func(*minic.Symbol) bool) bool {
	ok := true
	minic.InspectExprs(e, func(x minic.Expr) bool {
		switch x := x.(type) {
		case *minic.Call, *minic.AssignExpr, *minic.IncDec:
			ok = false
		case *minic.Unary:
			if x.Op == minic.Star || x.Op == minic.Amp {
				ok = false
			}
		case *minic.FieldExpr:
			if x.Arrow {
				ok = false
			}
		case *minic.Ident:
			if x.Sym == nil || varies(x.Sym) || x.Sym.AddrTaken {
				ok = false
			}
		}
		return ok
	})
	return ok
}
