package opt

import (
	"compreuse/internal/minic"
)

// Block-local copy propagation: after "x = y" (both address-free scalar
// locals), subsequent reads of x become reads of y until either variable
// is written. Tracking is reset at control flow and calls — deliberately
// simple, as befits a per-basic-block pass.

// copyPropBlock runs copy propagation over b and nested blocks.
func (o *optimizer) copyPropBlock(b *minic.Block) {
	copies := map[*minic.Symbol]*minic.Symbol{} // x -> y
	kill := func(sym *minic.Symbol) {
		delete(copies, sym)
		for x, y := range copies {
			if y == sym {
				delete(copies, x)
			}
		}
	}
	reset := func() { copies = map[*minic.Symbol]*minic.Symbol{} }

	for _, s := range b.Stmts {
		switch st := s.(type) {
		case *minic.DeclStmt:
			for _, d := range st.Decls {
				if d.Init != nil {
					d.Init = o.propagate(d.Init, copies)
					if !exprHasEffects(d.Init) {
						if src, ok := copySource(d.Init); ok && eligibleCopy(d.Sym, src) {
							kill(d.Sym)
							copies[d.Sym] = src
							continue
						}
					} else {
						reset()
					}
				}
				kill(d.Sym)
			}
		case *minic.ExprStmt:
			as, isAssign := st.X.(*minic.AssignExpr)
			if !isAssign || as.Op != minic.Assign {
				st.X = o.propagate(st.X, copies)
				if exprHasEffects(st.X) {
					reset()
				}
				continue
			}
			as.RHS = o.propagate(as.RHS, copies)
			lhs, isIdent := as.LHS.(*minic.Ident)
			if exprHasEffects(as.RHS) || !isIdent {
				// Complex targets or effectful sources: be conservative.
				as.LHS = o.propagate(as.LHS, copies)
				reset()
				continue
			}
			kill(lhs.Sym)
			if src, ok := copySource(as.RHS); ok && eligibleCopy(lhs.Sym, src) {
				copies[lhs.Sym] = src
			}
		case *minic.Block:
			o.copyPropBlock(st)
			reset()
		case *minic.IfStmt, *minic.WhileStmt, *minic.ForStmt, *minic.ReturnStmt, *minic.ReuseRegion:
			// Conditions and nested bodies are handled by the recursive
			// optimizer walk; at this block's level they are barriers.
			o.copyPropNested(s)
			reset()
		default:
			reset()
		}
	}
}

// copyPropNested recurses into the blocks of a control statement.
func (o *optimizer) copyPropNested(s minic.Stmt) {
	switch st := s.(type) {
	case *minic.IfStmt:
		if b, ok := st.Then.(*minic.Block); ok {
			o.copyPropBlock(b)
		}
		if b, ok := st.Else.(*minic.Block); ok {
			o.copyPropBlock(b)
		}
	case *minic.WhileStmt:
		if b, ok := st.Body.(*minic.Block); ok {
			o.copyPropBlock(b)
		}
	case *minic.ForStmt:
		if b, ok := st.Body.(*minic.Block); ok {
			o.copyPropBlock(b)
		}
	case *minic.ReuseRegion:
		if b, ok := st.Body.(*minic.Block); ok {
			o.copyPropBlock(b)
		}
	}
}

// copySource recognizes a plain scalar-variable read.
func copySource(e minic.Expr) (*minic.Symbol, bool) {
	id, ok := e.(*minic.Ident)
	if !ok || id.Sym == nil {
		return nil, false
	}
	return id.Sym, true
}

// eligibleCopy restricts propagation to address-free scalar locals of the
// same type (globals may change across calls; aliased variables through
// stores).
func eligibleCopy(dst, src *minic.Symbol) bool {
	if dst == src {
		return false // a self-copy must not register (it would re-propagate forever)
	}
	okKind := func(s *minic.Symbol) bool {
		return (s.Kind == minic.SymLocal || s.Kind == minic.SymParam) &&
			!s.AddrTaken && minic.IsScalar(s.Type)
	}
	return okKind(dst) && okKind(src) && minic.Identical(dst.Type, src.Type)
}

// propagate replaces reads of copied variables inside e (but never
// assignment targets).
func (o *optimizer) propagate(e minic.Expr, copies map[*minic.Symbol]*minic.Symbol) minic.Expr {
	if len(copies) == 0 {
		return e
	}
	switch x := e.(type) {
	case *minic.Ident:
		if y, ok := copies[x.Sym]; ok {
			o.stats.Propagated++
			return o.prog.NewIdent(y)
		}
		return x
	case *minic.Unary:
		if x.Op == minic.Amp {
			return x // never rewrite address-of operands
		}
		x.X = o.propagate(x.X, copies)
		return x
	case *minic.Binary:
		x.X = o.propagate(x.X, copies)
		x.Y = o.propagate(x.Y, copies)
		return x
	case *minic.Cond:
		x.Cond = o.propagate(x.Cond, copies)
		x.Then = o.propagate(x.Then, copies)
		x.Else = o.propagate(x.Else, copies)
		return x
	case *minic.Call:
		for i := range x.Args {
			x.Args[i] = o.propagate(x.Args[i], copies)
		}
		return x
	case *minic.Index:
		x.X = o.propagate(x.X, copies)
		x.Idx = o.propagate(x.Idx, copies)
		return x
	case *minic.Cast:
		x.X = o.propagate(x.X, copies)
		return x
	case *minic.FieldExpr:
		x.X = o.propagate(x.X, copies)
		return x
	case *minic.AssignExpr:
		// Only the RHS reads; the target keeps its own variable.
		x.RHS = o.propagate(x.RHS, copies)
		return x
	case *minic.IncDec:
		return x
	default:
		return e
	}
}

// exprHasEffects reports writes or calls anywhere in e.
func exprHasEffects(e minic.Expr) bool { return !sideEffectFree(e) }
