package opt

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"compreuse/internal/cost"
	"compreuse/internal/interp"
	"compreuse/internal/minic"
)

// This file is a differential fuzzer over randomly generated MiniC
// programs: for each program it checks that (1) printing and re-parsing
// reproduces the same program, (2) the optimizer preserves results and
// output, and (3) the O0 and O3 cost models agree on semantics. Division
// and modulo are generated with guards so the programs are fault-free.

// exprGen builds random integer expressions over the in-scope variables.
type exprGen struct {
	rng  *rand.Rand
	vars []string
}

func (g *exprGen) expr(depth int) string {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		if len(g.vars) > 0 && g.rng.Intn(2) == 0 {
			return g.vars[g.rng.Intn(len(g.vars))]
		}
		return fmt.Sprintf("%d", g.rng.Intn(201)-100)
	}
	switch g.rng.Intn(10) {
	case 0:
		return fmt.Sprintf("(%s + %s)", g.expr(depth-1), g.expr(depth-1))
	case 1:
		return fmt.Sprintf("(%s - %s)", g.expr(depth-1), g.expr(depth-1))
	case 2:
		return fmt.Sprintf("(%s * %s)", g.expr(depth-1), g.expr(depth-1))
	case 3:
		// Guarded division: divisor is |e| + 1..8.
		return fmt.Sprintf("(%s / (((%s < 0) ? (0 - %s) : %s) + %d))",
			g.expr(depth-1), g.vars[0], g.vars[0], g.vars[0], g.rng.Intn(8)+1)
	case 4:
		return fmt.Sprintf("(%s %% (((%s < 0) ? (0 - %s) : %s) + %d))",
			g.expr(depth-1), g.vars[0], g.vars[0], g.vars[0], g.rng.Intn(8)+1)
	case 5:
		return fmt.Sprintf("(%s & %s)", g.expr(depth-1), g.expr(depth-1))
	case 6:
		return fmt.Sprintf("(%s | %s)", g.expr(depth-1), g.expr(depth-1))
	case 7:
		return fmt.Sprintf("(%s ^ %s)", g.expr(depth-1), g.expr(depth-1))
	case 8:
		return fmt.Sprintf("(%s << %d)", g.expr(depth-1), g.rng.Intn(8))
	default:
		return fmt.Sprintf("((%s < %s) ? %s : %s)",
			g.expr(depth-1), g.expr(depth-1), g.expr(depth-1), g.expr(depth-1))
	}
}

// genProgram builds a random straight-line-plus-control program.
func genProgram(rng *rand.Rand) string {
	g := &exprGen{rng: rng, vars: []string{"a", "b", "c"}}
	var sb strings.Builder
	sb.WriteString("int main(int a, int b) {\n")
	sb.WriteString("    int c = a ^ b;\n")
	nStmts := 3 + rng.Intn(6)
	for i := 0; i < nStmts; i++ {
		switch rng.Intn(5) {
		case 0:
			fmt.Fprintf(&sb, "    c = %s;\n", g.expr(3))
		case 1:
			fmt.Fprintf(&sb, "    if (%s) { c = %s; } else { c = %s; }\n",
				g.expr(2), g.expr(2), g.expr(2))
		case 2:
			fmt.Fprintf(&sb, "    { int k%d; for (k%d = 0; k%d < %d; k%d++) c = (c + %s) & 65535; }\n",
				i, i, i, rng.Intn(9)+1, i, g.expr(2))
		case 3:
			fmt.Fprintf(&sb, "    switch (c & 3) {\n    case 0:\n        c = %s;\n        break;\n"+
				"    case 1:\n    case 2:\n        c = %s;\n        break;\n    default:\n        c = %s;\n    }\n",
				g.expr(2), g.expr(2), g.expr(2))
		default:
			fmt.Fprintf(&sb, "    a = (a + %s) & 32767;\n", g.expr(2))
		}
	}
	sb.WriteString("    print_int(c);\n")
	sb.WriteString("    return c & 255;\n")
	sb.WriteString("}\n")
	return sb.String()
}

func compileSrc(t *testing.T, src string) *minic.Program {
	t.Helper()
	prog, err := minic.Parse("fuzz.c", src)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	if err := minic.Check(prog); err != nil {
		t.Fatalf("check: %v\n%s", err, src)
	}
	return prog
}

func TestFuzzDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(20040320)) // CGO 2004's opening day
	iters := 200
	if testing.Short() {
		iters = 40
	}
	for i := 0; i < iters; i++ {
		src := genProgram(rng)
		args := []int64{int64(rng.Intn(2001) - 1000), int64(rng.Intn(2001) - 1000)}

		ref, err := interp.Run(compileSrc(t, src), interp.Options{Args: args})
		if err != nil {
			t.Fatalf("iter %d: reference run: %v\n%s", i, err, src)
		}

		// (1) print -> re-parse -> identical behavior.
		printed := minic.Print(compileSrc(t, src))
		rt, err := interp.Run(compileSrc(t, printed), interp.Options{Args: args})
		if err != nil {
			t.Fatalf("iter %d: reprint run: %v\n--- printed ---\n%s", i, err, printed)
		}
		if rt.Ret != ref.Ret || rt.Output != ref.Output {
			t.Fatalf("iter %d: print round-trip changed semantics\n%s\n--- printed ---\n%s",
				i, src, printed)
		}

		// (2) optimizer preserves semantics.
		op := compileSrc(t, src)
		Run(op)
		or, err := interp.Run(op, interp.Options{Args: args})
		if err != nil {
			t.Fatalf("iter %d: optimized run: %v\n%s\n--- optimized ---\n%s",
				i, err, src, minic.Print(op))
		}
		if or.Ret != ref.Ret || or.Output != ref.Output {
			t.Fatalf("iter %d: optimization changed semantics: ret %d->%d out %q->%q\n%s\n--- optimized ---\n%s",
				i, ref.Ret, or.Ret, ref.Output, or.Output, src, minic.Print(op))
		}

		// (3) O3 cost model agrees on results and never costs more.
		o3p := compileSrc(t, src)
		Run(o3p)
		o3r, err := interp.Run(o3p, interp.Options{Model: cost.O3(), Args: args})
		if err != nil {
			t.Fatalf("iter %d: O3 run: %v", i, err)
		}
		if o3r.Ret != ref.Ret || o3r.Output != ref.Output {
			t.Fatalf("iter %d: O3 changed semantics", i)
		}
		if o3r.Cycles > ref.Cycles {
			t.Fatalf("iter %d: O3 (%d cycles) costs more than O0 (%d)\n%s",
				i, o3r.Cycles, ref.Cycles, src)
		}
	}
}
