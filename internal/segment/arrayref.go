package segment

import (
	"compreuse/internal/cost"
	"compreuse/internal/dataflow"
	"compreuse/internal/minic"
)

// This file is the array reference analysis for array inputs/outputs
// (paper §3.1). Restoring an aggregate output from the table is only sound
// when the table entry determines the aggregate's entire post-segment
// contents. Three cases are accepted:
//
//   - the aggregate is also an input: its pre-state is part of the hash
//     key, so equal keys imply equal post-states;
//   - the segment provably overwrites the whole aggregate on every
//     execution (a counted loop or loop nest covering all elements), as
//     the MPEG2 fDCT/IDCT kernels do with their 8×8 blocks;
//   - every write into the array is an unconditional element store
//     arr[idx] = … whose index depends only on segment inputs and
//     invariants: the written locations and values are then functions of
//     the key, and the table records the elements arr[idx] themselves
//     (the UNEPIC pattern).

// buildOutputs converts the live-after definition set into Output specs,
// applying the aggregate rules. It reports false (failing the segment) if
// some aggregate cannot be handled soundly.
func (a *Analysis) buildOutputs(s *Segment, outs []*minic.Symbol) bool {
	// Whole-variable inputs put the aggregate pre-state in the key;
	// element inputs do not.
	inputs := map[*minic.Symbol]bool{}
	for _, in := range s.Inputs {
		if in.Elem == nil {
			inputs[in.Sym] = true
		}
	}
	for _, sym := range outs {
		if !minic.IsAggregate(sym.Type) || inputs[sym] {
			s.Outputs = append(s.Outputs, Output{Sym: sym})
			continue
		}
		at, isArr := sym.Type.(*minic.Array)
		if !isArr {
			s.fail("struct output %s is not also an input", sym.Name)
			return false
		}
		if wholeArrayWrite(s.Body, sym, at) {
			s.Outputs = append(s.Outputs, Output{Sym: sym})
			continue
		}
		elems, ok := a.elemOutputs(s, sym)
		if !ok {
			s.fail("array output %s is neither an input nor fully written", sym.Name)
			return false
		}
		for _, idx := range elems {
			s.Outputs = append(s.Outputs, Output{Sym: sym, Elem: idx})
		}
	}
	return true
}

// elemOutputs collects the distinct element-store index expressions for
// arr inside the segment body, verifying the soundness conditions: every
// write to arr is an unconditional, top-level arr[idx] = … whose idx reads
// only inputs/invariants, and no pointer or call may write arr.
func (a *Analysis) elemOutputs(s *Segment, arr *minic.Symbol) ([]minic.Expr, bool) {
	allowed := map[*minic.Symbol]bool{}
	for _, in := range s.Inputs {
		if in.Elem == nil {
			allowed[in.Sym] = true
		}
	}
	for _, in := range s.Invariants {
		allowed[in] = true
	}
	if s.AddrVar != nil {
		// The address-only induction variable may index element outputs:
		// it selects locations, never values.
		allowed[s.AddrVar] = true
	}

	// Index expressions of accepted unconditional writes, deduplicated by
	// printed form.
	var elems []minic.Expr
	seen := map[string]bool{}
	acceptedStores := map[minic.Expr]bool{}

	depsOK := func(idx minic.Expr) bool {
		ok := true
		for _, id := range minic.Idents(idx) {
			if id.Sym == nil || !allowed[id.Sym] {
				ok = false
			}
		}
		// Index must be side-effect free.
		minic.InspectExprs(idx, func(e minic.Expr) bool {
			switch e.(type) {
			case *minic.AssignExpr, *minic.IncDec, *minic.Call:
				ok = false
			}
			return ok
		})
		return ok
	}

	// Pass 1: accept unconditional top-level stores.
	walkUnconditional(s.Body, func(st minic.Stmt) {
		es, ok := st.(*minic.ExprStmt)
		if !ok {
			return
		}
		as, ok := es.X.(*minic.AssignExpr)
		if !ok || as.Op != minic.Assign {
			return
		}
		ix, ok := as.LHS.(*minic.Index)
		if !ok {
			return
		}
		base, ok := ix.X.(*minic.Ident)
		if !ok || base.Sym != arr {
			return
		}
		if !minic.IsScalar(ix.Type()) || !depsOK(ix.Idx) {
			return
		}
		acceptedStores[as.LHS] = true
		key := minic.PrintExpr(ix.Idx)
		if !seen[key] {
			seen[key] = true
			elems = append(elems, ix.Idx)
		}
	})
	if len(elems) == 0 {
		return nil, false
	}

	// Pass 2: every other write that may touch arr disqualifies.
	sound := true
	minic.Inspect(s.Body, func(n minic.Node) bool {
		if !sound {
			return false
		}
		switch x := n.(type) {
		case *minic.AssignExpr:
			if acceptedStores[x.LHS] {
				return true
			}
			if a.mayWriteSym(x.LHS, arr) {
				sound = false
			}
		case *minic.IncDec:
			if a.mayWriteSym(x.X, arr) {
				sound = false
			}
		case *minic.Call:
			if id, ok := x.Fun.(*minic.Ident); ok && id.Sym != nil &&
				id.Sym.Kind == minic.SymFunc && id.Sym.FuncDecl == nil {
				return true // builtin
			}
			for _, callee := range a.Pts.CallTargets(x) {
				if a.Eff.FuncModRef(callee).Mod[arr] {
					sound = false
				}
			}
		}
		return sound
	})
	if !sound {
		return nil, false
	}
	return elems, true
}

// mayWriteSym reports whether a store through lvalue lv may modify sym.
func (a *Analysis) mayWriteSym(lv minic.Expr, sym *minic.Symbol) bool {
	w := dataflow.SymSet{}
	a.collectWrite(lv, w)
	return w[sym]
}

// wholeArrayWrite reports whether body contains an unconditional counted
// loop (or 2-D loop nest) that assigns every element of arr.
func wholeArrayWrite(body minic.Stmt, arr *minic.Symbol, at *minic.Array) bool {
	found := false
	walkUnconditional(body, func(st minic.Stmt) {
		if found {
			return
		}
		f, ok := st.(*minic.ForStmt)
		if !ok {
			return
		}
		if coversArray(f, arr, at) {
			found = true
		}
	})
	return found
}

// walkUnconditional visits statements that execute on every pass through
// body: top-level statements and the contents of nested unconditional
// blocks, but not branch arms or loop bodies.
func walkUnconditional(body minic.Stmt, f func(minic.Stmt)) {
	switch s := body.(type) {
	case *minic.Block:
		for _, st := range s.Stmts {
			walkUnconditional(st, f)
		}
	default:
		if body != nil {
			f(body)
		}
	}
}

// coversArray checks that the counted loop f writes arr[iv] (1-D) or, via
// a directly nested counted loop, arr[iv][jv] (2-D), covering all
// elements.
func coversArray(f *minic.ForStmt, arr *minic.Symbol, at *minic.Array) bool {
	trips, ok := cost.ConstTripCount(f)
	if !ok {
		return false
	}
	iv, lo := inductionVar(f)
	if iv == nil || lo != 0 {
		return false
	}
	if inner, isNested := at.Elem.(*minic.Array); isNested {
		if trips != int64(at.Len) {
			return false
		}
		covered := false
		walkUnconditional(f.Body, func(st minic.Stmt) {
			nf, ok := st.(*minic.ForStmt)
			if !ok || covered {
				return
			}
			ntrips, ok := cost.ConstTripCount(nf)
			if !ok || ntrips != int64(inner.Len) {
				return
			}
			jv, jlo := inductionVar(nf)
			if jv == nil || jlo != 0 {
				return
			}
			if assignsElem2D(nf.Body, arr, iv, jv) {
				covered = true
			}
		})
		return covered
	}
	if trips != int64(at.Len) {
		return false
	}
	return assignsElem1D(f.Body, arr, iv)
}

// inductionVar extracts the induction variable and its start value from a
// canonical counted loop.
func inductionVar(f *minic.ForStmt) (*minic.Symbol, int64) {
	switch init := f.Init.(type) {
	case *minic.DeclStmt:
		if len(init.Decls) == 1 {
			if lit, ok := init.Decls[0].Init.(*minic.IntLit); ok {
				return init.Decls[0].Sym, lit.Val
			}
		}
	case *minic.ExprStmt:
		if as, ok := init.X.(*minic.AssignExpr); ok && as.Op == minic.Assign {
			if id, ok := as.LHS.(*minic.Ident); ok {
				if lit, ok := as.RHS.(*minic.IntLit); ok {
					return id.Sym, lit.Val
				}
			}
		}
	}
	return nil, 0
}

// assignsElem1D reports an unconditional assignment arr[iv] = ... in body.
func assignsElem1D(body minic.Stmt, arr, iv *minic.Symbol) bool {
	found := false
	walkUnconditional(body, func(st minic.Stmt) {
		es, ok := st.(*minic.ExprStmt)
		if !ok || found {
			return
		}
		as, ok := es.X.(*minic.AssignExpr)
		if !ok {
			return
		}
		if ix, ok := as.LHS.(*minic.Index); ok {
			if base, ok := ix.X.(*minic.Ident); ok && base.Sym == arr {
				if idx, ok := ix.Idx.(*minic.Ident); ok && idx.Sym == iv {
					found = true
				}
			}
		}
	})
	return found
}

// assignsElem2D reports an unconditional assignment arr[iv][jv] = ....
func assignsElem2D(body minic.Stmt, arr, iv, jv *minic.Symbol) bool {
	found := false
	walkUnconditional(body, func(st minic.Stmt) {
		es, ok := st.(*minic.ExprStmt)
		if !ok || found {
			return
		}
		as, ok := es.X.(*minic.AssignExpr)
		if !ok {
			return
		}
		outer, ok := as.LHS.(*minic.Index)
		if !ok {
			return
		}
		innerIx, ok := outer.X.(*minic.Index)
		if !ok {
			return
		}
		base, ok := innerIx.X.(*minic.Ident)
		if !ok || base.Sym != arr {
			return
		}
		i1, ok1 := innerIx.Idx.(*minic.Ident)
		i2, ok2 := outer.Idx.(*minic.Ident)
		if ok1 && ok2 && i1.Sym == iv && i2.Sym == jv {
			found = true
		}
	})
	return found
}

// addressOnly reports whether iv is used inside body exclusively as the
// direct index of a direct array access (arr[iv]) and is never written.
// Such a variable selects storage locations but never influences computed
// values, so it can be excluded from the hash key (paper §3.1, array
// reference analysis).
func (a *Analysis) addressOnly(iv *minic.Symbol, body minic.Stmt) bool {
	allowed := map[minic.Expr]bool{}
	minic.InspectExprs(body, func(e minic.Expr) bool {
		if ix, ok := e.(*minic.Index); ok {
			if base, ok := ix.X.(*minic.Ident); ok {
				if _, isArr := base.Sym.Type.(*minic.Array); isArr {
					if idx, ok := ix.Idx.(*minic.Ident); ok && idx.Sym == iv {
						allowed[ix.Idx] = true
					}
				}
			}
		}
		return true
	})
	ok := true
	minic.InspectExprs(body, func(e minic.Expr) bool {
		switch x := e.(type) {
		case *minic.Ident:
			if x.Sym == iv && !allowed[e] {
				ok = false
			}
		case *minic.AssignExpr:
			if id, isID := x.LHS.(*minic.Ident); isID && id.Sym == iv {
				ok = false
			}
		case *minic.IncDec:
			if id, isID := x.X.(*minic.Ident); isID && id.Sym == iv {
				ok = false
			}
		case *minic.Unary:
			if x.Op == minic.Amp {
				if id, isID := x.X.(*minic.Ident); isID && id.Sym == iv {
					ok = false
				}
			}
		}
		return ok
	})
	return ok
}

// elementOnlyRead reports whether every access to array arr inside body is
// the direct element arr[iv] (reads or stores) and no call or pointer may
// touch arr. When it holds, the single element value arr[iv] is a
// sufficient key contribution for arr.
func (a *Analysis) elementOnlyRead(arr *minic.Symbol, iv *minic.Symbol, body minic.Stmt) bool {
	if _, isArr := arr.Type.(*minic.Array); !isArr {
		return false
	}
	ok := true
	minic.InspectExprs(body, func(e minic.Expr) bool {
		switch x := e.(type) {
		case *minic.Ident:
			if x.Sym != arr {
				return true
			}
			// Every occurrence of arr must be the base of arr[iv].
			// Validated via the Index case below by counting; here we
			// cannot see the parent, so check the other way: collect
			// invalid bases lazily.
		case *minic.Index:
			if base, isID := x.X.(*minic.Ident); isID && base.Sym == arr {
				idx, isIdx := x.Idx.(*minic.Ident)
				if !isIdx || idx.Sym != iv {
					ok = false
				}
			}
		case *minic.Call:
			if id, isID := x.Fun.(*minic.Ident); isID && id.Sym != nil &&
				id.Sym.Kind == minic.SymFunc && id.Sym.FuncDecl == nil {
				return true
			}
			for _, callee := range a.Pts.CallTargets(x) {
				mr := a.Eff.FuncModRef(callee)
				if mr.Mod[arr] || mr.Ref[arr] {
					ok = false
				}
			}
		}
		return ok
	})
	if !ok {
		return false
	}
	// Every bare occurrence of arr must be an Index base: count idents vs
	// index-bases.
	idents, bases := 0, 0
	minic.InspectExprs(body, func(e minic.Expr) bool {
		if id, isID := e.(*minic.Ident); isID && id.Sym == arr {
			idents++
		}
		if ix, isIx := e.(*minic.Index); isIx {
			if base, isID := ix.X.(*minic.Ident); isID && base.Sym == arr {
				bases++
			}
		}
		return true
	})
	return idents == bases
}

// readAtIndex reports whether body contains a read of arr[iv].
func (a *Analysis) readAtIndex(arr, iv *minic.Symbol, body minic.Stmt) bool {
	found := false
	minic.InspectExprs(body, func(e minic.Expr) bool {
		if ix, ok := e.(*minic.Index); ok {
			if base, ok := ix.X.(*minic.Ident); ok && base.Sym == arr {
				if idx, ok := ix.Idx.(*minic.Ident); ok && idx.Sym == iv {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
