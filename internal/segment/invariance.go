package segment

import (
	"compreuse/internal/dataflow"
	"compreuse/internal/minic"
)

// This file implements the paper's code coverage analysis (§2.4): "to
// identify whether a variable is invariant in the execution of the code
// segment, our scheme performs a code coverage analysis to find all basic
// blocks which are in the execution paths from the first execution
// instance to the last execution instance of the code segment. If the
// variable remains unchanged in all these basic blocks, then it is
// invariant for the code segment."
//
// Our realization over the call graph: a symbol is invariant for a segment
// S (in function F) if every may-write of it happens strictly before any
// instance of S can execute — i.e. writes occur only in
//
//   - global initializers, or
//   - the prologue of main: the top-level statements of main preceding the
//     first statement from which F is reachable, or
//   - functions reachable only from that prologue.
//
// This covers the paper's motivating case (G721's power2 table, filled
// once during start-up and then read by quan for the rest of the run).

// InvariantFor reports whether sym is invariant across all instances of s.
func (a *Analysis) InvariantFor(sym *minic.Symbol, s *Segment) bool {
	// The segment's own parameters vary per instance by definition.
	if sym.Kind == minic.SymParam && sym.Func == s.Fn {
		return false
	}
	// A symbol the segment itself may write is not invariant.
	segWrites := a.writesIn(s.Body)
	if segWrites[sym] {
		return false
	}
	// Locals of F that are written anywhere in F outside the prologue of
	// the segment are treated as varying (a per-function code coverage
	// analysis could refine this; the global phase analysis below handles
	// the cases the paper exploits).
	if (sym.Kind == minic.SymLocal) && sym.Func == s.Fn {
		fnWrites := a.writesIn(s.Fn.Body)
		return !fnWrites[sym]
	}

	writers := a.gdu.WritersOf(sym)
	if len(writers) == 0 {
		return true // only global initializers touch it
	}

	mainFn := a.Prog.Func("main")
	if mainFn == nil || mainFn.Body == nil {
		return false
	}
	prologueFns, mainPrologueLen := a.prologue(mainFn, s)
	for _, w := range writers {
		if w == mainFn {
			// main itself writes sym: every such write must sit in the
			// prologue statements.
			for i, st := range mainFn.Body.Stmts {
				if i < mainPrologueLen {
					continue
				}
				if a.writesIn(st)[sym] {
					return false
				}
			}
			continue
		}
		if !prologueFns[w] {
			return false
		}
	}
	return true
}

// prologue computes, for main and a segment, the set of functions
// confined to main's prologue (callable only before the segment can first
// run) and the number of top-level prologue statements in main.
func (a *Analysis) prologue(mainFn *minic.FuncDecl, s *Segment) (map[*minic.FuncDecl]bool, int) {
	target := s.Fn
	// For a segment inside main itself, the first instance runs when the
	// enclosing top-level statement runs; cut there.
	segID := s.Body.ID()
	if s.Parent != nil {
		segID = s.Parent.ID()
	}
	containsSeg := func(st minic.Stmt) bool {
		if target != mainFn {
			return false
		}
		found := false
		minic.InspectStmts(st, func(x minic.Stmt) bool {
			if x.ID() == segID {
				found = true
			}
			return !found
		})
		return found
	}
	// Find the first top-level statement of main from which the segment is
	// reachable.
	reachesTarget := func(st minic.Stmt) bool {
		if containsSeg(st) {
			return true
		}
		if target == mainFn {
			return false
		}
		found := false
		minic.InspectExprs(st, func(e minic.Expr) bool {
			c, ok := e.(*minic.Call)
			if !ok {
				return true
			}
			for _, callee := range a.Pts.CallTargets(c) {
				if callee == target || a.CG.Reachable(callee)[target] {
					found = true
				}
			}
			return !found
		})
		return found
	}
	cut := len(mainFn.Body.Stmts)
	for i, st := range mainFn.Body.Stmts {
		if reachesTarget(st) {
			cut = i
			break
		}
	}
	// Roots called at or after the cut (the "steady phase").
	post := map[*minic.FuncDecl]bool{}
	for i := cut; i < len(mainFn.Body.Stmts); i++ {
		minic.InspectExprs(mainFn.Body.Stmts[i], func(e minic.Expr) bool {
			if c, ok := e.(*minic.Call); ok {
				for _, callee := range a.Pts.CallTargets(c) {
					for f := range a.CG.Reachable(callee) {
						post[f] = true
					}
				}
			}
			return true
		})
	}
	// Prologue functions: called from the pre-cut statements and not
	// reachable from the steady phase.
	pro := map[*minic.FuncDecl]bool{}
	for i := 0; i < cut; i++ {
		minic.InspectExprs(mainFn.Body.Stmts[i], func(e minic.Expr) bool {
			if c, ok := e.(*minic.Call); ok {
				for _, callee := range a.Pts.CallTargets(c) {
					for f := range a.CG.Reachable(callee) {
						if !post[f] {
							pro[f] = true
						}
					}
				}
			}
			return true
		})
	}
	return pro, cut
}

// writesIn returns the symbols a statement subtree may write, pointer
// stores expanded through the points-to analysis. Results are cached per
// subtree root.
func (a *Analysis) writesIn(body minic.Stmt) dataflow.SymSet {
	if a.writeCache == nil {
		a.writeCache = map[minic.Stmt]dataflow.SymSet{}
	}
	if w, ok := a.writeCache[body]; ok {
		return w
	}
	w := dataflow.SymSet{}
	minic.Inspect(body, func(n minic.Node) bool {
		switch x := n.(type) {
		case *minic.VarDecl:
			if x.Init != nil || x.InitList != nil {
				w[x.Sym] = true
			}
		case *minic.AssignExpr:
			a.collectWrite(x.LHS, w)
		case *minic.IncDec:
			a.collectWrite(x.X, w)
		case *minic.Call:
			if id, ok := x.Fun.(*minic.Ident); ok && id.Sym != nil &&
				id.Sym.Kind == minic.SymFunc && id.Sym.FuncDecl == nil {
				return true // builtin
			}
			for _, callee := range a.Pts.CallTargets(x) {
				for sym := range a.Eff.FuncModRef(callee).Mod {
					w[sym] = true
				}
			}
		case *minic.ReuseRegion:
			for _, o := range x.Outputs {
				a.collectWrite(o, w)
			}
		}
		return true
	})
	a.writeCache[body] = w
	return w
}

func (a *Analysis) collectWrite(lv minic.Expr, w dataflow.SymSet) {
	switch lv := lv.(type) {
	case *minic.Ident:
		if lv.Sym != nil {
			w[lv.Sym] = true
		}
	case *minic.Index:
		if id, ok := lv.X.(*minic.Ident); ok && id.Sym != nil {
			if _, isArr := id.Sym.Type.(*minic.Array); isArr {
				w[id.Sym] = true
				return
			}
			for _, sym := range a.Pts.PointsTo(id.Sym) {
				w[sym] = true
			}
			return
		}
		for _, id := range minic.Idents(lv.X) {
			if id.Sym == nil || id.Sym.Kind == minic.SymFunc {
				continue
			}
			if _, isArr := id.Sym.Type.(*minic.Array); isArr {
				w[id.Sym] = true
			}
			for _, sym := range a.Pts.PointsTo(id.Sym) {
				w[sym] = true
			}
		}
	case *minic.FieldExpr:
		if lv.Arrow {
			for _, id := range minic.Idents(lv.X) {
				if id.Sym != nil && id.Sym.Kind != minic.SymFunc {
					for _, sym := range a.Pts.PointsTo(id.Sym) {
						w[sym] = true
					}
				}
			}
		} else {
			a.collectWrite(lv.X, w)
		}
	case *minic.Unary:
		if lv.Op == minic.Star {
			for _, id := range minic.Idents(lv.X) {
				if id.Sym != nil && id.Sym.Kind != minic.SymFunc {
					for _, sym := range a.Pts.PointsTo(id.Sym) {
						w[sym] = true
					}
				}
			}
		}
	}
}
