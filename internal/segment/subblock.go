package segment

import (
	"fmt"

	"compreuse/internal/minic"
)

// Sub-block segments implement the paper's stated future work (§5): "a
// candidate code segment can be a part of a loop body, a function body, or
// an IF branch, instead of the entire body. How to identify the most
// cost-effective part remains our future work."
//
// Our heuristic enumerates, inside every block, the maximal runs of
// consecutive statements with no escaping control flow that (a) contain at
// least one loop or branch (otherwise the granularity cannot beat the
// hashing overhead) and (b) do not cover the whole block (that candidate
// already exists as the enclosing segment). Each run becomes a SubBlock
// segment; the usual input/output analysis, cost filters, profiling and
// formula-(4) nesting resolution then pick the most cost-effective parts
// exactly as for the paper's three segment shapes.

// enumerateSubBlocks adds SubBlock candidates for fn. anchorID tracks the
// innermost node whose execution-frequency count equals "this code runs
// once": the function itself, an enclosing loop, or an enclosing branch.
func (a *Analysis) enumerateSubBlocks(fn *minic.FuncDecl) {
	seq := 0
	var walk func(s minic.Stmt, anchor int)
	walk = func(s minic.Stmt, anchor int) {
		switch s := s.(type) {
		case *minic.Block:
			a.subBlockRuns(fn, s, anchor, &seq)
			for _, st := range s.Stmts {
				walk(st, anchor)
			}
		case *minic.IfStmt:
			walk(s.Then, s.Then.ID())
			if s.Else != nil {
				walk(s.Else, s.Else.ID())
			}
		case *minic.WhileStmt:
			walk(s.Body, s.ID())
		case *minic.ForStmt:
			if s.Init != nil {
				walk(s.Init, anchor)
			}
			walk(s.Body, s.ID())
		}
	}
	walk(fn.Body, fn.ID())
}

// subBlockRuns emits candidate runs of blk: for each maximal escape-free
// run, the run itself plus the prefixes ending after — and suffixes
// starting at — its control statements (loops/branches carry the
// granularity, so those boundaries are where cost-effectiveness changes).
func (a *Analysis) subBlockRuns(fn *minic.FuncDecl, blk *minic.Block, anchor int, seq *int) {
	n := len(blk.Stmts)
	const maxPerBlock = 8
	emitted := 0
	seen := map[[2]int]bool{}

	emit := func(i, j int) {
		if j-i < 2 || (i == 0 && j == n) || emitted >= maxPerBlock || seen[[2]int{i, j}] {
			return
		}
		run := blk.Stmts[i:j]
		if !hasControlWork(run) {
			return
		}
		seen[[2]int{i, j}] = true
		emitted++
		*seq++
		a.Segments = append(a.Segments, &Segment{
			Kind: SubBlock, Fn: fn, Body: a.Prog.NewBlock(run...),
			Name:        fmt.Sprintf("%s@sub%d", fn.Name, *seq),
			FreqID:      anchor,
			ParentBlock: blk,
			RunStart:    i,
			RunEnd:      j,
		})
	}

	i := 0
	for i < n {
		// Grow the maximal escape-free run.
		j := i
		for j < n && escapeKind(blk.Stmts[j]) == "" {
			j++
		}
		emit(i, j)
		for p := i; p < j; p++ {
			switch blk.Stmts[p].(type) {
			case *minic.ForStmt, *minic.WhileStmt, *minic.IfStmt:
				emit(i, p+1) // prefix through this control statement
				emit(p, j)   // suffix from it
			}
		}
		if j == i {
			j++ // skip the escaping statement
		}
		i = j
	}
}

// hasControlWork reports whether the run contains a loop or branch — the
// cheap structural proxy for "enough granularity to be worth profiling".
func hasControlWork(run []minic.Stmt) bool {
	for _, s := range run {
		switch s.(type) {
		case *minic.ForStmt, *minic.WhileStmt, *minic.IfStmt:
			return true
		}
		// A call may hide arbitrary work.
		found := false
		minic.InspectExprs(s, func(e minic.Expr) bool {
			if _, ok := e.(*minic.Call); ok {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
