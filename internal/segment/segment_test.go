package segment

import (
	"strings"
	"testing"

	"compreuse/internal/callgraph"
	"compreuse/internal/dataflow"
	"compreuse/internal/minic"
	"compreuse/internal/pointer"
)

func analyze(t *testing.T, src string) (*minic.Program, *Analysis) {
	t.Helper()
	prog, err := minic.Parse("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := minic.Check(prog); err != nil {
		t.Fatal(err)
	}
	pts := pointer.Analyze(prog)
	cg := callgraph.Build(prog, pts)
	eff := dataflow.ComputeEffects(prog, pts, cg)
	return prog, Analyze(prog, pts, cg, eff, Options{})
}

func segByName(t *testing.T, a *Analysis, name string) *Segment {
	t.Helper()
	for _, s := range a.Segments {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("segment %s not found; have %v", name, segNames(a))
	return nil
}

func segNames(a *Analysis) []string {
	var out []string
	for _, s := range a.Segments {
		out = append(out, s.Name)
	}
	return out
}

const quanProg = `
int power2[15] = {1,2,4,8,16,32,64,128,256,512,1024,2048,4096,8192,16384};

int quan(int val) {
    int i;
    for (i = 0; i < 15; i++)
        if (val < power2[i])
            break;
    return (i);
}

int main(void) {
    int s = 0;
    int v;
    for (v = 0; v < 1000; v++)
        s += quan(v & 255);
    return s;
}
`

func TestQuanSegmentPaperExample(t *testing.T) {
	// The paper's Fig. 2(a): quan has one input (val), power2 recognized
	// invariant, one output (i).
	_, a := analyze(t, quanProg)
	s := segByName(t, a, "quan@func")
	if !s.Eligible {
		t.Fatalf("quan@func ineligible: %s", s.Reason)
	}
	if got := inNames(s.Inputs); len(got) != 1 || got[0] != "val" {
		t.Fatalf("inputs = %v, want [val]", got)
	}
	if got := names(s.Invariants); len(got) != 1 || got[0] != "power2" {
		t.Fatalf("invariants = %v, want [power2]", got)
	}
	if got := outNames(s.Outputs); len(got) != 1 || got[0] != "i" {
		t.Fatalf("outputs = %v, want [i]", got)
	}
	if s.RetOut == nil || s.RetOut.Name != "i" {
		t.Fatalf("RetOut = %v", s.RetOut)
	}
	if s.KeyBytes != 4 || s.OutBytes != 4 {
		t.Fatalf("sizes: key=%d out=%d, want 4/4", s.KeyBytes, s.OutBytes)
	}
	if !s.RatioOK() {
		t.Fatalf("quan must pass the O/C filter: C=[%d,%d] O=%d", s.CMin, s.CMax, s.Overhead)
	}
}

func TestEnumerationCounts(t *testing.T) {
	_, a := analyze(t, quanProg)
	// quan: func body, 1 loop, 1 if-then = 3; main: func body, 1 loop = 2.
	kinds := map[string]int{}
	for _, s := range a.Segments {
		kinds[s.Kind.String()]++
	}
	if kinds["func"] != 2 || kinds["loop"] != 2 || kinds["if"] != 1 {
		t.Fatalf("segment kinds: %v", kinds)
	}
}

func TestInvariantWrittenInMainPrologue(t *testing.T) {
	// The table is built at the start of main, then the kernel loop runs:
	// code coverage analysis must still see table as invariant.
	_, a := analyze(t, `
int table[16];
int kernel(int v) {
    int r = 0;
    int i;
    for (i = 0; i < 16; i++)
        if (v > table[i]) r = i;
    return r;
}
int main(void) {
    int i;
    for (i = 0; i < 16; i++)
        table[i] = i * i;         // prologue: before kernel is reachable
    int s = 0;
    int v;
    for (v = 0; v < 100; v++)
        s += kernel(v);
    return s;
}`)
	s := segByName(t, a, "kernel@func")
	if !s.Eligible {
		t.Fatalf("ineligible: %s", s.Reason)
	}
	if got := names(s.Invariants); len(got) != 1 || got[0] != "table" {
		t.Fatalf("invariants = %v, want [table]", got)
	}
	if got := inNames(s.Inputs); len(got) != 1 || got[0] != "v" {
		t.Fatalf("inputs = %v, want [v]", got)
	}
}

func TestNotInvariantWhenWrittenInSteadyPhase(t *testing.T) {
	_, a := analyze(t, `
int table[16];
int kernel(int v) {
    int r = 0;
    int i;
    for (i = 0; i < 16; i++)
        if (v > table[i]) r = i;
    return r;
}
int main(void) {
    int s = 0;
    int v;
    for (v = 0; v < 100; v++) {
        table[v & 15] = v;        // mutates between kernel instances
        s += kernel(v);
    }
    return s;
}`)
	s := segByName(t, a, "kernel@func")
	if !s.Eligible {
		t.Fatalf("ineligible: %s", s.Reason)
	}
	got := inNames(s.Inputs)
	if len(got) != 2 || got[0] != "v" || got[1] != "table" {
		t.Fatalf("inputs = %v, want [v table] (table varies)", got)
	}
}

func TestEarlyReturnIneligible(t *testing.T) {
	_, a := analyze(t, `
int f(int x) {
    if (x > 0) return 1;
    return 0;
}
int main(void) { return f(3); }`)
	s := segByName(t, a, "f@func")
	if s.Eligible {
		t.Fatal("early-return function body must be ineligible")
	}
	if !strings.Contains(s.Reason, "return") {
		t.Fatalf("reason: %s", s.Reason)
	}
}

func TestLoopBodySegment(t *testing.T) {
	// UNEPIC-style: the loop body is the candidate, one int in, one out.
	_, a := analyze(t, `
int out[64];
int main(void) {
    int i;
    for (i = 0; i < 64; i++) {
        int v = i & 7;
        int r = 0;
        int k;
        for (k = 0; k < v; k++)
            r += k * k;
        out[i] = r;
    }
    int s = 0;
    for (i = 0; i < 64; i++) s += out[i];
    return s;
}`)
	s := segByName(t, a, "main@loop1")
	if !s.Eligible {
		t.Fatalf("loop body ineligible: %s", s.Reason)
	}
	if got := inNames(s.Inputs); len(got) != 1 || got[0] != "i" {
		t.Fatalf("inputs = %v, want [i]", got)
	}
	// The array reference analysis reduces the out[] write to an element
	// output out[i].
	if got := outNames(s.Outputs); len(got) != 1 || got[0] != "out[i]" {
		t.Fatalf("outputs = %v, want [out[i]]", got)
	}
}

func TestBreakingLoopBodyIneligible(t *testing.T) {
	_, a := analyze(t, `
int main(void) {
    int i;
    int s = 0;
    for (i = 0; i < 64; i++) {
        if (i == 9) break;
        s += i;
    }
    return s;
}`)
	s := segByName(t, a, "main@loop1")
	if s.Eligible {
		t.Fatal("loop body with break must be ineligible")
	}
}

func TestPointerInputIneligible(t *testing.T) {
	// The original 3-parameter quan: the table parameter varies per call
	// site from the analysis's perspective (it is a parameter), making a
	// pointer input — ineligible until specialization (§2.4).
	_, a := analyze(t, `
int power2[15] = {1,2,4,8,16,32,64,128,256,512,1024,2048,4096,8192,16384};
int quan(int val, int *table, int size) {
    int i;
    for (i = 0; i < size; i++)
        if (val < table[i])
            break;
    return (i);
}
int main(void) { return quan(100, power2, 15); }`)
	s := segByName(t, a, "quan@func")
	if s.Eligible {
		t.Fatalf("pointer-input segment must be ineligible, inputs=%v", inNames(s.Inputs))
	}
	if !strings.Contains(s.Reason, "non-encodable") {
		t.Fatalf("reason: %s", s.Reason)
	}
}

func TestWholeArrayOutputAccepted(t *testing.T) {
	// MPEG2-style: output block fully written by counted loops.
	_, a := analyze(t, `
float in[8];
float outv[8];
int transform(void) {
    int i;
    for (i = 0; i < 8; i++)
        outv[i] = in[i] * 2.0 + 1.0;
    return 0;
}
int main(void) {
    int k;
    int s = 0;
    for (k = 0; k < 10; k++) {
        in[k & 7] = (float)k;
        s += transform();
        s += (int)outv[0];
    }
    return s;
}`)
	s := segByName(t, a, "transform@func")
	if !s.Eligible {
		t.Fatalf("ineligible: %s", s.Reason)
	}
	inNames := inNames(s.Inputs)
	if len(inNames) != 1 || inNames[0] != "in" {
		t.Fatalf("inputs = %v, want [in]", inNames)
	}
	if got := outNames(s.Outputs); len(got) != 1 || got[0] != "outv" {
		t.Fatalf("outputs = %v, want [outv]", got)
	}
	if s.KeyBytes != 8*8 {
		t.Fatalf("key bytes = %d, want 64 (8 floats)", s.KeyBytes)
	}
}

func TestPartialArrayOutputRejected(t *testing.T) {
	_, a := analyze(t, `
int data[8];
int poke(int v) {
    int r = 0;
    if (v > 3)
        data[v & 7] = v;   // conditional element write: unsound to memoize
    r = v * 2;
    return r;
}
int main(void) {
    int s = 0;
    int k;
    for (k = 0; k < 10; k++) { s += poke(k); s += data[0]; }
    return s;
}`)
	s := segByName(t, a, "poke@func")
	// data is written conditionally: on the recorded run the element may
	// keep its pre-state, which is not part of the key -> ineligible.
	if s.Eligible {
		t.Fatalf("partial array output must be rejected, outputs=%v", outNames(s.Outputs))
	}
}

func TestArrayInputAndOutputAccepted(t *testing.T) {
	// In-place update: the array is both input (read) and output (written).
	_, a := analyze(t, `
int buf[4];
int scale(void) {
    int i;
    for (i = 0; i < 4; i++)
        buf[i] = buf[i] * 3;
    return 0;
}
int main(void) {
    buf[0] = 5;
    int r = scale();
    return buf[0] + r;
}`)
	s := segByName(t, a, "scale@func")
	if !s.Eligible {
		t.Fatalf("ineligible: %s", s.Reason)
	}
	if got := inNames(s.Inputs); len(got) != 1 || got[0] != "buf" {
		t.Fatalf("inputs = %v", got)
	}
	if got := outNames(s.Outputs); len(got) != 1 || got[0] != "buf" {
		t.Fatalf("outputs = %v", got)
	}
}

func TestGlobalOutputLiveness(t *testing.T) {
	// A global written by the segment but never read elsewhere is not an
	// output.
	_, a := analyze(t, `
int sink;
int live;
int f(int v) {
    int r = v * 2;
    sink = r;     // never read anywhere: dead
    live = r;     // read by main: output
    return r;
}
int main(void) { return f(3) + live; }`)
	s := segByName(t, a, "f@func")
	if !s.Eligible {
		t.Fatalf("ineligible: %s", s.Reason)
	}
	got := outNames(s.Outputs)
	hasLive, hasSink := false, false
	for _, n := range got {
		if n == "live" {
			hasLive = true
		}
		if n == "sink" {
			hasSink = true
		}
	}
	if !hasLive || hasSink {
		t.Fatalf("outputs = %v, want live but not sink", got)
	}
}

func TestCandidatesFilter(t *testing.T) {
	// A tiny segment (O >= C) must be filtered out of profiling candidates.
	_, a := analyze(t, `
int tiny(int x) {
    int r = x + 1;
    return r;
}
int main(void) { return tiny(4); }`)
	s := segByName(t, a, "tiny@func")
	if !s.Eligible {
		t.Fatalf("tiny should be structurally eligible: %s", s.Reason)
	}
	if s.RatioOK() {
		t.Fatalf("tiny must fail O/C: C=%d O=%d", s.CMax, s.Overhead)
	}
	for _, c := range a.Candidates() {
		if c.Name == "tiny@func" {
			t.Fatal("tiny must not be a profiling candidate")
		}
	}
}

func TestInputOrderingDeterministic(t *testing.T) {
	_, a := analyze(t, `
int gb;
int ga;
int f(int p2, int p1) {
    int r = p2 + p1 + ga + gb;
    return r;
}
int main(void) { ga = 1; gb = 2; return f(3, 4); }`)
	s := segByName(t, a, "f@func")
	// ga/gb are written only in main's prologue: the code coverage
	// analysis proves them invariant, so the key is just the parameters,
	// ordered by slot (p2 then p1).
	got := inNames(s.Inputs)
	want := []string{"p2", "p1"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("inputs = %v, want %v", got, want)
	}
	inv := names(s.Invariants)
	if len(inv) != 2 {
		t.Fatalf("invariants = %v, want [ga gb]", inv)
	}
}

func TestElementInputUNEPICPattern(t *testing.T) {
	// The UNEPIC shape: the loop body reads coef[i] and writes image[i],
	// with i used only as an index. The array reference analysis reduces
	// the key to the single element value coef[i] ("a single input
	// variable and a single output variable, both integers").
	_, a := analyze(t, `
int coef[128];
int image[128];
int main(void) {
    int i;
    for (i = 0; i < 128; i++)
        coef[i] = (i * 7) & 15;
    for (i = 0; i < 128; i++) {
        int c = coef[i];
        int r = 0;
        int k;
        for (k = 0; k < 12; k++)
            r += (c << 1) ^ (r + k);
        image[i] = r;
    }
    int s = 0;
    for (i = 0; i < 128; i++) s += image[i];
    return s;
}`)
	s := segByName(t, a, "main@loop2")
	if !s.Eligible {
		t.Fatalf("ineligible: %s", s.Reason)
	}
	if got := inNames(s.Inputs); len(got) != 1 || got[0] != "coef[i]" {
		t.Fatalf("inputs = %v, want [coef[i]]", got)
	}
	if got := outNames(s.Outputs); len(got) != 1 || got[0] != "image[i]" {
		t.Fatalf("outputs = %v, want [image[i]]", got)
	}
	if s.KeyBytes != 4 || s.OutBytes != 4 {
		t.Fatalf("sizes: %d/%d, want 4/4", s.KeyBytes, s.OutBytes)
	}
	if s.AddrVar == nil || s.AddrVar.Name != "i" {
		t.Fatalf("AddrVar = %v", s.AddrVar)
	}
}

func TestElementInputRejectedWhenIndexComputes(t *testing.T) {
	// If the induction variable feeds a computed value, it is not
	// address-only and must stay in the key.
	_, a := analyze(t, `
int coef[64];
int image[64];
int main(void) {
    int i;
    for (i = 0; i < 64; i++) {
        int c = coef[i];
        image[i] = c + i;     // i contributes a VALUE here
    }
    int s = 0;
    for (i = 0; i < 64; i++) s += image[i];
    return s;
}`)
	s := segByName(t, a, "main@loop1")
	if s.AddrVar != nil {
		t.Fatal("i is not address-only (used as a value)")
	}
	// The loop variable must therefore be a key input.
	foundI := false
	for _, in := range s.Inputs {
		if in.Sym.Name == "i" && in.Elem == nil {
			foundI = true
		}
	}
	if s.Eligible && !foundI {
		t.Fatalf("inputs = %v must include i", inNames(s.Inputs))
	}
}

func TestGlobalMutatedAroundMainSegmentNotInvariant(t *testing.T) {
	// g is written inside main's steady loop, outside the segment: it
	// varies between instances and must be a key input.
	_, a := analyze(t, `
int g;
int out[32];
int main(void) {
    g = 1;
    int i;
    for (i = 0; i < 32; i++) {
        g = (g * 5 + 1) & 7;
        int j;
        for (j = 0; j < 4; j++) {
            int r = 0;
            int k;
            for (k = 0; k < 10; k++)
                r += g * k;
            out[(i * 4 + j) & 31] = r;
        }
    }
    int s = 0;
    for (i = 0; i < 32; i++) s += out[i];
    return s;
}`)
	s := segByName(t, a, "main@loop2")
	if !s.Eligible {
		t.Fatalf("ineligible: %s", s.Reason)
	}
	hasG := false
	for _, in := range s.Inputs {
		if in.Sym.Name == "g" {
			hasG = true
		}
	}
	if !hasG {
		t.Fatalf("inputs = %v must include g (mutated in steady phase)", inNames(s.Inputs))
	}
}

func analyzeSub(t *testing.T, src string) (*minic.Program, *Analysis) {
	t.Helper()
	prog, err := minic.Parse("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := minic.Check(prog); err != nil {
		t.Fatal(err)
	}
	pts := pointer.Analyze(prog)
	cg := callgraph.Build(prog, pts)
	eff := dataflow.ComputeEffects(prog, pts, cg)
	return prog, Analyze(prog, pts, cg, eff, Options{SubBlocks: true})
}

// partialSrc has a function whose body is only PARTIALLY reusable: the
// prefix computes from the argument, the suffix mixes in a global counter
// that varies every call. The whole-function segment is unprofitable, but
// the sub-block extension carves out the prefix.
const partialSrc = `
int tick;
int weights[16] = {3,1,4,1,5,9,2,6,5,3,5,8,9,7,9,3};
int f(int v) {
    int heavy = 0;
    int k;
    for (k = 0; k < 16; k++)
        heavy += weights[k] * ((v >> (k & 3)) + 1);
    int seq = tick;
    tick = tick + 1;
    int r = heavy + (seq & 1);
    return r;
}
int main(void) {
    int s = 0;
    int i;
    for (i = 0; i < 400; i++)
        s = (s + f(i & 7)) & 16777215;
    return s;
}
`

func TestSubBlockEnumeration(t *testing.T) {
	_, a := analyzeSub(t, partialSrc)
	// Among the enumerated sub-blocks of f there must be the reusable
	// prefix: keyed on v alone (the maximal run also exists but keys on
	// the varying tick too).
	foundPrefix := false
	for _, s := range a.Segments {
		if s.Kind != SubBlock || s.Fn.Name != "f" || !s.Eligible {
			continue
		}
		hasV, hasTick := false, false
		for _, in := range s.Inputs {
			if in.Sym.Name == "v" {
				hasV = true
			}
			if in.Sym.Name == "tick" {
				hasTick = true
			}
		}
		if hasV && !hasTick {
			foundPrefix = true
		}
	}
	if !foundPrefix {
		for _, s := range a.Segments {
			if s.Kind == SubBlock {
				t.Logf("%s eligible=%v reason=%s in=%v", s.Name, s.Eligible, s.Reason, inNames(s.Inputs))
			}
		}
		t.Fatal("no prefix sub-block keyed on v alone")
	}
}

func TestSubBlocksDisabledByDefault(t *testing.T) {
	_, a := analyze(t, partialSrc)
	for _, s := range a.Segments {
		if s.Kind == SubBlock {
			t.Fatal("sub-blocks must be opt-in")
		}
	}
}
