// Package segment implements the paper's code segment analysis (§3.1):
// enumerating candidate code segments (function bodies, loop bodies, IF
// branches), computing each segment's inputs (upward-exposed reads minus
// invariants) and outputs (definitions live at segment exit), the code
// coverage analysis that detects invariant variables (§2.4), the array
// reference analysis for array inputs/outputs, and the static granularity
// and hashing-overhead bounds that drive the O/C < 1 pre-profiling filter.
package segment

import (
	"fmt"
	"sort"

	"compreuse/internal/callgraph"
	"compreuse/internal/cfg"
	"compreuse/internal/cost"
	"compreuse/internal/dataflow"
	"compreuse/internal/minic"
	"compreuse/internal/pointer"
)

// Kind classifies candidate segments.
type Kind int

// Segment kinds (paper §3.1: "we confine the candidate code segment to a
// function body, a loop body, or an IF branch").
const (
	FuncBody Kind = iota
	LoopBody
	IfBranch
	// SubBlock is the beyond-paper extension (the paper's §5 future work):
	// a contiguous statement run inside a block.
	SubBlock
)

func (k Kind) String() string {
	switch k {
	case FuncBody:
		return "func"
	case LoopBody:
		return "loop"
	case IfBranch:
		return "if"
	default:
		return "sub"
	}
}

// Segment is one candidate code segment with its analysis results.
type Segment struct {
	// Index is the segment's position in Analysis.Segments.
	Index int
	Kind  Kind
	Fn    *minic.FuncDecl
	// Body is the statement the segment wraps. For FuncBody segments this
	// is the function body *minus* the trailing return (Fig. 2b keeps the
	// return outside the table look-up).
	Body minic.Stmt
	// Loop is the enclosing loop for LoopBody segments, the IfStmt for
	// IfBranch segments, nil for FuncBody.
	Parent minic.Stmt
	// Name labels the segment, e.g. "quan@func".
	Name string

	// RawInputs are the upward-exposed reads before invariant filtering.
	RawInputs []*minic.Symbol
	// Invariants are the raw inputs proven invariant by the code coverage
	// analysis; they are excluded from the hash key.
	Invariants []*minic.Symbol
	// Inputs are the hash-key locations in canonical order: whole
	// variables, or single array elements arr[iv] whose induction-variable
	// index is address-only (the UNEPIC pattern).
	Inputs []Input
	// Outputs are the locations recorded in / restored from the table.
	Outputs []Output
	// RetOut is the local returned by a trailing "return x" that the
	// segment must also produce (FuncBody only; nil otherwise or when the
	// function returns void).
	RetOut *minic.Symbol

	// KeyBytes / OutBytes are the modeled C sizes of one input set and one
	// output set.
	KeyBytes int
	OutBytes int

	// CMax / CMin are the optimistic/pessimistic static granularity bounds
	// in cycles; Overhead is the static hashing overhead estimate.
	CMax, CMin int64
	Overhead   int64

	// FreqID is the AST node id whose execution-frequency count equals the
	// segment's instance count.
	FreqID int

	// AddrVar is the address-only induction variable excluded from the
	// key, if any (LoopBody segments only).
	AddrVar *minic.Symbol

	// ParentBlock and RunStart/RunEnd locate a SubBlock segment's
	// statement run inside its enclosing block (transform splices there).
	ParentBlock *minic.Block
	RunStart    int
	RunEnd      int

	// Eligible is false when the segment cannot be transformed; Reason
	// explains why.
	Eligible bool
	Reason   string
}

// RatioOK reports the paper's pre-profiling filter O/C < 1, evaluated with
// the optimistic granularity bound (a segment failing even optimistically
// can never satisfy R > O/C, since R <= 1).
func (s *Segment) RatioOK() bool {
	return s.Eligible && s.CMax > 0 && float64(s.Overhead)/float64(s.CMax) < 1
}

func (s *Segment) String() string {
	return fmt.Sprintf("%s[%s] in=%v out=%v C=[%d,%d] O=%d",
		s.Name, s.Kind, inNames(s.Inputs), outNames(s.Outputs), s.CMin, s.CMax, s.Overhead)
}

// Output is one recorded location: a whole variable (Elem nil) or a single
// array element arr[Elem] whose index is a function of the segment inputs
// (the element-output case of the array reference analysis).
type Output struct {
	Sym  *minic.Symbol
	Elem minic.Expr
}

// Input is one hash-key location: a whole variable (Elem nil), or a single
// array element arr[Elem] when the index is an address-only induction
// variable (array reference analysis, the UNEPIC single-int-input case).
type Input struct {
	Sym  *minic.Symbol
	Elem minic.Expr
}

// Bytes is the modeled C size of the keyed location.
func (in Input) Bytes() int {
	if in.Elem == nil {
		return in.Sym.Type.Bytes()
	}
	return scalarElem(in.Sym.Type).Bytes()
}

func (in Input) String() string {
	if in.Elem == nil {
		return in.Sym.Name
	}
	return in.Sym.Name + "[" + minic.PrintExpr(in.Elem) + "]"
}

func inNames(ins []Input) []string {
	r := make([]string, len(ins))
	for i, in := range ins {
		r[i] = in.String()
	}
	return r
}

// Bytes is the modeled C size of the recorded location.
func (o Output) Bytes() int {
	if o.Elem == nil {
		return o.Sym.Type.Bytes()
	}
	return scalarElem(o.Sym.Type).Bytes()
}

// Words is the VM word count of the recorded location.
func (o Output) Words() int {
	if o.Elem == nil {
		return o.Sym.Type.Words()
	}
	return 1
}

func (o Output) String() string {
	if o.Elem == nil {
		return o.Sym.Name
	}
	return o.Sym.Name + "[" + minic.PrintExpr(o.Elem) + "]"
}

// scalarElem unwraps nested array types to the scalar element.
func scalarElem(t minic.Type) minic.Type {
	for {
		at, ok := t.(*minic.Array)
		if !ok {
			return t
		}
		t = at.Elem
	}
}

func outNames(outs []Output) []string {
	r := make([]string, len(outs))
	for i, o := range outs {
		r[i] = o.String()
	}
	return r
}

func names(syms []*minic.Symbol) []string {
	out := make([]string, len(syms))
	for i, s := range syms {
		out[i] = s.Name
	}
	return out
}

// Options tunes the analysis.
type Options struct {
	// Model is the cost model for the static bounds (default O0).
	Model *cost.Model
	// SubBlocks additionally enumerates sub-block segments — the paper's
	// §5 future work (contiguous statement runs inside blocks).
	SubBlocks bool
	// MaxKeyBytes rejects segments whose input set exceeds this size
	// (default 64 KiB).
	MaxKeyBytes int
	// MaxOutBytes rejects segments whose output set exceeds this size
	// (default 64 KiB).
	MaxOutBytes int
}

// Analysis holds the segment analysis of one program.
type Analysis struct {
	Prog *minic.Program
	Pts  *pointer.Analysis
	CG   *callgraph.Graph
	Eff  *dataflow.Effects
	Est  *cost.Static

	// Segments lists every enumerated candidate, eligible or not, in
	// deterministic order.
	Segments []*Segment

	opts Options
	// gdu is the program-wide def-use summary for globals.
	gdu *dataflow.GlobalDefUse
	// writeCache memoizes writesIn per subtree.
	writeCache map[minic.Stmt]dataflow.SymSet
}

// Analyze enumerates and analyzes every candidate segment of prog.
func Analyze(prog *minic.Program, pts *pointer.Analysis, cg *callgraph.Graph,
	eff *dataflow.Effects, opts Options) *Analysis {
	if opts.Model == nil {
		opts.Model = cost.O0()
	}
	if opts.MaxKeyBytes == 0 {
		opts.MaxKeyBytes = 64 << 10
	}
	if opts.MaxOutBytes == 0 {
		opts.MaxOutBytes = 64 << 10
	}
	a := &Analysis{
		Prog: prog, Pts: pts, CG: cg, Eff: eff,
		Est:  cost.NewStatic(opts.Model, prog),
		opts: opts,
		gdu:  eff.BuildGlobalDefUse(),
	}
	for _, fn := range prog.Funcs {
		if fn.Body == nil {
			continue
		}
		a.enumerate(fn)
		if opts.SubBlocks {
			a.enumerateSubBlocks(fn)
		}
	}
	for i, s := range a.Segments {
		s.Index = i
		a.analyzeSegment(s)
	}
	return a
}

// Eligible returns the segments that passed all structural checks.
func (a *Analysis) Eligible() []*Segment {
	var out []*Segment
	for _, s := range a.Segments {
		if s.Eligible {
			out = append(out, s)
		}
	}
	return out
}

// Candidates returns the eligible segments that also pass the O/C filter —
// the set forwarded to value-set profiling (paper Fig. 1).
func (a *Analysis) Candidates() []*Segment {
	var out []*Segment
	for _, s := range a.Segments {
		if s.RatioOK() {
			out = append(out, s)
		}
	}
	return out
}

// enumerate walks fn collecting candidate segments.
func (a *Analysis) enumerate(fn *minic.FuncDecl) {
	// Function body segment.
	a.Segments = append(a.Segments, &Segment{
		Kind: FuncBody, Fn: fn, Body: fn.Body,
		Name:   fn.Name + "@func",
		FreqID: fn.ID(),
	})
	loopSeq, ifSeq := 0, 0
	minic.InspectStmts(fn.Body, func(s minic.Stmt) bool {
		switch s := s.(type) {
		case *minic.WhileStmt:
			loopSeq++
			a.Segments = append(a.Segments, &Segment{
				Kind: LoopBody, Fn: fn, Body: s.Body, Parent: s,
				Name:   fmt.Sprintf("%s@loop%d", fn.Name, loopSeq),
				FreqID: s.ID(),
			})
		case *minic.ForStmt:
			loopSeq++
			a.Segments = append(a.Segments, &Segment{
				Kind: LoopBody, Fn: fn, Body: s.Body, Parent: s,
				Name:   fmt.Sprintf("%s@loop%d", fn.Name, loopSeq),
				FreqID: s.ID(),
			})
		case *minic.IfStmt:
			ifSeq++
			a.Segments = append(a.Segments, &Segment{
				Kind: IfBranch, Fn: fn, Body: s.Then, Parent: s,
				Name:   fmt.Sprintf("%s@if%d_then", fn.Name, ifSeq),
				FreqID: s.Then.ID(),
			})
			if s.Else != nil {
				a.Segments = append(a.Segments, &Segment{
					Kind: IfBranch, Fn: fn, Body: s.Else, Parent: s,
					Name:   fmt.Sprintf("%s@if%d_else", fn.Name, ifSeq),
					FreqID: s.Else.ID(),
				})
			}
		}
		return true
	})
}

// analyzeSegment fills in the segment's inputs, outputs, sizes, static
// bounds and eligibility.
func (a *Analysis) analyzeSegment(s *Segment) {
	s.Eligible = true

	// FuncBody: split off the trailing return.
	if s.Kind == FuncBody {
		if !a.prepareFuncBody(s) {
			return
		}
	}

	// Structural check: the wrapped body must be single-entry single-exit.
	if esc := escapeKind(s.Body); esc != "" {
		s.fail("body has escaping control flow (%s)", esc)
		return
	}

	segG := cfg.BuildStmt(s.Body)

	// Inputs: upward-exposed reads.
	raw := a.Eff.UpwardExposed(segG)
	s.RawInputs = raw.Sorted()

	// Address-only induction variable (array reference analysis): for a
	// loop body whose induction variable only ever indexes direct array
	// accesses, the variable itself is excluded from the key and arrays
	// read exactly at arr[iv] contribute a single element value to the
	// key — even when the array itself is invariant, since the element
	// read still varies with iv (the UNEPIC case).
	var iv *minic.Symbol
	elemArrays := map[*minic.Symbol]bool{}
	if s.Kind == LoopBody {
		if f, ok := s.Parent.(*minic.ForStmt); ok {
			if cand, _ := inductionVar(f); cand != nil && a.addressOnly(cand, s.Body) {
				iv = cand
				// Every upward-exposed array read through iv must reduce
				// to a single element, or iv cannot be dropped from the
				// key.
				for _, sym := range s.RawInputs {
					if _, isArr := sym.Type.(*minic.Array); !isArr {
						continue
					}
					if a.readAtIndex(sym, iv, s.Body) {
						if a.elementOnlyRead(sym, iv, s.Body) {
							elemArrays[sym] = true
						} else {
							iv = nil
							elemArrays = map[*minic.Symbol]bool{}
							break
						}
					}
				}
			}
		}
	}

	// Invariance filtering (code coverage analysis, §2.4). Element-read
	// arrays bypass the filter: their keyed element varies with iv.
	var inputs []*minic.Symbol
	for _, sym := range s.RawInputs {
		if sym == iv {
			continue // address-only: never part of the key
		}
		if elemArrays[sym] {
			inputs = append(inputs, sym)
			continue
		}
		if a.InvariantFor(sym, s) {
			s.Invariants = append(s.Invariants, sym)
		} else {
			inputs = append(inputs, sym)
		}
	}
	s.Inputs = nil
	for _, sym := range canonicalOrder(inputs) {
		if elemArrays[sym] {
			s.Inputs = append(s.Inputs, Input{Sym: sym, Elem: a.Prog.NewIdent(iv)})
			continue
		}
		s.Inputs = append(s.Inputs, Input{Sym: sym})
	}
	s.AddrVar = iv

	// Outputs: definitions live after the segment. Aggregates must be
	// key-covered, fully written, or reducible to element writes (array
	// reference analysis).
	liveAfter := a.liveAfter(s)
	outs := a.Eff.SegmentOutputs(segG, liveAfter)
	if s.RetOut != nil {
		outs.Add(s.RetOut)
	}
	if !a.buildOutputs(s, canonicalOrder(outs.Sorted())) {
		return
	}

	// Type/size eligibility of inputs and outputs.
	if !a.checkEncodable(s) {
		return
	}

	// Static bounds.
	s.CMax = a.Est.MaxCycles(s.Body)
	s.CMin = a.Est.MinCycles(s.Body)
	s.Overhead = a.opts.Model.HashOverhead(s.KeyBytes, s.OutBytes)
}

func (s *Segment) fail(format string, args ...any) {
	s.Eligible = false
	s.Reason = fmt.Sprintf(format, args...)
}

// prepareFuncBody splits a trailing "return x" off the function body and
// records the returned local as a segment output. Functions with early
// returns or a trailing return of a non-identifier are ineligible (the
// paper leaves sub-body segments to future work).
func (a *Analysis) prepareFuncBody(s *Segment) bool {
	body, ok := s.Body.(*minic.Block)
	if !ok || len(body.Stmts) == 0 {
		s.fail("empty function body")
		return false
	}
	last := body.Stmts[len(body.Stmts)-1]
	ret, isRet := last.(*minic.ReturnStmt)

	// Count returns anywhere in the body.
	returns := 0
	minic.InspectStmts(body, func(st minic.Stmt) bool {
		if _, ok := st.(*minic.ReturnStmt); ok {
			returns++
		}
		return true
	})

	switch {
	case minic.IsVoid(s.Fn.Ret):
		if returns > 0 {
			s.fail("void function with explicit returns")
			return false
		}
		s.Body = body
	case !isRet || returns != 1:
		s.fail("function body does not end in a single trailing return")
		return false
	default:
		switch x := ret.X.(type) {
		case *minic.Ident:
			s.RetOut = x.Sym
		case *minic.IntLit, *minic.FloatLit:
			// Constant return: nothing extra to record.
		default:
			s.fail("trailing return is not a simple variable or constant")
			return false
		}
		trimmed := a.Prog.NewBlock(body.Stmts[:len(body.Stmts)-1]...)
		s.Body = trimmed
	}
	return true
}

// escapeKind reports whether body contains a break/continue/return that
// would leave the segment ("" if none).
func escapeKind(body minic.Stmt) string {
	kind := ""
	var walk func(st minic.Stmt, loopDepth int)
	walk = func(st minic.Stmt, loopDepth int) {
		if st == nil || kind != "" {
			return
		}
		switch x := st.(type) {
		case *minic.ReturnStmt:
			kind = "return"
		case *minic.BreakStmt:
			if loopDepth == 0 {
				kind = "break"
			}
		case *minic.ContinueStmt:
			if loopDepth == 0 {
				kind = "continue"
			}
		case *minic.Block:
			for _, y := range x.Stmts {
				walk(y, loopDepth)
			}
		case *minic.IfStmt:
			walk(x.Then, loopDepth)
			walk(x.Else, loopDepth)
		case *minic.WhileStmt:
			walk(x.Body, loopDepth+1)
		case *minic.ForStmt:
			walk(x.Body, loopDepth+1)
		case *minic.ReuseRegion:
			walk(x.Body, loopDepth)
		}
	}
	walk(body, 0)
	return kind
}

// liveAfter computes the externally observable liveness at the segment's
// exit point.
func (a *Analysis) liveAfter(s *Segment) dataflow.SymSet {
	// Globals (or escaping locals) read by any other function are live.
	extern := dataflow.SymSet{}
	for sym, readers := range a.gdu.UseFns {
		for _, r := range readers {
			if r != s.Fn {
				extern.Add(sym)
				break
			}
		}
	}
	// Plus function-local liveness at the segment exit.
	fnG := cfg.Build(s.Fn)
	live := a.Eff.Liveness(fnG, extern)
	switch s.Kind {
	case FuncBody:
		// Exit = function exit: locals are dead, globals per extern.
		return live[fnG.Exit].Out.Clone()
	default:
		// The live set at the segment's exit is the union of live-in over
		// the boundary successors: function-CFG nodes outside the segment
		// subtree reachable by an edge from inside it.
		inSeg := stmtIDsOf(s.Body)
		out := extern.Clone()
		for _, n := range fnG.Nodes {
			if !nodeInside(n, inSeg) {
				continue
			}
			for _, succ := range n.Succs {
				if !nodeInside(succ, inSeg) {
					out.AddAll(live[succ].In)
				}
			}
		}
		return out
	}
}

// stmtIDsOf collects the node ids of every statement and expression in the
// subtree.
func stmtIDsOf(body minic.Stmt) map[int]bool {
	ids := map[int]bool{}
	minic.Inspect(body, func(n minic.Node) bool {
		type ider interface{ ID() int }
		if x, ok := n.(ider); ok {
			ids[x.ID()] = true
		}
		return true
	})
	return ids
}

// nodeInside reports whether a CFG node belongs to a statement subtree,
// using the node's owning statement.
func nodeInside(n *cfg.Node, ids map[int]bool) bool {
	if n.Owner == nil {
		return false
	}
	return ids[n.Owner.ID()]
}

// checkEncodable validates input/output types and computes key/output
// sizes.
func (a *Analysis) checkEncodable(s *Segment) bool {
	key := 0
	for _, in := range s.Inputs {
		t := in.Sym.Type
		if in.Elem != nil {
			t = scalarElem(t)
		}
		b, ok := encodableBytes(t)
		if !ok {
			s.fail("input %s has non-encodable type %s", in, t)
			return false
		}
		key += b
	}
	if key == 0 {
		s.fail("segment has no inputs to key on")
		return false
	}
	if key > a.opts.MaxKeyBytes {
		s.fail("input set too large (%d bytes)", key)
		return false
	}
	outB := 0
	for _, o := range s.Outputs {
		t := o.Sym.Type
		if o.Elem != nil {
			t = scalarElem(t)
		}
		b, ok := encodableBytes(t)
		if !ok {
			s.fail("output %s has non-encodable type %s", o, t)
			return false
		}
		// Outputs must be nameable in the segment's scope.
		if o.Sym.Kind == minic.SymLocal || o.Sym.Kind == minic.SymParam {
			if o.Sym.Func != s.Fn {
				s.fail("output %s is a local of another function", o)
				return false
			}
		}
		outB += b
	}
	if len(s.Outputs) == 0 {
		s.fail("segment has no live outputs")
		return false
	}
	if outB > a.opts.MaxOutBytes {
		s.fail("output set too large (%d bytes)", outB)
		return false
	}
	s.KeyBytes = key
	s.OutBytes = outB
	return true
}

// encodableBytes returns the modeled byte size of a hashable/copyable
// type: int and float scalars, and arrays/structs composed of them.
func encodableBytes(t minic.Type) (int, bool) {
	switch t := t.(type) {
	case *minic.Basic:
		if t.Kind == minic.VoidKind {
			return 0, false
		}
		return t.Bytes(), true
	case *minic.Array:
		if _, ok := encodableBytes(t.Elem); !ok {
			return 0, false
		}
		return t.Bytes(), true
	case *minic.Struct:
		for _, f := range t.Fields {
			if _, ok := encodableBytes(f.Type); !ok {
				return 0, false
			}
		}
		return t.Bytes(), true
	}
	return 0, false // pointers, function types
}

// canonicalOrder sorts symbols: parameters (by slot), then locals (by
// slot), then globals (by name) — the fixed input ordering the paper
// requires for key composition.
func canonicalOrder(syms []*minic.Symbol) []*minic.Symbol {
	out := append([]*minic.Symbol(nil), syms...)
	rank := func(s *minic.Symbol) int {
		switch s.Kind {
		case minic.SymParam:
			return 0
		case minic.SymLocal:
			return 1
		default:
			return 2
		}
	}
	sort.Slice(out, func(i, j int) bool {
		ri, rj := rank(out[i]), rank(out[j])
		if ri != rj {
			return ri < rj
		}
		if ri < 2 && out[i].Slot != out[j].Slot {
			return out[i].Slot < out[j].Slot
		}
		return out[i].Name < out[j].Name
	})
	return out
}
