package segment

import (
	"compreuse/internal/cost"
	"compreuse/internal/minic"
)

// Dependence-key eligibility: a second chance for segments the flat-key
// O/C >= 1 filter rejected. A dependence-tracked probe (internal/depmemo)
// pays per location the body actually reads, not per byte of the
// declared input set, so a segment whose key is dominated by a wide,
// sparsely-read aggregate can clear the profitability bar under
// cost.Model.DepOverhead even though HashOverhead sank it.

// MinFootprintWords is the optimistic lower bound on a dependence
// footprint: one tracked read per scalar input, and at least one
// element read per aggregate input (a body that never reads an input at
// all would have had it filtered as dead).
func (s *Segment) MinFootprintWords() int {
	if len(s.Inputs) == 0 {
		return 1
	}
	return len(s.Inputs)
}

// DepEligible reports whether the segment should be forwarded to
// dependence-footprint profiling: structurally transformable, rejected
// by the flat-key pre-filter, and optimistically profitable under the
// dependence overhead model (O_dep/C_max < 1, the dep analog of the
// paper's formula-2 filter — R <= 1, so a segment failing even with the
// minimal footprint can never satisfy formula 3).
func (s *Segment) DepEligible(m *cost.Model) bool {
	if !s.Eligible || s.RatioOK() {
		return false
	}
	if s.CMax <= 0 {
		return false
	}
	oDep := m.DepOverhead(s.MinFootprintWords(), s.OutBytes)
	return float64(oDep)/float64(s.CMax) < 1
}

// HasAggregateInput reports whether any keyed input is an aggregate —
// the case where dependence narrowing has room to work (scalar-only
// keys are already minimal, so the trie can only match HashOverhead).
func (s *Segment) HasAggregateInput() bool {
	for _, in := range s.Inputs {
		if in.Elem == nil && minic.IsAggregate(in.Sym.Type) {
			return true
		}
	}
	return false
}

// DepCandidates returns the segments forwarded to dependence-footprint
// profiling: those DepEligible under m, in analysis order.
func (a *Analysis) DepCandidates(m *cost.Model) []*Segment {
	var out []*Segment
	for _, s := range a.Segments {
		if s.DepEligible(m) {
			out = append(out, s)
		}
	}
	return out
}
