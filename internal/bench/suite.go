package bench

import (
	"fmt"

	"compreuse/internal/core"
)

// Program is one benchmark of the suite.
type Program struct {
	// Name matches the paper's program names (G721_encode, ...).
	Name string
	// Source is the MiniC text.
	Source string
	// TrainArgs are the profiling/default-measurement arguments (the
	// paper's default Mediabench inputs).
	TrainArgs []int64
	// AltArgs are the alternative-input arguments for Table 10 (the
	// paper's MiBench/Tektronix/ICSI/EPIC inputs, GNU Go's "-b 9").
	AltArgs []int64
	// Variant marks the _s/_b G721 variants excluded from harmonic means.
	Variant bool
	// KernelFunc is the paper's Table 4 "Functions" entry.
	KernelFunc string
	// ScaleNote documents how the workload was scaled down vs the paper.
	ScaleNote string
}

// All returns the benchmark suite in the paper's table order.
func All() []Program {
	return []Program{
		{
			Name: "G721_encode", Source: g721EncodeSrc,
			TrainArgs: []int64{20210617, 16000}, AltArgs: []int64{777, 24000},
			KernelFunc: "quan, quantize, encode_one",
			ScaleNote:  "16k samples vs the paper's 1.6M quan calls (100x)",
		},
		{
			Name: "G721_encode_s", Source: g721EncodeSSrc,
			TrainArgs: []int64{20210617, 16000}, AltArgs: []int64{777, 24000},
			Variant: true, KernelFunc: "quan (shift)",
		},
		{
			Name: "G721_encode_b", Source: g721EncodeBSrc,
			TrainArgs: []int64{20210617, 16000}, AltArgs: []int64{777, 24000},
			Variant: true, KernelFunc: "quan (binary)",
		},
		{
			Name: "G721_decode", Source: g721DecodeSrc,
			TrainArgs: []int64{20210617, 14000}, AltArgs: []int64{777, 20000},
			KernelFunc: "quan, quantize, decode_one",
			ScaleNote:  "28k quan calls vs the paper's 2.9M (100x)",
		},
		{
			Name: "G721_decode_s", Source: g721DecodeSSrc,
			TrainArgs: []int64{20210617, 14000}, AltArgs: []int64{777, 20000},
			Variant: true, KernelFunc: "quan (shift)",
		},
		{
			Name: "G721_decode_b", Source: g721DecodeBSrc,
			TrainArgs: []int64{20210617, 14000}, AltArgs: []int64{777, 20000},
			Variant: true, KernelFunc: "quan (binary)",
		},
		{
			Name: "MPEG2_encode", Source: mpeg2EncodeSrc,
			TrainArgs: []int64{97, 330}, AltArgs: []int64{1234, 420},
			KernelFunc: "fdct",
			ScaleNote:  "330 8x8 blocks vs the paper's 7617 distinct (20x)",
		},
		{
			Name: "MPEG2_decode", Source: mpeg2DecodeSrc,
			TrainArgs: []int64{97, 300}, AltArgs: []int64{1234, 380},
			KernelFunc: "Reference_IDCT",
			ScaleNote:  "300 blocks; double-precision 64x64 direct IDCT as in mpeg2play",
		},
		{
			Name: "RASTA", Source: rastaSrc,
			TrainArgs: []int64{5, 1200}, AltArgs: []int64{11, 1700},
			KernelFunc: "FR4TR",
			ScaleNote:  "1600 band frames; 31 distinct quantized inputs as in the paper",
		},
		{
			Name: "UNEPIC", Source: unepicSrc,
			TrainArgs: []int64{31, 9000}, AltArgs: []int64{101, 12000},
			KernelFunc: "main, collapse_pyr",
			ScaleNote:  "9k coefficients vs the paper's 22902 distinct patterns",
		},
		{
			Name: "GNUGO", Source: gnugoSrc,
			TrainArgs: []int64{2, 6}, AltArgs: []int64{2, 9},
			KernelFunc: "accumulate_influence",
			ScaleNote:  "6 moves over a 19x19 board ('-b 6 -r 2'); alt input is '-b 9'",
		},
	}
}

// ByName returns the named program.
func ByName(name string) (Program, error) {
	for _, p := range All() {
		if p.Name == name {
			return p, nil
		}
	}
	return Program{}, fmt.Errorf("bench: unknown program %q", name)
}

// Core returns the suite without the _s/_b variants (the harmonic-mean
// set of Tables 6-10).
func Core() []Program {
	var out []Program
	for _, p := range All() {
		if !p.Variant {
			out = append(out, p)
		}
	}
	return out
}

// RunOptions builds the core pipeline options for a program. The
// frequency-filter threshold of 100 mirrors the paper's gprof-based
// pruning of rarely executed segments (it keeps one-time initialization
// code such as cosine-table setup out of the candidate set).
func (p Program) RunOptions(optLevel string) core.Options {
	return core.Options{
		Name:     p.Name,
		Source:   p.Source,
		OptLevel: optLevel,
		MainArgs: p.TrainArgs,
		MinFreq:  100,
	}
}

// Run executes the full scheme on the program at the given O-level.
func (p Program) Run(optLevel string) (*core.Report, error) {
	return core.Run(p.RunOptions(optLevel))
}
