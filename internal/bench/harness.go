package bench

import (
	"fmt"
	"io"
	"strings"

	"compreuse/internal/core"
)

// Runner executes pipeline runs for the suite, memoizing by (program,
// O-level) so the table generators share work: Tables 3, 4, 6 and 8 all
// read the same O0 runs.
type Runner struct {
	progs map[string]Program
	// Scale divides every program's workload argument, letting tests run
	// the whole harness quickly (1 = the full published configuration).
	Scale int64
	// Progress, when non-nil, receives one line per fresh pipeline run.
	Progress io.Writer

	reports map[string]*core.Report
	sweeps  map[string][]core.SweepOutcome
	alts    map[string]*core.Report
	deps    map[string]*core.Report
}

// NewRunner builds a runner over the full suite.
func NewRunner() *Runner {
	r := &Runner{
		progs:   map[string]Program{},
		Scale:   1,
		reports: map[string]*core.Report{},
		sweeps:  map[string][]core.SweepOutcome{},
		alts:    map[string]*core.Report{},
		deps:    map[string]*core.Report{},
	}
	for _, p := range All() {
		r.progs[p.Name] = p
	}
	return r
}

func (r *Runner) logf(format string, args ...any) {
	if r.Progress != nil {
		fmt.Fprintf(r.Progress, format+"\n", args...)
	}
}

func (r *Runner) scaleArgs(args []int64) []int64 {
	if r.Scale <= 1 || len(args) < 2 {
		return args
	}
	out := append([]int64(nil), args...)
	// By convention every program's second argument is the workload size.
	out[1] /= r.Scale
	if out[1] < 1 {
		out[1] = 1
	}
	return out
}

func (r *Runner) options(p Program, level string) core.Options {
	opts := p.RunOptions(level)
	opts.MainArgs = r.scaleArgs(opts.MainArgs)
	if r.Scale > 1 {
		opts.MinFreq = 8
	}
	return opts
}

// Report runs (or recalls) the scheme for a program at an O-level.
func (r *Runner) Report(name, level string) (*core.Report, error) {
	key := name + "/" + level
	if rep, ok := r.reports[key]; ok {
		return rep, nil
	}
	p, err := ByName(name)
	if err != nil {
		return nil, err
	}
	r.logf("running %s at %s ...", name, level)
	rep, err := core.Run(r.options(p, level))
	if err != nil {
		return nil, fmt.Errorf("%s/%s: %w", name, level, err)
	}
	r.reports[key] = rep
	return rep, nil
}

// DepReport runs (or recalls) the scheme with the dependence-key second
// chance enabled (core.Options.DepKeys), cached separately from the
// flat-key runs so the two pipelines stay comparable side by side.
func (r *Runner) DepReport(name, level string) (*core.Report, error) {
	key := name + "/" + level
	if rep, ok := r.deps[key]; ok {
		return rep, nil
	}
	p, err := ByName(name)
	if err != nil {
		return nil, err
	}
	opts := r.options(p, level)
	opts.DepKeys = true
	r.logf("running %s at %s with dep keys ...", name, level)
	rep, err := core.Run(opts)
	if err != nil {
		return nil, fmt.Errorf("%s/%s/dep: %w", name, level, err)
	}
	r.deps[key] = rep
	return rep, nil
}

// Reports returns every memoized pipeline report, keyed "program/level".
// The crcbench -json and serve modes read this to export run outcomes and
// decision ledgers after the experiments execute.
func (r *Runner) Reports() map[string]*core.Report {
	out := make(map[string]*core.Report, len(r.reports))
	for k, v := range r.reports {
		out[k] = v
	}
	return out
}

// AltReport runs the cross-input configuration (profile on the training
// input, measure on the alternative input) at O3 — Table 10's methodology.
func (r *Runner) AltReport(name string) (*core.Report, error) {
	if rep, ok := r.alts[name]; ok {
		return rep, nil
	}
	p, err := ByName(name)
	if err != nil {
		return nil, err
	}
	opts := r.options(p, "O3")
	opts.MeasureArgs = r.scaleArgs(p.AltArgs)
	r.logf("running %s cross-input at O3 ...", name)
	rep, err := core.Run(opts)
	if err != nil {
		return nil, fmt.Errorf("%s/alt: %w", name, err)
	}
	r.alts[name] = rep
	return rep, nil
}

// SweepKey identifies a sweep request.
func sweepKey(name, level string, points []core.SweepPoint) string {
	var sb strings.Builder
	sb.WriteString(name + "/" + level)
	for _, p := range points {
		fmt.Fprintf(&sb, ";%d,%v", p.Entries, p.LRU)
	}
	return sb.String()
}

// Sweep measures the transformed program under several table
// configurations.
func (r *Runner) Sweep(name, level string, points []core.SweepPoint) (*core.Report, []core.SweepOutcome, error) {
	key := sweepKey(name, level, points)
	if outs, ok := r.sweeps[key]; ok {
		return r.reports[name+"/"+level], outs, nil
	}
	p, err := ByName(name)
	if err != nil {
		return nil, nil, err
	}
	r.logf("sweeping %s at %s over %d table configurations ...", name, level, len(points))
	rep, outs, err := core.RunSweep(r.options(p, level), points)
	if err != nil {
		return nil, nil, err
	}
	r.reports[name+"/"+level] = rep
	r.sweeps[key] = outs
	return rep, outs, nil
}

// MainDecision returns the "most significant code segment" of a report:
// the selected segment with the largest whole-run gain (Table 3 shows
// statistics "only for the most significant code segment").
func MainDecision(rep *core.Report) *core.Decision {
	var best *core.Decision
	bestGain := 0.0
	for i := range rep.Decisions {
		d := &rep.Decisions[i]
		if !d.Selected || d.Profile == nil {
			continue
		}
		total := d.Gain * float64(d.Profile.N)
		if best == nil || total > bestGain {
			best = d
			bestGain = total
		}
	}
	return best
}

// MainTable returns the table serving the main decision's segment.
func MainTable(rep *core.Report) *core.TableInfo {
	d := MainDecision(rep)
	if d == nil {
		if len(rep.Tables) > 0 {
			return &rep.Tables[0]
		}
		return nil
	}
	for i := range rep.Tables {
		for _, s := range rep.Tables[i].Segs {
			if s == d.Name {
				return &rep.Tables[i]
			}
		}
	}
	if len(rep.Tables) > 0 {
		return &rep.Tables[0]
	}
	return nil
}

// TotalTableBytes sums the modeled memory of every table in the report.
func TotalTableBytes(rep *core.Report) int {
	n := 0
	for _, t := range rep.Tables {
		n += t.SizeBytes
	}
	return n
}

// HarmonicMean of a positive series.
func HarmonicMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += 1 / x
	}
	return float64(len(xs)) / s
}

// humanBytes renders table sizes the way the paper does (KB / MB).
func humanBytes(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.0fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// textTable renders rows with aligned columns.
func textTable(w io.Writer, header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
}

// bars renders an ASCII histogram.
func bars(w io.Writer, labels []string, values []int64, width int) {
	var max int64 = 1
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	lw := 0
	for _, l := range labels {
		if len(l) > lw {
			lw = len(l)
		}
	}
	for i, v := range values {
		n := int(v * int64(width) / max)
		fmt.Fprintf(w, "%-*s |%s %d\n", lw, labels[i], strings.Repeat("#", n), v)
	}
}
