package bench

import "compreuse/internal/core"

// runCore is the single entry point through which the suite invokes the
// pipeline (kept separate so harness code can wrap it uniformly).
func runCore(opts core.Options) (*core.Report, error) { return core.Run(opts) }
