package bench

import (
	"fmt"
	"io"
)

// The statreuse experiment compares the static reuse-rate estimate R̂
// (internal/statreuse, computed from segment analysis alone) against the
// profiled R = 1 − N_ds/N for every eligible segment in the suite. The
// profiled rows yield the estimator's headline accuracy: mean and max
// absolute error, pinned by TestStaticReuseGolden.

// StaticReuseStats summarizes R̂ accuracy over the profiled rows.
type StaticReuseStats struct {
	// Eligible counts eligible segments (every one carries an R̂).
	Eligible int
	// Profiled counts rows where a profiled R exists to compare against.
	Profiled int
	// MAE and MaxErr are the mean and max |R − R̂| over profiled rows.
	MAE    float64
	MaxErr float64
}

// staticReuseRows builds the per-segment table rows and accuracy stats
// from the O0 decision ledgers of every program in the suite.
func staticReuseRows(r *Runner) ([][]string, StaticReuseStats, error) {
	var rows [][]string
	var st StaticReuseStats
	var sumErr float64
	for _, p := range All() {
		rep, err := r.Report(p.Name, "O0")
		if err != nil {
			return nil, st, err
		}
		for _, rec := range rep.Ledger {
			if !rec.Eligible {
				continue
			}
			st.Eligible++
			profiled, errCell := "-", "-"
			if rec.Profiled {
				st.Profiled++
				e := rec.ReuseRate - rec.StaticReuseRate
				if e < 0 {
					e = -e
				}
				sumErr += e
				if e > st.MaxErr {
					st.MaxErr = e
				}
				profiled = fmt.Sprintf("%.4f", rec.ReuseRate)
				errCell = fmt.Sprintf("%.4f", e)
			}
			rows = append(rows, []string{
				p.Name, rec.Segment, rec.StaticClass,
				fmt.Sprintf("%.4f", rec.StaticReuseRate),
				profiled, errCell,
			})
		}
	}
	if st.Profiled > 0 {
		st.MAE = sumErr / float64(st.Profiled)
	}
	return rows, st, nil
}

// StaticReuse renders the R̂-vs-profiled-R table (the statreuse
// experiment).
func StaticReuse(w io.Writer, r *Runner) error {
	fmt.Fprintln(w, "Extension. Static reuse-rate estimation (R-hat vs profiled R, O0)")
	rows, st, err := staticReuseRows(r)
	if err != nil {
		return err
	}
	textTable(w, []string{"Program", "Segment", "Class", "R-hat", "R (profiled)", "|err|"}, rows)
	fmt.Fprintf(w, "(%d eligible segments, %d profiled; mean abs error %.4f, max %.4f)\n",
		st.Eligible, st.Profiled, st.MAE, st.MaxErr)
	fmt.Fprintln(w, "(R-hat is computed from the segment analysis alone — no profiling run;")
	fmt.Fprintln(w, " crcserve -priors seeds governor admission from it)")
	return nil
}

func init() {
	extraExperiments = append(extraExperiments,
		Experiment{"statreuse", "Static reuse-rate estimation accuracy (R-hat vs R)", StaticReuse},
	)
}
