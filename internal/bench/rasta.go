package bench

// RASTA: the paper reuses a code segment of FR4TR, the most
// time-consuming function of the rasta-plp front end, with one input
// variable and six output variables and a 99.6% input repetition rate over
// just 31 distinct input patterns (Table 3, Fig. 11).
//
// Our FR4TR computes six RASTA filter coefficients from a quantized
// band-energy index: a critical-band style loudness curve via exp/log
// series (software float, as on the FPU-less SA-1110), then a bank of six
// IIR-like coefficient recursions. The driver processes frames of bands
// whose quantized energies fall into 31 levels, as in the paper.

const rastaSrc = `
/* ---- float math substrate (no libm on the target) ---- */
float my_exp(float x) {
    /* exp by squaring: exp(x) = exp(x/16)^16, series on the small arg */
    float y = x / 16.0;
    float r = 1.0 + y + y * y / 2.0 + y * y * y / 6.0 + y * y * y * y / 24.0;
    int i;
    for (i = 0; i < 4; i++)
        r = r * r;
    return r;
}

float my_log1p(float x) {
    /* log(1+x) series with argument folding for x in [0, 40] */
    float acc = 0.0;
    float v = 1.0 + x;
    while (v > 1.5) {
        v = v / 1.5;
        acc = acc + 0.4054651081;
    }
    float t = v - 1.0;
    float r = t - t * t / 2.0 + t * t * t / 3.0 - t * t * t * t / 4.0;
    float res = acc + r;
    return res;
}

/* ---- FR4TR: six filter coefficients from a quantized band energy ---- */
float c1;
float c2;
float c3;
float c4;
float c5;
float c6;

void FR4TR(int band) {
    float e = (float)band * 0.31 + 0.4;
    float loud = my_log1p(e * e);
    float gain = my_exp(0.0 - e * 0.17);
    /* critical-band smearing recursion */
    float a = loud;
    float b = gain;
    int k;
    for (k = 0; k < 12; k++) {
        float w = a * 0.94 + b * 0.33;
        b = b * 0.97 + a * 0.02 + 0.001 * (float)k;
        a = w + my_exp(0.0 - w * w * 0.01) * 0.05;
    }
    c1 = a;
    c2 = b;
    c3 = a * b + loud;
    c4 = my_log1p(a + b);
    c5 = gain * a - b * 0.25;
    c6 = (a - b) * (a + b) + 0.125;
}

/* ---- per-frame front end: windowing + autocorrelation (PLP-style) ----
   This is the bulk of rasta's per-frame work that reuse cannot touch; in
   the paper FR4TR accounts for a minority of the runtime (speedup 1.17). */
int rrng;
float fchk;
float frame[64];
float window[64];
float autoc[20];

void init_window(void) {
    int i;
    for (i = 0; i < 64; i++) {
        float x = (float)i / 63.0;
        /* Hann-like raised cosine via the series cosine */
        window[i] = 0.54 - 0.46 * (1.0 - 2.0 * x * (2.0 - 2.0 * x));
    }
}

void grab_frame(void) {
    /* per-frame loudness level: a middle-weighted 0..30 index (sum of two
       small uniforms) scales the frame amplitude over ~5 octaves, so the
       quantized band energies cover the paper's 31 distinct patterns with
       a middle-heavy histogram (Fig. 11) */
    rrng = (rrng * 1103515245 + 12345) & 1073741823;
    int la = (rrng >> 9) % 16;
    rrng = (rrng * 1103515245 + 12345) & 1073741823;
    int lb = (rrng >> 9) % 16;
    int lvl = la + lb;
    float amp = (float)(1 << (lvl / 4)) * (1.0 + 0.189 * (float)(lvl % 4));
    int i;
    for (i = 0; i < 64; i++) {
        rrng = (rrng * 1103515245 + 12345) & 1073741823;
        frame[i] = ((float)((rrng >> 9) & 1023) - 512.0) * 0.002 * amp;
    }
}

float analyze_frame(void) {
    int i;
    for (i = 0; i < 64; i++)
        frame[i] = frame[i] * window[i];
    /* autocorrelation, 20 lags */
    int lag;
    for (lag = 0; lag < 20; lag++) {
        float acc = 0.0;
        for (i = lag; i < 64; i++)
            acc = acc + frame[i] * frame[i - lag];
        autoc[lag] = acc;
    }
    float e = autoc[0];
    for (lag = 1; lag < 20; lag++)
        e = e + autoc[lag] * autoc[lag] * 0.05;
    return e;
}

int quantize_band(float e) {
    /* 2 bands per octave of frame energy */
    int b = (int)(my_log1p(e * 0.17) * 2.9);
    if (b > 30)
        b = 30;
    if (b < 0)
        b = 0;
    return b;
}

int main(int seed, int nframes) {
    rrng = seed;
    fchk = 0.0;
    init_window();
    int f;
    for (f = 0; f < nframes; f++) {
        grab_frame();
        float e = analyze_frame();
        int band = quantize_band(e);
        FR4TR(band);
        fchk = fchk + c1 + c2 * 0.5 + c3 * 0.25 + c4 * 0.125 + c5 * 0.0625 + c6 * 0.03125;
    }
    print_float(fchk);
    int r = (int)fchk;
    return r & 255;
}
`
