package bench

import (
	"testing"
)

// TestSuiteSmoke pushes every program through the full pipeline at O0 with
// reduced sizes and checks the invariants every benchmark must satisfy:
// semantics preserved, at least one segment transformed, positive reuse.
func TestSuiteSmoke(t *testing.T) {
	small := map[string][]int64{
		"G721_encode":   {1, 3000},
		"G721_encode_s": {1, 3000},
		"G721_encode_b": {1, 3000},
		"G721_decode":   {1, 2500},
		"G721_decode_s": {1, 2500},
		"G721_decode_b": {1, 2500},
		"MPEG2_encode":  {97, 40},
		"MPEG2_decode":  {97, 40},
		"RASTA":         {5, 300},
		"UNEPIC":        {31, 1500},
		"GNUGO":         {2, 1},
	}
	for _, p := range All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			opts := p.RunOptions("O0")
			opts.MainArgs = small[p.Name]
			opts.MinFreq = 8 // tiny test sizes fall under the suite threshold
			rep, err := runCore(opts)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Baseline.Ret != rep.Reuse.Ret || rep.Baseline.Output != rep.Reuse.Output {
				t.Fatalf("semantics broken: ret %d vs %d", rep.Baseline.Ret, rep.Reuse.Ret)
			}
			if rep.SegmentsTransformed == 0 {
				for _, d := range rep.Decisions {
					t.Logf("%s elig=%v(%s) oc=%v freq=%v gain=%.0f sel=%v",
						d.Name, d.Eligible, d.Reason, d.PassedOC, d.PassedFreq, d.Gain, d.Selected)
				}
				t.Fatal("nothing transformed")
			}
			hits := int64(0)
			for _, tab := range rep.Tables {
				hits += tab.Stats.Hits
			}
			if hits == 0 {
				t.Fatal("no reuse hits")
			}
			t.Logf("transformed=%d speedup=%.3f energy=%.1f%% hits=%d",
				rep.SegmentsTransformed, rep.Speedup(), rep.EnergySaving()*100, hits)
		})
	}
}
