package bench

// UNEPIC: the paper applies the scheme to a loop in the main function of
// the EPIC image decompressor; the loop body has a single integer input
// and a single integer output with a 65.1% input repetition rate over
// 22902 distinct patterns (Table 3, Fig. 12).
//
// Our loop body is a collapse_pyr-style reconstruction step: dequantize a
// wavelet coefficient and run a short fixed-point filter recursion whose
// result goes to image[i]. The array reference analysis reduces the
// segment's key to the single element value coef[i] (the induction
// variable is address-only), exactly the paper's "single input variable
// and a single output variable, both integers".
//
// The synthetic coefficient stream mimics quantized wavelet statistics:
// many zeros, a cluster of small magnitudes, and a mostly-distinct wide
// tail — yielding a ~65% repetition rate.

const unepicSrc = `
int coef[16384];
int image[16384];
int urng;

int next_u(void) {
    urng = (urng * 1103515245 + 12345) & 1073741823;
    int r = (urng >> 7) & 1048575;
    return r;
}

void read_pyramid(int n) {
    int i;
    for (i = 0; i < n; i++) {
        int u = next_u() % 1000;
        int v;
        if (u < 300) {
            /* dead zone of the quantizer */
            v = 0;
        } else if (u < 650) {
            /* small magnitudes: heavily repeated */
            int m = (next_u() % 180) + 1;
            int sg = next_u() & 1;
            if (sg == 1)
                v = 0 - m;
            else
                v = m;
        } else {
            /* wide tail: mostly distinct */
            int m = (next_u() % 60000) + 181;
            int sg = next_u() & 1;
            if (sg == 1)
                v = 0 - m;
            else
                v = m;
        }
        coef[i] = v;
    }
}

int qscale = 13;

int main(int seed, int n) {
    urng = seed;
    if (n > 16384)
        n = 16384;
    read_pyramid(n);

    /* collapse_pyr: the reused loop (paper: "its main function contains a
       loop to which our compiler scheme is applied") */
    int i;
    for (i = 0; i < n; i++) {
        int c = coef[i];
        int mag;
        if (c < 0) {
            mag = 0 - c;
        } else {
            mag = c;
        }
        /* dequantize with centroid offset */
        int d = mag * qscale + qscale / 2;
        /* fixed-point smoothing recursion (binomial filter cascade) */
        int acc = d;
        int st = d;
        int k;
        for (k = 0; k < 80; k++) {
            st = (st * 3 + acc) / 4;
            acc = acc + (st >> 3) - (acc >> 4);
            if (acc > 1000000)
                acc = acc - 999999;
        }
        int r = acc;
        if (c < 0)
            r = 0 - r;
        image[i] = r;
    }

    /* final checksum pass (not reusable: accumulator feeds itself) */
    int s = 0;
    for (i = 0; i < n; i++)
        s = (s + image[i]) & 16777215;
    print_int(s);
    return s & 255;
}
`
