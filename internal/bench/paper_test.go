package bench

import (
	"testing"

	"compreuse/internal/interp"
	"compreuse/internal/minic"
)

// TestQuanVariantsAgree checks the functional equivalence of the paper's
// three quan implementations (Fig. 2a linear search, Fig. 9 binary search,
// Fig. 10 shift loop): for every input, all three return the same
// quantization level. The paper's Tables 6/7 rely on this (the _s and _b
// programs compute identical streams).
func TestQuanVariantsAgree(t *testing.T) {
	mk := func(quanSrc, call string) func(int64) int64 {
		src := `
int power2[15] = {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384};
` + quanSrc + `
int main(int v, int unused) {
    int q = ` + call + `;
    return q;
}`
		prog, err := minic.Parse("q.c", src)
		if err != nil {
			t.Fatal(err)
		}
		if err := minic.Check(prog); err != nil {
			t.Fatal(err)
		}
		return func(v int64) int64 {
			res, err := interp.Run(prog, interp.Options{Args: []int64{v, 0}})
			if err != nil {
				t.Fatal(err)
			}
			return res.Ret
		}
	}

	linear := mk(`
int quan(int val, int *table, int size) {
    int i;
    for (i = 0; i < size; i++)
        if (val < table[i])
            break;
    return (i);
}`, "quan(v, power2, 15)")
	binary := mk(g721QuanBinary, "quan(v)")
	shift := mk(g721QuanShift, "quan(v)")

	var vals []int64
	for i := int64(0); i < 18; i++ {
		vals = append(vals, (int64(1)<<uint(i))-1, int64(1)<<uint(i), (int64(1)<<uint(i))+1)
	}
	vals = append(vals, 0, 3, 100, 12345, 16383, 16384, 99999)
	for _, v := range vals {
		l, b, s := linear(v), binary(v), shift(v)
		if l != b || l != s {
			t.Fatalf("quan(%d): linear=%d binary=%d shift=%d", v, l, b, s)
		}
	}
}

// TestWorkloadsAreDeterministic ensures every suite program is a pure
// function of its arguments (the synthetic input generators are seeded
// LCGs, so repeated runs must agree exactly).
func TestWorkloadsAreDeterministic(t *testing.T) {
	for _, p := range All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			prog1, err := minic.Parse(p.Name, p.Source)
			if err != nil {
				t.Fatal(err)
			}
			if err := minic.Check(prog1); err != nil {
				t.Fatal(err)
			}
			args := []int64{p.TrainArgs[0], smallSize(p.Name)}
			r1, err := interp.Run(prog1, interp.Options{Args: args})
			if err != nil {
				t.Fatal(err)
			}
			prog2, _ := minic.Parse(p.Name, p.Source)
			if err := minic.Check(prog2); err != nil {
				t.Fatal(err)
			}
			r2, err := interp.Run(prog2, interp.Options{Args: args})
			if err != nil {
				t.Fatal(err)
			}
			if r1.Ret != r2.Ret || r1.Output != r2.Output || r1.Cycles != r2.Cycles {
				t.Fatalf("nondeterministic workload: %d/%d vs %d/%d",
					r1.Ret, r1.Cycles, r2.Ret, r2.Cycles)
			}
			// Different seeds give different streams (the generator is live).
			prog3, _ := minic.Parse(p.Name, p.Source)
			if err := minic.Check(prog3); err != nil {
				t.Fatal(err)
			}
			r3, err := interp.Run(prog3, interp.Options{Args: []int64{p.TrainArgs[0] + 13, args[1]}})
			if err != nil {
				t.Fatal(err)
			}
			if p.Name != "GNUGO" && r3.Output == r1.Output {
				t.Fatalf("seed does not influence the %s workload", p.Name)
			}
		})
	}
}

func smallSize(name string) int64 {
	switch name {
	case "MPEG2_encode", "MPEG2_decode":
		return 12
	case "GNUGO":
		return 1
	case "RASTA":
		return 120
	default:
		return 800
	}
}
