package bench

import (
	"bytes"
	"strings"
	"testing"
)

// TestDepMemoGolden pins the dependence-key admission table: it must be
// byte-deterministic across independent runs, show at least one
// pre-filter reject flipped to accepted under dep keys (the acceptance
// criterion — GNU Go's eval_pos@func is the staged flip), keep the
// flat-key pipeline's own output untouched, and keep every flipped
// segment profitable in the final run.
func TestDepMemoGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the whole suite twice (flat and dep)")
	}
	render := func() (string, DepMemoStats) {
		r := NewRunner()
		r.Scale = 8
		var buf bytes.Buffer
		if err := DepMemo(&buf, r); err != nil {
			t.Fatal(err)
		}
		_, st, err := depMemoRows(r)
		if err != nil {
			t.Fatal(err)
		}
		return buf.String(), st
	}
	out, st := render()

	if st.Candidates == 0 {
		t.Fatal("no pre-filter rejects were dep-profiled")
	}
	if st.Flipped < 1 {
		t.Fatalf("no segment flipped to accepted under dep keys:\n%s", out)
	}
	if st.Profitable < st.Flipped {
		t.Fatalf("flipped segment with zero hit rate:\n%s", out)
	}
	// The staged flip: eval_pos@func admits under dep keys; feature@func
	// is its contrast row (tiny C, dep overhead still above the gain).
	evalLine, featLine := "", ""
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "eval_pos@func") {
			evalLine = line
		}
		if strings.Contains(line, " feature@func") {
			featLine = line
		}
	}
	if !strings.Contains(evalLine, "FLIPPED") {
		t.Errorf("eval_pos@func not flipped: %q", evalLine)
	}
	if !strings.Contains(featLine, "rejected") {
		t.Errorf("feature@func should stay rejected: %q", featLine)
	}

	// Dep admission must not disturb the flat pipeline's own decisions.
	r := NewRunner()
	r.Scale = 8
	flat, err := r.Report("GNUGO", "O0")
	if err != nil {
		t.Fatal(err)
	}
	dep, err := r.DepReport("GNUGO", "O0")
	if err != nil {
		t.Fatal(err)
	}
	if flat.Baseline.Ret != dep.Baseline.Ret || flat.Reuse.Ret != dep.Reuse.Ret {
		t.Fatal("dep keys changed program semantics")
	}
	flatSel := map[string]bool{}
	for _, rec := range flat.Ledger {
		if rec.Accepted {
			flatSel[rec.Segment] = true
		}
	}
	for _, rec := range dep.Ledger {
		if flatSel[rec.Segment] && !rec.Accepted {
			t.Errorf("dep keys dropped flat-selected segment %s", rec.Segment)
		}
	}

	// Deterministic: a second independent run renders byte-identical.
	out2, st2 := render()
	if out != out2 {
		t.Error("depmemo table is not deterministic across runs")
	}
	if st != st2 {
		t.Errorf("stats differ across runs: %+v vs %+v", st, st2)
	}
}
