package bench

import (
	"fmt"
	"io"

	"compreuse/internal/core"
	"compreuse/internal/profile"
)

// This file regenerates the paper's Figures 5-8 and 11-15 as ASCII
// histograms and series. Figures 1-4, 9 and 10 are schematics or code
// listings realized directly as code (see DESIGN.md).

// valueFigure renders a histogram of a program's main-segment input values
// (Figures 5, 6, 12, 13).
func valueFigure(w io.Writer, r *Runner, prog, title string, buckets int) error {
	rep, err := r.Report(prog, "O0")
	if err != nil {
		return err
	}
	d := MainDecision(rep)
	if d == nil || d.Profile == nil {
		return fmt.Errorf("%s: no profiled main segment", prog)
	}
	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "(segment %s: %d executions, %d distinct input patterns)\n",
		d.Name, d.Profile.N, d.Profile.Nds)
	h := profile.ValueHistogram(d.Profile.Census, buckets)
	if h == nil {
		// Wide keys (multiple inputs): fall back to a rank histogram.
		fmt.Fprintln(w, "(multi-variable key: histogram by input-pattern rank)")
		return rankedCensus(w, d.Profile, buckets)
	}
	labels := make([]string, len(h))
	values := make([]int64, len(h))
	for i, b := range h {
		labels[i] = fmt.Sprintf("[%d,%d)", b.Lo, b.Hi)
		values[i] = b.Count
	}
	bars(w, labels, values, 50)
	return nil
}

func rankedCensus(w io.Writer, sp *profile.SegProfile, buckets int) error {
	counts := make([]int64, len(sp.Census))
	for i, kc := range sp.Census {
		counts[i] = kc.Count
	}
	h := profile.RankHistogram(counts, buckets)
	labels := make([]string, len(h))
	values := make([]int64, len(h))
	for i, b := range h {
		labels[i] = fmt.Sprintf("pat %d-%d", b.Lo, b.Hi-1)
		values[i] = b.Count
	}
	bars(w, labels, values, 50)
	return nil
}

// Figure5 reproduces "Histogram of input values in G721_encode".
func Figure5(w io.Writer, r *Runner) error {
	return valueFigure(w, r, "G721_encode", "Figure 5. Histogram of input values in G721_encode", 16)
}

// Figure6 reproduces "Histogram of input values in G721_decode".
func Figure6(w io.Writer, r *Runner) error {
	return valueFigure(w, r, "G721_decode", "Figure 6. Histogram of input values in G721_decode", 16)
}

// accessFigure renders a histogram of accessed table entries from the
// final measurement run (Figures 7 and 8).
func accessFigure(w io.Writer, r *Runner, prog, title string, buckets int) error {
	rep, err := r.Report(prog, "O0")
	if err != nil {
		return err
	}
	tab := MainTable(rep)
	if tab == nil || len(tab.AccessCounts) == 0 {
		return fmt.Errorf("%s: no table access counts", prog)
	}
	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "(table %s: %d entries)\n", tab.Name, tab.Entries)
	h := profile.RankHistogram(tab.AccessCounts, buckets)
	labels := make([]string, len(h))
	values := make([]int64, len(h))
	for i, b := range h {
		labels[i] = fmt.Sprintf("entry %d-%d", b.Lo, b.Hi-1)
		values[i] = b.Count
	}
	bars(w, labels, values, 50)
	return nil
}

// Figure7 reproduces "Histogram of accessed table entries in G721_encode".
func Figure7(w io.Writer, r *Runner) error {
	return accessFigure(w, r, "G721_encode", "Figure 7. Histogram of accessed table entries in G721_encode", 16)
}

// Figure8 reproduces "Histogram of accessed table entries in G721_decode".
func Figure8(w io.Writer, r *Runner) error {
	return accessFigure(w, r, "G721_decode", "Figure 8. Histogram of accessed table entries in G721_decode", 16)
}

// Figure11 reproduces "Histogram of distinct input patterns in RASTA":
// the per-pattern execution counts of FR4TR's 31 quantized inputs.
func Figure11(w io.Writer, r *Runner) error {
	rep, err := r.Report("RASTA", "O0")
	if err != nil {
		return err
	}
	d := MainDecision(rep)
	if d == nil || d.Profile == nil {
		return fmt.Errorf("RASTA: no main segment")
	}
	fmt.Fprintln(w, "Figure 11. Histogram of distinct input patterns in RASTA")
	labels := make([]string, len(d.Profile.Census))
	values := make([]int64, len(d.Profile.Census))
	for i, kc := range d.Profile.Census {
		labels[i] = fmt.Sprintf("pattern %2d", i)
		values[i] = kc.Count
	}
	bars(w, labels, values, 50)
	return nil
}

// Figure12 reproduces "Histogram of input values in UNEPIC".
func Figure12(w io.Writer, r *Runner) error {
	return valueFigure(w, r, "UNEPIC", "Figure 12. Histogram of input values in UNEPIC", 16)
}

// Figure13 reproduces "Histogram of input values in GNU Go".
func Figure13(w io.Writer, r *Runner) error {
	return valueFigure(w, r, "GNUGO", "Figure 13. Histogram of input values in GNU Go", 16)
}

// figureSizes are the byte budgets of the table-size sweeps (Figures
// 14/15). The paper sweeps 2KB ... 4MB and marks the profiling-derived
// optimal size.
var figureSizes = []int{2 << 10, 8 << 10, 32 << 10, 128 << 10, 512 << 10}

// sizeSweepFigure renders speedup-vs-table-size series for every program.
func sizeSweepFigure(w io.Writer, r *Runner, level, title string) error {
	fmt.Fprintln(w, title)
	header := []string{"Programs"}
	for _, sz := range figureSizes {
		header = append(header, humanBytes(sz))
	}
	header = append(header, "optimal")
	var rows [][]string
	for _, p := range Core() {
		rep, err := r.Report(p.Name, level)
		if err != nil {
			return err
		}
		// Convert each byte budget to per-table entry counts using the
		// report's main table entry size.
		tab := MainTable(rep)
		if tab == nil {
			rows = append(rows, append([]string{p.Name}, "-"))
			continue
		}
		var points []core.SweepPoint
		for _, sz := range figureSizes {
			entries := sz / tab.EntryBytes
			if entries < 1 {
				entries = 1
			}
			points = append(points, core.SweepPoint{Entries: entries})
		}
		points = append(points, core.SweepPoint{Entries: 0}) // optimal
		_, outs, err := r.Sweep(p.Name, level, points)
		if err != nil {
			return err
		}
		row := []string{p.Name}
		for _, out := range outs {
			row = append(row, fmt.Sprintf("%.2f", out.Speedup))
		}
		rows = append(rows, row)
	}
	textTable(w, header, rows)
	return nil
}

// Figure14 reproduces "Under O0 optimization, speedups with different hash
// table sizes".
func Figure14(w io.Writer, r *Runner) error {
	return sizeSweepFigure(w, r, "O0", "Figure 14. Speedups with different hash table sizes (O0)")
}

// Figure15 reproduces "Under O3 optimization, speedups with different hash
// table sizes".
func Figure15(w io.Writer, r *Runner) error {
	return sizeSweepFigure(w, r, "O3", "Figure 15. Speedups with different hash table sizes (O3)")
}

// Experiment names every regenerable table and figure.
type Experiment struct {
	Name string
	Desc string
	Run  func(io.Writer, *Runner) error
}

// extraExperiments collects generators registered by other files
// (ablations and extensions beyond the paper's own tables).
var extraExperiments []Experiment

// Experiments lists every table and figure generator in paper order,
// followed by the ablation studies.
func Experiments() []Experiment {
	return append([]Experiment{
		{"table3", "Factors which affect the optimization decision", Table3},
		{"table4", "Number of code segments", Table4},
		{"table5", "Hit ratios with limited buffers", Table5},
		{"table6", "Performance improvement with O0", Table6},
		{"table7", "Performance improvement with O3", Table7},
		{"table8", "Energy saving with O0", Table8},
		{"table9", "Energy saving with O3", Table9},
		{"table10", "Performance for different input files", Table10},
		{"fig5", "Histogram of input values in G721_encode", Figure5},
		{"fig6", "Histogram of input values in G721_decode", Figure6},
		{"fig7", "Histogram of accessed table entries in G721_encode", Figure7},
		{"fig8", "Histogram of accessed table entries in G721_decode", Figure8},
		{"fig11", "Histogram of distinct input patterns in RASTA", Figure11},
		{"fig12", "Histogram of input values in UNEPIC", Figure12},
		{"fig13", "Histogram of input values in GNU Go", Figure13},
		{"fig14", "Speedups with different hash table sizes (O0)", Figure14},
		{"fig15", "Speedups with different hash table sizes (O3)", Figure15},
	}, extraExperiments...)
}
