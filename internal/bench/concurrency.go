package bench

// The concurrency sweep is a beyond-paper experiment for the Go-facing
// reuse runtime. The paper's cost model (formula 3: profit = R·C − O)
// prices the hash probe overhead O on a single-threaded 206 MHz iPAQ; a
// server runtime re-prices O under contention, where a single global lock
// inflates every probe's effective cost by the queueing delay behind it.
// The sweep measures probe/record throughput of the reuse table under
// increasing goroutine counts, for the serialized single-mutex design and
// the sharded striped-lock runtime, at the quan-style reuse-heavy key
// distribution. On multi-core hardware the sharded rows scale with
// GOMAXPROCS; on a single-core host the visible effect is the mutex rows
// degrading with goroutine count while the sharded rows stay flat.

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"compreuse/internal/reusetab"
)

// concGoroutines are the sweep points (capped at what the host can run).
var concGoroutines = []int{1, 2, 4, 8}

// concTableConfig is the headline unbounded ("optimal") table shape the
// transformed programs use for quan-like segments.
func concTableConfig() reusetab.Config {
	return reusetab.Config{
		Name:     "conc",
		Segs:     1,
		KeyBytes: 4,
		OutWords: []int{1},
		OutBytes: []int{4},
	}
}

// concProbeRecord runs the reuse protocol — probe, record on miss — over a
// 256-hot-key stream, the value-locality regime of G721's quantizer.
func concProbeRecord(probe func([]byte) bool, record func([]byte, uint64), ops int, seed int64) {
	var buf [8]byte
	x := seed
	for i := 0; i < ops; i++ {
		x = (x*75 + 74) & 255
		key := reusetab.AppendInt(buf[:0], x)
		if !probe(key) {
			record(key, uint64(x))
		}
	}
}

type concVariant struct {
	name  string
	build func() (probe func([]byte) bool, record func([]byte, uint64))
}

func concVariants() []concVariant {
	return []concVariant{
		{
			// The historical runtime: one mutex serializing every probe.
			name: "single-mutex",
			build: func() (func([]byte) bool, func([]byte, uint64)) {
				var mu sync.Mutex
				tab := reusetab.New(concTableConfig())
				probe := func(key []byte) bool {
					mu.Lock()
					_, hit := tab.Probe(0, key)
					mu.Unlock()
					return hit
				}
				record := func(key []byte, v uint64) {
					mu.Lock()
					tab.Record(0, key, []uint64{v})
					mu.Unlock()
				}
				return probe, record
			},
		},
		{
			// The sharded runtime: striped locks, atomic stats.
			name: "sharded-16",
			build: func() (func([]byte) bool, func([]byte, uint64)) {
				tab := reusetab.NewSharded(concTableConfig(), 16)
				probe := func(key []byte) bool {
					_, hit := tab.Probe(0, key)
					return hit
				}
				record := func(key []byte, v uint64) {
					tab.Record(0, key, []uint64{v})
				}
				return probe, record
			},
		},
	}
}

// ConcurrencySweep prints probe throughput (million ops/sec) per runtime
// variant and goroutine count, plus the sharded:mutex throughput ratio at
// each sweep point.
func ConcurrencySweep(w io.Writer, r *Runner) error {
	fmt.Fprintln(w, "Concurrency sweep. Reuse-runtime throughput under parallel load (beyond the paper)")
	fmt.Fprintf(w, "GOMAXPROCS=%d; probe+record-on-miss over 256 hot keys; Mops/s (higher is better)\n",
		runtime.GOMAXPROCS(0))

	opsPerG := 1 << 19
	if r.Scale > 1 {
		opsPerG = opsPerG / int(r.Scale)
		if opsPerG < 1<<12 {
			opsPerG = 1 << 12
		}
	}

	mops := map[string][]float64{}
	for _, v := range concVariants() {
		for _, g := range concGoroutines {
			probe, record := v.build()
			var wg sync.WaitGroup
			wg.Add(g)
			start := time.Now()
			for i := 0; i < g; i++ {
				go func(seed int64) {
					defer wg.Done()
					concProbeRecord(probe, record, opsPerG, seed)
				}(int64(i*7 + 1))
			}
			wg.Wait()
			elapsed := time.Since(start)
			total := float64(g * opsPerG)
			mops[v.name] = append(mops[v.name], total/elapsed.Seconds()/1e6)
		}
	}

	head := "runtime        "
	for _, g := range concGoroutines {
		head += fmt.Sprintf("%10s", fmt.Sprintf("%dg", g))
	}
	fmt.Fprintln(w, head)
	for _, v := range concVariants() {
		row := fmt.Sprintf("%-15s", v.name)
		for _, m := range mops[v.name] {
			row += fmt.Sprintf("%10.2f", m)
		}
		fmt.Fprintln(w, row)
	}
	row := fmt.Sprintf("%-15s", "sharded:mutex")
	for i := range concGoroutines {
		row += fmt.Sprintf("%9.2fx", mops["sharded-16"][i]/mops["single-mutex"][i])
	}
	fmt.Fprintln(w, row)
	return nil
}

func init() {
	extraExperiments = append(extraExperiments,
		Experiment{"conc", "Reuse-runtime throughput under parallel load (beyond the paper)", ConcurrencySweep},
	)
}
