package bench

import (
	"bytes"
	"strings"
	"testing"
)

// staticReuseMAEThreshold is the committed accuracy bar for the static
// estimator over the suite's profiled segments (acceptance criterion:
// mean absolute error ≤ 0.15). The calibrated estimator sits near 0.05;
// the slack absorbs workload-scale jitter, not estimator regressions.
const staticReuseMAEThreshold = 0.15

// TestStaticReuseGolden pins the R̂-vs-profiled-R table: it must cover
// every workload, carry an estimate for every eligible segment, be
// byte-deterministic across independent runs, and keep the mean
// absolute error under the committed threshold.
func TestStaticReuseGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the whole suite")
	}
	render := func() (string, StaticReuseStats) {
		r := NewRunner()
		r.Scale = 8
		var buf bytes.Buffer
		if err := StaticReuse(&buf, r); err != nil {
			t.Fatal(err)
		}
		_, st, err := staticReuseRows(r)
		if err != nil {
			t.Fatal(err)
		}
		return buf.String(), st
	}
	out, st := render()

	for _, p := range All() {
		if !strings.Contains(out, p.Name) {
			t.Errorf("table missing workload %s", p.Name)
		}
	}
	if st.Eligible == 0 || st.Profiled == 0 {
		t.Fatalf("empty comparison: %+v", st)
	}
	if st.MAE > staticReuseMAEThreshold {
		t.Errorf("mean absolute error %.4f exceeds committed threshold %.2f",
			st.MAE, staticReuseMAEThreshold)
	}

	// Every eligible row carries a class and an estimate cell; R̂ comes
	// from analysis alone, so no profiled column is required for it.
	rows, _, err := func() ([][]string, StaticReuseStats, error) {
		r := NewRunner()
		r.Scale = 8
		return staticReuseRows(r)
	}()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != st.Eligible {
		t.Fatalf("rows %d != eligible %d", len(rows), st.Eligible)
	}
	for _, row := range rows {
		if row[2] == "" {
			t.Errorf("%s %s: missing static class", row[0], row[1])
		}
		if row[3] == "" || row[3] == "-" {
			t.Errorf("%s %s: missing R-hat", row[0], row[1])
		}
	}

	// Deterministic: a second independent run renders byte-identical.
	out2, st2 := render()
	if out != out2 {
		t.Error("statreuse table is not deterministic across runs")
	}
	if st != st2 {
		t.Errorf("stats differ across runs: %+v vs %+v", st, st2)
	}
}
