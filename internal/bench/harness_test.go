package bench

import (
	"bytes"
	"strings"
	"testing"
)

// TestHarnessRendersAllExperiments drives every table and figure generator
// at a heavily reduced workload scale and checks structural invariants of
// the output. This is the integration test of the whole evaluation path;
// cmd/crcbench runs the same code at full scale.
func TestHarnessRendersAllExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness is slow")
	}
	r := NewRunner()
	r.Scale = 16
	for _, e := range Experiments() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf, r); err != nil {
				t.Fatalf("%s: %v", e.Name, err)
			}
			out := buf.String()
			if len(out) < 80 {
				t.Fatalf("%s output suspiciously short:\n%s", e.Name, out)
			}
			// Every program-oriented experiment must mention the suite.
			if strings.HasPrefix(e.Name, "table") {
				for _, prog := range []string{"G721_encode", "UNEPIC"} {
					if !strings.Contains(out, prog) {
						t.Fatalf("%s output missing %s:\n%s", e.Name, prog, out)
					}
				}
			}
		})
	}
}

func TestHarmonicMean(t *testing.T) {
	hm := HarmonicMean([]float64{1, 2, 4})
	// 3 / (1 + 0.5 + 0.25) = 1.7142857...
	if hm < 1.714 || hm > 1.715 {
		t.Fatalf("hm = %v", hm)
	}
	if HarmonicMean(nil) != 0 {
		t.Fatal("empty mean must be 0")
	}
	if HarmonicMean([]float64{1, 0}) != 0 {
		t.Fatal("non-positive values must yield 0")
	}
}

func TestHumanBytes(t *testing.T) {
	cases := map[int]string{
		100:     "100B",
		2048:    "2KB",
		1 << 20: "1.00MB",
		4688000: "4.47MB",
	}
	for in, want := range cases {
		if got := humanBytes(in); got != want {
			t.Errorf("humanBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestRunnerScalesArgs(t *testing.T) {
	r := NewRunner()
	r.Scale = 4
	got := r.scaleArgs([]int64{7, 16000})
	if got[0] != 7 || got[1] != 4000 {
		t.Fatalf("scaled args: %v", got)
	}
	// The seed is never scaled; tiny workloads clamp at 1.
	got = r.scaleArgs([]int64{7, 2})
	if got[1] != 1 {
		t.Fatalf("clamp: %v", got)
	}
}

func TestSuitePrograms(t *testing.T) {
	if len(All()) != 11 || len(Core()) != 7 {
		t.Fatalf("suite sizes: %d / %d", len(All()), len(Core()))
	}
	seen := map[string]bool{}
	for _, p := range All() {
		if seen[p.Name] {
			t.Fatalf("duplicate program %s", p.Name)
		}
		seen[p.Name] = true
		if len(p.TrainArgs) != 2 || len(p.AltArgs) != 2 {
			t.Fatalf("%s: args must be (seed, size)", p.Name)
		}
		if p.KernelFunc == "" {
			t.Fatalf("%s: missing kernel annotation", p.Name)
		}
	}
	if _, err := ByName("G721_encode"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("bogus"); err == nil {
		t.Fatal("expected error")
	}
}

// TestPaperShapeInvariants encodes the headline qualitative claims of the
// paper's evaluation as assertions over a reduced-scale run.
func TestPaperShapeInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	r := NewRunner()
	r.Scale = 8
	speedup := map[string]float64{}
	for _, p := range Core() {
		rep, err := r.Report(p.Name, "O0")
		if err != nil {
			t.Fatal(err)
		}
		speedup[p.Name] = rep.Speedup()
		if rep.Baseline.Ret != rep.Reuse.Ret {
			t.Fatalf("%s: semantics broken", p.Name)
		}
	}
	// Every program profits.
	for name, s := range speedup {
		if s < 1.0 {
			t.Errorf("%s: speedup %.3f < 1", name, s)
		}
	}
	// UNEPIC is among the top winners (at full scale it is the largest;
	// reduced workloads shrink its distinct-input advantage), and
	// MPEG2_encode is the smallest, as in the paper.
	better := 0
	for name, s := range speedup {
		if name != "UNEPIC" && s > speedup["UNEPIC"] {
			better++
		}
		if name != "MPEG2_encode" && s < speedup["MPEG2_encode"] {
			t.Errorf("%s (%.2f) below MPEG2_encode (%.2f)", name, s, speedup["MPEG2_encode"])
		}
	}
	if better > 1 {
		t.Errorf("UNEPIC (%.2f) should rank in the top two: %v", speedup["UNEPIC"], speedup)
	}
	// GNU Go transforms exactly the paper's 8 merged segments.
	rep, err := r.Report("GNUGO", "O0")
	if err != nil {
		t.Fatal(err)
	}
	if rep.SegmentsTransformed != 8 {
		t.Errorf("GNUGO transformed %d segments, want 8", rep.SegmentsTransformed)
	}
	if len(rep.Tables) != 1 {
		t.Errorf("GNUGO tables = %d, want 1 merged", len(rep.Tables))
	}
}
