package bench

import (
	"fmt"
	"io"
	"strings"

	"compreuse/internal/core"
)

// This file regenerates the paper's Tables 3-10 from pipeline runs.
// Formats mirror the paper's columns; EXPERIMENTS.md records the
// paper-vs-measured comparison.

// Table3 reproduces "Factors which affect the optimization decision":
// per program, the main segment's computation granularity (µs), hashing
// overhead (µs), number of distinct input patterns, reuse rate, and hash
// table size.
func Table3(w io.Writer, r *Runner) error {
	fmt.Fprintln(w, "Table 3. Factors which affect the optimization decision")
	var rows [][]string
	for _, p := range Core() {
		rep, err := r.Report(p.Name, "O0")
		if err != nil {
			return err
		}
		d := MainDecision(rep)
		if d == nil {
			rows = append(rows, []string{p.Name, "-", "-", "-", "-", "-"})
			continue
		}
		sp := d.Profile
		tab := MainTable(rep)
		size := "-"
		if tab != nil {
			size = humanBytes(tab.SizeBytes)
		}
		rows = append(rows, []string{
			p.Name,
			fmt.Sprintf("%.2f", sp.MeasuredC/206), // cycles -> µs at 206 MHz
			fmt.Sprintf("%.2f", sp.Overhead/206),
			fmt.Sprintf("%d", sp.Nds),
			fmt.Sprintf("%.1f%%", sp.ReuseRate()*100),
			size,
		})
	}
	textTable(w, []string{"Programs", "Computation(us)", "Overhead(us)", "DIP#", "Reuse Rate", "Hash Table Size"}, rows)
	return nil
}

// Table4 reproduces "Number of code segments": analyzed, profiled and
// transformed segment counts, the kernel functions, and program size.
func Table4(w io.Writer, r *Runner) error {
	fmt.Fprintln(w, "Table 4. Number of code segments (CS)")
	var rows [][]string
	for _, p := range Core() {
		rep, err := r.Report(p.Name, "O0")
		if err != nil {
			return err
		}
		lines := strings.Count(p.Source, "\n")
		rows = append(rows, []string{
			p.Name,
			p.KernelFunc,
			fmt.Sprintf("%d", rep.SegmentsAnalyzed),
			fmt.Sprintf("%d", rep.SegmentsProfiled),
			fmt.Sprintf("%d", rep.SegmentsTransformed),
			fmt.Sprintf("%d", lines),
		})
	}
	textTable(w, []string{"Programs", "Functions", "Analyzed CS", "Profiled CS", "Transformed CS", "code size (lines)"}, rows)
	return nil
}

// table5Sizes are the paper's limited-buffer entry counts.
var table5Sizes = []int{1, 4, 16, 64}

// Table5 reproduces "Hit Ratios with Limited Buffers": LRU tables of 1, 4,
// 16 and 64 entries, emulating the hardware reuse buffers of prior work.
func Table5(w io.Writer, r *Runner) error {
	fmt.Fprintln(w, "Table 5. Hit Ratios with Limited Buffers (LRU)")
	var points []core.SweepPoint
	for _, n := range table5Sizes {
		points = append(points, core.SweepPoint{Entries: n, LRU: true})
	}
	var rows [][]string
	for _, p := range Core() {
		_, outs, err := r.Sweep(p.Name, "O0", points)
		if err != nil {
			return err
		}
		row := []string{p.Name}
		var entry64 int
		for i, out := range outs {
			var probes, hits int64
			for _, t := range out.Tables {
				probes += t.Stats.Probes
				hits += t.Stats.Hits
			}
			ratio := 0.0
			if probes > 0 {
				ratio = float64(hits) / float64(probes)
			}
			row = append(row, fmt.Sprintf("%.1f%%", ratio*100))
			if table5Sizes[i] == 64 {
				entry64 = out.SizeBytes
			}
		}
		row = append(row, fmt.Sprintf("%d", entry64))
		rows = append(rows, row)
	}
	textTable(w, []string{"Programs", "1-entry", "4-entry", "16-entry", "64-entry", "64-entry Size (Byte)"}, rows)
	return nil
}

// speedupTable renders Tables 6 (O0) and 7 (O3): original and transformed
// times plus speedups, with the harmonic mean over the non-variant
// programs.
func speedupTable(w io.Writer, r *Runner, level, title string) error {
	fmt.Fprintln(w, title)
	var rows [][]string
	var hm []float64
	for _, p := range All() {
		rep, err := r.Report(p.Name, level)
		if err != nil {
			return err
		}
		sp := rep.Speedup()
		rows = append(rows, []string{
			p.Name,
			fmt.Sprintf("%.2f", rep.Baseline.Seconds),
			fmt.Sprintf("%.2f", rep.Reuse.Seconds),
			fmt.Sprintf("%.2f", sp),
		})
		if !p.Variant {
			hm = append(hm, sp)
		}
	}
	rows = append(rows, []string{"Harmonic Mean", "", "", fmt.Sprintf("%.2f", HarmonicMean(hm))})
	textTable(w, []string{"Programs", "Original (s)", "Computation Reuse (s)", "Speedup"}, rows)
	return nil
}

// Table6 reproduces "Performance Improvement with O0".
func Table6(w io.Writer, r *Runner) error {
	return speedupTable(w, r, "O0", "Table 6. Performance Improvement with O0")
}

// Table7 reproduces "Performance Improvement with O3".
func Table7(w io.Writer, r *Runner) error {
	return speedupTable(w, r, "O3", "Table 7. Performance Improvement with O3")
}

// energyTable renders Tables 8 (O0) and 9 (O3).
func energyTable(w io.Writer, r *Runner, level, title string) error {
	fmt.Fprintln(w, title)
	var rows [][]string
	for _, p := range Core() {
		rep, err := r.Report(p.Name, level)
		if err != nil {
			return err
		}
		rows = append(rows, []string{
			p.Name,
			fmt.Sprintf("%.2f", rep.Baseline.Energy.Joules),
			fmt.Sprintf("%.2f", rep.Reuse.Energy.Joules),
			fmt.Sprintf("%.1f%%", rep.EnergySaving()*100),
		})
	}
	textTable(w, []string{"Programs", "Original (J)", "Comp. Reuse (J)", "Energy Saving"}, rows)
	return nil
}

// Table8 reproduces "Energy Saving with O0".
func Table8(w io.Writer, r *Runner) error {
	return energyTable(w, r, "O0", "Table 8. Energy Saving with O0")
}

// Table9 reproduces "Energy Saving with O3".
func Table9(w io.Writer, r *Runner) error {
	return energyTable(w, r, "O3", "Table 9. Energy Saving with O3")
}

// Table10 reproduces "Performance Improvement for Different Input Files":
// the transformation is decided from the training input's profile, but the
// measurement runs on the alternative input (O3).
func Table10(w io.Writer, r *Runner) error {
	fmt.Fprintln(w, "Table 10. Performance Improvement for Different Input Files (O3)")
	var rows [][]string
	var hm []float64
	for _, p := range Core() {
		rep, err := r.AltReport(p.Name)
		if err != nil {
			return err
		}
		sp := rep.Speedup()
		rows = append(rows, []string{
			p.Name,
			fmt.Sprintf("seed=%d n=%d", p.AltArgs[0], p.AltArgs[1]),
			fmt.Sprintf("%.2f", rep.Baseline.Seconds),
			fmt.Sprintf("%.2f", rep.Reuse.Seconds),
			fmt.Sprintf("%.2f", sp),
		})
		hm = append(hm, sp)
	}
	rows = append(rows, []string{"Harmonic Mean", "", "", "", fmt.Sprintf("%.2f", HarmonicMean(hm))})
	textTable(w, []string{"Programs", "Alt Input", "Original (s)", "Computation Reuse (s)", "Speedup"}, rows)
	return nil
}
