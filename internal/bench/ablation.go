package bench

import (
	"fmt"
	"io"

	"compreuse/internal/core"
)

// Ablations quantify the paper's two storage/arity optimizations beyond
// the headline tables:
//
//   - code specialization (§2.4): without it, G721's quan keeps its
//     pointer parameter and cannot be transformed at all;
//   - hash-table merging (§2.5): without it, GNU Go's eight tables each
//     store their own copy of the identical 4-int key (the paper's
//     unmerged build exhausted the iPAQ's memory).

// AblationSpecialization shows the effect of disabling §2.4 on the G721
// programs.
func AblationSpecialization(w io.Writer, r *Runner) error {
	fmt.Fprintln(w, "Ablation A. Code specialization (paper §2.4)")
	var rows [][]string
	for _, name := range []string{"G721_encode", "G721_decode"} {
		p, err := ByName(name)
		if err != nil {
			return err
		}
		for _, variant := range []struct {
			label string
			off   bool
		}{{"with specialization", false}, {"without", true}} {
			opts := r.options(p, "O0")
			opts.NoSpecialize = variant.off
			r.logf("ablation %s (%s) ...", name, variant.label)
			rep, err := core.Run(opts)
			if err != nil {
				return err
			}
			rows = append(rows, []string{
				name, variant.label,
				fmt.Sprintf("%d", rep.SegmentsTransformed),
				fmt.Sprintf("%.2f", rep.Speedup()),
			})
		}
	}
	textTable(w, []string{"Program", "Variant", "Transformed CS", "Speedup"}, rows)
	fmt.Fprintln(w, "(without specialization quan keeps its pointer parameter and cannot be keyed)")
	return nil
}

// AblationMerging shows the effect of disabling §2.5 on GNU Go.
func AblationMerging(w io.Writer, r *Runner) error {
	fmt.Fprintln(w, "Ablation B. Hash-table merging (paper §2.5)")
	p, err := ByName("GNUGO")
	if err != nil {
		return err
	}
	var rows [][]string
	for _, variant := range []struct {
		label string
		off   bool
	}{{"merged", false}, {"unmerged", true}} {
		opts := r.options(p, "O0")
		opts.NoMerge = variant.off
		r.logf("ablation GNUGO (%s) ...", variant.label)
		rep, err := core.Run(opts)
		if err != nil {
			return err
		}
		mem := TotalTableBytes(rep)
		rows = append(rows, []string{
			variant.label,
			fmt.Sprintf("%d", len(rep.Tables)),
			fmt.Sprintf("%d", mem),
			fmt.Sprintf("%.2f", rep.Speedup()),
		})
	}
	textTable(w, []string{"Variant", "Tables", "Table Memory (B)", "Speedup"}, rows)
	fmt.Fprintln(w, "(the paper's unmerged GNU Go ran out of memory on the 32MB iPAQ)")
	return nil
}

func init() {
	extraExperiments = append(extraExperiments,
		Experiment{"ablationA", "Effect of code specialization (§2.4)", AblationSpecialization},
		Experiment{"ablationB", "Effect of hash-table merging (§2.5)", AblationMerging},
		Experiment{"extension", "Sub-block segments (§5 future work)", ExtensionSubBlocks},
	)
}

// ExtensionSubBlocks measures the beyond-paper sub-block extension (§5
// future work) on the integer-kernel programs: does carving parts out of
// bodies find anything the paper's three shapes missed?
func ExtensionSubBlocks(w io.Writer, r *Runner) error {
	fmt.Fprintln(w, "Extension. Sub-block segments (paper §5 future work)")
	var rows [][]string
	for _, name := range []string{"G721_encode", "G721_decode", "RASTA", "UNEPIC", "GNUGO"} {
		p, err := ByName(name)
		if err != nil {
			return err
		}
		base, err := r.Report(name, "O0")
		if err != nil {
			return err
		}
		opts := r.options(p, "O0")
		opts.SubBlocks = true
		r.logf("extension %s (+sub-blocks) ...", name)
		ext, err := core.Run(opts)
		if err != nil {
			return err
		}
		subSel := 0
		for _, d := range ext.Decisions {
			if d.Selected && d.Kind == "sub" {
				subSel++
			}
		}
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%d / %.2f", base.SegmentsTransformed, base.Speedup()),
			fmt.Sprintf("%d / %.2f", ext.SegmentsTransformed, ext.Speedup()),
			fmt.Sprintf("%d", subSel),
		})
	}
	textTable(w, []string{"Program", "paper shapes (CS/speedup)", "+sub-blocks (CS/speedup)", "sub CS selected"}, rows)
	fmt.Fprintln(w, "(the suite kernels are whole-body reusable, so sub-blocks mostly confirm")
	fmt.Fprintln(w, " the paper's choices; see examples/subblocks for a case they win outright)")
	return nil
}
