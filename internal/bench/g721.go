// Package bench contains the benchmark suite reproducing the paper's
// evaluation (§3): MiniC re-implementations of the reused kernels of six
// Mediabench programs and GNU Go, with deterministic synthetic input
// generators replacing the Mediabench input files (see DESIGN.md for the
// substitution rationale), plus the harness that regenerates every table
// and figure.
//
// Each program is a faithful kernel + driver: the reused computation (the
// paper's Table 4 functions) computes the real function — quan really
// performs the G.721 segment quantization, Reference_IDCT really inverts
// the DCT — while the surrounding driver synthesizes input streams whose
// value-locality statistics (N, distinct input patterns, reuse rate)
// approximate the paper's Table 3, scaled down for simulation speed.
package bench

// g721Common holds the pieces shared by all G721 variants: the power2
// table, the synthetic PCM source (a triangle carrier plus a bounded
// random walk, standing in for the clinton.pcm speech file), and the
// ADPCM-style predictor.
const g721Common = `
/* G.721 ADPCM kernel, after Mediabench g721/g72x.c. The quantizer table
   holds powers of two: quan() performs the segment search of the G.721
   log-PCM quantization. */
int power2[15] = {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384};

/* --- synthetic PCM source (stands in for the Mediabench .pcm input) --- */
int rng;
int walk;
int phase;
int carrier[64];

void init_carrier(void) {
    /* triangle carrier at 16-bit PCM amplitude */
    int i;
    for (i = 0; i < 16; i++)
        carrier[i] = i * 440;
    for (i = 0; i < 32; i++)
        carrier[16 + i] = 7040 - i * 440;
    for (i = 0; i < 16; i++)
        carrier[48 + i] = 0 - 7040 + i * 440;
}

int next_sample(void) {
    rng = (rng * 1103515245 + 12345) & 1073741823;
    int jitter = (rng >> 16) & 255;
    walk = walk + jitter - 127;
    if (walk > 3200)
        walk = 3200;
    if (walk < 0 - 3200)
        walk = 0 - 3200;
    phase = phase + 1;
    if (phase >= 64)
        phase = 0;
    int s = carrier[phase] + walk;
    return s;
}

/* --- ADPCM predictor state --- */
int pred;
int chk;

int dequan(int q) {
    int dq = power2[q] >> 1;
    return dq;
}
`

// g721QuanLinear is the paper's Figure 4: the original three-parameter
// quan with a linear table search. Code specialization (§2.4) reduces it
// to the one-input version of Figure 2(a); without specialization the
// pointer parameter makes the segment untransformable.
const g721QuanLinear = `
int quan(int val, int *table, int size) {
    int i;
    for (i = 0; i < size; i++)
        if (val < table[i])
            break;
    return (i);
}

int quan_calls;

int quantize(int ad) {
    /* call-site bookkeeping, as g721's update() does: the counter varies
       every call, so the scheme must reach for quan itself */
    quan_calls++;
    int q = quan(ad, power2, 15);
    return q;
}
`

// g721QuanBinary is the paper's Figure 9: complete unrolling with a binary
// search (the G721_encode_b / G721_decode_b variants).
const g721QuanBinary = `
int quan(int val) {
    int i;
    if (val < power2[7]) {
        if (val < power2[3]) {
            if (val < power2[1])
                i = (val < power2[0]) ? 0 : 1;
            else
                i = (val < power2[2]) ? 2 : 3;
        } else {
            if (val < power2[5])
                i = (val < power2[4]) ? 4 : 5;
            else
                i = (val < power2[6]) ? 6 : 7;
        }
    } else {
        if (val < power2[11]) {
            if (val < power2[9])
                i = (val < power2[8]) ? 8 : 9;
            else
                i = (val < power2[10]) ? 10 : 11;
        } else {
            if (val < power2[13])
                i = (val < power2[12]) ? 12 : 13;
            else
                i = (val < power2[14]) ? 14 : 15;
        }
    }
    return (i);
}

int quan_calls;

int quantize(int ad) {
    quan_calls++;
    int q = quan(ad);
    return q;
}
`

// g721QuanShift is the paper's Figure 10: the power2 table replaced by
// shift operations (the G721_encode_s / G721_decode_s variants).
const g721QuanShift = `
int quan(int val) {
    int i;
    int j;
    j = 1;
    for (i = 0; i < 15; i++) {
        if (val < j)
            break;
        j = j << 1;
    }
    return (i);
}

int quan_calls;

int quantize(int ad) {
    quan_calls++;
    int q = quan(ad);
    return q;
}
`

// g721EncodeMain drives the encoder: per sample, quantize the prediction
// difference and update the predictor, as g721's g721_encoder does.
const g721EncodeMain = `
void encode_one(int sample) {
    int d = sample - pred;
    int ad;
    if (d < 0) {
        ad = 0 - d;
    } else {
        ad = d;
    }
    int q = quantize(ad);
    int dq = dequan(q);
    if (d < 0)
        pred = pred - dq;
    else
        pred = pred + dq;
    if (pred > 16000)
        pred = 16000;
    if (pred < 0 - 16000)
        pred = 0 - 16000;
    chk = (chk + q * 31 + 7) & 16777215;
}

int main(int seed, int n) {
    rng = seed;
    walk = 0;
    phase = 0;
    pred = 0;
    chk = 0;
    init_carrier();
    int i;
    for (i = 0; i < n; i++) {
        int s = next_sample();
        encode_one(s);
    }
    print_int(chk);
    return chk & 255;
}
`

// g721DecodeMain drives encoder+decoder: the decoder re-quantizes its
// reconstruction error, so quan runs twice per sample (the paper's decode
// invokes quan 2.9M times against encode's 1.6M).
const g721DecodeMain = `
int dpred;
void decode_one(int q, int sign) {
    int dq = dequan(q);
    if (sign < 0)
        dpred = dpred - dq;
    else
        dpred = dpred + dq;
    if (dpred > 16000)
        dpred = 16000;
    if (dpred < 0 - 16000)
        dpred = 0 - 16000;
    /* scale-factor adaptation: the decoder re-quantizes its adapted step
       size (g721's update() calls quan on the scale factor) */
    int step = dq + (dpred >> 6);
    int astep;
    if (step < 0) {
        astep = 0 - step;
    } else {
        astep = step;
    }
    int q2 = quantize(astep);
    chk = (chk + q * 31 + q2 * 13 + 7) & 16777215;
}

void encode_one(int sample) {
    int d = sample - pred;
    int ad;
    if (d < 0) {
        ad = 0 - d;
    } else {
        ad = d;
    }
    int q = quantize(ad);
    int sign = d;
    int dq = dequan(q);
    if (d < 0)
        pred = pred - dq;
    else
        pred = pred + dq;
    if (pred > 16000)
        pred = 16000;
    if (pred < 0 - 16000)
        pred = 0 - 16000;
    decode_one(q, sign);
}

int main(int seed, int n) {
    rng = seed;
    walk = 0;
    phase = 0;
    pred = 0;
    dpred = 0;
    chk = 0;
    init_carrier();
    int i;
    for (i = 0; i < n; i++) {
        int s = next_sample();
        encode_one(s);
    }
    print_int(chk);
    return chk & 255;
}
`

// G721 source assemblies.
var (
	g721EncodeSrc  = g721Common + g721QuanLinear + g721EncodeMain
	g721EncodeBSrc = g721Common + g721QuanBinary + g721EncodeMain
	g721EncodeSSrc = g721Common + g721QuanShift + g721EncodeMain
	g721DecodeSrc  = g721Common + g721QuanLinear + g721DecodeMain
	g721DecodeBSrc = g721Common + g721QuanBinary + g721DecodeMain
	g721DecodeSSrc = g721Common + g721QuanShift + g721DecodeMain
)
