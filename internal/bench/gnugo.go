package bench

// GNU Go: the paper's accumulate_influence contains eight code segments,
// each with the same four input variables (values in [0,19]) and one
// output variable; their eight hash tables are merged into one (§2.5) —
// without merging, the transformed game ran out of memory on the iPAQ.
// The average input repetition rate is 98.2% (Table 3, Fig. 13).
//
// Our accumulate_influence takes four quantized board features a,b,c,d in
// [0,19] and computes eight influence contributions through eight
// weight-table convolutions — eight IF-branch segments reading exactly
// (a,b,c,d), writing r1..r8. The driver plays a benchmark game: each move
// mutates the 19x19 board, then influence is accumulated over every point
// with features quantized from the local neighborhood, which clusters the
// feature tuples heavily.

const gnugoSrc = `
int board[361];

int w1[24] = {3,1,4,1,5,9,2,6,5,3,5,8,9,7,9,3,2,3,8,4,6,2,6,4};
int w2[24] = {2,7,1,8,2,8,1,8,2,8,4,5,9,0,4,5,2,3,5,3,6,0,2,8};
int w3[24] = {1,6,1,8,0,3,3,9,8,8,7,4,9,8,9,4,8,4,8,2,0,4,5,8};
int w4[24] = {1,4,1,4,2,1,3,5,6,2,3,7,3,0,9,5,0,4,8,8,0,1,6,8};
int w5[24] = {5,7,7,2,1,5,6,6,4,9,6,9,3,4,4,8,6,1,8,6,7,6,7,6};
int w6[24] = {6,9,3,1,4,7,1,8,0,5,5,9,9,4,9,5,3,4,9,2,1,9,6,4};
int w7[24] = {8,6,6,7,4,7,6,7,4,0,7,8,1,9,6,5,2,5,4,6,3,4,1,4};
int w8[24] = {9,2,2,3,1,2,0,0,5,6,4,2,5,8,9,8,3,2,1,3,8,9,1,3};

int r1;
int r2;
int r3;
int r4;
int r5;
int r6;
int r7;
int r8;
int ai_calls;

void accumulate_influence(int a, int b, int c, int d) {
    /* statistics counter, as in gnugo's influence module; it varies every
       call, which keeps the whole-function segment out of the reuse set —
       the eight branch segments below are the paper's candidates */
    ai_calls++;
    if (a + b >= 0) {
        int acc = 0;
        int k;
        for (k = 0; k < 24; k++)
            acc += w1[k] * (a + b) + ((c - d) >> (k & 3));
        r1 = acc;
    }
    if (c + d >= 0) {
        int acc = 0;
        int k;
        for (k = 0; k < 24; k++)
            acc += w2[k] * (c + d) - ((a * b) >> (k & 7));
        r2 = acc;
    }
    if (a + c >= 0) {
        int acc = 0;
        int k;
        for (k = 0; k < 24; k++)
            acc += w3[k] * (a * 2 + c) + (b ^ (d << (k & 1)));
        r3 = acc;
    }
    if (b + d >= 0) {
        int acc = 0;
        int k;
        for (k = 0; k < 24; k++)
            acc += w4[k] * (b * 2 + d) + (a & (c + k));
        r4 = acc;
    }
    if (a + d >= 0) {
        int acc = 0;
        int k;
        for (k = 0; k < 24; k++)
            acc += (w5[k] + a) * (d + 1) - (b | (c >> (k & 3)));
        r5 = acc;
    }
    if (b + c >= 0) {
        int acc = 0;
        int k;
        for (k = 0; k < 24; k++)
            acc += (w6[k] ^ b) * (c + 2) + a * k - d;
        r6 = acc;
    }
    if (a * b >= 0) {
        int acc = 0;
        int k;
        for (k = 0; k < 24; k++)
            acc += w7[k] * (a + b + c) - (d * (k & 5));
        r7 = acc;
    }
    if (c * d >= 0) {
        int acc = 0;
        int k;
        for (k = 0; k < 24; k++)
            acc += w8[k] * (c + d + 1) + ((a - b) * (k & 3));
        r8 = acc;
    }
}

/* ---- driver: a benchmark game ---- */
int grng;
int gchk;

int next_g(void) {
    grng = (grng * 1103515245 + 12345) & 1073741823;
    int r = (grng >> 10) & 65535;
    return r;
}

void play_move(void) {
    /* place a few stones: small local mutations of the position */
    int s;
    for (s = 0; s < 3; s++) {
        int pos = next_g() % 361;
        int color = (next_g() & 1) + 1;
        board[pos] = color;
    }
}

int patw[24] = {2,5,3,7,1,4,6,2,8,3,5,1,9,2,4,7,3,6,1,8,2,5,4,3};

/* eval_pos is the surrounding engine work reuse cannot touch: a pattern
   scan of the neighborhood (move generation, tactical reading in the real
   engine). The paper's whole-game speedup is 1.31 because
   accumulate_influence is only part of the engine. */
int eval_pos(int p) {
    int v = 0;
    int j;
    for (j = 0; j < 56; j++) {
        int q = (p + j * 7) % 361;
        int t = (p + j * 13) % 361;
        v += board[q] * patw[j % 24] + (board[t] << (j & 3)) - (v >> 5);
    }
    return v;
}

/* quantize the local neighborhood of point p into a [0,19] feature */
int feature(int p, int dir) {
    int q = p + dir;
    if (q < 0)
        q = q + 361;
    if (q >= 361)
        q = q - 361;
    int v = board[p] * 7 + board[q] * 3 + (p % 5);
    int f = v % 20;
    return f;
}

int main(int seed, int moves) {
    grng = seed;
    gchk = 0;
    int m;
    for (m = 0; m < moves; m++) {
        play_move();
        /* influence passes over the whole board per move */
        int pass;
        for (pass = 0; pass < 2; pass++) {
            int p;
            for (p = 0; p < 361; p++) {
                int a = feature(p, 1);
                int b = feature(p, 0 - 1);
                int c = feature(p, 19);
                int d = feature(p, 0 - 19);
                accumulate_influence(a, b, c, d);
                int ev = eval_pos(p);
                gchk = (gchk + ev + r1 + r2 * 2 + r3 * 3 + r4 * 5 + r5 * 7 + r6 * 11 + r7 * 13 + r8 * 17) & 16777215;
            }
        }
    }
    print_int(gchk);
    return gchk & 255;
}
`
