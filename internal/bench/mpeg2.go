package bench

// MPEG2: the paper reuses fdct in MPEG2_encode and Reference_IDCT in
// MPEG2_decode (Table 4). Both kernels here compute the real 2-D DCT /
// inverse DCT of an 8x8 block by the direct double sum over a cosine
// table, exactly the structure of mpeg2play's double-precision
// Reference_IDCT. The cosine table is filled once at start-up (so the code
// coverage analysis proves it invariant) using a Taylor-series cosine —
// MiniC has no math library, as the SA-1110 has no FPU.
//
// Input synthesis: MPEG2_decode sees quantized coefficient blocks, which
// real streams make highly repetitive (many all-zero and DC-only blocks
// after quantization) — the paper measured a 48.6% reuse rate;
// MPEG2_encode sees raw pixel blocks, which repeat rarely (9.8%).

const mpeg2Common = `
/* ---- math substrate: Taylor cosine with range reduction ---- */
float PI = 3.14159265358979;

float my_cos(float x) {
    while (x > PI)
        x = x - 2.0 * PI;
    while (x < 0.0 - PI)
        x = x + 2.0 * PI;
    float x2 = x * x;
    float r = 1.0;
    r = r - x2 / 2.0;
    float t = x2 * x2;
    r = r + t / 24.0;
    t = t * x2;
    r = r - t / 720.0;
    t = t * x2;
    r = r + t / 40320.0;
    t = t * x2;
    r = r - t / 3628800.0;
    t = t * x2;
    r = r + t / 479001600.0;
    return r;
}

/* ctab[u][x] = c(u) * cos((2x+1) u pi / 16) */
float ctab[8][8];

void init_ctab(void) {
    int u;
    int x;
    for (u = 0; u < 8; u++) {
        for (x = 0; x < 8; x++) {
            float cu;
            if (u == 0)
                cu = 0.3535533905932738;
            else
                cu = 0.5;
            float ang = (2.0 * (float)x + 1.0) * (float)u * PI / 16.0;
            ctab[u][x] = cu * my_cos(ang);
        }
    }
}

int blockin[8][8];
int blockout[8][8];
int rng2;
int chk2;

int next_rand(void) {
    rng2 = (rng2 * 1103515245 + 12345) & 1073741823;
    int r = (rng2 >> 8) & 65535;
    return r;
}

void consume_block(void) {
    int y;
    int x;
    for (y = 0; y < 8; y++)
        for (x = 0; x < 8; x++)
            chk2 = (chk2 + blockout[y][x] * (y * 8 + x + 1)) & 16777215;
}
`

// mpeg2IDCT is the decode kernel: the double-precision direct inverse DCT
// of mpeg2play's Reference_IDCT.
const mpeg2IDCT = `
void Reference_IDCT(void) {
    int y;
    int x;
    for (y = 0; y < 8; y++) {
        for (x = 0; x < 8; x++) {
            float sum = 0.0;
            int v;
            int u;
            for (v = 0; v < 8; v++)
                for (u = 0; u < 8; u++)
                    sum = sum + ctab[v][y] * ctab[u][x] * (float)blockin[v][u];
            int p = (int)(sum + 0.5);
            if (p > 255)
                p = 255;
            if (p < 0 - 255)
                p = 0 - 255;
            blockout[y][x] = p;
        }
    }
}
`

// mpeg2FDCT is the encode kernel: the forward transform by the same
// direct double sum.
const mpeg2FDCT = `
void fdct(void) {
    int v;
    int u;
    for (v = 0; v < 8; v++) {
        for (u = 0; u < 8; u++) {
            float sum = 0.0;
            int y;
            int x;
            for (y = 0; y < 8; y++)
                for (x = 0; x < 8; x++)
                    sum = sum + ctab[v][y] * ctab[u][x] * (float)blockin[y][x];
            int p = (int)(sum * 0.25 + 0.5);
            if (p > 2047)
                p = 2047;
            if (p < 0 - 2047)
                p = 0 - 2047;
            blockout[v][u] = p;
        }
    }
}
`

// mpeg2DecodeMain feeds quantized coefficient blocks: ~1/3 all-zero
// (skipped macroblocks), a share of DC-only blocks drawing from a small
// set of DC levels, and the rest sparse random blocks.
const mpeg2DecodeMain = `
void gen_coef_block(void) {
    int y;
    int x;
    for (y = 0; y < 8; y++)
        for (x = 0; x < 8; x++)
            blockin[y][x] = 0;
    int mode = next_rand() % 100;
    if (mode < 25) {
        /* all-zero block: nothing to do */
        ;
    } else if (mode < 45) {
        /* DC-only block with one of 8 common DC levels */
        int dc = ((next_rand() % 8) + 1) * 16;
        blockin[0][0] = dc;
    } else {
        /* sparse AC block: 5 random coefficients */
        int k;
        for (k = 0; k < 5; k++) {
            int pos = next_rand() % 64;
            int val = (next_rand() % 63) - 31;
            blockin[pos / 8][pos % 8] = val;
        }
    }
}

int main(int seed, int nblocks) {
    rng2 = seed;
    chk2 = 0;
    init_ctab();
    int b;
    for (b = 0; b < nblocks; b++) {
        gen_coef_block();
        Reference_IDCT();
        consume_block();
    }
    print_int(chk2);
    return chk2 & 255;
}
`

// mpeg2EncodeMain feeds raw pixel blocks: mostly distinct textured blocks
// with a small share of repeated flat blocks (black bars, uniform
// background), matching the paper's low 9.8% encode reuse rate.
const mpeg2EncodeMain = `
void gen_pixel_block(void) {
    int mode = next_rand() % 100;
    int y;
    int x;
    if (mode < 9) {
        /* flat block: one of 4 uniform backgrounds */
        int level = ((next_rand() % 4) + 1) * 32;
        for (y = 0; y < 8; y++)
            for (x = 0; x < 8; x++)
                blockin[y][x] = level;
    } else {
        /* textured block: gradient + noise, essentially unique */
        int base = next_rand() % 128;
        int gx = next_rand() % 9;
        int gy = next_rand() % 9;
        for (y = 0; y < 8; y++)
            for (x = 0; x < 8; x++)
                blockin[y][x] = (base + gx * x + gy * y + ((next_rand() >> 3) & 3)) & 255;
    }
}

int main(int seed, int nblocks) {
    rng2 = seed;
    chk2 = 0;
    init_ctab();
    int b;
    for (b = 0; b < nblocks; b++) {
        gen_pixel_block();
        fdct();
        consume_block();
    }
    print_int(chk2);
    return chk2 & 255;
}
`

var (
	mpeg2DecodeSrc = mpeg2Common + mpeg2IDCT + mpeg2DecodeMain
	mpeg2EncodeSrc = mpeg2Common + mpeg2FDCT + mpeg2EncodeMain
)
