package bench

import (
	"fmt"
	"io"
)

// The depmemo experiment contrasts flat-key admission with the
// dependence-key second chance (core.Options.DepKeys): every segment the
// O/C >= 1 pre-filter rejected that was forwarded to footprint profiling
// appears as one row with the flat overhead it was rejected with, the
// measured dependence overhead, the footprint reuse rate, and the
// formula-3 verdict under cost.Model.DepOverhead. The headline flip is
// GNU Go's eval_pos@func: its flat key is dominated by the 361-word
// board, but a body instance reads only ~1/3 of it, and the position
// repeats across the two influence passes of each move.

// DepMemoStats summarizes the second chance over the suite.
type DepMemoStats struct {
	// Candidates counts dep-profiled segments (pre-filter rejects that
	// passed the optimistic O_dep/C < 1 bar).
	Candidates int
	// Flipped counts candidates admitted under dep keys — segments the
	// flat pipeline had rejected outright.
	Flipped int
	// Profitable counts flipped segments whose final run showed a
	// positive footprint hit rate (the admission paid off in practice).
	Profitable int
}

// depMemoRows builds the per-segment contrast rows from the dep-key O0
// ledgers of every program in the suite.
func depMemoRows(r *Runner) ([][]string, DepMemoStats, error) {
	var rows [][]string
	var st DepMemoStats
	for _, p := range All() {
		flat, err := r.Report(p.Name, "O0")
		if err != nil {
			return nil, st, err
		}
		flatAccepted := map[string]bool{}
		for _, rec := range flat.Ledger {
			if rec.Accepted {
				flatAccepted[rec.Segment] = true
			}
		}
		dep, err := r.DepReport(p.Name, "O0")
		if err != nil {
			return nil, st, err
		}
		for _, rec := range dep.Ledger {
			dp := dep.DepProfiles[rec.Segment]
			if dp == nil {
				continue
			}
			st.Candidates++
			verdict := "rejected"
			hitCell := "-"
			if rec.Accepted && !flatAccepted[rec.Segment] {
				st.Flipped++
				verdict = "FLIPPED"
				hitCell = fmt.Sprintf("%.3f", rec.DepHitRate)
				if rec.DepHitRate > 0 {
					st.Profitable++
				}
			}
			rows = append(rows, []string{
				p.Name, rec.Segment,
				fmt.Sprintf("%.0f", rec.C),
				fmt.Sprintf("%d", dp.FullOverhead),
				fmt.Sprintf("%.0f", rec.O),
				fmt.Sprintf("%.4f", rec.ReuseRate),
				fmt.Sprintf("%.0f", rec.Gain),
				fmt.Sprintf("%d", rec.FullKeyWidth),
				fmt.Sprintf("%d", rec.DepKeyWidth),
				hitCell,
				verdict,
			})
		}
	}
	return rows, st, nil
}

// DepMemo renders the flat-key vs dependence-key admission contrast (the
// depmemo experiment).
func DepMemo(w io.Writer, r *Runner) error {
	fmt.Fprintln(w, "Extension. Dependence-key admission (flat key vs footprint trie, O0)")
	rows, st, err := depMemoRows(r)
	if err != nil {
		return err
	}
	textTable(w, []string{
		"Program", "Segment", "C", "O(flat)", "O(dep)", "R(dep)",
		"Gain", "Key(flat)", "Key(dep)", "HitRate", "Verdict",
	}, rows)
	fmt.Fprintf(w, "(%d pre-filter rejects dep-profiled; %d admitted under dep keys, %d profitable)\n",
		st.Candidates, st.Flipped, st.Profitable)
	fmt.Fprintln(w, "(O(dep) prices one trie level per location the body actually read;")
	fmt.Fprintln(w, " O(flat) is the Jenkins pass over the declared key the pre-filter charged)")
	return nil
}

func init() {
	extraExperiments = append(extraExperiments,
		Experiment{"depmemo", "Dependence-key admission (flat vs footprint trie)", DepMemo},
	)
}
