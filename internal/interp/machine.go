package interp

import (
	"strings"

	"compreuse/internal/cost"
	"compreuse/internal/depmemo"
	"compreuse/internal/minic"
	"compreuse/internal/reusetab"
)

// OpCounts tallies executed operations by class, feeding the energy model.
type OpCounts struct {
	IntOps   int64
	MulOps   int64
	DivOps   int64
	FloatOps int64
	MemOps   int64
	Branches int64
	Calls    int64
	HashOps  int64 // hashing-overhead cycles converted to op count equivalents
}

// SegRunStats accumulates per-ReuseRegion dynamic statistics (keyed by the
// region's AST node id).
type SegRunStats struct {
	// Instances is the number of times the region was entered.
	Instances int64
	// BodyCycles is the total cycles spent executing the region body
	// (misses only in ModeReuse; every instance in ModeProfile). Dividing
	// by body executions yields the measured granularity C.
	BodyCycles int64
	// BodyRuns is the number of body executions.
	BodyRuns int64
	// OverheadCycles is the total hashing overhead charged.
	OverheadCycles int64
	// Hits is the number of table hits.
	Hits int64
}

// MeasuredC returns the measured per-instance granularity in cycles.
func (s *SegRunStats) MeasuredC() float64 {
	if s.BodyRuns == 0 {
		return 0
	}
	return float64(s.BodyCycles) / float64(s.BodyRuns)
}

// Options configures a VM run.
type Options struct {
	// Model is the cycle cost model; defaults to cost.O0().
	Model *cost.Model
	// Tables maps ReuseRegion.TableID to its table. Regions referencing a
	// missing table fault at first use.
	Tables map[int]*reusetab.Table
	// DepTables maps dependence-tracked regions (ReuseRegion.Dep) to
	// their footprint tries; the ID space is shared with Tables, so dep
	// regions must use table IDs no flat-key region uses.
	DepTables map[int]*depmemo.Table
	// MaxSteps bounds executed statements (0 = 4e9).
	MaxSteps int64
	// CollectFreq enables per-node execution-frequency profiling.
	CollectFreq bool
	// MaxDepth bounds the call stack (0 = 10000).
	MaxDepth int
	// Args are the integer arguments passed to main (if it takes any).
	Args []int64
}

// Result is the outcome of a VM run.
type Result struct {
	// Ret is main's return value.
	Ret int64
	// Cycles is the total modeled cycle count.
	Cycles int64
	// Output is everything printed by the program.
	Output string
	// Ops are the executed operation counts by class.
	Ops OpCounts
	// Freq maps node id to execution count when Options.CollectFreq is set.
	Freq []int64
	// Segs holds per-ReuseRegion stats keyed by region node id.
	Segs map[int]*SegRunStats
	// Tables echoes the tables used by the run.
	Tables map[int]*reusetab.Table
	// DepTables echoes the footprint tries used by the run.
	DepTables map[int]*depmemo.Table
}

// Seconds returns the modeled wall-clock time of the run.
func (r *Result) Seconds() float64 { return cost.Seconds(r.Cycles) }

// Machine executes one program. A Machine is single-use: create, Run, read
// results.
type Machine struct {
	prog    *minic.Program
	m       *cost.Model
	globals *Seg
	out     strings.Builder
	cycles  int64
	ops     OpCounts
	steps   int64
	maxStep int64
	depth   int
	maxDep  int
	tables  map[int]*reusetab.Table
	depTabs map[int]*depmemo.Table
	segs    map[int]*SegRunStats
	freq    []int64
	retVal  Value
	// depWatch heads the chain of active dep-region watchers (nil when
	// no dependence-tracked body is executing — the common case, paid
	// as one nil check per load/store).
	depWatch *depWatcher
	depFree  []*depWatcher
	// overheadMemo caches the hashing overhead per (table, seg).
	overheadMemo map[[2]int]int64
}

// New creates a machine for prog (which must be Checked).
func New(prog *minic.Program, opts Options) *Machine {
	m := opts.Model
	if m == nil {
		m = cost.O0()
	}
	maxSteps := opts.MaxSteps
	if maxSteps == 0 {
		maxSteps = 4e9
	}
	maxDep := opts.MaxDepth
	if maxDep == 0 {
		maxDep = 10000
	}
	mc := &Machine{
		prog:         prog,
		m:            m,
		globals:      &Seg{data: make([]Value, prog.GlobalWords), name: "globals"},
		maxStep:      maxSteps,
		maxDep:       maxDep,
		tables:       opts.Tables,
		depTabs:      opts.DepTables,
		segs:         map[int]*SegRunStats{},
		overheadMemo: map[[2]int]int64{},
	}
	if opts.CollectFreq {
		mc.freq = make([]int64, prog.NumNodes)
	}
	return mc
}

// Run executes the program from main and returns the result. Runtime
// faults are returned as *RuntimeError.
func Run(prog *minic.Program, opts Options) (res *Result, err error) {
	mc := New(prog, opts)
	defer func() {
		if r := recover(); r != nil {
			if re, ok := r.(*RuntimeError); ok {
				err = re
				return
			}
			panic(r)
		}
	}()
	mc.initGlobals()
	mainFn := prog.Func("main")
	if mainFn == nil {
		return nil, rtErr(minic.Pos{}, "program has no main function")
	}
	args := make([]Value, len(opts.Args))
	for i, a := range opts.Args {
		args[i] = IntVal(a)
	}
	if len(args) != len(mainFn.Params) {
		return nil, rtErr(mainFn.Pos(), "main takes %d arguments, got %d", len(mainFn.Params), len(args))
	}
	ret := mc.call(mainFn, args, mainFn.Pos())
	return &Result{
		Ret:       ret.I,
		Cycles:    mc.cycles,
		Output:    mc.out.String(),
		Ops:       mc.ops,
		Freq:      mc.freq,
		Segs:      mc.segs,
		Tables:    mc.tables,
		DepTables: mc.depTabs,
	}, nil
}

// initGlobals zero-fills global storage and evaluates initializers in
// declaration order (later globals may read earlier ones).
func (mc *Machine) initGlobals() {
	fr := &Seg{data: nil, name: "init"}
	for _, g := range mc.prog.Globals {
		base := g.Sym.Slot
		if g.Init != nil {
			v := mc.evalExpr(g.Init, fr)
			mc.globals.data[base] = convert(v, g.Type)
		}
		if g.InitList != nil {
			at := g.Type.(*minic.Array)
			et := scalarElem(at)
			for i, e := range g.InitList {
				v := mc.evalExpr(e, fr)
				mc.globals.data[base+i] = convert(v, et)
			}
			// Remaining cells stay zero, with the element's kind.
			zero := convert(IntVal(0), et)
			for i := len(g.InitList); i < at.Words(); i++ {
				mc.globals.data[base+i] = zero
			}
		}
	}
}

// scalarElem returns the ultimate scalar element type of a (possibly
// nested) array type.
func scalarElem(t minic.Type) minic.Type {
	for {
		at, ok := t.(*minic.Array)
		if !ok {
			return t
		}
		t = at.Elem
	}
}

func (mc *Machine) charge(c int64) { mc.cycles += c }
func (mc *Machine) chargeInt()     { mc.cycles += mc.m.IntALU; mc.ops.IntOps++ }
func (mc *Machine) chargeMul()     { mc.cycles += mc.m.IntMul; mc.ops.MulOps++ }
func (mc *Machine) chargeDiv()     { mc.cycles += mc.m.IntDiv; mc.ops.DivOps++ }
func (mc *Machine) chargeLoad()    { mc.cycles += mc.m.Load; mc.ops.MemOps++ }
func (mc *Machine) chargeStore()   { mc.cycles += mc.m.Store; mc.ops.MemOps++ }
func (mc *Machine) chargeLocal() {
	if mc.m.LocalAccess != 0 {
		mc.cycles += mc.m.LocalAccess
		mc.ops.MemOps++
	}
}
func (mc *Machine) chargeBranch() { mc.cycles += mc.m.Branch; mc.ops.Branches++ }
func (mc *Machine) chargeFloat(c int64) {
	mc.cycles += c
	mc.ops.FloatOps++
}

// step counts one executed statement against the step limit.
func (mc *Machine) step(pos minic.Pos) {
	mc.steps++
	if mc.steps > mc.maxStep {
		panic(rtErr(pos, "step limit exceeded (%d statements)", mc.maxStep))
	}
}

func (mc *Machine) countNode(id int) {
	if mc.freq != nil && id < len(mc.freq) {
		mc.freq[id]++
	}
}
