package interp

import (
	"strings"
	"testing"

	"compreuse/internal/cost"
	"compreuse/internal/minic"
	"compreuse/internal/reusetab"
)

func compile(t *testing.T, src string) *minic.Program {
	t.Helper()
	prog, err := minic.Parse("test.c", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := minic.Check(prog); err != nil {
		t.Fatal(err)
	}
	return prog
}

func run(t *testing.T, src string) *Result {
	t.Helper()
	res, err := Run(compile(t, src), Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestReturnValue(t *testing.T) {
	res := run(t, `int main(void) { return 6 * 7; }`)
	if res.Ret != 42 {
		t.Fatalf("ret = %d", res.Ret)
	}
	if res.Cycles <= 0 {
		t.Fatal("no cycles charged")
	}
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		expr string
		want int64
	}{
		{"1 + 2 * 3", 7},
		{"(1 + 2) * 3", 9},
		{"17 / 5", 3},
		{"17 % 5", 2},
		{"-17 / 5", -3}, // C truncates toward zero
		{"1 << 10", 1024},
		{"1024 >> 3", 128},
		{"0xF0 & 0x1F", 0x10},
		{"0xF0 | 0x0F", 0xFF},
		{"0xFF ^ 0x0F", 0xF0},
		{"~0", -1},
		{"!5", 0},
		{"!0", 1},
		{"3 < 5", 1},
		{"5 <= 5", 1},
		{"3 > 5", 0},
		{"5 >= 6", 0},
		{"4 == 4", 1},
		{"4 != 4", 0},
		{"1 && 0", 0},
		{"1 && 2", 1},
		{"0 || 0", 0},
		{"0 || 7", 1},
		{"1 ? 10 : 20", 10},
		{"0 ? 10 : 20", 20},
		{"-(3 - 8)", 5},
	}
	for _, c := range cases {
		res := run(t, "int main(void) { return "+c.expr+"; }")
		if res.Ret != c.want {
			t.Errorf("%s = %d, want %d", c.expr, res.Ret, c.want)
		}
	}
}

func TestFloatArithmetic(t *testing.T) {
	res := run(t, `
int main(void) {
    float a = 1.5;
    float b = 2.0;
    float c = a * b + a / b - 0.25;
    print_float(c);
    return (int)(c * 100.0);
}`)
	if res.Ret != 350 {
		t.Fatalf("ret = %d, want 350", res.Ret)
	}
	if !strings.Contains(res.Output, "3.5") {
		t.Fatalf("output: %q", res.Output)
	}
}

func TestIntFloatConversions(t *testing.T) {
	res := run(t, `
int main(void) {
    float f = 7;        // int -> float on assignment
    int i = 2.9;        // float -> int truncates
    int j = (int)(f / 2.0);  // 3.5 -> 3
    return i * 10 + j;
}`)
	if res.Ret != 23 {
		t.Fatalf("ret = %d, want 23", res.Ret)
	}
}

func TestQuanExecution(t *testing.T) {
	res := run(t, `
int power2[15] = {1,2,4,8,16,32,64,128,256,512,1024,2048,4096,8192,16384};
int quan(int val) {
    int i;
    for (i = 0; i < 15; i++)
        if (val < power2[i])
            break;
    return (i);
}
int main(void) {
    __assert(quan(0) == 0);
    __assert(quan(1) == 1);
    __assert(quan(2) == 2);
    __assert(quan(3) == 2);
    __assert(quan(4) == 3);
    __assert(quan(100) == 7);
    __assert(quan(16383) == 14);
    __assert(quan(16384) == 15);
    __assert(quan(99999) == 15);
    return quan(1000);
}`)
	if res.Ret != 10 {
		t.Fatalf("quan(1000) = %d, want 10", res.Ret)
	}
}

func TestLoops(t *testing.T) {
	res := run(t, `
int main(void) {
    int s = 0;
    int i;
    for (i = 1; i <= 10; i++) s += i;      // 55
    int j = 0;
    while (j < 5) { s += 2; j++; }          // +10
    int k = 0;
    do { s++; k++; } while (k < 3);         // +3
    for (i = 0; i < 10; i++) {
        if (i == 2) continue;
        if (i == 5) break;
        s += 100;                            // i = 0,1,3,4 -> +400
    }
    return s;
}`)
	if res.Ret != 468 {
		t.Fatalf("ret = %d, want 468", res.Ret)
	}
}

func TestPointers(t *testing.T) {
	res := run(t, `
int swap(int *a, int *b) {
    int t = *a;
    *a = *b;
    *b = t;
    return 0;
}
int main(void) {
    int x = 3;
    int y = 9;
    swap(&x, &y);
    int *p = &x;
    *p += 1;
    int **pp = &p;
    **pp *= 2;
    return x * 100 + y;  // x = (9+1)*2 = 20, y = 3
}`)
	if res.Ret != 2003 {
		t.Fatalf("ret = %d, want 2003", res.Ret)
	}
}

func TestPointerArithmeticAndArrays(t *testing.T) {
	res := run(t, `
int a[8] = {1, 2, 3, 4, 5, 6, 7, 8};
int sum(int *p, int n) {
    int s = 0;
    while (n > 0) { s += *p++; n--; }
    return s;
}
int main(void) {
    int *p = a + 2;
    int d = p - a;              // 2
    __assert(*(a + 7) == 8);
    __assert(p[1] == 4);
    __assert(a < p);
    __assert(sum(a, 8) == 36);
    __assert(sum(a + 4, 2) == 11);
    return d;
}`)
	if res.Ret != 2 {
		t.Fatalf("ret = %d", res.Ret)
	}
}

func TestMultiDimArray(t *testing.T) {
	res := run(t, `
int m[3][4];
int main(void) {
    int i;
    int j;
    for (i = 0; i < 3; i++)
        for (j = 0; j < 4; j++)
            m[i][j] = i * 10 + j;
    return m[2][3] + m[0][1] * 100;
}`)
	if res.Ret != 123 {
		t.Fatalf("ret = %d, want 123", res.Ret)
	}
}

func TestStructs(t *testing.T) {
	res := run(t, `
struct point { int x; int y; };
struct rect { struct point lo; struct point hi; };
struct rect r;
int area(struct rect *p) {
    return (p->hi.x - p->lo.x) * (p->hi.y - p->lo.y);
}
int main(void) {
    r.lo.x = 1; r.lo.y = 2;
    r.hi.x = 5; r.hi.y = 6;
    struct point q;
    q = r.hi;            // struct copy
    __assert(q.x == 5);
    q.x = 100;
    __assert(r.hi.x == 5);  // copy, not alias
    return area(&r);
}`)
	if res.Ret != 16 {
		t.Fatalf("ret = %d, want 16", res.Ret)
	}
}

func TestFunctionPointers(t *testing.T) {
	res := run(t, `
int inc(int x) { return x + 1; }
int twice(int x) { return x * 2; }
int apply(int (*f)(int), int v) { return f(v); }
int main(void) {
    int (*op)(int);
    op = inc;
    int a = apply(op, 10);  // 11
    op = twice;
    return a + op(a);       // 11 + 22
}`)
	if res.Ret != 33 {
		t.Fatalf("ret = %d, want 33", res.Ret)
	}
}

func TestRecursion(t *testing.T) {
	res := run(t, `
int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}
int main(void) { return fib(15); }`)
	if res.Ret != 610 {
		t.Fatalf("fib(15) = %d", res.Ret)
	}
}

func TestGlobalInitOrder(t *testing.T) {
	res := run(t, `
int a = 5;
int b = 37;
int main(void) { return a + b; }`)
	if res.Ret != 42 {
		t.Fatalf("ret = %d", res.Ret)
	}
}

func TestOutput(t *testing.T) {
	res := run(t, `
int main(void) {
    print_str("hello");
    print_int(42);
    print_float(2.5);
    return 0;
}`)
	want := "hello\n42\n2.5\n"
	if res.Output != want {
		t.Fatalf("output = %q, want %q", res.Output, want)
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"div by zero", "int main(void) { int z = 0; return 1 / z; }", "division by zero"},
		{"mod by zero", "int main(void) { int z = 0; return 1 % z; }", "modulo by zero"},
		{"null deref", "int main(void) { int *p = 0; return *p; }", "null pointer"},
		{"oob", "int a[3]; int main(void) { int i = 5; int g[1]; return a[i+100000]; }", "out-of-bounds"},
		{"assert", "int main(void) { __assert(0); return 0; }", "assertion failed"},
		{"stack overflow", "int f(int x) { return f(x + 1); } int main(void) { return f(0); }", "stack overflow"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Run(compile(t, c.src), Options{})
			if err == nil {
				t.Fatal("expected runtime error")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestStepLimit(t *testing.T) {
	_, err := Run(compile(t, `int main(void) { while (1) {} return 0; }`), Options{MaxSteps: 1000})
	if err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Fatalf("err = %v", err)
	}
}

func TestO3CheaperThanO0(t *testing.T) {
	src := `
int main(void) {
    int s = 0;
    int i;
    for (i = 0; i < 1000; i++) s += i * 3;
    return s & 0xFF;
}`
	prog := compile(t, src)
	r0, err := Run(prog, Options{Model: cost.O0()})
	if err != nil {
		t.Fatal(err)
	}
	r3, err := Run(prog, Options{Model: cost.O3()})
	if err != nil {
		t.Fatal(err)
	}
	if r0.Ret != r3.Ret {
		t.Fatalf("results differ: %d vs %d", r0.Ret, r3.Ret)
	}
	if r3.Cycles >= r0.Cycles {
		t.Fatalf("O3 (%d) not cheaper than O0 (%d)", r3.Cycles, r0.Cycles)
	}
}

func TestFloatDominatesCycleCost(t *testing.T) {
	intProg := compile(t, `int main(void) { int s = 0; int i; for (i=0;i<100;i++) s += i*i; return 0; }`)
	fltProg := compile(t, `int main(void) { float s = 0.0; float x = 1.5; int i; for (i=0;i<100;i++) s += x*x; return 0; }`)
	ri, err := Run(intProg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rf, err := Run(fltProg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rf.Cycles < ri.Cycles*3 {
		t.Fatalf("soft-float not dominant: int=%d float=%d", ri.Cycles, rf.Cycles)
	}
	if rf.Ops.FloatOps == 0 || ri.Ops.FloatOps != 0 {
		t.Fatalf("float op counts wrong: %+v vs %+v", rf.Ops, ri.Ops)
	}
}

func TestFreqProfiling(t *testing.T) {
	prog := compile(t, `
int leaf(int x) { return x + 1; }
int main(void) {
    int s = 0;
    int i;
    for (i = 0; i < 10; i++)
        s += leaf(i);
    return s;
}`)
	res, err := Run(prog, Options{CollectFreq: true})
	if err != nil {
		t.Fatal(err)
	}
	leaf := prog.Func("leaf")
	if res.Freq[leaf.ID()] != 10 {
		t.Fatalf("leaf count = %d, want 10", res.Freq[leaf.ID()])
	}
	var forID int
	minic.InspectStmts(prog.Func("main").Body, func(s minic.Stmt) bool {
		if f, ok := s.(*minic.ForStmt); ok {
			forID = f.ID()
		}
		return true
	})
	if res.Freq[forID] != 10 {
		t.Fatalf("loop iterations = %d, want 10", res.Freq[forID])
	}
}

func TestMainWithArgs(t *testing.T) {
	prog := compile(t, `int main(int a, int b) { return a * b; }`)
	res, err := Run(prog, Options{Args: []int64{6, 7}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 42 {
		t.Fatalf("ret = %d", res.Ret)
	}
}

// ---------------------------------------------------------------------------
// ReuseRegion semantics

// wrapQuan builds the quan program with its function body wrapped in a
// ReuseRegion on table 0, keyed by val, producing i.
func wrapQuan(t *testing.T, mode reusetab.Mode) (*minic.Program, map[int]*reusetab.Table, *minic.ReuseRegion) {
	t.Helper()
	prog := compile(t, `
int power2[15] = {1,2,4,8,16,32,64,128,256,512,1024,2048,4096,8192,16384};
int quan(int val) {
    int i;
    for (i = 0; i < 15; i++)
        if (val < power2[i])
            break;
    return (i);
}
int main(void) {
    int s = 0;
    int v;
    for (v = 0; v < 300; v++)
        s += quan(v % 30);
    return s;
}`)
	fn := prog.Func("quan")
	valSym := fn.Params[0].Sym
	var iSym *minic.Symbol
	for _, id := range minic.Idents(fn.Body) {
		if id.Name == "i" {
			iSym = id.Sym
			break
		}
	}
	// Wrap the for loop (stmt 1) in a reuse region.
	rr := &minic.ReuseRegion{
		TableID: 0, SegBit: 0, SegName: "quan@body",
		Inputs:  []minic.Expr{prog.NewIdent(valSym)},
		Outputs: []minic.Expr{prog.NewIdent(iSym)},
		Body:    fn.Body.Stmts[1],
	}
	fn.Body.Stmts[1] = rr
	tab := reusetab.New(reusetab.Config{
		Name: "quan", Segs: 1, KeyBytes: 4,
		OutWords: []int{1}, OutBytes: []int{4},
		Mode: mode,
	})
	return prog, map[int]*reusetab.Table{0: tab}, rr
}

func TestReuseRegionCorrectness(t *testing.T) {
	// The transformed program must compute the same result as the original.
	orig := run(t, `
int power2[15] = {1,2,4,8,16,32,64,128,256,512,1024,2048,4096,8192,16384};
int quan(int val) {
    int i;
    for (i = 0; i < 15; i++)
        if (val < power2[i])
            break;
    return (i);
}
int main(void) {
    int s = 0;
    int v;
    for (v = 0; v < 300; v++)
        s += quan(v % 30);
    return s;
}`)
	prog, tabs, rr := wrapQuan(t, reusetab.ModeReuse)
	res, err := Run(prog, Options{Tables: tabs})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != orig.Ret {
		t.Fatalf("transformed result %d != original %d", res.Ret, orig.Ret)
	}
	st := res.Segs[rr.ID()]
	if st == nil {
		t.Fatal("no segment stats")
	}
	// 300 calls, 30 distinct inputs: 270 hits, 30 body runs.
	if st.Instances != 300 || st.Hits != 270 || st.BodyRuns != 30 {
		t.Fatalf("stats: %+v", st)
	}
	ts := tabs[0].Stats(0)
	if ts.Hits != 270 || ts.Misses != 30 {
		t.Fatalf("table stats: %+v", ts)
	}
}

func TestReuseRegionSavesCycles(t *testing.T) {
	progPlain, tabsOff, _ := wrapQuan(t, reusetab.ModeProfile)
	rPlain, err := Run(progPlain, Options{Tables: tabsOff})
	if err != nil {
		t.Fatal(err)
	}
	progReuse, tabs, _ := wrapQuan(t, reusetab.ModeReuse)
	rReuse, err := Run(progReuse, Options{Tables: tabs})
	if err != nil {
		t.Fatal(err)
	}
	// R = 1 - 30/300 = 0.9; C ~ hundreds of cycles, O ~ tens: must win.
	if rReuse.Cycles >= rPlain.Cycles {
		t.Fatalf("reuse (%d cycles) did not beat original (%d cycles)", rReuse.Cycles, rPlain.Cycles)
	}
}

func TestProfileModeMeasures(t *testing.T) {
	prog, tabs, rr := wrapQuan(t, reusetab.ModeProfile)
	res, err := Run(prog, Options{Tables: tabs})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Segs[rr.ID()]
	if st.Instances != 300 || st.BodyRuns != 300 || st.Hits != 0 {
		t.Fatalf("profile stats: %+v", st)
	}
	if st.OverheadCycles != 0 {
		t.Fatal("profile mode must not charge hashing overhead")
	}
	if tabs[0].Distinct() != 30 {
		t.Fatalf("distinct inputs = %d, want 30", tabs[0].Distinct())
	}
	if st.MeasuredC() <= 0 {
		t.Fatal("measured granularity must be positive")
	}
	// Census counts: every key seen 10 times.
	for _, kc := range tabs[0].SortedCensus() {
		if kc.Count != 10 {
			t.Fatalf("census count = %d, want 10", kc.Count)
		}
	}
}

func TestReuseRegionFloatAndArrayOutputs(t *testing.T) {
	prog := compile(t, `
float fsrc[4];
float fdst[4];
float extra;
int compute(int k) {
    int i;
    for (i = 0; i < 4; i++)
        fdst[i] = fsrc[i] * 2.0 + (float)k;
    extra = fdst[0] + fdst[3];
    return 0;
}
int main(void) {
    int i;
    for (i = 0; i < 4; i++) fsrc[i] = (float)i * 0.5;
    int r;
    for (r = 0; r < 6; r++)
        compute(r % 2);
    float want0 = 0.0 * 2.0 + 1.0;
    __assert(fdst[0] == want0);
    return (int)(extra * 10.0);
}`)
	fn := prog.Func("compute")
	fsrc := prog.Global("fsrc").Sym
	fdst := prog.Global("fdst").Sym
	extra := prog.Global("extra").Sym
	k := fn.Params[0].Sym
	ret := fn.Body.Stmts[len(fn.Body.Stmts)-1]
	rr := &minic.ReuseRegion{
		TableID: 0, SegBit: 0, SegName: "compute@body",
		Inputs:  []minic.Expr{prog.NewIdent(k), prog.NewIdent(fsrc)},
		Outputs: []minic.Expr{prog.NewIdent(fdst), prog.NewIdent(extra)},
		// The region body excludes the trailing return: regions wrap
		// single-entry single-exit code.
		Body: prog.NewBlock(fn.Body.Stmts[:len(fn.Body.Stmts)-1]...),
	}
	fn.Body.Stmts = []minic.Stmt{rr, ret}
	tab := reusetab.New(reusetab.Config{
		Name: "compute", Segs: 1,
		KeyBytes: 4 + 4*8,
		OutWords: []int{5}, OutBytes: []int{4*8 + 8},
	})
	res, err := Run(prog, Options{Tables: map[int]*reusetab.Table{0: tab}})
	if err != nil {
		t.Fatal(err)
	}
	// extra = fdst[0] + fdst[3] with k=1 on the last call:
	// fdst = {1, 2, 3, 4} (i*0.5*2 + 1) -> extra = 5 -> ret 50
	if res.Ret != 50 {
		t.Fatalf("ret = %d, want 50", res.Ret)
	}
	st := tab.Stats(0)
	if st.Hits != 4 || st.Misses != 2 {
		t.Fatalf("table stats: %+v (want 2 distinct keys, 4 hits)", st)
	}
}

func TestReuseRegionReturnBodyNotRecorded(t *testing.T) {
	// A body that returns out of the region must not record (defensive).
	prog := compile(t, `
int f(int x) {
    int out = 0;
    if (x > 0) return 99;
    out = x * 2;
    return out;
}
int main(void) { return f(1) + f(1); }`)
	fn := prog.Func("f")
	x := fn.Params[0].Sym
	var outSym *minic.Symbol
	for _, id := range minic.Idents(fn.Body) {
		if id.Name == "out" {
			outSym = id.Sym
			break
		}
	}
	rr := &minic.ReuseRegion{
		TableID: 0, SegBit: 0, SegName: "f@body",
		Inputs:  []minic.Expr{prog.NewIdent(x)},
		Outputs: []minic.Expr{prog.NewIdent(outSym)},
		Body:    prog.NewBlock(fn.Body.Stmts...),
	}
	fn.Body.Stmts = []minic.Stmt{rr}
	tab := reusetab.New(reusetab.Config{
		Name: "f", Segs: 1, KeyBytes: 4, OutWords: []int{1}, OutBytes: []int{4},
	})
	res, err := Run(prog, Options{Tables: map[int]*reusetab.Table{0: tab}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 198 {
		t.Fatalf("ret = %d, want 198", res.Ret)
	}
	if tab.Stats(0).Records != 0 {
		t.Fatal("escaping body must not record")
	}
}

func TestSwitchSemantics(t *testing.T) {
	res := run(t, `
int classify(int x) {
    int r;
    switch (x) {
    case 0:
        r = 100;
        break;
    case 1:
    case 2:
        r = 200;
        break;
    case -3:
        r = 300;
        break;
    case 7:
        return 777;
    default:
        r = 999;
    }
    return r;
}
int main(void) {
    __assert(classify(0) == 100);
    __assert(classify(1) == 200);
    __assert(classify(2) == 200);
    __assert(classify(0 - 3) == 300);
    __assert(classify(7) == 777);
    __assert(classify(42) == 999);
    return 0;
}`)
	if res.Ret != 0 {
		t.Fatalf("ret = %d", res.Ret)
	}
}

func TestSwitchScrutineeEvaluatedOnce(t *testing.T) {
	run(t, `
int calls;
int next(void) { calls++; return 2; }
int main(void) {
    int r;
    switch (next()) {
    case 1:
        r = 10;
        break;
    case 2:
        r = 20;
        break;
    default:
        r = 30;
    }
    __assert(calls == 1);
    __assert(r == 20);
    return 0;
}`)
}

func TestSwitchInsideLoopBreak(t *testing.T) {
	// A switch's own break terminates the case, not the loop.
	res := run(t, `
int main(void) {
    int s = 0;
    int i;
    for (i = 0; i < 6; i++) {
        switch (i & 1) {
        case 0:
            s += 10;
            break;
        default:
            s += 1;
        }
    }
    return s;
}`)
	if res.Ret != 33 {
		t.Fatalf("ret = %d, want 33", res.Ret)
	}
}

func TestSwitchEmptyClosedCase(t *testing.T) {
	// "case 1: break;" is a standalone no-op arm, not shared labels.
	res := run(t, `
int main(void) {
    int r = 0;
    switch (1) {
    case 1:
        break;
    case 2:
        r = 5;
        break;
    }
    return r;
}`)
	if res.Ret != 0 {
		t.Fatalf("ret = %d, want 0 (case 1 is a no-op)", res.Ret)
	}
}

func TestNegativeDivisionAndModulo(t *testing.T) {
	// C semantics: truncation toward zero; (a/b)*b + a%b == a.
	res := run(t, `
int main(void) {
    __assert(-7 / 2 == -3);
    __assert(-7 % 2 == -1);
    __assert(7 / -2 == -3);
    __assert(7 % -2 == 1);
    __assert((-9 / 4) * 4 + (-9 % 4) == -9);
    return 0;
}`)
	if res.Ret != 0 {
		t.Fatal("bad ret")
	}
}

func TestShiftMasking(t *testing.T) {
	// Shift counts are masked to 6 bits (defined behavior in MiniC, where
	// C leaves it undefined).
	run(t, `
int main(void) {
    __assert((1 << 64) == 1);
    __assert((1 << 65) == 2);
    __assert((256 >> 64) == 256);
    return 0;
}`)
}

func TestArrayOfStructs(t *testing.T) {
	res := run(t, `
struct cell { int v; float w; };
struct cell grid[6];
int main(void) {
    int i;
    for (i = 0; i < 6; i++) {
        grid[i].v = i * i;
        grid[i].w = (float)i * 0.5;
    }
    struct cell *p = &grid[3];
    __assert(p->v == 9);
    __assert(grid[5].v == 25);
    float sum = 0.0;
    for (i = 0; i < 6; i++)
        sum = sum + grid[i].w;
    return (int)(sum * 2.0);   // 2*(0+0.5+1+1.5+2+2.5) = 15
}`)
	if res.Ret != 15 {
		t.Fatalf("ret = %d, want 15", res.Ret)
	}
}

func TestPointerIntoStructField(t *testing.T) {
	res := run(t, `
struct pair { int a; int b; };
struct pair p;
int main(void) {
    p.a = 1;
    p.b = 2;
    int *q = &p.b;
    *q = 42;
    return p.b;
}`)
	if res.Ret != 42 {
		t.Fatalf("ret = %d", res.Ret)
	}
}

func TestShadowingInLoops(t *testing.T) {
	res := run(t, `
int main(void) {
    int x = 1;
    int s = 0;
    int i;
    for (i = 0; i < 3; i++) {
        int x = 10;   // shadows; fresh per iteration
        x += i;
        s += x;
    }
    return s * 100 + x;   // (10+11+12)*100 + 1
}`)
	if res.Ret != 3301 {
		t.Fatalf("ret = %d, want 3301", res.Ret)
	}
}

func TestUninitializedLocalsAreZero(t *testing.T) {
	// MiniC defines uninitialized locals as zero (stricter than C), and
	// re-zeroes them each time the declaration executes.
	res := run(t, `
int main(void) {
    int s = 0;
    int i;
    for (i = 0; i < 3; i++) {
        int fresh;
        fresh = fresh + 5;   // always 0 + 5
        s += fresh;
    }
    return s;
}`)
	if res.Ret != 15 {
		t.Fatalf("ret = %d, want 15", res.Ret)
	}
}

func TestCompoundAssignOnArrayElem(t *testing.T) {
	res := run(t, `
int a[4] = {1, 2, 3, 4};
int main(void) {
    a[1] += 10;
    a[2] <<= 2;
    a[3] %= 3;
    return a[1] * 100 + a[2] * 10 + a[3];
}`)
	if res.Ret != 1321 {
		t.Fatalf("ret = %d, want 1321 (12,12,1)", res.Ret)
	}
}

func TestPrePostIncrementSemantics(t *testing.T) {
	res := run(t, `
int main(void) {
    int x = 5;
    int a = x++;   // a=5 x=6
    int b = ++x;   // b=7 x=7
    int c = x--;   // c=7 x=6
    int d = --x;   // d=5 x=5
    return a * 1000 + b * 100 + c * 10 + d;
}`)
	if res.Ret != 5775 {
		t.Fatalf("ret = %d, want 5775", res.Ret)
	}
}

func TestFloatPrecisionAcrossCalls(t *testing.T) {
	res := run(t, `
float half(float x) { return x / 2.0; }
int main(void) {
    float v = 1.0;
    int i;
    for (i = 0; i < 10; i++)
        v = half(v);
    /* v = 2^-10 */
    return (int)(v * 1048576.0);   // 1024
}`)
	if res.Ret != 1024 {
		t.Fatalf("ret = %d, want 1024", res.Ret)
	}
}

func TestSizeofValues(t *testing.T) {
	run(t, `
struct s { int a; float b; int c[3]; };
int main(void) {
    __assert(sizeof(int) == 4);
    __assert(sizeof(float) == 8);
    __assert(sizeof(int*) == 4);
    __assert(sizeof(struct s) == 4 + 8 + 12);
    return 0;
}`)
}

func TestCyclesMonotoneInWork(t *testing.T) {
	small := run(t, `int main(void) { int s = 0; int i; for (i = 0; i < 10; i++) s += i; return s & 7; }`)
	large := run(t, `int main(void) { int s = 0; int i; for (i = 0; i < 1000; i++) s += i; return s & 7; }`)
	if large.Cycles <= small.Cycles {
		t.Fatal("cycles must grow with work")
	}
	ratio := float64(large.Cycles) / float64(small.Cycles)
	if ratio < 50 || ratio > 130 {
		t.Fatalf("100x loop scaled cycles by %.1fx", ratio)
	}
}
