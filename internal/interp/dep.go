package interp

import (
	"math"

	"compreuse/internal/depmemo"
	"compreuse/internal/minic"
)

// Dependence-tracked reuse regions (ReuseRegion.Dep). Where execReuse
// forms a flat key from every declared input up front, execDepReuse
// watches the body's actual reads of the declared input locations and
// keys on that footprint via a depmemo.Table. The probe walks the
// footprint trie against current memory — reading only the locations a
// recorded run read — so the charged overhead is cost.Model.DepOverhead
// over the walked footprint, with no per-byte pass over wide inputs.
//
// Soundness is the determinism argument (see internal/depmemo): the
// body is deterministic over the watched locations, reads of a watched
// location after the body itself wrote it are derived values rather
// than inputs, and every read of watched memory funnels through the
// interpreter's load paths, so the recorded footprint is exact — there
// is no untracked channel into the body.

// depRange is one watched input: words [base, base+words) of seg,
// addressed in the trie as Loc{Input: input, Off: cell-base} (scalars
// as Loc{input, OffWhole}).
type depRange struct {
	seg    *Seg
	base   int
	words  int
	scalar bool
}

// depWatcher tracks one active dep-region instance. Watchers nest
// dynamically (a dep region inside another's body, across calls): every
// load/store notifies the whole chain through parent.
type depWatcher struct {
	parent  *depWatcher
	ranges  []depRange
	path    []depmemo.Step
	seen    map[depmemo.Loc]struct{}
	written map[depmemo.Loc]struct{}
}

// locate maps a memory cell to its trie location under this watcher,
// if the cell is watched.
func (w *depWatcher) locate(seg *Seg, off int) (depmemo.Loc, bool) {
	for i := range w.ranges {
		r := &w.ranges[i]
		if r.seg == seg && off >= r.base && off < r.base+r.words {
			if r.scalar {
				return depmemo.Loc{Input: int32(i), Off: depmemo.OffWhole}, true
			}
			return depmemo.Loc{Input: int32(i), Off: int32(off - r.base)}, true
		}
	}
	return depmemo.Loc{}, false
}

// onRead records a first read of a watched, not-yet-written location.
func (w *depWatcher) onRead(seg *Seg, off int, v Value) {
	for ; w != nil; w = w.parent {
		l, ok := w.locate(seg, off)
		if !ok {
			continue
		}
		if _, wr := w.written[l]; wr {
			continue // derived value, not an input
		}
		if _, dup := w.seen[l]; dup {
			continue
		}
		w.seen[l] = struct{}{}
		w.path = append(w.path, depmemo.Step{Loc: l, Label: depEncode(v)})
	}
}

// onWrite marks a watched location as body-produced: later reads of it
// are no longer input dependences.
func (w *depWatcher) onWrite(seg *Seg, off int) {
	for ; w != nil; w = w.parent {
		if l, ok := w.locate(seg, off); ok {
			w.written[l] = struct{}{}
		}
	}
}

// Fetch serves a trie probe from current memory, making the watcher the
// depmemo.Fetcher for its own region. Locations a recorded run read
// out-of-range for this instance's inputs yield a sentinel that forces
// the probe off the resident path.
func (w *depWatcher) Fetch(l depmemo.Loc) uint64 {
	if int(l.Input) >= len(w.ranges) {
		return depOOB(uint64(l.Input))
	}
	r := &w.ranges[l.Input]
	off := 0
	if l.Off != depmemo.OffWhole {
		off = int(l.Off)
	}
	if off < 0 || off >= r.words {
		return depOOB(uint64(uint32(l.Off)))
	}
	return depEncode(r.seg.data[r.base+off])
}

// depEncode maps a cell value to its 64-bit equality label.
func depEncode(v Value) uint64 {
	switch v.K {
	case KFloat:
		return math.Float64bits(v.F)
	case KPtr:
		// Pointer-valued cells key on the offset only; segment identity
		// is not stable across runs, but within one run two watched
		// pointers into the same frame differ exactly by offset.
		return depOOB(uint64(v.P.off) ^ 0x70747265)
	default:
		return uint64(v.I)
	}
}

// depOOB mixes a sentinel label (murmur3 finalizer, matching depmemo's
// out-of-band convention).
func depOOB(x uint64) uint64 {
	x ^= 0x6465705f6f6f625f
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// getDepWatcher pops a cleared watcher off the machine's free list.
func (mc *Machine) getDepWatcher() *depWatcher {
	if n := len(mc.depFree); n > 0 {
		w := mc.depFree[n-1]
		mc.depFree = mc.depFree[:n-1]
		return w
	}
	return &depWatcher{
		seen:    map[depmemo.Loc]struct{}{},
		written: map[depmemo.Loc]struct{}{},
	}
}

func (mc *Machine) putDepWatcher(w *depWatcher) {
	w.parent = nil
	w.ranges = w.ranges[:0]
	w.path = w.path[:0]
	clear(w.seen)
	clear(w.written)
	mc.depFree = append(mc.depFree, w)
}

// execDepReuse executes a dependence-tracked ReuseRegion.
//
// In reuse mode the footprint trie is probed against current memory; a
// hit copies the stored outputs, a miss runs the body under a watcher
// and records the observed read path. DepOverhead is charged over the
// footprint actually walked (the trie touches one location per level,
// so hits and misses pay for the same per-level work, mirroring
// execReuse's accounting). In profile mode the body always runs and the
// table takes the footprint census unpriced.
func (mc *Machine) execDepReuse(s *minic.ReuseRegion, fr *Seg) ctrl {
	tab := mc.depTabs[s.TableID]
	if tab == nil {
		panic(rtErr(s.Pos(), "dep reuse region %q references unknown dep table %d", s.SegName, s.TableID))
	}
	st := mc.segs[s.ID()]
	if st == nil {
		st = &SegRunStats{}
		mc.segs[s.ID()] = st
	}
	st.Instances++

	w := mc.getDepWatcher()
	for _, in := range s.Inputs {
		t := in.Type()
		p := mc.evalLValue(in, fr)
		if minic.IsAggregate(t) {
			w.ranges = append(w.ranges, depRange{seg: p.seg, base: p.off, words: t.Words()})
		} else {
			w.ranges = append(w.ranges, depRange{seg: p.seg, base: p.off, words: 1, scalar: true})
		}
	}

	profile := tab.Config().Profile
	if !profile {
		r := tab.Probe(w)
		if r.Hit {
			oh := mc.m.DepOverhead(r.Steps, len(r.Outs)*4)
			mc.charge(oh)
			mc.ops.HashOps += oh
			st.OverheadCycles += oh
			st.Hits++
			mc.writeOutputs(s, r.Outs, fr)
			mc.putDepWatcher(w)
			return cNone
		}
	}

	w.parent = mc.depWatch
	mc.depWatch = w
	before := mc.cycles
	c := mc.execStmt(s.Body, fr)
	mc.depWatch = w.parent
	st.BodyCycles += mc.cycles - before
	st.BodyRuns++
	if c == cRet || c == cBreak || c == cCont {
		mc.putDepWatcher(w)
		return c
	}
	outs := mc.readOutputs(s, fr)
	tab.Record(w.path, outs)
	if !profile {
		oh := mc.m.DepOverhead(len(w.path), len(outs)*4)
		mc.charge(oh)
		mc.ops.HashOps += oh
		st.OverheadCycles += oh
	}
	mc.putDepWatcher(w)
	return cNone
}
