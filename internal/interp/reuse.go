package interp

import (
	"math"
	"strconv"
	"strings"

	"compreuse/internal/minic"
	"compreuse/internal/reusetab"
)

// execReuse executes a ReuseRegion (paper Fig. 2b):
//
//	key := concat(inputs)
//	if probe(key) misses { run body; record(key, outputs) }
//	else { copy stored outputs }
//
// In ModeReuse the modeled hashing overhead is charged on every instance
// (the paper notes hits and misses perform the same extra work). In
// ModeProfile no overhead is charged — profiling is an offline activity —
// and the body always runs while the table takes the input census; the
// region additionally measures the body's granularity.
func (mc *Machine) execReuse(s *minic.ReuseRegion, fr *Seg) ctrl {
	tab := mc.tables[s.TableID]
	if tab == nil {
		panic(rtErr(s.Pos(), "reuse region %q references unknown table %d", s.SegName, s.TableID))
	}
	st := mc.segs[s.ID()]
	if st == nil {
		st = &SegRunStats{}
		mc.segs[s.ID()] = st
	}
	st.Instances++

	key := mc.buildKey(s, fr)
	profile := tab.Config().Mode == reusetab.ModeProfile

	if !profile {
		oh := mc.hashOverhead(tab, s)
		mc.charge(oh)
		mc.ops.HashOps += oh
		st.OverheadCycles += oh
	}

	outs, hit := tab.Probe(s.SegBit, key)
	if hit {
		st.Hits++
		mc.writeOutputs(s, outs, fr)
		return cNone
	}

	before := mc.cycles
	c := mc.execStmt(s.Body, fr)
	st.BodyCycles += mc.cycles - before
	st.BodyRuns++
	if c == cRet || c == cBreak || c == cCont {
		// A body that escapes abnormally does not reach the region exit;
		// its outputs are not well-defined there, so nothing is recorded.
		// (The transform pass only wraps single-entry single-exit bodies,
		// so this is defensive.)
		return c
	}
	tab.Record(s.SegBit, key, mc.readOutputs(s, fr))
	return cNone
}

// hashOverhead returns the memoized per-instance overhead for (table, seg).
func (mc *Machine) hashOverhead(tab *reusetab.Table, s *minic.ReuseRegion) int64 {
	k := [2]int{s.TableID, s.SegBit}
	if oh, ok := mc.overheadMemo[k]; ok {
		return oh
	}
	cfg := tab.Config()
	oh := mc.m.HashOverhead(cfg.KeyBytes, cfg.OutBytes[s.SegBit])
	mc.overheadMemo[k] = oh
	return oh
}

// buildKey concatenates the bit patterns of the input values (paper §2.1).
// Scalar ints contribute 4 bytes, floats 8; aggregate inputs contribute
// every element.
func (mc *Machine) buildKey(s *minic.ReuseRegion, fr *Seg) []byte {
	var key []byte
	for _, in := range s.Inputs {
		key = mc.appendValue(key, in, fr)
	}
	return key
}

func (mc *Machine) appendValue(key []byte, e minic.Expr, fr *Seg) []byte {
	t := e.Type()
	if minic.IsAggregate(t) {
		base := mc.evalLValue(e, fr)
		return mc.appendWords(key, base, t, e.Pos())
	}
	v := mc.evalExpr(e, fr)
	switch {
	case minic.IsFloat(t):
		return reusetab.AppendFloat(key, convert(v, minic.FloatType).F)
	default:
		return reusetab.AppendInt(key, convert(v, minic.IntType).I)
	}
}

// appendWords flattens an aggregate at base into the key, element by
// element, following the type structure.
func (mc *Machine) appendWords(key []byte, base Ptr, t minic.Type, pos minic.Pos) []byte {
	switch t := t.(type) {
	case *minic.Array:
		ew := t.Elem.Words()
		for i := 0; i < t.Len; i++ {
			key = mc.appendWords(key, Ptr{seg: base.seg, off: base.off + i*ew}, t.Elem, pos)
		}
		return key
	case *minic.Struct:
		for _, f := range t.Fields {
			key = mc.appendWords(key, Ptr{seg: base.seg, off: base.off + f.WordOff}, f.Type, pos)
		}
		return key
	default:
		v := mc.loadPtr(base, t, pos)
		if minic.IsFloat(t) {
			return reusetab.AppendFloat(key, v.F)
		}
		return reusetab.AppendInt(key, v.I)
	}
}

// readOutputs encodes the current values of the output lvalues.
func (mc *Machine) readOutputs(s *minic.ReuseRegion, fr *Seg) []uint64 {
	var out []uint64
	for _, o := range s.Outputs {
		t := o.Type()
		if minic.IsAggregate(t) {
			base := mc.evalLValue(o, fr)
			out = mc.readWords(out, base, t, o.Pos())
			continue
		}
		v := mc.evalExpr(o, fr)
		out = append(out, encodeScalar(v, t))
	}
	return out
}

func (mc *Machine) readWords(out []uint64, base Ptr, t minic.Type, pos minic.Pos) []uint64 {
	switch t := t.(type) {
	case *minic.Array:
		ew := t.Elem.Words()
		for i := 0; i < t.Len; i++ {
			out = mc.readWords(out, Ptr{seg: base.seg, off: base.off + i*ew}, t.Elem, pos)
		}
		return out
	case *minic.Struct:
		for _, f := range t.Fields {
			out = mc.readWords(out, Ptr{seg: base.seg, off: base.off + f.WordOff}, f.Type, pos)
		}
		return out
	default:
		return append(out, encodeScalar(mc.loadPtr(base, t, pos), t))
	}
}

// writeOutputs decodes stored words into the output lvalues on a hit.
func (mc *Machine) writeOutputs(s *minic.ReuseRegion, words []uint64, fr *Seg) {
	i := 0
	for _, o := range s.Outputs {
		t := o.Type()
		base := mc.evalLValue(o, fr)
		i = mc.writeWords(words, i, base, t, o.Pos())
	}
	if i != len(words) {
		panic(rtErr(s.Pos(), "reuse region %q: output width mismatch (%d of %d words)", s.SegName, i, len(words)))
	}
}

func (mc *Machine) writeWords(words []uint64, i int, base Ptr, t minic.Type, pos minic.Pos) int {
	switch t := t.(type) {
	case *minic.Array:
		ew := t.Elem.Words()
		for j := 0; j < t.Len; j++ {
			i = mc.writeWords(words, i, Ptr{seg: base.seg, off: base.off + j*ew}, t.Elem, pos)
		}
		return i
	case *minic.Struct:
		for _, f := range t.Fields {
			i = mc.writeWords(words, i, Ptr{seg: base.seg, off: base.off + f.WordOff}, f.Type, pos)
		}
		return i
	default:
		mc.storePtr(base, decodeScalar(words[i], t), pos)
		return i + 1
	}
}

func encodeScalar(v Value, t minic.Type) uint64 {
	if minic.IsFloat(t) {
		return math.Float64bits(convert(v, minic.FloatType).F)
	}
	return uint64(convert(v, minic.IntType).I)
}

func decodeScalar(w uint64, t minic.Type) Value {
	if minic.IsFloat(t) {
		return FloatVal(math.Float64frombits(w))
	}
	return IntVal(int64(w))
}

// ---------------------------------------------------------------------------
// Print formatting, shared by the builtins.

func writeInt(sb *strings.Builder, v int64) {
	sb.WriteString(strconv.FormatInt(v, 10))
}

func writeFloat(sb *strings.Builder, v float64) {
	// %.6g keeps output stable across O-levels with differing rounding of
	// the same computation.
	sb.WriteString(strconv.FormatFloat(v, 'g', 6, 64))
}
