package interp

import (
	"testing"

	"compreuse/internal/depmemo"
	"compreuse/internal/minic"
)

// wrapPick builds a program whose pick function reads one element of a
// global table selected by its argument, with the computing statement
// wrapped in a dependence-tracked ReuseRegion over (j, tbl). main churns
// an element pick never reads on every iteration, so a flat key over
// the declared inputs would never hit while the dependence footprint
// (j, tbl[j]) stays constant.
func wrapPick(t *testing.T, profile bool) (*minic.Program, map[int]*depmemo.Table, *minic.ReuseRegion) {
	t.Helper()
	prog := compile(t, `
int tbl[8] = {1,2,3,4,5,6,7,8};
int pick(int j) {
    int r;
    r = tbl[j] * 2;
    return r;
}
int main(void) {
    int s = 0;
    int k;
    for (k = 0; k < 100; k++) {
        tbl[5] = k;
        s += pick(2);
    }
    return s;
}`)
	fn := prog.Func("pick")
	jSym := fn.Params[0].Sym
	var rSym, tblSym *minic.Symbol
	for _, id := range minic.Idents(fn.Body) {
		switch id.Name {
		case "r":
			rSym = id.Sym
		case "tbl":
			tblSym = id.Sym
		}
	}
	if rSym == nil || tblSym == nil {
		t.Fatal("missing symbols")
	}
	rr := &minic.ReuseRegion{
		TableID: 0, SegBit: 0, SegName: "pick@body", Dep: true,
		Inputs:  []minic.Expr{prog.NewIdent(jSym), prog.NewIdent(tblSym)},
		Outputs: []minic.Expr{prog.NewIdent(rSym)},
		Body:    fn.Body.Stmts[1],
	}
	fn.Body.Stmts[1] = rr
	tab := depmemo.New(depmemo.Config{Name: "pick", Profile: profile})
	return prog, map[int]*depmemo.Table{0: tab}, rr
}

func TestDepReuseRegionNarrowKey(t *testing.T) {
	orig := run(t, `
int tbl[8] = {1,2,3,4,5,6,7,8};
int pick(int j) {
    int r;
    r = tbl[j] * 2;
    return r;
}
int main(void) {
    int s = 0;
    int k;
    for (k = 0; k < 100; k++) {
        tbl[5] = k;
        s += pick(2);
    }
    return s;
}`)
	prog, tabs, rr := wrapPick(t, false)
	res, err := Run(prog, Options{DepTables: tabs})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != orig.Ret {
		t.Fatalf("transformed result %d != original %d", res.Ret, orig.Ret)
	}
	st := res.Segs[rr.ID()]
	if st == nil {
		t.Fatal("no segment stats")
	}
	// tbl[5] differs on every call, but the body reads only j and
	// tbl[2]: one body run, 99 footprint hits. A flat key over (j, tbl)
	// would hit zero times.
	if st.Instances != 100 || st.Hits != 99 || st.BodyRuns != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if st.OverheadCycles == 0 {
		t.Fatal("reuse mode must charge dep overhead")
	}
	ts := tabs[0].Stats()
	if ts.Distinct != 1 || ts.MaxFootprint != 2 {
		t.Fatalf("table stats: %+v", ts)
	}
}

func TestDepReuseRegionMissOnReadCell(t *testing.T) {
	// Same shape, but main also rewrites the cell pick DOES read, so
	// each distinct tbl[2] value is a distinct footprint.
	prog := compile(t, `
int tbl[8] = {1,2,3,4,5,6,7,8};
int pick(int j) {
    int r;
    r = tbl[j] * 2;
    return r;
}
int main(void) {
    int s = 0;
    int k;
    for (k = 0; k < 90; k++) {
        tbl[2] = k % 3;
        s += pick(2);
    }
    return s;
}`)
	fn := prog.Func("pick")
	jSym := fn.Params[0].Sym
	var rSym, tblSym *minic.Symbol
	for _, id := range minic.Idents(fn.Body) {
		switch id.Name {
		case "r":
			rSym = id.Sym
		case "tbl":
			tblSym = id.Sym
		}
	}
	rr := &minic.ReuseRegion{
		TableID: 0, SegBit: 0, SegName: "pick@body", Dep: true,
		Inputs:  []minic.Expr{prog.NewIdent(jSym), prog.NewIdent(tblSym)},
		Outputs: []minic.Expr{prog.NewIdent(rSym)},
		Body:    fn.Body.Stmts[1],
	}
	fn.Body.Stmts[1] = rr
	tab := depmemo.New(depmemo.Config{Name: "pick"})
	res, err := Run(prog, Options{DepTables: map[int]*depmemo.Table{0: tab}})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(0)
	for k := 0; k < 90; k++ {
		want += int64(k%3) * 2
	}
	if res.Ret != want {
		t.Fatalf("result %d, want %d", res.Ret, want)
	}
	st := res.Segs[rr.ID()]
	if st.BodyRuns != 3 || st.Hits != 87 {
		t.Fatalf("stats: %+v", st)
	}
	if tab.Stats().Distinct != 3 {
		t.Fatalf("table stats: %+v", tab.Stats())
	}
}

func TestDepProfileModeCensus(t *testing.T) {
	prog, tabs, rr := wrapPick(t, true)
	res, err := Run(prog, Options{DepTables: tabs})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Segs[rr.ID()]
	if st.Instances != 100 || st.BodyRuns != 100 || st.Hits != 0 {
		t.Fatalf("profile stats: %+v", st)
	}
	if st.OverheadCycles != 0 {
		t.Fatal("profile mode must not charge dep overhead")
	}
	ts := tabs[0].Stats()
	if ts.Records != 100 || ts.Distinct != 1 {
		t.Fatalf("census: %+v", ts)
	}
	if ts.MeanFootprint() != 2 || ts.MaxFootprint != 2 {
		t.Fatalf("footprint: %+v", ts)
	}
	if st.MeasuredC() <= 0 {
		t.Fatal("measured granularity must be positive")
	}
}

// TestDepWriteThenReadNotRecorded pins first-read-before-write: a
// watched location the body writes before reading is a derived value,
// not an input dependence.
func TestDepWriteThenReadNotRecorded(t *testing.T) {
	prog := compile(t, `
int scratch[4];
int f(int x) {
    int r;
    scratch[0] = x * 2;
    r = scratch[0] + 1;
    return r;
}
int main(void) {
    int s = 0;
    int k;
    for (k = 0; k < 10; k++) {
        scratch[0] = k;
        s += f(3);
    }
    return s;
}`)
	fn := prog.Func("f")
	xSym := fn.Params[0].Sym
	var rSym, scSym *minic.Symbol
	for _, id := range minic.Idents(fn.Body) {
		switch id.Name {
		case "r":
			rSym = id.Sym
		case "scratch":
			scSym = id.Sym
		}
	}
	// Wrap the two computing statements in a block-bodied dep region.
	body := &minic.Block{Stmts: []minic.Stmt{fn.Body.Stmts[1], fn.Body.Stmts[2]}}
	rr := &minic.ReuseRegion{
		TableID: 0, SegBit: 0, SegName: "f@body", Dep: true,
		Inputs:  []minic.Expr{prog.NewIdent(xSym), prog.NewIdent(scSym)},
		Outputs: []minic.Expr{prog.NewIdent(rSym)},
		Body:    body,
	}
	fn.Body.Stmts = []minic.Stmt{fn.Body.Stmts[0], rr, fn.Body.Stmts[3]}
	tab := depmemo.New(depmemo.Config{Name: "f"})
	res, err := Run(prog, Options{DepTables: map[int]*depmemo.Table{0: tab}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 70 {
		t.Fatalf("result %d, want 70", res.Ret)
	}
	// scratch[0] differs at entry on every call, but f writes it before
	// reading it: the only dependence is x, so everything after the
	// first call hits.
	st := res.Segs[rr.ID()]
	if st.BodyRuns != 1 || st.Hits != 9 {
		t.Fatalf("stats: %+v", st)
	}
	if ts := tab.Stats(); ts.MaxFootprint != 1 {
		t.Fatalf("footprint should be x only: %+v", ts)
	}
}

// TestDepNestedRegions nests a dep region dynamically inside another
// (callee wrapped, caller wrapped): the outer footprint must include
// the locations the inner body read on the outer's behalf.
func TestDepNestedRegions(t *testing.T) {
	prog := compile(t, `
int tbl[4] = {10, 20, 30, 40};
int inner(int j) {
    int r;
    r = tbl[j];
    return r;
}
int outer(int j) {
    int s;
    s = inner(j) + 1;
    return s;
}
int main(void) {
    int s = 0;
    int k;
    for (k = 0; k < 20; k++)
        s += outer(k % 2);
    return s;
}`)
	wrap := func(name string, inputs func(fn *minic.FuncDecl) []minic.Expr, outName string, tableID int) *minic.ReuseRegion {
		fn := prog.Func(name)
		var out *minic.Symbol
		for _, id := range minic.Idents(fn.Body) {
			if id.Name == outName {
				out = id.Sym
				break
			}
		}
		rr := prog.NewReuseRegion(tableID, 0, name+"@body")
		rr.Dep = true
		rr.Inputs = inputs(fn)
		rr.Outputs = []minic.Expr{prog.NewIdent(out)}
		rr.Body = fn.Body.Stmts[1]
		fn.Body.Stmts[1] = rr
		return rr
	}
	var tblSym *minic.Symbol
	for _, id := range minic.Idents(prog.Func("inner").Body) {
		if id.Name == "tbl" {
			tblSym = id.Sym
			break
		}
	}
	innerRR := wrap("inner", func(fn *minic.FuncDecl) []minic.Expr {
		return []minic.Expr{prog.NewIdent(fn.Params[0].Sym), prog.NewIdent(tblSym)}
	}, "r", 0)
	outerRR := wrap("outer", func(fn *minic.FuncDecl) []minic.Expr {
		return []minic.Expr{prog.NewIdent(fn.Params[0].Sym), prog.NewIdent(tblSym)}
	}, "s", 1)
	tabs := map[int]*depmemo.Table{
		0: depmemo.New(depmemo.Config{Name: "inner"}),
		1: depmemo.New(depmemo.Config{Name: "outer"}),
	}
	res, err := Run(prog, Options{DepTables: tabs})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 10*(11+21) {
		t.Fatalf("result %d", res.Ret)
	}
	// Outer: 2 distinct (j, tbl[j]) footprints, 18 hits. Inner's body
	// only runs when outer misses: 2 runs.
	if st := res.Segs[outerRR.ID()]; st.BodyRuns != 2 || st.Hits != 18 {
		t.Fatalf("outer stats: %+v", st)
	}
	if st := res.Segs[innerRR.ID()]; st.BodyRuns != 2 {
		t.Fatalf("inner stats: %+v", st)
	}
	// The outer footprint saw tbl[j] through the nested call: its own
	// param plus the element inner read.
	if ts := tabs[1].Stats(); ts.MaxFootprint != 2 {
		t.Fatalf("outer footprint: %+v", ts)
	}
}
