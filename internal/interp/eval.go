package interp

import (
	"math"

	"compreuse/internal/minic"
)

// ctrl is the statement-level control-flow outcome.
type ctrl int

const (
	cNone ctrl = iota
	cBreak
	cCont
	cRet
)

// call invokes fn with already-evaluated argument values.
func (mc *Machine) call(fn *minic.FuncDecl, args []Value, pos minic.Pos) Value {
	if fn.Body == nil {
		panic(rtErr(pos, "call of undefined function %s", fn.Name))
	}
	mc.depth++
	if mc.depth > mc.maxDep {
		panic(rtErr(pos, "call stack overflow in %s (depth %d)", fn.Name, mc.maxDep))
	}
	mc.charge(mc.m.Call)
	mc.ops.Calls++
	mc.countNode(fn.ID())

	fr := &Seg{data: make([]Value, fn.FrameWords), name: fn.Name}
	for i, p := range fn.Params {
		fr.data[p.Sym.Slot] = convert(args[i], p.Type)
		mc.chargeStore()
	}
	savedRet := mc.retVal
	mc.retVal = Value{}
	c := mc.execStmt(fn.Body, fr)
	ret := mc.retVal
	mc.retVal = savedRet
	mc.depth--
	mc.charge(mc.m.Ret)
	if c != cRet && !minic.IsVoid(fn.Ret) {
		// Falling off the end of a non-void function yields zero, as most
		// C programs in the benchmarks assume for main.
		ret = convert(IntVal(0), fn.Ret)
	}
	if c == cRet && !minic.IsVoid(fn.Ret) {
		ret = convert(ret, fn.Ret)
	}
	return ret
}

func (mc *Machine) execStmt(s minic.Stmt, fr *Seg) ctrl {
	mc.step(s.Pos())
	switch s := s.(type) {
	case *minic.Block:
		for _, st := range s.Stmts {
			if c := mc.execStmt(st, fr); c != cNone {
				return c
			}
		}
		return cNone

	case *minic.DeclStmt:
		for _, d := range s.Decls {
			base := d.Sym.Slot
			if d.Init != nil {
				v := mc.evalExpr(d.Init, fr)
				fr.data[base] = convert(v, d.Type)
				mc.chargeLocal()
			} else if d.InitList != nil {
				et := scalarElem(d.Type)
				for i, e := range d.InitList {
					fr.data[base+i] = convert(mc.evalExpr(e, fr), et)
					mc.chargeStore()
				}
				zero := convert(IntVal(0), et)
				for i := len(d.InitList); i < d.Type.Words(); i++ {
					fr.data[base+i] = zero
				}
			} else {
				// Zero-initialize so reads of uninitialized locals are
				// deterministic (MiniC is stricter than C here).
				zero := IntVal(0)
				if minic.IsFloat(scalarElem(d.Type)) {
					zero = FloatVal(0)
				}
				for i := 0; i < d.Type.Words(); i++ {
					fr.data[base+i] = zero
				}
			}
		}
		return cNone

	case *minic.ExprStmt:
		mc.evalExpr(s.X, fr)
		return cNone

	case *minic.IfStmt:
		mc.chargeBranch()
		if mc.evalExpr(s.Cond, fr).Truthy() {
			mc.countNode(s.Then.ID())
			return mc.execStmt(s.Then, fr)
		}
		if s.Else != nil {
			mc.countNode(s.Else.ID())
			return mc.execStmt(s.Else, fr)
		}
		return cNone

	case *minic.WhileStmt:
		if s.DoWhile {
			for {
				mc.countNode(s.ID())
				c := mc.execStmt(s.Body, fr)
				if c == cBreak {
					return cNone
				}
				if c == cRet {
					return cRet
				}
				mc.chargeBranch()
				if !mc.evalExpr(s.Cond, fr).Truthy() {
					return cNone
				}
			}
		}
		for {
			mc.chargeBranch()
			if !mc.evalExpr(s.Cond, fr).Truthy() {
				return cNone
			}
			mc.countNode(s.ID())
			c := mc.execStmt(s.Body, fr)
			if c == cBreak {
				return cNone
			}
			if c == cRet {
				return cRet
			}
		}

	case *minic.ForStmt:
		if s.Init != nil {
			mc.execStmt(s.Init, fr)
		}
		for {
			if s.Cond != nil {
				mc.chargeBranch()
				if !mc.evalExpr(s.Cond, fr).Truthy() {
					return cNone
				}
			}
			mc.countNode(s.ID())
			c := mc.execStmt(s.Body, fr)
			if c == cBreak {
				return cNone
			}
			if c == cRet {
				return cRet
			}
			if s.Post != nil {
				mc.evalExpr(s.Post, fr)
			}
		}

	case *minic.BreakStmt:
		return cBreak
	case *minic.ContinueStmt:
		return cCont
	case *minic.ReturnStmt:
		if s.X != nil {
			mc.retVal = mc.evalExpr(s.X, fr)
		}
		return cRet
	case *minic.EmptyStmt:
		return cNone
	case *minic.ReuseRegion:
		if s.Dep {
			return mc.execDepReuse(s, fr)
		}
		return mc.execReuse(s, fr)
	}
	panic(rtErr(s.Pos(), "unhandled statement %T", s))
}

// ---------------------------------------------------------------------------
// Expressions

func (mc *Machine) evalExpr(e minic.Expr, fr *Seg) Value {
	switch e := e.(type) {
	case *minic.IntLit:
		mc.chargeInt()
		return IntVal(e.Val)
	case *minic.FloatLit:
		mc.chargeInt()
		return FloatVal(e.Val)
	case *minic.StrLit:
		mc.chargeInt()
		return IntVal(0)
	case *minic.SizeofExpr:
		mc.chargeInt()
		return IntVal(int64(e.T.Bytes()))

	case *minic.Ident:
		sym := e.Sym
		switch sym.Kind {
		case minic.SymFunc:
			mc.chargeInt()
			return Value{K: KFunc, Fn: sym.FuncDecl}
		case minic.SymGlobal:
			if minic.IsAggregate(sym.Type) {
				mc.chargeInt()
				return Value{K: KPtr, P: Ptr{seg: mc.globals, off: sym.Slot}}
			}
			mc.chargeLoad()
			v := mc.globals.data[sym.Slot]
			if mc.depWatch != nil {
				mc.depWatch.onRead(mc.globals, sym.Slot, v)
			}
			return v
		default:
			if minic.IsAggregate(sym.Type) {
				mc.chargeInt()
				return Value{K: KPtr, P: Ptr{seg: fr, off: sym.Slot}}
			}
			mc.chargeLocal()
			v := fr.data[sym.Slot]
			if mc.depWatch != nil {
				mc.depWatch.onRead(fr, sym.Slot, v)
			}
			return v
		}

	case *minic.Unary:
		switch e.Op {
		case minic.Amp:
			p := mc.evalLValue(e.X, fr)
			return Value{K: KPtr, P: p}
		case minic.Star:
			v := mc.evalExpr(e.X, fr)
			if v.K != KPtr {
				panic(rtErr(e.Pos(), "dereference of non-pointer value"))
			}
			elem := minic.ElemOf(decayT(e.X.Type()))
			return mc.loadPtr(v.P, elem, e.Pos())
		case minic.Not:
			v := mc.evalExpr(e.X, fr)
			mc.chargeInt()
			if v.Truthy() {
				return IntVal(0)
			}
			return IntVal(1)
		case minic.Tilde:
			v := mc.evalExpr(e.X, fr)
			mc.chargeInt()
			return IntVal(^v.I)
		case minic.Minus:
			v := mc.evalExpr(e.X, fr)
			if v.K == KFloat {
				mc.chargeFloat(mc.m.FloatAdd)
				return FloatVal(-v.F)
			}
			mc.chargeInt()
			return IntVal(-v.I)
		case minic.Plus:
			return mc.evalExpr(e.X, fr)
		}
		panic(rtErr(e.Pos(), "unhandled unary %v", e.Op))

	case *minic.IncDec:
		p := mc.evalLValue(e.X, fr)
		t := e.X.Type()
		old := mc.loadPtr(p, t, e.Pos())
		var nv Value
		switch {
		case old.K == KPtr:
			d := minic.ElemOf(decayT(t)).Words()
			if e.Op == minic.Dec {
				d = -d
			}
			mc.chargeInt()
			nv = Value{K: KPtr, P: Ptr{seg: old.P.seg, off: old.P.off + d}}
		case old.K == KFloat:
			d := 1.0
			if e.Op == minic.Dec {
				d = -1
			}
			mc.chargeFloat(mc.m.FloatAdd)
			nv = FloatVal(old.F + d)
		default:
			d := int64(1)
			if e.Op == minic.Dec {
				d = -1
			}
			mc.chargeInt()
			nv = IntVal(old.I + d)
		}
		mc.storePtr(p, nv, e.Pos())
		if e.Post {
			return old
		}
		return nv

	case *minic.Binary:
		return mc.evalBinary(e, fr)

	case *minic.AssignExpr:
		return mc.evalAssign(e, fr)

	case *minic.Cond:
		mc.chargeBranch()
		if mc.evalExpr(e.Cond, fr).Truthy() {
			return mc.evalExpr(e.Then, fr)
		}
		return mc.evalExpr(e.Else, fr)

	case *minic.Call:
		return mc.evalCall(e, fr)

	case *minic.Index:
		p := mc.indexPtr(e, fr)
		return mc.loadPtr(p, e.Type(), e.Pos())

	case *minic.FieldExpr:
		p := mc.fieldPtr(e, fr)
		return mc.loadPtr(p, e.Type(), e.Pos())

	case *minic.Cast:
		v := mc.evalExpr(e.X, fr)
		from := e.X.Type()
		if minic.IsArith(e.To) && minic.IsArith(from) && !minic.Identical(e.To, from) {
			mc.charge(mc.m.Conv)
			mc.ops.IntOps++
		}
		return convert(v, e.To)
	}
	panic(rtErr(e.Pos(), "unhandled expression %T", e))
}

// decayT applies array-to-pointer decay to a static type.
func decayT(t minic.Type) minic.Type {
	if at, ok := t.(*minic.Array); ok {
		return &minic.Pointer{Elem: at.Elem}
	}
	return t
}

// loadPtr reads a value of type t at p. Aggregate types yield a pointer to
// the aggregate (decay).
func (mc *Machine) loadPtr(p Ptr, t minic.Type, pos minic.Pos) Value {
	if p.IsNull() {
		panic(rtErr(pos, "null pointer dereference"))
	}
	if minic.IsAggregate(t) {
		mc.chargeInt()
		return Value{K: KPtr, P: p}
	}
	if p.off < 0 || p.off >= len(p.seg.data) {
		panic(rtErr(pos, "out-of-bounds access: %s[%d] (size %d)", p.seg.name, p.off, len(p.seg.data)))
	}
	mc.chargeLoad()
	v := p.seg.data[p.off]
	if mc.depWatch != nil {
		mc.depWatch.onRead(p.seg, p.off, v)
	}
	return v
}

func (mc *Machine) storePtr(p Ptr, v Value, pos minic.Pos) {
	if p.IsNull() {
		panic(rtErr(pos, "store through null pointer"))
	}
	if p.off < 0 || p.off >= len(p.seg.data) {
		panic(rtErr(pos, "out-of-bounds store: %s[%d] (size %d)", p.seg.name, p.off, len(p.seg.data)))
	}
	mc.chargeStore()
	if mc.depWatch != nil {
		mc.depWatch.onWrite(p.seg, p.off)
	}
	p.seg.data[p.off] = v
}

// evalLValue computes the cell address designated by e.
func (mc *Machine) evalLValue(e minic.Expr, fr *Seg) Ptr {
	switch e := e.(type) {
	case *minic.Ident:
		sym := e.Sym
		if sym.Kind == minic.SymGlobal {
			return Ptr{seg: mc.globals, off: sym.Slot}
		}
		return Ptr{seg: fr, off: sym.Slot}
	case *minic.Index:
		return mc.indexPtr(e, fr)
	case *minic.FieldExpr:
		return mc.fieldPtr(e, fr)
	case *minic.Unary:
		if e.Op == minic.Star {
			v := mc.evalExpr(e.X, fr)
			if v.K != KPtr {
				panic(rtErr(e.Pos(), "dereference of non-pointer value"))
			}
			return v.P
		}
	}
	panic(rtErr(e.Pos(), "not an lvalue: %T", e))
}

func (mc *Machine) indexPtr(e *minic.Index, fr *Seg) Ptr {
	base := mc.evalExpr(e.X, fr)
	if base.K != KPtr {
		panic(rtErr(e.Pos(), "indexing a non-pointer value"))
	}
	idx := mc.evalExpr(e.Idx, fr)
	ew := minic.ElemOf(decayT(e.X.Type())).Words()
	mc.chargeInt() // address arithmetic
	return Ptr{seg: base.P.seg, off: base.P.off + int(idx.I)*ew}
}

func (mc *Machine) fieldPtr(e *minic.FieldExpr, fr *Seg) Ptr {
	var base Ptr
	if e.Arrow {
		v := mc.evalExpr(e.X, fr)
		if v.K != KPtr {
			panic(rtErr(e.Pos(), "-> on non-pointer value"))
		}
		base = v.P
	} else {
		base = mc.evalLValue(e.X, fr)
	}
	if base.IsNull() {
		panic(rtErr(e.Pos(), "field access through null pointer"))
	}
	mc.chargeInt()
	return Ptr{seg: base.seg, off: base.off + e.Info.WordOff}
}

func (mc *Machine) evalBinary(e *minic.Binary, fr *Seg) Value {
	// Short-circuit logicals first.
	switch e.Op {
	case minic.AndAnd:
		mc.chargeBranch()
		if !mc.evalExpr(e.X, fr).Truthy() {
			return IntVal(0)
		}
		if mc.evalExpr(e.Y, fr).Truthy() {
			return IntVal(1)
		}
		return IntVal(0)
	case minic.OrOr:
		mc.chargeBranch()
		if mc.evalExpr(e.X, fr).Truthy() {
			return IntVal(1)
		}
		if mc.evalExpr(e.Y, fr).Truthy() {
			return IntVal(1)
		}
		return IntVal(0)
	}

	x := mc.evalExpr(e.X, fr)
	y := mc.evalExpr(e.Y, fr)
	return mc.applyBinary(e.Op, x, y, e)
}

// applyBinary performs op on evaluated operands, charging cycles.
func (mc *Machine) applyBinary(op minic.TokKind, x, y Value, e *minic.Binary) Value {
	pos := e.Pos()

	// Pointer arithmetic and comparison.
	if x.K == KPtr || y.K == KPtr {
		return mc.applyPtrBinary(op, x, y, e)
	}

	if x.K == KFloat || y.K == KFloat {
		a, b := x.F, y.F
		if x.K == KInt {
			a = float64(x.I)
		}
		if y.K == KInt {
			b = float64(y.I)
		}
		switch op {
		case minic.Plus:
			mc.chargeFloat(mc.m.FloatAdd)
			return FloatVal(a + b)
		case minic.Minus:
			mc.chargeFloat(mc.m.FloatAdd)
			return FloatVal(a - b)
		case minic.Star:
			mc.chargeFloat(mc.m.FloatMul)
			return FloatVal(a * b)
		case minic.Slash:
			mc.chargeFloat(mc.m.FloatDiv)
			if b == 0 {
				return FloatVal(math.Inf(1) * sign(a))
			}
			return FloatVal(a / b)
		case minic.Lt, minic.Gt, minic.Le, minic.Ge, minic.EqEq, minic.NotEq:
			mc.chargeFloat(mc.m.FloatCmp)
			return boolVal(cmpFloat(op, a, b))
		}
		panic(rtErr(pos, "invalid float operation %v", op))
	}

	a, b := x.I, y.I
	switch op {
	case minic.Plus:
		mc.chargeInt()
		return IntVal(a + b)
	case minic.Minus:
		mc.chargeInt()
		return IntVal(a - b)
	case minic.Star:
		mc.chargeMul()
		return IntVal(a * b)
	case minic.Slash:
		mc.chargeDiv()
		if b == 0 {
			panic(rtErr(pos, "integer division by zero"))
		}
		return IntVal(a / b)
	case minic.Percent:
		mc.chargeDiv()
		if b == 0 {
			panic(rtErr(pos, "integer modulo by zero"))
		}
		return IntVal(a % b)
	case minic.Shl:
		mc.chargeInt()
		return IntVal(a << uint(b&63))
	case minic.Shr:
		mc.chargeInt()
		return IntVal(a >> uint(b&63))
	case minic.Amp:
		mc.chargeInt()
		return IntVal(a & b)
	case minic.Pipe:
		mc.chargeInt()
		return IntVal(a | b)
	case minic.Caret:
		mc.chargeInt()
		return IntVal(a ^ b)
	case minic.Lt:
		mc.chargeInt()
		return boolVal(a < b)
	case minic.Gt:
		mc.chargeInt()
		return boolVal(a > b)
	case minic.Le:
		mc.chargeInt()
		return boolVal(a <= b)
	case minic.Ge:
		mc.chargeInt()
		return boolVal(a >= b)
	case minic.EqEq:
		mc.chargeInt()
		return boolVal(a == b)
	case minic.NotEq:
		mc.chargeInt()
		return boolVal(a != b)
	}
	panic(rtErr(pos, "unhandled binary operator %v", op))
}

func (mc *Machine) applyPtrBinary(op minic.TokKind, x, y Value, e *minic.Binary) Value {
	pos := e.Pos()
	mc.chargeInt()
	switch op {
	case minic.Plus, minic.Minus:
		if x.K == KPtr && y.K == KInt {
			ew := ptrElemWords(e.X.Type())
			d := int(y.I) * ew
			if op == minic.Minus {
				d = -d
			}
			return Value{K: KPtr, P: Ptr{seg: x.P.seg, off: x.P.off + d}}
		}
		if y.K == KPtr && x.K == KInt && op == minic.Plus {
			ew := ptrElemWords(e.Y.Type())
			return Value{K: KPtr, P: Ptr{seg: y.P.seg, off: y.P.off + int(x.I)*ew}}
		}
		if x.K == KPtr && y.K == KPtr && op == minic.Minus {
			if x.P.seg != y.P.seg {
				panic(rtErr(pos, "subtraction of pointers into different objects"))
			}
			ew := ptrElemWords(e.X.Type())
			return IntVal(int64((x.P.off - y.P.off) / ew))
		}
	case minic.EqEq:
		return boolVal(samePtr(x, y))
	case minic.NotEq:
		return boolVal(!samePtr(x, y))
	case minic.Lt, minic.Gt, minic.Le, minic.Ge:
		if x.K == KPtr && y.K == KPtr && x.P.seg == y.P.seg {
			return boolVal(cmpInt(op, int64(x.P.off), int64(y.P.off)))
		}
		panic(rtErr(pos, "relational comparison of unrelated pointers"))
	}
	panic(rtErr(pos, "invalid pointer operation %v", op))
}

// samePtr compares a pointer with another pointer or the null constant 0.
func samePtr(x, y Value) bool {
	px, py := x, y
	if px.K == KInt {
		px = Value{K: KPtr}
	}
	if py.K == KInt {
		py = Value{K: KPtr}
	}
	return px.P.seg == py.P.seg && (px.P.seg == nil || px.P.off == py.P.off)
}

func ptrElemWords(t minic.Type) int {
	elem := minic.ElemOf(decayT(t))
	if elem == nil {
		return 1
	}
	w := elem.Words()
	if w == 0 {
		return 1
	}
	return w
}

func cmpInt(op minic.TokKind, a, b int64) bool {
	switch op {
	case minic.Lt:
		return a < b
	case minic.Gt:
		return a > b
	case minic.Le:
		return a <= b
	default:
		return a >= b
	}
}

func cmpFloat(op minic.TokKind, a, b float64) bool {
	switch op {
	case minic.Lt:
		return a < b
	case minic.Gt:
		return a > b
	case minic.Le:
		return a <= b
	case minic.Ge:
		return a >= b
	case minic.EqEq:
		return a == b
	default:
		return a != b
	}
}

func boolVal(b bool) Value {
	if b {
		return IntVal(1)
	}
	return IntVal(0)
}

func sign(a float64) float64 {
	if a < 0 {
		return -1
	}
	return 1
}

func (mc *Machine) evalAssign(e *minic.AssignExpr, fr *Seg) Value {
	p := mc.evalLValue(e.LHS, fr)
	lt := e.LHS.Type()

	if e.Op == minic.Assign {
		rhs := mc.evalExpr(e.RHS, fr)
		// Struct copy.
		if st, ok := lt.(*minic.Struct); ok {
			if rhs.K != KPtr {
				panic(rtErr(e.Pos(), "struct assignment from non-aggregate"))
			}
			n := st.Words()
			for i := 0; i < n; i++ {
				src := mc.loadPtr(Ptr{seg: rhs.P.seg, off: rhs.P.off + i}, minic.IntType, e.Pos())
				mc.storePtr(Ptr{seg: p.seg, off: p.off + i}, src, e.Pos())
			}
			return rhs
		}
		v := convert(rhs, lt)
		mc.storePtr(p, v, e.Pos())
		return v
	}

	old := mc.loadPtr(p, lt, e.Pos())
	rhs := mc.evalExpr(e.RHS, fr)
	fake := &minic.Binary{Op: compound(e.Op), X: e.LHS, Y: e.RHS}
	nv := convert(mc.applyBinary(fake.Op, old, rhs, fake), lt)
	mc.storePtr(p, nv, e.Pos())
	return nv
}

func compound(op minic.TokKind) minic.TokKind {
	switch op {
	case minic.PlusEq:
		return minic.Plus
	case minic.MinusEq:
		return minic.Minus
	case minic.StarEq:
		return minic.Star
	case minic.SlashEq:
		return minic.Slash
	case minic.PercentEq:
		return minic.Percent
	case minic.ShlEq:
		return minic.Shl
	case minic.ShrEq:
		return minic.Shr
	case minic.AndEq:
		return minic.Amp
	case minic.OrEq:
		return minic.Pipe
	default:
		return minic.Caret
	}
}

func (mc *Machine) evalCall(e *minic.Call, fr *Seg) Value {
	// Builtins.
	if id, ok := e.Fun.(*minic.Ident); ok && id.Sym != nil &&
		id.Sym.Kind == minic.SymFunc && id.Sym.FuncDecl == nil {
		return mc.callBuiltin(e, id.Name, fr)
	}
	fv := mc.evalExpr(e.Fun, fr)
	if fv.K != KFunc || fv.Fn == nil {
		panic(rtErr(e.Pos(), "call of non-function value"))
	}
	args := make([]Value, len(e.Args))
	for i, a := range e.Args {
		args[i] = mc.evalExpr(a, fr)
	}
	return mc.call(fv.Fn, args, e.Pos())
}

func (mc *Machine) callBuiltin(e *minic.Call, name string, fr *Seg) Value {
	mc.charge(mc.m.Call)
	mc.ops.Calls++
	switch name {
	case "print_int":
		v := mc.evalExpr(e.Args[0], fr)
		writeInt(&mc.out, convert(v, minic.IntType).I)
		mc.out.WriteByte('\n')
		return Value{}
	case "print_float":
		v := mc.evalExpr(e.Args[0], fr)
		writeFloat(&mc.out, convert(v, minic.FloatType).F)
		mc.out.WriteByte('\n')
		return Value{}
	case "print_str":
		s := e.Args[0].(*minic.StrLit)
		mc.out.WriteString(s.Val)
		mc.out.WriteByte('\n')
		return Value{}
	case "__assert":
		v := mc.evalExpr(e.Args[0], fr)
		if !v.Truthy() {
			panic(rtErr(e.Pos(), "assertion failed"))
		}
		return Value{}
	}
	panic(rtErr(e.Pos(), "unknown builtin %s", name))
}
