// Package interp is the MiniC virtual machine. It executes checked MiniC
// programs with cycle-accurate accounting against a cost.Model, standing in
// for the paper's 206 MHz StrongARM SA-1110 (Compaq iPAQ 3650).
//
// Beyond plain execution the VM provides the two services the
// computation-reuse scheme needs:
//
//   - execution-frequency profiling (the gprof/gcov stand-in of §2.1):
//     per-node execution counts for functions, loop bodies and branches;
//   - ReuseRegion execution: value-set profiling (ModeProfile tables) and
//     the production table look-up semantics of Figure 2(b) (ModeReuse),
//     charging the modeled hashing overhead so that transformed programs
//     pay for their probes exactly as the cost model predicts.
package interp

import (
	"fmt"

	"compreuse/internal/minic"
)

// Kind discriminates VM values.
type Kind uint8

// Value kinds.
const (
	KInt Kind = iota
	KFloat
	KPtr
	KFunc
)

// Seg is a storage segment: the global area or one call frame. Pointers
// reference cells within a segment, so frames stay valid while pointed-to.
type Seg struct {
	data []Value
	name string
}

// Ptr is a VM pointer: a cell offset within a segment. The zero Ptr is the
// null pointer. ElemWords is the pointee size used to scale pointer
// arithmetic and is carried on the value (MiniC pointers are typed, so this
// is statically consistent).
type Ptr struct {
	seg *Seg
	off int
}

// IsNull reports whether p is the null pointer.
func (p Ptr) IsNull() bool { return p.seg == nil }

// Value is one VM scalar.
type Value struct {
	K  Kind
	I  int64
	F  float64
	P  Ptr
	Fn *minic.FuncDecl
}

// IntVal makes an int value.
func IntVal(v int64) Value { return Value{K: KInt, I: v} }

// FloatVal makes a float value.
func FloatVal(v float64) Value { return Value{K: KFloat, F: v} }

// Truthy reports C truth: nonzero / non-null.
func (v Value) Truthy() bool {
	switch v.K {
	case KInt:
		return v.I != 0
	case KFloat:
		return v.F != 0
	case KPtr:
		return !v.P.IsNull()
	case KFunc:
		return v.Fn != nil
	}
	return false
}

func (v Value) String() string {
	switch v.K {
	case KInt:
		return fmt.Sprintf("%d", v.I)
	case KFloat:
		return fmt.Sprintf("%g", v.F)
	case KPtr:
		if v.P.IsNull() {
			return "null"
		}
		return fmt.Sprintf("&%s[%d]", v.P.seg.name, v.P.off)
	case KFunc:
		if v.Fn == nil {
			return "func(null)"
		}
		return "func " + v.Fn.Name
	}
	return "?"
}

// convert coerces v to the representation of type t (assignment semantics).
func convert(v Value, t minic.Type) Value {
	switch {
	case minic.IsInt(t):
		if v.K == KFloat {
			return IntVal(int64(v.F))
		}
		if v.K == KPtr {
			// Pointer-to-int: expose a stable-ish integer (segment-relative).
			return IntVal(int64(v.P.off))
		}
		return Value{K: KInt, I: v.I}
	case minic.IsFloat(t):
		if v.K == KInt {
			return FloatVal(float64(v.I))
		}
		return Value{K: KFloat, F: v.F}
	default:
		if _, ok := t.(*minic.Pointer); ok && v.K == KInt {
			// Integer-to-pointer: only the null constant is meaningful in
			// the VM's segmented memory; any integer converts to null.
			return Value{K: KPtr}
		}
		// Function pointers, struct words: bit-preserving.
		return v
	}
}

// RuntimeError is a MiniC execution fault (null dereference, division by
// zero, out-of-bounds access, step limit, assertion failure).
type RuntimeError struct {
	Pos minic.Pos
	Msg string
}

func (e *RuntimeError) Error() string {
	if e.Pos.IsValid() {
		return fmt.Sprintf("runtime error at %s: %s", e.Pos, e.Msg)
	}
	return "runtime error: " + e.Msg
}

func rtErr(pos minic.Pos, format string, args ...any) *RuntimeError {
	return &RuntimeError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
