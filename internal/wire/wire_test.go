package wire

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"
)

func sampleFrames() []Frame {
	return []Frame{
		{Op: OpHello, Seq: 1, Name: "quan", Vals: []uint64{1024, 1}},
		{Op: OpHello, Flags: FlagResp, Seq: 1, Seg: 7},
		{Op: OpGet, Seq: 2, Seg: 7, Cost: 48_000, Key: []byte{1, 2, 3, 4}},
		{Op: OpGet, Flags: FlagResp | FlagHit, Seq: 2, Seg: 7, Vals: []uint64{99}},
		{Op: OpGet, Flags: FlagResp | FlagBypass, Seq: 3, Seg: 7},
		{Op: OpPut, Seq: 4, Seg: 7, Cost: 12_500, Key: bytes.Repeat([]byte{0xAB}, 32),
			Vals: []uint64{1, 2, 3}},
		{Op: OpFlush, Seq: 5, Seg: 7},
		{Op: OpStats, Flags: FlagResp, Seq: 6, Seg: 7,
			Vals: make([]uint64, StatsLen)},
		{Op: OpPut, Flags: FlagResp | FlagErr, Seq: 7, Name: "unknown segment 9"},
	}
}

// TestRoundTrip encodes every sample frame and decodes it back,
// expecting field-for-field equality, both via DecodeFrame and via the
// streaming Reader.
func TestRoundTrip(t *testing.T) {
	var stream []byte
	for _, f := range sampleFrames() {
		stream = AppendFrame(stream, &f)

		one := AppendFrame(nil, &f)
		var got Frame
		if err := DecodeFrame(one[4:], &got); err != nil {
			t.Fatalf("%s: decode: %v", f.Op, err)
		}
		if !reflect.DeepEqual(got, f) {
			t.Errorf("%s: round trip\n got %+v\nwant %+v", f.Op, got, f)
		}
	}

	r := NewReader(bytes.NewReader(stream))
	var got Frame
	for i, want := range sampleFrames() {
		if err := r.Next(&got); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("frame %d:\n got %+v\nwant %+v", i, got, want)
		}
	}
	if err := r.Next(&got); err != io.EOF {
		t.Errorf("after last frame: %v, want io.EOF", err)
	}
}

// TestReaderReuse checks that a Reader reusing its payload buffer (and
// the caller reusing one Frame) still hands back correct field values.
func TestReaderReuse(t *testing.T) {
	var stream []byte
	a := Frame{Op: OpPut, Seq: 1, Key: []byte("longer-key-aaaa"), Vals: []uint64{1, 2, 3, 4}}
	b := Frame{Op: OpGet, Seq: 2, Key: []byte("k")}
	stream = AppendFrame(stream, &a)
	stream = AppendFrame(stream, &b)

	r := NewReader(bufio.NewReader(bytes.NewReader(stream)))
	var f Frame
	if err := r.Next(&f); err != nil {
		t.Fatal(err)
	}
	keyA := append([]byte(nil), f.Key...)
	if err := r.Next(&f); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f, b) {
		t.Errorf("second frame %+v, want %+v", f, b)
	}
	if string(keyA) != "longer-key-aaaa" {
		t.Errorf("first key corrupted by reuse: %q", keyA)
	}
}

// TestWriterBatches checks that Writer leaves flushing to the caller's
// bufio.Writer, so pipelined frames coalesce into one flush.
func TestWriterBatches(t *testing.T) {
	var sink bytes.Buffer
	bw := bufio.NewWriter(&sink)
	w := NewWriter(bw)
	for _, f := range sampleFrames() {
		if err := w.Write(&f); err != nil {
			t.Fatal(err)
		}
	}
	if sink.Len() != 0 {
		t.Errorf("writer flushed early: %d bytes before Flush", sink.Len())
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&sink)
	var f Frame
	n := 0
	for r.Next(&f) == nil {
		n++
	}
	if n != len(sampleFrames()) {
		t.Errorf("decoded %d frames, want %d", n, len(sampleFrames()))
	}
}

// TestDecodeCorrupt feeds structurally broken payloads and expects
// typed errors, not panics.
func TestDecodeCorrupt(t *testing.T) {
	good := AppendFrame(nil, &Frame{Op: OpPut, Key: []byte("abc"), Vals: []uint64{1}})[4:]

	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"short header", good[:headerBytes-1], ErrTruncated},
		{"bad op zero", mutate(good, 0, 0), ErrBadOp},
		{"bad op high", mutate(good, 0, byte(opMax)), ErrBadOp},
		{"name len over limit", mutate(good, headerBytes+1, 0xFF), ErrFieldTooLarge},
		{"truncated key", good[:len(good)-9], ErrTruncated},
		{"trailing bytes", append(append([]byte(nil), good...), 0), ErrTrailing},
	}
	for _, tc := range cases {
		var f Frame
		err := DecodeFrame(tc.data, &f)
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: err %v, want %v", tc.name, err, tc.want)
		}
	}

	// A declared length beyond MaxFrame is rejected by the stream reader
	// before any allocation.
	huge := le.AppendUint32(nil, MaxFrame+1)
	r := NewReader(bytes.NewReader(huge))
	var f Frame
	if err := r.Next(&f); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversized length prefix: %v, want ErrFrameTooLarge", err)
	}

	// A stream that dies mid-frame is an unexpected EOF, not a clean one.
	full := AppendFrame(nil, &Frame{Op: OpGet, Key: []byte("abcdef")})
	r = NewReader(bytes.NewReader(full[:len(full)-2]))
	if err := r.Next(&f); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("mid-frame EOF: %v, want io.ErrUnexpectedEOF", err)
	}
}

func mutate(data []byte, i int, b byte) []byte {
	cp := append([]byte(nil), data...)
	cp[i] = b
	return cp
}

func BenchmarkEncodeDecode(b *testing.B) {
	f := Frame{Op: OpPut, Seq: 42, Seg: 3, Cost: 12345,
		Key: bytes.Repeat([]byte{7}, 16), Vals: []uint64{1, 2}}
	var buf []byte
	var out Frame
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendFrame(buf[:0], &f)
		if err := DecodeFrame(buf[4:], &out); err != nil {
			b.Fatal(err)
		}
	}
}
