package wire

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"
)

func sampleFrames() []Frame {
	return []Frame{
		{Op: OpHello, Seq: 1, Name: "quan", Vals: []uint64{1024, 1}},
		{Op: OpHello, Flags: FlagResp, Seq: 1, Seg: 7},
		{Op: OpGet, Seq: 2, Seg: 7, Cost: 48_000, Key: []byte{1, 2, 3, 4}},
		{Op: OpGet, Flags: FlagResp | FlagHit, Seq: 2, Seg: 7, Vals: []uint64{99}},
		{Op: OpGet, Flags: FlagResp | FlagBypass, Seq: 3, Seg: 7},
		{Op: OpPut, Seq: 4, Seg: 7, Cost: 12_500, Key: bytes.Repeat([]byte{0xAB}, 32),
			Vals: []uint64{1, 2, 3}},
		{Op: OpFlush, Seq: 5, Seg: 7},
		{Op: OpStats, Flags: FlagResp, Seq: 6, Seg: 7,
			Vals: make([]uint64, StatsLen)},
		{Op: OpPut, Flags: FlagResp | FlagErr, Seq: 7, Name: "unknown segment 9"},
		{Op: OpMGet, Seq: 8, Seg: 7, Cost: 42_000,
			Items: []Item{{Key: []byte{1, 2, 3, 4}}, {Key: []byte{5, 6, 7, 8}}}},
		{Op: OpMGet, Flags: FlagResp, Seq: 8, Seg: 7,
			Items: []Item{{Flags: FlagHit, Vals: []uint64{99}}, {}}},
		{Op: OpMPut, Seq: 9, Seg: 7, Items: []Item{
			{Cost: 12_500, Key: []byte{1, 2, 3, 4}, Vals: []uint64{11, 12}},
			{Cost: 9_000, Key: bytes.Repeat([]byte{0xCD}, 16), Vals: []uint64{13, 14}}}},
		{Op: OpMPut, Flags: FlagResp, Seq: 9, Seg: 7},
		{Op: OpMPut, Flags: FlagResp | FlagBypass, Seq: 10, Seg: 7},
		// Traced frames: the TraceID section rides behind FlagTraced.
		{Op: OpGet, Flags: FlagTraced, Seq: 11, Seg: 7, Cost: 48_000,
			TraceID: 0xDEADBEEF_CAFEF00D, Key: []byte{9, 9, 9, 9}},
		{Op: OpMGet, Flags: FlagTraced, Seq: 12, Seg: 7, TraceID: 1,
			Items: []Item{{Key: []byte{1}}, {Key: []byte{2}}}},
		{Op: OpPut, Flags: FlagTraced, Seq: 13, Seg: 7, Cost: 5_000,
			TraceID: 42, Key: []byte{8}, Vals: []uint64{77}},
		// Flag set with a zero id is valid (and canonical): the section is
		// on the wire, the id just happens to be zero.
		{Op: OpGet, Flags: FlagTraced, Seq: 14, Seg: 7, Key: []byte{3}},
	}
}

// TestRoundTrip encodes every sample frame and decodes it back,
// expecting field-for-field equality, both via DecodeFrame and via the
// streaming Reader.
func TestRoundTrip(t *testing.T) {
	var stream []byte
	for _, f := range sampleFrames() {
		stream = AppendFrame(stream, &f)

		one := AppendFrame(nil, &f)
		var got Frame
		if err := DecodeFrame(one[4:], &got); err != nil {
			t.Fatalf("%s: decode: %v", f.Op, err)
		}
		if !reflect.DeepEqual(got, f) {
			t.Errorf("%s: round trip\n got %+v\nwant %+v", f.Op, got, f)
		}
	}

	r := NewReader(bytes.NewReader(stream))
	var got Frame
	for i, want := range sampleFrames() {
		if err := r.Next(&got); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("frame %d:\n got %+v\nwant %+v", i, got, want)
		}
	}
	if err := r.Next(&got); err != io.EOF {
		t.Errorf("after last frame: %v, want io.EOF", err)
	}
}

// TestSetTrace checks the helper keeps FlagTraced and TraceID in sync
// and that an untraced frame's encoding is byte-identical to the
// pre-tracing codec (no bytes spent unless the flag is set).
func TestSetTrace(t *testing.T) {
	f := Frame{Op: OpGet, Seq: 1, Seg: 7, Key: []byte("k")}
	plain := AppendFrame(nil, &f)
	f.SetTrace(0xABCD)
	if f.Flags&FlagTraced == 0 || f.TraceID != 0xABCD {
		t.Fatalf("SetTrace(nonzero): flags %x trace %x", f.Flags, f.TraceID)
	}
	traced := AppendFrame(nil, &f)
	if len(traced) != len(plain)+8 {
		t.Errorf("traced encoding %d bytes, want %d", len(traced), len(plain)+8)
	}
	f.SetTrace(0)
	if f.Flags&FlagTraced != 0 || f.TraceID != 0 {
		t.Fatalf("SetTrace(0): flags %x trace %x", f.Flags, f.TraceID)
	}
	if got := AppendFrame(nil, &f); !bytes.Equal(got, plain) {
		t.Errorf("untraced re-encode differs from pre-tracing encoding")
	}
}

// TestReaderReuse checks that a Reader reusing its payload buffer (and
// the caller reusing one Frame) still hands back correct field values.
func TestReaderReuse(t *testing.T) {
	var stream []byte
	a := Frame{Op: OpPut, Seq: 1, Key: []byte("longer-key-aaaa"), Vals: []uint64{1, 2, 3, 4}}
	b := Frame{Op: OpGet, Seq: 2, Key: []byte("k")}
	stream = AppendFrame(stream, &a)
	stream = AppendFrame(stream, &b)

	r := NewReader(bufio.NewReader(bytes.NewReader(stream)))
	var f Frame
	if err := r.Next(&f); err != nil {
		t.Fatal(err)
	}
	keyA := append([]byte(nil), f.Key...)
	if err := r.Next(&f); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f, b) {
		t.Errorf("second frame %+v, want %+v", f, b)
	}
	if string(keyA) != "longer-key-aaaa" {
		t.Errorf("first key corrupted by reuse: %q", keyA)
	}
}

// TestWriterBatches checks that Writer leaves flushing to the caller's
// bufio.Writer, so pipelined frames coalesce into one flush.
func TestWriterBatches(t *testing.T) {
	var sink bytes.Buffer
	bw := bufio.NewWriter(&sink)
	w := NewWriter(bw)
	for _, f := range sampleFrames() {
		if err := w.Write(&f); err != nil {
			t.Fatal(err)
		}
	}
	if sink.Len() != 0 {
		t.Errorf("writer flushed early: %d bytes before Flush", sink.Len())
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&sink)
	var f Frame
	n := 0
	for r.Next(&f) == nil {
		n++
	}
	if n != len(sampleFrames()) {
		t.Errorf("decoded %d frames, want %d", n, len(sampleFrames()))
	}
}

// TestDecodeCorrupt feeds structurally broken payloads and expects
// typed errors, not panics.
func TestDecodeCorrupt(t *testing.T) {
	good := AppendFrame(nil, &Frame{Op: OpPut, Key: []byte("abc"), Vals: []uint64{1}})[4:]

	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"short header", good[:headerBytes-1], ErrTruncated},
		{"bad op zero", mutate(good, 0, 0), ErrBadOp},
		{"bad op high", mutate(good, 0, byte(opMax)), ErrBadOp},
		{"name len over limit", mutate(good, headerBytes+1, 0xFF), ErrFieldTooLarge},
		{"truncated key", good[:len(good)-9], ErrTruncated},
		{"trailing bytes", append(append([]byte(nil), good...), 0), ErrTrailing},
		{"truncated trace id", AppendFrame(nil, &Frame{Op: OpGet,
			Flags: FlagTraced, TraceID: 7, Key: []byte("k")})[4 : 4+headerBytes+5],
			ErrTruncated},
	}
	for _, tc := range cases {
		var f Frame
		err := DecodeFrame(tc.data, &f)
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: err %v, want %v", tc.name, err, tc.want)
		}
	}

	// A declared length beyond MaxFrame is rejected by the stream reader
	// before any allocation.
	huge := le.AppendUint32(nil, MaxFrame+1)
	r := NewReader(bytes.NewReader(huge))
	var f Frame
	if err := r.Next(&f); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversized length prefix: %v, want ErrFrameTooLarge", err)
	}

	// A stream that dies mid-frame is an unexpected EOF, not a clean one.
	full := AppendFrame(nil, &Frame{Op: OpGet, Key: []byte("abcdef")})
	r = NewReader(bytes.NewReader(full[:len(full)-2]))
	if err := r.Next(&f); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("mid-frame EOF: %v, want io.ErrUnexpectedEOF", err)
	}
}

// TestDecodeCorruptBatch feeds structurally broken MGET/MPUT payloads
// and expects typed errors, not panics — the acceptance rule for the
// batch extension is the same as for the base codec: corrupt input can
// never take the server down.
func TestDecodeCorruptBatch(t *testing.T) {
	good := AppendFrame(nil, &Frame{Op: OpMPut, Seg: 7, Items: []Item{
		{Cost: 100, Key: []byte("abcd"), Vals: []uint64{1}},
		{Cost: 200, Key: []byte("efgh"), Vals: []uint64{2}},
	}})[4:]
	// nitems sits right after the (empty) frame-level sections.
	nitemsOff := headerBytes + 2 + 4 + 2

	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"missing items section", good[:nitemsOff], ErrTruncated},
		{"truncated item header", good[:nitemsOff+2+3], ErrTruncated},
		{"truncated item key", good[:nitemsOff+2+itemHeadBytes+4+2], ErrTruncated},
		{"truncated item vals", good[:len(good)-4], ErrTruncated},
		{"item count over data", mutate(good, nitemsOff, 0xFF), ErrTruncated},
		{"trailing after items", append(append([]byte(nil), good...), 0), ErrTrailing},
		{"items on non-batch op", append(AppendFrame(nil,
			&Frame{Op: OpPut, Key: []byte("abcd")})[4:], 0, 0), ErrTrailing},
	}
	for _, tc := range cases {
		var f Frame
		err := DecodeFrame(tc.data, &f)
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: err %v, want %v", tc.name, err, tc.want)
		}
	}

	// An item count beyond MaxItems is rejected by the limit even when
	// the payload is large enough to look plausible.
	big := make([]byte, nitemsOff)
	copy(big, good[:nitemsOff])
	big = le.AppendUint16(big, MaxItems+1)
	big = append(big, make([]byte, MaxItems+1)...)
	var f Frame
	if err := DecodeFrame(big, &f); !errors.Is(err, ErrFieldTooLarge) {
		t.Errorf("item count over MaxItems: %v, want ErrFieldTooLarge", err)
	}
}

// TestReplayAllocationFlat replays a 10k-frame stream through one
// Reader and a reused Frame and requires the whole replay to stay
// allocation-flat: after the first pass has grown every buffer, further
// passes must not allocate per frame (the satellite regression test for
// the decoder's pooled, reused buffers).
func TestReplayAllocationFlat(t *testing.T) {
	var stream []byte
	for i := 0; i < 10_000; i++ {
		var f Frame
		switch i % 3 {
		case 0:
			f = Frame{Op: OpGet, Seq: uint64(i), Seg: 1, Cost: 1000,
				Key: []byte{byte(i), byte(i >> 8), 3, 4}}
		case 1:
			f = Frame{Op: OpPut, Seq: uint64(i), Seg: 1, Cost: 2000,
				Key: []byte{byte(i), byte(i >> 8), 3, 4}, Vals: []uint64{uint64(i), 7}}
		default:
			f = Frame{Op: OpMGet, Seq: uint64(i), Seg: 1, Items: []Item{
				{Key: []byte{byte(i), 1}}, {Key: []byte{byte(i), 2}}}}
		}
		stream = AppendFrame(stream, &f)
	}

	var f Frame
	replay := func() {
		r := NewReader(bytes.NewReader(stream))
		n := 0
		for {
			err := r.NextReused(&f)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("frame %d: %v", n, err)
			}
			n++
		}
		r.Release()
		if n != 10_000 {
			t.Fatalf("replayed %d frames, want 10000", n)
		}
	}
	replay() // grow buffers
	// Each replay may allocate the bytes.Reader and Reader themselves,
	// but nothing per frame: budget a handful of allocations for 10k
	// frames.
	if avg := testing.AllocsPerRun(5, replay); avg > 8 {
		t.Errorf("10k-frame replay: %.1f allocs, want <= 8 (allocation-flat)", avg)
	}
}

func mutate(data []byte, i int, b byte) []byte {
	cp := append([]byte(nil), data...)
	cp[i] = b
	return cp
}

func BenchmarkEncodeDecode(b *testing.B) {
	f := Frame{Op: OpPut, Seq: 42, Seg: 3, Cost: 12345,
		Key: bytes.Repeat([]byte{7}, 16), Vals: []uint64{1, 2}}
	var buf []byte
	var out Frame
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendFrame(buf[:0], &f)
		if err := DecodeFrame(buf[4:], &out); err != nil {
			b.Fatal(err)
		}
	}
}
