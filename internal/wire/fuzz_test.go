package wire

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzDecodeFrame is a native Go fuzz target (go test -fuzz=FuzzDecodeFrame)
// over the payload decoder — the one function in the subsystem that
// consumes bytes straight off the network. The properties:
//
//  1. DecodeFrame never panics, whatever the bytes (the harness catches
//     panics as crashes).
//  2. If a payload decodes, re-encoding the decoded frame and decoding
//     again yields an identical frame (decode∘encode∘decode is stable),
//     and the re-encoded payload is canonical — it equals the input.
//     Together these mean decode(encode(f)) == f for every reachable
//     frame and that no two distinct valid payloads alias one frame.
func FuzzDecodeFrame(f *testing.F) {
	for _, s := range sampleFrames() {
		f.Add(AppendFrame(nil, &s)[4:])
	}
	// A few deliberately broken seeds so the corpus starts on the error
	// paths too.
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, headerBytes))
	f.Add(append(AppendFrame(nil, &Frame{Op: OpGet})[4:], 0x00))
	// Batch-op error paths: a truncated item section and a batch section
	// glued onto a non-batch op.
	mput := AppendFrame(nil, &Frame{Op: OpMPut, Items: []Item{
		{Cost: 9, Key: []byte("key"), Vals: []uint64{1}}}})[4:]
	f.Add(mput[:len(mput)-5])
	f.Add(append(AppendFrame(nil, &Frame{Op: OpPut})[4:], 0x01, 0x00))
	// A traced frame truncated inside its TraceID section.
	traced := AppendFrame(nil, &Frame{Op: OpGet, Flags: FlagTraced,
		TraceID: 0x1234, Key: []byte("key")})[4:]
	f.Add(traced[:headerBytes+3])

	f.Fuzz(func(t *testing.T, data []byte) {
		var fr Frame
		if err := DecodeFrame(data, &fr); err != nil {
			return // corrupt input must error, not panic — nothing more to check
		}
		reenc := AppendFrame(nil, &fr)[4:]
		if !bytes.Equal(reenc, data) {
			t.Fatalf("re-encode not canonical:\n in  %x\n out %x", data, reenc)
		}
		var fr2 Frame
		if err := DecodeFrame(reenc, &fr2); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(fr, fr2) {
			t.Fatalf("decode/encode/decode drift:\n first  %+v\n second %+v", fr, fr2)
		}
	})
}
