// Package wire is the binary protocol of the remote reuse-cache tier
// (crcserve): a compact length-prefixed frame codec carrying segment
// registrations, probes, records, flushes and statistics between a
// client fleet and one shared reuse-table server.
//
// Every message is one Frame. Requests and responses share the layout;
// FlagResp distinguishes them, and Seq matches a response to its request
// so many requests can be pipelined on one connection without waiting.
// The encoding is fixed little-endian with explicit length prefixes —
// no reflection, no allocation beyond the payload slices — and every
// variable-length field is bounds-checked on decode so a corrupt or
// hostile frame errors out instead of panicking or over-allocating.
//
// The Cost field carries the paper's cost-model quantities over the
// wire: on a PUT it is the client-measured computation cost C of the
// recorded segment in nanoseconds; on a GET it is the client's smoothed
// round-trip estimate, which the server folds into its measured lookup
// overhead O. Those two numbers, together with the server's own
// hit/miss counters (R), drive the online admission governor — the
// paper's formula 3, R·C − O > 0, evaluated live per segment.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Op identifies a frame's operation.
type Op uint8

// Frame operations.
const (
	// OpHello registers (or looks up) a named segment on the server.
	// Name carries the segment name; Vals carries [entries, lru] — the
	// requested table bound (0 = unbounded) and replacement policy.
	// The response's Seg is the server-assigned segment id.
	OpHello Op = iota + 1
	// OpGet probes the segment's reuse table with Key. Cost carries the
	// client's smoothed RTT estimate in nanoseconds (0 = unknown). The
	// response carries FlagHit and the stored Vals on a hit, FlagBypass
	// when the governor has turned the segment off.
	OpGet
	// OpPut records Vals as the outputs computed for Key. Cost carries
	// the client-measured computation cost C in nanoseconds. The
	// response acknowledges (FlagBypass when the segment is bypassed and
	// the record was dropped).
	OpPut
	// OpFlush empties the segment's table and zeroes its statistics.
	OpFlush
	// OpStats asks for the segment's live counters; the response's Vals
	// hold them in StatsVals order.
	OpStats
	// OpMGet probes many keys of one segment in a single frame: the
	// request's Items carry the keys, the response's Items carry each
	// probe's outcome (per-item FlagHit plus the stored Vals on a hit).
	// Cost carries the client RTT estimate, as on GET; the server
	// amortizes it across the batch when it charges overhead O. One MGET
	// costs one round trip however many concurrent misses it coalesces.
	OpMGet
	// OpMPut records many key→outputs pairs of one segment in a single
	// frame: the request's Items carry per-item Cost (the measured C of
	// that computation), Key and Vals. The response acknowledges the
	// whole batch (FlagBypass when the segment is bypassed and the
	// records were dropped); it carries no items.
	OpMPut
	opMax
)

var opNames = [...]string{"invalid", "HELLO", "GET", "PUT", "FLUSH", "STATS", "MGET", "MPUT"}

// Batch reports whether frames with this op carry the per-item section.
func (o Op) Batch() bool { return o == OpMGet || o == OpMPut }

// String returns the operation mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Frame flags.
const (
	// FlagResp marks a response frame.
	FlagResp uint8 = 1 << iota
	// FlagHit marks a GET response served from the table.
	FlagHit
	// FlagBypass marks a response for a segment the admission governor
	// has turned off: the client should compute locally and stop
	// sending PUTs until the segment is readmitted.
	FlagBypass
	// FlagErr marks an error response; Name carries the message.
	FlagErr
	// FlagTraced marks a frame carrying a TraceID: the encoding gains 8
	// bytes immediately after Cost. Untraced frames encode exactly as
	// before the flag existed, so the canonical form of pre-tracing
	// traffic is unchanged.
	FlagTraced
)

// Decode limits: a frame that claims more than these is corrupt (or
// hostile) and is rejected before any allocation is sized from it.
const (
	// MaxKey is the largest accepted key, in bytes.
	MaxKey = 1 << 20
	// MaxVals is the largest accepted output vector, in words.
	MaxVals = 1 << 16
	// MaxName is the largest accepted segment/error name, in bytes.
	MaxName = 1 << 10
	// MaxItems is the largest accepted batch, in items.
	MaxItems = 1 << 12
	// MaxFrame is the largest accepted payload, in bytes.
	MaxFrame = 1 << 24
)

// Frame is one protocol message. All operations share the layout;
// fields an operation does not use stay zero and cost nothing beyond
// their fixed header bytes.
type Frame struct {
	// Op is the operation.
	Op Op
	// Flags carries the Flag* bits.
	Flags uint8
	// Seg is the server-assigned segment id (assigned by HELLO).
	Seg uint32
	// Seq matches a response to its pipelined request.
	Seq uint64
	// Cost is a nanosecond quantity: C on PUT, the client RTT estimate
	// on GET (see the package comment).
	Cost uint64
	// TraceID stitches this request into a distributed trace (see
	// internal/obs). It is carried on the wire only when Flags has
	// FlagTraced set; otherwise it is zero and costs no bytes. Use
	// SetTrace to keep the field and the flag consistent.
	TraceID uint64
	// Name is the segment name (HELLO) or error text (FlagErr).
	Name string
	// Key is the input-pattern key bytes.
	Key []byte
	// Vals are output words (PUT/GET-hit) or counters (STATS, HELLO).
	Vals []uint64
	// Items is the batch section, present only on MGET/MPUT frames
	// (Op.Batch()); it is ignored by the encoder and cleared by the
	// decoder for every other op.
	Items []Item
}

// Item is one entry of a batch frame. On an MGET request only Key is
// set; on an MGET response Flags carries the per-item FlagHit and Vals
// the stored outputs. On an MPUT request Cost is the measured
// computation cost C of that item, in nanoseconds.
type Item struct {
	// Flags carries per-item Flag* bits (FlagHit on MGET responses).
	Flags uint8
	// Cost is the per-item nanosecond cost (C on MPUT items).
	Cost uint64
	// Key is the item's input-pattern key bytes.
	Key []byte
	// Vals are the item's output words.
	Vals []uint64
}

// IsResp reports whether the frame is a response.
func (f *Frame) IsResp() bool { return f.Flags&FlagResp != 0 }

// SetTrace stores id and keeps FlagTraced in sync: a nonzero id sets
// the flag (the encoding gains the 8-byte TraceID section), zero clears
// both, so untraced frames keep the pre-tracing canonical encoding.
func (f *Frame) SetTrace(id uint64) {
	f.TraceID = id
	if id != 0 {
		f.Flags |= FlagTraced
	} else {
		f.Flags &^= FlagTraced
	}
}

// Err returns the error a FlagErr response carries, or nil.
func (f *Frame) Err() error {
	if f.Flags&FlagErr == 0 {
		return nil
	}
	return fmt.Errorf("%s: %s", f.Op, f.Name)
}

// StatsVals indexes into a STATS response's Vals.
const (
	StatsProbes = iota
	StatsHits
	StatsMisses
	StatsRecords
	StatsDistinct
	StatsResident
	StatsBypassed // requests answered with FlagBypass
	StatsState    // 0 = admitted, 1 = bypassed
	StatsR        // reuse rate R scaled by 1e6
	StatsC        // smoothed client-reported C, ns
	StatsO        // smoothed measured lookup+RTT overhead O, ns
	StatsLen      // number of counters
)

// Payload layout after the uint32 length prefix:
//
//	op      uint8
//	flags   uint8
//	seg     uint32
//	seq     uint64
//	cost    uint64
//	traceID uint64   — present only when flags has FlagTraced
//	nameLen uint16, name bytes
//	keyLen  uint32, key bytes
//	nvals   uint16, vals (uint64 each)
//
// Batch ops (MGET/MPUT) append one more section — absent for every
// other op, so pre-batch encodings remain canonical:
//
//	nitems  uint16, then per item:
//	  flags  uint8
//	  cost   uint64
//	  keyLen uint32, key bytes
//	  nvals  uint16, vals (uint64 each)
const headerBytes = 1 + 1 + 4 + 8 + 8

// itemHeadBytes is the fixed per-item prefix (flags + cost).
const itemHeadBytes = 1 + 8

var le = binary.LittleEndian

// Errors returned by the decoder.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrame")
	ErrTruncated     = errors.New("wire: truncated frame")
	ErrBadOp         = errors.New("wire: unknown op")
	ErrFieldTooLarge = errors.New("wire: field exceeds its limit")
	ErrTrailing      = errors.New("wire: trailing bytes after frame")
)

// AppendFrame appends f's encoding — length prefix included — to buf
// and returns the extended slice.
func AppendFrame(buf []byte, f *Frame) []byte {
	payload := headerBytes + 2 + len(f.Name) + 4 + len(f.Key) + 2 + 8*len(f.Vals)
	if f.Flags&FlagTraced != 0 {
		payload += 8
	}
	if f.Op.Batch() {
		payload += 2
		for i := range f.Items {
			it := &f.Items[i]
			payload += itemHeadBytes + 4 + len(it.Key) + 2 + 8*len(it.Vals)
		}
	}
	buf = le.AppendUint32(buf, uint32(payload))
	buf = append(buf, byte(f.Op), f.Flags)
	buf = le.AppendUint32(buf, f.Seg)
	buf = le.AppendUint64(buf, f.Seq)
	buf = le.AppendUint64(buf, f.Cost)
	if f.Flags&FlagTraced != 0 {
		buf = le.AppendUint64(buf, f.TraceID)
	}
	buf = le.AppendUint16(buf, uint16(len(f.Name)))
	buf = append(buf, f.Name...)
	buf = le.AppendUint32(buf, uint32(len(f.Key)))
	buf = append(buf, f.Key...)
	buf = le.AppendUint16(buf, uint16(len(f.Vals)))
	for _, v := range f.Vals {
		buf = le.AppendUint64(buf, v)
	}
	if f.Op.Batch() {
		buf = le.AppendUint16(buf, uint16(len(f.Items)))
		for i := range f.Items {
			it := &f.Items[i]
			buf = append(buf, it.Flags)
			buf = le.AppendUint64(buf, it.Cost)
			buf = le.AppendUint32(buf, uint32(len(it.Key)))
			buf = append(buf, it.Key...)
			buf = le.AppendUint16(buf, uint16(len(it.Vals)))
			for _, v := range it.Vals {
				buf = le.AppendUint64(buf, v)
			}
		}
	}
	return buf
}

// DecodeFrame decodes one payload (the bytes after the length prefix)
// into f. The Name, Key and Vals fields are copied out of data, so the
// caller may reuse its buffer. Every length is validated before use;
// corrupt input returns an error, never a panic.
func DecodeFrame(data []byte, f *Frame) error {
	if len(data) > MaxFrame {
		return ErrFrameTooLarge
	}
	if len(data) < headerBytes {
		return ErrTruncated
	}
	op := Op(data[0])
	if op == 0 || op >= opMax {
		return fmt.Errorf("%w: %d", ErrBadOp, data[0])
	}
	f.Op = op
	f.Flags = data[1]
	f.Seg = le.Uint32(data[2:])
	f.Seq = le.Uint64(data[6:])
	f.Cost = le.Uint64(data[14:])
	rest := data[headerBytes:]

	if f.Flags&FlagTraced != 0 {
		if len(rest) < 8 {
			return ErrTruncated
		}
		f.TraceID = le.Uint64(rest)
		rest = rest[8:]
	} else {
		f.TraceID = 0
	}

	nameLen, rest, err := takeLen(rest, 2, MaxName)
	if err != nil {
		return err
	}
	f.Name = string(rest[:nameLen])
	rest = rest[nameLen:]

	keyLen, rest, err := takeLen(rest, 4, MaxKey)
	if err != nil {
		return err
	}
	f.Key = append(f.Key[:0], rest[:keyLen]...)
	if keyLen == 0 {
		f.Key = nil
	}
	rest = rest[keyLen:]

	nvals, rest, err := takeLen(rest, 2, MaxVals)
	if err != nil {
		return err
	}
	if len(rest) < 8*nvals {
		return ErrTruncated
	}
	if nvals == 0 {
		f.Vals = nil
	} else {
		if cap(f.Vals) < nvals {
			f.Vals = make([]uint64, nvals)
		}
		f.Vals = f.Vals[:nvals]
		for i := 0; i < nvals; i++ {
			f.Vals[i] = le.Uint64(rest[8*i:])
		}
	}
	rest = rest[8*nvals:]

	if !op.Batch() {
		f.Items = nil
		if len(rest) != 0 {
			return ErrTrailing
		}
		return nil
	}

	nitems, rest, err := takeLen(rest, 2, MaxItems)
	if err != nil {
		return err
	}
	if nitems == 0 {
		f.Items = nil
	} else {
		if cap(f.Items) < nitems {
			// Carry forward the items already held so their Key/Vals
			// buffers stay reusable after the growth.
			grown := make([]Item, nitems)
			copy(grown, f.Items[:cap(f.Items)])
			f.Items = grown
		}
		f.Items = f.Items[:nitems]
	}
	for i := 0; i < nitems; i++ {
		rest, err = decodeItem(rest, &f.Items[i])
		if err != nil {
			return err
		}
	}
	if len(rest) != 0 {
		return ErrTrailing
	}
	return nil
}

// decodeItem decodes one batch item from the front of data, reusing
// its Key and Vals capacity, and returns the remaining bytes.
func decodeItem(data []byte, it *Item) ([]byte, error) {
	if len(data) < itemHeadBytes {
		return nil, ErrTruncated
	}
	it.Flags = data[0]
	it.Cost = le.Uint64(data[1:])
	rest := data[itemHeadBytes:]

	keyLen, rest, err := takeLen(rest, 4, MaxKey)
	if err != nil {
		return nil, err
	}
	it.Key = append(it.Key[:0], rest[:keyLen]...)
	if keyLen == 0 {
		it.Key = nil
	}
	rest = rest[keyLen:]

	nvals, rest, err := takeLen(rest, 2, MaxVals)
	if err != nil {
		return nil, err
	}
	if len(rest) < 8*nvals {
		return nil, ErrTruncated
	}
	if nvals == 0 {
		it.Vals = nil
	} else {
		if cap(it.Vals) < nvals {
			it.Vals = make([]uint64, nvals)
		}
		it.Vals = it.Vals[:nvals]
		for i := 0; i < nvals; i++ {
			it.Vals[i] = le.Uint64(rest[8*i:])
		}
	}
	return rest[8*nvals:], nil
}

// takeLen reads a width-byte little-endian length from the front of
// data, validates it against limit and the remaining bytes, and returns
// the length together with the slice after the prefix.
func takeLen(data []byte, width, limit int) (int, []byte, error) {
	if len(data) < width {
		return 0, nil, ErrTruncated
	}
	var n int
	switch width {
	case 2:
		n = int(le.Uint16(data))
	default:
		n = int(le.Uint32(data))
	}
	if n > limit {
		return 0, nil, fmt.Errorf("%w: %d > %d", ErrFieldTooLarge, n, limit)
	}
	rest := data[width:]
	if len(rest) < n {
		return 0, nil, ErrTruncated
	}
	return n, rest, nil
}

// Payload buffers are pooled in power-of-two size classes so the
// per-connection Readers of a churning client fleet reuse each other's
// buffers instead of each growing its own: a freshly accepted
// connection's first big frame is served from a previous connection's
// buffer. Within one Reader the buffer is still sticky — the pool is
// only consulted when the buffer must grow, and only exact
// class-capacity buffers are accepted back, so foreign slices cannot
// poison a class.
var bufClassSizes = [...]int{1 << 8, 1 << 12, 1 << 16, 1 << 20, MaxFrame}

var bufPools [len(bufClassSizes)]sync.Pool

// grabBuf returns a length-n buffer from the smallest fitting size
// class (freshly allocated at class capacity when the pool is empty).
func grabBuf(n int) []byte {
	for i, size := range bufClassSizes {
		if n <= size {
			if b, ok := bufPools[i].Get().(*[]byte); ok {
				return (*b)[:n]
			}
			return make([]byte, n, size)
		}
	}
	return make([]byte, n) // larger than MaxFrame: caller already rejected
}

// releaseBuf returns a buffer to its size-class pool. Buffers whose
// capacity is not an exact class size (including nil) are dropped.
func releaseBuf(b []byte) {
	for i, size := range bufClassSizes {
		if cap(b) == size {
			b = b[:0]
			bufPools[i].Put(&b)
			return
		}
	}
}

// Reader decodes frames from a stream, reusing one payload buffer
// across frames (drawn from the package's size-classed pool when it
// must grow). It is not safe for concurrent use; a connection owns one
// Reader on its read side and should Release it when the connection
// closes.
type Reader struct {
	r   io.Reader
	buf []byte
	len [4]byte
	// scr retains the Frame field buffers across NextReused calls:
	// DecodeFrame nils an empty field (part of its public contract),
	// which would discard the capacity a frame of a different shape grew
	// — e.g. a GET (key, no vals) after a PUT (key and vals) would drop
	// the vals buffer and force the next PUT to reallocate it.
	// NextReused lends these to the frame before decoding and stashes
	// back whatever the frame holds afterwards, so an alternating-shape
	// stream stays allocation-free in steady state.
	scr struct {
		key   []byte
		vals  []uint64
		items []Item
	}
}

// NewReader wraps r. For performance the caller should hand in a
// buffered reader; Reader adds no buffering of its own.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// Next reads one frame into f. io.EOF is returned verbatim on a clean
// end-of-stream boundary; a stream that ends inside a frame returns
// io.ErrUnexpectedEOF.
func (r *Reader) Next(f *Frame) error {
	if _, err := io.ReadFull(r.r, r.len[:]); err != nil {
		return err
	}
	n := int(le.Uint32(r.len[:]))
	if n > MaxFrame {
		return ErrFrameTooLarge
	}
	if cap(r.buf) < n {
		releaseBuf(r.buf)
		r.buf = grabBuf(n)
	}
	r.buf = r.buf[:n]
	if _, err := io.ReadFull(r.r, r.buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return err
	}
	return DecodeFrame(r.buf, f)
}

// NextReused reads like Next but additionally retains the frame's
// variable-length buffers across calls, so a stream of frames with
// alternating shapes decodes without per-frame allocations. The decoded
// fields are valid only until the next NextReused call on this Reader —
// use plain Next when decoded frames are handed to another goroutine or
// otherwise outlive the loop iteration (the server's pooled-frame
// pipeline does; a client's single-frame response loop does not).
func (r *Reader) NextReused(f *Frame) error {
	if f.Key == nil {
		f.Key = r.scr.key
	}
	if f.Vals == nil {
		f.Vals = r.scr.vals
	}
	if f.Items == nil {
		f.Items = r.scr.items
	}
	err := r.Next(f)
	if f.Key != nil {
		r.scr.key = f.Key
	}
	if f.Vals != nil {
		r.scr.vals = f.Vals
	}
	if f.Items != nil {
		r.scr.items = f.Items
	}
	return err
}

// Release returns the Reader's payload buffer to the package pool for
// the next connection's Reader. The Reader remains usable (it will
// re-grab a buffer on demand); call it once the stream is done.
func (r *Reader) Release() {
	releaseBuf(r.buf)
	r.buf = nil
}

// Writer encodes frames onto a stream, reusing one encode buffer. It is
// not safe for concurrent use; a connection owns one Writer on its
// write side (the server's per-connection writer goroutine, which also
// batches: it encodes frames back-to-back and flushes once per drain).
type Writer struct {
	w   io.Writer
	buf []byte
}

// NewWriter wraps w (typically a bufio.Writer whose Flush the caller
// controls, so pipelined responses coalesce into few syscalls).
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Write encodes and writes one frame.
func (w *Writer) Write(f *Frame) error {
	w.buf = AppendFrame(w.buf[:0], f)
	_, err := w.w.Write(w.buf)
	return err
}
