// Package wire is the binary protocol of the remote reuse-cache tier
// (crcserve): a compact length-prefixed frame codec carrying segment
// registrations, probes, records, flushes and statistics between a
// client fleet and one shared reuse-table server.
//
// Every message is one Frame. Requests and responses share the layout;
// FlagResp distinguishes them, and Seq matches a response to its request
// so many requests can be pipelined on one connection without waiting.
// The encoding is fixed little-endian with explicit length prefixes —
// no reflection, no allocation beyond the payload slices — and every
// variable-length field is bounds-checked on decode so a corrupt or
// hostile frame errors out instead of panicking or over-allocating.
//
// The Cost field carries the paper's cost-model quantities over the
// wire: on a PUT it is the client-measured computation cost C of the
// recorded segment in nanoseconds; on a GET it is the client's smoothed
// round-trip estimate, which the server folds into its measured lookup
// overhead O. Those two numbers, together with the server's own
// hit/miss counters (R), drive the online admission governor — the
// paper's formula 3, R·C − O > 0, evaluated live per segment.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Op identifies a frame's operation.
type Op uint8

// Frame operations.
const (
	// OpHello registers (or looks up) a named segment on the server.
	// Name carries the segment name; Vals carries [entries, lru] — the
	// requested table bound (0 = unbounded) and replacement policy.
	// The response's Seg is the server-assigned segment id.
	OpHello Op = iota + 1
	// OpGet probes the segment's reuse table with Key. Cost carries the
	// client's smoothed RTT estimate in nanoseconds (0 = unknown). The
	// response carries FlagHit and the stored Vals on a hit, FlagBypass
	// when the governor has turned the segment off.
	OpGet
	// OpPut records Vals as the outputs computed for Key. Cost carries
	// the client-measured computation cost C in nanoseconds. The
	// response acknowledges (FlagBypass when the segment is bypassed and
	// the record was dropped).
	OpPut
	// OpFlush empties the segment's table and zeroes its statistics.
	OpFlush
	// OpStats asks for the segment's live counters; the response's Vals
	// hold them in StatsVals order.
	OpStats
	opMax
)

var opNames = [...]string{"invalid", "HELLO", "GET", "PUT", "FLUSH", "STATS"}

// String returns the operation mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Frame flags.
const (
	// FlagResp marks a response frame.
	FlagResp uint8 = 1 << iota
	// FlagHit marks a GET response served from the table.
	FlagHit
	// FlagBypass marks a response for a segment the admission governor
	// has turned off: the client should compute locally and stop
	// sending PUTs until the segment is readmitted.
	FlagBypass
	// FlagErr marks an error response; Name carries the message.
	FlagErr
)

// Decode limits: a frame that claims more than these is corrupt (or
// hostile) and is rejected before any allocation is sized from it.
const (
	// MaxKey is the largest accepted key, in bytes.
	MaxKey = 1 << 20
	// MaxVals is the largest accepted output vector, in words.
	MaxVals = 1 << 16
	// MaxName is the largest accepted segment/error name, in bytes.
	MaxName = 1 << 10
	// MaxFrame is the largest accepted payload, in bytes.
	MaxFrame = 1 << 24
)

// Frame is one protocol message. All operations share the layout;
// fields an operation does not use stay zero and cost nothing beyond
// their fixed header bytes.
type Frame struct {
	// Op is the operation.
	Op Op
	// Flags carries the Flag* bits.
	Flags uint8
	// Seg is the server-assigned segment id (assigned by HELLO).
	Seg uint32
	// Seq matches a response to its pipelined request.
	Seq uint64
	// Cost is a nanosecond quantity: C on PUT, the client RTT estimate
	// on GET (see the package comment).
	Cost uint64
	// Name is the segment name (HELLO) or error text (FlagErr).
	Name string
	// Key is the input-pattern key bytes.
	Key []byte
	// Vals are output words (PUT/GET-hit) or counters (STATS, HELLO).
	Vals []uint64
}

// IsResp reports whether the frame is a response.
func (f *Frame) IsResp() bool { return f.Flags&FlagResp != 0 }

// Err returns the error a FlagErr response carries, or nil.
func (f *Frame) Err() error {
	if f.Flags&FlagErr == 0 {
		return nil
	}
	return fmt.Errorf("%s: %s", f.Op, f.Name)
}

// StatsVals indexes into a STATS response's Vals.
const (
	StatsProbes = iota
	StatsHits
	StatsMisses
	StatsRecords
	StatsDistinct
	StatsResident
	StatsBypassed // requests answered with FlagBypass
	StatsState    // 0 = admitted, 1 = bypassed
	StatsR        // reuse rate R scaled by 1e6
	StatsC        // smoothed client-reported C, ns
	StatsO        // smoothed measured lookup+RTT overhead O, ns
	StatsLen      // number of counters
)

// Payload layout after the uint32 length prefix:
//
//	op      uint8
//	flags   uint8
//	seg     uint32
//	seq     uint64
//	cost    uint64
//	nameLen uint16, name bytes
//	keyLen  uint32, key bytes
//	nvals   uint16, vals (uint64 each)
const headerBytes = 1 + 1 + 4 + 8 + 8

var le = binary.LittleEndian

// Errors returned by the decoder.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrame")
	ErrTruncated     = errors.New("wire: truncated frame")
	ErrBadOp         = errors.New("wire: unknown op")
	ErrFieldTooLarge = errors.New("wire: field exceeds its limit")
	ErrTrailing      = errors.New("wire: trailing bytes after frame")
)

// AppendFrame appends f's encoding — length prefix included — to buf
// and returns the extended slice.
func AppendFrame(buf []byte, f *Frame) []byte {
	payload := headerBytes + 2 + len(f.Name) + 4 + len(f.Key) + 2 + 8*len(f.Vals)
	buf = le.AppendUint32(buf, uint32(payload))
	buf = append(buf, byte(f.Op), f.Flags)
	buf = le.AppendUint32(buf, f.Seg)
	buf = le.AppendUint64(buf, f.Seq)
	buf = le.AppendUint64(buf, f.Cost)
	buf = le.AppendUint16(buf, uint16(len(f.Name)))
	buf = append(buf, f.Name...)
	buf = le.AppendUint32(buf, uint32(len(f.Key)))
	buf = append(buf, f.Key...)
	buf = le.AppendUint16(buf, uint16(len(f.Vals)))
	for _, v := range f.Vals {
		buf = le.AppendUint64(buf, v)
	}
	return buf
}

// DecodeFrame decodes one payload (the bytes after the length prefix)
// into f. The Name, Key and Vals fields are copied out of data, so the
// caller may reuse its buffer. Every length is validated before use;
// corrupt input returns an error, never a panic.
func DecodeFrame(data []byte, f *Frame) error {
	if len(data) > MaxFrame {
		return ErrFrameTooLarge
	}
	if len(data) < headerBytes {
		return ErrTruncated
	}
	op := Op(data[0])
	if op == 0 || op >= opMax {
		return fmt.Errorf("%w: %d", ErrBadOp, data[0])
	}
	f.Op = op
	f.Flags = data[1]
	f.Seg = le.Uint32(data[2:])
	f.Seq = le.Uint64(data[6:])
	f.Cost = le.Uint64(data[14:])
	rest := data[headerBytes:]

	nameLen, rest, err := takeLen(rest, 2, MaxName)
	if err != nil {
		return err
	}
	f.Name = string(rest[:nameLen])
	rest = rest[nameLen:]

	keyLen, rest, err := takeLen(rest, 4, MaxKey)
	if err != nil {
		return err
	}
	f.Key = append(f.Key[:0], rest[:keyLen]...)
	if keyLen == 0 {
		f.Key = nil
	}
	rest = rest[keyLen:]

	nvals, rest, err := takeLen(rest, 2, MaxVals)
	if err != nil {
		return err
	}
	if len(rest) < 8*nvals {
		return ErrTruncated
	}
	if nvals == 0 {
		f.Vals = nil
	} else {
		if cap(f.Vals) < nvals {
			f.Vals = make([]uint64, nvals)
		}
		f.Vals = f.Vals[:nvals]
		for i := 0; i < nvals; i++ {
			f.Vals[i] = le.Uint64(rest[8*i:])
		}
	}
	if len(rest) != 8*nvals {
		return ErrTrailing
	}
	return nil
}

// takeLen reads a width-byte little-endian length from the front of
// data, validates it against limit and the remaining bytes, and returns
// the length together with the slice after the prefix.
func takeLen(data []byte, width, limit int) (int, []byte, error) {
	if len(data) < width {
		return 0, nil, ErrTruncated
	}
	var n int
	switch width {
	case 2:
		n = int(le.Uint16(data))
	default:
		n = int(le.Uint32(data))
	}
	if n > limit {
		return 0, nil, fmt.Errorf("%w: %d > %d", ErrFieldTooLarge, n, limit)
	}
	rest := data[width:]
	if len(rest) < n {
		return 0, nil, ErrTruncated
	}
	return n, rest, nil
}

// Reader decodes frames from a stream, reusing one payload buffer
// across frames. It is not safe for concurrent use; a connection owns
// one Reader on its read side.
type Reader struct {
	r   io.Reader
	buf []byte
	len [4]byte
}

// NewReader wraps r. For performance the caller should hand in a
// buffered reader; Reader adds no buffering of its own.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// Next reads one frame into f. io.EOF is returned verbatim on a clean
// end-of-stream boundary; a stream that ends inside a frame returns
// io.ErrUnexpectedEOF.
func (r *Reader) Next(f *Frame) error {
	if _, err := io.ReadFull(r.r, r.len[:]); err != nil {
		return err
	}
	n := int(le.Uint32(r.len[:]))
	if n > MaxFrame {
		return ErrFrameTooLarge
	}
	if cap(r.buf) < n {
		r.buf = make([]byte, n)
	}
	r.buf = r.buf[:n]
	if _, err := io.ReadFull(r.r, r.buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return err
	}
	return DecodeFrame(r.buf, f)
}

// Writer encodes frames onto a stream, reusing one encode buffer. It is
// not safe for concurrent use; a connection owns one Writer on its
// write side (the server's per-connection writer goroutine, which also
// batches: it encodes frames back-to-back and flushes once per drain).
type Writer struct {
	w   io.Writer
	buf []byte
}

// NewWriter wraps w (typically a bufio.Writer whose Flush the caller
// controls, so pipelined responses coalesce into few syscalls).
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Write encodes and writes one frame.
func (w *Writer) Write(f *Frame) error {
	w.buf = AppendFrame(w.buf[:0], f)
	_, err := w.w.Write(w.buf)
	return err
}
