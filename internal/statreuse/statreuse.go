// Package statreuse predicts a code segment's reuse rate statically —
// R̂, an estimate of the paper's R = 1 − N_ds/N — from the facts the
// segment analysis already computed, without running the value-set
// profiler. Value-set profiling is the most expensive stage of the
// pipeline (it interprets the whole training input once per candidate
// wave); following the static reuse-profile estimation line of work
// (arXiv 2411.13854, 2311.12883), the shape of the key inputs usually
// determines the repetition behavior well enough to seed an admission
// decision, which an online governor then corrects with live windows.
//
// The estimator classifies every hash-key input of a segment:
//
//   - streaming: the input's value provably never (or almost never)
//     repeats across instances — a self-recurrent accumulator
//     (x++, x = x op …, an LCG state) that is seeded at most once and
//     then only advances, or a variable rewritten every instance from
//     such a source. One streaming input forces N_ds ≈ N, so R̂ = 0.
//     This is the single most decisive fact: in the benchmark suite it
//     explains every segment the profiler measures at R = 0.
//   - bounded: the input provably lives in a small integer domain — a
//     quantizing `% k` / `& mask` write reaches it on every path (GNUGO
//     feature(p,dir) returns v % 20, so accumulate_influence's four
//     parameters each carry at most 20 values). When every input is
//     bounded the joint live-in set saturates quickly and repetition
//     dominates: R̂ = RBounded.
//   - element: a single array element arr[iv] keyed per iteration (the
//     UNEPIC pattern); repetition reflects the element-value
//     distribution, not the index stream.
//   - scalar int / scalar float / aggregate: everything else, by key
//     width and type. Narrow integer keys repeat heavily (G721's quan
//     sees the same 4-byte sample over and over); floating-point keys
//     repeat less (continuous domains); wide aggregate keys (MPEG2's
//     8×8 blocks) mostly miss.
//
// The per-class rates are calibrated once against the suite's profiled
// reuse rates (see the statreuse bench experiment and its golden test,
// which pin the mean absolute error). Known failure modes: non-affine
// index expressions hide the true key domain, correlated bounded inputs
// saturate far below the product of their domains (the estimator
// deliberately predicts saturation, not the product), and a
// self-recurrent variable whose recurrence is masked into a small
// domain (x = (x+1) & 7) cycles instead of streaming — masks up to
// boundedMax are therefore classified bounded, not streaming.
package statreuse

import (
	"sort"

	"compreuse/internal/minic"
	"compreuse/internal/segment"
)

// Calibrated per-class rates. These are suite-wide defaults, not
// per-program fits; the golden test pins the resulting error.
const (
	// RBounded is R̂ when every key input is a small-domain integer.
	RBounded = 0.95
	// RScalarInt is R̂ for keys of narrow integer scalars.
	RScalarInt = 0.80
	// RScalarFloat is R̂ for a single floating-point scalar key.
	RScalarFloat = 0.65
	// RFloatMulti is R̂ for keys holding several floating-point scalars.
	RFloatMulti = 0.35
	// RParamRec is R̂ when a key input is a parameter the segment itself
	// rewrites self-recurrently (a range-reduction loop advancing its
	// own argument): the live-in value advances every instance, so
	// repetition happens only when entire calls repeat.
	RParamRec = 0.15
	// RElement is R̂ for single-array-element keys (arr[iv]).
	RElement = 0.45
	// RAggregate is R̂ for keys containing a whole array or struct.
	RAggregate = 0.20
	// boundedMax is the largest modulus/mask still treated as a small
	// bounded domain.
	boundedMax = 32
)

// Estimate is one segment's static reuse-rate prediction.
type Estimate struct {
	// R is the predicted reuse rate R̂ in [0,1].
	R float64
	// Class names the rule that produced R: "streaming", "bounded",
	// "param-recurrent", "aggregate", "element", "scalar-int",
	// "scalar-float", "float-multi".
	Class string
	// Streaming lists the key inputs classified as never-repeating
	// (empty unless Class == "streaming").
	Streaming []string
}

// Estimator precomputes program-wide value-flow facts once per
// analysis; Estimate is then cheap per segment.
type Estimator struct {
	an *segment.Analysis
	// streaming marks symbols whose value stream provably advances
	// monotonically (never revisits a value) for the whole run.
	streaming map[*minic.Symbol]bool
	// boundedSym maps symbols to a small static domain size when every
	// write quantizes into it.
	boundedSym map[*minic.Symbol]int64
	// boundedRet maps functions to the domain size of their return
	// value when provably small.
	boundedRet map[*minic.FuncDecl]int64
	// paramBound maps parameter symbols to a domain bound derived from
	// every call site.
	paramBound map[*minic.Symbol]int64
}

// write is one program point that stores into a symbol.
type write struct {
	sym *minic.Symbol
	// rhs is the stored expression (nil for ++/--, which read the
	// symbol by definition).
	rhs minic.Expr
	// selfRead marks x++ / x op= e / x = …x… recurrences.
	selfRead bool
	// oneShot marks writes that execute at most once per run: top-level
	// statements of main outside any loop (seeding, argument capture).
	oneShot bool
}

// New builds an estimator over one analyzed program.
func New(an *segment.Analysis) *Estimator {
	e := &Estimator{
		an:         an,
		streaming:  map[*minic.Symbol]bool{},
		boundedSym: map[*minic.Symbol]int64{},
		boundedRet: map[*minic.FuncDecl]int64{},
		paramBound: map[*minic.Symbol]int64{},
	}
	writes := e.collectWrites()
	e.seedStreaming(writes)
	e.propagateStreaming(writes)
	e.boundDomains(writes)
	return e
}

// EstimateAll returns the estimate for every eligible segment, keyed by
// segment name.
func EstimateAll(an *segment.Analysis) map[string]Estimate {
	e := New(an)
	out := map[string]Estimate{}
	for _, s := range an.Segments {
		if !s.Eligible {
			continue
		}
		out[s.Name] = e.Estimate(s)
	}
	return out
}

// Estimate predicts R̂ for one eligible segment.
func (e *Estimator) Estimate(s *segment.Segment) Estimate {
	bodyRec := selfRecurrentIn(s.Body)
	loopIV := e.oneShotLoopIV(s)
	var (
		streaming  []string
		paramRec   = false
		allBounded = true
		aggregate  = false
		element    = false
		floats     = 0
		scalars    = 0
	)
	for _, in := range s.Inputs {
		if in.Elem != nil {
			// Element key arr[iv]: the index stream is address-only,
			// repetition is a property of the element values. If the
			// array itself carries a value stream (refilled from an
			// advancing source between instances) the elements are fresh
			// every pass; an invariant array's element distribution is
			// what repeats.
			if e.isStreaming(in.Sym) && !e.an.InvariantFor(in.Sym, s) {
				streaming = append(streaming, in.Sym.Name)
				continue
			}
			element = true
			allBounded = false
			continue
		}
		if minic.IsAggregate(in.Sym.Type) {
			// A whole-aggregate key inherits the taint of its element
			// stores: an audio frame refilled from an LCG never repeats
			// as a unit.
			if e.isStreaming(in.Sym) {
				streaming = append(streaming, in.Sym.Name)
				continue
			}
			aggregate = true
			allBounded = false
			continue
		}
		scalars++
		if bodyRec[in.Sym] && in.Sym.Kind == minic.SymParam {
			// The segment advances its own parameter every instance
			// (a range-reduction loop on the argument): calls re-seed
			// it, so repetition degrades to call-level repetition.
			// Non-parameter body recurrences (Taylor accumulators
			// reseeded from constants before the loop) keep their
			// ordinary classification — their live-in stream repeats
			// whenever the reseeding values do.
			paramRec = true
			allBounded = false
			continue
		}
		if e.isStreaming(in.Sym) || in.Sym == loopIV {
			streaming = append(streaming, in.Sym.Name)
			continue
		}
		if _, ok := e.domainOf(in.Sym); !ok {
			allBounded = false
		}
		if isFloat(in.Sym.Type) {
			floats++
		}
	}
	if len(streaming) > 0 {
		sort.Strings(streaming)
		return Estimate{R: 0, Class: "streaming", Streaming: streaming}
	}
	if paramRec {
		return Estimate{R: RParamRec, Class: "param-recurrent"}
	}
	if allBounded && scalars > 0 {
		// Correlated quantized inputs saturate their joint domain far
		// below the product of the per-input bounds, so predict
		// saturation rather than multiplying domains.
		return Estimate{R: RBounded, Class: "bounded"}
	}
	switch {
	case aggregate:
		return Estimate{R: RAggregate, Class: "aggregate"}
	case element:
		return Estimate{R: RElement, Class: "element"}
	case floats == 0:
		return Estimate{R: RScalarInt, Class: "scalar-int"}
	case floats == 1 && scalars == 1:
		return Estimate{R: RScalarFloat, Class: "scalar-float"}
	default:
		return Estimate{R: RFloatMulti, Class: "float-multi"}
	}
}

// selfRecurrentIn returns the symbols body rewrites as a function of
// their own previous value (x++, x op= e, x = …x…).
func selfRecurrentIn(body minic.Stmt) map[*minic.Symbol]bool {
	rec := map[*minic.Symbol]bool{}
	minic.Inspect(body, func(n minic.Node) bool {
		switch x := n.(type) {
		case *minic.AssignExpr:
			id, ok := x.LHS.(*minic.Ident)
			if !ok || id.Sym == nil {
				return true
			}
			if x.Op != minic.Assign {
				rec[id.Sym] = true
				return true
			}
			for _, rid := range minic.Idents(x.RHS) {
				if rid.Sym == id.Sym {
					rec[id.Sym] = true
				}
			}
		case *minic.IncDec:
			if id, ok := x.X.(*minic.Ident); ok && id.Sym != nil {
				rec[id.Sym] = true
			}
		}
		return true
	})
	return rec
}

// oneShotLoopIV returns the enclosing loop's induction variable for a
// LoopBody segment whose loop provably executes at most once per run
// (top-level in main, or in a function with a single one-shot call
// site). Such a variable, used as a value, never repeats — init-style
// loops computing i-indexed tables have no reuse to find.
func (e *Estimator) oneShotLoopIV(s *segment.Segment) *minic.Symbol {
	if s.Kind != segment.LoopBody {
		return nil
	}
	f, ok := s.Parent.(*minic.ForStmt)
	if !ok {
		return nil
	}
	iv := forInductionVar(f)
	if iv == nil || !e.fnOneShot(s.Fn) || loopNested(s.Fn.Body, f) {
		return nil
	}
	return iv
}

// forInductionVar extracts the variable a canonical for-init seeds.
func forInductionVar(f *minic.ForStmt) *minic.Symbol {
	switch init := f.Init.(type) {
	case *minic.DeclStmt:
		if len(init.Decls) == 1 {
			return init.Decls[0].Sym
		}
	case *minic.ExprStmt:
		if as, ok := init.X.(*minic.AssignExpr); ok && as.Op == minic.Assign {
			if id, ok := as.LHS.(*minic.Ident); ok {
				return id.Sym
			}
		}
	}
	return nil
}

// loopNested reports whether target sits inside another loop in body.
func loopNested(body minic.Stmt, target *minic.ForStmt) bool {
	nested := false
	var walk func(st minic.Stmt, depth int)
	walk = func(st minic.Stmt, depth int) {
		if st == nil || nested {
			return
		}
		switch x := st.(type) {
		case *minic.Block:
			for _, y := range x.Stmts {
				walk(y, depth)
			}
		case *minic.IfStmt:
			walk(x.Then, depth)
			walk(x.Else, depth)
		case *minic.WhileStmt:
			walk(x.Body, depth+1)
		case *minic.ForStmt:
			if x == target {
				nested = depth > 0
				return
			}
			walk(x.Body, depth+1)
		}
	}
	walk(body, 0)
	return nested
}

// fnOneShot reports whether fn provably runs at most once per program
// run: it is main itself, or its only direct call site is a top-level
// non-loop statement of main and nothing else can reach it.
func (e *Estimator) fnOneShot(fn *minic.FuncDecl) bool {
	mainFn := e.an.Prog.Func("main")
	if fn == mainFn {
		return true
	}
	if fn.Sym != nil && fn.Sym.AddrTaken {
		return false
	}
	sites := 0
	oneShot := true
	for _, caller := range e.an.Prog.Funcs {
		if caller.Body == nil {
			continue
		}
		callerMain := caller == mainFn
		count := func(x minic.Expr, inLoop bool) {
			if x == nil {
				return
			}
			n := 0
			minic.InspectExprs(wrapExpr(x), func(ex minic.Expr) bool {
				if c, ok := ex.(*minic.Call); ok {
					if id, ok := c.Fun.(*minic.Ident); ok && id.Sym != nil && id.Sym.FuncDecl == fn {
						n++
					}
				}
				return true
			})
			if n == 0 {
				return
			}
			sites += n
			if !callerMain || inLoop {
				oneShot = false
			}
		}
		var walk func(st minic.Stmt, inLoop bool)
		walk = func(st minic.Stmt, inLoop bool) {
			switch x := st.(type) {
			case nil:
			case *minic.Block:
				for _, y := range x.Stmts {
					walk(y, inLoop)
				}
			case *minic.IfStmt:
				count(x.Cond, inLoop)
				walk(x.Then, inLoop)
				walk(x.Else, inLoop)
			case *minic.WhileStmt:
				count(x.Cond, true)
				walk(x.Body, true)
			case *minic.ForStmt:
				walk(x.Init, inLoop)
				count(x.Cond, true)
				count(x.Post, true)
				walk(x.Body, true)
			case *minic.DeclStmt:
				for _, d := range x.Decls {
					count(d.Init, inLoop)
				}
			case *minic.ExprStmt:
				count(x.X, inLoop)
			case *minic.ReturnStmt:
				count(x.X, inLoop)
			}
		}
		walk(caller.Body, false)
		if !oneShot {
			return false
		}
	}
	return sites == 1
}

// isStreaming reports whether sym's value stream never repeats.
func (e *Estimator) isStreaming(sym *minic.Symbol) bool { return e.streaming[sym] }

// domainOf returns the static domain bound of sym's values, if small.
func (e *Estimator) domainOf(sym *minic.Symbol) (int64, bool) {
	if d, ok := e.boundedSym[sym]; ok {
		return d, true
	}
	if d, ok := e.paramBound[sym]; ok {
		return d, true
	}
	return 0, false
}

// collectWrites scans every function body for stores into whole
// variables, tagging self-recurrence and one-shot (main, outside any
// loop) placement.
func (e *Estimator) collectWrites() []write {
	var out []write
	mainFn := e.an.Prog.Func("main")
	for _, fn := range e.an.Prog.Funcs {
		if fn.Body == nil {
			continue
		}
		e.walkWrites(fn.Body, fn == mainFn, &out)
	}
	// Global initializers are one-shot constant seeds; they introduce
	// no write record (a symbol with only its initializer never varies
	// and the invariance filter already drops it from keys).
	return out
}

// walkWrites visits stmt recording whole-variable stores; oneShot is
// true while we are in main outside any loop.
func (e *Estimator) walkWrites(st minic.Stmt, oneShot bool, out *[]write) {
	switch s := st.(type) {
	case nil:
		return
	case *minic.Block:
		for _, x := range s.Stmts {
			e.walkWrites(x, oneShot, out)
		}
		return
	case *minic.IfStmt:
		e.exprWrites(s.Cond, oneShot, out)
		e.walkWrites(s.Then, oneShot, out)
		e.walkWrites(s.Else, oneShot, out)
		return
	case *minic.WhileStmt:
		e.exprWrites(s.Cond, false, out)
		e.walkWrites(s.Body, false, out)
		return
	case *minic.ForStmt:
		// The init clause runs once per loop entry: it keeps the
		// enclosing one-shot-ness (a top-level `for (i = 0; …)` in main
		// seeds i exactly once).
		e.walkWrites(s.Init, oneShot, out)
		e.exprWrites(s.Cond, false, out)
		e.exprWrites(s.Post, false, out)
		e.walkWrites(s.Body, false, out)
		return
	case *minic.DeclStmt:
		for _, d := range s.Decls {
			if d.Init != nil {
				*out = append(*out, e.newWrite(d.Sym, d.Init, oneShot))
			}
		}
		return
	case *minic.ExprStmt:
		e.exprWrites(s.X, oneShot, out)
		return
	case *minic.ReturnStmt:
		e.exprWrites(s.X, oneShot, out)
		return
	default:
		// break/continue/empty — and ReuseRegion never appears in the
		// analyzed (pre-transform) program.
		return
	}
}

// exprWrites records whole-variable stores inside an expression tree.
func (e *Estimator) exprWrites(x minic.Expr, oneShot bool, out *[]write) {
	if x == nil {
		return
	}
	minic.InspectExprs(wrapExpr(x), func(ex minic.Expr) bool {
		switch a := ex.(type) {
		case *minic.AssignExpr:
			switch lhs := a.LHS.(type) {
			case *minic.Ident:
				if lhs.Sym != nil {
					w := e.newWrite(lhs.Sym, a.RHS, oneShot)
					if a.Op != minic.Assign {
						w.selfRead = true // x op= e reads x
					}
					*out = append(*out, w)
				}
			case *minic.Index:
				// Element store arr[i] = v: the array's contents carry
				// v's stream, so taint flows through it (grab_frame's
				// rng-filled audio frame makes every downstream
				// autocorrelation value fresh).
				if base, ok := lhs.X.(*minic.Ident); ok && base.Sym != nil {
					if _, isArr := base.Sym.Type.(*minic.Array); isArr {
						w := e.newWrite(base.Sym, a.RHS, oneShot)
						if a.Op != minic.Assign {
							w.selfRead = true
						}
						*out = append(*out, w)
					}
				}
			}
		case *minic.IncDec:
			if id, ok := a.X.(*minic.Ident); ok && id.Sym != nil {
				*out = append(*out, write{sym: id.Sym, selfRead: true, oneShot: oneShot})
			}
		}
		return true
	})
}

func (e *Estimator) newWrite(sym *minic.Symbol, rhs minic.Expr, oneShot bool) write {
	w := write{sym: sym, rhs: rhs, oneShot: oneShot}
	if rhs != nil {
		for _, id := range minic.Idents(rhs) {
			if id.Sym == sym {
				w.selfRead = true
			}
		}
	}
	return w
}

// wrapExpr adapts an expression to the statement-walking helpers.
func wrapExpr(x minic.Expr) minic.Stmt {
	return &minic.ExprStmt{X: x}
}

// seedStreaming marks the monotone recurrences: symbols with a
// self-recurrent write whose every other write is a one-shot seed, and
// whose recurrence is not masked into a small domain.
func (e *Estimator) seedStreaming(writes []write) {
	perSym := map[*minic.Symbol][]write{}
	for _, w := range writes {
		perSym[w.sym] = append(perSym[w.sym], w)
	}
	for sym, ws := range perSym {
		if sym.Kind == minic.SymParam {
			// Parameters are re-seeded by every call; an in-body
			// recurrence on one is handled per segment (RParamRec),
			// not as a program-wide stream.
			continue
		}
		selfRec, reseeded := false, false
		for _, w := range ws {
			if w.selfRead {
				if _, small := boundOf(w.rhs); small {
					// x = (x+1) & 7 cycles through 8 values; that is a
					// bounded domain, not a stream.
					continue
				}
				selfRec = true
			} else if !w.oneShot {
				// Re-seedable from elsewhere: values can repeat.
				reseeded = true
			}
		}
		if selfRec && !reseeded {
			e.streaming[sym] = true
		}
	}
}

// propagateStreaming closes the streaming set over assignments: a
// symbol rewritten (not one-shot) from a streaming source — directly or
// through a function's return value — streams too, unless the write
// quantizes into a small domain. Function returns stream when they read
// streaming state.
func (e *Estimator) propagateStreaming(writes []write) {
	fnStreams := map[*minic.FuncDecl]bool{}
	readsStreaming := func(x minic.Expr) bool {
		if x == nil {
			return false
		}
		found := false
		minic.InspectExprs(wrapExpr(x), func(ex minic.Expr) bool {
			switch v := ex.(type) {
			case *minic.Ident:
				if v.Sym != nil && e.streaming[v.Sym] {
					found = true
				}
			case *minic.Call:
				if id, ok := v.Fun.(*minic.Ident); ok && id.Sym != nil && id.Sym.FuncDecl != nil {
					if fnStreams[id.Sym.FuncDecl] {
						found = true
					}
				}
			}
			return !found
		})
		return found
	}
	for changed := true; changed; {
		changed = false
		// Functions whose return value carries streaming state.
		for _, fn := range e.an.Prog.Funcs {
			if fn.Body == nil || fnStreams[fn] {
				continue
			}
			stream := false
			minic.InspectStmts(fn.Body, func(st minic.Stmt) bool {
				if r, ok := st.(*minic.ReturnStmt); ok && r.X != nil {
					if _, small := boundOf(r.X); !small && readsStreaming(r.X) {
						stream = true
					}
				}
				return !stream
			})
			if stream {
				fnStreams[fn] = true
				changed = true
			}
		}
		for _, w := range writes {
			if w.oneShot || w.rhs == nil || e.streaming[w.sym] {
				continue
			}
			if _, small := boundOf(w.rhs); small {
				continue
			}
			if readsStreaming(w.rhs) {
				e.streaming[w.sym] = true
				changed = true
			}
		}
	}
}

// boundOf reports the value-domain size of a quantizing expression:
// e % k (k ≤ boundedMax) or e & m (m+1 ≤ boundedMax).
func boundOf(x minic.Expr) (int64, bool) {
	b, ok := x.(*minic.Binary)
	if !ok {
		return 0, false
	}
	lit, ok := b.Y.(*minic.IntLit)
	if !ok {
		return 0, false
	}
	switch b.Op {
	case minic.Percent:
		if lit.Val > 0 && lit.Val <= boundedMax {
			return lit.Val, true
		}
	case minic.Amp:
		if lit.Val >= 0 && lit.Val+1 <= boundedMax {
			return lit.Val + 1, true
		}
	}
	return 0, false
}

// boundDomains runs the small-domain fixpoint: a symbol is bounded when
// every write quantizes into a small range (directly, via a
// bounded-return call, or by copying another bounded symbol); a
// function's return is bounded when every return expression is; a
// parameter is bounded when every direct call site passes a bounded
// argument (and its intra-function writes, if any, stay bounded). The
// three feed each other — `int a = feature(p, 1)` bounds a through
// feature's `% 20` return, and passing a onward bounds the callee's
// parameter — so iterate to fixpoint.
func (e *Estimator) boundDomains(writes []write) {
	// Direct call-site arguments per parameter symbol, gathered once.
	perParam := map[*minic.Symbol][]minic.Expr{}
	indirect := map[*minic.FuncDecl]bool{}
	for _, fn := range e.an.Prog.Funcs {
		if fn.Sym != nil && fn.Sym.AddrTaken {
			indirect[fn] = true
		}
	}
	for _, fn := range e.an.Prog.Funcs {
		if fn.Body == nil {
			continue
		}
		minic.InspectExprs(fn.Body, func(ex minic.Expr) bool {
			c, ok := ex.(*minic.Call)
			if !ok {
				return true
			}
			id, ok := c.Fun.(*minic.Ident)
			if !ok || id.Sym == nil || id.Sym.FuncDecl == nil || indirect[id.Sym.FuncDecl] {
				return true
			}
			callee := id.Sym.FuncDecl
			for i, arg := range c.Args {
				if i < len(callee.Params) {
					p := callee.Params[i].Sym
					perParam[p] = append(perParam[p], arg)
				}
			}
			return true
		})
	}
	perSym := map[*minic.Symbol][]write{}
	for _, w := range writes {
		perSym[w.sym] = append(perSym[w.sym], w)
	}

	boundAll := func(exprs []minic.Expr) (int64, bool) {
		var bound int64
		for _, x := range exprs {
			d, ok := e.exprBound(x)
			if !ok {
				return 0, false
			}
			bound = max64(bound, d)
		}
		return bound, bound > 0
	}
	for changed := true; changed; {
		changed = false
		// Symbols: every write bounded.
		for sym, ws := range perSym {
			if sym.AddrTaken || sym.Kind == minic.SymParam {
				continue
			}
			if _, done := e.boundedSym[sym]; done {
				continue
			}
			exprs := make([]minic.Expr, 0, len(ws))
			ok := true
			for _, w := range ws {
				if w.rhs == nil {
					ok = false // ++/-- escapes any static bound
					break
				}
				exprs = append(exprs, w.rhs)
			}
			if !ok {
				continue
			}
			if d, bounded := boundAll(exprs); bounded {
				e.boundedSym[sym] = d
				changed = true
			}
		}
		// Function returns: every return expression bounded.
		for _, fn := range e.an.Prog.Funcs {
			if fn.Body == nil || minic.IsVoid(fn.Ret) {
				continue
			}
			if _, done := e.boundedRet[fn]; done {
				continue
			}
			var rets []minic.Expr
			minic.InspectStmts(fn.Body, func(st minic.Stmt) bool {
				if r, ok := st.(*minic.ReturnStmt); ok && r.X != nil {
					rets = append(rets, r.X)
				}
				return true
			})
			if len(rets) == 0 {
				continue
			}
			if d, bounded := boundAll(rets); bounded {
				e.boundedRet[fn] = d
				changed = true
			}
		}
		// Parameters: every direct call-site argument bounded, plus any
		// intra-function rewrites.
		for p, args := range perParam {
			if p == nil || p.AddrTaken {
				continue
			}
			if _, done := e.paramBound[p]; done {
				continue
			}
			exprs := append([]minic.Expr(nil), args...)
			ok := true
			for _, w := range perSym[p] {
				if w.rhs == nil {
					ok = false
					break
				}
				exprs = append(exprs, w.rhs)
			}
			if !ok {
				continue
			}
			if d, bounded := boundAll(exprs); bounded {
				e.paramBound[p] = d
				changed = true
			}
		}
	}
}

// exprBound bounds one expression's value domain with the facts
// gathered so far: quantizing ops, small literals, bounded symbols and
// bounded-return calls.
func (e *Estimator) exprBound(x minic.Expr) (int64, bool) {
	switch v := x.(type) {
	case *minic.IntLit:
		if v.Val >= 0 && v.Val+1 <= boundedMax {
			return v.Val + 1, true
		}
	case *minic.Ident:
		if v.Sym != nil {
			if d, ok := e.domainOf(v.Sym); ok {
				return d, true
			}
		}
	case *minic.Call:
		if id, ok := v.Fun.(*minic.Ident); ok && id.Sym != nil && id.Sym.FuncDecl != nil {
			if d, ok := e.boundedRet[id.Sym.FuncDecl]; ok {
				return d, true
			}
		}
	}
	return boundOf(x)
}

func isFloat(t minic.Type) bool {
	b, ok := t.(*minic.Basic)
	return ok && b.Kind == minic.FloatKind
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
