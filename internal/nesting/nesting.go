// Package nesting implements the paper's nested-code-segment resolution
// (§2.3): when profitable segments nest — nested loops, loops in a
// routine, a routine called inside a loop, routines calling routines —
// only one level of a nest is transformed. The choice is made with
// formula (4): reusing the inner segment outperforms the outer iff
// g1 − n·g2 < 0, where g1/g2 are per-instance gains and n is the number of
// inner instances per outer instance; sums are taken over sequential
// siblings.
//
// The interprocedural nesting graph may contain cycles when functions
// recurse; each non-singleton strongly connected component is condensed to
// its best-gain member (the others stop being candidates), after which the
// DAG is traversed bottom-up.
package nesting

import (
	"sort"

	"compreuse/internal/callgraph"
	"compreuse/internal/minic"
	"compreuse/internal/segment"
)

// Candidate couples a segment with its profiled economics.
type Candidate struct {
	Seg *segment.Segment
	// Gain is the per-instance gain R·C − O in cycles (formula 2).
	Gain float64
	// Instances is the profiled execution count N.
	Instances int64
}

// TotalGain is the whole-run gain Gain·N. Formula (4) compared across a
// nest is equivalent to comparing total gains, since n = N_inner/N_outer.
func (c *Candidate) TotalGain() float64 { return c.Gain * float64(c.Instances) }

// Graph is the nesting graph over candidates.
type Graph struct {
	Cands []*Candidate
	// Children[i] lists the direct inner candidates of candidate i
	// (transitive reduction of the nesting partial order).
	Children [][]int
	// SCCs lists strongly connected components (recursion) in the raw
	// nesting relation, each sorted; used for condensation.
	SCCs [][]int

	// nested is the raw nesting relation: nested[i][j] means j is inside i.
	nested [][]bool
	// overlap marks candidates sharing statements without nesting (only
	// possible for the sub-block extension's partially overlapping runs);
	// formula (4) may not sum such siblings.
	overlap [][]bool
}

// Build constructs the nesting graph. cg resolves interprocedural nesting
// (a segment containing a call that can reach another segment's function).
func Build(cands []*Candidate, cg *callgraph.Graph) *Graph {
	n := len(cands)
	g := &Graph{Cands: cands, Children: make([][]int, n)}

	// nested[i][j]: candidate j is nested inside candidate i.
	nested := make([][]bool, n)
	for i := range nested {
		nested[i] = make([]bool, n)
	}
	ids := make([]map[int]bool, n)
	callees := make([]map[*minic.FuncDecl]bool, n)
	for i, c := range cands {
		ids[i] = nodeIDsOf(c.Seg.Body)
		callees[i] = reachableFromBody(c.Seg.Body, cg)
	}
	for i := range cands {
		for j := range cands {
			if i == j {
				continue
			}
			nested[i][j] = isNested(cands[i], cands[j], ids[i], ids[j], callees[i])
		}
	}
	overlap := make([][]bool, n)
	for i := range overlap {
		overlap[i] = make([]bool, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if nested[i][j] || nested[j][i] {
				continue
			}
			if idsIntersect(ids[i], ids[j]) {
				overlap[i][j] = true
				overlap[j][i] = true
			}
		}
	}

	// SCCs over the raw relation (mutual nesting = recursion).
	g.SCCs = tarjan(n, func(i int) []int {
		var out []int
		for j := 0; j < n; j++ {
			if nested[i][j] {
				out = append(out, j)
			}
		}
		return out
	})

	// Direct edges: transitive reduction restricted to cross-SCC pairs.
	comp := make([]int, n)
	for ci, members := range g.SCCs {
		for _, m := range members {
			comp[m] = ci
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if !nested[i][j] || comp[i] == comp[j] {
				continue
			}
			direct := true
			for k := 0; k < n; k++ {
				if k == i || k == j || comp[k] == comp[i] || comp[k] == comp[j] {
					continue
				}
				if nested[i][k] && nested[k][j] {
					direct = false
					break
				}
			}
			if direct {
				g.Children[i] = append(g.Children[i], j)
			}
		}
	}
	for i := range g.Children {
		sort.Ints(g.Children[i])
	}
	g.nested = nested
	g.overlap = overlap
	return g
}

func idsIntersect(a, b map[int]bool) bool {
	if len(b) < len(a) {
		a, b = b, a
	}
	for id := range a {
		if b[id] {
			return true
		}
	}
	return false
}

// isNested reports whether inner is nested inside outer: same function and
// inner's body statements are a strict subset of outer's (FuncBody and
// SubBlock segments wrap the original statements in fresh blocks, so
// containment is tested on the original statement id sets, not on the
// wrapper nodes), or outer's body calls into a function containing inner.
func isNested(outer, inner *Candidate, outerIDs, innerIDs map[int]bool, outerCallees map[*minic.FuncDecl]bool) bool {
	if outer.Seg.Fn == inner.Seg.Fn {
		if len(innerIDs) < len(outerIDs) && subsetOriginal(innerIDs, outerIDs, inner.Seg.Body) {
			return true
		}
	}
	return outerCallees[inner.Seg.Fn]
}

// subsetOriginal reports whether inner's ORIGINAL statement ids all appear
// in outerIDs; the inner body's own wrapper-block id (absent from any
// other segment) is skipped.
func subsetOriginal(innerIDs, outerIDs map[int]bool, innerBody minic.Stmt) bool {
	wrapperID := innerBody.ID()
	for id := range innerIDs {
		if id == wrapperID {
			continue
		}
		if !outerIDs[id] {
			return false
		}
	}
	return true
}

// nodeIDsOf collects statement/expression ids in the subtree.
func nodeIDsOf(body minic.Stmt) map[int]bool {
	ids := map[int]bool{}
	minic.Inspect(body, func(n minic.Node) bool {
		type ider interface{ ID() int }
		if x, ok := n.(ider); ok {
			ids[x.ID()] = true
		}
		return true
	})
	return ids
}

// reachableFromBody returns the functions transitively callable from calls
// inside body.
func reachableFromBody(body minic.Stmt, cg *callgraph.Graph) map[*minic.FuncDecl]bool {
	out := map[*minic.FuncDecl]bool{}
	minic.InspectExprs(body, func(e minic.Expr) bool {
		c, ok := e.(*minic.Call)
		if !ok {
			return true
		}
		if id, ok := c.Fun.(*minic.Ident); ok && id.Sym != nil && id.Sym.Kind == minic.SymFunc {
			if id.Sym.FuncDecl != nil {
				for f := range cg.Reachable(id.Sym.FuncDecl) {
					out[f] = true
				}
			}
			return true
		}
		// Indirect call: all edges recorded in the call graph from the
		// enclosing function would over-approximate; use every callee of
		// every function as a safe fallback is too coarse — instead rely
		// on the call graph's per-site edges.
		return true
	})
	// Per-site indirect edges.
	for _, edge := range cg.Edges {
		if !edge.Indirect || edge.Site == nil {
			continue
		}
		if containsExpr(body, edge.Site) {
			for f := range cg.Reachable(edge.Callee) {
				out[f] = true
			}
		}
	}
	return out
}

func containsExpr(body minic.Stmt, target minic.Expr) bool {
	found := false
	minic.InspectExprs(body, func(e minic.Expr) bool {
		if e == target {
			found = true
		}
		return !found
	})
	return found
}

// tarjan computes SCCs over 0..n-1 with the given successor function,
// returned in reverse topological order.
func tarjan(n int, succs func(int) []int) [][]int {
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	var sccs [][]int
	next := 0
	var connect func(v int)
	connect = func(v int) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range succs(v) {
			if index[w] == -1 {
				connect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []int
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sort.Ints(comp)
			sccs = append(sccs, comp)
		}
	}
	for v := 0; v < n; v++ {
		if index[v] == -1 {
			connect(v)
		}
	}
	return sccs
}

// Select resolves the nesting graph: it returns the candidates to
// transform, maximizing total gain under the one-per-nest rule, and never
// selecting a candidate with non-positive gain.
func (g *Graph) Select() []*Candidate {
	n := len(g.Cands)

	// Condense SCCs: in each non-singleton component only the best-gain
	// member survives (paper §2.3).
	alive := make([]bool, n)
	for _, comp := range g.SCCs {
		if len(comp) == 1 {
			alive[comp[0]] = true
			continue
		}
		best := comp[0]
		for _, m := range comp[1:] {
			if g.Cands[m].TotalGain() > g.Cands[best].TotalGain() {
				best = m
			}
		}
		alive[best] = true
	}

	// Roots: alive candidates with no alive parent.
	hasParent := make([]bool, n)
	for i := 0; i < n; i++ {
		if !alive[i] {
			continue
		}
		for _, j := range g.Children[i] {
			if alive[j] {
				hasParent[j] = true
			}
		}
	}

	// Bottom-up: best(i) = max(own total gain, sum of children's best).
	memoBest := make([]float64, n)
	memoSel := make([][]*Candidate, n)
	visited := make([]bool, n)
	var solve func(i int) (float64, []*Candidate)
	solve = func(i int) (float64, []*Candidate) {
		if visited[i] {
			return memoBest[i], memoSel[i]
		}
		visited[i] = true
		// Formula (4) sums over *sequential* (disjoint) inner segments.
		// Overlapping sub-block children may not be summed together: take
		// a greedy best-first disjoint subset.
		type childRes struct {
			j    int
			best float64
			sel  []*Candidate
		}
		var results []childRes
		for _, j := range g.Children[i] {
			if !alive[j] {
				continue
			}
			b, sel := solve(j)
			if b > 0 {
				results = append(results, childRes{j, b, sel})
			}
		}
		sort.SliceStable(results, func(a, b int) bool { return results[a].best > results[b].best })
		childSum := 0.0
		var childSel []*Candidate
		var taken []int
		for _, res := range results {
			conflict := false
			for _, tj := range taken {
				if g.overlap[res.j][tj] {
					conflict = true
					break
				}
			}
			if conflict {
				continue
			}
			taken = append(taken, res.j)
			childSum += res.best
			childSel = append(childSel, res.sel...)
		}
		own := g.Cands[i].TotalGain()
		if own > childSum && own > 0 {
			memoBest[i] = own
			memoSel[i] = []*Candidate{g.Cands[i]}
		} else {
			memoBest[i] = childSum
			memoSel[i] = childSel
		}
		return memoBest[i], memoSel[i]
	}

	chosen := map[*Candidate]bool{}
	var out []*Candidate
	for i := 0; i < n; i++ {
		if !alive[i] || hasParent[i] {
			continue
		}
		_, sel := solve(i)
		for _, c := range sel {
			if !chosen[c] {
				chosen[c] = true
				out = append(out, c)
			}
		}
	}
	// Safety: in a DAG diamond two roots can select conflicting levels of
	// a shared nest; drop any selection nested inside another selection.
	idxOf := map[*Candidate]int{}
	for i, c := range g.Cands {
		idxOf[c] = i
	}
	var final []*Candidate
	for _, c := range out {
		inner := false
		for _, o := range out {
			if o != c && g.nested[idxOf[o]][idxOf[c]] {
				inner = true
				break
			}
		}
		if !inner {
			final = append(final, c)
		}
	}
	sort.Slice(final, func(i, j int) bool { return final[i].Seg.Index < final[j].Seg.Index })
	return final
}
