package nesting

import "fmt"

// Explain returns, for every candidate in the graph, a one-line account of
// its formula-(4) outcome given the selection Select produced — the
// compiler's decision ledger quotes these verbatim. selected must be (a
// subset of) the slice Select returned on this graph.
func (g *Graph) Explain(selected []*Candidate) map[*Candidate]string {
	sel := map[*Candidate]bool{}
	for _, c := range selected {
		sel[c] = true
	}

	// Reconstruct the SCC condensation survivors (paper §2.3): in each
	// recursive component only the best-gain member stayed a candidate.
	survivor := make([]int, len(g.Cands))
	for i := range survivor {
		survivor[i] = i
	}
	for _, comp := range g.SCCs {
		if len(comp) == 1 {
			continue
		}
		best := comp[0]
		for _, m := range comp[1:] {
			if g.Cands[m].TotalGain() > g.Cands[best].TotalGain() {
				best = m
			}
		}
		for _, m := range comp {
			survivor[m] = best
		}
	}

	out := make(map[*Candidate]string, len(g.Cands))
	for i, c := range g.Cands {
		switch {
		case sel[c]:
			inner := 0
			for j := range g.Cands {
				if g.nested[i][j] && g.Cands[j].Gain > 0 {
					inner++
				}
			}
			outer := ""
			for j := range g.Cands {
				if g.nested[j][i] {
					outer = g.Cands[j].Seg.Name
					break
				}
			}
			switch {
			case inner > 0:
				out[c] = fmt.Sprintf("selected: outer level beats the sum of %d inner candidate(s) (formula 4)", inner)
			case outer != "":
				out[c] = fmt.Sprintf("selected: inner level beats outer %s (formula 4)", outer)
			default:
				out[c] = "selected: no nesting conflict"
			}

		case survivor[i] != i:
			out[c] = fmt.Sprintf("rejected: recursive nest condensed to %s (§2.3)", g.Cands[survivor[i]].Seg.Name)

		default:
			reason := ""
			for j := range g.Cands {
				other := g.Cands[j]
				if !sel[other] {
					continue
				}
				switch {
				case g.nested[j][i]:
					reason = fmt.Sprintf("rejected: outer segment %s selected instead (formula 4)", other.Seg.Name)
				case g.nested[i][j]:
					reason = fmt.Sprintf("rejected: inner segment %s selected instead (formula 4)", other.Seg.Name)
				case g.overlap[i][j]:
					reason = fmt.Sprintf("rejected: overlaps selected segment %s", other.Seg.Name)
				}
				if reason != "" {
					break
				}
			}
			if reason == "" {
				reason = "rejected: no profitable placement in its nest (formula 4)"
			}
			out[c] = reason
		}
	}
	return out
}
