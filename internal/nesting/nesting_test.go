package nesting

import (
	"testing"

	"compreuse/internal/callgraph"
	"compreuse/internal/dataflow"
	"compreuse/internal/minic"
	"compreuse/internal/pointer"
	"compreuse/internal/segment"
)

// setup compiles src and returns the segment analysis plus the call graph.
func setup(t *testing.T, src string) (*segment.Analysis, *callgraph.Graph) {
	t.Helper()
	prog, err := minic.Parse("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := minic.Check(prog); err != nil {
		t.Fatal(err)
	}
	pts := pointer.Analyze(prog)
	cg := callgraph.Build(prog, pts)
	eff := dataflow.ComputeEffects(prog, pts, cg)
	return segment.Analyze(prog, pts, cg, eff, segment.Options{}), cg
}

func cand(t *testing.T, a *segment.Analysis, name string, gain float64, n int64) *Candidate {
	t.Helper()
	for _, s := range a.Segments {
		if s.Name == name {
			return &Candidate{Seg: s, Gain: gain, Instances: n}
		}
	}
	t.Fatalf("no segment %s", name)
	return nil
}

func selNames(cands []*Candidate) []string {
	var out []string
	for _, c := range cands {
		out = append(out, c.Seg.Name)
	}
	return out
}

const loopInFunc = `
int table[8];
int f(int v) {
    int r = 0;
    int k;
    for (k = 0; k < 8; k++)
        r += table[k] * v;
    return r;
}
int main(void) {
    int s = 0;
    int i;
    for (i = 0; i < 100; i++)
        s += f(i & 3);
    return s;
}
`

func TestFormula4InnerWins(t *testing.T) {
	a, cg := setup(t, loopInFunc)
	// Outer f@func: g1=100/instance, 100 instances -> 10000 total.
	// Inner f@loop1: g2=20/instance, 800 instances -> 16000 total.
	// Formula (4): g1 - n·g2 = 100 - 8·20 < 0 -> inner wins.
	outer := cand(t, a, "f@func", 100, 100)
	inner := cand(t, a, "f@loop1", 20, 800)
	g := Build([]*Candidate{outer, inner}, cg)
	got := selNames(g.Select())
	if len(got) != 1 || got[0] != "f@loop1" {
		t.Fatalf("selected %v, want [f@loop1]", got)
	}
}

func TestFormula4OuterWins(t *testing.T) {
	a, cg := setup(t, loopInFunc)
	// g1 - n·g2 = 200 - 8·20 > 0 -> outer wins.
	outer := cand(t, a, "f@func", 200, 100)
	inner := cand(t, a, "f@loop1", 20, 100*8)
	// Make outer clearly better: raise its gain.
	outer.Gain = 200
	g := Build([]*Candidate{outer, inner}, cg)
	got := selNames(g.Select())
	if len(got) != 1 || got[0] != "f@func" {
		t.Fatalf("selected %v, want [f@func]", got)
	}
}

func TestInterproceduralNesting(t *testing.T) {
	a, cg := setup(t, loopInFunc)
	// main@loop1 encloses f@func through the call.
	outer := cand(t, a, "main@loop1", 50, 100) // total 5000
	inner := cand(t, a, "f@func", 500, 100)    // total 50000
	g := Build([]*Candidate{outer, inner}, cg)
	// There must be a nesting edge outer -> inner.
	if len(g.Children[0]) != 1 || g.Children[0][0] != 1 {
		t.Fatalf("children of main@loop1 = %v, want [1]", g.Children[0])
	}
	got := selNames(g.Select())
	if len(got) != 1 || got[0] != "f@func" {
		t.Fatalf("selected %v, want [f@func]", got)
	}
}

func TestSequentialSiblingsSum(t *testing.T) {
	// Paper Fig. 3: outer CS3 compared against the SUM of sequential CS5
	// and CS6.
	a, cg := setup(t, `
int t1[4];
int t2[4];
int f(int v) {
    int r = 0;
    int k;
    for (k = 0; k < 4; k++)
        r += t1[k] * v;
    int m;
    for (m = 0; m < 4; m++)
        r += t2[m] + v;
    return r;
}
int main(void) { return f(3); }`)
	outer := cand(t, a, "f@func", 90, 100) // total 9000
	in1 := cand(t, a, "f@loop1", 15, 400)  // total 6000
	in2 := cand(t, a, "f@loop2", 10, 400)  // total 4000
	g := Build([]*Candidate{outer, in1, in2}, cg)
	// 9000 < 6000 + 4000: both inners win.
	got := selNames(g.Select())
	if len(got) != 2 || got[0] != "f@loop1" || got[1] != "f@loop2" {
		t.Fatalf("selected %v, want both inner loops", got)
	}
	// With a stronger outer, the outer wins alone.
	outer.Gain = 150 // total 15000 > 10000
	g = Build([]*Candidate{outer, in1, in2}, cg)
	got = selNames(g.Select())
	if len(got) != 1 || got[0] != "f@func" {
		t.Fatalf("selected %v, want [f@func]", got)
	}
}

func TestRecursionSCCCondensed(t *testing.T) {
	a, cg := setup(t, `
int even(int n);
int odd(int n) { int r; if (n == 0) { r = 0; } else { r = even(n - 1); } return r; }
int even(int n) { int r; if (n == 0) { r = 1; } else { r = odd(n - 1); } return r; }
int main(void) { return even(10); }`)
	// odd@func and even@func mutually nest -> one SCC; only the better
	// gain survives.
	co := cand(t, a, "odd@func", 10, 100)  // total 1000
	ce := cand(t, a, "even@func", 30, 100) // total 3000
	g := Build([]*Candidate{co, ce}, cg)
	foundMulti := false
	for _, comp := range g.SCCs {
		if len(comp) == 2 {
			foundMulti = true
		}
	}
	if !foundMulti {
		t.Fatalf("expected a 2-member SCC, got %v", g.SCCs)
	}
	got := selNames(g.Select())
	if len(got) != 1 || got[0] != "even@func" {
		t.Fatalf("selected %v, want [even@func]", got)
	}
}

func TestNegativeGainNeverSelected(t *testing.T) {
	a, cg := setup(t, loopInFunc)
	outer := cand(t, a, "f@func", -5, 100)
	inner := cand(t, a, "f@loop1", -1, 800)
	g := Build([]*Candidate{outer, inner}, cg)
	if got := g.Select(); len(got) != 0 {
		t.Fatalf("selected %v, want none (all gains negative)", selNames(got))
	}
}

func TestTransitiveReduction(t *testing.T) {
	// main@func > main@loop1 > f@func: edge main@func->f@func must be
	// removed by transitive reduction.
	a, cg := setup(t, loopInFunc)
	c0 := cand(t, a, "main@func", 1, 1)
	c1 := cand(t, a, "main@loop1", 1, 100)
	c2 := cand(t, a, "f@func", 1, 100)
	g := Build([]*Candidate{c0, c1, c2}, cg)
	if len(g.Children[0]) != 1 || g.Children[0][0] != 1 {
		t.Fatalf("children(main@func) = %v, want [1] only", g.Children[0])
	}
	if len(g.Children[1]) != 1 || g.Children[1][0] != 2 {
		t.Fatalf("children(main@loop1) = %v, want [2]", g.Children[1])
	}
}

func TestFigure3Shape(t *testing.T) {
	// Reproduce the decision structure of the paper's Figure 3:
	// CS1 encloses CS2 and CS3; CS2 encloses CS4; CS3 encloses CS5, CS6.
	a, cg := setup(t, `
int ta[4];
int cs4(int v) {
    int r = 0;
    int k;
    for (k = 0; k < 4; k++) r += ta[k] & v;
    return r;
}
int cs5(int v) {
    int r = v * 3;
    return r;
}
int cs6(int v) {
    int r = v ^ 5;
    return r;
}
int cs2(int v) {
    int r = cs4(v) + 1;
    return r;
}
int cs3(int v) {
    int r = cs5(v) + cs6(v);
    return r;
}
int cs1(int v) {
    int r = cs2(v) + cs3(v);
    return r;
}
int main(void) { return cs1(7); }`)
	c1 := cand(t, a, "cs1@func", 100, 10) // 1000
	c2 := cand(t, a, "cs2@func", 30, 10)  // 300
	c3 := cand(t, a, "cs3@func", 20, 10)  // 200
	c4 := cand(t, a, "cs4@func", 50, 10)  // 500: beats cs2
	c5 := cand(t, a, "cs5@func", 8, 10)   // 80
	c6 := cand(t, a, "cs6@func", 7, 10)   // 70: 80+70 < 200 -> cs3 wins over {cs5,cs6}
	g := Build([]*Candidate{c1, c2, c3, c4, c5, c6}, cg)
	// cs1's decision: own 1000 vs best(cs2)=500 + best(cs3)=200 = 700 ->
	// cs1 wins overall.
	got := selNames(g.Select())
	if len(got) != 1 || got[0] != "cs1@func" {
		t.Fatalf("selected %v, want [cs1@func]", got)
	}
	// Weaken cs1: now the best mix is cs4 (500) + cs3 (200).
	c1.Gain = 60 // total 600 < 700
	g = Build([]*Candidate{c1, c2, c3, c4, c5, c6}, cg)
	got = selNames(g.Select())
	want := map[string]bool{"cs4@func": true, "cs3@func": true}
	if len(got) != 2 || !want[got[0]] || !want[got[1]] {
		t.Fatalf("selected %v, want cs3 and cs4", got)
	}
}

func TestOverlappingChildrenNotSummed(t *testing.T) {
	// Two sub-block candidates cover overlapping parts of f's body. Their
	// gains must not be summed against the enclosing function (formula 4
	// sums *sequential* inner segments only): individually each is worth
	// 600, together they must count as 600, not 1200 — so the outer 900
	// must win.
	prog, err := minic.Parse("t.c", `
int w[8];
int f(int v) {
    int a = 0;
    int k;
    for (k = 0; k < 8; k++)
        a += w[k] * v;
    int b = 0;
    int m;
    for (m = 0; m < 8; m++)
        b += w[m] + v + a;
    int r = a + b;
    return r;
}
int main(void) { return f(3); }`)
	if err != nil {
		t.Fatal(err)
	}
	if err := minic.Check(prog); err != nil {
		t.Fatal(err)
	}
	pts := pointer.Analyze(prog)
	cg := callgraph.Build(prog, pts)
	eff := dataflow.ComputeEffects(prog, pts, cg)
	an := segment.Analyze(prog, pts, cg, eff, segment.Options{SubBlocks: true})

	var outer *segment.Segment
	var subs []*segment.Segment
	for _, s := range an.Segments {
		switch {
		case s.Name == "f@func":
			outer = s
		case s.Kind == segment.SubBlock && s.Fn.Name == "f" && s.Eligible:
			subs = append(subs, s)
		}
	}
	if outer == nil || len(subs) < 2 {
		t.Skipf("need an outer and >=2 sub candidates, have outer=%v subs=%d", outer != nil, len(subs))
	}
	// Find two overlapping subs (shared statements).
	var s1, s2 *segment.Segment
	for i := 0; i < len(subs) && s1 == nil; i++ {
		for j := i + 1; j < len(subs); j++ {
			if subs[i].ParentBlock == subs[j].ParentBlock &&
				subs[i].RunStart < subs[j].RunEnd && subs[j].RunStart < subs[i].RunEnd {
				s1, s2 = subs[i], subs[j]
				break
			}
		}
	}
	if s1 == nil {
		t.Skip("no overlapping sub pair enumerated")
	}
	cands := []*Candidate{
		{Seg: outer, Gain: 900, Instances: 1},
		{Seg: s1, Gain: 600, Instances: 1},
		{Seg: s2, Gain: 600, Instances: 1},
	}
	g := Build(cands, cg)
	sel := g.Select()
	if len(sel) != 1 || sel[0].Seg != outer {
		var names []string
		for _, c := range sel {
			names = append(names, c.Seg.Name)
		}
		t.Fatalf("selected %v, want only f@func (overlapping children must not sum)", names)
	}
}
