// Package callgraph builds the interprocedural call graph of a MiniC
// program, resolving function pointers through the points-to analysis, and
// computes its strongly connected components (recursive function groups)
// with Tarjan's algorithm — the paper's "call graph construction" module
// (§3.1: "we take into account function pointers and recursive functions;
// for recursive functions we compute their SCC").
package callgraph

import (
	"sort"

	"compreuse/internal/minic"
	"compreuse/internal/pointer"
)

// Edge is one call site.
type Edge struct {
	Caller *minic.FuncDecl
	Callee *minic.FuncDecl
	// Site is the call expression (nil for synthesized edges).
	Site *minic.Call
	// Indirect marks calls through function pointers.
	Indirect bool
}

// Graph is a program call graph.
type Graph struct {
	Prog  *minic.Program
	Edges []Edge
	// CalleesOf / CallersOf are adjacency maps (deduplicated, determinate
	// order).
	calleesOf map[*minic.FuncDecl][]*minic.FuncDecl
	callersOf map[*minic.FuncDecl][]*minic.FuncDecl
	// SCCs lists the strongly connected components in reverse topological
	// order (callees before callers), each sorted by name.
	SCCs [][]*minic.FuncDecl
	// sccIndex maps a function to its component index in SCCs.
	sccIndex map[*minic.FuncDecl]int
}

// Build constructs the call graph using pts to resolve indirect calls.
func Build(prog *minic.Program, pts *pointer.Analysis) *Graph {
	g := &Graph{
		Prog:      prog,
		calleesOf: map[*minic.FuncDecl][]*minic.FuncDecl{},
		callersOf: map[*minic.FuncDecl][]*minic.FuncDecl{},
		sccIndex:  map[*minic.FuncDecl]int{},
	}
	seen := map[[2]*minic.FuncDecl]bool{}
	addEdge := func(e Edge) {
		g.Edges = append(g.Edges, e)
		k := [2]*minic.FuncDecl{e.Caller, e.Callee}
		if !seen[k] {
			seen[k] = true
			g.calleesOf[e.Caller] = append(g.calleesOf[e.Caller], e.Callee)
			g.callersOf[e.Callee] = append(g.callersOf[e.Callee], e.Caller)
		}
	}
	for _, fn := range prog.Funcs {
		if fn.Body == nil {
			continue
		}
		caller := fn
		minic.InspectExprs(fn.Body, func(e minic.Expr) bool {
			c, ok := e.(*minic.Call)
			if !ok {
				return true
			}
			indirect := true
			if id, ok := c.Fun.(*minic.Ident); ok && id.Sym != nil && id.Sym.Kind == minic.SymFunc {
				indirect = false
				if id.Sym.FuncDecl == nil {
					return true // builtin
				}
			}
			for _, callee := range pts.CallTargets(c) {
				addEdge(Edge{Caller: caller, Callee: callee, Site: c, Indirect: indirect})
			}
			return true
		})
	}
	g.computeSCCs()
	return g
}

// Callees returns fn's unique callees in first-seen order.
func (g *Graph) Callees(fn *minic.FuncDecl) []*minic.FuncDecl { return g.calleesOf[fn] }

// Callers returns fn's unique callers in first-seen order.
func (g *Graph) Callers(fn *minic.FuncDecl) []*minic.FuncDecl { return g.callersOf[fn] }

// SCCOf returns the index of fn's strongly connected component in SCCs.
func (g *Graph) SCCOf(fn *minic.FuncDecl) int { return g.sccIndex[fn] }

// InCycle reports whether fn is (mutually) recursive: its SCC has more than
// one member, or it calls itself directly.
func (g *Graph) InCycle(fn *minic.FuncDecl) bool {
	idx, ok := g.sccIndex[fn]
	if !ok {
		return false
	}
	if len(g.SCCs[idx]) > 1 {
		return true
	}
	for _, c := range g.calleesOf[fn] {
		if c == fn {
			return true
		}
	}
	return false
}

// computeSCCs runs Tarjan's algorithm over the program's functions.
// Iteration order is the declaration order, so output is deterministic.
func (g *Graph) computeSCCs() {
	index := map[*minic.FuncDecl]int{}
	low := map[*minic.FuncDecl]int{}
	onStack := map[*minic.FuncDecl]bool{}
	var stack []*minic.FuncDecl
	next := 0

	var strongconnect func(v *minic.FuncDecl)
	strongconnect = func(v *minic.FuncDecl) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range g.calleesOf[v] {
			if _, visited := index[w]; !visited {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []*minic.FuncDecl
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sort.Slice(comp, func(i, j int) bool { return comp[i].Name < comp[j].Name })
			for _, f := range comp {
				g.sccIndex[f] = len(g.SCCs)
			}
			g.SCCs = append(g.SCCs, comp)
		}
	}
	for _, fn := range g.Prog.Funcs {
		if _, visited := index[fn]; !visited {
			strongconnect(fn)
		}
	}
}

// Reachable returns the set of functions reachable from root (inclusive).
func (g *Graph) Reachable(root *minic.FuncDecl) map[*minic.FuncDecl]bool {
	seen := map[*minic.FuncDecl]bool{}
	var visit func(fn *minic.FuncDecl)
	visit = func(fn *minic.FuncDecl) {
		if seen[fn] {
			return
		}
		seen[fn] = true
		for _, c := range g.calleesOf[fn] {
			visit(c)
		}
	}
	visit(root)
	return seen
}
