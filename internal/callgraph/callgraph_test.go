package callgraph

import (
	"testing"

	"compreuse/internal/minic"
	"compreuse/internal/pointer"
)

func build(t *testing.T, src string) (*minic.Program, *Graph) {
	t.Helper()
	prog, err := minic.Parse("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := minic.Check(prog); err != nil {
		t.Fatal(err)
	}
	return prog, Build(prog, pointer.Analyze(prog))
}

func names(fns []*minic.FuncDecl) map[string]bool {
	m := map[string]bool{}
	for _, f := range fns {
		m[f.Name] = true
	}
	return m
}

func TestDirectEdges(t *testing.T) {
	prog, g := build(t, `
int a(void) { return 1; }
int b(void) { return a(); }
int main(void) { return a() + b(); }`)
	m := names(g.Callees(prog.Func("main")))
	if !m["a"] || !m["b"] || len(m) != 2 {
		t.Fatalf("main callees: %v", m)
	}
	if cb := names(g.Callers(prog.Func("a"))); !cb["main"] || !cb["b"] {
		t.Fatalf("a callers: %v", cb)
	}
}

func TestBuiltinsExcluded(t *testing.T) {
	prog, g := build(t, `int main(void) { print_int(1); return 0; }`)
	if len(g.Callees(prog.Func("main"))) != 0 {
		t.Fatal("builtins must not appear in the call graph")
	}
}

func TestIndirectEdges(t *testing.T) {
	prog, g := build(t, `
int f1(int v) { return v; }
int f2(int v) { return v + 1; }
int main(void) {
    int (*op)(int) = f1;
    op = f2;
    return op(3);
}`)
	m := names(g.Callees(prog.Func("main")))
	if !m["f1"] || !m["f2"] {
		t.Fatalf("indirect callees: %v", m)
	}
	// Edges for indirect calls carry the flag.
	found := false
	for _, e := range g.Edges {
		if e.Indirect {
			found = true
		}
	}
	if !found {
		t.Fatal("no indirect edge recorded")
	}
}

func TestSelfRecursionSCC(t *testing.T) {
	prog, g := build(t, `
int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); }
int main(void) { return fact(5); }`)
	if !g.InCycle(prog.Func("fact")) {
		t.Fatal("fact is recursive")
	}
	if g.InCycle(prog.Func("main")) {
		t.Fatal("main is not recursive")
	}
}

func TestMutualRecursionSCC(t *testing.T) {
	prog, g := build(t, `
int isOdd(int n);
int isEven(int n) { if (n == 0) return 1; return isOdd(n - 1); }
int isOdd(int n) { if (n == 0) return 0; return isEven(n - 1); }
int standalone(void) { return 7; }
int main(void) { return isEven(10) + standalone(); }`)
	e, o := prog.Func("isEven"), prog.Func("isOdd")
	if g.SCCOf(e) != g.SCCOf(o) {
		t.Fatal("mutually recursive functions must share an SCC")
	}
	if len(g.SCCs[g.SCCOf(e)]) != 2 {
		t.Fatalf("SCC size = %d, want 2", len(g.SCCs[g.SCCOf(e)]))
	}
	if g.SCCOf(prog.Func("standalone")) == g.SCCOf(e) {
		t.Fatal("standalone must be in its own SCC")
	}
	if !g.InCycle(e) || !g.InCycle(o) {
		t.Fatal("InCycle must be true for both")
	}
}

func TestSCCReverseTopologicalOrder(t *testing.T) {
	prog, g := build(t, `
int leaf(void) { return 1; }
int mid(void) { return leaf(); }
int main(void) { return mid(); }`)
	// Callees must appear before callers.
	leafIdx := g.SCCOf(prog.Func("leaf"))
	midIdx := g.SCCOf(prog.Func("mid"))
	mainIdx := g.SCCOf(prog.Func("main"))
	if !(leafIdx < midIdx && midIdx < mainIdx) {
		t.Fatalf("SCC order: leaf=%d mid=%d main=%d", leafIdx, midIdx, mainIdx)
	}
}

func TestReachable(t *testing.T) {
	prog, g := build(t, `
int used(void) { return 1; }
int dead(void) { return 2; }
int main(void) { return used(); }`)
	r := g.Reachable(prog.Func("main"))
	if !r[prog.Func("used")] || r[prog.Func("dead")] {
		t.Fatalf("reachability wrong: %v", r)
	}
}

func TestDedupEdges(t *testing.T) {
	prog, g := build(t, `
int f(void) { return 1; }
int main(void) { return f() + f() + f(); }`)
	if len(g.Edges) != 3 {
		t.Fatalf("edges (per site) = %d, want 3", len(g.Edges))
	}
	if len(g.Callees(prog.Func("main"))) != 1 {
		t.Fatal("adjacency must be deduplicated")
	}
}
