package specialize

import (
	"strings"
	"testing"

	"compreuse/internal/callgraph"
	"compreuse/internal/dataflow"
	"compreuse/internal/interp"
	"compreuse/internal/minic"
	"compreuse/internal/pointer"
	"compreuse/internal/segment"
)

func compile(t *testing.T, src string) *minic.Program {
	t.Helper()
	prog, err := minic.Parse("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := minic.Check(prog); err != nil {
		t.Fatal(err)
	}
	return prog
}

func runPass(t *testing.T, prog *minic.Program) *Result {
	t.Helper()
	pts := pointer.Analyze(prog)
	cg := callgraph.Build(prog, pts)
	eff := dataflow.ComputeEffects(prog, pts, cg)
	return Run(prog, pts, cg, eff, Options{})
}

// quan3Src is the paper's Figure 4: the original three-parameter quan.
const quan3Src = `
int power2[15] = {1,2,4,8,16,32,64,128,256,512,1024,2048,4096,8192,16384};

int quan(int val, int *table, int size) {
    int i;
    for (i = 0; i < size; i++)
        if (val < table[i])
            break;
    return (i);
}

int main(void) {
    int s = 0;
    int v;
    for (v = 0; v < 500; v++)
        s += quan((v * 19) & 511, power2, 15);
    for (v = 0; v < 100; v++)
        s += quan(v, power2, 15);
    return s;
}
`

func TestQuanSpecializationPaperFig4(t *testing.T) {
	orig := compile(t, quan3Src)
	want, err := interp.Run(orig, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}

	prog := compile(t, quan3Src)
	res := runPass(t, prog)
	if len(res.Created) != 1 {
		t.Fatalf("created %d specializations, want 1", len(res.Created))
	}
	spec := res.Created[0]
	if len(spec.Params) != 1 || spec.Params[0].Name != "val" {
		t.Fatalf("specialized params: %v", spec.Params)
	}
	if res.Redirected != 2 {
		t.Fatalf("redirected %d call sites, want 2", res.Redirected)
	}
	got, err := interp.Run(prog, interp.Options{})
	if err != nil {
		t.Fatalf("specialized run: %v\n%s", err, minic.Print(prog))
	}
	if got.Ret != want.Ret {
		t.Fatalf("results differ: %d vs %d", got.Ret, want.Ret)
	}
	// The printed program calls the specialized version.
	out := minic.Print(prog)
	if !strings.Contains(out, spec.Name+"(") {
		t.Fatalf("call sites not redirected:\n%s", out)
	}
}

func TestSpecializedSegmentBecomesEligible(t *testing.T) {
	// The paper's point: before specialization quan's segment is
	// ineligible (pointer input); after, it has a single int input.
	prog := compile(t, quan3Src)
	res := runPass(t, prog)
	if len(res.Created) != 1 {
		t.Fatal("no specialization created")
	}
	pts := pointer.Analyze(prog)
	cg := callgraph.Build(prog, pts)
	eff := dataflow.ComputeEffects(prog, pts, cg)
	an := segment.Analyze(prog, pts, cg, eff, segment.Options{})
	var seg *segment.Segment
	for _, s := range an.Segments {
		if s.Fn == res.Created[0] && s.Kind == segment.FuncBody {
			seg = s
		}
	}
	if seg == nil {
		t.Fatal("no segment for specialized function")
	}
	if !seg.Eligible {
		t.Fatalf("specialized segment ineligible: %s", seg.Reason)
	}
	if len(seg.Inputs) != 1 || seg.Inputs[0].Sym.Name != "val" {
		var names []string
		for _, in := range seg.Inputs {
			names = append(names, in.String())
		}
		t.Fatalf("inputs = %v, want [val]", names)
	}
	if seg.KeyBytes != 4 {
		t.Fatalf("key bytes = %d, want 4", seg.KeyBytes)
	}
}

func TestPartialAgreementSpecializesMajority(t *testing.T) {
	// One call site disagrees: the two agreeing sites are redirected, the
	// odd one keeps calling the original.
	src := `
int tabA[4] = {1, 2, 3, 4};
int tabB[4] = {9, 8, 7, 6};
int pick(int v, int *tab) {
    int r = 0;
    int k;
    for (k = 0; k < 4; k++)
        if (tab[k] > v) r = k;
    return r;
}
int main(void) {
    int s = 0;
    s += pick(1, tabA);
    s += pick(2, tabA);
    s += pick(3, tabB);
    return s;
}
`
	orig := compile(t, src)
	want, err := interp.Run(orig, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prog := compile(t, src)
	res := runPass(t, prog)
	if len(res.Created) != 1 {
		t.Fatalf("created = %d", len(res.Created))
	}
	if res.Redirected != 2 {
		t.Fatalf("redirected = %d, want 2 (majority group)", res.Redirected)
	}
	got, err := interp.Run(prog, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Ret != want.Ret {
		t.Fatalf("results differ: %d vs %d", got.Ret, want.Ret)
	}
}

func TestNoSpecializationWhenArgsVary(t *testing.T) {
	src := `
int f(int a, int b) { return a * b; }
int main(void) {
    int s = 0;
    int i;
    for (i = 0; i < 4; i++)
        s += f(i, i + 1);   // both args vary
    return s;
}
`
	prog := compile(t, src)
	res := runPass(t, prog)
	if len(res.Created) != 0 {
		t.Fatalf("unexpected specialization: %v", res.Created)
	}
}

func TestMutableGlobalNotSpecialized(t *testing.T) {
	src := `
int tab[4];
int f(int v, int *p) { return p[v & 3]; }
int main(void) {
    int s = 0;
    int i;
    for (i = 0; i < 4; i++) {
        tab[i] = i;        // tab is written: not invariant
        s += f(i, tab);
    }
    return s;
}
`
	prog := compile(t, src)
	res := runPass(t, prog)
	if len(res.Created) != 0 {
		t.Fatalf("mutable global must not be specialized away: %v", res.Created)
	}
}

func TestRecursiveFunctionNotSpecialized(t *testing.T) {
	src := `
int w[4] = {1, 2, 3, 4};
int rec(int n, int *p) {
    if (n <= 0) return 0;
    return p[n & 3] + rec(n - 1, p);
}
int main(void) { return rec(10, w); }
`
	prog := compile(t, src)
	res := runPass(t, prog)
	if len(res.Created) != 0 {
		t.Fatalf("recursive function must not be specialized: %v", res.Created)
	}
}

func TestSpecializedCloneIsIndependent(t *testing.T) {
	// Mutating behavior via the clone must not disturb the original
	// function's symbols (separate frames, separate locals).
	src := `
int base[2] = {5, 10};
int get(int i, int *p, int scale) {
    int r = p[i & 1] * scale;
    return r;
}
int main(void) {
    int a = get(0, base, 3);   // specialized
    int b = get(1, base, 3);   // specialized
    return a * 100 + b;
}
`
	orig := compile(t, src)
	want, err := interp.Run(orig, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prog := compile(t, src)
	res := runPass(t, prog)
	if len(res.Created) != 1 {
		t.Fatalf("created = %d", len(res.Created))
	}
	got, err := interp.Run(prog, interp.Options{})
	if err != nil {
		t.Fatalf("%v\n%s", err, minic.Print(prog))
	}
	if got.Ret != want.Ret {
		t.Fatalf("results differ: %d vs %d (want 15*100+30=1530)", got.Ret, want.Ret)
	}
	// Printed program re-parses and re-checks.
	out := minic.Print(prog)
	re, err := minic.Parse("re.c", out)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, out)
	}
	if err := minic.Check(re); err != nil {
		t.Fatalf("re-check: %v\n%s", err, out)
	}
}
