package specialize

import (
	"compreuse/internal/minic"
)

// cloner deep-copies a function body into a new function, remapping local
// symbols and substituting specialized parameters with literal or global
// expressions. All created nodes get fresh program-unique ids.
type cloner struct {
	prog *minic.Program
	fn   *minic.FuncDecl
	// symMap maps old locals/params to their clones.
	symMap map[*minic.Symbol]*minic.Symbol
	// subst replaces uses of specialized-away parameters; called per use
	// so each occurrence gets fresh node ids.
	subst map[*minic.Symbol]func() minic.Expr
}

func (c *cloner) mapSym(old *minic.Symbol) *minic.Symbol {
	if old == nil {
		return nil
	}
	if ns, ok := c.symMap[old]; ok {
		return ns
	}
	switch old.Kind {
	case minic.SymGlobal, minic.SymFunc:
		return old
	}
	// A local encountered before its declaration clone (shouldn't happen
	// in well-formed code, but declarations inside for-inits are cloned in
	// order); create eagerly.
	ns := &minic.Symbol{
		Name: old.Name, Kind: old.Kind, Type: old.Type,
		Slot: c.fn.FrameWords, Func: c.fn, AddrTaken: old.AddrTaken,
	}
	c.fn.FrameWords += old.Type.Words()
	c.symMap[old] = ns
	return ns
}

func (c *cloner) cloneStmt(s minic.Stmt) minic.Stmt {
	if s == nil {
		return nil
	}
	switch s := s.(type) {
	case *minic.Block:
		b := c.prog.NewBlock()
		for _, st := range s.Stmts {
			b.Stmts = append(b.Stmts, c.cloneStmt(st))
		}
		return b
	case *minic.DeclStmt:
		var decls []*minic.VarDecl
		for _, d := range s.Decls {
			nd := c.prog.NewVarDecl(d.Name, d.Type, nil)
			nd.Sym = c.mapSym(d.Sym)
			if d.Init != nil {
				nd.Init = c.cloneExpr(d.Init)
			}
			for _, e := range d.InitList {
				nd.InitList = append(nd.InitList, c.cloneExpr(e))
			}
			decls = append(decls, nd)
		}
		return c.prog.NewDeclStmt(decls...)
	case *minic.ExprStmt:
		return c.prog.NewExprStmt(c.cloneExpr(s.X))
	case *minic.IfStmt:
		n := &minic.IfStmt{Cond: c.cloneExpr(s.Cond), Then: c.cloneStmt(s.Then)}
		if s.Else != nil {
			n.Else = c.cloneStmt(s.Else)
		}
		return c.withStmtID(n)
	case *minic.WhileStmt:
		n := &minic.WhileStmt{Cond: c.cloneExpr(s.Cond), Body: c.cloneStmt(s.Body), DoWhile: s.DoWhile}
		return c.withStmtID(n)
	case *minic.ForStmt:
		n := &minic.ForStmt{}
		if s.Init != nil {
			n.Init = c.cloneStmt(s.Init)
		}
		if s.Cond != nil {
			n.Cond = c.cloneExpr(s.Cond)
		}
		if s.Post != nil {
			n.Post = c.cloneExpr(s.Post)
		}
		n.Body = c.cloneStmt(s.Body)
		return c.withStmtID(n)
	case *minic.BreakStmt:
		return c.withStmtID(&minic.BreakStmt{})
	case *minic.ContinueStmt:
		return c.withStmtID(&minic.ContinueStmt{})
	case *minic.ReturnStmt:
		n := &minic.ReturnStmt{}
		if s.X != nil {
			n.X = c.cloneExpr(s.X)
		}
		return c.withStmtID(n)
	case *minic.EmptyStmt:
		return c.withStmtID(&minic.EmptyStmt{})
	case *minic.ReuseRegion:
		n := c.prog.NewReuseRegion(s.TableID, s.SegBit, s.SegName)
		for _, e := range s.Inputs {
			n.Inputs = append(n.Inputs, c.cloneExpr(e))
		}
		n.Body = c.cloneStmt(s.Body)
		for _, e := range s.Outputs {
			n.Outputs = append(n.Outputs, c.cloneExpr(e))
		}
		return n
	}
	panic("specialize: unhandled statement in clone")
}

// withStmtID assigns a fresh id to a synthesized statement.
func (c *cloner) withStmtID(s minic.Stmt) minic.Stmt {
	c.prog.AssignID(s)
	return s
}

func (c *cloner) cloneExpr(e minic.Expr) minic.Expr {
	if e == nil {
		return nil
	}
	if id, ok := e.(*minic.Ident); ok && id.Sym != nil {
		if mk, ok := c.subst[id.Sym]; ok {
			return mk()
		}
		return c.prog.NewIdent(c.mapSym(id.Sym))
	}
	// CloneExpr copies structure; then rebind nested identifiers.
	out := c.prog.CloneExpr(e)
	c.rebind(&out)
	return out
}

// rebind walks a cloned expression, replacing identifier symbols through
// the map and applying parameter substitutions in place.
func (c *cloner) rebind(ep *minic.Expr) {
	switch x := (*ep).(type) {
	case *minic.Ident:
		if x.Sym == nil {
			return
		}
		if mk, ok := c.subst[x.Sym]; ok {
			*ep = mk()
			return
		}
		ns := c.mapSym(x.Sym)
		if ns != x.Sym {
			*ep = c.prog.NewIdent(ns)
		}
	case *minic.Unary:
		c.rebind(&x.X)
	case *minic.IncDec:
		c.rebind(&x.X)
	case *minic.Binary:
		c.rebind(&x.X)
		c.rebind(&x.Y)
	case *minic.AssignExpr:
		c.rebind(&x.LHS)
		c.rebind(&x.RHS)
	case *minic.Cond:
		c.rebind(&x.Cond)
		c.rebind(&x.Then)
		c.rebind(&x.Else)
	case *minic.Call:
		c.rebind(&x.Fun)
		for i := range x.Args {
			c.rebind(&x.Args[i])
		}
	case *minic.Index:
		c.rebind(&x.X)
		c.rebind(&x.Idx)
	case *minic.FieldExpr:
		c.rebind(&x.X)
	case *minic.Cast:
		c.rebind(&x.X)
	}
}
