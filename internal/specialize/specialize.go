// Package specialize implements the paper's code specialization (§2.4):
// "to reduce the hashing overhead, we apply code specialization to reduce
// the number of inputs and/or outputs of the candidate code segments.
// Specialization makes multiple versions of a code segment. In certain
// versions, some input variables become invariants."
//
// The motivating case is G721's quan(val, table, size): most call sites
// pass size == 15 and table == power2 (an invariant array), so a
// specialized quan with a single input val is created and those call sites
// are redirected to it (paper Fig. 2a vs Fig. 4).
//
// A parameter is specialized away when every targeted call site passes
// the same integer literal, or the same invariant global (an array or
// scalar never written after the program's initialization phase). Call
// sites that disagree keep calling the original function.
package specialize

import (
	"fmt"
	"sort"

	"compreuse/internal/callgraph"
	"compreuse/internal/dataflow"
	"compreuse/internal/minic"
	"compreuse/internal/pointer"
)

// Result reports what the pass did.
type Result struct {
	// Created lists the specialized functions, in creation order.
	Created []*minic.FuncDecl
	// Redirected counts rewritten call sites.
	Redirected int
}

// Options tunes the pass.
type Options struct {
	// MinSites is the minimum number of agreeing call sites required
	// before a specialization is created (default 1).
	MinSites int
}

// Run specializes functions of prog in place. It needs the pointer
// analysis and call graph to identify invariant globals and call sites.
func Run(prog *minic.Program, pts *pointer.Analysis, cg *callgraph.Graph,
	eff *dataflow.Effects, opts Options) *Result {
	if opts.MinSites == 0 {
		opts.MinSites = 1
	}
	sp := &specializer{prog: prog, pts: pts, cg: cg, eff: eff, opts: opts}
	sp.findInvariantGlobals()
	res := &Result{}
	// Iterate over a snapshot: created functions are not re-specialized.
	fns := append([]*minic.FuncDecl(nil), prog.Funcs...)
	for _, fn := range fns {
		sp.specializeFunc(fn, res)
	}
	return res
}

type specializer struct {
	prog *minic.Program
	pts  *pointer.Analysis
	cg   *callgraph.Graph
	eff  *dataflow.Effects
	opts Options
	// invGlobal marks globals never written by any function (only global
	// initializers or nothing touch them), the conservative core of the
	// code coverage analysis used here.
	invGlobal map[*minic.Symbol]bool
	seq       int
}

func (sp *specializer) findInvariantGlobals() {
	sp.invGlobal = map[*minic.Symbol]bool{}
	gdu := sp.eff.BuildGlobalDefUse()
	for _, g := range sp.prog.Globals {
		if len(gdu.WritersOf(g.Sym)) == 0 {
			sp.invGlobal[g.Sym] = true
		}
	}
}

// argSpec describes a specializable argument value.
type argSpec struct {
	lit    *minic.IntLit // same integer literal at every site
	global *minic.Symbol // same invariant global at every site
}

func (a argSpec) key() string {
	if a.lit != nil {
		return fmt.Sprintf("#%d", a.lit.Val)
	}
	if a.global != nil {
		return "@" + a.global.Name
	}
	return "?"
}

// classifyArg recognizes a specializable argument expression.
func (sp *specializer) classifyArg(e minic.Expr) (argSpec, bool) {
	switch e := e.(type) {
	case *minic.IntLit:
		return argSpec{lit: e}, true
	case *minic.Ident:
		if e.Sym != nil && e.Sym.Kind == minic.SymGlobal && sp.invGlobal[e.Sym] {
			return argSpec{global: e.Sym}, true
		}
	}
	return argSpec{}, false
}

func (sp *specializer) specializeFunc(fn *minic.FuncDecl, res *Result) {
	if fn.Body == nil || len(fn.Params) < 2 {
		return
	}
	// Collect direct call sites.
	type site struct {
		call *minic.Call
	}
	var sites []site
	for _, e := range sp.cg.Edges {
		if e.Callee == fn && !e.Indirect && e.Site != nil {
			sites = append(sites, site{call: e.Site})
		}
	}
	if len(sites) < sp.opts.MinSites {
		return
	}
	// Recursive functions are not specialized (their self-calls would need
	// rewriting inside the clone).
	if sp.cg.InCycle(fn) {
		return
	}

	// Group call sites by their specializable argument tuple; specialize
	// for the largest group.
	groups := map[string][]*minic.Call{}
	groupSpec := map[string]map[int]argSpec{}
	for _, st := range sites {
		specs := map[int]argSpec{}
		var key string
		for i := range fn.Params {
			if i >= len(st.call.Args) {
				break
			}
			if as, ok := sp.classifyArg(st.call.Args[i]); ok {
				specs[i] = as
				key += fmt.Sprintf("%d=%s;", i, as.key())
			}
		}
		if len(specs) == 0 {
			continue
		}
		// At least one parameter must remain live (the paper's quan keeps
		// val). When every argument is specializable, keep the first
		// literal-valued parameter — literals at one site typically vary
		// across sites, as quan's val does — falling back to the first
		// parameter.
		if len(specs) == len(fn.Params) {
			drop := -1
			for i := range fn.Params {
				if specs[i].lit != nil {
					drop = i
					break
				}
			}
			if drop == -1 {
				drop = 0
			}
			delete(specs, drop)
			key = ""
			for i := range fn.Params {
				if as, ok := specs[i]; ok {
					key += fmt.Sprintf("%d=%s;", i, as.key())
				}
			}
		}
		groups[key] = append(groups[key], st.call)
		groupSpec[key] = specs
	}
	var bestKey string
	for k, calls := range groups {
		if bestKey == "" || len(calls) > len(groups[bestKey]) ||
			(len(calls) == len(groups[bestKey]) && k < bestKey) {
			bestKey = k
		}
	}
	if bestKey == "" || len(groups[bestKey]) < sp.opts.MinSites {
		return
	}
	specs := groupSpec[bestKey]

	clone := sp.cloneSpecialized(fn, specs)
	sp.prog.Funcs = append(sp.prog.Funcs, clone)
	res.Created = append(res.Created, clone)

	// Redirect the agreeing call sites.
	kept := keptParams(fn, specs)
	for _, call := range groups[bestKey] {
		var args []minic.Expr
		for _, i := range kept {
			args = append(args, call.Args[i])
		}
		call.Fun = sp.prog.NewIdent(clone.Sym)
		call.Args = args
		res.Redirected++
	}
}

func allParamsSpecialized(specs map[int]argSpec, fn *minic.FuncDecl) bool {
	return len(specs) == len(fn.Params)
}

func keptParams(fn *minic.FuncDecl, specs map[int]argSpec) []int {
	var kept []int
	for i := range fn.Params {
		if _, ok := specs[i]; !ok {
			kept = append(kept, i)
		}
	}
	sort.Ints(kept)
	return kept
}

// cloneSpecialized builds the specialized clone of fn: dropped parameters
// are substituted by their literal or invariant-global expression.
func (sp *specializer) cloneSpecialized(fn *minic.FuncDecl, specs map[int]argSpec) *minic.FuncDecl {
	sp.seq++
	name := fmt.Sprintf("%s__spec%d", fn.Name, sp.seq)

	c := &cloner{prog: sp.prog, symMap: map[*minic.Symbol]*minic.Symbol{}, subst: map[*minic.Symbol]func() minic.Expr{}}
	nf := sp.prog.NewFuncDecl(name, fn.Ret)

	for i, p := range fn.Params {
		if as, ok := specs[i]; ok {
			old := p.Sym
			switch {
			case as.lit != nil:
				v := as.lit.Val
				c.subst[old] = func() minic.Expr { return sp.prog.NewIntLit(v) }
			case as.global != nil:
				g := as.global
				c.subst[old] = func() minic.Expr { return sp.prog.NewIdent(g) }
			}
			continue
		}
		np := sp.prog.NewVarDecl(p.Name, p.Type, nil)
		np.Sym = &minic.Symbol{
			Name: p.Name, Kind: minic.SymParam, Type: p.Type,
			Slot: nf.FrameWords, Func: nf,
			AddrTaken: p.Sym.AddrTaken,
		}
		c.symMap[p.Sym] = np.Sym
		nf.FrameWords += p.Type.Words()
		nf.Params = append(nf.Params, np)
	}
	c.fn = nf
	nf.Body = c.cloneStmt(fn.Body).(*minic.Block)

	nf.Sym = &minic.Symbol{Name: name, Kind: minic.SymFunc, Type: nf.FuncType(), FuncDecl: nf}
	return nf
}
