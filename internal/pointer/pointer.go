// Package pointer implements a unification-based, flow- and context-
// insensitive points-to analysis in the style of Steensgaard, standing in
// for the paper's global pointer analysis (Ding & Li cite Das's
// unification-based analysis [7]). It is field-insensitive: a struct and
// an array are each a single abstract object.
//
// The analysis answers the questions the reuse scheme asks:
//
//   - PointsTo(p): which variables may *p designate? Used to turn pointer
//     dereferences into inputs/outputs of a code segment.
//   - MayAlias(a, b): may two lvalue symbols overlap?
//   - FuncTargets(fp): which functions may a function pointer call? Used
//     by call-graph construction.
package pointer

import (
	"sort"

	"compreuse/internal/minic"
)

// node is an equivalence-class representative in the union-find structure.
// Every program variable gets a node; every node may have a points-to node
// (the abstract location its members point at).
type node struct {
	parent *node
	pts    *node
	// syms are the program symbols collapsed into this class.
	syms []*minic.Symbol
	// funcs are the function declarations in this class (targets of
	// function pointers).
	funcs []*minic.FuncDecl
}

func (n *node) find() *node {
	for n.parent != nil {
		if n.parent.parent != nil {
			n.parent = n.parent.parent // path halving
		}
		n = n.parent
	}
	return n
}

// Analysis is a completed points-to analysis over one program.
type Analysis struct {
	prog  *minic.Program
	nodes map[*minic.Symbol]*node
}

// Analyze runs the analysis over a checked program.
func Analyze(prog *minic.Program) *Analysis {
	a := &analyzer{
		Analysis: &Analysis{prog: prog, nodes: map[*minic.Symbol]*node{}},
	}
	a.run()
	return a.Analysis
}

type analyzer struct {
	*Analysis
}

func (a *analyzer) nodeOf(sym *minic.Symbol) *node {
	if n, ok := a.nodes[sym]; ok {
		return n.find()
	}
	n := &node{syms: []*minic.Symbol{sym}}
	a.nodes[sym] = n
	return n
}

// ptsOf returns (creating if needed) the points-to node of n.
func (a *analyzer) ptsOf(n *node) *node {
	n = n.find()
	if n.pts == nil {
		n.pts = &node{}
	}
	return n.pts.find()
}

// join unifies two classes (and, recursively, their points-to classes).
func (a *analyzer) join(x, y *node) {
	x, y = x.find(), y.find()
	if x == y {
		return
	}
	// Union by size of syms; y into x.
	if len(y.syms)+len(y.funcs) > len(x.syms)+len(x.funcs) {
		x, y = y, x
	}
	y.parent = x
	x.syms = append(x.syms, y.syms...)
	x.funcs = append(x.funcs, y.funcs...)
	y.syms, y.funcs = nil, nil
	switch {
	case x.pts == nil:
		x.pts = y.pts
	case y.pts != nil:
		xp, yp := x.pts, y.pts
		y.pts = nil
		a.join(xp, yp)
	}
}

func (a *analyzer) run() {
	for _, fn := range a.prog.Funcs {
		// Register the function itself as a pointable object.
		fnNode := a.nodeOf(fn.Sym)
		fnNode.funcs = append(fnNode.funcs, fn)
	}
	for _, g := range a.prog.Globals {
		if g.Init != nil {
			a.assign(a.nodeOf(g.Sym), g.Init)
		}
	}
	for _, fn := range a.prog.Funcs {
		if fn.Body != nil {
			a.walkStmt(fn, fn.Body)
		}
	}
}

func (a *analyzer) walkStmt(fn *minic.FuncDecl, s minic.Stmt) {
	switch s := s.(type) {
	case *minic.Block:
		for _, st := range s.Stmts {
			a.walkStmt(fn, st)
		}
	case *minic.DeclStmt:
		for _, d := range s.Decls {
			if d.Init != nil {
				a.assign(a.nodeOf(d.Sym), d.Init)
				a.walkExpr(fn, d.Init)
			}
			for _, e := range d.InitList {
				a.walkExpr(fn, e)
			}
		}
	case *minic.ExprStmt:
		a.walkExpr(fn, s.X)
	case *minic.IfStmt:
		a.walkExpr(fn, s.Cond)
		a.walkStmt(fn, s.Then)
		if s.Else != nil {
			a.walkStmt(fn, s.Else)
		}
	case *minic.WhileStmt:
		a.walkExpr(fn, s.Cond)
		a.walkStmt(fn, s.Body)
	case *minic.ForStmt:
		if s.Init != nil {
			a.walkStmt(fn, s.Init)
		}
		if s.Cond != nil {
			a.walkExpr(fn, s.Cond)
		}
		if s.Post != nil {
			a.walkExpr(fn, s.Post)
		}
		a.walkStmt(fn, s.Body)
	case *minic.ReturnStmt:
		if s.X != nil {
			// return e: the value flows to every caller's result; model by
			// assigning into the function's own symbol node (its "return
			// slot"), which call sites read from.
			a.assign(a.retNode(fn), s.X)
			a.walkExpr(fn, s.X)
		}
	case *minic.ReuseRegion:
		for _, e := range s.Inputs {
			a.walkExpr(fn, e)
		}
		a.walkStmt(fn, s.Body)
		for _, e := range s.Outputs {
			a.walkExpr(fn, e)
		}
	}
}

// retNode is the abstract "return value" location of fn: the points-to
// node of the function symbol itself serves this role.
func (a *analyzer) retNode(fn *minic.FuncDecl) *node {
	return a.ptsOf(a.nodeOf(fn.Sym))
}

// walkExpr visits nested expressions, collecting constraints from
// assignments and calls.
func (a *analyzer) walkExpr(fn *minic.FuncDecl, e minic.Expr) {
	switch e := e.(type) {
	case *minic.AssignExpr:
		a.walkExpr(fn, e.RHS)
		a.walkExpr(fn, e.LHS)
		if e.Op == minic.Assign {
			a.assignTo(e.LHS, e.RHS)
		}
	case *minic.Call:
		for _, arg := range e.Args {
			a.walkExpr(fn, arg)
		}
		a.walkExpr(fn, e.Fun)
		// calleeNodes binds arguments to parameters as a side effect.
		a.calleeNodes(e)
	case *minic.Unary:
		a.walkExpr(fn, e.X)
	case *minic.IncDec:
		a.walkExpr(fn, e.X)
	case *minic.Binary:
		a.walkExpr(fn, e.X)
		a.walkExpr(fn, e.Y)
	case *minic.Cond:
		a.walkExpr(fn, e.Cond)
		a.walkExpr(fn, e.Then)
		a.walkExpr(fn, e.Else)
	case *minic.Index:
		a.walkExpr(fn, e.X)
		a.walkExpr(fn, e.Idx)
	case *minic.FieldExpr:
		a.walkExpr(fn, e.X)
	case *minic.Cast:
		a.walkExpr(fn, e.X)
	}
}

// assignTo handles "lhs = rhs" for any lvalue shape.
func (a *analyzer) assignTo(lhs, rhs minic.Expr) {
	switch l := lhs.(type) {
	case *minic.Ident:
		a.assign(a.nodeOf(l.Sym), rhs)
	case *minic.Unary:
		if l.Op == minic.Star {
			// *p = rhs: whatever rhs points at flows into pts(pts(p)).
			if base := a.exprNode(l.X); base != nil {
				dst := a.ptsOf(base)
				a.assign(dst, rhs)
			}
		}
	case *minic.Index:
		// a[i] = rhs: field/element-insensitive — flows into the array
		// object (for pointer bases, into the pointee).
		if obj := a.lvalueObject(l); obj != nil {
			a.assign(obj, rhs)
		}
	case *minic.FieldExpr:
		if obj := a.lvalueObject(l); obj != nil {
			a.assign(obj, rhs)
		}
	}
}

// lvalueObject returns the abstract object node an lvalue designates.
func (a *analyzer) lvalueObject(e minic.Expr) *node {
	switch e := e.(type) {
	case *minic.Ident:
		return a.nodeOf(e.Sym)
	case *minic.Index:
		base := a.exprNode(e.X)
		if base == nil {
			return nil
		}
		// For an array variable the object is the variable itself; for a
		// pointer it is the pointee. exprNode on an array Ident returns
		// the array's node, and indexing stays within that object.
		if _, isPtr := decay(e.X.Type()).(*minic.Pointer); isPtr {
			if _, isArr := e.X.Type().(*minic.Array); !isArr {
				return a.ptsOf(base)
			}
		}
		return base
	case *minic.FieldExpr:
		if e.Arrow {
			base := a.exprNode(e.X)
			if base == nil {
				return nil
			}
			return a.ptsOf(base)
		}
		return a.lvalueObject(e.X)
	case *minic.Unary:
		if e.Op == minic.Star {
			base := a.exprNode(e.X)
			if base == nil {
				return nil
			}
			return a.ptsOf(base)
		}
	}
	return nil
}

func decay(t minic.Type) minic.Type {
	if at, ok := t.(*minic.Array); ok {
		return &minic.Pointer{Elem: at.Elem}
	}
	return t
}

// assign adds the constraint dst = rhs (value flow).
func (a *analyzer) assign(dst *node, rhs minic.Expr) {
	switch r := rhs.(type) {
	case *minic.Ident:
		if r.Sym == nil {
			return
		}
		if r.Sym.Kind == minic.SymFunc {
			// dst = f: dst points at the function.
			a.join(a.ptsOf(dst), a.nodeOf(r.Sym))
			return
		}
		if minic.IsAggregate(r.Sym.Type) {
			// Array decay: dst = arr means dst points at arr's object.
			a.join(a.ptsOf(dst), a.nodeOf(r.Sym))
			return
		}
		// Scalar copy: unify points-to sets (Steensgaard join).
		a.join(a.ptsOf(dst), a.ptsOf(a.nodeOf(r.Sym)))
	case *minic.Unary:
		switch r.Op {
		case minic.Amp:
			if obj := a.lvalueObject(r.X); obj != nil {
				a.join(a.ptsOf(dst), obj)
			}
		case minic.Star:
			if base := a.exprNode(r.X); base != nil {
				a.join(a.ptsOf(dst), a.ptsOf(a.ptsOf(base)))
			}
		}
	case *minic.Index:
		if obj := a.lvalueObject(r); obj != nil {
			a.join(a.ptsOf(dst), a.ptsOf(obj))
		}
	case *minic.FieldExpr:
		if obj := a.lvalueObject(r); obj != nil {
			a.join(a.ptsOf(dst), a.ptsOf(obj))
		}
	case *minic.AssignExpr:
		a.assign(dst, r.LHS)
	case *minic.Cond:
		a.assign(dst, r.Then)
		a.assign(dst, r.Else)
	case *minic.Cast:
		a.assign(dst, r.X)
	case *minic.Call:
		// dst = f(...): the callee's return slot (pts of the function
		// node) is a scalar holding the value; copy its points-to set.
		for _, callee := range a.calleeNodes(r) {
			a.join(a.ptsOf(dst), a.ptsOf(a.ptsOf(callee)))
		}
	case *minic.Binary:
		// Pointer arithmetic: p + i points wherever p points.
		a.assign(dst, r.X)
		a.assign(dst, r.Y)
	case *minic.IntLit, *minic.FloatLit, *minic.StrLit, *minic.SizeofExpr, *minic.IncDec:
		// No pointer flow.
	}
}

// exprNode returns the node holding the value of a pointer-valued
// expression, or nil when the expression cannot carry a pointer.
func (a *analyzer) exprNode(e minic.Expr) *node {
	switch e := e.(type) {
	case *minic.Ident:
		if e.Sym == nil {
			return nil
		}
		return a.nodeOf(e.Sym)
	case *minic.Unary:
		switch e.Op {
		case minic.Star:
			if base := a.exprNode(e.X); base != nil {
				return a.ptsOf(base)
			}
		case minic.Amp:
			// &x used directly (e.g. (&x)[i]): a fresh node pointing at x.
			if obj := a.lvalueObject(e.X); obj != nil {
				tmp := &node{}
				a.join(a.ptsOf(tmp), obj)
				return tmp
			}
		}
		return nil
	case *minic.Index:
		if obj := a.lvalueObject(e); obj != nil {
			// The element value lives in the object; for pointer-valued
			// elements its pts is the object's pts.
			return obj
		}
		return nil
	case *minic.FieldExpr:
		return a.lvalueObject(e)
	case *minic.Cast:
		return a.exprNode(e.X)
	case *minic.Binary:
		// Pointer arithmetic result.
		if n := a.exprNode(e.X); n != nil {
			return n
		}
		return a.exprNode(e.Y)
	case *minic.AssignExpr:
		return a.exprNode(e.LHS)
	case *minic.Cond:
		// Either branch; join them.
		x, y := a.exprNode(e.Then), a.exprNode(e.Else)
		if x == nil {
			return y
		}
		if y != nil {
			a.join(x, y)
		}
		return x
	case *minic.Call:
		nodes := a.calleeNodes(e)
		if len(nodes) == 0 {
			return nil
		}
		ret := a.ptsOf(nodes[0])
		for _, n := range nodes[1:] {
			a.join(ret, a.ptsOf(n))
		}
		return ret
	}
	return nil
}

// calleeNodes returns the function-symbol nodes a call may target and adds
// parameter-binding constraints.
func (a *analyzer) calleeNodes(c *minic.Call) []*node {
	var fns []*minic.FuncDecl
	if id, ok := c.Fun.(*minic.Ident); ok && id.Sym != nil && id.Sym.Kind == minic.SymFunc {
		if id.Sym.FuncDecl != nil {
			fns = []*minic.FuncDecl{id.Sym.FuncDecl}
		}
		// Builtins have no body and no pointer behavior.
	} else if n := a.exprNode(c.Fun); n != nil {
		// Indirect call: the function objects live in the pointee class of
		// the function-pointer value.
		n = n.find()
		fns = append(fns, n.funcs...)
		if n.pts != nil {
			fns = append(fns, n.pts.find().funcs...)
		}
	}
	var out []*node
	for _, fn := range fns {
		out = append(out, a.nodeOf(fn.Sym))
		for i, p := range fn.Params {
			if i < len(c.Args) {
				a.assign(a.nodeOf(p.Sym), c.Args[i])
			}
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Queries

// PointsTo returns the symbols *sym may designate, sorted by name.
func (a *Analysis) PointsTo(sym *minic.Symbol) []*minic.Symbol {
	n, ok := a.nodes[sym]
	if !ok {
		return nil
	}
	n = n.find()
	if n.pts == nil {
		return nil
	}
	pts := n.pts.find()
	out := append([]*minic.Symbol(nil), pts.syms...)
	sortSyms(out)
	return out
}

// MayAlias reports whether lvalues a and b (or storage reachable from
// them) may overlap: they are in the same class, or either may point into
// the other's class.
func (a *Analysis) MayAlias(x, y *minic.Symbol) bool {
	nx, okx := a.nodes[x]
	ny, oky := a.nodes[y]
	if !okx || !oky {
		return false
	}
	nx, ny = nx.find(), ny.find()
	if nx == ny {
		return true
	}
	if nx.pts != nil && nx.pts.find() == ny {
		return true
	}
	if ny.pts != nil && ny.pts.find() == nx {
		return true
	}
	return false
}

// FuncTargets returns the functions a function-pointer-valued symbol may
// reference.
func (a *Analysis) FuncTargets(sym *minic.Symbol) []*minic.FuncDecl {
	n, ok := a.nodes[sym]
	if !ok {
		return nil
	}
	n = n.find()
	if n.pts == nil {
		return nil
	}
	pts := n.pts.find()
	out := append([]*minic.FuncDecl(nil), pts.funcs...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// CallTargets resolves the possible callees of a call expression: a single
// declared function for direct calls, or the points-to set of the function
// pointer for indirect calls.
func (a *Analysis) CallTargets(c *minic.Call) []*minic.FuncDecl {
	if id, ok := c.Fun.(*minic.Ident); ok && id.Sym != nil && id.Sym.Kind == minic.SymFunc {
		if id.Sym.FuncDecl != nil {
			return []*minic.FuncDecl{id.Sym.FuncDecl}
		}
		return nil // builtin
	}
	// Indirect: find the expression's node; targets live in its pointee
	// class (a function pointer value points at function objects).
	az := &analyzer{Analysis: a}
	n := az.exprNode(c.Fun)
	if n == nil {
		return nil
	}
	n = n.find()
	out := append([]*minic.FuncDecl(nil), n.funcs...)
	if n.pts != nil {
		out = append(out, n.pts.find().funcs...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func sortSyms(syms []*minic.Symbol) {
	sort.Slice(syms, func(i, j int) bool {
		if syms[i].Name != syms[j].Name {
			return syms[i].Name < syms[j].Name
		}
		return syms[i].Kind < syms[j].Kind
	})
}
