package pointer

import (
	"testing"

	"compreuse/internal/minic"
)

func analyze(t *testing.T, src string) (*minic.Program, *Analysis) {
	t.Helper()
	prog, err := minic.Parse("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := minic.Check(prog); err != nil {
		t.Fatal(err)
	}
	return prog, Analyze(prog)
}

func symOf(t *testing.T, prog *minic.Program, fn, name string) *minic.Symbol {
	t.Helper()
	if fn == "" {
		if g := prog.Global(name); g != nil {
			return g.Sym
		}
		t.Fatalf("no global %s", name)
	}
	f := prog.Func(fn)
	for _, p := range f.Params {
		if p.Name == name {
			return p.Sym
		}
	}
	for _, id := range minic.Idents(f.Body) {
		if id.Name == name && id.Sym != nil {
			return id.Sym
		}
	}
	t.Fatalf("no symbol %s in %s", name, fn)
	return nil
}

func hasSym(syms []*minic.Symbol, name string) bool {
	for _, s := range syms {
		if s.Name == name {
			return true
		}
	}
	return false
}

func TestAddressOf(t *testing.T) {
	prog, a := analyze(t, `
int x;
int y;
int *p;
int main(void) { p = &x; return *p; }`)
	pts := a.PointsTo(symOf(t, prog, "", "p"))
	if !hasSym(pts, "x") {
		t.Fatalf("p points to %v, want x", pts)
	}
	if hasSym(pts, "y") {
		t.Fatalf("p must not point to y: %v", pts)
	}
}

func TestCopyPropagation(t *testing.T) {
	prog, a := analyze(t, `
int x;
int *p;
int *q;
int main(void) { p = &x; q = p; return *q; }`)
	if !hasSym(a.PointsTo(symOf(t, prog, "", "q")), "x") {
		t.Fatal("q = p must propagate the points-to set")
	}
}

func TestInterproceduralFlow(t *testing.T) {
	// The paper's requirement: "a local pointer in one procedure which
	// points to a local variable in another procedure".
	prog, a := analyze(t, `
int use(int *ptr) { return *ptr; }
int main(void) {
    int local;
    return use(&local);
}`)
	pts := a.PointsTo(symOf(t, prog, "use", "ptr"))
	if !hasSym(pts, "local") {
		t.Fatalf("parameter binding lost: ptr -> %v", pts)
	}
}

func TestReturnFlow(t *testing.T) {
	prog, a := analyze(t, `
int g;
int *getp(void) { return &g; }
int main(void) {
    int *p = getp();
    return *p;
}`)
	if !hasSym(a.PointsTo(symOf(t, prog, "main", "p")), "g") {
		t.Fatal("return value flow lost")
	}
}

func TestMayAlias(t *testing.T) {
	prog, a := analyze(t, `
int x;
int y;
int main(void) {
    int *p = &x;
    int *q = &x;
    int *r = &y;
    return *p + *q + *r;
}`)
	p := symOf(t, prog, "main", "p")
	q := symOf(t, prog, "main", "q")
	r := symOf(t, prog, "main", "r")
	x := symOf(t, prog, "", "x")
	if !a.MayAlias(p, x) {
		t.Fatal("p aliases x")
	}
	if !a.MayAlias(q, x) {
		t.Fatal("q aliases x")
	}
	if a.MayAlias(r, x) {
		t.Fatal("r must not alias x")
	}
}

func TestFunctionPointerTargets(t *testing.T) {
	prog, a := analyze(t, `
int inc(int v) { return v + 1; }
int dec(int v) { return v - 1; }
int other(int v) { return v; }
int main(void) {
    int (*op)(int);
    int sel = 1;
    if (sel) op = inc;
    else op = dec;
    return op(5);
}`)
	targets := a.FuncTargets(symOf(t, prog, "main", "op"))
	names := map[string]bool{}
	for _, f := range targets {
		names[f.Name] = true
	}
	if !names["inc"] || !names["dec"] {
		t.Fatalf("op targets %v, want inc and dec", names)
	}
	if names["other"] {
		t.Fatal("op must not target other (address never taken into op)")
	}
}

func TestCallTargetsIndirect(t *testing.T) {
	prog, a := analyze(t, `
int f1(int v) { return v; }
int f2(int v) { return v * 2; }
int dispatch(int (*h)(int), int v) { return h(v); }
int main(void) { return dispatch(f1, 1) + dispatch(f2, 2); }`)
	var call *minic.Call
	minic.InspectExprs(prog.Func("dispatch").Body, func(e minic.Expr) bool {
		if c, ok := e.(*minic.Call); ok {
			call = c
		}
		return true
	})
	targets := a.CallTargets(call)
	if len(targets) != 2 {
		t.Fatalf("indirect call targets: %v", targets)
	}
}

func TestCallTargetsDirect(t *testing.T) {
	prog, a := analyze(t, `
int leaf(int v) { return v; }
int main(void) { return leaf(3); }`)
	var call *minic.Call
	minic.InspectExprs(prog.Func("main").Body, func(e minic.Expr) bool {
		if c, ok := e.(*minic.Call); ok {
			call = c
		}
		return true
	})
	targets := a.CallTargets(call)
	if len(targets) != 1 || targets[0].Name != "leaf" {
		t.Fatalf("direct call targets: %v", targets)
	}
}

func TestArrayDecayFlow(t *testing.T) {
	prog, a := analyze(t, `
int table[8];
int sum(int *p, int n) {
    int s = 0;
    int i;
    for (i = 0; i < n; i++) s += p[i];
    return s;
}
int main(void) { return sum(table, 8); }`)
	if !hasSym(a.PointsTo(symOf(t, prog, "sum", "p")), "table") {
		t.Fatal("array argument decay lost")
	}
}

func TestStoreThroughPointer(t *testing.T) {
	prog, a := analyze(t, `
int x;
int *gp;
int main(void) {
    int *local = &x;
    gp = local;
    *gp = 3;
    return x;
}`)
	if !hasSym(a.PointsTo(symOf(t, prog, "", "gp")), "x") {
		t.Fatal("gp must point to x")
	}
}

func TestDoubleIndirection(t *testing.T) {
	prog, a := analyze(t, `
int x;
int main(void) {
    int *p = &x;
    int **pp = &p;
    int *q = *pp;
    return *q;
}`)
	if !hasSym(a.PointsTo(symOf(t, prog, "main", "pp")), "p") {
		t.Fatal("pp must point to p")
	}
	if !hasSym(a.PointsTo(symOf(t, prog, "main", "q")), "x") {
		t.Fatal("q = *pp must point to x")
	}
}

func TestStructFieldInsensitive(t *testing.T) {
	// Field-insensitive: a pointer stored in any field aliases the struct
	// object as a whole.
	prog, a := analyze(t, `
struct holder { int *ptr; int pad; };
int x;
struct holder h;
int main(void) {
    h.ptr = &x;
    return *h.ptr;
}`)
	// The struct object's class must contain x in its points-to set.
	h := symOf(t, prog, "", "h")
	pts := a.PointsTo(h)
	if !hasSym(pts, "x") {
		t.Fatalf("h's object must point to x, got %v", pts)
	}
}

func TestPointerArithPreservesTarget(t *testing.T) {
	prog, a := analyze(t, `
int arr[10];
int main(void) {
    int *p = arr;
    int *q = p + 3;
    return *q;
}`)
	if !hasSym(a.PointsTo(symOf(t, prog, "main", "q")), "arr") {
		t.Fatal("q = p + 3 must still point at arr")
	}
}
