// Package cost defines the cycle cost model of the simulated 206 MHz
// StrongARM SA-1110 target (the paper's Compaq iPAQ 3650), the hashing
// overhead estimate, and the cost–benefit formulas (1)–(4) of Ding & Li
// (CGO 2004, §2.2–§2.3).
//
// The same Model drives both the static estimates used by the compiler
// (granularity lower bound, hashing-overhead upper bound) and the dynamic
// cycle accounting in the VM, so the compiler's decisions and the measured
// outcomes are consistent by construction — exactly the property the
// paper's scheme relies on.
package cost

// ClockHz is the modeled CPU frequency (206 MHz SA-1110).
const ClockHz = 206e6

// Model is a table of per-operation cycle costs. Two instances exist:
// O0 models unoptimized GCC output (every variable access is a memory
// access); O3 models optimized output (scalar locals live in registers).
type Model struct {
	Name string

	// Integer ALU operations. The SA-1110 has no hardware divider, so
	// division and modulo are costly library calls.
	IntALU int64 // add, sub, logical, shift, compare
	IntMul int64
	IntDiv int64

	// Software-emulated double-precision floating point (no FPU).
	FloatAdd int64
	FloatMul int64
	FloatDiv int64
	FloatCmp int64
	Conv     int64 // int<->float conversion

	// Memory.
	Load  int64
	Store int64
	// LocalAccess is the extra cost of touching a scalar local or
	// parameter: a memory access at O0, free (registerized) at O3.
	LocalAccess int64

	// Control.
	Branch int64
	Call   int64 // call + prologue
	Ret    int64

	// Hashing components (paper §2.1: overhead proportional to input and
	// output sizes).
	HashFixed      int64 // index computation, bookkeeping
	HashModulo     int64 // key mod size for keys <= 32 bits
	JenkinsPerByte int64 // per-byte cost of the Jenkins hash for wide keys
	KeyPerWord     int64 // forming/comparing one 4-byte key word
	CopyPerWord    int64 // copying one output word to/from the table
}

// O0 returns the cost model for unoptimized code.
func O0() *Model {
	return &Model{
		Name:   "O0",
		IntALU: 1, IntMul: 4, IntDiv: 22,
		FloatAdd: 140, FloatMul: 240, FloatDiv: 560, FloatCmp: 90, Conv: 60,
		Load: 2, Store: 2, LocalAccess: 2,
		Branch: 2, Call: 12, Ret: 8,
		// HashModulo is far below IntDiv: the table size is loop-invariant,
		// so the generated code divides by a known constant
		// (reciprocal-multiply sequence, ~10 cycles on SA-1110).
		HashFixed: 8, HashModulo: 12, JenkinsPerByte: 18, KeyPerWord: 5, CopyPerWord: 5,
	}
}

// O3 returns the cost model for aggressively optimized code. Arithmetic
// latencies are mostly hardware properties; the main difference is that
// scalar locals are registerized (LocalAccess 0), the soft-float and
// hashing helpers are tighter, and the optimizer (internal/opt) has removed
// work before the count is taken.
func O3() *Model {
	return &Model{
		Name:   "O3",
		IntALU: 1, IntMul: 4, IntDiv: 22,
		FloatAdd: 120, FloatMul: 200, FloatDiv: 520, FloatCmp: 80, Conv: 50,
		// Scheduled loads/stores hide latency that O0's naive code pays.
		Load: 1, Store: 1, LocalAccess: 0,
		Branch: 1, Call: 8, Ret: 5,
		// The table probe remains memory-bound: its relative price rises
		// at O3, which is why the paper's O3 speedups are smaller.
		HashFixed: 6, HashModulo: 10, JenkinsPerByte: 16, KeyPerWord: 4, CopyPerWord: 4,
	}
}

// ModelFor returns the model for an optimization level ("O0" or "O3").
func ModelFor(level string) *Model {
	if level == "O3" {
		return O3()
	}
	return O0()
}

// HashOverhead estimates the cycles of the extra operations performed on
// one execution instance of a transformed segment. The paper notes a hit
// and a miss perform the same number of extra operations: both form the
// key, hash it, compare the resident key, and copy the outputs (out of the
// table on a hit, into it on a miss).
func (m *Model) HashOverhead(keyBytes int, outBytes int) int64 {
	keyWords := (keyBytes + 3) / 4
	outWords := (outBytes + 3) / 4
	o := m.HashFixed
	// Key formation and residence check.
	o += int64(keyWords) * m.KeyPerWord * 2
	// Index computation.
	if keyBytes <= 4 {
		o += m.HashModulo
	} else {
		o += int64(keyBytes)*m.JenkinsPerByte + m.HashModulo
	}
	// Output copy.
	o += int64(outWords) * m.CopyPerWord
	return o
}

// DepOverhead estimates the per-instance overhead of a dependence-
// tracked (footprint-trie) probe that reads footprintWords locations:
// each trie level loads the named location, forms and compares one key
// word, and indexes one node table; the fixed bookkeeping and the output
// copy match HashOverhead. Unlike HashOverhead there is no per-byte
// Jenkins pass over a wide flat key — the probe only ever touches the
// locations the computation depends on, which is the economics that
// lets dependence-tracked keys flip O/C ≥ 1 rejections (see
// internal/depmemo).
func (m *Model) DepOverhead(footprintWords int, outBytes int) int64 {
	outWords := (outBytes + 3) / 4
	o := m.HashFixed
	o += int64(footprintWords) * (m.Load + m.KeyPerWord*2 + m.HashModulo)
	o += int64(outWords) * m.CopyPerWord
	return o
}

// Seconds converts cycles to seconds at the modeled clock.
func Seconds(cycles int64) float64 { return float64(cycles) / ClockHz }

// Micros converts cycles to microseconds at the modeled clock.
func Micros(cycles int64) float64 { return float64(cycles) / ClockHz * 1e6 }
