package cost

// This file implements the paper's cost–benefit analysis (§2.2, §2.3).
//
// For a segment with computation granularity C (cycles per instance),
// hashing overhead O (cycles per instance) and input reuse rate R:
//
//	new cost      = (C+O)·(1−R) + O·R              (formula 1)
//	gain          = C − new cost = R·C − O          (formula 2)
//	profitable    ⇔ R·C − O > 0  ⇔  R > O/C        (formula 3)
//
// and for nested segments with gains g1 (outer) and g2 (inner), where each
// outer instance executes n inner instances on average:
//
//	reuse the inner ⇔ g1 − n·g2 < 0                 (formula 4)

// Profile carries the measured quantities for one code segment.
type Profile struct {
	// C is the computation granularity in cycles per instance.
	C float64
	// O is the hashing overhead in cycles per instance.
	O float64
	// N is the number of execution instances.
	N int64
	// Nds is the number of distinct input sets.
	Nds int64
}

// ReuseRate returns R = 1 − Nds/N (paper §2.1), or 0 when N == 0.
func (p Profile) ReuseRate() float64 {
	if p.N == 0 {
		return 0
	}
	return 1 - float64(p.Nds)/float64(p.N)
}

// NewCost evaluates formula (1): the per-instance cost after transforming.
func (p Profile) NewCost() float64 {
	r := p.ReuseRate()
	return (p.C+p.O)*(1-r) + p.O*r
}

// Gain evaluates formula (2): the per-instance gain R·C − O.
func (p Profile) Gain() float64 {
	return p.ReuseRate()*p.C - p.O
}

// Profitable evaluates formula (3).
func (p Profile) Profitable() bool { return p.Gain() > 0 }

// RatioOK reports whether O/C < 1, the pre-profiling filter the paper uses
// to limit value-set profiling cost (a segment with O ≥ C can never
// profit even at R = 1).
func (p Profile) RatioOK() bool { return p.C > 0 && p.O/p.C < 1 }

// TotalGain returns the whole-run gain in cycles, Gain()·N.
func (p Profile) TotalGain() float64 { return p.Gain() * float64(p.N) }

// PreferInner evaluates formula (4): with outer gain g1, inner gain g2 and
// n inner instances per outer instance, reusing the inner segment wins when
// g1 − n·g2 < 0.
func PreferInner(g1, g2, n float64) bool { return g1-n*g2 < 0 }
