package cost

import (
	"compreuse/internal/minic"
)

// Static estimates segment costs from the AST alone, before any profiling.
// The compiler uses two bounds per segment (paper §3.1):
//
//   - an optimistic granularity estimate MaxCycles (loops with known
//     constant trip counts are fully expanded; unknown loops are assumed to
//     run DefaultTrips iterations; branches take their more expensive arm),
//     used in the O/C < 1 pre-profiling filter — a segment whose optimistic
//     C still cannot beat the hashing overhead is removed, because even at
//     R = 1 formula (3) could not hold;
//   - a pessimistic estimate MinCycles (unknown or breakable loops run one
//     iteration; branches take their cheaper arm), reported for
//     diagnostics.
//
// The authoritative C is measured later, during value-set profiling, by the
// VM's per-segment cycle accounting.
type Static struct {
	M    *Model
	Prog *minic.Program
	// DefaultTrips is the assumed iteration count of loops whose trip
	// count cannot be derived statically.
	DefaultTrips int64

	funcMax map[*minic.FuncDecl]int64
	funcMin map[*minic.FuncDecl]int64
	active  map[*minic.FuncDecl]bool
}

// NewStatic returns an estimator over prog with cost model m.
func NewStatic(m *Model, prog *minic.Program) *Static {
	return &Static{
		M: m, Prog: prog, DefaultTrips: 8,
		funcMax: map[*minic.FuncDecl]int64{},
		funcMin: map[*minic.FuncDecl]int64{},
		active:  map[*minic.FuncDecl]bool{},
	}
}

// MaxCycles returns the optimistic per-instance granularity of stmt.
func (s *Static) MaxCycles(stmt minic.Stmt) int64 { return s.stmtCost(stmt, true) }

// MinCycles returns the pessimistic per-instance granularity of stmt.
func (s *Static) MinCycles(stmt minic.Stmt) int64 { return s.stmtCost(stmt, false) }

// FuncCycles estimates a whole call of fn, including call and return
// overhead.
func (s *Static) FuncCycles(fn *minic.FuncDecl, optimistic bool) int64 {
	memo := s.funcMin
	if optimistic {
		memo = s.funcMax
	}
	if c, ok := memo[fn]; ok {
		return c
	}
	if s.active[fn] || fn.Body == nil {
		// Recursive cycle or external function: count the call itself only.
		return s.M.Call + s.M.Ret
	}
	s.active[fn] = true
	c := s.M.Call + s.M.Ret + s.stmtCost(fn.Body, optimistic)
	s.active[fn] = false
	memo[fn] = c
	return c
}

func (s *Static) stmtCost(stmt minic.Stmt, opt bool) int64 {
	if stmt == nil {
		return 0
	}
	m := s.M
	switch st := stmt.(type) {
	case *minic.Block:
		var c int64
		for _, x := range st.Stmts {
			c += s.stmtCost(x, opt)
		}
		return c
	case *minic.DeclStmt:
		var c int64
		for _, d := range st.Decls {
			if d.Init != nil {
				c += s.exprCost(d.Init, opt) + m.LocalAccess
			}
			if d.InitList != nil {
				c += int64(len(d.InitList)) * m.Store
			}
		}
		return c
	case *minic.ExprStmt:
		return s.exprCost(st.X, opt)
	case *minic.IfStmt:
		c := s.exprCost(st.Cond, opt) + m.Branch
		t := s.stmtCost(st.Then, opt)
		var e int64
		if st.Else != nil {
			e = s.stmtCost(st.Else, opt)
		}
		if opt {
			if t > e {
				return c + t
			}
			return c + e
		}
		if t < e {
			return c + t
		}
		return c + e
	case *minic.WhileStmt:
		per := s.exprCost(st.Cond, opt) + m.Branch + s.stmtCost(st.Body, opt)
		return per * s.loopTrips(nil, st, opt)
	case *minic.ForStmt:
		c := s.stmtCost(st.Init, opt)
		per := m.Branch + s.stmtCost(st.Body, opt)
		if st.Cond != nil {
			per += s.exprCost(st.Cond, opt)
		}
		if st.Post != nil {
			per += s.exprCost(st.Post, opt)
		}
		return c + per*s.loopTrips(st, nil, opt)
	case *minic.ReturnStmt:
		if st.X != nil {
			return s.exprCost(st.X, opt)
		}
		return 0
	case *minic.ReuseRegion:
		return s.stmtCost(st.Body, opt)
	case *minic.BreakStmt, *minic.ContinueStmt, *minic.EmptyStmt:
		return 0
	}
	return 0
}

// loopTrips estimates iteration counts. Exactly one of f (for) and w
// (while) is non-nil.
func (s *Static) loopTrips(f *minic.ForStmt, w *minic.WhileStmt, opt bool) int64 {
	var body minic.Stmt
	if f != nil {
		body = f.Body
	} else {
		body = w.Body
	}
	breakable := hasEscape(body)
	if f != nil {
		if n, ok := ConstTripCount(f); ok {
			if !opt && breakable {
				return 1
			}
			return n
		}
	}
	if opt {
		return s.DefaultTrips
	}
	if w != nil && w.DoWhile {
		return 1
	}
	if breakable {
		return 1
	}
	return 1
}

// hasEscape reports whether body contains a break or return that could cut
// the loop short (nested loops shield their own breaks).
func hasEscape(body minic.Stmt) bool {
	found := false
	var walk func(minic.Stmt, bool)
	walk = func(st minic.Stmt, top bool) {
		if st == nil || found {
			return
		}
		switch x := st.(type) {
		case *minic.BreakStmt:
			if top {
				found = true
			}
		case *minic.ReturnStmt:
			found = true
		case *minic.Block:
			for _, y := range x.Stmts {
				walk(y, top)
			}
		case *minic.IfStmt:
			walk(x.Then, top)
			walk(x.Else, top)
		case *minic.WhileStmt:
			walk(x.Body, false)
		case *minic.ForStmt:
			walk(x.Body, false)
		case *minic.ReuseRegion:
			walk(x.Body, top)
		}
	}
	walk(body, true)
	return found
}

// ConstTripCount recognizes the canonical counted loop
// for (i = lo; i < hi; i++) — also <=, and i += step — with integer
// literal bounds, and returns its trip count.
func ConstTripCount(f *minic.ForStmt) (int64, bool) {
	var iv *minic.Symbol
	var lo int64
	switch init := f.Init.(type) {
	case *minic.DeclStmt:
		if len(init.Decls) != 1 || init.Decls[0].Init == nil {
			return 0, false
		}
		lit, ok := init.Decls[0].Init.(*minic.IntLit)
		if !ok {
			return 0, false
		}
		iv, lo = init.Decls[0].Sym, lit.Val
	case *minic.ExprStmt:
		as, ok := init.X.(*minic.AssignExpr)
		if !ok || as.Op != minic.Assign {
			return 0, false
		}
		id, ok := as.LHS.(*minic.Ident)
		if !ok {
			return 0, false
		}
		lit, ok := as.RHS.(*minic.IntLit)
		if !ok {
			return 0, false
		}
		iv, lo = id.Sym, lit.Val
	default:
		return 0, false
	}

	cond, ok := f.Cond.(*minic.Binary)
	if !ok {
		return 0, false
	}
	condID, ok := cond.X.(*minic.Ident)
	if !ok || condID.Sym != iv {
		return 0, false
	}
	hiLit, ok := cond.Y.(*minic.IntLit)
	if !ok {
		return 0, false
	}
	hi := hiLit.Val
	incl := false
	switch cond.Op {
	case minic.Lt:
	case minic.Le:
		incl = true
	default:
		return 0, false
	}

	step := int64(0)
	switch post := f.Post.(type) {
	case *minic.IncDec:
		id, ok := post.X.(*minic.Ident)
		if !ok || id.Sym != iv || post.Op != minic.Inc {
			return 0, false
		}
		step = 1
	case *minic.AssignExpr:
		id, ok := post.LHS.(*minic.Ident)
		if !ok || id.Sym != iv || post.Op != minic.PlusEq {
			return 0, false
		}
		lit, ok := post.RHS.(*minic.IntLit)
		if !ok || lit.Val <= 0 {
			return 0, false
		}
		step = lit.Val
	default:
		return 0, false
	}

	// The induction variable must not be written in the body.
	written := false
	minic.InspectExprs(f.Body, func(e minic.Expr) bool {
		switch x := e.(type) {
		case *minic.AssignExpr:
			if id, ok := x.LHS.(*minic.Ident); ok && id.Sym == iv {
				written = true
			}
		case *minic.IncDec:
			if id, ok := x.X.(*minic.Ident); ok && id.Sym == iv {
				written = true
			}
		case *minic.Unary:
			if x.Op == minic.Amp {
				if id, ok := x.X.(*minic.Ident); ok && id.Sym == iv {
					written = true
				}
			}
		}
		return !written
	})
	if written {
		return 0, false
	}

	if incl {
		hi++
	}
	if hi <= lo {
		return 0, true
	}
	return (hi - lo + step - 1) / step, true
}

func (s *Static) exprCost(e minic.Expr, opt bool) int64 {
	if e == nil {
		return 0
	}
	m := s.M
	switch x := e.(type) {
	case *minic.IntLit, *minic.FloatLit, *minic.StrLit, *minic.SizeofExpr:
		return m.IntALU
	case *minic.Ident:
		return s.identCost(x)
	case *minic.Unary:
		c := s.exprCost(x.X, opt)
		switch x.Op {
		case minic.Star:
			return c + m.Load
		case minic.Amp:
			return c // address formation is part of the operand walk
		default:
			if minic.IsFloat(x.Type()) {
				return c + m.FloatAdd
			}
			return c + m.IntALU
		}
	case *minic.IncDec:
		return s.lvalueCost(x.X, opt) + s.readWriteCost(x.X) + m.IntALU
	case *minic.Binary:
		c := s.exprCost(x.X, opt) + s.exprCost(x.Y, opt)
		return c + s.binOpCost(x)
	case *minic.AssignExpr:
		c := s.exprCost(x.RHS, opt) + s.lvalueCost(x.LHS, opt) + s.writeCost(x.LHS)
		if x.Op != minic.Assign {
			// Compound assignment also reads the target and applies the op.
			c += s.readCost(x.LHS) + m.IntALU
		}
		return c
	case *minic.Cond:
		c := s.exprCost(x.Cond, opt) + m.Branch
		t := s.exprCost(x.Then, opt)
		f := s.exprCost(x.Else, opt)
		if opt == (t > f) {
			return c + t
		}
		return c + f
	case *minic.Call:
		c := int64(0)
		for _, a := range x.Args {
			c += s.exprCost(a, opt) + m.Store // argument copy
		}
		if id, ok := x.Fun.(*minic.Ident); ok && id.Sym != nil && id.Sym.FuncDecl != nil {
			return c + s.FuncCycles(id.Sym.FuncDecl, opt)
		}
		// Builtin or indirect call.
		return c + m.Call + m.Ret
	case *minic.Index:
		return s.exprCost(x.X, opt) + s.exprCost(x.Idx, opt) + m.IntALU + m.Load
	case *minic.FieldExpr:
		return s.exprCost(x.X, opt) + m.IntALU + m.Load
	case *minic.Cast:
		c := s.exprCost(x.X, opt)
		if minic.IsArith(x.To) && x.X.Type() != nil &&
			minic.IsArith(x.X.Type()) && !minic.Identical(x.To, x.X.Type()) {
			return c + m.Conv
		}
		return c
	}
	return 0
}

func (s *Static) binOpCost(x *minic.Binary) int64 {
	m := s.M
	isFloat := minic.IsFloat(x.X.Type()) || minic.IsFloat(x.Y.Type())
	switch x.Op {
	case minic.Star:
		if isFloat {
			return m.FloatMul
		}
		return m.IntMul
	case minic.Slash:
		if isFloat {
			return m.FloatDiv
		}
		return m.IntDiv
	case minic.Percent:
		return m.IntDiv
	case minic.EqEq, minic.NotEq, minic.Lt, minic.Gt, minic.Le, minic.Ge:
		if isFloat {
			return m.FloatCmp
		}
		return m.IntALU
	case minic.AndAnd, minic.OrOr:
		return m.Branch
	default: // + - & | ^ << >>
		if isFloat {
			return m.FloatAdd
		}
		return m.IntALU
	}
}

// identCost is the cost of reading a scalar identifier.
func (s *Static) identCost(x *minic.Ident) int64 {
	if x.Sym == nil {
		return s.M.Load
	}
	switch x.Sym.Kind {
	case minic.SymLocal, minic.SymParam:
		if minic.IsAggregate(x.Sym.Type) {
			return s.M.IntALU // address formation
		}
		return s.M.LocalAccess
	case minic.SymGlobal:
		if minic.IsAggregate(x.Sym.Type) {
			return s.M.IntALU
		}
		return s.M.Load
	default:
		return s.M.IntALU
	}
}

// lvalueCost is the address-computation cost of an lvalue (excluding the
// final read/write).
func (s *Static) lvalueCost(e minic.Expr, opt bool) int64 {
	switch x := e.(type) {
	case *minic.Ident:
		return 0
	case *minic.Index:
		return s.exprCost(x.X, opt) + s.exprCost(x.Idx, opt) + s.M.IntALU
	case *minic.FieldExpr:
		return s.exprCost(x.X, opt) + s.M.IntALU
	case *minic.Unary:
		if x.Op == minic.Star {
			return s.exprCost(x.X, opt)
		}
	}
	return 0
}

func (s *Static) readCost(e minic.Expr) int64 {
	if id, ok := e.(*minic.Ident); ok {
		return s.identCost(id)
	}
	return s.M.Load
}

func (s *Static) writeCost(e minic.Expr) int64 {
	if id, ok := e.(*minic.Ident); ok && id.Sym != nil &&
		(id.Sym.Kind == minic.SymLocal || id.Sym.Kind == minic.SymParam) {
		return s.M.LocalAccess
	}
	return s.M.Store
}

func (s *Static) readWriteCost(e minic.Expr) int64 {
	return s.readCost(e) + s.writeCost(e)
}
