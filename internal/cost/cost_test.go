package cost

import (
	"math"
	"testing"
	"testing/quick"

	"compreuse/internal/minic"
)

func TestReuseRate(t *testing.T) {
	// G721_encode from the paper: 1612942 calls, 9155 distinct inputs.
	p := Profile{N: 1612942, Nds: 9155}
	r := p.ReuseRate()
	if r < 0.994 || r > 0.995 {
		t.Fatalf("R = %v, want ~0.9943", r)
	}
}

func TestFormulasConsistent(t *testing.T) {
	// Gain (formula 2) must equal C − NewCost (formula 1) identically.
	f := func(c, o float64, n, nds uint16) bool {
		if n == 0 || nds > n {
			return true
		}
		p := Profile{
			C: math.Abs(math.Mod(c, 1e9)), O: math.Abs(math.Mod(o, 1e9)),
			N: int64(n), Nds: int64(nds),
		}
		lhs := p.C - p.NewCost()
		rhs := p.Gain()
		return math.Abs(lhs-rhs) < 1e-6*(1+p.C+p.O)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProfitableThreshold(t *testing.T) {
	// R > O/C exactly at the boundary of formula (3).
	p := Profile{C: 100, O: 10, N: 100, Nds: 90} // R = 0.1 = O/C
	if p.Profitable() {
		t.Fatal("boundary case must not be profitable (strict >)")
	}
	p.Nds = 89 // R = 0.11 > 0.1
	if !p.Profitable() {
		t.Fatal("R just above O/C must be profitable")
	}
}

func TestRatioFilter(t *testing.T) {
	if (Profile{C: 10, O: 10}).RatioOK() {
		t.Fatal("O/C == 1 must fail the filter")
	}
	if !(Profile{C: 10, O: 9.99}).RatioOK() {
		t.Fatal("O/C < 1 must pass the filter")
	}
	if (Profile{C: 0, O: 1}).RatioOK() {
		t.Fatal("zero-granularity segment must fail the filter")
	}
}

func TestPreferInner(t *testing.T) {
	// Outer gain 100; inner gain 30 executed 5 times per outer instance:
	// 100 − 150 < 0 → prefer inner.
	if !PreferInner(100, 30, 5) {
		t.Fatal("want inner")
	}
	// Inner gain 10, 5 times: 100 − 50 > 0 → prefer outer.
	if PreferInner(100, 10, 5) {
		t.Fatal("want outer")
	}
}

func TestHashOverheadMonotone(t *testing.T) {
	m := O0()
	// Overhead grows with key and output size.
	o1 := m.HashOverhead(4, 4)
	o2 := m.HashOverhead(4, 64)
	o3 := m.HashOverhead(256, 64)
	if !(o1 < o2 && o2 < o3) {
		t.Fatalf("overhead not monotone: %d %d %d", o1, o2, o3)
	}
	// The 32-bit fast path must beat Jenkins for the same payload.
	if m.HashOverhead(4, 4) >= m.HashOverhead(8, 4) {
		t.Fatal("wide keys must cost more than narrow keys")
	}
}

func TestHashOverheadO3Cheaper(t *testing.T) {
	if O3().HashOverhead(256, 256) >= O0().HashOverhead(256, 256) {
		t.Fatal("O3 hashing must be cheaper than O0")
	}
}

func TestSecondsMicros(t *testing.T) {
	if got := Seconds(206e6); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("206M cycles = %v s, want 1", got)
	}
	if got := Micros(206); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("206 cycles = %v µs, want 1", got)
	}
}

func mustProg(t *testing.T, src string) *minic.Program {
	t.Helper()
	prog, err := minic.Parse("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := minic.Check(prog); err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestConstTripCount(t *testing.T) {
	cases := []struct {
		src   string
		want  int64
		known bool
	}{
		{"int f(void){int s=0; for(int i=0;i<15;i++) s+=i; return s;}", 15, true},
		{"int f(void){int s=0; for(int i=0;i<=15;i++) s+=i; return s;}", 16, true},
		{"int f(void){int s=0; for(int i=2;i<10;i+=3) s+=i; return s;}", 3, true},
		{"int f(void){int s=0; int i; for(i=0;i<8;i++) s+=i; return s;}", 8, true},
		{"int f(int n){int s=0; for(int i=0;i<n;i++) s+=i; return s;}", 0, false},
		{"int f(void){int s=0; for(int i=0;i<8;i++) i+=s; return s;}", 0, false}, // i written in body
		{"int f(void){int s=0; for(int i=8;i<3;i++) s+=i; return s;}", 0, true},  // empty range
	}
	for _, c := range cases {
		prog := mustProg(t, c.src)
		var fs *minic.ForStmt
		minic.InspectStmts(prog.Func("f").Body, func(s minic.Stmt) bool {
			if f, ok := s.(*minic.ForStmt); ok && fs == nil {
				fs = f
			}
			return true
		})
		n, ok := ConstTripCount(fs)
		if ok != c.known || (ok && n != c.want) {
			t.Errorf("%s: got (%d,%v), want (%d,%v)", c.src, n, ok, c.want, c.known)
		}
	}
}

func TestStaticQuanGranularity(t *testing.T) {
	prog := mustProg(t, `
int power2[15] = {1,2,4,8,16,32,64,128,256,512,1024,2048,4096,8192,16384};
int quan(int val) {
    int i;
    for (i = 0; i < 15; i++)
        if (val < power2[i])
            break;
    return (i);
}`)
	est := NewStatic(O0(), prog)
	fn := prog.Func("quan")
	maxC := est.MaxCycles(fn.Body)
	minC := est.MinCycles(fn.Body)
	if minC <= 0 || maxC < minC {
		t.Fatalf("bounds: min=%d max=%d", minC, maxC)
	}
	// Optimistic estimate expands the 15-iteration loop; it must comfortably
	// exceed the hashing overhead of a 4-byte-in, 4-byte-out table so quan
	// passes the O/C filter (the paper transforms quan).
	o := O0().HashOverhead(4, 4)
	if maxC <= o {
		t.Fatalf("quan fails O/C filter: C=%d O=%d", maxC, o)
	}
	// The breakable loop forces the pessimistic bound down to ~1 iteration.
	if minC >= maxC/3 {
		t.Fatalf("pessimistic bound too high: min=%d max=%d", minC, maxC)
	}
}

func TestStaticFloatCostsDominates(t *testing.T) {
	prog := mustProg(t, `
float fsum(float a, float b) { return a * b + a / b; }
int isum(int a, int b) { return a * b + a / b; }`)
	est := NewStatic(O0(), prog)
	fc := est.MaxCycles(prog.Func("fsum").Body)
	ic := est.MaxCycles(prog.Func("isum").Body)
	if fc <= ic*3 {
		t.Fatalf("soft-float must dominate: float=%d int=%d", fc, ic)
	}
}

func TestStaticCallCost(t *testing.T) {
	prog := mustProg(t, `
int leaf(int x) { return x + 1; }
int caller(int x) { return leaf(x) + leaf(x); }
int rec(int x) { if (x <= 0) return 0; return rec(x - 1); }`)
	est := NewStatic(O0(), prog)
	leaf := est.FuncCycles(prog.Func("leaf"), true)
	caller := est.FuncCycles(prog.Func("caller"), true)
	if caller <= 2*leaf {
		t.Fatalf("caller (%d) must cost more than 2 leaves (%d)", caller, 2*leaf)
	}
	// Recursion terminates and produces a positive finite estimate.
	if rc := est.FuncCycles(prog.Func("rec"), true); rc <= 0 {
		t.Fatalf("recursive estimate: %d", rc)
	}
}

func TestStaticO3CheaperThanO0(t *testing.T) {
	prog := mustProg(t, `
int f(int n) {
    int s = 0;
    int i;
    for (i = 0; i < 100; i++)
        s += i * 3;
    return s;
}`)
	o0 := NewStatic(O0(), prog).MaxCycles(prog.Func("f").Body)
	o3 := NewStatic(O3(), prog).MaxCycles(prog.Func("f").Body)
	if o3 >= o0 {
		t.Fatalf("O3 (%d) must be cheaper than O0 (%d)", o3, o0)
	}
}
