package minic

import "testing"

func TestCloneExprDeep(t *testing.T) {
	prog := mustCheck(t, "c.c", `
struct s { int f; };
struct s gs;
int arr[4];
int fn(int a, float b) {
    int r = (a + 3) * (int)(b / 2.0) + arr[a & 3] + gs.f + (a > 0 ? a : -a);
    return r;
}`)
	var orig Expr
	Inspect(prog.Func("fn").Body, func(n Node) bool {
		if d, ok := n.(*VarDecl); ok && orig == nil {
			orig = d.Init
		}
		return true
	})
	if orig == nil {
		t.Fatal("no expression found")
	}
	clone := prog.CloneExpr(orig)

	// Same rendering, same types, distinct node identities and fresh ids.
	if PrintExpr(clone) != PrintExpr(orig) {
		t.Fatalf("clone prints differently: %s vs %s", PrintExpr(clone), PrintExpr(orig))
	}
	origIDs := map[int]bool{}
	InspectExprs(orig, func(e Expr) bool { origIDs[e.ID()] = true; return true })
	InspectExprs(clone, func(e Expr) bool {
		if origIDs[e.ID()] {
			t.Fatalf("clone shares node id %d", e.ID())
		}
		if e.Type() == nil {
			t.Fatalf("clone lost type at %s", PrintExpr(e))
		}
		return true
	})
	// Symbols are shared (interned program entities).
	co := Idents(orig)
	cc := Idents(clone)
	if len(co) != len(cc) {
		t.Fatalf("ident counts differ: %d vs %d", len(co), len(cc))
	}
	for i := range co {
		if co[i].Sym != cc[i].Sym {
			t.Fatalf("ident %d symbol not shared", i)
		}
	}
}

func TestCloneExprNil(t *testing.T) {
	prog := mustCheck(t, "n.c", `int main(void) { return 0; }`)
	if prog.CloneExpr(nil) != nil {
		t.Fatal("nil must clone to nil")
	}
}

func TestInspectOrder(t *testing.T) {
	prog := mustCheck(t, "o.c", `
int f(int a) {
    int x = a + 1;
    if (x > 2)
        x = x * 3;
    return x;
}`)
	var kinds []string
	Inspect(prog.Func("f").Body, func(n Node) bool {
		switch n.(type) {
		case *DeclStmt:
			kinds = append(kinds, "decl")
		case *IfStmt:
			kinds = append(kinds, "if")
		case *ReturnStmt:
			kinds = append(kinds, "return")
		}
		return true
	})
	want := []string{"decl", "if", "return"}
	if len(kinds) != 3 {
		t.Fatalf("kinds = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("order = %v, want %v", kinds, want)
		}
	}
}

func TestInspectPrune(t *testing.T) {
	prog := mustCheck(t, "p.c", `
int f(int a) {
    if (a) { a = a + 1; }
    return a;
}`)
	seenAssign := false
	Inspect(prog.Func("f").Body, func(n Node) bool {
		if _, ok := n.(*IfStmt); ok {
			return false // prune the subtree
		}
		if _, ok := n.(*AssignExpr); ok {
			seenAssign = true
		}
		return true
	})
	if seenAssign {
		t.Fatal("pruned subtree was visited")
	}
}
