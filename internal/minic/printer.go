package minic

import (
	"fmt"
	"strconv"
	"strings"
)

// Print renders the program back to MiniC source. The output of the
// computation-reuse transformation is printed with explicit __crc_probe /
// __crc_record / __crc_fetch pseudo-calls in the style of the paper's
// Figure 2(b).
func Print(prog *Program) string {
	p := &printer{}
	for _, st := range prog.Structs {
		p.printf("struct %s {\n", st.Name)
		p.indent++
		for _, f := range st.Fields {
			p.line(declString(f.Type, f.Name) + ";")
		}
		p.indent--
		p.line("};")
		p.line("")
	}
	for _, g := range prog.Globals {
		p.ws()
		p.buf.WriteString(declString(g.Type, g.Name))
		if g.Init != nil {
			p.buf.WriteString(" = ")
			p.expr(g.Init, 0)
		}
		if g.InitList != nil {
			p.buf.WriteString(" = {")
			for i, e := range g.InitList {
				if i > 0 {
					p.buf.WriteString(", ")
				}
				p.expr(e, 0)
			}
			p.buf.WriteString("}")
		}
		p.buf.WriteString(";\n")
	}
	if len(prog.Globals) > 0 {
		p.line("")
	}
	for i, fn := range prog.Funcs {
		if i > 0 {
			p.line("")
		}
		p.printFunc(fn)
	}
	return p.buf.String()
}

// PrintStmt renders a single statement (used in tests and diagnostics).
func PrintStmt(s Stmt) string {
	p := &printer{}
	p.stmt(s)
	return p.buf.String()
}

// PrintExpr renders a single expression.
func PrintExpr(e Expr) string {
	p := &printer{}
	p.expr(e, 0)
	return p.buf.String()
}

// declString renders "type name" with C declarator syntax (arrays and
// function pointers need the name woven into the type).
func declString(t Type, name string) string {
	switch t := t.(type) {
	case *Array:
		var dims strings.Builder
		inner := Type(t)
		for {
			at, ok := inner.(*Array)
			if !ok {
				break
			}
			fmt.Fprintf(&dims, "[%d]", at.Len)
			inner = at.Elem
		}
		return declString(inner, name) + dims.String()
	case *Pointer:
		if ft, ok := t.Elem.(*FuncType); ok {
			parts := make([]string, len(ft.Params))
			for i, pt := range ft.Params {
				parts[i] = pt.String()
			}
			return fmt.Sprintf("%s (*%s)(%s)", ft.Ret, name, strings.Join(parts, ", "))
		}
		return declString(t.Elem, "*"+name)
	default:
		return t.String() + " " + name
	}
}

type printer struct {
	buf    strings.Builder
	indent int
}

func (p *printer) ws() {
	for i := 0; i < p.indent; i++ {
		p.buf.WriteString("    ")
	}
}

func (p *printer) line(s string) {
	p.ws()
	p.buf.WriteString(s)
	p.buf.WriteString("\n")
}

func (p *printer) printf(format string, args ...any) {
	p.ws()
	fmt.Fprintf(&p.buf, format, args...)
}

func (p *printer) printFunc(fn *FuncDecl) {
	p.ws()
	var params []string
	for _, par := range fn.Params {
		params = append(params, declString(par.Type, par.Name))
	}
	if len(params) == 0 {
		params = []string{"void"}
	}
	fmt.Fprintf(&p.buf, "%s %s(%s)", fn.Ret, fn.Name, strings.Join(params, ", "))
	if fn.Body == nil {
		p.buf.WriteString(";\n")
		return
	}
	p.buf.WriteString(" ")
	p.blockBody(fn.Body)
	p.buf.WriteString("\n")
}

// blockBody prints "{...}" without a leading indent (assumes caller
// positioned the cursor) and without a trailing newline.
func (p *printer) blockBody(b *Block) {
	p.buf.WriteString("{\n")
	p.indent++
	for _, s := range b.Stmts {
		p.stmt(s)
	}
	p.indent--
	p.ws()
	p.buf.WriteString("}")
}

func (p *printer) stmt(s Stmt) {
	switch s := s.(type) {
	case *DeclStmt:
		for _, d := range s.Decls {
			p.ws()
			p.buf.WriteString(declString(d.Type, d.Name))
			if d.Init != nil {
				p.buf.WriteString(" = ")
				p.expr(d.Init, 0)
			}
			if d.InitList != nil {
				p.buf.WriteString(" = {")
				for i, e := range d.InitList {
					if i > 0 {
						p.buf.WriteString(", ")
					}
					p.expr(e, 0)
				}
				p.buf.WriteString("}")
			}
			p.buf.WriteString(";\n")
		}
	case *ExprStmt:
		p.ws()
		p.expr(s.X, 0)
		p.buf.WriteString(";\n")
	case *Block:
		p.ws()
		p.blockBody(s)
		p.buf.WriteString("\n")
	case *IfStmt:
		p.ws()
		p.buf.WriteString("if (")
		p.expr(s.Cond, 0)
		p.buf.WriteString(") ")
		p.nestedStmt(s.Then)
		if s.Else != nil {
			p.ws()
			p.buf.WriteString("else ")
			p.nestedStmt(s.Else)
		}
	case *WhileStmt:
		p.ws()
		if s.DoWhile {
			p.buf.WriteString("do ")
			p.nestedStmt(s.Body)
			p.ws()
			p.buf.WriteString("while (")
			p.expr(s.Cond, 0)
			p.buf.WriteString(");\n")
			return
		}
		p.buf.WriteString("while (")
		p.expr(s.Cond, 0)
		p.buf.WriteString(") ")
		p.nestedStmt(s.Body)
	case *ForStmt:
		p.ws()
		p.buf.WriteString("for (")
		if init, ok := s.Init.(*ExprStmt); ok {
			p.expr(init.X, 0)
		} else if ds, ok := s.Init.(*DeclStmt); ok {
			// Single-line declaration clause.
			for i, d := range ds.Decls {
				if i > 0 {
					p.buf.WriteString(", ")
				}
				p.buf.WriteString(declString(d.Type, d.Name))
				if d.Init != nil {
					p.buf.WriteString(" = ")
					p.expr(d.Init, 0)
				}
			}
		}
		p.buf.WriteString("; ")
		if s.Cond != nil {
			p.expr(s.Cond, 0)
		}
		p.buf.WriteString("; ")
		if s.Post != nil {
			p.expr(s.Post, 0)
		}
		p.buf.WriteString(") ")
		p.nestedStmt(s.Body)
	case *BreakStmt:
		p.line("break;")
	case *ContinueStmt:
		p.line("continue;")
	case *ReturnStmt:
		p.ws()
		p.buf.WriteString("return")
		if s.X != nil {
			p.buf.WriteString(" (")
			p.expr(s.X, 0)
			p.buf.WriteString(")")
		}
		p.buf.WriteString(";\n")
	case *EmptyStmt:
		p.line(";")
	case *ReuseRegion:
		p.printReuse(s)
	default:
		p.line(fmt.Sprintf("/* unhandled %T */", s))
	}
}

// nestedStmt prints the body of an if/while/for: blocks share the header
// line; other statements go on their own indented line.
func (p *printer) nestedStmt(s Stmt) {
	if b, ok := s.(*Block); ok {
		p.blockBody(b)
		p.buf.WriteString("\n")
		return
	}
	p.buf.WriteString("\n")
	p.indent++
	p.stmt(s)
	p.indent--
}

// printReuse renders a ReuseRegion in the style of the paper's Fig. 2(b).
func (p *printer) printReuse(s *ReuseRegion) {
	args := func(es []Expr) string {
		var sb strings.Builder
		for _, e := range es {
			sb.WriteString(", ")
			sb.WriteString(PrintExpr(e))
		}
		return sb.String()
	}
	if s.Dep {
		// Dependence-tracked variant: the probe walks the footprint trie
		// over the declared locations instead of hashing a flat key.
		p.printf("/* computation reuse (dep keys): %s (table %d, seg %d) */\n", s.SegName, s.TableID, s.SegBit)
		p.printf("if (__crc_dep_probe(%d, %d%s) == 0) {\n", s.TableID, s.SegBit, args(s.Inputs))
		p.indent++
		if b, ok := s.Body.(*Block); ok {
			for _, st := range b.Stmts {
				p.stmt(st)
			}
		} else {
			p.stmt(s.Body)
		}
		p.printf("__crc_dep_record(%d, %d%s);\n", s.TableID, s.SegBit, args(s.Outputs))
		p.indent--
		p.line("}")
		p.printf("else __crc_dep_fetch(%d, %d%s);\n", s.TableID, s.SegBit, args(s.Outputs))
		return
	}
	p.printf("/* computation reuse: %s (table %d, seg %d) */\n", s.SegName, s.TableID, s.SegBit)
	p.printf("if (__crc_probe(%d, %d%s) == 0) {\n", s.TableID, s.SegBit, args(s.Inputs))
	p.indent++
	if b, ok := s.Body.(*Block); ok {
		for _, st := range b.Stmts {
			p.stmt(st)
		}
	} else {
		p.stmt(s.Body)
	}
	p.printf("__crc_record(%d, %d%s);\n", s.TableID, s.SegBit, args(s.Outputs))
	p.indent--
	p.line("}")
	p.printf("else __crc_fetch(%d, %d%s);\n", s.TableID, s.SegBit, args(s.Outputs))
}

func (p *printer) expr(e Expr, parentPrec int) {
	switch e := e.(type) {
	case *IntLit:
		p.buf.WriteString(strconv.FormatInt(e.Val, 10))
	case *FloatLit:
		s := strconv.FormatFloat(e.Val, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		p.buf.WriteString(s)
	case *StrLit:
		p.buf.WriteString(strconv.Quote(e.Val))
	case *Ident:
		p.buf.WriteString(e.Name)
	case *SizeofExpr:
		fmt.Fprintf(&p.buf, "sizeof(%s)", e.T)
	case *Unary:
		p.paren(parentPrec, 12, func() {
			p.buf.WriteString(unaryOpStr(e.Op))
			p.expr(e.X, 12)
		})
	case *IncDec:
		op := "++"
		if e.Op == Dec {
			op = "--"
		}
		if e.Post {
			p.paren(parentPrec, 13, func() {
				p.expr(e.X, 13)
				p.buf.WriteString(op)
			})
		} else {
			p.paren(parentPrec, 12, func() {
				p.buf.WriteString(op)
				p.expr(e.X, 12)
			})
		}
	case *Binary:
		prec := binPrec[e.Op]
		p.paren(parentPrec, prec, func() {
			p.expr(e.X, prec)
			fmt.Fprintf(&p.buf, " %s ", e.Op)
			p.expr(e.Y, prec+1)
		})
	case *AssignExpr:
		p.paren(parentPrec, 0, func() {
			p.expr(e.LHS, 13)
			fmt.Fprintf(&p.buf, " %s ", e.Op)
			p.expr(e.RHS, 0)
		})
	case *Cond:
		p.paren(parentPrec, 0, func() {
			p.expr(e.Cond, 1)
			p.buf.WriteString(" ? ")
			p.expr(e.Then, 0)
			p.buf.WriteString(" : ")
			p.expr(e.Else, 0)
		})
	case *Call:
		p.expr(e.Fun, 13)
		p.buf.WriteString("(")
		for i, a := range e.Args {
			if i > 0 {
				p.buf.WriteString(", ")
			}
			p.expr(a, 0)
		}
		p.buf.WriteString(")")
	case *Index:
		p.expr(e.X, 13)
		p.buf.WriteString("[")
		p.expr(e.Idx, 0)
		p.buf.WriteString("]")
	case *FieldExpr:
		p.expr(e.X, 13)
		if e.Arrow {
			p.buf.WriteString("->")
		} else {
			p.buf.WriteString(".")
		}
		p.buf.WriteString(e.Name)
	case *Cast:
		p.paren(parentPrec, 12, func() {
			fmt.Fprintf(&p.buf, "(%s)", e.To)
			p.expr(e.X, 12)
		})
	default:
		fmt.Fprintf(&p.buf, "/* unhandled %T */", e)
	}
}

// paren wraps body() in parentheses when the construct's precedence is
// below the context's requirement.
func (p *printer) paren(parentPrec, prec int, body func()) {
	if prec < parentPrec {
		p.buf.WriteString("(")
		body()
		p.buf.WriteString(")")
		return
	}
	body()
}

func unaryOpStr(op TokKind) string {
	switch op {
	case Not:
		return "!"
	case Tilde:
		return "~"
	case Minus:
		return "-"
	case Plus:
		return "+"
	case Star:
		return "*"
	case Amp:
		return "&"
	}
	return op.String()
}
