package minic

import (
	"strings"
	"testing"
)

// quanSrc is the paper's Figure 2(a) example from G721.
const quanSrc = `
int power2[15] = {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384};

int quan(int val) {
    int i;
    for (i = 0; i < 15; i++)
        if (val < power2[i])
            break;
    return (i);
}
`

func mustCheck(t *testing.T, name, src string) *Program {
	t.Helper()
	prog, err := Parse(name, src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := Check(prog); err != nil {
		t.Fatalf("check: %v", err)
	}
	return prog
}

func TestParseQuan(t *testing.T) {
	prog, err := Parse("quan.c", quanSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Globals) != 1 || prog.Globals[0].Name != "power2" {
		t.Fatalf("globals: %+v", prog.Globals)
	}
	at, ok := prog.Globals[0].Type.(*Array)
	if !ok || at.Len != 15 || !IsInt(at.Elem) {
		t.Fatalf("power2 type = %v", prog.Globals[0].Type)
	}
	if len(prog.Globals[0].InitList) != 15 {
		t.Fatalf("power2 init list has %d entries", len(prog.Globals[0].InitList))
	}
	fn := prog.Func("quan")
	if fn == nil {
		t.Fatal("quan not found")
	}
	if len(fn.Params) != 1 || fn.Params[0].Name != "val" {
		t.Fatalf("params: %+v", fn.Params)
	}
	if !IsInt(fn.Ret) {
		t.Fatalf("ret: %v", fn.Ret)
	}
	// Body: decl, for, return.
	if len(fn.Body.Stmts) != 3 {
		t.Fatalf("body has %d statements", len(fn.Body.Stmts))
	}
	if _, ok := fn.Body.Stmts[1].(*ForStmt); !ok {
		t.Fatalf("stmt 1 is %T, want *ForStmt", fn.Body.Stmts[1])
	}
}

func TestParsePrecedence(t *testing.T) {
	prog := mustCheck(t, "p.c", `
int f(int a, int b, int c) {
    return a + b * c - a % b + (a << 2) / c;
}`)
	ret := prog.Func("f").Body.Stmts[0].(*ReturnStmt)
	// ((a + (b*c)) - (a%b)) + ((a<<2)/c)
	top, ok := ret.X.(*Binary)
	if !ok || top.Op != Plus {
		t.Fatalf("top = %v", PrintExpr(ret.X))
	}
	if got := PrintExpr(ret.X); got != "a + b * c - a % b + (a << 2) / c" {
		t.Errorf("printed: %s", got)
	}
}

func TestParseTernaryRightAssoc(t *testing.T) {
	prog := mustCheck(t, "t.c", `int f(int a) { return a ? 1 : a ? 2 : 3; }`)
	ret := prog.Func("f").Body.Stmts[0].(*ReturnStmt)
	c, ok := ret.X.(*Cond)
	if !ok {
		t.Fatalf("not a Cond: %T", ret.X)
	}
	if _, ok := c.Else.(*Cond); !ok {
		t.Fatalf("else branch is %T, want nested Cond", c.Else)
	}
}

func TestParseAssignRightAssoc(t *testing.T) {
	prog := mustCheck(t, "a.c", `int f(void) { int a; int b; a = b = 3; return a; }`)
	es := prog.Func("f").Body.Stmts[2].(*ExprStmt)
	outer, ok := es.X.(*AssignExpr)
	if !ok {
		t.Fatalf("not an assignment: %T", es.X)
	}
	if _, ok := outer.RHS.(*AssignExpr); !ok {
		t.Fatalf("rhs is %T, want nested assignment", outer.RHS)
	}
}

func TestParsePointerDeclarators(t *testing.T) {
	prog := mustCheck(t, "ptr.c", `
int g;
int *p = &g;
int **pp = &p;
int arr[4][8];
int f(int *x, float *y) { return *x; }
`)
	if _, ok := prog.Global("p").Type.(*Pointer); !ok {
		t.Errorf("p type: %v", prog.Global("p").Type)
	}
	pp := prog.Global("pp").Type.(*Pointer)
	if _, ok := pp.Elem.(*Pointer); !ok {
		t.Errorf("pp type: %v", prog.Global("pp").Type)
	}
	at := prog.Global("arr").Type.(*Array)
	if at.Len != 4 {
		t.Errorf("arr outer len %d", at.Len)
	}
	inner := at.Elem.(*Array)
	if inner.Len != 8 {
		t.Errorf("arr inner len %d", inner.Len)
	}
	if at.Words() != 32 || at.Bytes() != 128 {
		t.Errorf("arr words=%d bytes=%d", at.Words(), at.Bytes())
	}
}

func TestParseFunctionPointer(t *testing.T) {
	prog := mustCheck(t, "fp.c", `
int add1(int x) { return x + 1; }
int apply(int (*f)(int), int v) { return f(v); }
int main(void) { return apply(add1, 41); }
`)
	ap := prog.Func("apply")
	pt, ok := ap.Params[0].Type.(*Pointer)
	if !ok {
		t.Fatalf("param type: %v", ap.Params[0].Type)
	}
	ft, ok := pt.Elem.(*FuncType)
	if !ok || len(ft.Params) != 1 || !IsInt(ft.Ret) {
		t.Fatalf("func pointer type: %v", pt.Elem)
	}
}

func TestParseStruct(t *testing.T) {
	prog := mustCheck(t, "s.c", `
struct point { int x; int y; float w; };
struct point origin;
int f(struct point *p) { return p->x + origin.y; }
`)
	st := prog.StructType("point")
	if st == nil || len(st.Fields) != 3 {
		t.Fatalf("struct: %+v", st)
	}
	if st.Fields[1].WordOff != 1 || st.Fields[1].ByteOff != 4 {
		t.Errorf("field y offsets: word=%d byte=%d", st.Fields[1].WordOff, st.Fields[1].ByteOff)
	}
	if st.Words() != 3 || st.Bytes() != 16 {
		t.Errorf("struct size: words=%d bytes=%d", st.Words(), st.Bytes())
	}
}

func TestParseSelfRefStruct(t *testing.T) {
	mustCheck(t, "list.c", `
struct node { int val; struct node *next; };
int len(struct node *n) {
    int k = 0;
    while (n != 0) { k++; n = n->next; }
    return k;
}`)
}

func TestParseDoWhile(t *testing.T) {
	prog := mustCheck(t, "dw.c", `int f(int n) { int s = 0; do { s += n; n--; } while (n > 0); return s; }`)
	ws, ok := prog.Func("f").Body.Stmts[1].(*WhileStmt)
	if !ok || !ws.DoWhile {
		t.Fatalf("not a do-while: %T", prog.Func("f").Body.Stmts[1])
	}
}

func TestParseForVariants(t *testing.T) {
	mustCheck(t, "for.c", `
int f(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) s += i;
    for (;;) { break; }
    int j;
    for (j = n; j > 0; j--) continue;
    return s;
}`)
}

func TestParseNestedInitList(t *testing.T) {
	prog := mustCheck(t, "init.c", `int m[2][3] = {{1, 2, 3}, {4, 5, 6}};`)
	if len(prog.Global("m").InitList) != 6 {
		t.Fatalf("flattened init list: %d", len(prog.Global("m").InitList))
	}
}

func TestParsePrototypeIgnored(t *testing.T) {
	prog := mustCheck(t, "proto.c", `
int g(int x);
int g(int x) { return x * 2; }
int main(void) { return g(21); }
`)
	if len(prog.Funcs) != 2 {
		t.Fatalf("funcs: %d", len(prog.Funcs))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"missing semi", "int f(void) { return 1 }", "expected ;"},
		{"bad token", "int f(void) { return @; }", "unexpected"},
		{"unclosed block", "int f(void) { return 1;", "unexpected EOF"},
		{"bad array len", "int a[0];", "bad array length"},
		{"struct redecl", "struct s { int x; }; struct s { int y; };", "redeclared"},
		{"undefined struct", "struct nope x;", "undefined struct"},
		{"func redef", "int f(void) { return 1; } int f(void) { return 2; }", "redefined"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse("e.c", c.src)
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestNodeIDsUnique(t *testing.T) {
	prog := mustCheck(t, "ids.c", quanSrc)
	seen := map[int]bool{}
	Inspect(prog, func(n Node) bool {
		type ider interface{ ID() int }
		if x, ok := n.(ider); ok {
			if seen[x.ID()] {
				t.Fatalf("duplicate node id %d", x.ID())
			}
			seen[x.ID()] = true
		}
		return true
	})
	if len(seen) < 10 {
		t.Fatalf("too few nodes visited: %d", len(seen))
	}
	if prog.NumNodes <= 0 {
		t.Fatal("NumNodes not set")
	}
}

func TestParseSwitchDesugar(t *testing.T) {
	prog := mustCheck(t, "sw.c", `
int classify(int x) {
    int r;
    switch (x) {
    case 0:
        r = 100;
        break;
    case 1:
    case 2:
        r = 200;
        break;
    case -3:
        r = 300;
        break;
    default:
        r = 999;
    }
    return r;
}
int main(void) { return classify(1); }`)
	// The desugared form is a block with a scrutinee temp and an if chain.
	body := prog.Func("classify").Body
	sw, ok := body.Stmts[1].(*Block)
	if !ok {
		t.Fatalf("switch did not desugar to a block: %T", body.Stmts[1])
	}
	if _, ok := sw.Stmts[0].(*DeclStmt); !ok {
		t.Fatalf("first stmt is %T, want scrutinee decl", sw.Stmts[0])
	}
	if _, ok := sw.Stmts[1].(*IfStmt); !ok {
		t.Fatalf("second stmt is %T, want if chain", sw.Stmts[1])
	}
}

func TestParseSwitchErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"fallthrough", `int f(int x) { switch (x) { case 1: x = 2; case 2: x = 3; break; } return x; }`, "falls through"},
		{"mid break", `int f(int x) { switch (x) { case 1: break; x = 2; break; } return x; }`, "last statement"},
		{"non-const label", `int f(int x) { switch (x) { case x: x = 2; break; } return x; }`, "integer constant"},
		{"default not last", `int f(int x) { switch (x) { default: x = 1; break; case 2: x = 3; break; } return x; }`, "default must be the last"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse("e.c", c.src)
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestSwitchDesugarRoundTrip(t *testing.T) {
	// The desugared switch prints as plain blocks/ifs that re-parse and
	// re-check cleanly.
	src := `
int f(int x) {
    int r;
    switch (x & 3) {
    case 0:
        r = 1;
        break;
    case 1:
    case 2:
        r = 2;
        break;
    default:
        r = 3;
    }
    return r;
}
int main(void) { return f(5); }`
	p1 := mustCheck(t, "sw.c", src)
	out := Print(p1)
	p2, err := Parse("sw2.c", out)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, out)
	}
	if err := Check(p2); err != nil {
		t.Fatalf("re-check: %v\n%s", err, out)
	}
	if Print(p2) != out {
		t.Fatal("print not stable after switch desugar")
	}
}

func TestSwitchTempNamesUniquePerProgram(t *testing.T) {
	prog := mustCheck(t, "two.c", `
int f(int x) {
    int a;
    switch (x) { case 1: a = 1; break; default: a = 2; }
    int b;
    switch (a) { case 2: b = 9; break; default: b = 8; }
    return a + b;
}
int main(void) { return f(1); }`)
	names := map[string]int{}
	for _, id := range Idents(prog.Func("f").Body) {
		if id.Sym != nil && id.Sym.Kind == SymLocal {
			names[id.Sym.Name]++
		}
	}
	if names["__switch0"] == 0 || names["__switch1"] == 0 {
		t.Fatalf("temp names: %v", names)
	}
}
