package minic

import (
	"strings"
	"testing"
)

func TestCheckQuanTypes(t *testing.T) {
	prog := mustCheck(t, "quan.c", quanSrc)
	fn := prog.Func("quan")
	if fn.Sym == nil || fn.Sym.Kind != SymFunc {
		t.Fatal("quan symbol not set")
	}
	// val resolves to the parameter everywhere.
	for _, id := range Idents(fn.Body) {
		if id.Name == "val" && id.Sym != fn.Params[0].Sym {
			t.Errorf("val at %v bound to %v", id.Pos(), id.Sym)
		}
		if id.Sym == nil {
			t.Errorf("unresolved ident %s at %v", id.Name, id.Pos())
		}
	}
	// power2[i] has int type.
	InspectExprs(fn.Body, func(e Expr) bool {
		if ix, ok := e.(*Index); ok {
			if !IsInt(ix.Type()) {
				t.Errorf("power2[i] type = %v", ix.Type())
			}
		}
		return true
	})
}

func TestCheckSlotAssignment(t *testing.T) {
	prog := mustCheck(t, "slots.c", `
int g1;
float g2;
int g3[10];
int f(int a, float b) {
    int x;
    float y;
    int z[3];
    return a + x;
}`)
	if prog.Global("g1").Sym.Slot != 0 {
		t.Errorf("g1 slot %d", prog.Global("g1").Sym.Slot)
	}
	if prog.Global("g2").Sym.Slot != 1 {
		t.Errorf("g2 slot %d", prog.Global("g2").Sym.Slot)
	}
	if prog.Global("g3").Sym.Slot != 2 {
		t.Errorf("g3 slot %d", prog.Global("g3").Sym.Slot)
	}
	if prog.GlobalWords != 12 {
		t.Errorf("GlobalWords = %d, want 12", prog.GlobalWords)
	}
	fn := prog.Func("f")
	if fn.Params[0].Sym.Slot != 0 || fn.Params[1].Sym.Slot != 1 {
		t.Errorf("param slots: %d %d", fn.Params[0].Sym.Slot, fn.Params[1].Sym.Slot)
	}
	// frame: a(1) b(1) x(1) y(1) z(3) = 7
	if fn.FrameWords != 7 {
		t.Errorf("FrameWords = %d, want 7", fn.FrameWords)
	}
}

func TestCheckShadowing(t *testing.T) {
	prog := mustCheck(t, "shadow.c", `
int x = 1;
int f(void) {
    int x = 2;
    { int x = 3; x++; }
    return x;
}`)
	fn := prog.Func("f")
	syms := map[*Symbol]bool{}
	for _, id := range Idents(fn.Body) {
		if id.Name == "x" {
			syms[id.Sym] = true
		}
	}
	if len(syms) != 2 {
		t.Fatalf("distinct x symbols in body = %d, want 2", len(syms))
	}
	ret := fn.Body.Stmts[2].(*ReturnStmt)
	if ret.X.(*Ident).Sym.Kind != SymLocal {
		t.Errorf("return x bound to %v", ret.X.(*Ident).Sym.Kind)
	}
}

func TestCheckAddrTaken(t *testing.T) {
	prog := mustCheck(t, "addr.c", `
int a;
int b;
int arr[4];
int take(int *p) { return *p; }
int main(void) {
    int local;
    take(&a);
    take(arr);
    local = b;
    return local;
}`)
	if !prog.Global("a").Sym.AddrTaken {
		t.Error("a should be AddrTaken (&a)")
	}
	if !prog.Global("arr").Sym.AddrTaken {
		t.Error("arr should be AddrTaken (decayed argument)")
	}
	if prog.Global("b").Sym.AddrTaken {
		t.Error("b should not be AddrTaken")
	}
}

func TestCheckPointerArith(t *testing.T) {
	prog := mustCheck(t, "pa.c", `
int sum(int *p, int n) {
    int s = 0;
    int i;
    for (i = 0; i < n; i++)
        s += *(p + i);
    int *q = p + n;
    int diff = q - p;
    return s + diff;
}`)
	_ = prog
}

func TestCheckTernaryTypes(t *testing.T) {
	prog := mustCheck(t, "tern.c", `
float pick(int c, int a, float b) { return c ? a : b; }
`)
	ret := prog.Func("pick").Body.Stmts[0].(*ReturnStmt)
	if !IsFloat(ret.X.Type()) {
		t.Errorf("mixed ternary type = %v, want float", ret.X.Type())
	}
}

func TestCheckErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"undefined var", "int f(void) { return nope; }", "undefined: nope"},
		{"undefined func", "int f(void) { return g(); }", "undefined function: g"},
		{"redeclared", "int f(void) { int x; int x; return 0; }", "redeclared"},
		{"bad call arity", "int g(int a) { return a; } int f(void) { return g(1, 2); }", "argument count"},
		{"assign to rvalue", "int f(void) { 3 = 4; return 0; }", "not an lvalue"},
		{"break outside loop", "int f(void) { break; return 0; }", "break outside loop"},
		{"continue outside loop", "int f(void) { continue; return 0; }", "continue outside loop"},
		{"void variable", "void v; int f(void) { return 0; }", "void type"},
		{"deref int", "int f(int x) { return *x; }", "cannot dereference"},
		{"mod float", "int f(float x) { return x % 2; }", "must be int"},
		{"index by float", "int a[3]; int f(float x) { return a[x]; }", "index must be int"},
		{"field on non-struct", "int f(int x) { return x.y; }", "non-struct"},
		{"missing field", "struct s { int a; }; struct s v; int f(void) { return v.b; }", "no field b"},
		{"return value from void", "void f(void) { return 3; }", "void function"},
		{"missing return value", "int f(void) { return; }", "missing return value"},
		{"addr of rvalue", "int f(int x) { return *(&(x + 1)); }", "non-lvalue"},
		{"aggregate param", "struct s { int a; }; int f(struct s v) { return v.a; }", "scalar type"},
		{"print_str non-literal", "int f(int x) { print_str(x); return 0; }", "string literal"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			prog, err := Parse("e.c", c.src)
			if err != nil {
				t.Fatalf("parse failed first: %v", err)
			}
			err = Check(prog)
			if err == nil {
				t.Fatal("expected check error")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestCheckBuiltins(t *testing.T) {
	mustCheck(t, "b.c", `
int main(void) {
    print_int(42);
    print_float(3.5);
    print_str("hello");
    __assert(1 == 1);
    return 0;
}`)
}

func TestCheckFuncPointerAssignment(t *testing.T) {
	prog := mustCheck(t, "fpa.c", `
int inc(int x) { return x + 1; }
int dec(int x) { return x - 1; }
int main(void) {
    int (*op)(int);
    op = inc;
    int a = op(1);
    op = dec;
    return a + op(1);
}`)
	_ = prog
}

func TestIdenticalTypes(t *testing.T) {
	if !Identical(IntType, &Basic{Kind: IntKind}) {
		t.Error("int not identical to int")
	}
	if Identical(IntType, FloatType) {
		t.Error("int identical to float")
	}
	p1 := &Pointer{Elem: IntType}
	p2 := &Pointer{Elem: IntType}
	if !Identical(p1, p2) {
		t.Error("int* not identical to int*")
	}
	if Identical(p1, &Pointer{Elem: FloatType}) {
		t.Error("int* identical to float*")
	}
	a1 := &Array{Elem: IntType, Len: 3}
	a2 := &Array{Elem: IntType, Len: 4}
	if Identical(a1, a2) {
		t.Error("int[3] identical to int[4]")
	}
	s1 := &Struct{Name: "s"}
	s2 := &Struct{Name: "s"}
	if !Identical(s1, s2) {
		t.Error("struct identity is by name")
	}
	f1 := &FuncType{Params: []Type{IntType}, Ret: IntType}
	f2 := &FuncType{Params: []Type{IntType}, Ret: IntType}
	f3 := &FuncType{Params: []Type{FloatType}, Ret: IntType}
	if !Identical(f1, f2) || Identical(f1, f3) {
		t.Error("function type identity broken")
	}
}
