package minic

import "testing"

func kinds(toks []Token) []TokKind {
	out := make([]TokKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasicTokens(t *testing.T) {
	toks, err := Lex("int x = 42;")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokKind{KwInt, IDENT, Assign, INTLIT, Semi, EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexOperators(t *testing.T) {
	src := "+ - * / % << >> <<= >>= < > <= >= == != = += -= *= /= %= &= |= ^= & | ^ && || ! ~ ++ -- -> . ? :"
	want := []TokKind{
		Plus, Minus, Star, Slash, Percent, Shl, Shr, ShlEq, ShrEq,
		Lt, Gt, Le, Ge, EqEq, NotEq, Assign, PlusEq, MinusEq, StarEq,
		SlashEq, PercentEq, AndEq, OrEq, XorEq, Amp, Pipe, Caret,
		AndAnd, OrOr, Not, Tilde, Inc, Dec, Arrow, Dot, Question, Colon, EOF,
	}
	toks, err := Lex(src)
	if err != nil {
		t.Fatal(err)
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("token count: got %d, want %d (%v)", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexComments(t *testing.T) {
	src := `
// line comment with * and /* inside
int /* block
spanning lines */ y;
# include <stdio.h>
float z;
`
	toks, err := Lex(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []TokKind{KwInt, IDENT, Semi, KwFloat, IDENT, Semi, EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexUnterminatedComment(t *testing.T) {
	if _, err := Lex("int x; /* never closed"); err == nil {
		t.Fatal("expected error for unterminated block comment")
	}
}

func TestLexNumbers(t *testing.T) {
	cases := []struct {
		src  string
		kind TokKind
		text string
	}{
		{"0", INTLIT, "0"},
		{"12345", INTLIT, "12345"},
		{"0x1F", INTLIT, "0x1F"},
		{"42u", INTLIT, "42"},
		{"42UL", INTLIT, "42"},
		{"3.25", FLOATLIT, "3.25"},
		{"1e10", FLOATLIT, "1e10"},
		{"2.5e-3", FLOATLIT, "2.5e-3"},
		{".5", FLOATLIT, ".5"},
		{"1.5f", FLOATLIT, "1.5"},
	}
	for _, c := range cases {
		toks, err := Lex(c.src)
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		if toks[0].Kind != c.kind {
			t.Errorf("%s: kind = %v, want %v", c.src, toks[0].Kind, c.kind)
		}
		if toks[0].Text != c.text {
			t.Errorf("%s: text = %q, want %q", c.src, toks[0].Text, c.text)
		}
	}
}

func TestLexNumberFollowedByIdent(t *testing.T) {
	// "1e" must not swallow a non-exponent suffix context: "1e+x" is
	// INTLIT(1) IDENT(e) ... wait, e is part of the number scan; the lexer
	// must back off when no digits follow the exponent sign.
	toks, err := Lex("x = 1e+y;")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokKind{IDENT, Assign, INTLIT, IDENT, Plus, IDENT, Semi, EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d: got %v, want %v (all: %v)", i, got[i], want[i], got)
		}
	}
}

func TestLexStringsAndChars(t *testing.T) {
	toks, err := Lex(`print_str("a\nb\"c"); 'x' '\n' '\\'`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[2].Kind != STRLIT || toks[2].Text != "a\nb\"c" {
		t.Errorf("string literal: got %v %q", toks[2].Kind, toks[2].Text)
	}
	if toks[5].Kind != CHARLIT || toks[5].Text != "x" {
		t.Errorf("char literal: got %v %q", toks[5].Kind, toks[5].Text)
	}
	if toks[6].Text != "\n" {
		t.Errorf("escaped char literal: got %q", toks[6].Text)
	}
	if toks[7].Text != "\\" {
		t.Errorf("backslash char literal: got %q", toks[7].Text)
	}
}

func TestLexKeywordAliases(t *testing.T) {
	// long/short/char map to int; qualifiers vanish.
	toks, err := Lex("static unsigned long x; const short y; char c;")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokKind{KwInt, IDENT, Semi, KwInt, IDENT, Semi, KwInt, IDENT, Semi, EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("int x;\n  float y;")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("int at %v, want 1:1", toks[0].Pos)
	}
	if toks[3].Pos.Line != 2 || toks[3].Pos.Col != 3 {
		t.Errorf("float at %v, want 2:3", toks[3].Pos)
	}
}

func TestLexErrorBadChar(t *testing.T) {
	if _, err := Lex("int x = $;"); err == nil {
		t.Fatal("expected error for $")
	}
}

func TestLexUnterminatedString(t *testing.T) {
	if _, err := Lex(`print_str("oops`); err == nil {
		t.Fatal("expected error for unterminated string")
	}
}
