package minic

import (
	"fmt"
	"strings"
)

// Type is a MiniC type. MiniC has int (32-bit in the ARM cost model,
// stored as int64 in the VM), float (C double), void, pointers, fixed-size
// arrays, named structs and function types.
//
// Two size notions coexist:
//
//   - Bytes: the C object size on the modeled 32-bit StrongARM target
//     (int 4, float 8, pointer 4). The paper's hash-table sizes (Table 3,
//     Table 5) are reported in these bytes.
//   - Words: the number of scalar slots the VM uses to store a value of
//     this type. Every scalar is one word; aggregates are flattened.
type Type interface {
	String() string
	// Bytes is the modeled C object size in bytes.
	Bytes() int
	// Words is the number of VM scalar slots.
	Words() int
	typeNode()
}

// BasicKind enumerates the scalar base types.
type BasicKind int

// Basic type kinds.
const (
	IntKind BasicKind = iota
	FloatKind
	VoidKind
)

// Basic is a scalar or void type.
type Basic struct{ Kind BasicKind }

// Singleton basic types. Types are compared with Identical, which treats
// all Basic values of equal kind as identical, so using these singletons is
// a convenience, not a requirement.
var (
	IntType   = &Basic{Kind: IntKind}
	FloatType = &Basic{Kind: FloatKind}
	VoidType  = &Basic{Kind: VoidKind}
)

func (b *Basic) String() string {
	switch b.Kind {
	case IntKind:
		return "int"
	case FloatKind:
		return "float"
	default:
		return "void"
	}
}

func (b *Basic) Bytes() int {
	switch b.Kind {
	case IntKind:
		return 4
	case FloatKind:
		return 8
	default:
		return 0
	}
}

func (b *Basic) Words() int {
	if b.Kind == VoidKind {
		return 0
	}
	return 1
}

func (b *Basic) typeNode() {}

// Pointer is a pointer type.
type Pointer struct{ Elem Type }

func (p *Pointer) String() string { return p.Elem.String() + "*" }
func (p *Pointer) Bytes() int     { return 4 }
func (p *Pointer) Words() int     { return 1 }
func (p *Pointer) typeNode()      {}

// Array is a fixed-size array type.
type Array struct {
	Elem Type
	Len  int
}

func (a *Array) String() string { return fmt.Sprintf("%s[%d]", a.Elem, a.Len) }
func (a *Array) Bytes() int     { return a.Len * a.Elem.Bytes() }
func (a *Array) Words() int     { return a.Len * a.Elem.Words() }
func (a *Array) typeNode()      {}

// Field is one member of a struct.
type Field struct {
	Name string
	Type Type
	// WordOff is the field's slot offset within the flattened struct.
	WordOff int
	// ByteOff is the field's byte offset in the modeled C layout
	// (no padding: MiniC packs fields).
	ByteOff int
}

// Struct is a named struct type. Struct identity is by name: two Struct
// values with the same name are the same type (the checker interns them).
type Struct struct {
	Name   string
	Fields []Field
}

func (s *Struct) String() string { return "struct " + s.Name }

func (s *Struct) Bytes() int {
	n := 0
	for _, f := range s.Fields {
		n += f.Type.Bytes()
	}
	return n
}

func (s *Struct) Words() int {
	n := 0
	for _, f := range s.Fields {
		n += f.Type.Words()
	}
	return n
}

func (s *Struct) typeNode() {}

// FieldByName returns the field with the given name, or nil.
func (s *Struct) FieldByName(name string) *Field {
	for i := range s.Fields {
		if s.Fields[i].Name == name {
			return &s.Fields[i]
		}
	}
	return nil
}

// FuncType is a function type (used for function symbols and function
// pointers).
type FuncType struct {
	Params []Type
	Ret    Type
}

func (f *FuncType) String() string {
	var sb strings.Builder
	sb.WriteString(f.Ret.String())
	sb.WriteString(" (")
	for i, p := range f.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(p.String())
	}
	sb.WriteString(")")
	return sb.String()
}

func (f *FuncType) Bytes() int { return 4 } // code address
func (f *FuncType) Words() int { return 1 }
func (f *FuncType) typeNode()  {}

// Identical reports whether two types are the same MiniC type.
func Identical(a, b Type) bool {
	switch a := a.(type) {
	case *Basic:
		b, ok := b.(*Basic)
		return ok && a.Kind == b.Kind
	case *Pointer:
		b, ok := b.(*Pointer)
		return ok && Identical(a.Elem, b.Elem)
	case *Array:
		b, ok := b.(*Array)
		return ok && a.Len == b.Len && Identical(a.Elem, b.Elem)
	case *Struct:
		b, ok := b.(*Struct)
		return ok && a.Name == b.Name
	case *FuncType:
		b, ok := b.(*FuncType)
		if !ok || len(a.Params) != len(b.Params) || !Identical(a.Ret, b.Ret) {
			return false
		}
		for i := range a.Params {
			if !Identical(a.Params[i], b.Params[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// IsInt reports whether t is the int type.
func IsInt(t Type) bool { b, ok := t.(*Basic); return ok && b.Kind == IntKind }

// IsFloat reports whether t is the float type.
func IsFloat(t Type) bool { b, ok := t.(*Basic); return ok && b.Kind == FloatKind }

// IsVoid reports whether t is void.
func IsVoid(t Type) bool { b, ok := t.(*Basic); return ok && b.Kind == VoidKind }

// IsScalar reports whether t occupies a single VM word (int, float,
// pointer, or function value).
func IsScalar(t Type) bool {
	switch t := t.(type) {
	case *Basic:
		return t.Kind != VoidKind
	case *Pointer, *FuncType:
		return true
	}
	return false
}

// IsArith reports whether t supports arithmetic (int or float).
func IsArith(t Type) bool { return IsInt(t) || IsFloat(t) }

// IsAggregate reports whether t is an array or struct.
func IsAggregate(t Type) bool {
	switch t.(type) {
	case *Array, *Struct:
		return true
	}
	return false
}

// ElemOf returns the pointee/element type of a pointer or array, or nil.
func ElemOf(t Type) Type {
	switch t := t.(type) {
	case *Pointer:
		return t.Elem
	case *Array:
		return t.Elem
	}
	return nil
}
