package minic

// CloneExpr returns a deep copy of e with fresh node ids from p. Types and
// symbol bindings are shared (symbols are interned program entities).
// Synthesizing passes use it to reference the same lvalue from several
// places without aliasing AST nodes.
func (p *Program) CloneExpr(e Expr) Expr {
	if e == nil {
		return nil
	}
	base := func(old Expr) exprBase {
		return exprBase{pos: old.Pos(), id: p.NewID(), typ: old.Type()}
	}
	switch e := e.(type) {
	case *IntLit:
		return &IntLit{exprBase: base(e), Val: e.Val}
	case *FloatLit:
		return &FloatLit{exprBase: base(e), Val: e.Val}
	case *StrLit:
		return &StrLit{exprBase: base(e), Val: e.Val}
	case *Ident:
		return &Ident{exprBase: base(e), Name: e.Name, Sym: e.Sym}
	case *SizeofExpr:
		return &SizeofExpr{exprBase: base(e), T: e.T}
	case *Unary:
		return &Unary{exprBase: base(e), Op: e.Op, X: p.CloneExpr(e.X)}
	case *IncDec:
		return &IncDec{exprBase: base(e), Op: e.Op, Post: e.Post, X: p.CloneExpr(e.X)}
	case *Binary:
		return &Binary{exprBase: base(e), Op: e.Op, X: p.CloneExpr(e.X), Y: p.CloneExpr(e.Y)}
	case *AssignExpr:
		return &AssignExpr{exprBase: base(e), Op: e.Op, LHS: p.CloneExpr(e.LHS), RHS: p.CloneExpr(e.RHS)}
	case *Cond:
		return &Cond{exprBase: base(e), Cond: p.CloneExpr(e.Cond), Then: p.CloneExpr(e.Then), Else: p.CloneExpr(e.Else)}
	case *Call:
		c := &Call{exprBase: base(e), Fun: p.CloneExpr(e.Fun)}
		for _, a := range e.Args {
			c.Args = append(c.Args, p.CloneExpr(a))
		}
		return c
	case *Index:
		return &Index{exprBase: base(e), X: p.CloneExpr(e.X), Idx: p.CloneExpr(e.Idx)}
	case *FieldExpr:
		return &FieldExpr{exprBase: base(e), X: p.CloneExpr(e.X), Name: e.Name, Arrow: e.Arrow, Info: e.Info}
	case *Cast:
		return &Cast{exprBase: base(e), To: e.To, X: p.CloneExpr(e.X)}
	}
	panic("CloneExpr: unhandled expression")
}
