package minic

import "fmt"

// Builtins are the MiniC intrinsic functions serviced directly by the VM.
// They exist as SymFunc symbols with a nil FuncDecl.
var builtinSigs = map[string]*FuncType{
	"print_int":   {Params: []Type{IntType}, Ret: VoidType},
	"print_float": {Params: []Type{FloatType}, Ret: VoidType},
	"print_str":   {Params: nil, Ret: VoidType}, // (string) — special-cased
	"__assert":    {Params: []Type{IntType}, Ret: VoidType},
}

// IsBuiltin reports whether name is a MiniC builtin function.
func IsBuiltin(name string) bool {
	_, ok := builtinSigs[name]
	return ok
}

// Checker resolves names and types for a parsed Program. Use Check.
type Checker struct {
	prog     *Program
	scopes   []map[string]*Symbol
	fn       *FuncDecl
	loops    int
	builtins map[string]*Symbol
	// GlobalWords is the total size of global storage in VM words.
	GlobalWords int
}

// Check resolves all identifiers, assigns storage slots, and types every
// expression in prog. It mutates prog in place. On success the program is
// ready for the analyses and the interpreter.
func Check(prog *Program) error {
	c := &Checker{prog: prog, builtins: map[string]*Symbol{}}
	for name, sig := range builtinSigs {
		c.builtins[name] = &Symbol{Name: name, Kind: SymFunc, Type: sig}
	}
	if err := c.checkProgram(); err != nil {
		if e, ok := err.(*Error); ok {
			e.File = prog.Name
		}
		return err
	}
	prog.GlobalWords = c.GlobalWords
	return nil
}

func (c *Checker) push() { c.scopes = append(c.scopes, map[string]*Symbol{}) }
func (c *Checker) pop()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *Checker) declare(pos Pos, sym *Symbol) error {
	top := c.scopes[len(c.scopes)-1]
	if _, exists := top[sym.Name]; exists {
		return errf(pos, "%s redeclared in this scope", sym.Name)
	}
	top[sym.Name] = sym
	return nil
}

func (c *Checker) lookup(name string) *Symbol {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, ok := c.scopes[i][name]; ok {
			return s
		}
	}
	return c.builtins[name]
}

func (c *Checker) checkProgram() error {
	c.push() // global scope
	defer c.pop()

	// Declare functions first so calls may be forward.
	for _, fn := range c.prog.Funcs {
		sym := &Symbol{Name: fn.Name, Kind: SymFunc, Type: fn.FuncType(), FuncDecl: fn}
		fn.Sym = sym
		if err := c.declare(fn.Pos(), sym); err != nil {
			return err
		}
	}
	// Globals: assign word offsets in declaration order.
	off := 0
	for _, g := range c.prog.Globals {
		if IsVoid(g.Type) {
			return errf(g.Pos(), "variable %s has void type", g.Name)
		}
		sym := &Symbol{Name: g.Name, Kind: SymGlobal, Type: g.Type, Slot: off}
		g.Sym = sym
		off += g.Type.Words()
		if err := c.declare(g.Pos(), sym); err != nil {
			return err
		}
		if err := c.checkVarInit(g); err != nil {
			return err
		}
	}
	c.GlobalWords = off

	for _, fn := range c.prog.Funcs {
		if err := c.checkFunc(fn); err != nil {
			return err
		}
	}
	return nil
}

func (c *Checker) checkVarInit(d *VarDecl) error {
	if d.Init != nil {
		t, err := c.checkExpr(d.Init)
		if err != nil {
			return err
		}
		if !assignable(d.Type, t) {
			return errf(d.Pos(), "cannot initialize %s (%s) with %s", d.Name, d.Type, t)
		}
	}
	if d.InitList != nil {
		at, ok := d.Type.(*Array)
		if !ok {
			return errf(d.Pos(), "brace initializer on non-array %s", d.Name)
		}
		if len(d.InitList) > at.Words() {
			return errf(d.Pos(), "too many initializers for %s (%d > %d)",
				d.Name, len(d.InitList), at.Words())
		}
		for _, e := range d.InitList {
			if _, err := c.checkExpr(e); err != nil {
				return err
			}
		}
	}
	return nil
}

func (c *Checker) checkFunc(fn *FuncDecl) error {
	c.fn = fn
	defer func() { c.fn = nil }()
	c.push()
	defer c.pop()

	off := 0
	for _, p := range fn.Params {
		if IsVoid(p.Type) || IsAggregate(p.Type) {
			return errf(p.Pos(), "parameter %s must have scalar type, has %s", p.Name, p.Type)
		}
		sym := &Symbol{Name: p.Name, Kind: SymParam, Type: p.Type, Slot: off, Func: fn}
		p.Sym = sym
		off += p.Type.Words()
		if err := c.declare(p.Pos(), sym); err != nil {
			return err
		}
	}
	fn.FrameWords = off
	if fn.Body != nil {
		if err := c.checkStmt(fn.Body); err != nil {
			return err
		}
	}
	return nil
}

func (c *Checker) checkStmt(s Stmt) error {
	switch s := s.(type) {
	case *DeclStmt:
		for _, d := range s.Decls {
			if IsVoid(d.Type) {
				return errf(d.Pos(), "variable %s has void type", d.Name)
			}
			sym := &Symbol{Name: d.Name, Kind: SymLocal, Type: d.Type, Slot: c.fn.FrameWords, Func: c.fn}
			d.Sym = sym
			c.fn.FrameWords += d.Type.Words()
			if err := c.declare(d.Pos(), sym); err != nil {
				return err
			}
			if err := c.checkVarInit(d); err != nil {
				return err
			}
		}
		return nil
	case *ExprStmt:
		_, err := c.checkExpr(s.X)
		return err
	case *Block:
		c.push()
		defer c.pop()
		for _, st := range s.Stmts {
			if err := c.checkStmt(st); err != nil {
				return err
			}
		}
		return nil
	case *IfStmt:
		if err := c.checkCond(s.Cond); err != nil {
			return err
		}
		if err := c.checkStmt(s.Then); err != nil {
			return err
		}
		if s.Else != nil {
			return c.checkStmt(s.Else)
		}
		return nil
	case *WhileStmt:
		if err := c.checkCond(s.Cond); err != nil {
			return err
		}
		c.loops++
		defer func() { c.loops-- }()
		return c.checkStmt(s.Body)
	case *ForStmt:
		c.push()
		defer c.pop()
		if s.Init != nil {
			if err := c.checkStmt(s.Init); err != nil {
				return err
			}
		}
		if s.Cond != nil {
			if err := c.checkCond(s.Cond); err != nil {
				return err
			}
		}
		if s.Post != nil {
			if _, err := c.checkExpr(s.Post); err != nil {
				return err
			}
		}
		c.loops++
		defer func() { c.loops-- }()
		return c.checkStmt(s.Body)
	case *BreakStmt:
		if c.loops == 0 {
			return errf(s.Pos(), "break outside loop")
		}
		return nil
	case *ContinueStmt:
		if c.loops == 0 {
			return errf(s.Pos(), "continue outside loop")
		}
		return nil
	case *ReturnStmt:
		if s.X == nil {
			if !IsVoid(c.fn.Ret) {
				return errf(s.Pos(), "missing return value in %s", c.fn.Name)
			}
			return nil
		}
		t, err := c.checkExpr(s.X)
		if err != nil {
			return err
		}
		if IsVoid(c.fn.Ret) {
			return errf(s.Pos(), "return with value in void function %s", c.fn.Name)
		}
		if !assignable(c.fn.Ret, t) {
			return errf(s.Pos(), "cannot return %s from %s returning %s", t, c.fn.Name, c.fn.Ret)
		}
		return nil
	case *EmptyStmt:
		return nil
	case *ReuseRegion:
		for _, e := range s.Inputs {
			if _, err := c.checkExpr(e); err != nil {
				return err
			}
		}
		if err := c.checkStmt(s.Body); err != nil {
			return err
		}
		for _, e := range s.Outputs {
			if _, err := c.checkExpr(e); err != nil {
				return err
			}
			if !isLvalue(e) {
				return errf(e.Pos(), "reuse output is not an lvalue")
			}
		}
		return nil
	}
	return errf(s.Pos(), "unhandled statement %T", s)
}

func (c *Checker) checkCond(e Expr) error {
	t, err := c.checkExpr(e)
	if err != nil {
		return err
	}
	if !IsScalar(decay(t)) {
		return errf(e.Pos(), "condition must be scalar, has type %s", t)
	}
	return nil
}

// decay converts array types to pointers for value contexts.
func decay(t Type) Type {
	if at, ok := t.(*Array); ok {
		return &Pointer{Elem: at.Elem}
	}
	return t
}

// assignable reports whether a value of type src may be stored in dst.
// Arrays are not assignable (as in C); structs of identical type are.
func assignable(dst, src Type) bool {
	if _, ok := dst.(*Array); ok {
		return false
	}
	src = decay(src)
	if Identical(dst, src) {
		return true
	}
	if IsArith(dst) && IsArith(src) {
		return true
	}
	dp, dOK := dst.(*Pointer)
	sp, sOK := src.(*Pointer)
	if dOK && sOK {
		// MiniC permits any pointer-to-pointer assignment (C would warn).
		_ = dp
		_ = sp
		return true
	}
	if dOK && IsInt(src) {
		return true // p = 0 and friends
	}
	if IsInt(dst) && sOK {
		return true // hash-key style pointer-to-int
	}
	// Function pointer from function designator.
	if dOK {
		if _, ok := dp.Elem.(*FuncType); ok {
			if _, ok := src.(*FuncType); ok {
				return true
			}
		}
	}
	return false
}

// isLvalue reports whether e designates a storage location.
func isLvalue(e Expr) bool {
	switch e := e.(type) {
	case *Ident:
		return e.Sym != nil && e.Sym.Kind != SymFunc
	case *Index:
		return true
	case *FieldExpr:
		return true
	case *Unary:
		return e.Op == Star
	case *Cast:
		// Not an lvalue in C; MiniC agrees.
		return false
	}
	return false
}

// markAddrTaken records that the storage named at the base of e may be
// aliased through a pointer.
func markAddrTaken(e Expr) {
	switch e := e.(type) {
	case *Ident:
		if e.Sym != nil {
			e.Sym.AddrTaken = true
		}
	case *Index:
		markAddrTaken(e.X)
	case *FieldExpr:
		markAddrTaken(e.X)
	case *Unary:
		// &*p or p[i] via deref: the aliased object is whatever p points
		// to, which pointer analysis tracks; nothing to mark here.
	}
}

func (c *Checker) checkExpr(e Expr) (Type, error) {
	t, err := c.checkExprInner(e)
	if err != nil {
		return nil, err
	}
	e.setType(t)
	return t, nil
}

func (c *Checker) checkExprInner(e Expr) (Type, error) {
	switch e := e.(type) {
	case *IntLit:
		return IntType, nil
	case *FloatLit:
		return FloatType, nil
	case *StrLit:
		// Strings type as int (a degenerate handle); only print_str uses them.
		return IntType, nil
	case *Ident:
		sym := c.lookup(e.Name)
		if sym == nil {
			return nil, errf(e.Pos(), "undefined: %s", e.Name)
		}
		e.Sym = sym
		return sym.Type, nil
	case *SizeofExpr:
		return IntType, nil

	case *Unary:
		xt, err := c.checkExpr(e.X)
		if err != nil {
			return nil, err
		}
		switch e.Op {
		case Not:
			if !IsScalar(decay(xt)) {
				return nil, errf(e.Pos(), "operand of ! must be scalar, has %s", xt)
			}
			return IntType, nil
		case Tilde:
			if !IsInt(xt) {
				return nil, errf(e.Pos(), "operand of ~ must be int, has %s", xt)
			}
			return IntType, nil
		case Minus, Plus:
			if !IsArith(xt) {
				return nil, errf(e.Pos(), "operand of unary %s must be arithmetic, has %s", e.Op, xt)
			}
			return xt, nil
		case Star:
			pt := decay(xt)
			p, ok := pt.(*Pointer)
			if !ok {
				return nil, errf(e.Pos(), "cannot dereference %s", xt)
			}
			return p.Elem, nil
		case Amp:
			if !isLvalue(e.X) {
				return nil, errf(e.Pos(), "cannot take address of non-lvalue")
			}
			markAddrTaken(e.X)
			return &Pointer{Elem: xt}, nil
		}
		return nil, errf(e.Pos(), "bad unary operator %s", e.Op)

	case *IncDec:
		xt, err := c.checkExpr(e.X)
		if err != nil {
			return nil, err
		}
		if !isLvalue(e.X) {
			return nil, errf(e.Pos(), "operand of %s must be an lvalue", e.Op)
		}
		if !IsArith(xt) {
			if _, ok := xt.(*Pointer); !ok {
				return nil, errf(e.Pos(), "operand of %s must be arithmetic or pointer, has %s", e.Op, xt)
			}
		}
		return xt, nil

	case *Binary:
		xt, err := c.checkExpr(e.X)
		if err != nil {
			return nil, err
		}
		yt, err := c.checkExpr(e.Y)
		if err != nil {
			return nil, err
		}
		return c.binaryType(e, decay(xt), decay(yt))

	case *AssignExpr:
		lt, err := c.checkExpr(e.LHS)
		if err != nil {
			return nil, err
		}
		if !isLvalue(e.LHS) {
			return nil, errf(e.Pos(), "assignment target is not an lvalue")
		}
		rt, err := c.checkExpr(e.RHS)
		if err != nil {
			return nil, err
		}
		if e.Op == Assign {
			if !assignable(lt, rt) {
				return nil, errf(e.Pos(), "cannot assign %s to %s", rt, lt)
			}
			return lt, nil
		}
		// Compound assignment behaves as l = l op r.
		fake := &Binary{Op: compoundOp(e.Op), X: e.LHS, Y: e.RHS}
		if _, err := c.binaryType(fake, decay(lt), decay(rt)); err != nil {
			return nil, err
		}
		return lt, nil

	case *Cond:
		if err := c.checkCond(e.Cond); err != nil {
			return nil, err
		}
		tt, err := c.checkExpr(e.Then)
		if err != nil {
			return nil, err
		}
		et, err := c.checkExpr(e.Else)
		if err != nil {
			return nil, err
		}
		tt, et = decay(tt), decay(et)
		switch {
		case Identical(tt, et):
			return tt, nil
		case IsArith(tt) && IsArith(et):
			if IsFloat(tt) || IsFloat(et) {
				return FloatType, nil
			}
			return IntType, nil
		case isPtr(tt) && IsInt(et), isPtr(et) && IsInt(tt):
			if isPtr(tt) {
				return tt, nil
			}
			return et, nil
		}
		return nil, errf(e.Pos(), "incompatible ternary branches: %s vs %s", tt, et)

	case *Call:
		return c.checkCall(e)

	case *Index:
		xt, err := c.checkExpr(e.X)
		if err != nil {
			return nil, err
		}
		it, err := c.checkExpr(e.Idx)
		if err != nil {
			return nil, err
		}
		if !IsInt(it) {
			return nil, errf(e.Idx.Pos(), "array index must be int, has %s", it)
		}
		elem := ElemOf(xt)
		if elem == nil {
			return nil, errf(e.Pos(), "cannot index %s", xt)
		}
		return elem, nil

	case *FieldExpr:
		xt, err := c.checkExpr(e.X)
		if err != nil {
			return nil, err
		}
		var st *Struct
		if e.Arrow {
			p, ok := decay(xt).(*Pointer)
			if !ok {
				return nil, errf(e.Pos(), "-> on non-pointer %s", xt)
			}
			st, ok = p.Elem.(*Struct)
			if !ok {
				return nil, errf(e.Pos(), "-> on pointer to non-struct %s", p.Elem)
			}
		} else {
			var ok bool
			st, ok = xt.(*Struct)
			if !ok {
				return nil, errf(e.Pos(), ". on non-struct %s", xt)
			}
		}
		f := st.FieldByName(e.Name)
		if f == nil {
			return nil, errf(e.Pos(), "struct %s has no field %s", st.Name, e.Name)
		}
		e.Info = f
		return f.Type, nil

	case *Cast:
		xt, err := c.checkExpr(e.X)
		if err != nil {
			return nil, err
		}
		xt = decay(xt)
		ok := (IsArith(e.To) && IsArith(xt)) ||
			(isPtr(e.To) && (isPtr(xt) || IsInt(xt))) ||
			(IsInt(e.To) && isPtr(xt))
		if !ok {
			return nil, errf(e.Pos(), "invalid cast from %s to %s", xt, e.To)
		}
		return e.To, nil
	}
	return nil, errf(e.Pos(), "unhandled expression %T", e)
}

func isPtr(t Type) bool { _, ok := t.(*Pointer); return ok }

// compoundOp maps a compound-assignment token to its binary operator.
func compoundOp(op TokKind) TokKind {
	switch op {
	case PlusEq:
		return Plus
	case MinusEq:
		return Minus
	case StarEq:
		return Star
	case SlashEq:
		return Slash
	case PercentEq:
		return Percent
	case ShlEq:
		return Shl
	case ShrEq:
		return Shr
	case AndEq:
		return Amp
	case OrEq:
		return Pipe
	case XorEq:
		return Caret
	}
	panic(fmt.Sprintf("compoundOp: %v is not a compound assignment", op))
}

func (c *Checker) binaryType(e *Binary, xt, yt Type) (Type, error) {
	switch e.Op {
	case AndAnd, OrOr:
		if !IsScalar(xt) || !IsScalar(yt) {
			return nil, errf(e.Pos(), "operands of %s must be scalar", e.Op)
		}
		return IntType, nil
	case EqEq, NotEq, Lt, Gt, Le, Ge:
		if IsArith(xt) && IsArith(yt) {
			return IntType, nil
		}
		if isPtr(xt) && (isPtr(yt) || IsInt(yt)) {
			return IntType, nil
		}
		if isPtr(yt) && IsInt(xt) {
			return IntType, nil
		}
		return nil, errf(e.Pos(), "cannot compare %s with %s", xt, yt)
	case Pipe, Caret, Amp, Shl, Shr, Percent:
		if !IsInt(xt) || !IsInt(yt) {
			return nil, errf(e.Pos(), "operands of %s must be int, have %s and %s", e.Op, xt, yt)
		}
		return IntType, nil
	case Plus:
		if isPtr(xt) && IsInt(yt) {
			return xt, nil
		}
		if isPtr(yt) && IsInt(xt) {
			return yt, nil
		}
	case Minus:
		if isPtr(xt) && IsInt(yt) {
			return xt, nil
		}
		if isPtr(xt) && isPtr(yt) {
			return IntType, nil
		}
	}
	// Remaining: arithmetic + - * /.
	if !IsArith(xt) || !IsArith(yt) {
		return nil, errf(e.Pos(), "invalid operands of %s: %s and %s", e.Op, xt, yt)
	}
	if IsFloat(xt) || IsFloat(yt) {
		if e.Op == Percent {
			return nil, errf(e.Pos(), "%% requires int operands")
		}
		return FloatType, nil
	}
	return IntType, nil
}

func (c *Checker) checkCall(e *Call) (Type, error) {
	// Builtin and direct calls.
	if id, ok := e.Fun.(*Ident); ok {
		sym := c.lookup(id.Name)
		if sym == nil {
			return nil, errf(id.Pos(), "undefined function: %s", id.Name)
		}
		id.Sym = sym
		id.setType(sym.Type)
		if sym.Kind == SymFunc && sym.FuncDecl == nil {
			return c.checkBuiltinCall(e, id.Name, sym.Type.(*FuncType))
		}
	} else {
		if _, err := c.checkExpr(e.Fun); err != nil {
			return nil, err
		}
	}
	ft := funcTypeOf(e.Fun.Type())
	if ft == nil {
		return nil, errf(e.Pos(), "called object is not a function (type %s)", e.Fun.Type())
	}
	if len(e.Args) != len(ft.Params) {
		return nil, errf(e.Pos(), "wrong argument count: have %d, want %d", len(e.Args), len(ft.Params))
	}
	for i, a := range e.Args {
		at, err := c.checkExpr(a)
		if err != nil {
			return nil, err
		}
		if !assignable(ft.Params[i], at) {
			return nil, errf(a.Pos(), "argument %d: cannot pass %s as %s", i+1, at, ft.Params[i])
		}
		// An array argument decays; its storage escapes into the callee.
		if _, ok := at.(*Array); ok {
			markAddrTaken(a)
		}
	}
	return ft.Ret, nil
}

func (c *Checker) checkBuiltinCall(e *Call, name string, sig *FuncType) (Type, error) {
	if name == "print_str" {
		if len(e.Args) != 1 {
			return nil, errf(e.Pos(), "print_str takes one string argument")
		}
		if _, ok := e.Args[0].(*StrLit); !ok {
			return nil, errf(e.Args[0].Pos(), "print_str argument must be a string literal")
		}
		e.Args[0].setType(IntType)
		return VoidType, nil
	}
	if len(e.Args) != len(sig.Params) {
		return nil, errf(e.Pos(), "%s: wrong argument count: have %d, want %d",
			name, len(e.Args), len(sig.Params))
	}
	for i, a := range e.Args {
		at, err := c.checkExpr(a)
		if err != nil {
			return nil, err
		}
		if !assignable(sig.Params[i], at) {
			return nil, errf(a.Pos(), "%s: argument %d: cannot pass %s as %s",
				name, i+1, at, sig.Params[i])
		}
	}
	return sig.Ret, nil
}

// funcTypeOf extracts the function type from a function designator or a
// function pointer type.
func funcTypeOf(t Type) *FuncType {
	switch t := t.(type) {
	case *FuncType:
		return t
	case *Pointer:
		if ft, ok := t.Elem.(*FuncType); ok {
			return ft
		}
	}
	return nil
}
