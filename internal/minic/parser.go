package minic

import (
	"fmt"
	"strconv"
)

// Parser is a recursive-descent parser for MiniC. Use Parse.
type Parser struct {
	toks      []Token
	pos       int
	prog      *Program
	err       error
	switchSeq int
}

// Parse lexes and parses src into a Program. name labels diagnostics.
// The returned program is untyped; run Check before using analyses.
func Parse(name, src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		if e, ok := err.(*Error); ok {
			e.File = name
		}
		return nil, err
	}
	p := &Parser{toks: toks, prog: &Program{Name: name}}
	prog, err := p.parseProgram()
	if err != nil {
		if e, ok := err.(*Error); ok {
			e.File = name
		}
		return nil, err
	}
	return prog, nil
}

// MustParse parses src and panics on error; intended for embedded workload
// sources and tests.
func MustParse(name, src string) *Program {
	prog, err := Parse(name, src)
	if err != nil {
		panic(err)
	}
	return prog
}

func (p *Parser) cur() Token { return p.toks[p.pos] }
func (p *Parser) at(k TokKind) bool {
	return p.toks[p.pos].Kind == k
}
func (p *Parser) peekKind(n int) TokKind {
	if p.pos+n >= len(p.toks) {
		return EOF
	}
	return p.toks[p.pos+n].Kind
}

func (p *Parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != EOF {
		p.pos++
	}
	return t
}

func (p *Parser) accept(k TokKind) bool {
	if p.at(k) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(k TokKind) (Token, error) {
	if p.at(k) {
		return p.next(), nil
	}
	return Token{}, errf(p.cur().Pos, "expected %s, found %s", k, p.cur())
}

func (p *Parser) newStmtBase(pos Pos) stmtBase {
	return stmtBase{pos: pos, id: p.prog.NewID()}
}

func (p *Parser) newExprBase(pos Pos) exprBase {
	return exprBase{pos: pos, id: p.prog.NewID()}
}

// atTypeStart reports whether the current token can begin a type.
func (p *Parser) atTypeStart() bool {
	switch p.cur().Kind {
	case KwInt, KwFloat, KwVoid, KwStruct:
		return true
	}
	return false
}

func (p *Parser) parseProgram() (*Program, error) {
	for !p.at(EOF) {
		if p.at(KwStruct) && p.peekKind(1) == IDENT && p.peekKind(2) == LBrace {
			if err := p.parseStructDecl(); err != nil {
				return nil, err
			}
			continue
		}
		if err := p.parseTopDecl(); err != nil {
			return nil, err
		}
	}
	return p.prog, nil
}

func (p *Parser) parseStructDecl() error {
	p.next() // struct
	nameTok := p.next()
	st := &Struct{Name: nameTok.Text}
	if p.prog.StructType(st.Name) != nil {
		return errf(nameTok.Pos, "struct %s redeclared", st.Name)
	}
	// Register before parsing fields so self-referential pointers work.
	p.prog.Structs = append(p.prog.Structs, st)
	if _, err := p.expect(LBrace); err != nil {
		return err
	}
	wordOff, byteOff := 0, 0
	for !p.accept(RBrace) {
		base, err := p.parseBaseType()
		if err != nil {
			return err
		}
		for {
			ft, fname, _, err := p.parseDeclarator(base)
			if err != nil {
				return err
			}
			if st.FieldByName(fname) != nil {
				return errf(p.cur().Pos, "duplicate field %s in struct %s", fname, st.Name)
			}
			st.Fields = append(st.Fields, Field{
				Name: fname, Type: ft, WordOff: wordOff, ByteOff: byteOff,
			})
			wordOff += ft.Words()
			byteOff += ft.Bytes()
			if !p.accept(Comma) {
				break
			}
		}
		if _, err := p.expect(Semi); err != nil {
			return err
		}
	}
	_, err := p.expect(Semi)
	return err
}

// parseBaseType parses the leading type keywords of a declaration.
func (p *Parser) parseBaseType() (Type, error) {
	switch p.cur().Kind {
	case KwInt:
		p.next()
		// Coalesce width sequences: "long int", "long long", etc.
		for p.at(KwInt) {
			p.next()
		}
		return IntType, nil
	case KwFloat:
		p.next()
		return FloatType, nil
	case KwVoid:
		p.next()
		return VoidType, nil
	case KwStruct:
		p.next()
		nameTok, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		st := p.prog.StructType(nameTok.Text)
		if st == nil {
			return nil, errf(nameTok.Pos, "undefined struct %s", nameTok.Text)
		}
		return st, nil
	}
	return nil, errf(p.cur().Pos, "expected type, found %s", p.cur())
}

// parseDeclarator parses pointers, a name, array brackets, and the
// function-pointer form (*name)(params). It returns the full type, the
// declared name, and whether the declarator is a plain function signature
// head "name(" (the caller then parses a function definition).
func (p *Parser) parseDeclarator(base Type) (Type, string, bool, error) {
	t := base
	for p.accept(Star) {
		t = &Pointer{Elem: t}
	}
	// Function pointer: ( * name ) ( params )
	if p.at(LParen) && p.peekKind(1) == Star {
		p.next() // (
		p.next() // *
		nameTok, err := p.expect(IDENT)
		if err != nil {
			return nil, "", false, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, "", false, err
		}
		params, err := p.parseParamTypes()
		if err != nil {
			return nil, "", false, err
		}
		ft := &FuncType{Params: params, Ret: t}
		t = &Pointer{Elem: ft}
		return t, nameTok.Text, false, nil
	}
	nameTok, err := p.expect(IDENT)
	if err != nil {
		return nil, "", false, err
	}
	if p.at(LParen) {
		// Function definition head; leave parens for the caller.
		return t, nameTok.Text, true, nil
	}
	// Array suffixes, outermost first: int a[2][3] is array(2, array(3, int)).
	var dims []int
	for p.accept(LBracket) {
		szTok, err := p.expect(INTLIT)
		if err != nil {
			return nil, "", false, err
		}
		n, err := strconv.ParseInt(szTok.Text, 0, 64)
		if err != nil || n <= 0 {
			return nil, "", false, errf(szTok.Pos, "bad array length %q", szTok.Text)
		}
		dims = append(dims, int(n))
		if _, err := p.expect(RBracket); err != nil {
			return nil, "", false, err
		}
	}
	for i := len(dims) - 1; i >= 0; i-- {
		t = &Array{Elem: t, Len: dims[i]}
	}
	return t, nameTok.Text, false, nil
}

// parseParamTypes parses "(type, type, ...)" for function-pointer types.
func (p *Parser) parseParamTypes() ([]Type, error) {
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	var params []Type
	if p.accept(RParen) {
		return params, nil
	}
	if p.at(KwVoid) && p.peekKind(1) == RParen {
		p.next()
		p.next()
		return params, nil
	}
	for {
		base, err := p.parseBaseType()
		if err != nil {
			return nil, err
		}
		t := base
		for p.accept(Star) {
			t = &Pointer{Elem: t}
		}
		// Optional parameter name in a type list is permitted and ignored.
		if p.at(IDENT) {
			p.next()
		}
		params = append(params, t)
		if p.accept(RParen) {
			return params, nil
		}
		if _, err := p.expect(Comma); err != nil {
			return nil, err
		}
	}
}

func (p *Parser) parseTopDecl() error {
	startPos := p.cur().Pos
	base, err := p.parseBaseType()
	if err != nil {
		return err
	}
	t, name, isFunc, err := p.parseDeclarator(base)
	if err != nil {
		return err
	}
	if isFunc {
		return p.parseFuncDecl(startPos, t, name)
	}
	// Global variable declaration list.
	for {
		g := &VarDecl{pos: startPos, id: p.prog.NewID(), Name: name, Type: t}
		if p.accept(Assign) {
			if p.at(LBrace) {
				list, err := p.parseInitList()
				if err != nil {
					return err
				}
				g.InitList = list
			} else {
				e, err := p.parseAssignExpr()
				if err != nil {
					return err
				}
				g.Init = e
			}
		}
		p.prog.Globals = append(p.prog.Globals, g)
		if !p.accept(Comma) {
			break
		}
		t, name, isFunc, err = p.parseDeclarator(base)
		if err != nil {
			return err
		}
		if isFunc {
			return errf(p.cur().Pos, "function declarator in variable list")
		}
	}
	_, err = p.expect(Semi)
	return err
}

// parseInitList parses a (possibly nested) brace initializer and flattens
// it: {{1,2},{3,4}} yields 1,2,3,4, matching the flattened array storage.
func (p *Parser) parseInitList() ([]Expr, error) {
	if _, err := p.expect(LBrace); err != nil {
		return nil, err
	}
	var out []Expr
	for !p.at(RBrace) {
		if p.at(LBrace) {
			inner, err := p.parseInitList()
			if err != nil {
				return nil, err
			}
			out = append(out, inner...)
		} else {
			e, err := p.parseAssignExpr()
			if err != nil {
				return nil, err
			}
			out = append(out, e)
		}
		if !p.accept(Comma) {
			break
		}
	}
	if _, err := p.expect(RBrace); err != nil {
		return nil, err
	}
	return out, nil
}

func (p *Parser) parseFuncDecl(pos Pos, ret Type, name string) error {
	fd := &FuncDecl{pos: pos, id: p.prog.NewID(), Name: name, Ret: ret}
	if _, err := p.expect(LParen); err != nil {
		return err
	}
	if !p.accept(RParen) {
		if p.at(KwVoid) && p.peekKind(1) == RParen {
			p.next()
			p.next()
		} else {
			for {
				base, err := p.parseBaseType()
				if err != nil {
					return err
				}
				pt, pname, isFn, err := p.parseDeclarator(base)
				if err != nil {
					return err
				}
				if isFn {
					return errf(p.cur().Pos, "bad parameter declarator")
				}
				// Array parameters decay to pointers, as in C.
				if at, ok := pt.(*Array); ok {
					pt = &Pointer{Elem: at.Elem}
				}
				fd.Params = append(fd.Params, &VarDecl{
					pos: p.cur().Pos, id: p.prog.NewID(), Name: pname, Type: pt,
				})
				if p.accept(RParen) {
					break
				}
				if _, err := p.expect(Comma); err != nil {
					return err
				}
			}
		}
	}
	// Prototype (declaration without body) is accepted and discarded;
	// MiniC resolves calls against definitions.
	if p.accept(Semi) {
		return nil
	}
	body, err := p.parseBlock()
	if err != nil {
		return err
	}
	fd.Body = body
	if p.prog.Func(name) != nil {
		return errf(pos, "function %s redefined", name)
	}
	p.prog.Funcs = append(p.prog.Funcs, fd)
	return nil
}

// ---------------------------------------------------------------------------
// Statements

func (p *Parser) parseBlock() (*Block, error) {
	lb, err := p.expect(LBrace)
	if err != nil {
		return nil, err
	}
	b := &Block{stmtBase: p.newStmtBase(lb.Pos)}
	for !p.accept(RBrace) {
		if p.at(EOF) {
			return nil, errf(p.cur().Pos, "unexpected EOF in block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	return b, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	pos := p.cur().Pos
	switch p.cur().Kind {
	case LBrace:
		return p.parseBlock()
	case Semi:
		p.next()
		return &EmptyStmt{stmtBase: p.newStmtBase(pos)}, nil
	case KwIf:
		return p.parseIf()
	case KwWhile:
		return p.parseWhile()
	case KwDo:
		return p.parseDoWhile()
	case KwFor:
		return p.parseFor()
	case KwBreak:
		p.next()
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return &BreakStmt{stmtBase: p.newStmtBase(pos)}, nil
	case KwContinue:
		p.next()
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return &ContinueStmt{stmtBase: p.newStmtBase(pos)}, nil
	case KwSwitch:
		return p.parseSwitch()
	case KwReturn:
		p.next()
		rs := &ReturnStmt{stmtBase: p.newStmtBase(pos)}
		if !p.at(Semi) {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			rs.X = e
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return rs, nil
	}
	if p.atTypeStart() {
		ds, err := p.parseDeclStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return ds, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(Semi); err != nil {
		return nil, err
	}
	es := &ExprStmt{stmtBase: p.newStmtBase(pos), X: e}
	return es, nil
}

func (p *Parser) parseDeclStmt() (*DeclStmt, error) {
	pos := p.cur().Pos
	base, err := p.parseBaseType()
	if err != nil {
		return nil, err
	}
	ds := &DeclStmt{stmtBase: p.newStmtBase(pos)}
	for {
		t, name, isFn, err := p.parseDeclarator(base)
		if err != nil {
			return nil, err
		}
		if isFn {
			return nil, errf(p.cur().Pos, "nested function declarations are not supported")
		}
		d := &VarDecl{pos: pos, id: p.prog.NewID(), Name: name, Type: t}
		if p.accept(Assign) {
			if p.at(LBrace) {
				list, err := p.parseInitList()
				if err != nil {
					return nil, err
				}
				d.InitList = list
			} else {
				e, err := p.parseAssignExpr()
				if err != nil {
					return nil, err
				}
				d.Init = e
			}
		}
		ds.Decls = append(ds.Decls, d)
		if !p.accept(Comma) {
			break
		}
	}
	return ds, nil
}

func (p *Parser) parseIf() (Stmt, error) {
	pos := p.next().Pos // if
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	s := &IfStmt{stmtBase: p.newStmtBase(pos), Cond: cond}
	s.Then, err = p.parseStmt()
	if err != nil {
		return nil, err
	}
	if p.accept(KwElse) {
		s.Else, err = p.parseStmt()
		if err != nil {
			return nil, err
		}
	}
	return s, nil
}

func (p *Parser) parseWhile() (Stmt, error) {
	pos := p.next().Pos // while
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	s := &WhileStmt{stmtBase: p.newStmtBase(pos), Cond: cond}
	s.Body, err = p.parseStmt()
	if err != nil {
		return nil, err
	}
	return s, nil
}

func (p *Parser) parseDoWhile() (Stmt, error) {
	pos := p.next().Pos // do
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(KwWhile); err != nil {
		return nil, err
	}
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(Semi); err != nil {
		return nil, err
	}
	s := &WhileStmt{stmtBase: p.newStmtBase(pos), Cond: cond, Body: body, DoWhile: true}
	return s, nil
}

func (p *Parser) parseFor() (Stmt, error) {
	pos := p.next().Pos // for
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	s := &ForStmt{stmtBase: p.newStmtBase(pos)}
	if !p.at(Semi) {
		if p.atTypeStart() {
			ds, err := p.parseDeclStmt()
			if err != nil {
				return nil, err
			}
			s.Init = ds
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.Init = &ExprStmt{stmtBase: p.newStmtBase(e.Pos()), X: e}
		}
	}
	if _, err := p.expect(Semi); err != nil {
		return nil, err
	}
	if !p.at(Semi) {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Cond = e
	}
	if _, err := p.expect(Semi); err != nil {
		return nil, err
	}
	if !p.at(RParen) {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Post = e
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	s.Body = body
	return s, nil
}

// ---------------------------------------------------------------------------
// Expressions

// parseExpr parses a full expression. MiniC has no comma operator; the
// comma only separates arguments and declarators.
func (p *Parser) parseExpr() (Expr, error) { return p.parseAssignExpr() }

var assignOps = map[TokKind]bool{
	Assign: true, PlusEq: true, MinusEq: true, StarEq: true, SlashEq: true,
	PercentEq: true, ShlEq: true, ShrEq: true, AndEq: true, OrEq: true, XorEq: true,
}

func (p *Parser) parseAssignExpr() (Expr, error) {
	lhs, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	if assignOps[p.cur().Kind] {
		opTok := p.next()
		rhs, err := p.parseAssignExpr()
		if err != nil {
			return nil, err
		}
		a := &AssignExpr{exprBase: p.newExprBase(opTok.Pos), Op: opTok.Kind, LHS: lhs, RHS: rhs}
		return a, nil
	}
	return lhs, nil
}

func (p *Parser) parseTernary() (Expr, error) {
	cond, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	if !p.at(Question) {
		return cond, nil
	}
	qTok := p.next()
	thenE, err := p.parseAssignExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(Colon); err != nil {
		return nil, err
	}
	elseE, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	c := &Cond{exprBase: p.newExprBase(qTok.Pos), Cond: cond, Then: thenE, Else: elseE}
	return c, nil
}

// binPrec maps binary operators to precedence levels; higher binds tighter.
var binPrec = map[TokKind]int{
	OrOr:   1,
	AndAnd: 2,
	Pipe:   3,
	Caret:  4,
	Amp:    5,
	EqEq:   6, NotEq: 6,
	Lt: 7, Gt: 7, Le: 7, Ge: 7,
	Shl: 8, Shr: 8,
	Plus: 9, Minus: 9,
	Star: 10, Slash: 10, Percent: 10,
}

func (p *Parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		prec, ok := binPrec[p.cur().Kind]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		opTok := p.next()
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		b := &Binary{exprBase: p.newExprBase(opTok.Pos), Op: opTok.Kind, X: lhs, Y: rhs}
		lhs = b
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	pos := p.cur().Pos
	switch p.cur().Kind {
	case Not, Tilde, Minus, Plus, Star, Amp:
		opTok := p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		u := &Unary{exprBase: p.newExprBase(opTok.Pos), Op: opTok.Kind, X: x}
		return u, nil
	case Inc, Dec:
		opTok := p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		u := &IncDec{exprBase: p.newExprBase(opTok.Pos), Op: opTok.Kind, X: x}
		return u, nil
	case KwSizeof:
		p.next()
		if _, err := p.expect(LParen); err != nil {
			return nil, err
		}
		base, err := p.parseBaseType()
		if err != nil {
			return nil, err
		}
		t := base
		for p.accept(Star) {
			t = &Pointer{Elem: t}
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		s := &SizeofExpr{exprBase: p.newExprBase(pos), T: t}
		return s, nil
	case LParen:
		// Cast or parenthesized expression.
		if k := p.peekKind(1); k == KwInt || k == KwFloat || k == KwVoid || k == KwStruct {
			p.next() // (
			base, err := p.parseBaseType()
			if err != nil {
				return nil, err
			}
			t := base
			for p.accept(Star) {
				t = &Pointer{Elem: t}
			}
			if _, err := p.expect(RParen); err != nil {
				return nil, err
			}
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			c := &Cast{exprBase: p.newExprBase(pos), To: t, X: x}
			return c, nil
		}
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		pos := p.cur().Pos
		switch p.cur().Kind {
		case LParen:
			p.next()
			call := &Call{exprBase: p.newExprBase(pos), Fun: x}
			if !p.accept(RParen) {
				for {
					arg, err := p.parseAssignExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, arg)
					if p.accept(RParen) {
						break
					}
					if _, err := p.expect(Comma); err != nil {
						return nil, err
					}
				}
			}
			x = call
		case LBracket:
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RBracket); err != nil {
				return nil, err
			}
			ix := &Index{exprBase: p.newExprBase(pos), X: x, Idx: idx}
			x = ix
		case Dot, Arrow:
			arrow := p.next().Kind == Arrow
			nameTok, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			f := &FieldExpr{exprBase: p.newExprBase(pos), X: x, Name: nameTok.Text, Arrow: arrow}
			x = f
		case Inc, Dec:
			opTok := p.next()
			u := &IncDec{exprBase: p.newExprBase(pos), Op: opTok.Kind, Post: true, X: x}
			x = u
		default:
			return x, nil
		}
	}
}

func (p *Parser) parsePrimary() (Expr, error) {
	tok := p.cur()
	switch tok.Kind {
	case IDENT:
		p.next()
		return &Ident{exprBase: p.newExprBase(tok.Pos), Name: tok.Text}, nil
	case INTLIT:
		p.next()
		v, err := strconv.ParseInt(tok.Text, 0, 64)
		if err != nil {
			// Out-of-range literals saturate rather than failing the parse.
			v = int64(^uint64(0) >> 1)
		}
		return &IntLit{exprBase: p.newExprBase(tok.Pos), Val: v}, nil
	case FLOATLIT:
		p.next()
		v, err := strconv.ParseFloat(tok.Text, 64)
		if err != nil {
			return nil, errf(tok.Pos, "bad float literal %q", tok.Text)
		}
		return &FloatLit{exprBase: p.newExprBase(tok.Pos), Val: v}, nil
	case CHARLIT:
		p.next()
		return &IntLit{exprBase: p.newExprBase(tok.Pos), Val: int64(tok.Text[0])}, nil
	case STRLIT:
		p.next()
		return &StrLit{exprBase: p.newExprBase(tok.Pos), Val: tok.Text}, nil
	case LParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, errf(tok.Pos, "unexpected %s in expression", tok)
}

// ---------------------------------------------------------------------------
// switch statements
//
// MiniC supports the common break-terminated form of C's switch and
// desugars it at parse time into a scrutinee temporary plus an if/else
// chain, so every later phase (checking, analyses, the VM) sees only core
// constructs:
//
//	switch (e) {                     {
//	case 1:                              int __switchN = e;
//	case 2: body2; break;     =>         if (__switchN == 1 || __switchN == 2) { body2; }
//	default: bodyD;                      else { bodyD; }
//	}                                }
//
// Restrictions (diagnosed): every non-empty case must end with break or
// return (no fall-through into another case's body), break may not appear
// elsewhere at the top level of a case, and labels must be integer or
// character constants.

func (p *Parser) parseSwitch() (Stmt, error) {
	pos := p.next().Pos // switch
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	scrut, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(LBrace); err != nil {
		return nil, err
	}

	// The scrutinee temporary.
	name := fmt.Sprintf("__switch%d", p.switchSeq)
	p.switchSeq++
	tmp := &VarDecl{pos: pos, id: p.prog.NewID(), Name: name, Type: IntType, Init: scrut}
	decl := &DeclStmt{stmtBase: p.newStmtBase(pos), Decls: []*VarDecl{tmp}}
	tmpRef := func() *Ident {
		return &Ident{exprBase: p.newExprBase(pos), Name: name}
	}

	type arm struct {
		labels []Expr // nil for default
		body   []Stmt
		isDef  bool
		// closed marks an explicitly terminated arm ("case 1: break;"),
		// which must NOT merge its labels into the next arm.
		closed bool
	}
	var arms []arm

	for !p.accept(RBrace) {
		if p.at(EOF) {
			return nil, errf(p.cur().Pos, "unexpected EOF in switch")
		}
		var a arm
		// Collect the (possibly shared) labels.
		for {
			switch {
			case p.accept(KwCase):
				lab, err := p.parseTernary()
				if err != nil {
					return nil, err
				}
				if !isIntConstLabel(lab) {
					return nil, errf(lab.Pos(), "switch case label must be an integer constant")
				}
				a.labels = append(a.labels, lab)
			case p.accept(KwDefault):
				a.isDef = true
			default:
				return nil, errf(p.cur().Pos, "expected case or default in switch, found %s", p.cur())
			}
			if _, err := p.expect(Colon); err != nil {
				return nil, err
			}
			if !p.at(KwCase) && !p.at(KwDefault) {
				break
			}
		}
		// Collect the body up to the next label or the closing brace.
		terminated := false
		for !p.at(KwCase) && !p.at(KwDefault) && !p.at(RBrace) {
			if p.at(KwBreak) {
				brPos := p.next().Pos
				if _, err := p.expect(Semi); err != nil {
					return nil, err
				}
				if !p.at(KwCase) && !p.at(KwDefault) && !p.at(RBrace) {
					return nil, errf(brPos, "break must be the last statement of a switch case")
				}
				terminated = true
				break
			}
			st, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			a.body = append(a.body, st)
			if _, isRet := st.(*ReturnStmt); isRet {
				terminated = true
				break
			}
		}
		if len(a.body) > 0 && !terminated && !p.at(RBrace) {
			return nil, errf(pos, "switch case falls through; end it with break or return")
		}
		a.closed = terminated
		arms = append(arms, a)
	}

	// Merge label-only arms into the following body (case 1: case 2: body).
	// Explicitly closed empty arms ("case 1: break;") stand alone.
	var merged []arm
	for i := 0; i < len(arms); i++ {
		a := arms[i]
		for len(a.body) == 0 && !a.closed && !a.isDef && i+1 < len(arms) {
			next := arms[i+1]
			a.labels = append(a.labels, next.labels...)
			a.body = next.body
			a.isDef = next.isDef
			a.closed = next.closed
			i++
		}
		merged = append(merged, a)
	}

	// Build the if/else chain, last arm first.
	var chain Stmt
	for i := len(merged) - 1; i >= 0; i-- {
		a := merged[i]
		body := &Block{stmtBase: p.newStmtBase(pos), Stmts: a.body}
		if a.isDef {
			if chain != nil {
				return nil, errf(pos, "default must be the last arm of a switch")
			}
			chain = body
			continue
		}
		if len(a.labels) == 0 {
			continue
		}
		var cond Expr
		for _, lab := range a.labels {
			eq := &Binary{exprBase: p.newExprBase(pos), Op: EqEq, X: tmpRef(), Y: lab}
			if cond == nil {
				cond = eq
			} else {
				cond = &Binary{exprBase: p.newExprBase(pos), Op: OrOr, X: cond, Y: eq}
			}
		}
		ifs := &IfStmt{stmtBase: p.newStmtBase(pos), Cond: cond, Then: body, Else: chain}
		chain = ifs
	}
	out := &Block{stmtBase: p.newStmtBase(pos), Stmts: []Stmt{decl}}
	if chain != nil {
		out.Stmts = append(out.Stmts, chain)
	}
	return out, nil
}

// isIntConstLabel accepts integer and (negated) integer constants as
// switch labels.
func isIntConstLabel(e Expr) bool {
	switch x := e.(type) {
	case *IntLit:
		return true
	case *Unary:
		if x.Op == Minus {
			_, ok := x.X.(*IntLit)
			return ok
		}
	}
	return false
}
