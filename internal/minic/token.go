// Package minic implements the front end of MiniC, the C subset on which
// the computation-reuse compiler operates. MiniC stands in for the C
// programs (and the GCC 3.3 AST) used by Ding & Li (CGO 2004): it keeps the
// constructs their analyses need — integers, floats, pointers, fixed-size
// arrays, structs, function pointers, loops and branches — and omits the
// rest of C.
//
// The package provides a lexer (Lex), a recursive-descent parser (Parse), a
// symbol-resolving type checker (Check), and a pretty printer (Print) used
// for the scheme's source-to-source output.
package minic

import "fmt"

// Pos is a source position, 1-based.
type Pos struct {
	Line int
	Col  int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// IsValid reports whether the position has been set.
func (p Pos) IsValid() bool { return p.Line > 0 }

// TokKind enumerates MiniC token kinds.
type TokKind int

// Token kinds. Keyword and punctuation tokens carry no payload; IDENT,
// INTLIT, FLOATLIT, STRLIT and CHARLIT carry their text in Token.Text.
const (
	EOF TokKind = iota
	IDENT
	INTLIT
	FLOATLIT
	STRLIT
	CHARLIT

	// Keywords.
	KwInt
	KwFloat
	KwVoid
	KwStruct
	KwIf
	KwElse
	KwWhile
	KwFor
	KwDo
	KwBreak
	KwContinue
	KwReturn
	KwSizeof
	KwSwitch
	KwCase
	KwDefault

	// Punctuation and operators.
	LParen    // (
	RParen    // )
	LBrace    // {
	RBrace    // }
	LBracket  // [
	RBracket  // ]
	Semi      // ;
	Comma     // ,
	Dot       // .
	Arrow     // ->
	Question  // ?
	Colon     // :
	Assign    // =
	PlusEq    // +=
	MinusEq   // -=
	StarEq    // *=
	SlashEq   // /=
	PercentEq // %=
	ShlEq     // <<=
	ShrEq     // >>=
	AndEq     // &=
	OrEq      // |=
	XorEq     // ^=
	Inc       // ++
	Dec       // --
	Plus      // +
	Minus     // -
	Star      // *
	Slash     // /
	Percent   // %
	Shl       // <<
	Shr       // >>
	Lt        // <
	Gt        // >
	Le        // <=
	Ge        // >=
	EqEq      // ==
	NotEq     // !=
	Amp       // &
	Pipe      // |
	Caret     // ^
	AndAnd    // &&
	OrOr      // ||
	Not       // !
	Tilde     // ~
)

var tokNames = map[TokKind]string{
	EOF:      "EOF",
	IDENT:    "identifier",
	INTLIT:   "integer literal",
	FLOATLIT: "float literal",
	STRLIT:   "string literal",
	CHARLIT:  "char literal",

	KwInt:      "int",
	KwFloat:    "float",
	KwVoid:     "void",
	KwStruct:   "struct",
	KwIf:       "if",
	KwElse:     "else",
	KwWhile:    "while",
	KwFor:      "for",
	KwDo:       "do",
	KwBreak:    "break",
	KwContinue: "continue",
	KwReturn:   "return",
	KwSizeof:   "sizeof",
	KwSwitch:   "switch",
	KwCase:     "case",
	KwDefault:  "default",

	LParen:    "(",
	RParen:    ")",
	LBrace:    "{",
	RBrace:    "}",
	LBracket:  "[",
	RBracket:  "]",
	Semi:      ";",
	Comma:     ",",
	Dot:       ".",
	Arrow:     "->",
	Question:  "?",
	Colon:     ":",
	Assign:    "=",
	PlusEq:    "+=",
	MinusEq:   "-=",
	StarEq:    "*=",
	SlashEq:   "/=",
	PercentEq: "%=",
	ShlEq:     "<<=",
	ShrEq:     ">>=",
	AndEq:     "&=",
	OrEq:      "|=",
	XorEq:     "^=",
	Inc:       "++",
	Dec:       "--",
	Plus:      "+",
	Minus:     "-",
	Star:      "*",
	Slash:     "/",
	Percent:   "%",
	Shl:       "<<",
	Shr:       ">>",
	Lt:        "<",
	Gt:        ">",
	Le:        "<=",
	Ge:        ">=",
	EqEq:      "==",
	NotEq:     "!=",
	Amp:       "&",
	Pipe:      "|",
	Caret:     "^",
	AndAnd:    "&&",
	OrOr:      "||",
	Not:       "!",
	Tilde:     "~",
}

func (k TokKind) String() string {
	if s, ok := tokNames[k]; ok {
		return s
	}
	return fmt.Sprintf("TokKind(%d)", int(k))
}

var keywords = map[string]TokKind{
	"int":      KwInt,
	"float":    KwFloat,
	"double":   KwFloat, // accepted as an alias for float
	"void":     KwVoid,
	"struct":   KwStruct,
	"if":       KwIf,
	"else":     KwElse,
	"while":    KwWhile,
	"for":      KwFor,
	"do":       KwDo,
	"break":    KwBreak,
	"continue": KwContinue,
	"return":   KwReturn,
	"sizeof":   KwSizeof,
	"switch":   KwSwitch,
	"case":     KwCase,
	"default":  KwDefault,
	// Storage classes and sign qualifiers are tolerated and dropped;
	// integer width keywords map to int (the parser coalesces sequences
	// such as "long int").
	"static":   kwIgnored,
	"const":    kwIgnored,
	"unsigned": kwIgnored,
	"signed":   kwIgnored,
	"register": kwIgnored,
	"long":     KwInt,
	"short":    KwInt,
	"char":     KwInt,
}

// kwIgnored marks storage-class and sign qualifiers MiniC accepts but
// discards.
const kwIgnored TokKind = -1

// Token is one lexical token.
type Token struct {
	Kind TokKind
	Text string // payload for IDENT and literals; empty otherwise
	Pos  Pos
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT, INTLIT, FLOATLIT, CHARLIT:
		return t.Text
	case STRLIT:
		return fmt.Sprintf("%q", t.Text)
	default:
		return t.Kind.String()
	}
}

// Error is a front-end diagnostic carrying a source position.
type Error struct {
	Pos  Pos
	Msg  string
	File string // optional file or program name
}

func (e *Error) Error() string {
	if e.File != "" {
		return fmt.Sprintf("%s:%s: %s", e.File, e.Pos, e.Msg)
	}
	return fmt.Sprintf("%s: %s", e.Pos, e.Msg)
}

func errf(pos Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
