package minic

// This file defines the MiniC abstract syntax tree. Every statement and
// expression carries a program-unique ID (assigned by the parser) so that
// the analyses in internal/{cfg,dataflow,segment,...} can key side tables
// deterministically, and a source position for diagnostics.

// Node is any AST node.
type Node interface {
	Pos() Pos
}

// ---------------------------------------------------------------------------
// Expressions

// Expr is a MiniC expression. After Check, Type returns the expression's
// type (arrays used as values keep their array type; decay to pointer is
// made explicit by the checker only in call arguments and pointer
// arithmetic contexts at evaluation time).
type Expr interface {
	Node
	// ID is a program-unique node id.
	ID() int
	// Type is the checked type (nil before Check).
	Type() Type
	setType(Type)
	exprNode()
}

type exprBase struct {
	pos Pos
	id  int
	typ Type
}

func (b *exprBase) Pos() Pos       { return b.pos }
func (b *exprBase) ID() int        { return b.id }
func (b *exprBase) Type() Type     { return b.typ }
func (b *exprBase) setType(t Type) { b.typ = t }
func (b *exprBase) exprNode()      {}
func (b *exprBase) setID(id int)   { b.id = id }

// IntLit is an integer literal.
type IntLit struct {
	exprBase
	Val int64
}

// FloatLit is a float literal.
type FloatLit struct {
	exprBase
	Val float64
}

// StrLit is a string literal; MiniC permits strings only as arguments to
// the print builtins.
type StrLit struct {
	exprBase
	Val string
}

// Ident is a use of a named variable or function. Sym is resolved by Check.
type Ident struct {
	exprBase
	Name string
	Sym  *Symbol
}

// Unary is a prefix operator: ! ~ - + * (deref) & (address-of).
type Unary struct {
	exprBase
	Op TokKind
	X  Expr
}

// IncDec is ++x, --x, x++ or x--.
type IncDec struct {
	exprBase
	Op   TokKind // Inc or Dec
	Post bool
	X    Expr
}

// Binary is a binary operator (arithmetic, comparison, bitwise, logical).
type Binary struct {
	exprBase
	Op   TokKind
	X, Y Expr
}

// AssignExpr is an assignment or compound assignment expression.
type AssignExpr struct {
	exprBase
	Op  TokKind // Assign, PlusEq, ...
	LHS Expr
	RHS Expr
}

// Cond is the ternary conditional c ? a : b.
type Cond struct {
	exprBase
	Cond, Then, Else Expr
}

// Call is a function call. Fun is an Ident naming a function or a builtin,
// or an expression of function-pointer type.
type Call struct {
	exprBase
	Fun  Expr
	Args []Expr
}

// Index is an array or pointer subscript x[i].
type Index struct {
	exprBase
	X, Idx Expr
}

// FieldExpr is a struct member access x.f or p->f. Info is set by Check.
type FieldExpr struct {
	exprBase
	X     Expr
	Name  string
	Arrow bool
	Info  *Field
}

// Cast is an explicit conversion (int)x or (float)x, and pointer casts.
type Cast struct {
	exprBase
	To Type
	X  Expr
}

// SizeofExpr is sizeof(type); it folds to a constant at check time.
type SizeofExpr struct {
	exprBase
	T Type
}

// ---------------------------------------------------------------------------
// Statements

// Stmt is a MiniC statement.
type Stmt interface {
	Node
	ID() int
	stmtNode()
}

type stmtBase struct {
	pos Pos
	id  int
}

func (b *stmtBase) Pos() Pos     { return b.pos }
func (b *stmtBase) ID() int      { return b.id }
func (b *stmtBase) stmtNode()    {}
func (b *stmtBase) setID(id int) { b.id = id }

// idSetter is implemented by statement and expression bases.
type idSetter interface{ setID(int) }

// DeclStmt declares one or more local variables.
type DeclStmt struct {
	stmtBase
	Decls []*VarDecl
}

// ExprStmt evaluates an expression for its side effects.
type ExprStmt struct {
	stmtBase
	X Expr
}

// Block is a brace-delimited statement list.
type Block struct {
	stmtBase
	Stmts []Stmt
}

// IfStmt is if/else. Else may be nil.
type IfStmt struct {
	stmtBase
	Cond Expr
	Then Stmt
	Else Stmt
}

// WhileStmt is while(cond) body, or do body while(cond) when DoWhile.
type WhileStmt struct {
	stmtBase
	Cond    Expr
	Body    Stmt
	DoWhile bool
}

// ForStmt is for(init; cond; post) body; any clause may be nil.
type ForStmt struct {
	stmtBase
	Init Stmt // DeclStmt or ExprStmt or nil
	Cond Expr
	Post Expr
	Body Stmt
}

// BreakStmt is break.
type BreakStmt struct{ stmtBase }

// ContinueStmt is continue.
type ContinueStmt struct{ stmtBase }

// ReturnStmt is return [expr].
type ReturnStmt struct {
	stmtBase
	X Expr // nil for void return
}

// EmptyStmt is a lone semicolon.
type EmptyStmt struct{ stmtBase }

// ReuseRegion is the computation-reuse construct inserted by the transform
// pass (paper Fig. 2b). It is never produced by the parser. Semantics:
//
//	key := concat(values of Inputs)
//	if probe(TableID, SegBit, key) hits:
//	    copy stored outputs into Outputs
//	else:
//	    run Body; record values of Outputs under key
//
// Inputs are rvalue expressions; Outputs are lvalue expressions. SegBit
// selects this segment's valid bit and output columns in a merged table
// (always 0 for an unmerged table).
type ReuseRegion struct {
	stmtBase
	TableID int
	SegBit  int
	SegName string // diagnostic label, e.g. "quan@body"
	Inputs  []Expr
	Outputs []Expr
	Body    Stmt
	// Dep marks a dependence-tracked region: instead of forming a flat
	// key from all Inputs up front, the probe walks a footprint trie
	// keyed on the locations the body actually reads (internal/depmemo).
	// Inputs then declare the trackable location set, not the key.
	Dep bool
}

// ---------------------------------------------------------------------------
// Declarations

// SymKind classifies symbols.
type SymKind int

// Symbol kinds.
const (
	SymLocal SymKind = iota
	SymParam
	SymGlobal
	SymFunc
)

func (k SymKind) String() string {
	switch k {
	case SymLocal:
		return "local"
	case SymParam:
		return "param"
	case SymGlobal:
		return "global"
	default:
		return "func"
	}
}

// Symbol is a resolved program entity. Every Ident points at exactly one
// Symbol after Check; distinct declarations get distinct Symbols even when
// shadowing reuses a name.
type Symbol struct {
	Name string
	Kind SymKind
	Type Type
	// Slot is the VM storage index: the word offset of this variable in
	// its function frame (locals/params) or in global storage (globals).
	Slot int
	// Func is the declaring function for locals and params, nil otherwise.
	Func *FuncDecl
	// FuncDecl is the declared function when Kind == SymFunc.
	FuncDecl *FuncDecl
	// AddrTaken reports whether &sym occurs anywhere (set by Check) or the
	// symbol is an array/struct whose elements may be aliased via pointers.
	AddrTaken bool
}

func (s *Symbol) String() string { return s.Name }

// VarDecl declares one variable (global, local or parameter).
type VarDecl struct {
	pos  Pos
	id   int
	Name string
	Type Type
	// Init is the scalar initializer expression, or nil.
	Init Expr
	// InitList is the brace initializer for arrays, or nil. Elements are
	// constant expressions; shorter lists zero-fill as in C.
	InitList []Expr
	Sym      *Symbol
}

// Pos returns the declaration position.
func (d *VarDecl) Pos() Pos { return d.pos }

// ID returns the node id.
func (d *VarDecl) ID() int { return d.id }

// FuncDecl declares a function.
type FuncDecl struct {
	pos  Pos
	id   int
	Name string
	// Params are the declared parameters in order.
	Params []*VarDecl
	Ret    Type
	Body   *Block
	Sym    *Symbol
	// FrameWords is the number of VM words in the function frame,
	// set by Check (params first, then locals).
	FrameWords int
}

// Pos returns the declaration position.
func (f *FuncDecl) Pos() Pos { return f.pos }

// ID returns the node id.
func (f *FuncDecl) ID() int { return f.id }

// FuncType returns the function's type.
func (f *FuncDecl) FuncType() *FuncType {
	ps := make([]Type, len(f.Params))
	for i, p := range f.Params {
		ps[i] = p.Type
	}
	return &FuncType{Params: ps, Ret: f.Ret}
}

// Program is a parsed (and, after Check, typed) MiniC translation unit.
type Program struct {
	Name    string // program name for diagnostics
	Structs []*Struct
	Globals []*VarDecl
	Funcs   []*FuncDecl
	// NumNodes is one greater than the largest node ID in the program.
	NumNodes int
	// GlobalWords is the total global storage in VM words, set by Check.
	GlobalWords int

	nextID int
}

// Pos implements Node; a Program has no single source position.
func (p *Program) Pos() Pos { return Pos{} }

// NewID hands out the next node id; used by parser and by passes that
// synthesize nodes (cleanup, specialize, transform).
func (p *Program) NewID() int {
	id := p.nextID
	p.nextID++
	p.NumNodes = p.nextID
	return id
}

// Func returns the function with the given name, or nil.
func (p *Program) Func(name string) *FuncDecl {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Global returns the global variable declaration with the given name, or nil.
func (p *Program) Global(name string) *VarDecl {
	for _, g := range p.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

// StructType returns the struct type with the given name, or nil.
func (p *Program) StructType(name string) *Struct {
	for _, s := range p.Structs {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Node construction helpers (used by synthesizing passes)

// NewIdent returns a typed identifier expression bound to sym.
func (p *Program) NewIdent(sym *Symbol) *Ident {
	e := &Ident{Name: sym.Name, Sym: sym}
	e.id = p.NewID()
	e.typ = sym.Type
	return e
}

// NewIntLit returns a typed integer literal.
func (p *Program) NewIntLit(v int64) *IntLit {
	e := &IntLit{Val: v}
	e.id = p.NewID()
	e.typ = IntType
	return e
}

// NewFloatLit returns a typed float literal.
func (p *Program) NewFloatLit(v float64) *FloatLit {
	e := &FloatLit{Val: v}
	e.id = p.NewID()
	e.typ = FloatType
	return e
}

// NewBinary returns a typed binary expression. The caller is responsible
// for operand types being sensible; the result type follows usual
// arithmetic conversion (float if either side is float, else int).
func (p *Program) NewBinary(op TokKind, x, y Expr) *Binary {
	e := &Binary{Op: op, X: x, Y: y}
	e.id = p.NewID()
	switch op {
	case Lt, Gt, Le, Ge, EqEq, NotEq, AndAnd, OrOr:
		e.typ = IntType
	default:
		if IsFloat(x.Type()) || IsFloat(y.Type()) {
			e.typ = FloatType
		} else {
			e.typ = IntType
		}
	}
	return e
}

// NewAssign returns a typed simple assignment expression.
func (p *Program) NewAssign(lhs, rhs Expr) *AssignExpr {
	e := &AssignExpr{Op: Assign, LHS: lhs, RHS: rhs}
	e.id = p.NewID()
	e.typ = lhs.Type()
	return e
}

// NewExprStmt wraps an expression in a statement.
func (p *Program) NewExprStmt(x Expr) *ExprStmt {
	s := &ExprStmt{X: x}
	s.id = p.NewID()
	return s
}

// NewBlock returns a block statement.
func (p *Program) NewBlock(stmts ...Stmt) *Block {
	b := &Block{Stmts: stmts}
	b.id = p.NewID()
	return b
}

// NewVarDecl returns a variable declaration node with a fresh id. The
// caller is responsible for creating and attaching the Symbol.
func (p *Program) NewVarDecl(name string, t Type, init Expr) *VarDecl {
	return &VarDecl{id: p.NewID(), Name: name, Type: t, Init: init}
}

// NewDeclStmt wraps declarations in a statement.
func (p *Program) NewDeclStmt(decls ...*VarDecl) *DeclStmt {
	s := &DeclStmt{Decls: decls}
	s.id = p.NewID()
	return s
}

// AssignID gives a synthesized statement or expression a fresh
// program-unique id. Passes that build nodes with struct literals must
// call it before inserting the node into the AST.
func (p *Program) AssignID(n Node) {
	if s, ok := n.(idSetter); ok {
		s.setID(p.NewID())
	}
}

// NewFuncDecl returns an empty function declaration with a fresh id. The
// caller fills Params/Body and attaches the Symbol.
func (p *Program) NewFuncDecl(name string, ret Type) *FuncDecl {
	return &FuncDecl{id: p.NewID(), Name: name, Ret: ret}
}

// NewIndex returns a typed index expression x[idx]; the element type is
// derived from x's type.
func (p *Program) NewIndex(x, idx Expr) *Index {
	e := &Index{X: x, Idx: idx}
	e.id = p.NewID()
	if elem := ElemOf(x.Type()); elem != nil {
		e.typ = elem
	}
	return e
}

// NewReuseRegion returns a ReuseRegion statement with a fresh id. The
// caller fills Inputs/Outputs/Body.
func (p *Program) NewReuseRegion(tableID, segBit int, name string) *ReuseRegion {
	r := &ReuseRegion{TableID: tableID, SegBit: segBit, SegName: name}
	r.id = p.NewID()
	return r
}

// NewCall returns a typed call to a declared function.
func (p *Program) NewCall(fn *FuncDecl, args ...Expr) *Call {
	c := &Call{Fun: p.NewIdent(fn.Sym), Args: args}
	c.id = p.NewID()
	c.typ = fn.Ret
	return c
}
