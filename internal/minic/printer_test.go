package minic

import (
	"strings"
	"testing"
)

// TestPrintRoundTrip checks that printing a program and re-parsing the
// output yields a program that prints identically (print∘parse is a
// fixpoint after one iteration).
func TestPrintRoundTrip(t *testing.T) {
	srcs := map[string]string{
		"quan": quanSrc,
		"mixed": `
struct pt { int x; int y; };

int g[4] = {1, 2, 3, 4};
float scale = 2.5;
struct pt origin;

int helper(int a, int *out) {
    *out = a * 2;
    return a > 0 ? a : -a;
}

int main(void) {
    int r = 0;
    int i;
    for (i = 0; i < 4; i++) {
        int tmp;
        r += helper(g[i], &tmp);
        r ^= tmp << 1;
        if (r & 1)
            r--;
        else
            r /= 2;
    }
    while (r > 100) r -= 7;
    do { r++; } while (r < 0);
    origin.x = r;
    return origin.x;
}`,
		"ptrs": `
int deref(int **pp) { return **pp; }
int f(void) {
    int v = 9;
    int *p = &v;
    int **pp = &p;
    return deref(pp) + *p + p[0];
}`,
	}
	for name, src := range srcs {
		t.Run(name, func(t *testing.T) {
			p1 := mustCheck(t, name, src)
			out1 := Print(p1)
			p2, err := Parse(name+"_rt", out1)
			if err != nil {
				t.Fatalf("re-parse failed: %v\n--- printed ---\n%s", err, out1)
			}
			if err := Check(p2); err != nil {
				t.Fatalf("re-check failed: %v\n--- printed ---\n%s", err, out1)
			}
			out2 := Print(p2)
			if out1 != out2 {
				t.Errorf("print not stable:\n--- first ---\n%s\n--- second ---\n%s", out1, out2)
			}
		})
	}
}

func TestPrintPrecedenceParens(t *testing.T) {
	cases := []struct{ src, want string }{
		{"int f(int a, int b) { return (a + b) * 2; }", "(a + b) * 2"},
		{"int f(int a, int b) { return a + b * 2; }", "a + b * 2"},
		{"int f(int a, int b) { return -(a + b); }", "-(a + b)"},
		{"int f(int a, int b) { return a - (b - 1); }", "a - (b - 1)"},
		{"int f(int a, int b) { return (a & 3) == 1; }", "(a & 3) == 1"},
		{"int f(int a, int b) { return a < b == 1; }", "a < b == 1"},
	}
	for _, c := range cases {
		prog := mustCheck(t, "pp.c", c.src)
		ret := prog.Func("f").Body.Stmts[0].(*ReturnStmt)
		if got := PrintExpr(ret.X); got != c.want {
			t.Errorf("src %q: printed %q, want %q", c.src, got, c.want)
		}
	}
}

func TestPrintDeclarators(t *testing.T) {
	cases := []struct {
		mk   func() Type
		name string
		want string
	}{
		{func() Type { return IntType }, "x", "int x"},
		{func() Type { return &Pointer{Elem: IntType} }, "p", "int *p"},
		{func() Type { return &Pointer{Elem: &Pointer{Elem: FloatType}} }, "pp", "float **pp"},
		{func() Type { return &Array{Elem: IntType, Len: 5} }, "a", "int a[5]"},
		{func() Type { return &Array{Elem: &Array{Elem: IntType, Len: 3}, Len: 2} }, "m", "int m[2][3]"},
		{func() Type { return &Array{Elem: &Pointer{Elem: IntType}, Len: 4} }, "ap", "int *ap[4]"},
		{func() Type {
			return &Pointer{Elem: &FuncType{Params: []Type{IntType}, Ret: IntType}}
		}, "fp", "int (*fp)(int)"},
	}
	for _, c := range cases {
		if got := declString(c.mk(), c.name); got != c.want {
			t.Errorf("declString(%s) = %q, want %q", c.name, got, c.want)
		}
	}
}

func TestPrintReuseRegion(t *testing.T) {
	prog := mustCheck(t, "quan.c", quanSrc)
	fn := prog.Func("quan")
	valSym := fn.Params[0].Sym
	var iSym *Symbol
	for _, id := range Idents(fn.Body) {
		if id.Name == "i" {
			iSym = id.Sym
			break
		}
	}
	if iSym == nil {
		t.Fatal("no i symbol")
	}
	rr := &ReuseRegion{
		TableID: 0,
		SegBit:  0,
		SegName: "quan@body",
		Inputs:  []Expr{prog.NewIdent(valSym)},
		Outputs: []Expr{prog.NewIdent(iSym)},
		Body:    fn.Body.Stmts[1], // the for loop
	}
	out := PrintStmt(rr)
	for _, want := range []string{"__crc_probe(0, 0, val)", "__crc_record(0, 0, i)", "__crc_fetch(0, 0, i)"} {
		if !strings.Contains(out, want) {
			t.Errorf("printed reuse region missing %q:\n%s", want, out)
		}
	}
}

func TestPrintFloatLiterals(t *testing.T) {
	prog := mustCheck(t, "fl.c", `float a = 1.0; float b = 0.5; float c = 1e10;`)
	out := Print(prog)
	if !strings.Contains(out, "1.0") {
		t.Errorf("1.0 printed badly:\n%s", out)
	}
	if !strings.Contains(out, "0.5") {
		t.Errorf("0.5 printed badly:\n%s", out)
	}
	// Whatever the exact form, it must re-parse as float.
	p2, err := Parse("fl2", out)
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if err := Check(p2); err != nil {
		t.Fatal(err)
	}
	for _, g := range p2.Globals {
		if !IsFloat(g.Type) {
			t.Errorf("%s lost float type", g.Name)
		}
		if _, ok := g.Init.(*FloatLit); !ok {
			t.Errorf("%s init is %T", g.Name, g.Init)
		}
	}
}
