package minic

import (
	"strings"
)

// Lexer turns MiniC source text into a token stream. It handles // and
// /* */ comments, decimal/hex/octal integer literals, float literals,
// character and string literals with the common escape sequences, and all
// MiniC operators.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
	err  *Error
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Lex tokenizes src completely and returns the token slice (terminated by
// an EOF token) or the first lexical error.
func Lex(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t := lx.Next()
		if lx.err != nil {
			return nil, lx.err
		}
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks, nil
		}
	}
}

func (lx *Lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

func (lx *Lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peek2() byte {
	if lx.off+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+1]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) skipSpaceAndComments() {
	for lx.off < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peek2() == '/':
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peek2() == '*':
			start := lx.pos()
			lx.advance()
			lx.advance()
			closed := false
			for lx.off < len(lx.src) {
				if lx.peek() == '*' && lx.peek2() == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				lx.err = errf(start, "unterminated block comment")
				return
			}
		case c == '#':
			// Preprocessor lines (e.g. #include) are skipped wholesale so
			// that lightly-edited C sources lex cleanly.
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		default:
			return
		}
	}
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}
func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
func isIdentCont(c byte) bool { return isIdentStart(c) || isDigit(c) }

// Next returns the next token. After an error, Next returns EOF and the
// error is available from the Lex driver.
func (lx *Lexer) Next() Token {
	lx.skipSpaceAndComments()
	if lx.err != nil || lx.off >= len(lx.src) {
		return Token{Kind: EOF, Pos: lx.pos()}
	}
	pos := lx.pos()
	c := lx.peek()

	switch {
	case isIdentStart(c):
		start := lx.off
		for lx.off < len(lx.src) && isIdentCont(lx.peek()) {
			lx.advance()
		}
		word := lx.src[start:lx.off]
		if kw, ok := keywords[word]; ok {
			if kw == kwIgnored {
				return lx.Next() // qualifier: drop and continue
			}
			return Token{Kind: kw, Pos: pos}
		}
		return Token{Kind: IDENT, Text: word, Pos: pos}

	case isDigit(c) || (c == '.' && isDigit(lx.peek2())):
		return lx.lexNumber(pos)

	case c == '"':
		return lx.lexString(pos)

	case c == '\'':
		return lx.lexChar(pos)
	}

	// Operators and punctuation.
	lx.advance()
	two := func(next byte, k2, k1 TokKind) Token {
		if lx.peek() == next {
			lx.advance()
			return Token{Kind: k2, Pos: pos}
		}
		return Token{Kind: k1, Pos: pos}
	}
	switch c {
	case '(':
		return Token{Kind: LParen, Pos: pos}
	case ')':
		return Token{Kind: RParen, Pos: pos}
	case '{':
		return Token{Kind: LBrace, Pos: pos}
	case '}':
		return Token{Kind: RBrace, Pos: pos}
	case '[':
		return Token{Kind: LBracket, Pos: pos}
	case ']':
		return Token{Kind: RBracket, Pos: pos}
	case ';':
		return Token{Kind: Semi, Pos: pos}
	case ',':
		return Token{Kind: Comma, Pos: pos}
	case '.':
		return Token{Kind: Dot, Pos: pos}
	case '?':
		return Token{Kind: Question, Pos: pos}
	case ':':
		return Token{Kind: Colon, Pos: pos}
	case '~':
		return Token{Kind: Tilde, Pos: pos}
	case '+':
		if lx.peek() == '+' {
			lx.advance()
			return Token{Kind: Inc, Pos: pos}
		}
		return two('=', PlusEq, Plus)
	case '-':
		switch lx.peek() {
		case '-':
			lx.advance()
			return Token{Kind: Dec, Pos: pos}
		case '>':
			lx.advance()
			return Token{Kind: Arrow, Pos: pos}
		}
		return two('=', MinusEq, Minus)
	case '*':
		return two('=', StarEq, Star)
	case '/':
		return two('=', SlashEq, Slash)
	case '%':
		return two('=', PercentEq, Percent)
	case '=':
		return two('=', EqEq, Assign)
	case '!':
		return two('=', NotEq, Not)
	case '<':
		if lx.peek() == '<' {
			lx.advance()
			return two('=', ShlEq, Shl)
		}
		return two('=', Le, Lt)
	case '>':
		if lx.peek() == '>' {
			lx.advance()
			return two('=', ShrEq, Shr)
		}
		return two('=', Ge, Gt)
	case '&':
		if lx.peek() == '&' {
			lx.advance()
			return Token{Kind: AndAnd, Pos: pos}
		}
		return two('=', AndEq, Amp)
	case '|':
		if lx.peek() == '|' {
			lx.advance()
			return Token{Kind: OrOr, Pos: pos}
		}
		return two('=', OrEq, Pipe)
	case '^':
		return two('=', XorEq, Caret)
	}
	lx.err = errf(pos, "unexpected character %q", c)
	return Token{Kind: EOF, Pos: pos}
}

func (lx *Lexer) lexNumber(pos Pos) Token {
	start := lx.off
	isFloat := false

	if lx.peek() == '0' && (lx.peek2() == 'x' || lx.peek2() == 'X') {
		lx.advance()
		lx.advance()
		for lx.off < len(lx.src) && isHexDigit(lx.peek()) {
			lx.advance()
		}
		lx.skipIntSuffix()
		return Token{Kind: INTLIT, Text: lx.src[start:lx.off], Pos: pos}
	}

	for lx.off < len(lx.src) && isDigit(lx.peek()) {
		lx.advance()
	}
	if lx.peek() == '.' && lx.peek2() != '.' {
		isFloat = true
		lx.advance()
		for lx.off < len(lx.src) && isDigit(lx.peek()) {
			lx.advance()
		}
	}
	if c := lx.peek(); c == 'e' || c == 'E' {
		// Exponent: e[+-]?digits. Only treat as exponent if digits follow.
		save, saveLine, saveCol := lx.off, lx.line, lx.col
		lx.advance()
		if lx.peek() == '+' || lx.peek() == '-' {
			lx.advance()
		}
		if isDigit(lx.peek()) {
			isFloat = true
			for lx.off < len(lx.src) && isDigit(lx.peek()) {
				lx.advance()
			}
		} else {
			lx.off, lx.line, lx.col = save, saveLine, saveCol
		}
	}
	text := lx.src[start:lx.off]
	if isFloat {
		if c := lx.peek(); c == 'f' || c == 'F' {
			lx.advance()
		}
		return Token{Kind: FLOATLIT, Text: text, Pos: pos}
	}
	lx.skipIntSuffix()
	return Token{Kind: INTLIT, Text: text, Pos: pos}
}

func (lx *Lexer) skipIntSuffix() {
	for {
		switch lx.peek() {
		case 'u', 'U', 'l', 'L':
			lx.advance()
		default:
			return
		}
	}
}

func (lx *Lexer) lexEscape(pos Pos) (byte, bool) {
	if lx.off >= len(lx.src) {
		lx.err = errf(pos, "unterminated escape sequence")
		return 0, false
	}
	c := lx.advance()
	switch c {
	case 'n':
		return '\n', true
	case 't':
		return '\t', true
	case 'r':
		return '\r', true
	case '0':
		return 0, true
	case '\\', '\'', '"':
		return c, true
	}
	lx.err = errf(pos, "unknown escape sequence \\%c", c)
	return 0, false
}

func (lx *Lexer) lexString(pos Pos) Token {
	lx.advance() // opening quote
	var sb strings.Builder
	for {
		if lx.off >= len(lx.src) {
			lx.err = errf(pos, "unterminated string literal")
			return Token{Kind: EOF, Pos: pos}
		}
		c := lx.advance()
		if c == '"' {
			break
		}
		if c == '\\' {
			e, ok := lx.lexEscape(pos)
			if !ok {
				return Token{Kind: EOF, Pos: pos}
			}
			sb.WriteByte(e)
			continue
		}
		sb.WriteByte(c)
	}
	return Token{Kind: STRLIT, Text: sb.String(), Pos: pos}
}

func (lx *Lexer) lexChar(pos Pos) Token {
	lx.advance() // opening quote
	if lx.off >= len(lx.src) {
		lx.err = errf(pos, "unterminated character literal")
		return Token{Kind: EOF, Pos: pos}
	}
	c := lx.advance()
	if c == '\\' {
		e, ok := lx.lexEscape(pos)
		if !ok {
			return Token{Kind: EOF, Pos: pos}
		}
		c = e
	}
	if lx.off >= len(lx.src) || lx.advance() != '\'' {
		lx.err = errf(pos, "unterminated character literal")
		return Token{Kind: EOF, Pos: pos}
	}
	return Token{Kind: CHARLIT, Text: string(c), Pos: pos}
}
