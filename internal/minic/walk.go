package minic

// Inspect traverses the AST rooted at n in depth-first, source order,
// calling f for each non-nil node. If f returns false for a node, its
// children are skipped. Accepted roots: *Program, *FuncDecl, *VarDecl,
// Stmt and Expr nodes.
func Inspect(n Node, f func(Node) bool) {
	if n == nil || !f(n) {
		return
	}
	switch n := n.(type) {
	case *Program:
		for _, g := range n.Globals {
			Inspect(g, f)
		}
		for _, fn := range n.Funcs {
			Inspect(fn, f)
		}
	case *FuncDecl:
		for _, p := range n.Params {
			Inspect(p, f)
		}
		if n.Body != nil {
			Inspect(n.Body, f)
		}
	case *VarDecl:
		if n.Init != nil {
			Inspect(n.Init, f)
		}
		for _, e := range n.InitList {
			Inspect(e, f)
		}

	// Statements.
	case *DeclStmt:
		for _, d := range n.Decls {
			Inspect(d, f)
		}
	case *ExprStmt:
		Inspect(n.X, f)
	case *Block:
		for _, s := range n.Stmts {
			Inspect(s, f)
		}
	case *IfStmt:
		Inspect(n.Cond, f)
		Inspect(n.Then, f)
		if n.Else != nil {
			Inspect(n.Else, f)
		}
	case *WhileStmt:
		if n.DoWhile {
			Inspect(n.Body, f)
			Inspect(n.Cond, f)
		} else {
			Inspect(n.Cond, f)
			Inspect(n.Body, f)
		}
	case *ForStmt:
		if n.Init != nil {
			Inspect(n.Init, f)
		}
		if n.Cond != nil {
			Inspect(n.Cond, f)
		}
		Inspect(n.Body, f)
		if n.Post != nil {
			Inspect(n.Post, f)
		}
	case *ReturnStmt:
		if n.X != nil {
			Inspect(n.X, f)
		}
	case *ReuseRegion:
		for _, e := range n.Inputs {
			Inspect(e, f)
		}
		Inspect(n.Body, f)
		for _, e := range n.Outputs {
			Inspect(e, f)
		}
	case *BreakStmt, *ContinueStmt, *EmptyStmt:
		// leaves

	// Expressions.
	case *IntLit, *FloatLit, *StrLit, *Ident, *SizeofExpr:
		// leaves
	case *Unary:
		Inspect(n.X, f)
	case *IncDec:
		Inspect(n.X, f)
	case *Binary:
		Inspect(n.X, f)
		Inspect(n.Y, f)
	case *AssignExpr:
		Inspect(n.LHS, f)
		Inspect(n.RHS, f)
	case *Cond:
		Inspect(n.Cond, f)
		Inspect(n.Then, f)
		Inspect(n.Else, f)
	case *Call:
		Inspect(n.Fun, f)
		for _, a := range n.Args {
			Inspect(a, f)
		}
	case *Index:
		Inspect(n.X, f)
		Inspect(n.Idx, f)
	case *FieldExpr:
		Inspect(n.X, f)
	case *Cast:
		Inspect(n.X, f)
	}
}

// InspectStmts calls f for every statement in the subtree, in source order.
func InspectStmts(n Node, f func(Stmt) bool) {
	Inspect(n, func(m Node) bool {
		if s, ok := m.(Stmt); ok {
			return f(s)
		}
		return true
	})
}

// InspectExprs calls f for every expression in the subtree, in source order.
func InspectExprs(n Node, f func(Expr) bool) {
	Inspect(n, func(m Node) bool {
		if e, ok := m.(Expr); ok {
			return f(e)
		}
		return true
	})
}

// Idents returns every identifier use in the subtree, in source order.
func Idents(n Node) []*Ident {
	var out []*Ident
	Inspect(n, func(m Node) bool {
		if id, ok := m.(*Ident); ok {
			out = append(out, id)
		}
		return true
	})
	return out
}
