package core

import (
	"strings"
	"testing"
)

// depMini stages the dependence-key second chance: lookup's flat key is
// dominated by the 256-word grid (O/C >= 1 rejects it), but the body
// reads only j and grid[j], so the dependence footprint is 2 words and
// formula (3) holds under DepOverhead. main churns a cell lookup never
// reads, so a flat key could not have hit even if admitted.
const depMini = `
int grid[256];

int lookup(int j) {
    int a;
    int r;
    a = grid[j];
    r = (a * 7 + j + 13) / 3;
    r = (r * 11 + a) / 5;
    r = (r * 13 + a) / 7;
    r = (r * 17 + a) / 9;
    r = (r * 19 + a) / 11;
    r = (r * 23 + a) / 13;
    r = (r * 29 + a) / 17;
    r = (r * 31 + a) / 19;
    return r;
}

int main(void) {
    int s = 0;
    int k;
    for (k = 0; k < 400; k++) {
        grid[200] = k;
        s += lookup(k & 3);
    }
    return s;
}
`

func depRecord(t *testing.T, rep *Report) *DecisionRecord {
	t.Helper()
	for i := range rep.Ledger {
		if strings.HasPrefix(rep.Ledger[i].Segment, "lookup") &&
			strings.HasSuffix(rep.Ledger[i].Segment, "@func") {
			return &rep.Ledger[i]
		}
	}
	t.Fatal("no ledger record for lookup@func")
	return nil
}

func TestDepKeysOffRejectsByPreFilter(t *testing.T) {
	rep, err := Run(Options{Name: "depmini", Source: depMini})
	if err != nil {
		t.Fatal(err)
	}
	rec := depRecord(t, rep)
	if rec.Accepted {
		t.Fatalf("flat pipeline accepted lookup: %+v", rec)
	}
	if !strings.HasPrefix(rec.Reason, "pre-filter") {
		t.Fatalf("reason = %q, want pre-filter rejection", rec.Reason)
	}
	if rep.DepProfiles != nil {
		t.Fatal("DepProfiles must be nil with DepKeys off")
	}
	for _, ti := range rep.Tables {
		if ti.Dep {
			t.Fatal("dep table instantiated with DepKeys off")
		}
	}
}

func TestDepKeysAdmitsPreFilterReject(t *testing.T) {
	rep, err := Run(Options{Name: "depmini", Source: depMini, DepKeys: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Baseline.Ret != rep.Reuse.Ret {
		t.Fatalf("results differ: %d vs %d", rep.Baseline.Ret, rep.Reuse.Ret)
	}
	rec := depRecord(t, rep)
	if !rec.Accepted {
		t.Fatalf("dep second chance did not admit lookup: %+v", rec)
	}
	if !strings.Contains(rec.Reason, "dep keys") {
		t.Fatalf("reason = %q, want dep-key acceptance", rec.Reason)
	}
	dp := rep.DepProfiles[rec.Segment]
	if dp == nil {
		t.Fatal("no dep profile for the admitted segment")
	}
	// The whole point: the dynamic key is a fraction of the flat key.
	if rec.DepKeyWidth <= 0 || rec.FullKeyWidth <= 0 || rec.DepKeyWidth*16 > rec.FullKeyWidth {
		t.Fatalf("key widths: dep=%d full=%d", rec.DepKeyWidth, rec.FullKeyWidth)
	}
	if dp.ReuseRate() < 0.9 {
		t.Fatalf("footprint reuse rate %.3f, want > 0.9", dp.ReuseRate())
	}
	// The final run must have used a footprint trie profitably.
	var dep *TableInfo
	for i := range rep.Tables {
		if rep.Tables[i].Dep {
			dep = &rep.Tables[i]
		}
	}
	if dep == nil {
		t.Fatal("no dep table in the final run")
	}
	if dep.Stats.Hits == 0 || dep.Stats.Probes == 0 {
		t.Fatalf("dep table stats: %+v", dep.Stats)
	}
	if rec.DepHitRate <= 0.9 {
		t.Fatalf("dep hit rate %.3f, want > 0.9", rec.DepHitRate)
	}
	// The transformed source renders the dep probe pseudo-calls.
	if !strings.Contains(rep.TransformedSource, "__crc_dep_probe") {
		t.Fatal("transformed source lacks __crc_dep_probe")
	}
	// Dep admission must beat the baseline on this input.
	if rep.Speedup() <= 1.0 {
		t.Fatalf("speedup = %.3f, want > 1.0", rep.Speedup())
	}
}

func TestDepKeysNoCandidatesIsIdentical(t *testing.T) {
	// A program with no pre-filter rejects: DepKeys on must change nothing.
	off, err := Run(Options{Name: "g721mini", Source: g721Mini})
	if err != nil {
		t.Fatal(err)
	}
	on, err := Run(Options{Name: "g721mini", Source: g721Mini, DepKeys: true})
	if err != nil {
		t.Fatal(err)
	}
	if off.TransformedSource != on.TransformedSource {
		t.Fatal("DepKeys changed the transformed source without dep candidates")
	}
	if off.Reuse.Cycles != on.Reuse.Cycles {
		t.Fatalf("cycles differ: %d vs %d", off.Reuse.Cycles, on.Reuse.Cycles)
	}
}
