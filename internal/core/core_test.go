package core

import (
	"strings"
	"testing"

	"compreuse/internal/profile"
)

// g721Mini is a compact G721-style program: quan in its original
// three-parameter form (paper Fig. 4), exercised by a codec-like loop.
// The pipeline must (1) specialize quan, (2) select the specialized
// function body, (3) speed the program up.
const g721Mini = `
int power2[15] = {1,2,4,8,16,32,64,128,256,512,1024,2048,4096,8192,16384};

int quan(int val, int *table, int size) {
    int i;
    for (i = 0; i < size; i++)
        if (val < table[i])
            break;
    return (i);
}

int step;
int predict(int v) {
    step = (step * 3 + v) & 1023;
    return step;
}

int main(void) {
    int s = 0;
    int v;
    step = 7;
    for (v = 0; v < 3000; v++) {
        int sample = predict(v);
        s += quan(sample, power2, 15);
    }
    return s;
}
`

func TestPipelineG721MiniO0(t *testing.T) {
	rep, err := Run(Options{Name: "g721mini", Source: g721Mini})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Specialized) != 1 {
		t.Fatalf("specialized = %v, want one quan specialization", rep.Specialized)
	}
	if rep.SegmentsAnalyzed < 5 {
		t.Fatalf("analyzed %d segments", rep.SegmentsAnalyzed)
	}
	if rep.SegmentsTransformed < 1 {
		for _, d := range rep.Decisions {
			t.Logf("%s: eligible=%v oc=%v freq=%v profiled=%v gain=%.1f selected=%v (%s)",
				d.Name, d.Eligible, d.PassedOC, d.PassedFreq, d.Profiled, d.Gain, d.Selected, d.Reason)
		}
		t.Fatal("nothing transformed")
	}
	// Semantics preserved.
	if rep.Baseline.Ret != rep.Reuse.Ret {
		t.Fatalf("results differ: %d vs %d", rep.Baseline.Ret, rep.Reuse.Ret)
	}
	// A quan-specialized segment must be among the selected.
	found := false
	for _, d := range rep.Decisions {
		if d.Selected && strings.HasPrefix(d.Name, "quan__spec") {
			found = true
		}
	}
	if !found {
		for _, d := range rep.Decisions {
			if d.Selected {
				t.Logf("selected: %s", d.Name)
			}
		}
		t.Fatal("specialized quan not selected")
	}
	// Speedup: sample values repeat heavily (1024 distinct over 3000
	// calls) and quan is the dominant cost.
	if rep.Speedup() <= 1.05 {
		t.Fatalf("speedup = %.3f, want > 1.05", rep.Speedup())
	}
	if rep.EnergySaving() <= 0 {
		t.Fatalf("energy saving = %.3f", rep.EnergySaving())
	}
	if len(rep.Tables) == 0 {
		t.Fatal("no tables reported")
	}
	tab := rep.Tables[0]
	if tab.Stats.Hits == 0 {
		t.Fatal("no table hits in final run")
	}
	if tab.SizeBytes <= 0 || tab.Entries <= 0 {
		t.Fatalf("table sizing: %+v", tab)
	}
}

func TestPipelineO3StillWins(t *testing.T) {
	r0, err := Run(Options{Name: "g721mini", Source: g721Mini, OptLevel: "O0"})
	if err != nil {
		t.Fatal(err)
	}
	r3, err := Run(Options{Name: "g721mini", Source: g721Mini, OptLevel: "O3"})
	if err != nil {
		t.Fatal(err)
	}
	if r3.Baseline.Ret != r0.Baseline.Ret {
		t.Fatal("O-levels disagree on program result")
	}
	// The paper's Table 6 vs 7: O3 baselines are faster, and reuse still
	// helps at O3 (usually a bit less than at O0).
	if r3.Baseline.Cycles >= r0.Baseline.Cycles {
		t.Fatalf("O3 baseline (%d) not faster than O0 (%d)", r3.Baseline.Cycles, r0.Baseline.Cycles)
	}
	if r3.Speedup() <= 1.0 {
		t.Fatalf("reuse must still win at O3: %.3f", r3.Speedup())
	}
}

func TestPipelineForcedSmallTableLRU(t *testing.T) {
	// Table 5's study: a tiny LRU buffer slashes the hit ratio for a
	// program with many distinct inputs.
	big, err := Run(Options{Name: "g721mini", Source: g721Mini})
	if err != nil {
		t.Fatal(err)
	}
	small, err := Run(Options{Name: "g721mini", Source: g721Mini, ForceEntries: 4, LRU: true})
	if err != nil {
		t.Fatal(err)
	}
	if small.Baseline.Ret != small.Reuse.Ret {
		t.Fatal("semantics broken with small table")
	}
	bigHit := big.Tables[0].Stats.HitRatio()
	smallHit := small.Tables[0].Stats.HitRatio()
	if smallHit >= bigHit {
		t.Fatalf("4-entry LRU hit ratio %.3f not below optimal %.3f", smallHit, bigHit)
	}
}

func TestPipelineCrossInput(t *testing.T) {
	// Table 10's methodology: profile on one input, measure on another.
	src := `
int tab[16] = {3,1,4,1,5,9,2,6,5,3,5,8,9,7,9,3};
int f(int v) {
    int r = 0;
    int k;
    for (k = 0; k < 16; k++)
        r += tab[k] * ((v >> k) & 1);
    return r;
}
int main(int seed, int n) {
    int s = 0;
    int x = seed;
    int i;
    for (i = 0; i < n; i++) {
        x = (x * 1103515245 + 12345) & 255;
        s += f(x);
    }
    return s;
}
`
	rep, err := Run(Options{
		Name: "cross", Source: src,
		MainArgs:    []int64{1, 2000},
		MeasureArgs: []int64{42, 3000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SegmentsTransformed == 0 {
		for _, d := range rep.Decisions {
			t.Logf("%s: eligible=%v(%s) oc=%v freq=%v gain=%.1f", d.Name, d.Eligible, d.Reason, d.PassedOC, d.PassedFreq, d.Gain)
		}
		t.Fatal("nothing transformed")
	}
	if rep.Baseline.Ret != rep.Reuse.Ret {
		t.Fatal("cross-input semantics broken")
	}
	// 256 distinct inputs at most: reuse still wins on the unseen input.
	if rep.Speedup() <= 1.0 {
		t.Fatalf("cross-input speedup = %.3f", rep.Speedup())
	}
}

func TestPipelineNoProfitNoTransform(t *testing.T) {
	// A program whose only hot segment never repeats inputs: formula (3)
	// must reject it.
	src := `
int f(int v) {
    int r = 0;
    int k;
    for (k = 0; k < 6; k++)
        r += (v >> k) * 3;
    return r;
}
int main(void) {
    int s = 0;
    int i;
    for (i = 0; i < 500; i++)
        s += f(i * 7 + 1);  // all inputs distinct -> R = small
    return s;
}
`
	rep, err := Run(Options{Name: "noprofit", Source: src})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SegmentsTransformed != 0 {
		for _, d := range rep.Decisions {
			if d.Selected {
				t.Logf("selected %s gain=%v profile=%+v", d.Name, d.Gain, d.Profile)
			}
		}
		t.Fatal("unprofitable program must not be transformed")
	}
	if rep.Baseline.Ret != rep.Reuse.Ret {
		t.Fatal("untransformed program must be unchanged")
	}
}

func TestPipelineDeterministic(t *testing.T) {
	r1, err := Run(Options{Name: "g721mini", Source: g721Mini})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(Options{Name: "g721mini", Source: g721Mini})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Reuse.Cycles != r2.Reuse.Cycles || r1.Baseline.Cycles != r2.Baseline.Cycles {
		t.Fatalf("pipeline not deterministic: %d/%d vs %d/%d",
			r1.Baseline.Cycles, r1.Reuse.Cycles, r2.Baseline.Cycles, r2.Reuse.Cycles)
	}
	if r1.SegmentsTransformed != r2.SegmentsTransformed {
		t.Fatal("selection not deterministic")
	}
}

// TestSubBlockExtensionEndToEnd exercises the beyond-paper sub-block
// extension: a function whose body is only partially reusable (the suffix
// reads a per-call counter) gains nothing under the paper's three segment
// shapes, but the sub-block carve-out recovers the reusable prefix.
func TestSubBlockExtensionEndToEnd(t *testing.T) {
	src := `
int tick;
int weights[16] = {3,1,4,1,5,9,2,6,5,3,5,8,9,7,9,3};
int f(int v) {
    int heavy = 0;
    int k;
    for (k = 0; k < 24; k++)
        heavy += weights[k & 15] * ((v >> (k & 3)) + 1) + (heavy >> 7);
    int seq = tick;
    tick = tick + 1;
    int r = heavy + (seq & 1);
    return r;
}
int main(void) {
    int s = 0;
    int i;
    for (i = 0; i < 2000; i++)
        s = (s + f(i & 7)) & 16777215;
    print_int(s);
    return s & 255;
}
`
	plain, err := Run(Options{Name: "p.c", Source: src})
	if err != nil {
		t.Fatal(err)
	}
	if plain.SegmentsTransformed != 0 {
		for _, d := range plain.Decisions {
			if d.Selected {
				t.Logf("selected %s", d.Name)
			}
		}
		t.Fatal("without sub-blocks nothing should be transformable")
	}
	sub, err := Run(Options{Name: "p.c", Source: src, SubBlocks: true})
	if err != nil {
		t.Fatal(err)
	}
	if sub.SegmentsTransformed == 0 {
		for _, d := range sub.Decisions {
			t.Logf("%s kind=%s elig=%v(%s) oc=%v freq=%v gain=%.0f",
				d.Name, d.Kind, d.Eligible, d.Reason, d.PassedOC, d.PassedFreq, d.Gain)
		}
		t.Fatal("sub-block extension found nothing")
	}
	if sub.Baseline.Ret != sub.Reuse.Ret || sub.Baseline.Output != sub.Reuse.Output {
		t.Fatalf("sub-block transform broke semantics\n%s", sub.TransformedSource)
	}
	if sub.Speedup() <= 1.05 {
		t.Fatalf("sub-block speedup = %.3f", sub.Speedup())
	}
	found := false
	for _, d := range sub.Decisions {
		if d.Selected && d.Kind == "sub" {
			found = true
		}
	}
	if !found {
		t.Fatal("the selected segment is not a sub-block")
	}
}

func TestProfileSnapshotWorkflow(t *testing.T) {
	// Profile once, save, reload, and compile from the snapshot without
	// re-profiling: the decisions and the transformed behavior must match.
	first, err := Run(Options{Name: "g721mini", Source: g721Mini})
	if err != nil {
		t.Fatal(err)
	}
	if first.Snapshot == nil {
		t.Fatal("no snapshot collected")
	}

	var buf strings.Builder
	if err := first.Snapshot.Save(&buf); err != nil {
		t.Fatal(err)
	}
	snap, err := profile.LoadSnapshot(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}

	second, err := Run(Options{Name: "g721mini", Source: g721Mini, Profile: snap})
	if err != nil {
		t.Fatal(err)
	}
	if second.SegmentsTransformed != first.SegmentsTransformed {
		t.Fatalf("snapshot compile transformed %d, direct %d",
			second.SegmentsTransformed, first.SegmentsTransformed)
	}
	if second.Reuse.Ret != first.Reuse.Ret || second.Reuse.Cycles != first.Reuse.Cycles {
		t.Fatalf("snapshot compile diverged: %d/%d vs %d/%d cycles",
			first.Reuse.Ret, first.Reuse.Cycles, second.Reuse.Ret, second.Reuse.Cycles)
	}

	// Level mismatch is rejected.
	if _, err := Run(Options{Name: "g721mini", Source: g721Mini, OptLevel: "O3", Profile: snap}); err == nil {
		t.Fatal("expected O-level mismatch error")
	}
}
