package core

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// gnugoMini is a compact GNU Go-shaped program: several small influence
// helpers over a repeating board state, giving the ledger both accepted
// and rejected segments.
const gnugoMini = `
int infl(int color, int dist) {
    int v = 64;
    int i;
    for (i = 0; i < dist; i++)
        v = v - v / 4;
    return v * color;
}

int main(void) {
    int s = 0;
    int m;
    for (m = 0; m < 600; m++) {
        s += infl(1 + (m & 1), 1 + (m & 3));
    }
    return s;
}
`

func runLedger(t *testing.T, name, src string) *Report {
	t.Helper()
	rep, err := Run(Options{Name: name, Source: src, MinFreq: 8})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestLedgerCoversEverySegment checks the acceptance criterion: every
// analyzed candidate segment carries a decision record with the observed
// quantities and a verdict reason.
func TestLedgerCoversEverySegment(t *testing.T) {
	rep := runLedger(t, "g721mini", g721Mini)
	if len(rep.Ledger) != rep.SegmentsAnalyzed {
		t.Fatalf("ledger has %d records for %d analyzed segments", len(rep.Ledger), rep.SegmentsAnalyzed)
	}
	accepted := 0
	for _, rec := range rep.Ledger {
		if rec.Reason == "" {
			t.Errorf("%s: empty verdict reason", rec.Segment)
		}
		if rec.Kind == "" || rec.Function == "" {
			t.Errorf("%s: missing kind/function", rec.Segment)
		}
		if rec.Accepted {
			accepted++
			if !strings.HasPrefix(rec.Reason, "accepted") {
				t.Errorf("%s: accepted with reason %q", rec.Segment, rec.Reason)
			}
			if rec.N == 0 || rec.Nds == 0 {
				t.Errorf("%s: accepted without observed N/N_ds (%d/%d)", rec.Segment, rec.N, rec.Nds)
			}
			if rec.Gain <= 0 {
				t.Errorf("%s: accepted with gain %.2f", rec.Segment, rec.Gain)
			}
			if rec.C <= 0 || rec.O <= 0 {
				t.Errorf("%s: accepted without C/O (%.2f/%.2f)", rec.Segment, rec.C, rec.O)
			}
			if rec.ReuseRate <= 0 || rec.ReuseRate > 1 {
				t.Errorf("%s: reuse rate %.3f out of range", rec.Segment, rec.ReuseRate)
			}
			if rec.Table == "" {
				t.Errorf("%s: accepted without a table", rec.Segment)
			}
		}
		if rec.Profiled {
			wantR := 1 - float64(rec.Nds)/float64(rec.N)
			if math.Abs(rec.ReuseRate-wantR) > 1e-9 {
				t.Errorf("%s: reuse rate %.6f != 1 - Nds/N = %.6f", rec.Segment, rec.ReuseRate, wantR)
			}
			wantGain := rec.ReuseRate*rec.C - rec.O
			if math.Abs(rec.Gain-wantGain) > 1e-6 {
				t.Errorf("%s: gain %.4f != R*C-O = %.4f (formula 3)", rec.Segment, rec.Gain, wantGain)
			}
		}
	}
	if accepted != rep.SegmentsTransformed {
		t.Errorf("ledger accepted %d, report transformed %d", accepted, rep.SegmentsTransformed)
	}
	// The G721-shaped pipeline must attribute the win to the specialized
	// quan clone and say so in the ledger.
	foundSpecialized := false
	for _, rec := range rep.Ledger {
		if rec.Accepted && rec.Specialized {
			foundSpecialized = true
		}
	}
	if !foundSpecialized {
		t.Error("no accepted record carries the specialization provenance")
	}
}

// TestLedgerJSONRoundTrip serializes the G721-style and GNU Go-style
// ledgers and checks the parse returns the identical records.
func TestLedgerJSONRoundTrip(t *testing.T) {
	for _, tc := range []struct{ name, src string }{
		{"g721mini", g721Mini},
		{"gnugomini", gnugoMini},
	} {
		rep := runLedger(t, tc.name, tc.src)
		data, err := rep.LedgerJSON()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !json.Valid(data) {
			t.Fatalf("%s: invalid JSON", tc.name)
		}
		back, err := ParseLedger(data)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(back) != len(rep.Ledger) {
			t.Fatalf("%s: round-trip lost records: %d -> %d", tc.name, len(rep.Ledger), len(back))
		}
		for i := range back {
			if back[i] != rep.Ledger[i] {
				t.Errorf("%s: record %d changed in round-trip:\n got %+v\nwant %+v",
					tc.name, i, back[i], rep.Ledger[i])
			}
		}
	}
}

// TestLedgerRejectReasons drives a program with known reject shapes and
// checks the filter trail is named correctly.
func TestLedgerRejectReasons(t *testing.T) {
	rep := runLedger(t, "g721mini", g721Mini)
	reasons := map[string]int{}
	for _, rec := range rep.Ledger {
		switch {
		case strings.HasPrefix(rec.Reason, "structural:"):
			reasons["structural"]++
		case strings.HasPrefix(rec.Reason, "pre-filter:"):
			reasons["oc"]++
		case strings.HasPrefix(rec.Reason, "frequency filter:"):
			reasons["freq"]++
		case strings.HasPrefix(rec.Reason, "unprofitable:"):
			reasons["formula3"]++
		case strings.HasPrefix(rec.Reason, "accepted"):
			reasons["accepted"]++
		case strings.HasPrefix(rec.Reason, "rejected:"):
			reasons["nesting"]++
		default:
			t.Errorf("%s: unclassified reason %q", rec.Segment, rec.Reason)
		}
	}
	if reasons["accepted"] == 0 {
		t.Error("no accepted records")
	}
	if reasons["structural"] == 0 {
		t.Error("expected at least one structurally ineligible segment (main@func does I/O-like work)")
	}
	t.Logf("reason mix: %v", reasons)
}
