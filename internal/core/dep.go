package core

import (
	"fmt"
	"math"
	"sort"

	"compreuse/internal/cost"
	"compreuse/internal/depmemo"
	"compreuse/internal/interp"
	"compreuse/internal/profile"
	"compreuse/internal/segment"
	"compreuse/internal/transform"
)

// Dependence-key second chance (Options.DepKeys): segments the flat-key
// O/C >= 1 pre-filter rejected — typically because a wide, sparsely-read
// aggregate dominates the key — are re-profiled with dependence-tracked
// footprint tables (internal/depmemo) and admitted when formula (3)
// holds under cost.Model.DepOverhead: R_dep·C − O_dep > 0, where R_dep
// is the reuse rate over footprints and O_dep prices one trie level per
// location actually read instead of one Jenkins pass per key byte.

// DepSegProfile is the dependence-footprint analog of a value-set
// profile: the census a dep profiling wave took for one segment.
type DepSegProfile struct {
	// Segment names the profiled segment.
	Segment string
	// N is the instance count; Nds the number of distinct dependence
	// footprints (the dep analog of the paper's distinct input sets).
	N   int64
	Nds int64
	// MeasuredC is the measured per-instance body granularity (cycles).
	MeasuredC float64
	// MeanFootprint / MaxFootprint are the observed dynamic key widths
	// in tracked locations per instance.
	MeanFootprint float64
	MaxFootprint  int
	// OverheadDep is O_dep: DepOverhead over the mean footprint
	// (cycles). FullOverhead is the flat-key O the segment was rejected
	// with, for the contrast column.
	OverheadDep  float64
	FullOverhead int64
	// FullKeyBytes is the rejected flat key's width.
	FullKeyBytes int
	// Accepted is the formula-3 verdict under dep keys.
	Accepted bool
}

// ReuseRate is R_dep = 1 − Nds/N over footprints.
func (p *DepSegProfile) ReuseRate() float64 {
	if p.N == 0 {
		return 0
	}
	return 1 - float64(p.Nds)/float64(p.N)
}

// Gain is the per-instance formula-3 gain R_dep·C − O_dep (cycles).
func (p *DepSegProfile) Gain() float64 {
	return p.ReuseRate()*p.MeasuredC - p.OverheadDep
}

// DepKeyBytes is the modeled dynamic key width: 4 bytes per mean
// tracked location (one word each), rounded up.
func (p *DepSegProfile) DepKeyBytes() int {
	return int(math.Ceil(p.MeanFootprint)) * 4
}

// depCandidates selects the segments forwarded to dependence profiling:
// DepEligible under the model, frequent enough, and not overlapping any
// flat-key-selected segment or an earlier dep candidate.
func depCandidates(an *segment.Analysis, model *cost.Model, freq []int64, minFreq int64,
	selected []*segment.Segment) []*segment.Segment {

	cands := profile.FrequencyFilter(an.DepCandidates(model), freq, minFreq)
	var keptIDs []map[int]bool
	for _, s := range selected {
		keptIDs = append(keptIDs, segIDSet(s))
	}
	var out []*segment.Segment
	for _, s := range cands {
		ids := segIDSet(s)
		conflict := false
		for _, k := range keptIDs {
			if segsOverlap(ids, k) {
				conflict = true
				break
			}
		}
		if conflict {
			continue
		}
		out = append(out, s)
		keptIDs = append(keptIDs, ids)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// collectDepProfiles runs the dependence profiling wave: a fresh
// prepared copy with the candidates wrapped as dep regions over
// profile-mode footprint tables, executed on the training input.
func collectDepProfiles(o *Options, model *cost.Model,
	cands []*segment.Segment) (map[string]*DepSegProfile, error) {

	if len(cands) == 0 {
		return nil, nil
	}
	pd, err := prep(o, model)
	if err != nil {
		return nil, err
	}
	mapped := mapSegments(pd.an, cands)
	depNames := map[string]bool{}
	for _, s := range mapped {
		depNames[s.Name] = true
	}
	tres := transform.Apply(pd.prog, mapped, transform.Options{DepSegs: depNames})
	depTabs := map[int]*depmemo.Table{}
	for _, ts := range tres.Tables {
		depTabs[ts.ID] = depmemo.New(ts.DepConfig(0, true))
	}
	ro := o.runOpts(model, false, o.MainArgs)
	ro.DepTables = depTabs
	res, err := interp.Run(pd.prog, ro)
	if err != nil {
		return nil, fmt.Errorf("dep profiling run: %w", err)
	}

	profiles := map[string]*DepSegProfile{}
	for _, ts := range tres.Tables {
		s := ts.Segs[0]
		rr := tres.Regions[s]
		st := res.Segs[rr.ID()]
		if st == nil || st.Instances == 0 {
			continue
		}
		tstats := depTabs[ts.ID].Stats()
		dp := &DepSegProfile{
			Segment:       s.Name,
			N:             st.Instances,
			Nds:           tstats.Distinct,
			MeasuredC:     st.MeasuredC(),
			MeanFootprint: tstats.MeanFootprint(),
			MaxFootprint:  tstats.MaxFootprint,
			FullOverhead:  s.Overhead,
			FullKeyBytes:  s.KeyBytes,
		}
		fp := int(math.Ceil(dp.MeanFootprint))
		if fp < 1 {
			fp = 1
		}
		dp.OverheadDep = float64(model.DepOverhead(fp, s.OutBytes))
		dp.Accepted = dp.Gain() > 0
		profiles[s.Name] = dp
	}
	return profiles, nil
}

// depTableEntries sizes a final-run footprint table from the profiled
// distinct-footprint count, clamped to keep degenerate profiles sane.
func depTableEntries(o *Options, dp *DepSegProfile) int {
	if o.ForceEntries > 0 {
		return o.ForceEntries
	}
	n := int64(64)
	if dp != nil && dp.Nds > n {
		n = dp.Nds
	}
	if n > 16384 {
		n = 16384
	}
	return int(n)
}
