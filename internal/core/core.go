// Package core runs the complete compiler scheme of Ding & Li (CGO 2004),
// following their Figure 1:
//
//	source program
//	  → clean-up, specialization (§2.4), optionally -O3 optimization
//	  → call graph, pointer analysis, def-use chains
//	  → code segment analysis (granularity / hashing-overhead bounds)
//	  → execution-frequency profiling; filter infrequent segments
//	  → O/C < 1 filter (formula 3's necessary condition)
//	  → value-set profiling (N, N_ds, measured C)
//	  → cost–benefit decision R·C − O > 0 (formulas 1–3)
//	  → nested-segment resolution (formula 4, §2.3)
//	  → code generation with (merged) reuse tables (§2.5, Fig. 2b)
//	  → measurement runs (time and energy)
//
// Because every pass is deterministic, the pipeline preps several
// identical copies of the program (baseline, profiling, final) whose AST
// node ids coincide, letting profiling results map onto the fresh copy by
// segment name.
package core

import (
	"fmt"
	"sort"

	"compreuse/internal/callgraph"
	"compreuse/internal/cleanup"
	"compreuse/internal/cost"
	"compreuse/internal/dataflow"
	"compreuse/internal/depmemo"
	"compreuse/internal/energy"
	"compreuse/internal/interp"
	"compreuse/internal/minic"
	"compreuse/internal/nesting"
	"compreuse/internal/opt"
	"compreuse/internal/pointer"
	"compreuse/internal/profile"
	"compreuse/internal/reusetab"
	"compreuse/internal/segment"
	"compreuse/internal/specialize"
	"compreuse/internal/statreuse"
	"compreuse/internal/transform"
)

// Options configures one pipeline run.
type Options struct {
	// Name labels the program in reports.
	Name string
	// Source is the MiniC program text.
	Source string
	// OptLevel is "O0" (default) or "O3".
	OptLevel string
	// MainArgs are passed to main.
	MainArgs []int64
	// MaxSteps bounds each VM run (0 = default).
	MaxSteps int64
	// MinFreq is the execution-frequency filter threshold (default 8).
	MinFreq int64
	// NoMerge disables hash-table merging (§2.5 ablation).
	NoMerge bool
	// NoSpecialize disables code specialization (§2.4 ablation).
	NoSpecialize bool
	// ForceEntries, when positive, overrides every table's entry count
	// (used by the limited-buffer study, Table 5, and the size sweeps,
	// Figures 14/15).
	ForceEntries int
	// LRU selects associative LRU tables instead of direct addressing
	// (only meaningful with ForceEntries; Table 5).
	LRU bool
	// MaxSizeFactor caps the optimal table sizing search (default 4).
	MaxSizeFactor float64
	// SubBlocks enables the sub-block segment extension (the paper's §5
	// future work: reusing parts of a body instead of the whole body).
	SubBlocks bool
	// DepKeys enables the dependence-key second chance: segments the
	// flat-key O/C >= 1 pre-filter rejected are re-profiled with
	// dependence-tracked footprint tables (internal/depmemo) and admitted
	// when formula (3) holds under the per-location DepOverhead model.
	// Off by default; the flat-key pipeline output is unchanged.
	DepKeys bool
	// MeasureArgs, when non-nil, are used for the measurement runs while
	// profiling still uses MainArgs — the cross-input study of Table 10.
	MeasureArgs []int64
	// Profile, when non-nil, supplies a previously collected profiling
	// snapshot (cmd/crc -profile-in): the frequency and value-set
	// profiling runs are skipped and decisions are made from the snapshot.
	// It must have been taken on the same source at the same OptLevel.
	Profile *profile.Snapshot
	// EnergyParams defaults to energy.Default().
	EnergyParams *energy.Params
}

// RunSummary is one measured execution.
type RunSummary struct {
	Ret     int64
	Cycles  int64
	Seconds float64
	Energy  energy.Measurement
	Output  string
}

// Decision records what the scheme concluded about one segment.
type Decision struct {
	Name       string
	Kind       string
	Eligible   bool
	Reason     string
	PassedFreq bool
	PassedOC   bool
	Profiled   bool
	Profile    *profile.SegProfile
	Gain       float64 // per-instance, cycles
	Selected   bool
}

// TableInfo describes one instantiated reuse table after the final run.
type TableInfo struct {
	Name       string
	Segs       []string
	Entries    int
	EntryBytes int
	SizeBytes  int
	// Resident is the number of entries stored at the end of the run.
	Resident int
	Stats    reusetab.SegStats // summed over merged segments
	// Dep marks a dependence-tracked footprint trie (Options.DepKeys);
	// Stats is then synthesized from the region's run stats and the
	// trie's counters, and EntryBytes is the modeled dynamic key width
	// plus the output payload.
	Dep bool
	// AccessCounts are per-entry probe counts (Figures 7/8).
	AccessCounts []int64
	// PredictedCollisionRate is the profiling-time estimate of executions
	// lost to direct-addressing collisions at this table size (§2.1's
	// deduction; in the paper only MPEG2 collides).
	PredictedCollisionRate float64
}

// Report is the complete outcome of the pipeline.
type Report struct {
	Name     string
	OptLevel string

	SegmentsAnalyzed    int
	SegmentsProfiled    int
	SegmentsTransformed int
	Specialized         []string

	Decisions []Decision
	// Ledger is the structured decision ledger: one record per analyzed
	// segment with the observed quantities of formulas (1)-(4) and the
	// accept/reject verdict (see DecisionRecord; LedgerJSON serializes it).
	Ledger   []DecisionRecord
	Profiles map[string]*profile.SegProfile
	// DepProfiles holds the dependence-footprint census for each segment
	// the dep-key second chance profiled (Options.DepKeys; nil otherwise).
	DepProfiles map[string]*DepSegProfile
	// Snapshot is the profiling artifact of this run, suitable for
	// Options.Profile in a later invocation (cmd/crc -profile-out).
	Snapshot *profile.Snapshot

	Baseline RunSummary
	Reuse    RunSummary
	Tables   []TableInfo

	// TransformedSource is the printed source-to-source output (§3.1),
	// with reuse regions rendered as __crc_probe/__crc_record/__crc_fetch
	// pseudo-calls in the style of the paper's Figure 2(b).
	TransformedSource string
}

// Speedup is baseline time over reuse time.
func (r *Report) Speedup() float64 {
	if r.Reuse.Cycles == 0 {
		return 0
	}
	return float64(r.Baseline.Cycles) / float64(r.Reuse.Cycles)
}

// EnergySaving is the fractional energy saved by the transformation.
func (r *Report) EnergySaving() float64 {
	return energy.Saving(r.Baseline.Energy, r.Reuse.Energy)
}

// prepared is one fully analyzed copy of the program.
type prepared struct {
	prog *minic.Program
	pts  *pointer.Analysis
	cg   *callgraph.Graph
	eff  *dataflow.Effects
	an   *segment.Analysis
	spec []string
}

// prep parses and runs the deterministic pre-passes and analyses.
func prep(o *Options, model *cost.Model) (*prepared, error) {
	prog, err := minic.Parse(o.Name, o.Source)
	if err != nil {
		return nil, err
	}
	if err := minic.Check(prog); err != nil {
		return nil, err
	}
	cleanup.Run(prog)

	var specNames []string
	if !o.NoSpecialize {
		pts := pointer.Analyze(prog)
		cg := callgraph.Build(prog, pts)
		eff := dataflow.ComputeEffects(prog, pts, cg)
		res := specialize.Run(prog, pts, cg, eff, specialize.Options{})
		for _, f := range res.Created {
			specNames = append(specNames, f.Name)
		}
	}
	if model.Name == "O3" {
		opt.Run(prog)
	}

	pts := pointer.Analyze(prog)
	cg := callgraph.Build(prog, pts)
	eff := dataflow.ComputeEffects(prog, pts, cg)
	an := segment.Analyze(prog, pts, cg, eff, segment.Options{Model: model, SubBlocks: o.SubBlocks})
	return &prepared{prog: prog, pts: pts, cg: cg, eff: eff, an: an, spec: specNames}, nil
}

func (o *Options) runOpts(model *cost.Model, freq bool, args []int64) interp.Options {
	return interp.Options{
		Model:       model,
		MaxSteps:    o.MaxSteps,
		CollectFreq: freq,
		Args:        args,
	}
}

func (o *Options) summarize(res *interp.Result) RunSummary {
	ep := energy.Default()
	if o.EnergyParams != nil {
		ep = *o.EnergyParams
	}
	return RunSummary{
		Ret:     res.Ret,
		Cycles:  res.Cycles,
		Seconds: res.Seconds(),
		Energy:  energy.Measure(res, ep),
		Output:  res.Output,
	}
}

// SweepPoint is one table configuration for RunSweep.
type SweepPoint struct {
	// Entries per table (0 = the profiling-derived optimal size).
	Entries int
	// LRU selects associative LRU replacement (Table 5's hardware-buffer
	// emulation) instead of direct addressing.
	LRU bool
}

// SweepOutcome is the measurement of one sweep point.
type SweepOutcome struct {
	Point SweepPoint
	// SizeBytes is the total modeled table memory at this point.
	SizeBytes int
	Reuse     RunSummary
	Tables    []TableInfo
	// Speedup is baseline over this point's reuse time.
	Speedup float64
}

// RunSweep runs the scheme once (profiling, selection, transformation),
// then measures the transformed program under each table configuration —
// the methodology of the paper's Table 5 and Figures 14/15, which vary
// only the table, not the compilation.
func RunSweep(o Options, points []SweepPoint) (*Report, []SweepOutcome, error) {
	rep, err := Run(o)
	if err != nil {
		return nil, nil, err
	}
	if len(points) == 0 {
		return rep, nil, nil
	}
	// Re-apply the defaults Run applied to its own copy of o.
	o.OptLevel = rep.OptLevel
	if o.MaxSizeFactor == 0 {
		o.MaxSizeFactor = 4
	}
	model := cost.ModelFor(rep.OptLevel)
	measureArgs := o.MainArgs
	if o.MeasureArgs != nil {
		measureArgs = o.MeasureArgs
	}

	// Re-prepare and re-transform once; measure per point with fresh
	// tables (running does not mutate the AST).
	pc, err := prep(&o, model)
	if err != nil {
		return nil, nil, err
	}
	selectedNames := map[string]bool{}
	for _, d := range rep.Decisions {
		if d.Selected {
			selectedNames[d.Name] = true
		}
	}
	cSelected := mapSegmentsByName(pc.an, selectedNames)
	tres := transform.Apply(pc.prog, cSelected, transform.Options{NoMerge: o.NoMerge})

	var outcomes []SweepOutcome
	for _, pt := range points {
		tabs := map[int]*reusetab.Table{}
		for _, ts := range tres.Tables {
			entries := pt.Entries
			if entries <= 0 {
				entries = o.optimalEntries(ts, rep.Profiles)
			}
			tabs[ts.ID] = reusetab.New(ts.Config(reusetab.ModeReuse, entries, pt.LRU))
		}
		ro := o.runOpts(model, false, measureArgs)
		ro.Tables = tabs
		res, err := interp.Run(pc.prog, ro)
		if err != nil {
			return nil, nil, fmt.Errorf("sweep point %+v: %w", pt, err)
		}
		out := SweepOutcome{Point: pt, Reuse: o.summarize(res)}
		for _, ts := range tres.Tables {
			tab := tabs[ts.ID]
			info := TableInfo{
				Name:       ts.Name,
				Entries:    tab.Config().Entries,
				EntryBytes: tab.EntryBytes(),
				SizeBytes:  tab.SizeBytes(),
				Resident:   tab.Resident(),
				Stats:      tab.TotalStats(),
			}
			for _, s := range ts.Segs {
				info.Segs = append(info.Segs, s.Name)
			}
			out.Tables = append(out.Tables, info)
			out.SizeBytes += info.SizeBytes
		}
		if out.Reuse.Cycles > 0 {
			out.Speedup = float64(rep.Baseline.Cycles) / float64(out.Reuse.Cycles)
		}
		outcomes = append(outcomes, out)
	}
	return rep, outcomes, nil
}

// Run executes the whole scheme.
func Run(o Options) (*Report, error) {
	if o.OptLevel == "" {
		o.OptLevel = "O0"
	}
	if o.MinFreq == 0 {
		o.MinFreq = 8
	}
	if o.MaxSizeFactor == 0 {
		o.MaxSizeFactor = 4
	}
	model := cost.ModelFor(o.OptLevel)
	measureArgs := o.MainArgs
	if o.MeasureArgs != nil {
		measureArgs = o.MeasureArgs
	}

	rep := &Report{Name: o.Name, OptLevel: o.OptLevel}

	// --- Copy A: baseline measurement + execution-frequency profile.
	// Frequencies come from the training input (MainArgs); the baseline
	// time/energy measurement uses the measurement input.
	pa, err := prep(&o, model)
	if err != nil {
		return nil, err
	}
	rep.Specialized = pa.spec
	rep.SegmentsAnalyzed = len(pa.an.Segments)

	var freq []int64
	if o.Profile != nil {
		// Offline workflow: frequencies come from the snapshot; only the
		// baseline measurement runs.
		if o.Profile.OptLevel != o.OptLevel {
			return nil, fmt.Errorf("profile snapshot was taken at %s, not %s",
				o.Profile.OptLevel, o.OptLevel)
		}
		freq = o.Profile.Freq
		baseRes, err := interp.Run(pa.prog, o.runOpts(model, false, measureArgs))
		if err != nil {
			return nil, fmt.Errorf("baseline run: %w", err)
		}
		rep.Baseline = o.summarize(baseRes)
	} else {
		freqRes, err := interp.Run(pa.prog, o.runOpts(model, true, o.MainArgs))
		if err != nil {
			return nil, fmt.Errorf("frequency profiling run: %w", err)
		}
		freq = freqRes.Freq
		if sameArgs(o.MainArgs, measureArgs) {
			rep.Baseline = o.summarize(freqRes)
		} else {
			pb, err := prep(&o, model)
			if err != nil {
				return nil, err
			}
			baseRes, err := interp.Run(pb.prog, o.runOpts(model, false, measureArgs))
			if err != nil {
				return nil, fmt.Errorf("baseline run: %w", err)
			}
			rep.Baseline = o.summarize(baseRes)
		}
	}

	// Structural candidates + O/C filter + frequency filter.
	candidates := profile.FrequencyFilter(pa.an.Candidates(), freq, o.MinFreq)
	passedFreq := map[string]bool{}
	for _, s := range candidates {
		passedFreq[s.Name] = true
	}

	// --- Copy B: value-set profiling on the training input. Sub-block
	// candidates may overlap each other and the paper-shape segments, so
	// they are profiled in separate waves of pairwise-disjoint segments,
	// each on its own fresh copy.
	profiles := map[string]*profile.SegProfile{}
	if o.Profile != nil {
		snap, err := o.Profile.Profiles()
		if err != nil {
			return nil, err
		}
		// Keep only the profiles for segments that are candidates of this
		// compilation.
		for _, s := range candidates {
			if sp, ok := snap[s.Name]; ok {
				profiles[s.Name] = sp
			}
		}
	} else {
		var normal, subs []*segment.Segment
		for _, s := range candidates {
			if s.Kind == segment.SubBlock {
				subs = append(subs, s)
			} else {
				normal = append(normal, s)
			}
		}
		waves := [][]*segment.Segment{}
		if len(normal) > 0 {
			waves = append(waves, normal)
		}
		for len(subs) > 0 {
			wave, rest := disjointWave(subs)
			waves = append(waves, wave)
			subs = rest
		}
		for _, wave := range waves {
			pb, err := prep(&o, model)
			if err != nil {
				return nil, err
			}
			bCands := mapSegments(pb.an, wave)
			pw, _, err := profile.Collect(pb.prog, bCands, model, o.runOpts(model, false, o.MainArgs))
			if err != nil {
				return nil, err
			}
			for k, v := range pw {
				profiles[k] = v
			}
		}
	}
	rep.Snapshot = profile.ToSnapshot(o.Name, o.OptLevel, o.MainArgs, freq, profiles)
	rep.Profiles = profiles
	rep.SegmentsProfiled = len(profiles)

	// --- Decision: formula (3) then nesting resolution (formula 4).
	var cands []*nesting.Candidate
	for _, s := range candidates {
		sp := profiles[s.Name]
		if sp == nil {
			continue
		}
		if sp.CostProfile().Profitable() {
			cands = append(cands, &nesting.Candidate{Seg: s, Gain: sp.Gain(), Instances: sp.N})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].Seg.Index < cands[j].Seg.Index })
	ng := nesting.Build(cands, pa.cg)
	nestSelected := ng.Select()
	selected := dropOverlapping(nestSelected)
	overlapDropped := map[string]bool{}
	kept := map[string]bool{}
	for _, c := range selected {
		kept[c.Seg.Name] = true
	}
	for _, c := range nestSelected {
		if !kept[c.Seg.Name] {
			overlapDropped[c.Seg.Name] = true
		}
	}
	nestingWhy := nestingExplanations(ng, selected)
	selectedNames := map[string]bool{}
	for _, c := range selected {
		selectedNames[c.Seg.Name] = true
	}

	// --- Dep-key second chance (Options.DepKeys): re-profile pre-filter
	// rejects with dependence-tracked footprint tables and admit those
	// profitable under DepOverhead. Skipped in the offline-snapshot
	// workflow (the snapshot holds no footprint census).
	var depProfiles map[string]*DepSegProfile
	depNames := map[string]bool{}
	if o.DepKeys && o.Profile == nil {
		var selSegs []*segment.Segment
		for _, c := range selected {
			selSegs = append(selSegs, c.Seg)
		}
		depCands := depCandidates(pa.an, model, freq, o.MinFreq, selSegs)
		depProfiles, err = collectDepProfiles(&o, model, depCands)
		if err != nil {
			return nil, err
		}
		for name, dp := range depProfiles {
			if dp.Accepted {
				depNames[name] = true
			}
		}
	}
	rep.DepProfiles = depProfiles
	rep.SegmentsTransformed = len(selected) + len(depNames)

	// Record decisions for every analyzed segment.
	for _, s := range pa.an.Segments {
		d := Decision{
			Name: s.Name, Kind: s.Kind.String(),
			Eligible: s.Eligible, Reason: s.Reason,
			PassedOC:   s.RatioOK(),
			PassedFreq: passedFreq[s.Name],
			Selected:   selectedNames[s.Name],
		}
		if sp := profiles[s.Name]; sp != nil {
			d.Profiled = true
			d.Profile = sp
			d.Gain = sp.Gain()
		}
		rep.Decisions = append(rep.Decisions, d)
	}
	// Static reuse-rate estimation R̂ — computed from the analysis alone
	// (no profiling data), recorded next to the profiled R so the report
	// layer can measure the estimator's error and the serving tier can
	// seed admission priors before any traffic arrives.
	rep.Ledger = buildLedger(&o, rep, pa.an.Segments, passedFreq, selectedNames,
		nestingWhy, overlapDropped, statreuse.EstimateAll(pa.an), depProfiles)

	// --- Copy C: final transformation and measurement run.
	pc, err := prep(&o, model)
	if err != nil {
		return nil, err
	}
	allNames := map[string]bool{}
	for n := range selectedNames {
		allNames[n] = true
	}
	for n := range depNames {
		allNames[n] = true
	}
	cSelected := mapSegmentsByName(pc.an, allNames)
	tres := transform.Apply(pc.prog, cSelected, transform.Options{NoMerge: o.NoMerge, DepSegs: depNames})
	tabs := map[int]*reusetab.Table{}
	depTabs := map[int]*depmemo.Table{}
	for _, ts := range tres.Tables {
		if ts.Dep {
			depTabs[ts.ID] = depmemo.New(ts.DepConfig(depTableEntries(&o, depProfiles[ts.Name]), false))
			continue
		}
		entries := o.ForceEntries
		if entries <= 0 {
			entries = o.optimalEntries(ts, profiles)
		}
		tabs[ts.ID] = reusetab.New(ts.Config(reusetab.ModeReuse, entries, o.LRU && o.ForceEntries > 0))
	}
	rep.TransformedSource = minic.Print(pc.prog)
	ro := o.runOpts(model, false, measureArgs)
	ro.Tables = tabs
	if len(depTabs) > 0 {
		ro.DepTables = depTabs
	}
	reuseRes, err := interp.Run(pc.prog, ro)
	if err != nil {
		return nil, fmt.Errorf("transformed run: %w", err)
	}
	rep.Reuse = o.summarize(reuseRes)

	for _, ts := range tres.Tables {
		if ts.Dep {
			rep.Tables = append(rep.Tables, depTableInfo(rep, ts, depTabs[ts.ID],
				depProfiles[ts.Name], reuseRes, tres))
			continue
		}
		tab := tabs[ts.ID]
		info := TableInfo{
			Name:         ts.Name,
			Entries:      tab.Config().Entries,
			EntryBytes:   tab.EntryBytes(),
			SizeBytes:    tab.SizeBytes(),
			Resident:     tab.Resident(),
			Stats:        tab.TotalStats(),
			AccessCounts: tab.AccessCounts(),
		}
		if sp := rep.Profiles[ts.Segs[0].Name]; sp != nil {
			info.PredictedCollisionRate = profile.CollisionDeduction(sp.Census, info.Entries)
		}
		for _, s := range ts.Segs {
			info.Segs = append(info.Segs, s.Name)
		}
		rep.Tables = append(rep.Tables, info)
	}
	return rep, nil
}

// depTableInfo synthesizes the TableInfo of a dependence-tracked table
// (probes/hits come from the region's run stats, records/evictions from
// the trie) and patches the measured hit rate into the segment's ledger
// record.
func depTableInfo(rep *Report, ts *transform.TableSpec, tab *depmemo.Table,
	dp *DepSegProfile, reuseRes *interp.Result, tres *transform.Result) TableInfo {

	dst := tab.Stats()
	var inst, hits int64
	if st := reuseRes.Segs[tres.Regions[ts.Segs[0]].ID()]; st != nil {
		inst, hits = st.Instances, st.Hits
	}
	entryBytes := ts.OutBytes[0]
	if dp != nil {
		entryBytes += dp.DepKeyBytes()
	} else {
		entryBytes += ts.KeyBytes // no census: fall back to the flat key width
	}
	info := TableInfo{
		Name:       ts.Name,
		Segs:       []string{ts.Name},
		Entries:    tab.Config().Entries,
		EntryBytes: entryBytes,
		SizeBytes:  tab.Config().Entries * entryBytes,
		Resident:   tab.Resident(),
		Dep:        true,
		Stats: reusetab.SegStats{
			Probes:    inst,
			Hits:      hits,
			Misses:    inst - hits,
			Records:   dst.Records,
			Evictions: dst.Evictions,
		},
	}
	if inst > 0 {
		hr := float64(hits) / float64(inst)
		for i := range rep.Ledger {
			if rep.Ledger[i].Segment == ts.Name {
				rep.Ledger[i].DepHitRate = hr
			}
		}
	}
	return info
}

// optimalEntries sizes a table from the profiling census (paper §3.1: "the
// hash table size is determined based on the value profiling information").
func (o *Options) optimalEntries(ts *transform.TableSpec, profiles map[string]*profile.SegProfile) int {
	seen := map[string]bool{}
	var keys []string
	for _, seg := range ts.Segs {
		sp := profiles[seg.Name]
		if sp == nil {
			continue
		}
		for _, kc := range sp.Census {
			if !seen[kc.Key] {
				seen[kc.Key] = true
				keys = append(keys, kc.Key)
			}
		}
	}
	if len(keys) == 0 {
		return 64
	}
	return reusetab.OptimalEntries(keys, o.MaxSizeFactor)
}

// mapSegments finds the same-named segments in another prepared copy.
func mapSegments(an *segment.Analysis, src []*segment.Segment) []*segment.Segment {
	byName := map[string]*segment.Segment{}
	for _, s := range an.Segments {
		byName[s.Name] = s
	}
	var out []*segment.Segment
	for _, s := range src {
		if m, ok := byName[s.Name]; ok {
			out = append(out, m)
		}
	}
	return out
}

func mapSegmentsByName(an *segment.Analysis, names map[string]bool) []*segment.Segment {
	var out []*segment.Segment
	for _, s := range an.Segments {
		if names[s.Name] {
			out = append(out, s)
		}
	}
	return out
}

// segIDSet returns the node ids of a segment's original statements.
func segIDSet(s *segment.Segment) map[int]bool {
	ids := map[int]bool{}
	minic.Inspect(s.Body, func(n minic.Node) bool {
		type ider interface{ ID() int }
		if x, ok := n.(ider); ok {
			ids[x.ID()] = true
		}
		return true
	})
	return ids
}

func segsOverlap(a, b map[int]bool) bool {
	if len(b) < len(a) {
		a, b = b, a
	}
	for id := range a {
		if b[id] {
			return true
		}
	}
	return false
}

// disjointWave greedily splits sub-block candidates into a pairwise
// disjoint wave plus the remainder.
func disjointWave(subs []*segment.Segment) (wave, rest []*segment.Segment) {
	var waveIDs []map[int]bool
	for _, s := range subs {
		ids := segIDSet(s)
		conflict := false
		for _, w := range waveIDs {
			if segsOverlap(ids, w) {
				conflict = true
				break
			}
		}
		if conflict {
			rest = append(rest, s)
		} else {
			wave = append(wave, s)
			waveIDs = append(waveIDs, ids)
		}
	}
	return wave, rest
}

// dropOverlapping resolves residual conflicts among selected candidates
// (overlapping sub-block runs are not a nesting relation, so formula (4)
// cannot arbitrate them): keep the higher-total-gain candidate.
func dropOverlapping(selected []*nesting.Candidate) []*nesting.Candidate {
	sorted := append([]*nesting.Candidate(nil), selected...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].TotalGain() > sorted[j].TotalGain() })
	var kept []*nesting.Candidate
	var keptIDs []map[int]bool
	for _, c := range sorted {
		ids := segIDSet(c.Seg)
		ok := true
		for _, k := range keptIDs {
			if segsOverlap(ids, k) {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, c)
			keptIDs = append(keptIDs, ids)
		}
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].Seg.Index < kept[j].Seg.Index })
	return kept
}

func sameArgs(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
