package core

import (
	"encoding/json"
	"fmt"

	"compreuse/internal/nesting"
	"compreuse/internal/obs"
	"compreuse/internal/segment"
	"compreuse/internal/statreuse"
)

// The decision ledger is the pipeline's structured account of formulas
// (1)-(4): one record per analyzed code segment, carrying every observed
// quantity the paper's scheme decides on (N, N_ds, R, C, O, the gain
// R·C − O, the formula-4 nesting choice, the specialization provenance)
// and the final accept/reject verdict with its reason. It is attached to
// Report.Ledger, serializable to JSON (LedgerJSON / ParseLedger), and
// served live by `crcbench serve` at /decisions.

// DecisionRecord is one ledger line. Zero-valued profiling fields mean the
// segment never reached value-set profiling (see Reason).
type DecisionRecord struct {
	// Segment is the stable segment name ("quan_1@func").
	Segment string `json:"segment"`
	// Function is the enclosing function; Kind the segment shape
	// (function body, loop body, if branch, sub-block).
	Function string `json:"function"`
	Kind     string `json:"kind"`
	// Specialized marks segments of functions created by code
	// specialization (§2.4) — e.g. G721's quan_1 clone.
	Specialized bool `json:"specialized,omitempty"`

	// Filter trail, in pipeline order.
	Eligible   bool `json:"eligible"`
	PassedOC   bool `json:"passed_oc"`
	PassedFreq bool `json:"passed_freq"`
	Profiled   bool `json:"profiled"`

	// Observed quantities of formulas (1)-(3), from value-set profiling.
	N         int64   `json:"n"`
	Nds       int64   `json:"n_ds"`
	ReuseRate float64 `json:"reuse_rate"`
	// StaticReuseRate is the profiler-free estimate R̂ of ReuseRate,
	// predicted by internal/statreuse from the segment analysis alone
	// (loop structure, self-recurrent inputs, key shape). It is present
	// for every eligible segment — including ones value-set profiling
	// never reached — and StaticClass names the estimator rule that
	// produced it. crcserve consumes it as an admission prior (-priors).
	StaticReuseRate float64 `json:"static_reuse_rate"`
	StaticClass     string  `json:"static_class,omitempty"`
	// StaticC and StaticO are the compile-time cost estimates (cycles):
	// the analysis' computation-cost upper bound and hashing-overhead
	// model. Together with StaticReuseRate they give a fully
	// profiler-free formula-3 prior R̂·C − O (crcserve -priors).
	StaticC int64   `json:"static_c_cycles,omitempty"`
	StaticO int64   `json:"static_o_cycles,omitempty"`
	C       float64 `json:"c_cycles"`
	O       float64 `json:"o_cycles"`
	// Gain is the per-instance gain R·C − O (formula 3); TotalGain is
	// Gain·N, the whole-run stake formula (4) arbitrates with.
	Gain      float64 `json:"gain_cycles"`
	TotalGain float64 `json:"total_gain_cycles"`

	// Table and KeyBytes describe the (possibly merged) reuse table the
	// segment profiled through.
	Table    string `json:"table,omitempty"`
	KeyBytes int    `json:"key_bytes,omitempty"`

	// Nesting is the formula-(4) account when the segment reached nesting
	// resolution.
	Nesting string `json:"nesting,omitempty"`

	// Dependence-key second chance (Options.DepKeys). DepKeyWidth is the
	// modeled dynamic key width in bytes (mean footprint, one word per
	// tracked location); FullKeyWidth the flat key the segment was
	// rejected with; DepHitRate the measured footprint-trie hit rate of
	// the final run. Zero-valued unless the segment was dep-profiled.
	DepKeyWidth  int     `json:"dep_key_width,omitempty"`
	FullKeyWidth int     `json:"full_key_width,omitempty"`
	DepHitRate   float64 `json:"dep_hit_rate,omitempty"`

	// Accepted is the final verdict; Reason names the deciding filter or
	// formula.
	Accepted bool   `json:"accepted"`
	Reason   string `json:"reason"`
}

// Pipeline-level decision metrics, live when observability is enabled.
var (
	mRuns = obs.NewCounter("crc_pipeline_runs_total",
		"complete pipeline runs")
	mSegsAnalyzed = obs.NewCounter("crc_segments_analyzed_total",
		"code segments structurally analyzed")
	mSegsProfiled = obs.NewCounter("crc_segments_profiled_total",
		"code segments value-set profiled")
	mAccepted = obs.NewCounter("crc_decisions_accepted_total",
		"segments accepted for transformation")
	mRejected = obs.NewCounter("crc_decisions_rejected_total",
		"segments rejected by a filter or formula")
)

// buildLedger produces one DecisionRecord per analyzed segment. The reason
// reflects the first pipeline stage that disposed of the segment:
// structural eligibility, the O/C < 1 pre-filter, the execution-frequency
// filter, value-set profiling, formula (3), then formula (4).
func buildLedger(o *Options, rep *Report, segs []*segment.Segment,
	passedFreq map[string]bool, selectedNames map[string]bool,
	nestingWhy map[string]string, overlapDropped map[string]bool,
	estimates map[string]statreuse.Estimate,
	depProfiles map[string]*DepSegProfile) []DecisionRecord {

	specialized := map[string]bool{}
	for _, fn := range rep.Specialized {
		specialized[fn] = true
	}

	var ledger []DecisionRecord
	for _, s := range segs {
		rec := DecisionRecord{
			Segment:     s.Name,
			Function:    s.Fn.Name,
			Kind:        s.Kind.String(),
			Specialized: specialized[s.Fn.Name],
			Eligible:    s.Eligible,
			PassedOC:    s.RatioOK(),
			PassedFreq:  passedFreq[s.Name],
			Accepted:    selectedNames[s.Name],
		}
		if est, ok := estimates[s.Name]; ok {
			rec.StaticReuseRate = est.R
			rec.StaticClass = est.Class
			rec.StaticC = s.CMax
			rec.StaticO = s.Overhead
		}
		if sp := rep.Profiles[s.Name]; sp != nil {
			rec.Profiled = true
			rec.N = sp.N
			rec.Nds = sp.Nds
			rec.ReuseRate = sp.ReuseRate()
			rec.C = sp.MeasuredC
			rec.O = sp.Overhead
			rec.Gain = sp.Gain()
			rec.TotalGain = sp.Gain() * float64(sp.N)
			rec.Table = sp.TableName
			rec.KeyBytes = sp.KeyBytes
		}
		rec.Nesting = nestingWhy[s.Name]

		// Dep-key second chance: a pre-filter reject that was re-profiled
		// with a footprint trie carries the dep census instead of a flat
		// value-set profile, and its verdict comes from formula (3) under
		// DepOverhead.
		if dp := depProfiles[s.Name]; dp != nil {
			rec.Profiled = true
			rec.N = dp.N
			rec.Nds = dp.Nds
			rec.ReuseRate = dp.ReuseRate()
			rec.C = dp.MeasuredC
			rec.O = dp.OverheadDep
			rec.Gain = dp.Gain()
			rec.TotalGain = dp.Gain() * float64(dp.N)
			rec.Table = s.Name
			rec.KeyBytes = dp.DepKeyBytes()
			rec.DepKeyWidth = dp.DepKeyBytes()
			rec.FullKeyWidth = dp.FullKeyBytes
			if dp.Accepted {
				rec.Accepted = true
				rec.Reason = "accepted: dep keys: R_dep*C - O_dep > 0 (formula 3 under DepOverhead)"
			} else {
				rec.Reason = "dep keys: R_dep*C - O_dep <= 0 (formula 3 under DepOverhead)"
			}
			ledger = append(ledger, rec)
			continue
		}

		switch {
		case rec.Accepted:
			rec.Reason = "accepted: R*C - O > 0 (formula 3)"
			if rec.Nesting != "" {
				rec.Reason = "accepted: " + rec.Nesting
			}
		case !rec.Eligible:
			rec.Reason = "structural: " + s.Reason
		case !rec.PassedOC:
			rec.Reason = "pre-filter: O/C >= 1 (formula 3 cannot hold)"
		case !rec.PassedFreq:
			rec.Reason = fmt.Sprintf("frequency filter: fewer than %d instances in the profiling run", o.MinFreq)
		case !rec.Profiled:
			rec.Reason = "not profiled (absent from the profile snapshot)"
		case rec.Gain <= 0:
			rec.Reason = "unprofitable: R*C - O <= 0 (formula 3)"
		case overlapDropped[s.Name]:
			rec.Reason = "rejected: overlaps a higher-gain selected segment"
		case rec.Nesting != "":
			rec.Reason = rec.Nesting
		default:
			rec.Reason = "rejected: lost nesting resolution (formula 4)"
		}
		ledger = append(ledger, rec)
	}

	if obs.On() {
		mRuns.Inc()
		mSegsAnalyzed.Add(int64(len(segs)))
		mSegsProfiled.Add(int64(rep.SegmentsProfiled))
		for _, rec := range ledger {
			if rec.Accepted {
				mAccepted.Inc()
			} else {
				mRejected.Inc()
			}
		}
	}
	return ledger
}

// nestingExplanations maps nesting.Explain's per-candidate accounts to
// segment names.
func nestingExplanations(g *nesting.Graph, selected []*nesting.Candidate) map[string]string {
	out := map[string]string{}
	for c, why := range g.Explain(selected) {
		out[c.Seg.Name] = why
	}
	return out
}

// LedgerJSON serializes the decision ledger as indented JSON.
func (r *Report) LedgerJSON() ([]byte, error) {
	return json.MarshalIndent(r.Ledger, "", "  ")
}

// ParseLedger reads a ledger serialized by LedgerJSON.
func ParseLedger(data []byte) ([]DecisionRecord, error) {
	var out []DecisionRecord
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("decision ledger: %w", err)
	}
	return out, nil
}
