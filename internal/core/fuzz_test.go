package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// Pipeline differential fuzzer: random programs with memoizable kernels go
// through the complete scheme; the transformed program must always produce
// the original result and output, whatever the profiler decided.

// genKernelProgram builds a program with 1-3 pure kernels of random body
// shape and a driver whose input stream has tunable value locality.
func genKernelProgram(rng *rand.Rand) string {
	var sb strings.Builder
	nKernels := 1 + rng.Intn(3)
	sb.WriteString("int tab[16] = {3,1,4,1,5,9,2,6,5,3,5,8,9,7,9,3};\n")

	for k := 0; k < nKernels; k++ {
		fmt.Fprintf(&sb, "int kern%d(int x) {\n", k)
		sb.WriteString("    int r = 0;\n")
		switch rng.Intn(4) {
		case 0: // table-walk kernel
			trips := 4 + rng.Intn(12)
			fmt.Fprintf(&sb, "    int i;\n    for (i = 0; i < %d; i++)\n", trips)
			fmt.Fprintf(&sb, "        r += tab[i & 15] * ((x >> (i & 3)) + %d);\n", rng.Intn(5))
		case 1: // branchy kernel
			fmt.Fprintf(&sb, "    if (x & %d) { r = x * %d; } else { r = x ^ %d; }\n",
				1+rng.Intn(7), 2+rng.Intn(9), rng.Intn(255))
			fmt.Fprintf(&sb, "    int j;\n    for (j = 0; j < %d; j++)\n        r = (r * 3 + j) & 1048575;\n",
				3+rng.Intn(10))
		case 2: // nested-loop kernel
			fmt.Fprintf(&sb, "    int i;\n    for (i = 0; i < %d; i++) {\n", 2+rng.Intn(5))
			fmt.Fprintf(&sb, "        int j;\n        for (j = 0; j < %d; j++)\n", 2+rng.Intn(5))
			sb.WriteString("            r += (x + i) * (j + 1);\n    }\n")
		default: // switch-based kernel (exercises the desugared form)
			sb.WriteString("    switch (x & 3) {\n")
			for c := 0; c < 3; c++ {
				fmt.Fprintf(&sb, "    case %d:\n        r = x * %d + %d;\n        break;\n",
					c, 2+rng.Intn(7), rng.Intn(100))
			}
			fmt.Fprintf(&sb, "    default:\n        r = x ^ %d;\n    }\n", rng.Intn(255))
			fmt.Fprintf(&sb, "    int j;\n    for (j = 0; j < %d; j++)\n        r = (r * 5 + j) & 1048575;\n",
				3+rng.Intn(8))
		}
		sb.WriteString("    return r;\n}\n\n")
	}

	mask := []int{7, 15, 31, 255, 1023}[rng.Intn(5)] // controls value locality
	sb.WriteString("int main(int seed, int n) {\n")
	sb.WriteString("    int s = 0;\n    int x = seed;\n    int v;\n")
	sb.WriteString("    for (v = 0; v < n; v++) {\n")
	fmt.Fprintf(&sb, "        x = (x * 1103515245 + 12345) & %d;\n", mask)
	for k := 0; k < nKernels; k++ {
		fmt.Fprintf(&sb, "        s = (s + kern%d(x)) & 16777215;\n", k)
	}
	sb.WriteString("    }\n    print_int(s);\n    return s & 255;\n}\n")
	return sb.String()
}

func TestFuzzPipelinePreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(1612942)) // quan's call count in the paper
	iters := 60
	if testing.Short() {
		iters = 15
	}
	for i := 0; i < iters; i++ {
		src := genKernelProgram(rng)
		rep, err := Run(Options{
			Name:     fmt.Sprintf("fuzz%d.c", i),
			Source:   src,
			MainArgs: []int64{int64(rng.Intn(1000) + 1), int64(500 + rng.Intn(1500))},
		})
		if err != nil {
			t.Fatalf("iter %d: %v\n%s", i, err, src)
		}
		if rep.Baseline.Ret != rep.Reuse.Ret || rep.Baseline.Output != rep.Reuse.Output {
			for _, d := range rep.Decisions {
				if d.Selected {
					t.Logf("selected: %s", d.Name)
				}
			}
			t.Fatalf("iter %d: pipeline changed semantics: ret %d->%d\n%s\n--- transformed ---\n%s",
				i, rep.Baseline.Ret, rep.Reuse.Ret, src, rep.TransformedSource)
		}
		// The transformed program must never be slower than baseline plus
		// a small tolerance (the scheme only transforms on predicted gain,
		// but hash behavior on the real run may differ slightly from the
		// training run — here they are the same input, so regression means
		// the cost model and the VM disagree).
		if rep.SegmentsTransformed > 0 && float64(rep.Reuse.Cycles) > 1.02*float64(rep.Baseline.Cycles) {
			t.Fatalf("iter %d: transformed run regressed: %d -> %d cycles\n%s",
				i, rep.Baseline.Cycles, rep.Reuse.Cycles, src)
		}
	}
}

func TestFuzzPipelineO3(t *testing.T) {
	rng := rand.New(rand.NewSource(8884))
	iters := 20
	if testing.Short() {
		iters = 5
	}
	for i := 0; i < iters; i++ {
		src := genKernelProgram(rng)
		args := []int64{int64(rng.Intn(1000) + 1), 800}
		r0, err := Run(Options{Name: "f.c", Source: src, MainArgs: args, OptLevel: "O0"})
		if err != nil {
			t.Fatalf("iter %d O0: %v\n%s", i, err, src)
		}
		r3, err := Run(Options{Name: "f.c", Source: src, MainArgs: args, OptLevel: "O3"})
		if err != nil {
			t.Fatalf("iter %d O3: %v\n%s", i, err, src)
		}
		if r0.Baseline.Ret != r3.Baseline.Ret || r0.Reuse.Output != r3.Reuse.Output {
			t.Fatalf("iter %d: O-levels disagree\n%s", i, src)
		}
	}
}
