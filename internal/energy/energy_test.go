package energy

import (
	"math"
	"testing"

	"compreuse/internal/cost"
	"compreuse/internal/interp"
	"compreuse/internal/minic"
)

func runSrc(t *testing.T, src string) *interp.Result {
	t.Helper()
	prog, err := minic.Parse("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := minic.Check(prog); err != nil {
		t.Fatal(err)
	}
	res, err := interp.Run(prog, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestAveragePowerInIPAQRange(t *testing.T) {
	res := runSrc(t, `
int main(void) {
    int s = 0;
    int i;
    for (i = 0; i < 100000; i++)
        s += i * 3 + (s >> 2);
    return s & 255;
}`)
	m := Measure(res, Default())
	// The paper's programs imply ~2.3-2.5 W average system power.
	if m.AvgWatts < 2.0 || m.AvgWatts > 3.2 {
		t.Fatalf("avg power %.2f W outside plausible iPAQ range", m.AvgWatts)
	}
	if m.AvgCurrentA <= 0 || math.Abs(m.AvgCurrentA*5-m.AvgWatts) > 1e-9 {
		t.Fatalf("current inconsistent: %v", m)
	}
}

func TestEnergyScalesWithTime(t *testing.T) {
	short := runSrc(t, `int main(void) { int s = 0; int i; for (i = 0; i < 1000; i++) s += i; return s & 7; }`)
	long := runSrc(t, `int main(void) { int s = 0; int i; for (i = 0; i < 100000; i++) s += i; return s & 7; }`)
	p := Default()
	ms, ml := Measure(short, p), Measure(long, p)
	if ml.Joules <= ms.Joules*50 {
		t.Fatalf("energy did not scale with work: %g vs %g", ms.Joules, ml.Joules)
	}
}

func TestFloatWorkDrawsMorePowerPerOp(t *testing.T) {
	intRes := runSrc(t, `int main(void) { int s = 0; int i; for (i = 0; i < 10000; i++) s += i * 3; return 0; }`)
	fltRes := runSrc(t, `int main(void) { float s = 0.0; int i; for (i = 0; i < 10000; i++) s += (float)i * 3.0; return 0; }`)
	p := Default()
	mi, mf := Measure(intRes, p), Measure(fltRes, p)
	if mf.Joules <= mi.Joules {
		t.Fatal("soft-float work must cost more energy")
	}
}

func TestSaving(t *testing.T) {
	orig := Measurement{Joules: 10.25}
	reuse := Measurement{Joules: 6.60}
	s := Saving(orig, reuse)
	// The paper's G721_encode O0 row: 35.6%.
	if math.Abs(s-0.356) > 0.001 {
		t.Fatalf("saving = %v, want ~0.356", s)
	}
	if Saving(Measurement{}, reuse) != 0 {
		t.Fatal("zero-energy original must not divide by zero")
	}
}

func TestEnergySavingTracksTimeSaving(t *testing.T) {
	// Two runs of the same program at different op counts: energy ratio
	// should be within a few points of the time ratio (paper's tables).
	a := runSrc(t, `int main(void) { int s = 0; int i; for (i = 0; i < 50000; i++) s += i * 3; return 0; }`)
	b := runSrc(t, `int main(void) { int s = 0; int i; for (i = 0; i < 25000; i++) s += i * 3; return 0; }`)
	p := Default()
	ma, mb := Measure(a, p), Measure(b, p)
	timeSave := 1 - mb.Seconds/ma.Seconds
	energySave := Saving(ma, mb)
	if math.Abs(timeSave-energySave) > 0.05 {
		t.Fatalf("energy saving %.3f too far from time saving %.3f", energySave, timeSave)
	}
}

func TestO3RunUsesLessEnergy(t *testing.T) {
	src := `int main(void) { int s = 0; int i; for (i = 0; i < 20000; i++) s += i * 5 + 7; return s & 63; }`
	prog1, _ := minic.Parse("a.c", src)
	if err := minic.Check(prog1); err != nil {
		t.Fatal(err)
	}
	r0, err := interp.Run(prog1, interp.Options{Model: cost.O0()})
	if err != nil {
		t.Fatal(err)
	}
	prog2, _ := minic.Parse("b.c", src)
	if err := minic.Check(prog2); err != nil {
		t.Fatal(err)
	}
	r3, err := interp.Run(prog2, interp.Options{Model: cost.O3()})
	if err != nil {
		t.Fatal(err)
	}
	p := Default()
	if Measure(r3, p).Joules >= Measure(r0, p).Joules {
		t.Fatal("O3 must consume less energy than O0")
	}
}
