// Package energy models the whole-system energy consumption of the
// paper's measurement rig (§3.2): a Compaq iPAQ 3650 powered from a steady
// external 5 V supply, with an HP 3458a multimeter sampling the drawn
// current for the duration of the run:
//
//	energy = voltage · current_drawn · elapsed_time
//
// Our stand-in integrates a base system power over the modeled elapsed
// time and adds per-operation marginal energies by instruction class.
// Parameters are calibrated so that the average power lands near the
// 2.3–2.5 W the paper's numbers imply (e.g. G721_encode: 10.25 J over
// 4.40 s), with memory-heavy work drawing slightly more than ALU work —
// which is what makes energy savings track, but not exactly equal, the
// time savings (paper Tables 8 and 9 vs 6 and 7).
package energy

import (
	"compreuse/internal/interp"
)

// Params are the electrical model parameters.
type Params struct {
	// Voltage is the supply voltage (the paper fixes 5 V).
	Voltage float64
	// BaseWatts is the static system draw (display, RAM refresh, core
	// leakage) consumed for the whole elapsed time.
	BaseWatts float64
	// Marginal energy per executed operation, in nanojoules.
	IntNJ    float64
	MulNJ    float64
	DivNJ    float64
	FloatNJ  float64
	MemNJ    float64
	BranchNJ float64
	CallNJ   float64
	// HashNJPerCycle is the marginal energy per hashing-overhead cycle
	// (table probes are memory-heavy).
	HashNJPerCycle float64
}

// Default returns the calibrated iPAQ-like parameters.
func Default() Params {
	return Params{
		Voltage:        5.0,
		BaseWatts:      2.10,
		IntNJ:          0.9,
		MulNJ:          1.8,
		DivNJ:          6.0,
		FloatNJ:        40.0, // software float: long multi-instruction sequences
		MemNJ:          2.2,
		BranchNJ:       1.1,
		CallNJ:         4.0,
		HashNJPerCycle: 1.3,
	}
}

// Measurement is the simulated multimeter reading for one run.
type Measurement struct {
	// Joules is the total energy.
	Joules float64
	// Seconds is the elapsed time the measurement integrated over.
	Seconds float64
	// AvgWatts is Joules / Seconds.
	AvgWatts float64
	// AvgCurrentA is the average current at the supply voltage.
	AvgCurrentA float64
}

// Measure computes the energy of a completed VM run.
func Measure(res *interp.Result, p Params) Measurement {
	t := res.Seconds()
	dynamic := (float64(res.Ops.IntOps)*p.IntNJ +
		float64(res.Ops.MulOps)*p.MulNJ +
		float64(res.Ops.DivOps)*p.DivNJ +
		float64(res.Ops.FloatOps)*p.FloatNJ +
		float64(res.Ops.MemOps)*p.MemNJ +
		float64(res.Ops.Branches)*p.BranchNJ +
		float64(res.Ops.Calls)*p.CallNJ +
		float64(res.Ops.HashOps)*p.HashNJPerCycle) * 1e-9
	j := p.BaseWatts*t + dynamic
	m := Measurement{Joules: j, Seconds: t}
	if t > 0 {
		m.AvgWatts = j / t
		m.AvgCurrentA = m.AvgWatts / p.Voltage
	}
	return m
}

// Saving returns the fractional energy saving of reuse vs the original,
// e.g. 0.356 for the paper's G721_encode at O0.
func Saving(orig, reuse Measurement) float64 {
	if orig.Joules == 0 {
		return 0
	}
	return 1 - reuse.Joules/orig.Joules
}
