// Package cfg builds control-flow graphs over MiniC functions and
// statement subtrees — the paper's "control flow graph construction"
// module (§3.1). Graphs are at atomic-statement granularity: each simple
// statement and each loop/branch condition is one node; compound
// statements contribute their parts.
//
// BuildStmt builds the sub-CFG of a candidate code segment (a loop body,
// an IF branch, or a function body): control leaving the segment —
// returns, and breaks/continues whose target encloses the segment — flows
// to the graph's Exit, which is exactly the boundary the segment-level
// data-flow analyses (upward-exposed reads, liveness) need.
package cfg

import (
	"fmt"
	"strings"

	"compreuse/internal/minic"
)

// NodeKind classifies CFG nodes.
type NodeKind int

// Node kinds.
const (
	NEntry NodeKind = iota
	NExit
	NStmt // an atomic statement (decl, expr, return, reuse region)
	NCond // a branch/loop condition expression
	NJoin // a synthetic no-op join point
	NPost // a for-loop post expression (the latch)
)

// Node is one CFG vertex.
type Node struct {
	ID   int
	Kind NodeKind
	Stmt minic.Stmt // set for NStmt
	Expr minic.Expr // set for NCond, and for NStmt the stmt's expression
	// Owner is the AST statement whose construction created this node
	// (the statement itself for NStmt; the controlling construct for
	// NCond, NJoin and NPost; nil for Entry/Exit). Segment analyses use it
	// to decide whether a node lies inside a statement subtree.
	Owner minic.Stmt
	Succs []*Node
	Preds []*Node
}

func (n *Node) String() string {
	switch n.Kind {
	case NEntry:
		return "entry"
	case NExit:
		return "exit"
	case NCond:
		return "cond " + minic.PrintExpr(n.Expr)
	case NJoin:
		return "(join)"
	case NPost:
		return "post " + minic.PrintExpr(n.Expr)
	default:
		return strings.TrimRight(minic.PrintStmt(n.Stmt), "\n")
	}
}

// Graph is a CFG with unique Entry and Exit.
type Graph struct {
	Entry *Node
	Exit  *Node
	Nodes []*Node
}

// builder threads loop targets during construction.
type builder struct {
	g *Graph
	// owner is the statement currently being lowered.
	owner minic.Stmt
	// breakTo / continueTo are the current loop exit/latch targets; nil
	// means the construct is outside the graph, so the edge goes to Exit.
	breakTo    []*Node
	continueTo []*Node
}

func (b *builder) newNode(k NodeKind) *Node {
	n := &Node{ID: len(b.g.Nodes), Kind: k, Owner: b.owner}
	b.g.Nodes = append(b.g.Nodes, n)
	return n
}

func edge(from, to *Node) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// Build constructs the CFG of a function body.
func Build(fn *minic.FuncDecl) *Graph {
	return BuildStmt(fn.Body)
}

// BuildStmt constructs the CFG of an arbitrary statement (a code segment).
func BuildStmt(body minic.Stmt) *Graph {
	g := &Graph{}
	b := &builder{g: g}
	g.Entry = b.newNode(NEntry)
	g.Exit = b.newNode(NExit)
	last := b.stmt(body, g.Entry)
	edge(last, g.Exit)
	return g
}

// stmt wires s after prev and returns the node control falls out of
// (nil if control never falls through, e.g. after return).
func (b *builder) stmt(s minic.Stmt, prev *Node) *Node {
	if s == nil {
		return prev
	}
	saved := b.owner
	b.owner = s
	defer func() { b.owner = saved }()
	switch s := s.(type) {
	case *minic.Block:
		// Statements after a jump are built detached (prev == nil drops
		// incoming edges) so analyses still see their uses.
		cur := prev
		for _, st := range s.Stmts {
			cur = b.stmt(st, cur)
		}
		return cur

	case *minic.DeclStmt, *minic.ExprStmt, *minic.EmptyStmt, *minic.ReuseRegion:
		n := b.newNode(NStmt)
		n.Stmt = s
		edge(prev, n)
		return n

	case *minic.IfStmt:
		cond := b.newNode(NCond)
		cond.Expr = s.Cond
		edge(prev, cond)
		thenEnd := b.stmt(s.Then, cond)
		var elseEnd *Node
		if s.Else != nil {
			elseEnd = b.stmt(s.Else, cond)
		} else {
			elseEnd = cond
		}
		// Join node: synthesize only if both arms fall through to avoid
		// spurious nodes; use an empty statement node as the join.
		switch {
		case thenEnd == nil && elseEnd == nil:
			return nil
		case thenEnd == nil:
			return elseEnd
		case elseEnd == nil:
			return thenEnd
		default:
			join := b.newNode(NJoin)
			edge(thenEnd, join)
			edge(elseEnd, join)
			return join
		}

	case *minic.WhileStmt:
		cond := b.newNode(NCond)
		cond.Expr = s.Cond
		after := b.newNode(NJoin)
		b.breakTo = append(b.breakTo, after)
		b.continueTo = append(b.continueTo, cond)
		if s.DoWhile {
			// prev -> body -> cond -> body/after
			bodyEntry := b.newNode(NJoin)
			edge(prev, bodyEntry)
			bodyEnd := b.stmt(s.Body, bodyEntry)
			edge(bodyEnd, cond)
			edge(cond, bodyEntry)
			edge(cond, after)
		} else {
			edge(prev, cond)
			bodyEnd := b.stmt(s.Body, cond)
			edge(bodyEnd, cond)
			edge(cond, after)
		}
		b.breakTo = b.breakTo[:len(b.breakTo)-1]
		b.continueTo = b.continueTo[:len(b.continueTo)-1]
		return after

	case *minic.ForStmt:
		cur := prev
		if s.Init != nil {
			cur = b.stmt(s.Init, cur)
		}
		var cond *Node
		if s.Cond != nil {
			cond = b.newNode(NCond)
			cond.Expr = s.Cond
		} else {
			cond = b.newNode(NJoin)
		}
		edge(cur, cond)
		after := b.newNode(NJoin)
		var latch *Node
		if s.Post != nil {
			latch = b.newNode(NPost)
			latch.Expr = s.Post
		} else {
			latch = cond
		}
		b.breakTo = append(b.breakTo, after)
		b.continueTo = append(b.continueTo, latch)
		bodyEnd := b.stmt(s.Body, cond)
		edge(bodyEnd, latch)
		if latch != cond {
			edge(latch, cond)
		}
		if s.Cond != nil {
			edge(cond, after)
		}
		b.breakTo = b.breakTo[:len(b.breakTo)-1]
		b.continueTo = b.continueTo[:len(b.continueTo)-1]
		return after

	case *minic.BreakStmt:
		n := b.newNode(NStmt)
		n.Stmt = s
		edge(prev, n)
		if len(b.breakTo) > 0 {
			edge(n, b.breakTo[len(b.breakTo)-1])
		} else {
			edge(n, b.g.Exit) // break leaves the segment
		}
		return nil

	case *minic.ContinueStmt:
		n := b.newNode(NStmt)
		n.Stmt = s
		edge(prev, n)
		if len(b.continueTo) > 0 {
			edge(n, b.continueTo[len(b.continueTo)-1])
		} else {
			edge(n, b.g.Exit)
		}
		return nil

	case *minic.ReturnStmt:
		n := b.newNode(NStmt)
		n.Stmt = s
		edge(prev, n)
		edge(n, b.g.Exit)
		return nil
	}
	panic(fmt.Sprintf("cfg: unhandled statement %T", s))
}

// ReversePostorder returns the nodes in reverse postorder from Entry
// (a good iteration order for forward data-flow problems).
func (g *Graph) ReversePostorder() []*Node {
	seen := make([]bool, len(g.Nodes))
	var order []*Node
	var visit func(n *Node)
	visit = func(n *Node) {
		seen[n.ID] = true
		for _, s := range n.Succs {
			if !seen[s.ID] {
				visit(s)
			}
		}
		order = append(order, n)
	}
	visit(g.Entry)
	// Include unreachable nodes at the end for analysis completeness.
	for _, n := range g.Nodes {
		if !seen[n.ID] {
			order = append(order, n)
		}
	}
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// Dot renders the graph in Graphviz format (for debugging and docs).
func (g *Graph) Dot() string {
	var sb strings.Builder
	sb.WriteString("digraph cfg {\n")
	for _, n := range g.Nodes {
		fmt.Fprintf(&sb, "  n%d [label=%q];\n", n.ID, n.String())
	}
	for _, n := range g.Nodes {
		for _, s := range n.Succs {
			fmt.Fprintf(&sb, "  n%d -> n%d;\n", n.ID, s.ID)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
