package cfg

import (
	"strings"
	"testing"

	"compreuse/internal/minic"
)

func body(t *testing.T, src string) minic.Stmt {
	t.Helper()
	prog, err := minic.Parse("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := minic.Check(prog); err != nil {
		t.Fatal(err)
	}
	return prog.Funcs[len(prog.Funcs)-1].Body
}

// reaches reports whether to is reachable from from.
func reaches(from, to *Node) bool {
	seen := map[*Node]bool{}
	var visit func(n *Node) bool
	visit = func(n *Node) bool {
		if n == to {
			return true
		}
		if seen[n] {
			return false
		}
		seen[n] = true
		for _, s := range n.Succs {
			if visit(s) {
				return true
			}
		}
		return false
	}
	return visit(from)
}

func TestStraightLine(t *testing.T) {
	g := BuildStmt(body(t, `int f(void) { int a = 1; a = a + 1; return a; }`))
	if !reaches(g.Entry, g.Exit) {
		t.Fatal("exit unreachable")
	}
	// entry -> decl -> expr -> return -> exit: every interior node has one
	// successor.
	for _, n := range g.Nodes {
		if n.Kind == NStmt && len(n.Succs) != 1 {
			t.Errorf("straight-line node %s has %d succs", n, len(n.Succs))
		}
	}
}

func TestIfBothArms(t *testing.T) {
	g := BuildStmt(body(t, `int f(int x) { int r; if (x) r = 1; else r = 2; return r; }`))
	var cond *Node
	for _, n := range g.Nodes {
		if n.Kind == NCond {
			cond = n
		}
	}
	if cond == nil || len(cond.Succs) != 2 {
		t.Fatalf("if condition must have 2 successors: %v", cond)
	}
}

func TestIfNoElseFallthrough(t *testing.T) {
	g := BuildStmt(body(t, `int f(int x) { if (x) x = 1; return x; }`))
	var cond *Node
	for _, n := range g.Nodes {
		if n.Kind == NCond {
			cond = n
		}
	}
	if len(cond.Succs) != 2 {
		t.Fatalf("if-no-else cond succs = %d, want 2 (then, join)", len(cond.Succs))
	}
}

func TestWhileBackEdge(t *testing.T) {
	g := BuildStmt(body(t, `int f(int n) { while (n > 0) n--; return n; }`))
	var cond *Node
	for _, n := range g.Nodes {
		if n.Kind == NCond {
			cond = n
		}
	}
	// The body node must loop back to cond.
	back := false
	for _, n := range g.Nodes {
		if n.Kind == NStmt {
			for _, s := range n.Succs {
				if s == cond {
					back = true
				}
			}
		}
	}
	if !back {
		t.Fatal("missing loop back edge")
	}
}

func TestForWithBreakContinue(t *testing.T) {
	g := BuildStmt(body(t, `
int f(int n) {
    int s = 0;
    int i;
    for (i = 0; i < n; i++) {
        if (i == 3) continue;
        if (i == 7) break;
        s += i;
    }
    return s;
}`))
	if !reaches(g.Entry, g.Exit) {
		t.Fatal("exit unreachable")
	}
	// The latch (post node) must exist and feed the condition.
	var post *Node
	for _, n := range g.Nodes {
		if n.Kind == NPost {
			post = n
		}
	}
	if post == nil {
		t.Fatal("no post/latch node")
	}
	if len(post.Succs) != 1 || post.Succs[0].Kind != NCond {
		t.Fatal("latch must flow to the condition")
	}
	// continue must reach the latch without passing the rest of the body.
	var contNode *Node
	for _, n := range g.Nodes {
		if n.Kind == NStmt {
			if _, ok := n.Stmt.(*minic.ContinueStmt); ok {
				contNode = n
			}
		}
	}
	if contNode == nil || contNode.Succs[0] != post {
		t.Fatal("continue must jump to latch")
	}
}

func TestSegmentBreakLeavesGraph(t *testing.T) {
	// Building a loop *body* as a segment: its break targets an enclosing
	// loop outside the segment, so it must flow to Exit.
	prog, err := minic.Parse("t.c", `
int f(int n) {
    while (n > 0) {
        n--;
        if (n == 1) break;
    }
    return n;
}`)
	if err != nil {
		t.Fatal(err)
	}
	if err := minic.Check(prog); err != nil {
		t.Fatal(err)
	}
	var loop *minic.WhileStmt
	minic.InspectStmts(prog.Func("f").Body, func(s minic.Stmt) bool {
		if w, ok := s.(*minic.WhileStmt); ok {
			loop = w
		}
		return true
	})
	g := BuildStmt(loop.Body)
	var br *Node
	for _, n := range g.Nodes {
		if n.Kind == NStmt {
			if _, ok := n.Stmt.(*minic.BreakStmt); ok {
				br = n
			}
		}
	}
	if br == nil {
		t.Fatal("no break node")
	}
	if len(br.Succs) != 1 || br.Succs[0] != g.Exit {
		t.Fatal("segment-level break must flow to segment exit")
	}
}

func TestDoWhileExecutesBodyFirst(t *testing.T) {
	g := BuildStmt(body(t, `int f(int n) { do { n--; } while (n > 0); return n; }`))
	// Entry's successor chain must hit a body statement before any cond.
	n := g.Entry
	for len(n.Succs) == 1 && n.Succs[0].Kind == NJoin {
		n = n.Succs[0]
	}
	if len(n.Succs) == 0 || n.Succs[0].Kind == NCond {
		t.Fatalf("do-while must enter the body first, entered %v", n.Succs[0])
	}
}

func TestUnreachableCodeStillHasNodes(t *testing.T) {
	g := BuildStmt(body(t, `int f(void) { return 1; int x = 2; }`))
	found := false
	for _, n := range g.Nodes {
		if n.Kind == NStmt {
			if _, ok := n.Stmt.(*minic.DeclStmt); ok {
				found = true
				if len(n.Preds) != 0 {
					t.Fatal("unreachable node must have no predecessors")
				}
			}
		}
	}
	if !found {
		t.Fatal("unreachable statement missing from graph")
	}
}

func TestReversePostorderStartsAtEntry(t *testing.T) {
	g := BuildStmt(body(t, `int f(int n) { while (n) n--; return n; }`))
	order := g.ReversePostorder()
	if order[0] != g.Entry {
		t.Fatal("RPO must start at entry")
	}
	seen := map[*Node]bool{}
	for _, n := range order {
		if seen[n] {
			t.Fatal("duplicate node in RPO")
		}
		seen[n] = true
	}
	if len(order) != len(g.Nodes) {
		t.Fatalf("RPO covers %d of %d nodes", len(order), len(g.Nodes))
	}
}

func TestDotOutput(t *testing.T) {
	g := BuildStmt(body(t, `int f(int x) { if (x) x = 1; return x; }`))
	dot := g.Dot()
	if !strings.Contains(dot, "digraph") || !strings.Contains(dot, "->") {
		t.Fatalf("dot output malformed:\n%s", dot)
	}
}

func TestInfiniteForNoExitEdge(t *testing.T) {
	g := BuildStmt(body(t, `int f(void) { for (;;) {} return 0; }`))
	// The loop header must not flow to the after node; the return after
	// the loop is unreachable.
	var ret *Node
	for _, n := range g.Nodes {
		if n.Kind == NStmt {
			if _, ok := n.Stmt.(*minic.ReturnStmt); ok {
				ret = n
			}
		}
	}
	if ret == nil {
		t.Fatal("return node missing")
	}
	if reaches(g.Entry, ret) {
		t.Fatal("code after for(;;) must be unreachable")
	}
}
