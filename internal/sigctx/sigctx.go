// Package sigctx is the shared graceful-shutdown plumbing of the
// long-running binaries (cmd/crcserve and crcbench serve): a context
// that cancels on SIGINT/SIGTERM, and a helper that drains an
// http.Server against it. Keeping it in one place means every daemon
// in the repo drains the same way instead of re-growing ad-hoc signal
// handlers.
package sigctx

import (
	"context"
	"errors"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// Notify returns a child of parent that is canceled on SIGINT or
// SIGTERM (or when parent cancels). The returned stop function releases
// the signal registration; call it before exiting so a second signal
// falls back to the default (kill) behavior instead of being swallowed.
func Notify(parent context.Context) (context.Context, context.CancelFunc) {
	return signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
}

// ServeHTTP runs srv.Serve(ln) until ctx cancels, then drains it with
// srv.Shutdown bounded by grace. It returns nil after a clean drain and
// the serve or shutdown error otherwise.
func ServeHTTP(ctx context.Context, srv *http.Server, ln net.Listener, grace time.Duration) error {
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	shCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	err := srv.Shutdown(shCtx)
	// Serve's return after Shutdown is the expected ErrServerClosed.
	if serveErr := <-errCh; !errors.Is(serveErr, http.ErrServerClosed) {
		return serveErr
	}
	return err
}
