package sigctx

import (
	"context"
	"io"
	"net"
	"net/http"
	"os"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

// TestNotify delivers a real SIGTERM to the test process and expects
// the context to cancel instead of the process dying.
func TestNotify(t *testing.T) {
	ctx, stop := Notify(context.Background())
	defer stop()
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("SIGTERM did not cancel the context")
	}
}

// TestServeHTTPDrain cancels the context while a request is in flight
// and expects that request to complete and ServeHTTP to return nil.
func TestServeHTTPDrain(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	var served atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		close(entered)
		time.Sleep(100 * time.Millisecond) // keep the request in flight across the cancel
		served.Add(1)
		w.WriteHeader(http.StatusOK)
	})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- ServeHTTP(ctx, &http.Server{Handler: h}, ln, 2*time.Second) }()

	respErr := make(chan error, 1)
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		respErr <- err
	}()

	<-entered
	cancel()

	if err := <-respErr; err != nil {
		t.Fatalf("in-flight request dropped during drain: %v", err)
	}
	if n := served.Load(); n != 1 {
		t.Fatalf("handler completions = %d, want 1", n)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("ServeHTTP returned %v after drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeHTTP did not return after cancel")
	}
}
