package reused_test

import (
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"compreuse"
	"compreuse/internal/reused"
	"compreuse/internal/wire"
)

// rawConn is a frame-level client for driving exact MGET/MPUT shapes at
// the server — the high-level client decides for itself when to batch,
// so deterministic protocol coverage has to speak wire directly.
type rawConn struct {
	t  *testing.T
	nc net.Conn
	w  *wire.Writer
	r  *wire.Reader
}

func dialRaw(t *testing.T, addr string) *rawConn {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	return &rawConn{t: t, nc: nc, w: wire.NewWriter(nc), r: wire.NewReader(nc)}
}

// roundTrip writes req and returns the matching response.
func (c *rawConn) roundTrip(req *wire.Frame) *wire.Frame {
	c.t.Helper()
	if err := c.w.Write(req); err != nil {
		c.t.Fatalf("write %v: %v", req.Op, err)
	}
	var resp wire.Frame
	c.nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if err := c.r.Next(&resp); err != nil {
		c.t.Fatalf("read %v response: %v", req.Op, err)
	}
	if resp.Seq != req.Seq {
		c.t.Fatalf("%v response seq %d, want %d", req.Op, resp.Seq, req.Seq)
	}
	return &resp
}

// TestBatchWire drives the MGET/MPUT ops frame by frame: a batch record,
// a scatter-gather probe answering hits and misses by index, and the
// error shapes (empty batch, wrong arity fails the whole MPUT).
func TestBatchWire(t *testing.T) {
	_, addr := startServer(t, reused.Config{})
	c := dialRaw(t, addr)

	hello := c.roundTrip(&wire.Frame{Op: wire.OpHello, Seq: 1, Name: "batch",
		Vals: []uint64{0, 0, 2}})
	if hello.Flags&wire.FlagErr != 0 {
		t.Fatalf("hello failed: %s", hello.Name)
	}
	seg := hello.Seg

	// MPUT three results in one frame, each with its own measured C.
	mput := &wire.Frame{Op: wire.OpMPut, Seq: 2, Seg: seg}
	for i := 0; i < 3; i++ {
		mput.Items = append(mput.Items, wire.Item{
			Cost: uint64(time.Millisecond),
			Key:  key(i),
			Vals: []uint64{uint64(i), uint64(i * i)},
		})
	}
	if resp := c.roundTrip(mput); resp.Flags&wire.FlagErr != 0 {
		t.Fatalf("mput failed: %s", resp.Name)
	}

	// MGET four keys: three recorded above, one never seen.
	mget := &wire.Frame{Op: wire.OpMGet, Seq: 3, Seg: seg}
	for i := 0; i < 4; i++ {
		mget.Items = append(mget.Items, wire.Item{Key: key(i)})
	}
	resp := c.roundTrip(mget)
	if resp.Flags&wire.FlagErr != 0 {
		t.Fatalf("mget failed: %s", resp.Name)
	}
	if len(resp.Items) != 4 {
		t.Fatalf("mget returned %d items, want 4", len(resp.Items))
	}
	for i := 0; i < 3; i++ {
		it := resp.Items[i]
		if it.Flags&wire.FlagHit == 0 {
			t.Fatalf("item %d: miss, want hit", i)
		}
		if len(it.Vals) != 2 || it.Vals[0] != uint64(i) || it.Vals[1] != uint64(i*i) {
			t.Fatalf("item %d: vals %v, want [%d %d]", i, it.Vals, i, i*i)
		}
	}
	if it := resp.Items[3]; it.Flags&wire.FlagHit != 0 || len(it.Vals) != 0 {
		t.Fatalf("item 3: flags %x vals %v, want a bare miss", it.Flags, it.Vals)
	}

	// An empty batch is a protocol error, not a no-op.
	for _, op := range []wire.Op{wire.OpMGet, wire.OpMPut} {
		if resp := c.roundTrip(&wire.Frame{Op: op, Seq: 4, Seg: seg}); resp.Flags&wire.FlagErr == 0 {
			t.Errorf("empty %v batch accepted, want error", op)
		}
	}

	// One wrong-arity item fails the whole MPUT: the batch is a single
	// client decision, and nothing from it may be recorded.
	bad := &wire.Frame{Op: wire.OpMPut, Seq: 5, Seg: seg, Items: []wire.Item{
		{Key: key(100), Vals: []uint64{1, 2}},
		{Key: key(101), Vals: []uint64{1}}, // arity 1, segment wants 2
	}}
	if resp := c.roundTrip(bad); resp.Flags&wire.FlagErr == 0 {
		t.Fatal("wrong-arity mput accepted, want error")
	}
	probe := c.roundTrip(&wire.Frame{Op: wire.OpMGet, Seq: 6, Seg: seg,
		Items: []wire.Item{{Key: key(100)}}})
	if len(probe.Items) != 1 || probe.Items[0].Flags&wire.FlagHit != 0 {
		t.Error("item from a failed mput batch was recorded anyway")
	}

	// Unknown segment id.
	if resp := c.roundTrip(&wire.Frame{Op: wire.OpMGet, Seq: 7, Seg: seg + 99,
		Items: []wire.Item{{Key: key(0)}}}); resp.Flags&wire.FlagErr == 0 {
		t.Error("mget on unknown segment accepted, want error")
	}
}

// TestBatchedClientTraffic hammers one segment with concurrent Gets and
// Puts through a single connection, so the client's flight loops
// coalesce queued calls into MGET/MPUT frames, and checks every caller
// still sees exactly its own key's values. Run under -race this is also
// the aliasing test for the batch paths (response vals handed to
// waiters, request keys owned by blocked callers).
func TestBatchedClientTraffic(t *testing.T) {
	srv, addr := startServer(t, reused.Config{
		Governor: reused.GovernorConfig{Window: -1}, // keep every probe admitted
	})
	_ = srv

	cl := dial(t, addr, compreuse.ClientConfig{Conns: 1})
	seg, err := cl.Segment("batched", compreuse.SegmentConfig{OutWords: 2})
	if err != nil {
		t.Fatal(err)
	}

	const n = 128
	var wg sync.WaitGroup
	start := make(chan struct{})
	errs := make([]error, n)

	// Phase 1: n concurrent Puts on distinct keys. With one connection
	// and one shared flight loop, most of these leave as MPUT batches.
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			errs[i] = seg.Put(key(i), []uint64{uint64(i), uint64(i * 7)}, time.Millisecond)
		}(i)
	}
	close(start)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}

	// Phase 2: n concurrent Gets on the same distinct keys; every one
	// must hit and carry its own values, however the flights were cut.
	type got struct {
		vals   []uint64
		status compreuse.GetStatus
		err    error
	}
	results := make([]got, n)
	start = make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			g := &results[i]
			g.vals, g.status, g.err = seg.Get(key(i))
		}(i)
	}
	close(start)
	wg.Wait()
	for i, g := range results {
		if g.err != nil {
			t.Fatalf("get %d: %v", i, g.err)
		}
		if g.status != compreuse.Hit {
			t.Fatalf("get %d: status %v, want hit", i, g.status)
		}
		if len(g.vals) != 2 || g.vals[0] != uint64(i) || g.vals[1] != uint64(i*7) {
			t.Fatalf("get %d: vals %v, want [%d %d]", i, g.vals, i, i*7)
		}
	}

	st, err := seg.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != n || st.Distinct != n {
		t.Errorf("server saw %d records / %d distinct, want %d / %d",
			st.Records, st.Distinct, n, n)
	}
	if st.Hits != n {
		t.Errorf("server saw %d hits, want %d", st.Hits, n)
	}
}

// TestTieredMemoSingleflight is the satellite acceptance check:
// concurrent misses on the same key must collapse to ONE remote GET and
// ONE compute. The leader is parked inside its compute callback until
// every follower has entered Do, so the followers are provably waiting
// on the in-flight call, not racing it.
func TestTieredMemoSingleflight(t *testing.T) {
	_, addr := startServer(t, reused.Config{
		Governor: reused.GovernorConfig{Window: -1},
	})
	cl := dial(t, addr, compreuse.ClientConfig{Conns: 1})
	tm, err := compreuse.NewTieredMemo(cl, compreuse.TieredMemoConfig{Name: "sf"})
	if err != nil {
		t.Fatal(err)
	}

	const followers = 8
	k := []byte("the-one-key")
	var computes atomic.Int64
	leaderIn := make(chan struct{})
	release := make(chan struct{})

	results := make(chan uint64, followers+1)
	go func() {
		results <- tm.Do(k, func() uint64 {
			computes.Add(1)
			close(leaderIn) // remote GET (a miss) already happened
			<-release
			return 42
		})
	}()
	<-leaderIn

	// The leader is parked mid-compute; its singleflight entry stays
	// registered until it finishes, so every follower that enters Do now
	// lands on it.
	var wg sync.WaitGroup
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results <- tm.Do(k, func() uint64 {
				computes.Add(1)
				return 42
			})
		}()
	}
	// Wait until every follower has at least entered Do (Calls counts
	// first thing), then give them a beat to reach the singleflight wait
	// before releasing the leader.
	deadline := time.Now().Add(5 * time.Second)
	for tm.Stats().Calls < followers+1 {
		if time.Now().After(deadline) {
			t.Fatal("followers never entered Do")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()

	for i := 0; i < followers+1; i++ {
		if v := <-results; v != 42 {
			t.Fatalf("caller got %d, want 42", v)
		}
	}
	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	ts := tm.Stats()
	if ts.Computes != 1 {
		t.Fatalf("stats count %d computes, want 1: %+v", ts.Computes, ts)
	}
	if ts.L1Hits != followers {
		t.Errorf("stats count %d L1 hits, want %d (followers served from the in-flight call): %+v",
			ts.L1Hits, followers, ts)
	}
	rs, err := tm.RemoteStats()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Probes != 1 {
		t.Errorf("server saw %d probes, want exactly 1 remote GET: %+v", rs.Probes, rs)
	}

	// And afterwards the key is simply warm.
	if v := tm.Do(k, func() uint64 { t.Error("compute ran on a warm key"); return 0 }); v != 42 {
		t.Fatalf("warm Do got %d, want 42", v)
	}
}

// TestBatchAmortizesOverhead is the formula-3 economics check: the
// governor charges a batched probe only its 1/n share of the round
// trip, so an MGET batch reports a smaller overhead O than the same
// keys probed one frame at a time with the same claimed RTT.
func TestBatchAmortizesOverhead(t *testing.T) {
	// Window == n: the evaluation that folds measured O into the EWMA
	// runs exactly once per segment, right after its 16 probes. No PUT
	// ever reports a cost, so C stays 0 and the governor never flips to
	// BYPASS (it refuses to judge on a guess).
	_, addr := startServer(t, reused.Config{
		Governor: reused.GovernorConfig{Window: 16},
	})
	c := dialRaw(t, addr)

	const rtt = uint64(time.Millisecond)
	const n = 16

	overheadAfter := func(name string, batched bool) uint64 {
		hello := c.roundTrip(&wire.Frame{Op: wire.OpHello, Seq: 10, Name: name,
			Vals: []uint64{0, 0, 1}})
		if hello.Flags&wire.FlagErr != 0 {
			t.Fatalf("hello %s: %s", name, hello.Name)
		}
		seg := hello.Seg
		if batched {
			mget := &wire.Frame{Op: wire.OpMGet, Seq: 11, Seg: seg, Cost: rtt}
			for i := 0; i < n; i++ {
				mget.Items = append(mget.Items, wire.Item{Key: key(i)})
			}
			if resp := c.roundTrip(mget); resp.Flags&wire.FlagErr != 0 {
				t.Fatalf("mget: %s", resp.Name)
			}
		} else {
			for i := 0; i < n; i++ {
				f := &wire.Frame{Op: wire.OpGet, Seq: 12 + uint64(i), Seg: seg,
					Cost: rtt, Key: key(i)}
				if resp := c.roundTrip(f); resp.Flags&wire.FlagErr != 0 {
					t.Fatalf("get: %s", resp.Name)
				}
			}
		}
		stats := c.roundTrip(&wire.Frame{Op: wire.OpStats, Seq: 99, Seg: seg})
		if stats.Flags&wire.FlagErr != 0 {
			t.Fatalf("stats: %s", stats.Name)
		}
		return stats.Vals[wire.StatsO]
	}

	single := overheadAfter("o-single", false)
	batched := overheadAfter("o-batched", true)
	if single == 0 || batched == 0 {
		t.Fatalf("governor observed no overhead: single=%d batched=%d", single, batched)
	}
	// The single-frame probes each charge the full RTT; the batch
	// charges RTT/16 per probe. Demand at least a 4x gap to stay far
	// from scheduler noise in the probe-latency term.
	if batched*4 > single {
		t.Errorf("batched O %v not clearly below single-frame O %v",
			time.Duration(batched), time.Duration(single))
	}
}
