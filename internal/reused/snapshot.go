package reused

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"compreuse/internal/reusetab"
	"compreuse/internal/wire"
)

// Warm snapshots.
//
// A crcserve node's value is what it has learned: the reuse tables and
// the governor's R/C/O estimates. Both live only in memory, so a crash
// or deploy used to reset the node to cold — every distinct pattern
// re-computed fleet-wide, every admission re-probed from scratch. A
// snapshot serializes that learned state to a file so a restarted node
// answers its first GET warm.
//
// The format is the wire codec itself, reused as a dump encoding: a
// fixed magic ("crcsnap" + a format version byte), then ordinary
// length-prefixed wire frames —
//
//	HELLO  one per segment: Seg = the dumping server's segment id,
//	       Name, Vals = [entries, lru, outWords] (the table geometry)
//	STATS  one per segment: Vals = the segment's live STATS vector,
//	       exactly the OpStats response payload (counters, distinct,
//	       resident, bypass state, R·1e6, C ns, O ns)
//	MPUT   the segment's entries, batched up to MaxItems per frame
//	       (Items carry Key and Vals; Cost is unused)
//
// — until EOF. Restore replays the stream: HELLO re-creates each
// segment, MPUT items re-enter the table through the ordinary Record
// path, and the STATS vector is applied last so the restored counters
// and governor estimates report the pre-crash history rather than the
// replay. Reusing the wire codec buys the snapshot the same
// bounds-checked, fuzzed decoding path as network input: a truncated
// or corrupt snapshot errors out, it cannot panic the server. Bumping
// snapVersion invalidates old files explicitly instead of misreading
// them.

// snapMagic prefixes every snapshot file; the final byte is the format
// version.
var snapMagic = []byte{'c', 'r', 'c', 's', 'n', 'a', 'p', snapVersion}

const snapVersion = 1

// snapBatch is how many entries ride in one MPUT frame of the dump.
const snapBatch = 1024

// ErrBadSnapshot reports a file that is not a snapshot or carries an
// unsupported version.
var ErrBadSnapshot = errors.New("reused: not a crcserve snapshot (or unsupported version)")

// WriteSnapshot dumps every segment's geometry, statistics, governor
// state and resident entries to w. It runs against a live server:
// entries are copied out shard by shard (Sharded.Range), so probes
// stall for at most one shard's copy-out and the dump is
// shard-consistent, which is all a warm restart needs.
func (s *Server) WriteSnapshot(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 64<<10)
	if _, err := bw.Write(snapMagic); err != nil {
		return err
	}
	ww := wire.NewWriter(bw)

	s.mu.Lock()
	segs := append([]*segment(nil), s.segs...)
	s.mu.Unlock()

	entries := int64(0)
	for _, seg := range segs {
		cfg := seg.tab.Config()
		hello := &wire.Frame{Op: wire.OpHello, Seg: seg.id, Name: seg.name,
			Vals: []uint64{uint64(cfg.Entries), b2u(cfg.LRU), uint64(seg.outWords)}}
		if err := ww.Write(hello); err != nil {
			return err
		}
		stats := &wire.Frame{Op: wire.OpStats, Seg: seg.id, Vals: statsVals(seg, nil)}
		if err := ww.Write(stats); err != nil {
			return err
		}

		var werr error
		batch := &wire.Frame{Op: wire.OpMPut, Seg: seg.id,
			Items: make([]wire.Item, 0, snapBatch)}
		seg.tab.Range(0, func(key []byte, outs []uint64) bool {
			batch.Items = append(batch.Items, wire.Item{Key: key, Vals: outs})
			entries++
			if len(batch.Items) == snapBatch {
				werr = ww.Write(batch)
				batch.Items = batch.Items[:0]
			}
			return werr == nil
		})
		if werr != nil {
			return werr
		}
		if len(batch.Items) > 0 {
			if err := ww.Write(batch); err != nil {
				return err
			}
		}
	}
	mSnapshotEntries.Set(entries)
	return bw.Flush()
}

// ReadSnapshot restores a dump written by WriteSnapshot into s, which
// must not have any segments yet (restore is a startup activity, not a
// merge). It returns how many segments and entries came back warm.
func (s *Server) ReadSnapshot(r io.Reader) (segments, entries int, err error) {
	s.mu.Lock()
	empty := len(s.segs) == 0
	s.mu.Unlock()
	if !empty {
		return 0, 0, errors.New("reused: ReadSnapshot on a server with live segments")
	}

	br := bufio.NewReaderSize(r, 64<<10)
	magic := make([]byte, len(snapMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return 0, 0, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if string(magic) != string(snapMagic) {
		return 0, 0, ErrBadSnapshot
	}

	rd := wire.NewReader(br)
	defer rd.Release()
	byID := map[uint32]*segment{}
	// The STATS vectors apply after the replay: replaying entries
	// through Record advances the records/resident counters, and the
	// stored vector must win over the replay's bookkeeping.
	stats := map[*segment][]uint64{}
	var f wire.Frame
	for {
		err := rd.Next(&f)
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, 0, fmt.Errorf("reused: corrupt snapshot: %w", err)
		}
		switch f.Op {
		case wire.OpHello:
			var entriesCfg, lru, outWords uint64
			if len(f.Vals) > 0 {
				entriesCfg = f.Vals[0]
			}
			if len(f.Vals) > 1 {
				lru = f.Vals[1]
			}
			if len(f.Vals) > 2 {
				outWords = f.Vals[2]
			}
			seg, err := s.segmentFor(f.Name, int(entriesCfg), lru != 0, int(outWords))
			if err != nil {
				return 0, 0, fmt.Errorf("reused: snapshot segment %q: %w", f.Name, err)
			}
			byID[f.Seg] = seg
			segments++
		case wire.OpStats:
			seg, ok := byID[f.Seg]
			if !ok {
				return 0, 0, fmt.Errorf("reused: snapshot STATS for unknown segment %d", f.Seg)
			}
			if len(f.Vals) < wire.StatsLen {
				return 0, 0, fmt.Errorf("reused: snapshot STATS too short (%d vals)", len(f.Vals))
			}
			stats[seg] = append([]uint64(nil), f.Vals[:wire.StatsLen]...)
		case wire.OpMPut:
			seg, ok := byID[f.Seg]
			if !ok {
				return 0, 0, fmt.Errorf("reused: snapshot entries for unknown segment %d", f.Seg)
			}
			for i := range f.Items {
				it := &f.Items[i]
				if len(it.Vals) != seg.outWords {
					return 0, 0, fmt.Errorf("reused: snapshot entry arity %d, segment %q wants %d",
						len(it.Vals), seg.name, seg.outWords)
				}
				seg.tab.Record(0, it.Key, it.Vals)
				entries++
			}
		default:
			return 0, 0, fmt.Errorf("reused: unexpected %s frame in snapshot", f.Op)
		}
	}

	for seg, v := range stats {
		seg.tab.RestoreStats(0, reusetab.SegStats{
			Probes:  int64(v[wire.StatsProbes]),
			Hits:    int64(v[wire.StatsHits]),
			Misses:  int64(v[wire.StatsMisses]),
			Records: int64(v[wire.StatsRecords]),
		}, int64(v[wire.StatsDistinct]))
		seg.gov.restoreState(v[wire.StatsState] != 0,
			int64(v[wire.StatsR]), int64(v[wire.StatsC]), int64(v[wire.StatsO]),
			int64(v[wire.StatsBypassed]))
	}
	return segments, entries, nil
}

// SnapshotFile writes a snapshot atomically: the dump lands in a
// sibling temp file first and renames over path only when complete, so
// a crash mid-write can never leave a truncated snapshot where the
// next boot will read it.
func (s *Server) SnapshotFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := s.WriteSnapshot(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	mSnapshots.Inc()
	return nil
}

// RestoreFile loads a snapshot from path. A missing file is not an
// error — it is simply a cold start — and reports (0, 0, nil).
func (s *Server) RestoreFile(path string) (segments, entries int, err error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, 0, nil
	}
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	return s.ReadSnapshot(f)
}

// snapshotLoop rewrites the snapshot file every SnapshotEvery until
// the server drains. It is started by Serve when SnapshotPath is set;
// the drain-time final snapshot is Shutdown's job.
func (s *Server) snapshotLoop() {
	defer s.snapGroup.Done()
	every := s.cfg.SnapshotEvery
	if every <= 0 {
		every = DefaultSnapshotEvery
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-s.draining:
			return
		case <-t.C:
			if err := s.SnapshotFile(s.cfg.SnapshotPath); err != nil {
				mSnapshotErrors.Inc()
			}
		}
	}
}
