package reused

import (
	"bufio"
	"net"
	"sync"
	"time"

	"compreuse/internal/obs"
	"compreuse/internal/wire"
)

// connBufBytes sizes the per-connection read and write buffers: large
// enough that a deep pipeline of small frames coalesces into few
// syscalls.
const connBufBytes = 64 << 10

// framePool recycles frames (and their Key/Vals backing arrays)
// between the reader and writer of every connection.
var framePool = sync.Pool{New: func() any { return new(wire.Frame) }}

// conn is one client connection: a reader goroutine that decodes and
// executes requests, a writer goroutine that encodes and batches
// responses, and a bounded queue between them whose backpressure
// ultimately reaches the client through TCP.
type conn struct {
	srv *Server
	nc  net.Conn
	out chan *wire.Frame
}

func newConn(s *Server, nc net.Conn) *conn {
	return &conn{srv: s, nc: nc, out: make(chan *wire.Frame, s.cfg.maxInflight())}
}

// beginDrain puts the connection into drain mode: requests already
// written by the client keep being read, executed and answered until
// deadline, after which the blocked read returns and the connection
// winds down through the normal flush-then-close path — so no response
// to an accepted request is ever dropped.
func (c *conn) beginDrain(deadline time.Time) {
	c.nc.SetReadDeadline(deadline)
}

// run owns the connection's lifecycle. It returns (and unregisters the
// connection) only after the writer has flushed everything the reader
// enqueued.
func (c *conn) run() {
	writerDone := make(chan struct{})
	go func() {
		c.writeLoop()
		close(writerDone)
	}()

	r := wire.NewReader(bufio.NewReaderSize(c.nc, connBufBytes))
	for {
		f := framePool.Get().(*wire.Frame)
		if err := r.Next(f); err != nil {
			// Clean EOF, drain deadline, protocol garbage: all end the
			// read side. Responses already queued still go out.
			framePool.Put(f)
			break
		}
		// Adopt the trace a FlagTraced frame carries: the server span
		// lands in this process's ring under the client's trace id, so a
		// /traces scrape stitches the request across the wire. Untraced
		// frames (TraceID 0) skip all span work.
		op := f.Op
		sp := obs.StartServerSpan(f.TraceID, serverSpanName(op))
		c.srv.process(f, &sp)
		sp.Outcome(flagOutcome(op, f.Flags))
		sp.End()
		c.out <- f // blocks when the writer is behind: backpressure
	}
	close(c.out)
	<-writerDone
	c.nc.Close()
	c.srv.removeConn(c)
}

// writeLoop encodes queued responses, coalescing every response that is
// already queued into a single buffered flush. If the connection dies
// mid-write it keeps draining the queue (discarding) so the reader can
// never deadlock against a full queue.
func (c *conn) writeLoop() {
	bw := bufio.NewWriterSize(c.nc, connBufBytes)
	w := wire.NewWriter(bw)
	dead := false
	for f := range c.out {
		if !dead {
			if err := w.Write(f); err != nil {
				dead = true
				c.nc.Close() // unblock the reader too
			}
		}
		release(f)
		// Batch: drain whatever else is queued before paying a flush.
		for more := true; more && !dead; {
			select {
			case f2, ok := <-c.out:
				if !ok {
					bw.Flush()
					return
				}
				if err := w.Write(f2); err != nil {
					dead = true
					c.nc.Close()
				}
				release(f2)
			default:
				more = false
			}
		}
		if !dead {
			if err := bw.Flush(); err != nil {
				dead = true
				c.nc.Close()
			}
		}
	}
	if !dead {
		bw.Flush()
	}
}

// release returns a frame to the pool, dropping any reference it holds
// into caller-owned memory (a response must never let the pool reuse a
// buffer the reuse table or another goroutine still owns).
func release(f *wire.Frame) {
	f.Name = ""
	f.Key = nil
	f.Vals = nil
	f.Items = nil
	f.TraceID = 0
	framePool.Put(f)
}

// serverSpanName names the server-side span of a traced request; one
// static string per op keeps the enabled tracing path allocation-free.
func serverSpanName(op wire.Op) string {
	switch op {
	case wire.OpGet:
		return "srv.get"
	case wire.OpPut:
		return "srv.put"
	case wire.OpMGet:
		return "srv.mget"
	case wire.OpMPut:
		return "srv.mput"
	case wire.OpHello:
		return "srv.hello"
	case wire.OpFlush:
		return "srv.flush"
	case wire.OpStats:
		return "srv.stats"
	default:
		return "srv.op"
	}
}

// flagOutcome classifies a processed frame's response flags as the
// server span's outcome. A GET/MGET response with no flags is a miss;
// other flag-less responses are plain acknowledgements.
func flagOutcome(op wire.Op, flags uint8) string {
	switch {
	case flags&wire.FlagErr != 0:
		return "err"
	case flags&wire.FlagBypass != 0:
		return "bypass"
	case flags&wire.FlagHit != 0:
		return "hit"
	case op == wire.OpGet || op == wire.OpMGet:
		return "miss"
	default:
		return "ok"
	}
}

// process executes one request frame in place, turning it into its
// response. The frame's Seq survives untouched, which is all the
// pipelining contract needs. sp is the request's server span (inert
// for untraced frames); the probe paths annotate it with where the
// server's time went.
func (s *Server) process(f *wire.Frame, sp *obs.Span) {
	instrumented := obs.On()
	if instrumented {
		opCounter(f.Op).Inc()
	}
	switch f.Op {
	case wire.OpHello:
		s.processHello(f)
	case wire.OpGet:
		s.processGet(f, instrumented, sp)
	case wire.OpPut:
		s.processPut(f)
	case wire.OpMGet:
		s.processMGet(f, instrumented, sp)
	case wire.OpMPut:
		s.processMPut(f)
	case wire.OpFlush, wire.OpStats:
		seg, ok := s.segmentByID(f.Seg)
		if !ok {
			fail(f, "unknown segment id")
			return
		}
		if f.Op == wire.OpFlush {
			seg.tab.Reset()
			seg.gov.reset()
			respond(f, 0)
		} else {
			s.processStats(f, seg)
		}
	default:
		fail(f, "unsupported op")
	}
}

func (s *Server) processHello(f *wire.Frame) {
	var entries, lru, outWords uint64
	if len(f.Vals) > 0 {
		entries = f.Vals[0]
	}
	if len(f.Vals) > 1 {
		lru = f.Vals[1]
	}
	if len(f.Vals) > 2 {
		outWords = f.Vals[2]
	}
	seg, err := s.segmentFor(f.Name, int(entries), lru != 0, int(outWords))
	if err != nil {
		fail(f, err.Error())
		return
	}
	f.Seg = seg.id
	cfg := seg.tab.Config()
	respond(f, 0)
	f.Vals = append(f.Vals[:0], uint64(cfg.Entries), b2u(cfg.LRU), uint64(seg.outWords))
}

func (s *Server) processGet(f *wire.Frame, instrumented bool, sp *obs.Span) {
	seg, ok := s.segmentByID(f.Seg)
	if !ok {
		fail(f, "unknown segment id")
		return
	}
	rttNS := int64(f.Cost) // client-reported round-trip estimate
	if instrumented && rttNS > 0 {
		mClientRTT.ObserveTraced(rttNS, f.TraceID)
	}
	if seg.bypassOrReadmit(s) {
		if instrumented {
			seg.bypassed.Inc()
		}
		respond(f, wire.FlagBypass)
		return
	}
	start := time.Now()
	outs, hit := seg.tab.Probe(0, f.Key)
	probeNS := time.Since(start).Nanoseconds()
	sp.Annotate("probe_ns", probeNS)
	if d := seg.gov.observeGet(seg.name, hit, probeNS+rttNS); d != nil {
		s.recordDecision(*d)
	}
	if !hit {
		respond(f, 0)
		return
	}
	if instrumented {
		seg.hits.Inc()
	}
	respond(f, wire.FlagHit)
	// Copy the stored words into the frame-owned buffer: the frame goes
	// back to a pool, and the table keeps owning outs.
	f.Vals = append(f.Vals[:0], outs...)
}

func (s *Server) processPut(f *wire.Frame) {
	seg, ok := s.segmentByID(f.Seg)
	if !ok {
		fail(f, "unknown segment id")
		return
	}
	if seg.bypassOrReadmit(s) {
		if obs.On() {
			seg.bypassed.Inc()
		}
		respond(f, wire.FlagBypass)
		return
	}
	if len(f.Vals) != seg.outWords {
		fail(f, "wrong output arity")
		return
	}
	seg.gov.observePut(int64(f.Cost))
	seg.tab.Record(0, f.Key, f.Vals)
	s.enforceBudget()
	respond(f, 0)
}

// processMGet is the scatter-gather probe: one frame, one round trip,
// many keys. Each item is probed independently and answered in place
// (per-item FlagHit plus the stored outputs); the request keys are
// dropped from the response — the client matches items by index. The
// client's RTT estimate is amortized evenly across the batch when the
// governor is charged overhead O, which is exactly the economics that
// make batching worthwhile under formula 3: the same round trip divided
// over n probes shrinks each probe's O by n.
func (s *Server) processMGet(f *wire.Frame, instrumented bool, sp *obs.Span) {
	seg, ok := s.segmentByID(f.Seg)
	if !ok {
		fail(f, "unknown segment id")
		return
	}
	if len(f.Items) == 0 {
		fail(f, "empty batch")
		return
	}
	rttNS := int64(f.Cost)
	if instrumented && rttNS > 0 {
		mClientRTT.ObserveTraced(rttNS, f.TraceID)
	}
	if seg.bypassOrReadmit(s) {
		if instrumented {
			seg.bypassed.Inc()
		}
		respond(f, wire.FlagBypass)
		f.Items = nil
		return
	}
	sp.Annotate("items", int64(len(f.Items)))
	rttShare := rttNS / int64(len(f.Items))
	var totalProbeNS, hits int64
	for i := range f.Items {
		it := &f.Items[i]
		start := time.Now()
		outs, hit := seg.tab.Probe(0, it.Key)
		probeNS := time.Since(start).Nanoseconds()
		totalProbeNS += probeNS
		if d := seg.gov.observeGet(seg.name, hit, probeNS+rttShare); d != nil {
			s.recordDecision(*d)
		}
		it.Key = nil
		it.Cost = 0
		if !hit {
			it.Flags = 0
			it.Vals = nil
			continue
		}
		hits++
		if instrumented {
			seg.hits.Inc()
		}
		it.Flags = wire.FlagHit
		// Copy out of the table-owned storage, as processGet does.
		it.Vals = append(it.Vals[:0], outs...)
	}
	sp.Annotate("probe_ns", totalProbeNS)
	sp.Annotate("hits", hits)
	items := f.Items
	respond(f, 0)
	f.Items = items
}

// processMPut records a batch of computed results in one frame. Items
// are validated and recorded independently — a wrong-arity item fails
// the whole frame (the batch is one client-side coalescing decision,
// not independent requests) — and each item's Cost feeds the governor
// as that computation's measured C.
func (s *Server) processMPut(f *wire.Frame) {
	seg, ok := s.segmentByID(f.Seg)
	if !ok {
		fail(f, "unknown segment id")
		return
	}
	if len(f.Items) == 0 {
		fail(f, "empty batch")
		return
	}
	if seg.bypassOrReadmit(s) {
		if obs.On() {
			seg.bypassed.Inc()
		}
		respond(f, wire.FlagBypass)
		f.Items = nil
		return
	}
	for i := range f.Items {
		if len(f.Items[i].Vals) != seg.outWords {
			fail(f, "wrong output arity")
			return
		}
	}
	for i := range f.Items {
		it := &f.Items[i]
		seg.gov.observePut(int64(it.Cost))
		seg.tab.Record(0, it.Key, it.Vals)
	}
	s.enforceBudget()
	respond(f, 0)
	f.Items = nil
}

func (s *Server) processStats(f *wire.Frame, seg *segment) {
	respond(f, 0)
	f.Vals = statsVals(seg, f.Vals[:0])
}

// statsVals fills one segment's live STATS vector into dst. The same
// vector is the response payload of OpStats and the per-segment state
// record of a warm snapshot, so a restored node's Stats are, by
// construction, what the dump saw.
func statsVals(seg *segment, dst []uint64) []uint64 {
	st := seg.tab.TotalStats()
	g := seg.gov
	vals := append(dst, make([]uint64, wire.StatsLen)...)
	vals[wire.StatsProbes] = uint64(st.Probes)
	vals[wire.StatsHits] = uint64(st.Hits)
	vals[wire.StatsMisses] = uint64(st.Misses)
	vals[wire.StatsRecords] = uint64(st.Records)
	vals[wire.StatsDistinct] = uint64(seg.tab.Distinct())
	vals[wire.StatsResident] = uint64(seg.tab.Resident())
	vals[wire.StatsBypassed] = uint64(g.bypassTotal.Load())
	vals[wire.StatsState] = b2u(g.bypassed())
	vals[wire.StatsR] = uint64(g.rPPM.Load())
	vals[wire.StatsC] = uint64(g.cEWMA.Load())
	vals[wire.StatsO] = uint64(g.oEWMA.Load())
	return vals
}

// bypassOrReadmit reports whether this request should be answered with
// FlagBypass. A bypassed request advances the governor's probation; the
// request that exhausts it resets the segment's table (cold R
// re-measurement) and readmits — that request itself is still answered
// as bypassed, the next one probes.
func (sg *segment) bypassOrReadmit(s *Server) bool {
	if !sg.gov.bypassed() {
		return false
	}
	if d := sg.gov.observeBypass(sg.name, sg.tab.Reset); d != nil {
		s.recordDecision(*d)
	}
	return true
}

// respond turns a request frame into its success response in place.
func respond(f *wire.Frame, flags uint8) {
	f.Flags = wire.FlagResp | flags
	f.Name = ""
	f.Key = nil
	f.Vals = f.Vals[:0]
}

// fail turns a request frame into an error response carrying msg.
func fail(f *wire.Frame, msg string) {
	f.Flags = wire.FlagResp | wire.FlagErr
	f.Name = msg
	f.Key = nil
	f.Vals = nil
	f.Items = nil
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
