package reused

import (
	"fmt"

	"compreuse/internal/obs"
	"compreuse/internal/wire"
)

// Server metrics, registered in the default obs registry so crcserve's
// MetricsHandler exports them next to the reuse-table counters the
// segment tables already feed (crc_probes_total, crc_probe_latency_ns,
// per-table occupancy gauges, ...). Updates are gated on obs.On() at
// the call sites, per the repo-wide cost discipline.
var (
	mConnsOpen = obs.NewGauge("crcserve_conns_open",
		"client connections currently open")
	mConnsTotal = obs.NewCounter("crcserve_conns_total",
		"client connections ever accepted")
	mConnsRejected = obs.NewCounter("crcserve_conns_rejected_total",
		"connections refused by the --max-conns limit or during shutdown")
	mSegments = obs.NewGauge("crcserve_segments",
		"registered reuse segments")
	mGovTransitions = obs.NewCounter("crcserve_governor_transitions_total",
		"admission-governor BYPASS/READMIT transitions")
	mBudgetFlushes = obs.NewCounter("crcserve_budget_flushes_total",
		"segment tables flushed by the --mem-budget cap")
	mClientRTT = obs.NewHistogram("crcserve_client_rtt_ns",
		"client-reported round-trip estimates carried on GET frames, ns",
		obs.LatencyBuckets)
	mSnapshots = obs.NewCounter("crcserve_snapshots_total",
		"warm snapshots written (periodic and drain-time)")
	mSnapshotErrors = obs.NewCounter("crcserve_snapshot_errors_total",
		"snapshot writes that failed")
	mSnapshotEntries = obs.NewGauge("crcserve_snapshot_entries",
		"entries carried by the most recent snapshot")

	mOpRequests = [...]*obs.Counter{
		wire.OpHello: obs.NewCounter(`crcserve_requests_total{op="hello"}`, opHelp),
		wire.OpGet:   obs.NewCounter(`crcserve_requests_total{op="get"}`, opHelp),
		wire.OpPut:   obs.NewCounter(`crcserve_requests_total{op="put"}`, opHelp),
		wire.OpFlush: obs.NewCounter(`crcserve_requests_total{op="flush"}`, opHelp),
		wire.OpStats: obs.NewCounter(`crcserve_requests_total{op="stats"}`, opHelp),
		wire.OpMGet:  obs.NewCounter(`crcserve_requests_total{op="mget"}`, opHelp),
		wire.OpMPut:  obs.NewCounter(`crcserve_requests_total{op="mput"}`, opHelp),
	}
	mOpOther = obs.NewCounter(`crcserve_requests_total{op="other"}`, opHelp)
)

const opHelp = "requests served, by operation"

// opCounter returns the request counter for an operation.
func opCounter(op wire.Op) *obs.Counter {
	if int(op) < len(mOpRequests) && mOpRequests[op] != nil {
		return mOpRequests[op]
	}
	return mOpOther
}

// segHitCounters returns the per-segment hit counter.
func segHitCounters(name string) *obs.Counter {
	return obs.NewCounter(fmt.Sprintf("crcserve_seg_hits_total{segment=%q}", name),
		"GETs served from the shared reuse table, per segment")
}

// segBypassCounters returns the per-segment bypass counter.
func segBypassCounters(name string) *obs.Counter {
	return obs.NewCounter(fmt.Sprintf("crcserve_seg_bypass_total{segment=%q}", name),
		"requests answered with FlagBypass by the admission governor, per segment")
}
