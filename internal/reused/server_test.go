package reused_test

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"compreuse"
	"compreuse/internal/reused"
	"compreuse/internal/wire"
)

// startServer runs a Server on a loopback listener and returns its
// address. The server is shut down (abruptly) at test end.
func startServer(t *testing.T, cfg reused.Config) (srv *reused.Server, addr string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv = reused.New(cfg)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-done; err != reused.ErrServerClosed {
			t.Errorf("Serve returned %v, want ErrServerClosed", err)
		}
	})
	return srv, ln.Addr().String()
}

func dial(t *testing.T, addr string, cfg compreuse.ClientConfig) *compreuse.Client {
	t.Helper()
	cfg.Addr = addr
	c, err := compreuse.DialCache(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func key(i int) []byte {
	k := make([]byte, 8)
	binary.LittleEndian.PutUint64(k, uint64(i))
	return k
}

// TestSharedReuse drives overlapping key streams from several clients:
// what one client computed and PUT, the others must GET as hits — the
// whole point of the remote tier.
func TestSharedReuse(t *testing.T) {
	_, addr := startServer(t, reused.Config{})

	writer := dial(t, addr, compreuse.ClientConfig{Conns: 1})
	seg, err := writer.Segment("shared", compreuse.SegmentConfig{OutWords: 2})
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	for i := 0; i < n; i++ {
		if err := seg.Put(key(i), []uint64{uint64(i), uint64(i * i)}, time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}

	// Four more clients, four distinct connections, same key stream.
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for c := 0; c < 4; c++ {
		cl := dial(t, addr, compreuse.ClientConfig{Conns: 1})
		rseg, err := cl.Segment("shared", compreuse.SegmentConfig{})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				vals, status, err := rseg.Get(key(i))
				if err != nil {
					errs <- err
					return
				}
				if status != compreuse.Hit || len(vals) != 2 || vals[1] != uint64(i*i) {
					errs <- fmt.Errorf("key %d: status %v vals %v", i, status, vals)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st, err := seg.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Hits < 4*n {
		t.Errorf("aggregate hits %d, want >= %d", st.Hits, 4*n)
	}
	if st.Distinct != n {
		t.Errorf("distinct %d, want %d (fleet should share, not rediscover)", st.Distinct, n)
	}
}

// TestGovernorBypassesCheapSegment registers a segment whose
// client-reported computation cost C is far below the measured
// overhead O (which includes a real loopback RTT), and expects the
// governor to flip it to BYPASS — then, after probation, to READMIT it
// with a cold table.
func TestGovernorBypassesCheapSegment(t *testing.T) {
	var mu sync.Mutex
	var transitions []reused.Decision
	srv, addr := startServer(t, reused.Config{
		Governor: reused.GovernorConfig{
			Window:    64,
			Probation: 32,
			OnDecision: func(d reused.Decision) {
				mu.Lock()
				transitions = append(transitions, d)
				mu.Unlock()
			},
		},
	})

	cl := dial(t, addr, compreuse.ClientConfig{Conns: 1})
	seg, err := cl.Segment("cheap", compreuse.SegmentConfig{})
	if err != nil {
		t.Fatal(err)
	}

	// A 100ns computation can never pay for a network round trip.
	const cheap = 100 * time.Nanosecond
	deadline := time.Now().Add(10 * time.Second)
	bypassSeen := false
	for i := 0; !bypassSeen; i++ {
		if time.Now().After(deadline) {
			st, _ := seg.Stats()
			t.Fatalf("governor never bypassed: stats %+v", st)
		}
		k := key(i % 8) // high reuse rate: R alone must not save it
		vals, status, err := seg.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		switch status {
		case compreuse.Bypass:
			bypassSeen = true
		case compreuse.Miss:
			if err := seg.Put(k, []uint64{uint64(i)}, cheap); err != nil {
				t.Fatal(err)
			}
		default:
			_ = vals
		}
	}

	st, err := seg.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if !st.BypassedNow {
		t.Errorf("stats say admitted after bypass verdict: %+v", st)
	}
	if st.C >= st.O {
		t.Errorf("expected C << O, got C=%v O=%v", st.C, st.O)
	}

	// Drive the probation out; the segment must come back admitted with
	// a reset table (cold R re-measurement).
	for i := 0; i < 40*64; i++ {
		if _, _, err := seg.Get(key(i % 8)); err != nil {
			t.Fatal(err)
		}
		st, err = seg.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if !st.BypassedNow {
			break
		}
	}
	if st.BypassedNow {
		t.Fatalf("segment never readmitted: %+v", st)
	}
	if st.Resident != 0 && st.Distinct > 8 {
		t.Errorf("readmitted table looks warm: %+v", st)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(transitions) < 2 {
		t.Fatalf("transitions: %+v", transitions)
	}
	first := transitions[0]
	if first.State != "BYPASS" || first.Gain > 0 || first.C != int64(cheap) {
		t.Errorf("first transition: %+v", first)
	}
	if transitions[1].State != "READMIT" {
		t.Errorf("second transition: %+v", transitions[1])
	}
	if got := srv.Decisions(); len(got) != len(transitions) {
		t.Errorf("ledger has %d decisions, callback saw %d", len(got), len(transitions))
	}
}

// TestShutdownDrain opens a connection, fires a burst of pipelined
// requests, shuts the server down mid-burst, and checks every request
// got its response — the no-dropped-in-flight-responses guarantee.
func TestShutdownDrain(t *testing.T) {
	srv, addr := startServer(t, reused.Config{DrainGrace: time.Second})

	cl := dial(t, addr, compreuse.ClientConfig{Conns: 2, MaxInflight: 64})
	seg, err := cl.Segment("drain", compreuse.SegmentConfig{})
	if err != nil {
		t.Fatal(err)
	}

	const callers = 64
	var wg sync.WaitGroup
	results := make([]error, callers)
	start := make(chan struct{})
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			_, _, err := seg.Get(key(i))
			results[i] = err
		}(i)
	}
	close(start)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	wg.Wait()
	for i, err := range results {
		if err != nil {
			t.Errorf("caller %d dropped: %v", i, err)
		}
	}
}

// TestMaxConns checks that connections beyond the cap are refused.
func TestMaxConns(t *testing.T) {
	_, addr := startServer(t, reused.Config{MaxConns: 1})

	first, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	// Prove the first connection is live before racing the second.
	w := wire.NewWriter(first)
	if err := w.Write(&wire.Frame{Op: wire.OpHello, Seq: 1, Name: "a"}); err != nil {
		t.Fatal(err)
	}
	var resp wire.Frame
	if err := wire.NewReader(first).Next(&resp); err != nil {
		t.Fatal(err)
	}

	second, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	second.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := second.Read(make([]byte, 1)); err != io.EOF {
		t.Errorf("second connection: read err %v, want EOF (refused)", err)
	}
}

// TestMemBudget fills a segment past the budget and expects the server
// to flush the table rather than grow without bound.
func TestMemBudget(t *testing.T) {
	_, addr := startServer(t, reused.Config{MemBudget: 16 << 10})

	cl := dial(t, addr, compreuse.ClientConfig{Conns: 1})
	seg, err := cl.Segment("hog", compreuse.SegmentConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Each entry models 16 (key) + 8 (value) bytes; 4096 records is
	// ~96 KiB, six times the budget.
	for i := 0; i < 4096; i++ {
		if err := seg.Put(key(i), []uint64{uint64(i)}, time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	st, err := seg.Stats()
	if err != nil {
		t.Fatal(err)
	}
	// 16KiB budget / 24 bytes per entry ≈ 680 entries; allow slack for
	// the 256-record check cadence.
	if st.Resident >= 4096-256 {
		t.Errorf("budget never enforced: resident %d of %d records", st.Resident, st.Records)
	}
}

// TestErrorResponses exercises the protocol error paths: unknown
// segment ids and wrong PUT arity come back as FlagErr responses, and
// the connection survives them.
func TestErrorResponses(t *testing.T) {
	_, addr := startServer(t, reused.Config{})
	cl := dial(t, addr, compreuse.ClientConfig{Conns: 1})

	seg, err := cl.Segment("arity", compreuse.SegmentConfig{OutWords: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := seg.Put(key(1), []uint64{1}, time.Millisecond); err == nil {
		t.Error("wrong-arity PUT did not error")
	}
	// The connection still works afterwards.
	if err := seg.Put(key(1), []uint64{1, 2}, time.Millisecond); err != nil {
		t.Errorf("connection dead after arity error: %v", err)
	}
	if _, status, err := seg.Get(key(1)); err != nil || status != compreuse.Hit {
		t.Errorf("get after arity error: status %v err %v", status, err)
	}
}

// TestFlushResets checks FLUSH empties the shared table.
func TestFlushResets(t *testing.T) {
	_, addr := startServer(t, reused.Config{})
	cl := dial(t, addr, compreuse.ClientConfig{Conns: 1})
	seg, err := cl.Segment("flush", compreuse.SegmentConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := seg.Put(key(1), []uint64{7}, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := seg.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, status, err := seg.Get(key(1)); err != nil || status != compreuse.Miss {
		t.Errorf("after flush: status %v err %v", status, err)
	}
	st, err := seg.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Resident != 0 {
		t.Errorf("resident %d after flush", st.Resident)
	}
}

// TestTieredMemo checks the L1/L2 layering: process A computes, process
// B gets L2 hits, then B's own repeats come from its L1.
func TestTieredMemo(t *testing.T) {
	_, addr := startServer(t, reused.Config{})

	computeCalls := 0
	a := dial(t, addr, compreuse.ClientConfig{Conns: 1})
	ta, err := compreuse.NewTieredMemo(a, compreuse.TieredMemoConfig{Name: "tiered"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		v := ta.Do(key(i), func() uint64 { computeCalls++; return uint64(i * 3) })
		if v != uint64(i*3) {
			t.Fatalf("Do(%d) = %d", i, v)
		}
	}
	if computeCalls != 32 {
		t.Fatalf("process A computed %d times, want 32", computeCalls)
	}

	b := dial(t, addr, compreuse.ClientConfig{Conns: 1})
	tb, err := compreuse.NewTieredMemo(b, compreuse.TieredMemoConfig{Name: "tiered"})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		for i := 0; i < 32; i++ {
			v := tb.Do(key(i), func() uint64 {
				t.Errorf("process B recomputed key %d", i)
				return 0
			})
			if v != uint64(i*3) {
				t.Fatalf("B Do(%d) = %d", i, v)
			}
		}
	}
	st := tb.Stats()
	if st.L2Hits != 32 || st.L1Hits != 32 || st.Computes != 0 {
		t.Errorf("B tiers: %+v", st)
	}

	if err := tb.Reset(); err != nil {
		t.Fatal(err)
	}
	recomputed := 0
	tb.Do(key(0), func() uint64 { recomputed++; return 0 })
	if recomputed != 1 {
		t.Errorf("Reset did not clear both tiers (recomputed=%d)", recomputed)
	}
}
