package reused_test

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
	"time"

	"compreuse"
	"compreuse/internal/reused"
)

// TestReadmitColdNoTraffic drives a readmit-cold transition with no
// admitted traffic at all: a cold-probation segment starts bypassed,
// its probation runs out on bypassed requests alone, and the READMIT
// decision must carry the prior / last-good R — never the NaN a
// zero-observation window would divide out to — and must survive JSON
// marshaling for the /decisions ledger.
func TestReadmitColdNoTraffic(t *testing.T) {
	var mu sync.Mutex
	var transitions []reused.Decision
	prior := reused.AdmitPrior{R: 0.9, CNS: 10, ONS: 10_000} // gain < 0
	_, addr := startServer(t, reused.Config{
		Governor: reused.GovernorConfig{
			Window:        64,
			Probation:     8,
			ColdProbation: true,
			AdmitPrior: func(name string) (reused.AdmitPrior, bool) {
				if name == "unprofitable" {
					return prior, true
				}
				return reused.AdmitPrior{}, false
			},
			OnDecision: func(d reused.Decision) {
				mu.Lock()
				transitions = append(transitions, d)
				mu.Unlock()
			},
		},
	})

	cl := dial(t, addr, compreuse.ClientConfig{Conns: 1})
	seg, err := cl.Segment("unprofitable", compreuse.SegmentConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// The prior predicts a loss, so every request is bypassed from the
	// first — the window never sees one observation. The client
	// short-circuits a known-bypassed segment and only revalidates every
	// 64th call, so give the loop enough calls to push the 8-request
	// probation through at the server.
	readmitted := false
	for i := 0; i < 4096 && !readmitted; i++ {
		if _, status, err := seg.Get(key(0)); err != nil {
			t.Fatal(err)
		} else if status != compreuse.Bypass {
			readmitted = true
		}
	}
	if !readmitted {
		t.Fatal("probation never readmitted the segment")
	}

	mu.Lock()
	defer mu.Unlock()
	if len(transitions) < 2 {
		t.Fatalf("transitions: %+v", transitions)
	}
	if transitions[0].State != "BYPASS" || transitions[0].R != prior.R {
		t.Errorf("initial cold-probation decision: %+v", transitions[0])
	}
	readmit := transitions[len(transitions)-1]
	if readmit.State != "READMIT" {
		t.Fatalf("last transition: %+v", readmit)
	}
	if math.IsNaN(readmit.R) || math.IsInf(readmit.R, 0) {
		t.Fatalf("READMIT R is not finite: %+v", readmit)
	}
	if readmit.R != prior.R {
		t.Errorf("READMIT R = %v, want prior / last-good %v", readmit.R, prior.R)
	}
	// The ledger must serialize (encoding/json rejects NaN outright).
	if _, err := json.Marshal(transitions); err != nil {
		t.Fatalf("decision ledger does not marshal: %v", err)
	}
}

// TestPriorAdmitsBeforeProbation is the acceptance check for
// profiler-free admission: under cold probation, a cold segment whose
// prior says R̂·C − O > 0 serves remote hits immediately, while an
// identical segment without a prior is still inside the probation
// window it must wait out.
func TestPriorAdmitsBeforeProbation(t *testing.T) {
	const probation = 1000
	_, addr := startServer(t, reused.Config{
		Governor: reused.GovernorConfig{
			Probation:     probation,
			ColdProbation: true,
			AdmitPrior: func(name string) (reused.AdmitPrior, bool) {
				if name == "hot" {
					// R̂·C − O = 0.9·1e6 − 100 > 0: admit on sight.
					return reused.AdmitPrior{R: 0.9, CNS: 1_000_000, ONS: 100}, true
				}
				return reused.AdmitPrior{}, false
			},
		},
	})

	cl := dial(t, addr, compreuse.ClientConfig{Conns: 1})
	hot, err := cl.Segment("hot", compreuse.SegmentConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := cl.Segment("cold", compreuse.SegmentConfig{})
	if err != nil {
		t.Fatal(err)
	}

	// The prior-admitted segment accepts a PUT and serves the repeat as
	// a remote hit on its very next request — far inside the probation
	// window the no-prior segment is still bypassed for.
	if err := hot.Put(key(1), []uint64{42}, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, status, err := hot.Get(key(1)); err != nil || status != compreuse.Hit {
		t.Fatalf("prior-admitted segment: status %v err %v, want immediate hit", status, err)
	}
	if _, status, err := cold.Get(key(1)); err != nil || status != compreuse.Bypass {
		t.Fatalf("no-prior segment: status %v err %v, want probationary bypass", status, err)
	}
}

// TestPriorConvergesWithProbed checks that a cold segment admitted via
// prior reaches the same steady-state governor decision as one that
// earned admission by probing: identical unprofitable traffic (C far
// below the measured O) must flip both to BYPASS. Run with -race; the
// traffic is driven concurrently.
func TestPriorConvergesWithProbed(t *testing.T) {
	_, addr := startServer(t, reused.Config{
		Governor: reused.GovernorConfig{
			Window:    64,
			Probation: 1 << 30, // no readmits during the test
			AdmitPrior: func(name string) (reused.AdmitPrior, bool) {
				if name == "seeded" {
					return reused.AdmitPrior{R: 0.9, CNS: 1_000_000, ONS: 100}, true
				}
				return reused.AdmitPrior{}, false
			},
		},
	})

	const cheap = 100 * time.Nanosecond
	var wg sync.WaitGroup
	for _, name := range []string{"seeded", "probed"} {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			cl := dial(t, addr, compreuse.ClientConfig{Conns: 1})
			seg, err := cl.Segment(name, compreuse.SegmentConfig{})
			if err != nil {
				t.Error(err)
				return
			}
			deadline := time.Now().Add(10 * time.Second)
			for i := 0; ; i++ {
				if time.Now().After(deadline) {
					st, _ := seg.Stats()
					t.Errorf("%s never converged to BYPASS: %+v", name, st)
					return
				}
				k := key(i % 8)
				_, status, err := seg.Get(k)
				if err != nil {
					t.Error(err)
					return
				}
				if status == compreuse.Bypass {
					return // steady state reached
				}
				// Report the (cheap) computation cost on every call, not
				// just misses, so the windows keep correcting the seeded
				// segment's optimistic prior C downward.
				if err := seg.Put(k, []uint64{uint64(i)}, cheap); err != nil {
					t.Error(err)
					return
				}
			}
		}(name)
	}
	wg.Wait()
}
