// Package reused is the server engine of the remote reuse-cache tier:
// one process holding the paper's reuse tables (as concurrent
// reusetab.Sharded instances, one per registered code segment) and
// serving them to a fleet of worker processes over the internal/wire
// protocol, so N workers share one table instead of each re-discovering
// the same N_ds distinct input patterns.
//
// Each connection gets a reader goroutine (decode, execute against the
// segment table, enqueue the response) and a writer goroutine (encode,
// coalesce every queued response into one buffered flush). The queue
// between them is bounded — when a client pipelines faster than
// responses drain, the reader stops reading and TCP backpressure does
// the rest. Admission is governed per segment by the paper's formula 3
// evaluated online; see governor.go.
package reused

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"compreuse/internal/obs"
	"compreuse/internal/reusetab"
	"compreuse/internal/wire"
)

// Config tunes a Server. The zero value serves with the defaults.
type Config struct {
	// MaxConns caps simultaneously open connections; excess accepts are
	// closed immediately. 0 means DefaultMaxConns.
	MaxConns int
	// MaxInflight bounds the per-connection response queue; a client
	// that pipelines deeper stops being read until responses drain.
	// 0 means DefaultMaxInflight.
	MaxInflight int
	// MemBudget caps the modeled bytes across all segment tables; when
	// the total exceeds it, the largest table is flushed. 0 = unlimited.
	MemBudget int64
	// Shards is the lock-stripe count of each segment table.
	// 0 picks a power of two near GOMAXPROCS.
	Shards int
	// DrainGrace is how long Shutdown keeps serving already-connected
	// clients before closing their connections. 0 means
	// DefaultDrainGrace.
	DrainGrace time.Duration
	// Governor tunes the online admission policy.
	Governor GovernorConfig
	// SnapshotPath, when set, enables warm snapshots: the tables and
	// governor state are dumped there every SnapshotEvery while serving
	// and once more at drain time (see snapshot.go). Restoring at boot
	// is the caller's move: RestoreFile before Serve.
	SnapshotPath string
	// SnapshotEvery is the periodic snapshot interval.
	// 0 means DefaultSnapshotEvery.
	SnapshotEvery time.Duration
}

// Config defaults.
const (
	DefaultMaxConns      = 1024
	DefaultMaxInflight   = 256
	DefaultDrainGrace    = 2 * time.Second
	DefaultSnapshotEvery = 30 * time.Second
)

func (c Config) maxConns() int {
	if c.MaxConns <= 0 {
		return DefaultMaxConns
	}
	return c.MaxConns
}

func (c Config) maxInflight() int {
	if c.MaxInflight <= 0 {
		return DefaultMaxInflight
	}
	return c.MaxInflight
}

func (c Config) shards() int {
	if c.Shards > 0 {
		return c.Shards
	}
	n := 1
	for n < runtime.GOMAXPROCS(0) {
		n <<= 1
	}
	return n
}

func (c Config) drainGrace() time.Duration {
	if c.DrainGrace <= 0 {
		return DefaultDrainGrace
	}
	return c.DrainGrace
}

// segment is one registered code segment: its shared table, its
// admission governor, and its per-segment metric counters.
type segment struct {
	id       uint32
	name     string
	outWords int
	tab      *reusetab.Sharded
	gov      *governor

	hits, bypassed *obs.Counter
}

// Server is the reuse-cache service. Create with New, run with Serve,
// stop with Shutdown (graceful) or Close (abrupt).
type Server struct {
	cfg Config

	mu         sync.Mutex
	segsByName map[string]*segment
	segs       []*segment
	conns      map[*conn]struct{}
	listeners  map[net.Listener]struct{}
	decisions  []Decision

	inShutdown atomic.Bool
	draining   chan struct{} // closed when Shutdown begins
	recordTick atomic.Int64  // budget-check pacing
	connGroup  sync.WaitGroup

	// Snapshot machinery: the periodic loop starts with the first Serve
	// and exits when draining closes; the drain-time final snapshot runs
	// once, after the loop has stopped (so the two never race on the
	// same temp file).
	snapStart sync.Once
	snapFinal sync.Once
	snapGroup sync.WaitGroup
}

// New builds a server from cfg.
func New(cfg Config) *Server {
	return &Server{
		cfg:        cfg,
		segsByName: map[string]*segment{},
		conns:      map[*conn]struct{}{},
		listeners:  map[net.Listener]struct{}{},
		draining:   make(chan struct{}),
	}
}

// ErrServerClosed is returned by Serve after Shutdown or Close.
var ErrServerClosed = errors.New("reused: server closed")

// Serve accepts connections on ln until Shutdown or Close. It always
// returns a non-nil error; after a graceful Shutdown the error is
// ErrServerClosed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.inShutdown.Load() {
		s.mu.Unlock()
		return ErrServerClosed
	}
	s.listeners[ln] = struct{}{}
	s.mu.Unlock()
	if s.cfg.SnapshotPath != "" {
		s.snapStart.Do(func() {
			s.snapGroup.Add(1)
			go s.snapshotLoop()
		})
	}
	defer func() {
		s.mu.Lock()
		delete(s.listeners, ln)
		s.mu.Unlock()
	}()

	for {
		nc, err := ln.Accept()
		if err != nil {
			if s.inShutdown.Load() {
				return ErrServerClosed
			}
			return err
		}
		if !s.addConn(nc) {
			nc.Close()
			mConnsRejected.Inc()
			continue
		}
	}
}

// addConn registers and starts a connection, enforcing MaxConns.
// It reports false when the connection was not admitted.
func (s *Server) addConn(nc net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.inShutdown.Load() || len(s.conns) >= s.cfg.maxConns() {
		return false
	}
	c := newConn(s, nc)
	s.conns[c] = struct{}{}
	s.connGroup.Add(1)
	mConnsOpen.Add(1)
	mConnsTotal.Inc()
	go c.run()
	return true
}

// removeConn unregisters a finished connection.
func (s *Server) removeConn(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	mConnsOpen.Add(-1)
	s.connGroup.Done()
}

// Shutdown drains the server: the listeners close, every open
// connection keeps being served for up to DrainGrace (so responses to
// requests already written by clients are never dropped), and once all
// connection goroutines have flushed and exited Shutdown returns nil.
// If ctx expires first, remaining connections are closed abruptly and
// ctx.Err() is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	alreadyDown := s.inShutdown.Swap(true)
	for ln := range s.listeners {
		ln.Close()
	}
	if !alreadyDown {
		close(s.draining)
		deadline := time.Now().Add(s.cfg.drainGrace())
		if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
			deadline = d
		}
		for c := range s.conns {
			c.beginDrain(deadline)
		}
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.connGroup.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.finalSnapshot()
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.nc.Close()
		}
		s.mu.Unlock()
		<-done
		s.finalSnapshot()
		return ctx.Err()
	}
}

// finalSnapshot writes the drain-time snapshot, once, after every
// connection has finished — so the dump carries the very last PUTs a
// draining client got acknowledged — and after the periodic loop has
// exited (draining is closed before connGroup can finish draining).
func (s *Server) finalSnapshot() {
	if s.cfg.SnapshotPath == "" {
		return
	}
	s.snapFinal.Do(func() {
		s.snapGroup.Wait()
		if err := s.SnapshotFile(s.cfg.SnapshotPath); err != nil {
			mSnapshotErrors.Inc()
		}
	})
}

// Close shuts the server down without draining.
func (s *Server) Close() error {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := s.Shutdown(ctx)
	if errors.Is(err, context.Canceled) {
		err = nil
	}
	return err
}

// Decisions returns a copy of the governor's transition ledger, oldest
// first.
func (s *Server) Decisions() []Decision {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Decision(nil), s.decisions...)
}

// maxDecisions bounds the in-memory ledger; older entries roll off.
const maxDecisions = 1024

// recordDecision appends to the ledger and fires the callback.
func (s *Server) recordDecision(d Decision) {
	mGovTransitions.Inc()
	s.mu.Lock()
	if len(s.decisions) >= maxDecisions {
		s.decisions = append(s.decisions[:0], s.decisions[len(s.decisions)-maxDecisions+1:]...)
	}
	s.decisions = append(s.decisions, d)
	s.mu.Unlock()
	if s.cfg.Governor.OnDecision != nil {
		s.cfg.Governor.OnDecision(d)
	}
}

// segmentFor registers (or finds) a named segment. The first HELLO for
// a name creates the table from the requested geometry; later HELLOs
// get the existing segment whatever they asked for — the fleet shares
// one table per name, and the first writer wins the configuration.
func (s *Server) segmentFor(name string, entries int, lru bool, outWords int) (*segment, error) {
	if name == "" {
		return nil, errors.New("empty segment name")
	}
	if outWords <= 0 {
		outWords = 1
	}
	if outWords > wire.MaxVals {
		return nil, fmt.Errorf("outWords %d exceeds %d", outWords, wire.MaxVals)
	}
	s.mu.Lock()
	if seg, ok := s.segsByName[name]; ok {
		s.mu.Unlock()
		return seg, nil
	}
	seg := &segment{
		id:       uint32(len(s.segs)),
		name:     name,
		outWords: outWords,
		tab: reusetab.NewSharded(reusetab.Config{
			Name:     "crcserve/" + name,
			Segs:     1,
			KeyBytes: 16,
			OutWords: []int{outWords},
			OutBytes: []int{8 * outWords},
			Entries:  entries,
			LRU:      lru,
		}, s.cfg.shards()),
		gov:      newGovernor(s.cfg.Governor),
		hits:     segHitCounters(name),
		bypassed: segBypassCounters(name),
	}
	// Seed the compile-time admission prior (static R̂ with expected C
	// and O) before the segment serves its first request, so a cold
	// segment the estimate predicts profitable skips probation.
	var prior AdmitPrior
	havePrior := false
	if s.cfg.Governor.AdmitPrior != nil {
		prior, havePrior = s.cfg.Governor.AdmitPrior(name)
	}
	d := seg.gov.seedPrior(name, prior, havePrior)
	s.segsByName[name] = seg
	s.segs = append(s.segs, seg)
	mSegments.Set(int64(len(s.segs)))
	s.mu.Unlock()
	if d != nil {
		// Ledger the initial state (recordDecision retakes s.mu and may
		// run the user callback, so it must happen outside the lock).
		s.recordDecision(*d)
	}
	return seg, nil
}

// segmentByID resolves a segment id from GET/PUT/FLUSH/STATS frames.
func (s *Server) segmentByID(id uint32) (*segment, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(id) >= len(s.segs) {
		return nil, false
	}
	return s.segs[id], true
}

// enforceBudget flushes the largest segment table when the modeled
// total exceeds MemBudget. Called every budgetCheckEvery records; the
// scan locks each table's shards briefly, so it stays off the per-PUT
// path.
const budgetCheckEvery = 256

func (s *Server) enforceBudget() {
	if s.cfg.MemBudget <= 0 {
		return
	}
	if s.recordTick.Add(1)%budgetCheckEvery != 0 {
		return
	}
	s.mu.Lock()
	segs := append([]*segment(nil), s.segs...)
	s.mu.Unlock()

	var total int64
	var largest *segment
	var largestBytes int64
	for _, seg := range segs {
		b := int64(seg.tab.SizeBytes())
		total += b
		if b > largestBytes {
			largest, largestBytes = seg, b
		}
	}
	if total <= s.cfg.MemBudget || largest == nil {
		return
	}
	largest.tab.Reset()
	mBudgetFlushes.Inc()
}
