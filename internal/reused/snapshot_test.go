package reused

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"compreuse/internal/wire"
)

// populate fills a server with two segments of live-looking state:
// recorded entries, probe traffic behind the counters, and non-trivial
// governor estimates.
func populate(t *testing.T, s *Server) {
	t.Helper()
	alpha, err := s.segmentFor("alpha", 0, false, 2)
	if err != nil {
		t.Fatal(err)
	}
	beta, err := s.segmentFor("beta", 64, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		k := []byte(fmt.Sprintf("alpha-%04d", i))
		alpha.tab.Record(0, k, []uint64{uint64(i), uint64(i * i)})
		alpha.tab.Probe(0, k)                                 // hit
		alpha.tab.Probe(0, []byte(fmt.Sprintf("miss-%d", i))) // miss
	}
	for i := 0; i < 32; i++ {
		beta.tab.Record(0, []byte(fmt.Sprintf("beta-%04d", i)), []uint64{uint64(i)})
	}
	alpha.gov.restoreState(false, 512_000, 80_000, 3_000, 7)
	beta.gov.restoreState(true, 10_000, 1_000, 50_000, 123)
}

// TestSnapshotRoundTrip dumps a populated server and restores it into a
// fresh one: the per-segment STATS vectors — the very bytes Stats()
// answers from — must come back identical, and every dumped entry must
// probe as a hit with its original outputs.
func TestSnapshotRoundTrip(t *testing.T) {
	s1 := New(Config{})
	populate(t, s1)

	var buf bytes.Buffer
	if err := s1.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	s2 := New(Config{})
	segs, entries, err := s2.ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if segs != 2 || entries != 132 {
		t.Fatalf("restored %d segments / %d entries, want 2 / 132", segs, entries)
	}

	for _, name := range []string{"alpha", "beta"} {
		a, b := s1.segsByName[name], s2.segsByName[name]
		if b == nil {
			t.Fatalf("segment %q missing after restore", name)
		}
		if b.outWords != a.outWords {
			t.Errorf("%s: outWords %d, want %d", name, b.outWords, a.outWords)
		}
		if got, want := b.tab.Config(), a.tab.Config(); got.Entries != want.Entries || got.LRU != want.LRU {
			t.Errorf("%s: geometry %+v, want %+v", name, got, want)
		}
		got, want := statsVals(b, nil), statsVals(a, nil)
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s: stats[%d] = %d, want %d (vector %v vs %v)",
					name, i, got[i], want[i], got, want)
				break
			}
		}
	}

	alpha := s2.segsByName["alpha"]
	for i := 0; i < 100; i++ {
		outs, hit := alpha.tab.Probe(0, []byte(fmt.Sprintf("alpha-%04d", i)))
		if !hit || len(outs) != 2 || outs[1] != uint64(i*i) {
			t.Fatalf("alpha-%04d after restore: hit=%v outs=%v", i, hit, outs)
		}
	}

	// Governor state survived: beta restored bypassed, alpha admitted.
	if !s2.segsByName["beta"].gov.bypassed() {
		t.Error("beta restored admitted, want bypassed")
	}
	if s2.segsByName["alpha"].gov.bypassed() {
		t.Error("alpha restored bypassed, want admitted")
	}
}

func TestSnapshotFileRoundTripAndMissing(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "node.snap")

	cold := New(Config{})
	if segs, entries, err := cold.RestoreFile(path); err != nil || segs != 0 || entries != 0 {
		t.Fatalf("RestoreFile(missing) = (%d, %d, %v), want (0, 0, nil)", segs, entries, err)
	}

	s1 := New(Config{})
	populate(t, s1)
	if err := s1.SnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("temp file left behind after rename: %v", err)
	}

	s2 := New(Config{})
	segs, entries, err := s2.RestoreFile(path)
	if err != nil || segs != 2 || entries != 132 {
		t.Fatalf("RestoreFile = (%d, %d, %v), want (2, 132, nil)", segs, entries, err)
	}
}

func TestSnapshotRejects(t *testing.T) {
	s := New(Config{})
	if _, _, err := s.ReadSnapshot(bytes.NewReader([]byte("not a snapshot at all"))); !errors.Is(err, ErrBadSnapshot) {
		t.Errorf("garbage: err = %v, want ErrBadSnapshot", err)
	}

	populated := New(Config{})
	populate(t, populated)
	var buf bytes.Buffer
	if err := populated.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if _, _, err := populated.ReadSnapshot(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("restore into a non-empty server succeeded, want refusal")
	}

	// A truncated dump must error, not silently restore a prefix.
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, _, err := New(Config{}).ReadSnapshot(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated snapshot restored cleanly, want error")
	}
}

// TestShutdownWritesFinalSnapshot drives a server with SnapshotPath
// over a real connection and checks the drain-time dump: Shutdown must
// leave a snapshot carrying the acknowledged PUTs.
func TestShutdownWritesFinalSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "drain.snap")
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{SnapshotPath: path, SnapshotEvery: time.Hour})
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	w := wire.NewWriter(nc)
	r := wire.NewReader(nc)
	var f wire.Frame
	if err := w.Write(&wire.Frame{Op: wire.OpHello, Name: "drainseg", Vals: []uint64{0, 0, 1}}); err != nil {
		t.Fatal(err)
	}
	if err := r.Next(&f); err != nil || f.Flags&wire.FlagErr != 0 {
		t.Fatalf("hello: %v %v", err, f.Name)
	}
	segID := f.Seg
	for i := 0; i < 10; i++ {
		if err := w.Write(&wire.Frame{Op: wire.OpPut, Seg: segID, Seq: uint64(i),
			Key: []byte(fmt.Sprintf("k%d", i)), Vals: []uint64{uint64(i)}}); err != nil {
			t.Fatal(err)
		}
		if err := r.Next(&f); err != nil || f.Flags&wire.FlagErr != 0 {
			t.Fatalf("put %d: %v %v", i, err, f.Name)
		}
	}
	nc.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := <-serveDone; err != ErrServerClosed {
		t.Fatalf("Serve = %v, want ErrServerClosed", err)
	}

	s2 := New(Config{})
	segs, entries, err := s2.RestoreFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if segs != 1 || entries != 10 {
		t.Fatalf("drain snapshot restored (%d, %d), want (1, 10)", segs, entries)
	}
}
