package reused

import (
	"sync"
	"sync/atomic"
)

// The admission governor is the paper's formula 3 — profitable iff
// R·C − O > 0 — run online, per segment, against the remote tier's own
// numbers instead of compile-time profiles:
//
//	R  the reuse rate, from the server's live hit/miss counters
//	C  the computation cost a client avoids on a hit, reported by
//	   clients on every PUT (they just paid it)
//	O  the lookup overhead a client pays on every probe: the server's
//	   measured table-probe latency plus the client-reported round-trip
//	   estimate carried on each GET
//
// A network hop makes O thousands of cycles instead of the paper's
// tens, so segments that were comfortably profitable in-process can be
// net losses remotely. The governor evaluates each segment every
// Window probes and flips it to BYPASS when the gain goes non-positive;
// bypassed segments answer GETs immediately with FlagBypass (clients
// compute locally and stop PUTting). After Probation bypassed requests
// the segment is readmitted with a freshly Reset table so R is
// re-measured from cold — workloads drift, and yesterday's loser may
// repeat its inputs today.

// GovernorConfig tunes the online admission policy.
type GovernorConfig struct {
	// Window is the number of probes between policy evaluations.
	// 0 means DefaultWindow; negative disables the governor (segments
	// are always admitted).
	Window int
	// Probation is the number of bypassed requests after which a
	// BYPASSed segment is readmitted for re-measurement. 0 means
	// DefaultProbation.
	Probation int
	// OnDecision, when non-nil, is called synchronously with every
	// state transition (from the connection goroutine that triggered
	// it; keep it cheap).
	OnDecision func(Decision)
	// AdmitPrior, when non-nil, is consulted once per segment at
	// registration: it returns the compile-time admission prior (the
	// static reuse-rate estimate R̂ with expected C and O) for the
	// named segment. The prior seeds the smoothed estimates a cold
	// governor starts from; live windows then correct it exactly as
	// they would correct measured values. BYPASS/readmit semantics are
	// unchanged once traffic accumulates.
	AdmitPrior func(name string) (AdmitPrior, bool)
	// ColdProbation, when true, starts cold segments WITHOUT a
	// positive-gain prior in bypass (probationary), so only segments
	// the prior predicts profitable (R̂·C − O > 0) are admitted
	// immediately; the rest earn admission through the usual probation
	// readmit. False (the default) keeps the historical behavior:
	// every cold segment starts admitted.
	ColdProbation bool
}

// AdmitPrior is a compile-time admission prior for one segment:
// the static reuse-rate estimate R̂ (internal/statreuse, carried in the
// decision ledger as static_reuse_rate) plus the expected computation
// cost and lookup overhead in nanoseconds.
type AdmitPrior struct {
	// R is the predicted reuse rate R̂ in [0,1].
	R float64
	// CNS is the expected per-hit computation saving, ns.
	CNS int64
	// ONS is the expected per-probe overhead, ns.
	ONS int64
}

// Gain is the prior's formula-3 value R̂·C − O in ns.
func (p AdmitPrior) Gain() float64 {
	return p.R*float64(p.CNS) - float64(p.ONS)
}

// Governor defaults.
const (
	DefaultWindow    = 512
	DefaultProbation = 4096
)

func (c GovernorConfig) window() int {
	if c.Window == 0 {
		return DefaultWindow
	}
	return c.Window
}

func (c GovernorConfig) probation() int {
	if c.Probation == 0 {
		return DefaultProbation
	}
	return c.Probation
}

// Decision is one governor state transition, kept in the server's
// ledger and handed to GovernorConfig.OnDecision.
type Decision struct {
	// Segment is the segment name.
	Segment string `json:"segment"`
	// State is the new state: "BYPASS", "READMIT", or "PRIOR" (a cold
	// segment admitted on its compile-time prior).
	State string `json:"state"`
	// R is the reuse rate over the evaluation window; on READMIT and
	// PRIOR transitions (no window observations) it is the last good /
	// prior R, never NaN.
	R float64 `json:"r"`
	// C is the smoothed client-reported computation cost, ns.
	C int64 `json:"c_ns"`
	// O is the smoothed measured probe+RTT overhead, ns.
	O int64 `json:"o_ns"`
	// Gain is R·C − O in ns: the paper's formula-3 value that forced
	// the transition (≤ 0 on BYPASS; 0 on READMIT, which is taken on
	// probation, not on measurement).
	Gain float64 `json:"gain_ns"`
	// Probes and Hits are the window counters behind R.
	Probes int64 `json:"probes"`
	Hits   int64 `json:"hits"`
}

// governor states.
const (
	govAdmitted int32 = iota
	govBypassed
)

// governor holds one segment's admission state. Window counters are
// plain atomics updated from every connection goroutine; transitions
// (evaluate, readmit, flush) serialize on mu. Counter zeroing at a
// window boundary is not atomic with concurrent adds, so a handful of
// samples can slip between windows — the policy is statistical and
// tolerates that.
type governor struct {
	cfg GovernorConfig

	state atomic.Int32

	// Window accumulators.
	winProbes atomic.Int64
	winHits   atomic.Int64
	oSum      atomic.Int64 // probe+RTT ns within window
	cSum      atomic.Int64 // client-reported C ns within window
	cCnt      atomic.Int64

	// Smoothed across windows (survive window resets; cEWMA also
	// survives bypass, so readmission remembers what the segment
	// claimed to cost).
	cEWMA atomic.Int64
	oEWMA atomic.Int64
	rPPM  atomic.Int64 // last evaluated R, parts per million

	// bypassSince counts requests answered with FlagBypass since the
	// flip; bypassTotal is the lifetime count.
	bypassSince atomic.Int64
	bypassTotal atomic.Int64

	mu sync.Mutex
}

func newGovernor(cfg GovernorConfig) *governor {
	return &governor{cfg: cfg}
}

// seedPrior installs the compile-time admission prior on a cold
// governor and returns the initial-state decision to ledger, if any.
// With a prior, the smoothed estimates start from R̂, C and O instead
// of zero — a later evaluate folds live samples into them exactly as it
// folds a second window into a first. Under ColdProbation a segment
// whose prior gain is not positive (or that has no prior at all) starts
// bypassed and earns admission through the normal probation readmit.
func (g *governor) seedPrior(seg string, p AdmitPrior, ok bool) *Decision {
	if g.cfg.Window < 0 {
		return nil
	}
	if ok {
		g.rPPM.Store(int64(p.R * 1e6))
		g.cEWMA.Store(p.CNS)
		g.oEWMA.Store(p.ONS)
	}
	if g.cfg.ColdProbation && (!ok || p.Gain() <= 0) {
		g.state.Store(govBypassed)
		g.bypassSince.Store(0)
		return &Decision{Segment: seg, State: "BYPASS",
			R: p.R, C: p.CNS, O: p.ONS, Gain: p.Gain()}
	}
	if !ok {
		return nil
	}
	return &Decision{Segment: seg, State: "PRIOR",
		R: p.R, C: p.CNS, O: p.ONS, Gain: p.Gain()}
}

// bypassed reports whether the segment is currently bypassed.
func (g *governor) bypassed() bool { return g.state.Load() == govBypassed }

// ewma folds sample into the running estimate with weight 1/8.
func ewma(cur *atomic.Int64, sample int64) int64 {
	old := cur.Load()
	if old == 0 {
		cur.Store(sample)
		return sample
	}
	next := old + (sample-old)/8
	cur.Store(next)
	return next
}

// observeGet records one admitted GET: its table outcome and its
// measured overhead (server probe latency + client-reported RTT). It
// returns a Decision pointer when this observation closed a window and
// flipped the segment to BYPASS.
func (g *governor) observeGet(seg string, hit bool, overheadNS int64) *Decision {
	if g.cfg.Window < 0 {
		return nil
	}
	g.winHits.Add(b2i(hit))
	g.oSum.Add(overheadNS)
	if g.winProbes.Add(1) < int64(g.cfg.window()) {
		return nil
	}
	return g.evaluate(seg)
}

// observePut records a client-reported computation cost C.
func (g *governor) observePut(costNS int64) {
	if g.cfg.Window < 0 || costNS <= 0 {
		return
	}
	g.cSum.Add(costNS)
	g.cCnt.Add(1)
}

// observeBypass records one request answered with FlagBypass. When the
// probation runs out it readmits the segment — calling resetTab under
// the transition lock, before the state flips, so the first admitted
// probe sees a cold table and R is re-measured from scratch — and
// returns the READMIT decision.
func (g *governor) observeBypass(seg string, resetTab func()) *Decision {
	g.bypassTotal.Add(1)
	if g.bypassSince.Add(1) < int64(g.cfg.probation()) {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.state.Load() != govBypassed || g.bypassSince.Load() < int64(g.cfg.probation()) {
		return nil
	}
	resetTab()
	g.resetWindowLocked()
	g.bypassSince.Store(0)
	g.state.Store(govAdmitted)
	// The readmit window has zero observations by construction, so R
	// cannot be computed from it (0/0): report the last good / prior R
	// instead of letting a NaN into the ledger JSON.
	return &Decision{Segment: seg, State: "READMIT",
		R: float64(g.rPPM.Load()) / 1e6,
		C: g.cEWMA.Load(), O: g.oEWMA.Load()}
}

// evaluate closes a window: recompute R, C and O, fold them into the
// smoothed estimates, and apply formula 3. Called with the window
// counters at (or slightly past) the window size.
func (g *governor) evaluate(seg string) *Decision {
	g.mu.Lock()
	defer g.mu.Unlock()
	probes := g.winProbes.Load()
	if probes < int64(g.cfg.window()) || g.state.Load() != govAdmitted {
		// Another goroutine already evaluated this window.
		return nil
	}
	if probes == 0 {
		// Zero-observation window (a misconfigured or externally driven
		// evaluation): hits/probes would be NaN. Keep the last good /
		// prior R and decide nothing.
		return nil
	}
	hits := g.winHits.Load()
	r := float64(hits) / float64(probes)
	g.rPPM.Store(int64(r * 1e6))

	o := ewma(&g.oEWMA, g.oSum.Load()/probes)

	c := g.cEWMA.Load()
	if cnt := g.cCnt.Load(); cnt > 0 {
		c = ewma(&g.cEWMA, g.cSum.Load()/cnt)
	}

	g.resetWindowLocked()

	if c == 0 {
		// No client ever reported a cost: nothing to weigh the hits
		// with, so stay admitted rather than judge on a guess.
		return nil
	}
	gain := r*float64(c) - float64(o)
	if gain > 0 {
		return nil
	}
	g.state.Store(govBypassed)
	g.bypassSince.Store(0)
	return &Decision{Segment: seg, State: "BYPASS",
		R: r, C: c, O: o, Gain: gain, Probes: probes, Hits: hits}
}

// resetWindowLocked zeroes the window accumulators (mu held).
func (g *governor) resetWindowLocked() {
	g.winProbes.Store(0)
	g.winHits.Store(0)
	g.oSum.Store(0)
	g.cSum.Store(0)
	g.cCnt.Store(0)
}

// restoreState rehydrates the smoothed estimates and admission state
// from a snapshot, so a restarted node resumes governing with the C, O
// and R it had learned instead of re-measuring from zero. The window
// accumulators and the probation progress restart empty — they describe
// in-flight traffic, which a restart by definition has none of.
func (g *governor) restoreState(bypassed bool, rPPM, cNS, oNS, bypassTotal int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.resetWindowLocked()
	st := govAdmitted
	if bypassed {
		st = govBypassed
	}
	g.state.Store(st)
	g.bypassSince.Store(0)
	g.bypassTotal.Store(bypassTotal)
	g.cEWMA.Store(cNS)
	g.oEWMA.Store(oNS)
	g.rPPM.Store(rPPM)
}

// reset returns the governor to its initial admitted state (FLUSH op).
func (g *governor) reset() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.resetWindowLocked()
	g.state.Store(govAdmitted)
	g.bypassSince.Store(0)
	g.bypassTotal.Store(0)
	g.cEWMA.Store(0)
	g.oEWMA.Store(0)
	g.rPPM.Store(0)
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
