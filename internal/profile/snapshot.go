package profile

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"

	"compreuse/internal/reusetab"
)

// Snapshot is the serializable profiling artifact — the analogue of
// gprof's gmon.out in the paper's workflow, holding both the
// execution-frequency profile and the value-set profiles. A snapshot taken
// by one compiler invocation can drive the transformation in a later one
// (cmd/crc's -profile-out / -profile-in), exactly the offline
// profile-then-compile split the paper describes.
type Snapshot struct {
	// Program and OptLevel identify the configuration the profile was
	// taken under; a snapshot only applies to the same source at the same
	// O-level (node ids and measured cycles depend on both).
	Program  string  `json:"program"`
	OptLevel string  `json:"opt_level"`
	Args     []int64 `json:"args,omitempty"`
	// Freq is the per-node execution-frequency vector.
	Freq []int64 `json:"freq"`
	// Segments holds the value-set profiles keyed by segment name.
	Segments map[string]*SegSnapshot `json:"segments"`
}

// SegSnapshot is one segment's serialized profile.
type SegSnapshot struct {
	Name         string     `json:"name"`
	TableName    string     `json:"table"`
	N            int64      `json:"n"`
	Nds          int64      `json:"nds"`
	MeasuredC    float64    `json:"c_cycles"`
	Overhead     float64    `json:"o_cycles"`
	KeyBytes     int        `json:"key_bytes"`
	Census       []KeyEntry `json:"census,omitempty"`
	AccessCounts []int64    `json:"access_counts,omitempty"`
}

// KeyEntry is one census line with a hex-encoded key.
type KeyEntry struct {
	KeyHex string `json:"key"`
	Count  int64  `json:"count"`
	Rank   int    `json:"rank"`
}

// ToSnapshot packages profiles and a frequency vector.
func ToSnapshot(program, optLevel string, args []int64, freq []int64,
	profiles map[string]*SegProfile) *Snapshot {
	s := &Snapshot{
		Program:  program,
		OptLevel: optLevel,
		Args:     args,
		Freq:     freq,
		Segments: map[string]*SegSnapshot{},
	}
	for name, sp := range profiles {
		ss := &SegSnapshot{
			Name:         sp.Name,
			TableName:    sp.TableName,
			N:            sp.N,
			Nds:          sp.Nds,
			MeasuredC:    sp.MeasuredC,
			Overhead:     sp.Overhead,
			KeyBytes:     sp.KeyBytes,
			AccessCounts: sp.AccessCounts,
		}
		for _, kc := range sp.Census {
			ss.Census = append(ss.Census, KeyEntry{
				KeyHex: hex.EncodeToString([]byte(kc.Key)),
				Count:  kc.Count,
				Rank:   kc.Rank,
			})
		}
		s.Segments[name] = ss
	}
	return s
}

// Profiles reconstructs the in-memory profile map from a snapshot.
func (s *Snapshot) Profiles() (map[string]*SegProfile, error) {
	out := map[string]*SegProfile{}
	for name, ss := range s.Segments {
		sp := &SegProfile{
			Name:         ss.Name,
			TableName:    ss.TableName,
			N:            ss.N,
			Nds:          ss.Nds,
			MeasuredC:    ss.MeasuredC,
			Overhead:     ss.Overhead,
			KeyBytes:     ss.KeyBytes,
			AccessCounts: ss.AccessCounts,
		}
		for _, ke := range ss.Census {
			key, err := hex.DecodeString(ke.KeyHex)
			if err != nil {
				return nil, fmt.Errorf("profile snapshot: segment %s: bad key %q: %w",
					name, ke.KeyHex, err)
			}
			sp.Census = append(sp.Census, reusetab.KeyCount{
				Key: string(key), Count: ke.Count, Rank: ke.Rank,
			})
		}
		out[name] = sp
	}
	return out, nil
}

// Save writes the snapshot as indented JSON.
func (s *Snapshot) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// LoadSnapshot reads a snapshot produced by Save.
func LoadSnapshot(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("profile snapshot: %w", err)
	}
	if s.Segments == nil {
		s.Segments = map[string]*SegSnapshot{}
	}
	return &s, nil
}
