// Package profile drives the two profiling stages of the scheme (paper
// §2.1 and Fig. 1):
//
//   - execution-frequency profiling (the gprof/gcov stand-in): the VM
//     counts function entries, loop iterations and branch executions;
//     FrequencyFilter removes infrequently executed segments before the
//     costly value-set profiling;
//   - value-set profiling: candidate segments are wrapped in profile-mode
//     reuse regions (the same transformation as the final code generation,
//     including table merging) and the program runs on training input; the
//     tables take a census of distinct input sets, and the VM measures
//     each segment's true granularity C.
package profile

import (
	"fmt"

	"compreuse/internal/cost"
	"compreuse/internal/interp"
	"compreuse/internal/minic"
	"compreuse/internal/reusetab"
	"compreuse/internal/segment"
	"compreuse/internal/transform"
)

// SegProfile is the value-set profile of one candidate segment.
type SegProfile struct {
	// Name is the segment's stable name ("quan@func").
	Name string
	// N is the number of execution instances observed.
	N int64
	// Nds is the number of distinct input sets.
	Nds int64
	// MeasuredC is the measured granularity in cycles per instance.
	MeasuredC float64
	// Overhead is the modeled hashing overhead in cycles per instance.
	Overhead float64
	// TableName identifies the (possibly merged) table this segment used.
	TableName string
	// Census is the distinct-input census with per-key counts, in
	// first-seen order. For merged tables the census is shared.
	Census []reusetab.KeyCount
	// AccessCounts are probe counts per table entry rank (Figures 7/8).
	AccessCounts []int64
	// KeyBytes is the modeled input-set width.
	KeyBytes int
}

// ReuseRate is R = 1 − Nds/N (paper §2.1).
func (sp *SegProfile) ReuseRate() float64 {
	if sp.N == 0 {
		return 0
	}
	return 1 - float64(sp.Nds)/float64(sp.N)
}

// CostProfile converts to the cost package's Profile for the formulas.
func (sp *SegProfile) CostProfile() cost.Profile {
	return cost.Profile{C: sp.MeasuredC, O: sp.Overhead, N: sp.N, Nds: sp.Nds}
}

// Gain is the per-instance gain R·C − O (formula 2).
func (sp *SegProfile) Gain() float64 { return sp.CostProfile().Gain() }

// FrequencyFilter keeps the segments whose instance count in the
// frequency-profiling run reaches min (paper §2.1: "we filter out code
// segments which are executed infrequently").
func FrequencyFilter(cands []*segment.Segment, freq []int64, min int64) []*segment.Segment {
	var out []*segment.Segment
	for _, s := range cands {
		if s.FreqID < len(freq) && freq[s.FreqID] >= min {
			out = append(out, s)
		}
	}
	return out
}

// Collect wraps cands in profile-mode reuse regions (mutating prog), runs
// the program, and returns the per-segment profiles keyed by segment name.
// model must match the cost model the final decision targets, so that the
// measured C and the modeled O are commensurable.
func Collect(prog *minic.Program, cands []*segment.Segment, model *cost.Model,
	runOpts interp.Options) (map[string]*SegProfile, *interp.Result, error) {

	res := transform.Apply(prog, cands, transform.Options{})
	tabs := map[int]*reusetab.Table{}
	for _, ts := range res.Tables {
		tabs[ts.ID] = reusetab.New(ts.Config(reusetab.ModeProfile, 0, false))
	}
	runOpts.Tables = tabs
	runOpts.Model = model
	runRes, err := interp.Run(prog, runOpts)
	if err != nil {
		return nil, nil, fmt.Errorf("value-set profiling run: %w", err)
	}

	profiles := map[string]*SegProfile{}
	for _, ts := range res.Tables {
		tab := tabs[ts.ID]
		for _, seg := range ts.Segs {
			rr := res.Regions[seg]
			st := runRes.Segs[rr.ID()]
			sp := &SegProfile{
				Name:         seg.Name,
				TableName:    ts.Name,
				Nds:          int64(tab.SegDistinct(rr.SegBit)),
				Overhead:     float64(model.HashOverhead(seg.KeyBytes, seg.OutBytes)),
				Census:       tab.SegSortedCensus(rr.SegBit),
				AccessCounts: tab.AccessCounts(),
				KeyBytes:     seg.KeyBytes,
			}
			if st != nil {
				sp.N = st.Instances
				sp.MeasuredC = st.MeasuredC()
			}
			profiles[seg.Name] = sp
		}
	}
	return profiles, runRes, nil
}

// CollisionDeduction estimates, from a profiling census and an intended
// direct-addressed table size, the fraction of executions that will miss
// because a different key occupies their slot — the paper's §2.1: "during
// value-set profiling, we can count the hash collision rate for each value
// set and deduct the reuse rate accordingly. (In our experiments, only the
// program MPEG2 generates collisions.)"
//
// The estimate assigns each slot to its most frequent key (direct
// addressing with replacement converges toward keeping the hot key);
// executions of the other keys mapping there are counted as collision
// misses beyond their first.
func CollisionDeduction(census []reusetab.KeyCount, entries int) float64 {
	if entries <= 0 || len(census) == 0 {
		return 0
	}
	var total int64
	slotMax := map[int]int64{}
	slotSum := map[int]int64{}
	for _, kc := range census {
		total += kc.Count
		idx := reusetab.IndexOf(kc.Key, entries)
		slotSum[idx] += kc.Count
		if kc.Count > slotMax[idx] {
			slotMax[idx] = kc.Count
		}
	}
	if total == 0 {
		return 0
	}
	var collided int64
	for idx, sum := range slotSum {
		collided += sum - slotMax[idx]
	}
	return float64(collided) / float64(total)
}

// AdjustedReuseRate is the reuse rate after the collision deduction for a
// table of the given size.
func (sp *SegProfile) AdjustedReuseRate(entries int) float64 {
	r := sp.ReuseRate() - CollisionDeduction(sp.Census, entries)
	if r < 0 {
		return 0
	}
	return r
}

// Bucket is one histogram bar.
type Bucket struct {
	// Lo and Hi delimit the value range [Lo, Hi).
	Lo, Hi int64
	// Count is the total number of executions whose (first) input value
	// fell in the range.
	Count int64
	// Distinct is the number of distinct values in the range.
	Distinct int
}

// ValueHistogram buckets the census by the first 32-bit input value of
// each key — the paper's Figures 5, 6, 12 and 13 histogram input values.
// It returns nil when keys are not decodable as ints.
func ValueHistogram(census []reusetab.KeyCount, buckets int) []Bucket {
	if len(census) == 0 || buckets <= 0 {
		return nil
	}
	var minV, maxV int64
	first := true
	vals := make([]int64, 0, len(census))
	counts := make([]int64, 0, len(census))
	// One scratch buffer decodes every census key; a large census would
	// otherwise allocate a fresh int slice per key.
	var scratch []int32
	for _, kc := range census {
		ints, ok := reusetab.DecodeIntsInto(scratch[:0], kc.Key)
		if !ok || len(ints) == 0 {
			return nil
		}
		scratch = ints
		v := int64(ints[0])
		vals = append(vals, v)
		counts = append(counts, kc.Count)
		if first || v < minV {
			minV = v
		}
		if first || v > maxV {
			maxV = v
		}
		first = false
	}
	span := maxV - minV + 1
	width := (span + int64(buckets) - 1) / int64(buckets)
	if width == 0 {
		width = 1
	}
	out := make([]Bucket, buckets)
	for i := range out {
		out[i].Lo = minV + int64(i)*width
		out[i].Hi = out[i].Lo + width
	}
	for i, v := range vals {
		b := int((v - minV) / width)
		if b >= buckets {
			b = buckets - 1
		}
		out[b].Count += counts[i]
		out[b].Distinct++
	}
	return out
}

// RankHistogram buckets per-entry access counts by entry rank — the
// paper's Figures 7, 8 and 11 histogram accessed table entries / distinct
// input patterns.
func RankHistogram(access []int64, buckets int) []Bucket {
	if len(access) == 0 || buckets <= 0 {
		return nil
	}
	width := (len(access) + buckets - 1) / buckets
	if width == 0 {
		width = 1
	}
	n := (len(access) + width - 1) / width
	out := make([]Bucket, n)
	for i := range out {
		out[i].Lo = int64(i * width)
		out[i].Hi = int64((i + 1) * width)
	}
	for rank, c := range access {
		b := rank / width
		out[b].Count += c
		if c > 0 {
			out[b].Distinct++
		}
	}
	return out
}
