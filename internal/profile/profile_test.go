package profile

import (
	"strings"
	"testing"

	"compreuse/internal/callgraph"
	"compreuse/internal/cost"
	"compreuse/internal/dataflow"
	"compreuse/internal/interp"
	"compreuse/internal/minic"
	"compreuse/internal/pointer"
	"compreuse/internal/reusetab"
	"compreuse/internal/segment"
)

const quanProg = `
int power2[15] = {1,2,4,8,16,32,64,128,256,512,1024,2048,4096,8192,16384};
int quan(int val) {
    int i;
    for (i = 0; i < 15; i++)
        if (val < power2[i])
            break;
    return (i);
}
int main(void) {
    int s = 0;
    int v;
    for (v = 0; v < 1000; v++)
        s += quan(v & 127);
    return s;
}
`

func prepQuan(t *testing.T) (*minic.Program, *segment.Analysis) {
	t.Helper()
	prog, err := minic.Parse("q.c", quanProg)
	if err != nil {
		t.Fatal(err)
	}
	if err := minic.Check(prog); err != nil {
		t.Fatal(err)
	}
	pts := pointer.Analyze(prog)
	cg := callgraph.Build(prog, pts)
	eff := dataflow.ComputeEffects(prog, pts, cg)
	return prog, segment.Analyze(prog, pts, cg, eff, segment.Options{})
}

func TestCollectQuan(t *testing.T) {
	prog, an := prepQuan(t)
	var cands []*segment.Segment
	for _, s := range an.Segments {
		if s.Name == "quan@func" {
			cands = append(cands, s)
		}
	}
	profiles, _, err := Collect(prog, cands, cost.O0(), interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sp := profiles["quan@func"]
	if sp == nil {
		t.Fatal("no profile for quan@func")
	}
	if sp.N != 1000 {
		t.Fatalf("N = %d, want 1000", sp.N)
	}
	if sp.Nds != 128 {
		t.Fatalf("Nds = %d, want 128", sp.Nds)
	}
	r := sp.ReuseRate()
	if r < 0.87 || r > 0.88 {
		t.Fatalf("R = %v, want 0.872", r)
	}
	if sp.MeasuredC <= 0 || sp.Overhead <= 0 {
		t.Fatalf("C=%v O=%v", sp.MeasuredC, sp.Overhead)
	}
	if sp.MeasuredC <= sp.Overhead {
		t.Fatalf("quan's C (%v) should exceed O (%v)", sp.MeasuredC, sp.Overhead)
	}
	if !sp.CostProfile().Profitable() {
		t.Fatal("quan must be profitable at R=0.872")
	}
}

func TestFrequencyFilter(t *testing.T) {
	_, an := prepQuan(t)
	freq := make([]int64, 100000)
	var quanSeg *segment.Segment
	for _, s := range an.Segments {
		if s.Name == "quan@func" {
			quanSeg = s
		}
	}
	freq[quanSeg.FreqID] = 1000
	kept := FrequencyFilter([]*segment.Segment{quanSeg}, freq, 8)
	if len(kept) != 1 {
		t.Fatal("frequent segment filtered out")
	}
	freq[quanSeg.FreqID] = 3
	kept = FrequencyFilter([]*segment.Segment{quanSeg}, freq, 8)
	if len(kept) != 0 {
		t.Fatal("infrequent segment kept")
	}
}

func TestValueHistogram(t *testing.T) {
	census := []reusetab.KeyCount{
		{Key: string(reusetab.AppendInt(nil, 0)), Count: 10, Rank: 0},
		{Key: string(reusetab.AppendInt(nil, 5)), Count: 20, Rank: 1},
		{Key: string(reusetab.AppendInt(nil, 95)), Count: 5, Rank: 2},
	}
	h := ValueHistogram(census, 10)
	if len(h) != 10 {
		t.Fatalf("buckets = %d", len(h))
	}
	if h[0].Count != 30 || h[0].Distinct != 2 {
		t.Fatalf("bucket 0: %+v", h[0])
	}
	if h[9].Count != 5 || h[9].Distinct != 1 {
		t.Fatalf("bucket 9: %+v", h[9])
	}
	total := int64(0)
	for _, b := range h {
		total += b.Count
	}
	if total != 35 {
		t.Fatalf("histogram total %d, want 35", total)
	}
}

func TestValueHistogramNegativeValues(t *testing.T) {
	census := []reusetab.KeyCount{
		{Key: string(reusetab.AppendInt(nil, -50)), Count: 1},
		{Key: string(reusetab.AppendInt(nil, 50)), Count: 1},
	}
	h := ValueHistogram(census, 4)
	if h == nil {
		t.Fatal("nil histogram")
	}
	if h[0].Lo != -50 {
		t.Fatalf("first bucket lo = %d", h[0].Lo)
	}
}

func TestRankHistogram(t *testing.T) {
	access := []int64{100, 50, 25, 10, 5, 0, 0, 1}
	h := RankHistogram(access, 4)
	if len(h) != 4 {
		t.Fatalf("buckets = %d", len(h))
	}
	if h[0].Count != 150 || h[0].Distinct != 2 {
		t.Fatalf("bucket 0: %+v", h[0])
	}
	if h[3].Count != 1 || h[3].Distinct != 1 {
		t.Fatalf("bucket 3: %+v", h[3])
	}
}

func TestValueHistogramBadKeys(t *testing.T) {
	census := []reusetab.KeyCount{{Key: "abc", Count: 1}} // 3 bytes: not ints
	if h := ValueHistogram(census, 4); h != nil {
		t.Fatal("expected nil for undecodable keys")
	}
}

func TestCollisionDeduction(t *testing.T) {
	// Keys 3 and 11 collide modulo 8; key 3 runs 10 times, key 11 runs 4
	// times, key 5 runs 6 times alone. The dominant key per slot is kept:
	// deduction = 4 / 20.
	census := []reusetab.KeyCount{
		{Key: string(reusetab.AppendInt(nil, 3)), Count: 10},
		{Key: string(reusetab.AppendInt(nil, 11)), Count: 4},
		{Key: string(reusetab.AppendInt(nil, 5)), Count: 6},
	}
	got := CollisionDeduction(census, 8)
	if got != 0.2 {
		t.Fatalf("deduction = %v, want 0.2", got)
	}
	// A table with no congruent keys has no deduction.
	if d := CollisionDeduction(census, 16); d != 0 {
		t.Fatalf("deduction at 16 entries = %v, want 0", d)
	}
	// Degenerate inputs.
	if CollisionDeduction(nil, 8) != 0 || CollisionDeduction(census, 0) != 0 {
		t.Fatal("degenerate cases must be 0")
	}
}

func TestAdjustedReuseRate(t *testing.T) {
	sp := &SegProfile{
		N: 20, Nds: 3,
		Census: []reusetab.KeyCount{
			{Key: string(reusetab.AppendInt(nil, 3)), Count: 10},
			{Key: string(reusetab.AppendInt(nil, 11)), Count: 4},
			{Key: string(reusetab.AppendInt(nil, 5)), Count: 6},
		},
	}
	// R = 1 - 3/20 = 0.85; deduction at 8 entries = 0.2 -> 0.65.
	if got := sp.AdjustedReuseRate(8); got < 0.649 || got > 0.651 {
		t.Fatalf("adjusted R = %v, want 0.65", got)
	}
	if got := sp.AdjustedReuseRate(16); got < 0.849 || got > 0.851 {
		t.Fatalf("adjusted R = %v, want 0.85", got)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	sp := &SegProfile{
		Name: "k@func", TableName: "k@func", N: 100, Nds: 7,
		MeasuredC: 333.5, Overhead: 45, KeyBytes: 4,
		Census: []reusetab.KeyCount{
			{Key: string(reusetab.AppendInt(nil, 5)), Count: 60, Rank: 0},
			{Key: string(reusetab.AppendInt(nil, -9)), Count: 40, Rank: 1},
		},
		AccessCounts: []int64{60, 40},
	}
	snap := ToSnapshot("p.c", "O0", []int64{1, 2}, []int64{0, 3, 0}, map[string]*SegProfile{"k@func": sp})

	var buf strings.Builder
	if err := snap.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadSnapshot(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Program != "p.c" || back.OptLevel != "O0" || len(back.Freq) != 3 || back.Freq[1] != 3 {
		t.Fatalf("header lost: %+v", back)
	}
	profs, err := back.Profiles()
	if err != nil {
		t.Fatal(err)
	}
	got := profs["k@func"]
	if got == nil || got.N != 100 || got.Nds != 7 || got.MeasuredC != 333.5 {
		t.Fatalf("profile lost: %+v", got)
	}
	if len(got.Census) != 2 || got.Census[0].Count != 60 {
		t.Fatalf("census lost: %+v", got.Census)
	}
	vals := reusetab.DecodeInts(got.Census[1].Key)
	if vals == nil || vals[0] != -9 {
		t.Fatalf("binary key corrupted: %v", vals)
	}
	if got.ReuseRate() != sp.ReuseRate() {
		t.Fatal("derived quantities differ")
	}
}

func TestSnapshotBadInput(t *testing.T) {
	if _, err := LoadSnapshot(strings.NewReader("{not json")); err == nil {
		t.Fatal("expected decode error")
	}
	s, err := LoadSnapshot(strings.NewReader("{}"))
	if err != nil || s.Segments == nil {
		t.Fatalf("empty snapshot must normalize: %v %v", s, err)
	}
	bad := &Snapshot{Segments: map[string]*SegSnapshot{
		"x": {Census: []KeyEntry{{KeyHex: "zz"}}},
	}}
	if _, err := bad.Profiles(); err == nil {
		t.Fatal("expected hex error")
	}
}
