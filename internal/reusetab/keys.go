package reusetab

import "math"

// Key encoding. The hash key is composed by concatenating the bit patterns
// of the input values in a fixed order (paper §2.1). MiniC models int as a
// 32-bit C int and float as a C double, so ints contribute 4 bytes and
// floats 8 bytes, little-endian.

// AppendInt appends the 32-bit bit pattern of a MiniC int to key.
func AppendInt(key []byte, v int64) []byte {
	u := uint32(v)
	return append(key, byte(u), byte(u>>8), byte(u>>16), byte(u>>24))
}

// AppendFloat appends the 64-bit bit pattern of a MiniC float to key.
func AppendFloat(key []byte, v float64) []byte {
	u := math.Float64bits(v)
	return append(key,
		byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
		byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
}

// DecodeInts interprets a key as a sequence of 32-bit ints (the common
// all-int input case) for histogram rendering. It returns nil if the key
// length is not a multiple of 4. Each call allocates a fresh slice; the
// histogram renderers, which decode every census key in a tight loop,
// use DecodeIntsInto with one reused scratch buffer instead.
func DecodeInts(key string) []int32 {
	out, ok := DecodeIntsInto(make([]int32, 0, len(key)/4), key)
	if !ok {
		return nil
	}
	return out
}

// DecodeIntsInto appends the key's decoded 32-bit ints to dst and
// returns the extended slice, reusing dst's capacity — decoding a large
// census with one scratch buffer allocates only until the buffer reaches
// the widest key. ok is false (and dst is returned unchanged) when the
// key length is not a multiple of 4.
func DecodeIntsInto(dst []int32, key string) ([]int32, bool) {
	if len(key)%4 != 0 {
		return dst, false
	}
	for i := 0; i < len(key); i += 4 {
		b := key[i:]
		dst = append(dst, int32(uint32(b[0])|uint32(b[1])<<8|uint32(b[2])<<16|uint32(b[3])<<24))
	}
	return dst, true
}
