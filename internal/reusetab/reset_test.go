package reusetab

import (
	"fmt"
	"sync"
	"testing"
)

// fill drives n distinct keys through probe-then-record on segment 0.
func fill(t probeRecorder, n int) {
	for i := 0; i < n; i++ {
		key := AppendInt(nil, int64(i))
		if _, hit := t.Probe(0, key); !hit {
			t.Record(0, key, []uint64{uint64(i)})
		}
	}
}

type probeRecorder interface {
	Probe(seg int, key []byte) ([]uint64, bool)
	Record(seg int, key []byte, outs []uint64)
}

// tableConfigs covers the three storage modes of Table.
func tableConfigs() map[string]Config {
	base := Config{Segs: 1, KeyBytes: 8, OutWords: []int{1}, OutBytes: []int{8}}
	cfgs := map[string]Config{}
	for name, mut := range map[string]func(*Config){
		"optimal": func(c *Config) {},
		"direct":  func(c *Config) { c.Entries = 16 },
		"lru":     func(c *Config) { c.Entries = 16; c.LRU = true },
	} {
		c := base
		c.Name = name
		mut(&c)
		cfgs[name] = c
	}
	return cfgs
}

// TestTableReset fills each table mode past its capacity, resets it,
// and checks the table is indistinguishable from a fresh one: empty,
// zero stats, and the same behavior on a replayed workload.
func TestTableReset(t *testing.T) {
	for name, cfg := range tableConfigs() {
		t.Run(name, func(t *testing.T) {
			tab := New(cfg)
			fill(tab, 64)
			if tab.Resident() == 0 || tab.Distinct() != 64 {
				t.Fatalf("pre-reset: resident=%d distinct=%d", tab.Resident(), tab.Distinct())
			}

			tab.Reset()
			if got := tab.Resident(); got != 0 {
				t.Errorf("post-reset resident = %d", got)
			}
			if got := tab.Distinct(); got != 0 {
				t.Errorf("post-reset distinct = %d", got)
			}
			if st := tab.TotalStats(); st != (SegStats{}) {
				t.Errorf("post-reset stats = %+v", st)
			}
			if ac := tab.AccessCounts(); ac != nil {
				t.Errorf("post-reset access counts = %v", ac)
			}
			// Every previously recorded key must now miss.
			if _, hit := tab.Probe(0, AppendInt(nil, 63)); hit {
				t.Error("post-reset probe hit a stale entry")
			}

			// A replayed workload behaves exactly like on a fresh table.
			fresh := New(cfg)
			tab.Reset()
			fill(tab, 64)
			fill(fresh, 64)
			if a, b := tab.TotalStats(), fresh.TotalStats(); a != b {
				t.Errorf("replay after reset diverged: %+v vs fresh %+v", a, b)
			}
			if tab.Resident() != fresh.Resident() {
				t.Errorf("replay resident %d vs fresh %d", tab.Resident(), fresh.Resident())
			}
		})
	}
}

// TestTableResetProfile clears the profiling census too.
func TestTableResetProfile(t *testing.T) {
	cfg := tableConfigs()["optimal"]
	cfg.Mode = ModeProfile
	tab := New(cfg)
	for i := 0; i < 10; i++ {
		tab.Probe(0, AppendInt(nil, int64(i%5)))
	}
	if tab.Distinct() != 5 {
		t.Fatalf("census distinct = %d", tab.Distinct())
	}
	tab.Reset()
	if tab.Distinct() != 0 || len(tab.SortedCensus()) != 0 {
		t.Errorf("post-reset census: distinct=%d census=%v", tab.Distinct(), tab.SortedCensus())
	}
}

// TestShardedReset mirrors TestTableReset on the concurrent table.
func TestShardedReset(t *testing.T) {
	for name, cfg := range tableConfigs() {
		t.Run(name, func(t *testing.T) {
			tab := NewSharded(cfg, 4)
			fill(tab, 64)
			tab.Reset()
			if tab.Resident() != 0 || tab.Distinct() != 0 {
				t.Errorf("post-reset resident=%d distinct=%d", tab.Resident(), tab.Distinct())
			}
			if st := tab.TotalStats(); st != (SegStats{}) {
				t.Errorf("post-reset stats = %+v", st)
			}
			if _, hit := tab.Probe(0, AppendInt(nil, 1)); hit {
				t.Error("post-reset probe hit a stale entry")
			}
		})
	}
}

// TestShardedResetConcurrent hammers Probe/Record from many goroutines
// while another goroutine repeatedly resets; run under -race. The
// assertions are only sanity bounds — the point is the absence of
// races, deadlocks and panics.
func TestShardedResetConcurrent(t *testing.T) {
	cfg := Config{Name: "reset-hammer", Segs: 1, KeyBytes: 8,
		OutWords: []int{1}, OutBytes: []int{8}}
	tab := NewSharded(cfg, 8)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := AppendInt(nil, int64(i%128))
				if _, hit := tab.Probe(0, key); !hit {
					tab.Record(0, key, []uint64{uint64(i)})
				}
			}
		}(g)
	}
	for r := 0; r < 50; r++ {
		tab.Reset()
	}
	close(stop)
	wg.Wait()

	st := tab.TotalStats()
	if st.Probes < 0 || st.Hits > st.Probes {
		t.Errorf("inconsistent stats after concurrent resets: %+v", st)
	}
	if d := tab.Distinct(); d > 128 {
		t.Errorf("distinct %d exceeds key universe", d)
	}
}

func ExampleSharded_Reset() {
	tab := NewSharded(Config{Name: "ex", Segs: 1, KeyBytes: 8,
		OutWords: []int{1}, OutBytes: []int{8}}, 2)
	key := AppendInt(nil, 7)
	tab.Record(0, key, []uint64{42})
	_, hit := tab.Probe(0, key)
	fmt.Println("before reset, hit:", hit)
	tab.Reset()
	_, hit = tab.Probe(0, key)
	fmt.Println("after reset, hit:", hit)
	// Output:
	// before reset, hit: true
	// after reset, hit: false
}
