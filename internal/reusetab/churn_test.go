package reusetab

import (
	"fmt"
	"sync"
	"testing"
)

// These tests cover the Evictions counter (previously LRU churn was only
// inferable from Collisions) and extend the PR 2 bounded-Distinct suite
// with the concurrent-churn consistency regression.

func evictCfg(entries int, lru bool) Config {
	return Config{
		Name: "evict", Segs: 1, KeyBytes: 4,
		OutWords: []int{1}, OutBytes: []int{4},
		Entries: entries, LRU: lru,
	}
}

func TestLRUEvictionCounter(t *testing.T) {
	tab := New(evictCfg(4, true))
	for i := int64(0); i < 10; i++ {
		key := AppendInt(nil, i)
		if _, hit := tab.Probe(0, key); hit {
			t.Fatalf("key %d: unexpected hit", i)
		}
		tab.Record(0, key, []uint64{uint64(i)})
	}
	st := tab.TotalStats()
	if st.Evictions != 6 {
		t.Errorf("Evictions = %d, want 6 (10 distinct keys through 4 slots)", st.Evictions)
	}
	if tab.Resident() != 4 {
		t.Errorf("Resident = %d, want 4", tab.Resident())
	}
	if tab.Distinct() != 10 {
		t.Errorf("Distinct = %d, want 10", tab.Distinct())
	}
	// Re-recording a resident key updates in place: no eviction.
	tab.Record(0, AppendInt(nil, 9), []uint64{99})
	if got := tab.TotalStats().Evictions; got != 6 {
		t.Errorf("in-place update evicted: %d", got)
	}
}

func TestDirectAddressedEvictionCounter(t *testing.T) {
	tab := New(evictCfg(1, false)) // every distinct key maps to slot 0
	keys := []int64{1, 2, 3}
	for _, k := range keys {
		key := AppendInt(nil, k)
		tab.Probe(0, key)
		tab.Record(0, key, []uint64{uint64(k)})
	}
	st := tab.TotalStats()
	// First record fills the slot; the next two overwrite a different key.
	if st.Evictions != 2 {
		t.Errorf("Evictions = %d, want 2", st.Evictions)
	}
	if tab.Resident() != 1 {
		t.Errorf("Resident = %d, want 1", tab.Resident())
	}
	// Unbounded tables never evict.
	opt := New(evictCfg(0, false))
	for _, k := range keys {
		key := AppendInt(nil, k)
		opt.Probe(0, key)
		opt.Record(0, key, []uint64{uint64(k)})
	}
	if got := opt.TotalStats().Evictions; got != 0 {
		t.Errorf("unbounded table evicted %d times", got)
	}
	if opt.Resident() != 3 {
		t.Errorf("unbounded Resident = %d, want 3", opt.Resident())
	}
}

// TestShardedChurnConsistency hammers a bounded LRU Sharded from 8
// goroutines with far more distinct keys than capacity, then checks that
// Distinct() still reports the true N_ds and that the Evictions counter is
// consistent with the shard tables' own books — the bounded-Distinct
// regression of PR 2 extended to the new counter. Run under -race this is
// also the data-race check for the eviction plumbing.
func TestShardedChurnConsistency(t *testing.T) {
	const (
		workers  = 8
		keySpace = 512
		entries  = 32
		rounds   = 4000
	)
	s := NewSharded(evictCfg(entries, true), 4)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			x := seed*7919 + 1
			for i := 0; i < rounds; i++ {
				x = (x*75 + 74) % keySpace
				key := AppendInt(nil, x)
				if _, hit := s.Probe(0, key); !hit {
					s.Record(0, key, []uint64{uint64(x)})
				}
			}
		}(int64(w))
	}
	wg.Wait()

	// Every key the generator can emit was probed at least once.
	covered := map[int64]bool{}
	for w := 0; w < workers; w++ {
		x := int64(w)*7919 + 1
		for i := 0; i < rounds; i++ {
			x = (x*75 + 74) % keySpace
			covered[x] = true
		}
	}
	if got := s.Distinct(); got != len(covered) {
		t.Errorf("Distinct = %d, want %d (bounded tables must keep counting probed keys)", got, len(covered))
	}

	st := s.TotalStats()
	if st.Probes != workers*rounds {
		t.Errorf("Probes = %d, want %d", st.Probes, workers*rounds)
	}
	if st.Hits+st.Misses != st.Probes {
		t.Errorf("Hits(%d)+Misses(%d) != Probes(%d)", st.Hits, st.Misses, st.Probes)
	}
	if st.Evictions == 0 {
		t.Error("no evictions under churn (keySpace >> entries)")
	}
	if st.Evictions > st.Records {
		t.Errorf("Evictions(%d) > Records(%d)", st.Evictions, st.Records)
	}

	// The atomic Sharded counters must agree with the per-shard tables'
	// own (lock-protected) statistics once quiescent.
	var shardEv, shardRes int64
	capacity := 0
	for i := range s.shards {
		shardEv += s.shards[i].tab.TotalStats().Evictions
		shardRes += int64(s.shards[i].tab.Resident())
		capacity += s.shards[i].tab.Config().Entries
	}
	if st.Evictions != shardEv {
		t.Errorf("Sharded evictions %d != shard-table sum %d", st.Evictions, shardEv)
	}
	if int64(s.Resident()) != shardRes {
		t.Errorf("Sharded resident %d != shard-table sum %d", s.Resident(), shardRes)
	}
	if s.Resident() > capacity {
		t.Errorf("Resident %d exceeds capacity %d", s.Resident(), capacity)
	}
	// Every record either updated a resident key in place, filled a fresh
	// slot, or evicted: fresh fills equal final residency, so evictions
	// can never exceed records minus residency.
	if st.Evictions > st.Records-int64(s.Resident()) {
		t.Errorf("Evictions(%d) > Records(%d) - Resident(%d)", st.Evictions, st.Records, s.Resident())
	}
	if testing.Verbose() {
		fmt.Printf("churn: probes=%d hits=%d evictions=%d resident=%d distinct=%d\n",
			st.Probes, st.Hits, st.Evictions, s.Resident(), s.Distinct())
	}
}
