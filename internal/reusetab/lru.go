package reusetab

// LRUList is an intrusive doubly-linked list over the slot indices of a
// bounded LRU table, ordered most- to least-recently used. Together with
// the Table's key→slot map it turns the LRU probe and eviction paths into
// O(1) operations, replacing the O(entries) slot scans the table emulated
// the paper's hardware reuse buffers with (Table 5). The list stores links
// in two flat int slices (no per-node allocation); index -1 is the nil
// sentinel. The depmemo footprint tries reuse it for their leaf-arena
// space budgets.
type LRUList struct {
	head, tail int
	prev, next []int
}

// NewLRUList builds an empty list over slots [0, n).
func NewLRUList(n int) *LRUList {
	l := &LRUList{head: -1, tail: -1, prev: make([]int, n), next: make([]int, n)}
	for i := 0; i < n; i++ {
		l.prev[i] = -1
		l.next[i] = -1
	}
	return l
}

// PushFront links a not-yet-listed slot as the most recently used.
func (l *LRUList) PushFront(i int) {
	l.prev[i] = -1
	l.next[i] = l.head
	if l.head >= 0 {
		l.prev[l.head] = i
	}
	l.head = i
	if l.tail < 0 {
		l.tail = i
	}
}

// MoveToFront marks a listed slot as the most recently used.
func (l *LRUList) MoveToFront(i int) {
	if l.head == i {
		return
	}
	// Unlink.
	p, n := l.prev[i], l.next[i]
	if p >= 0 {
		l.next[p] = n
	}
	if n >= 0 {
		l.prev[n] = p
	}
	if l.tail == i {
		l.tail = p
	}
	// Relink at the head.
	l.prev[i] = -1
	l.next[i] = l.head
	if l.head >= 0 {
		l.prev[l.head] = i
	}
	l.head = i
}

// Remove unlinks a listed slot entirely (it is neither most nor least
// recently used afterwards; PushFront relists it). The depmemo trie uses
// this when a resident leaf is displaced by a conflicting record rather
// than by LRU eviction.
func (l *LRUList) Remove(i int) {
	p, n := l.prev[i], l.next[i]
	if p >= 0 {
		l.next[p] = n
	}
	if n >= 0 {
		l.prev[n] = p
	}
	if l.head == i {
		l.head = n
	}
	if l.tail == i {
		l.tail = p
	}
	l.prev[i] = -1
	l.next[i] = -1
}

// Back returns the least recently used slot, or -1 when the list is empty.
func (l *LRUList) Back() int { return l.tail }

// Reset unlinks every slot, returning the list to its freshly built
// state without reallocating the link slices.
func (l *LRUList) Reset() {
	l.head, l.tail = -1, -1
	for i := range l.prev {
		l.prev[i] = -1
		l.next[i] = -1
	}
}
