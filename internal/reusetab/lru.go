package reusetab

// lruList is an intrusive doubly-linked list over the slot indices of a
// bounded LRU table, ordered most- to least-recently used. Together with
// the Table's key→slot map it turns the LRU probe and eviction paths into
// O(1) operations, replacing the O(entries) slot scans the table emulated
// the paper's hardware reuse buffers with (Table 5). The list stores links
// in two flat int slices (no per-node allocation); index -1 is the nil
// sentinel.
type lruList struct {
	head, tail int
	prev, next []int
}

func newLRUList(n int) *lruList {
	l := &lruList{head: -1, tail: -1, prev: make([]int, n), next: make([]int, n)}
	for i := 0; i < n; i++ {
		l.prev[i] = -1
		l.next[i] = -1
	}
	return l
}

// pushFront links a not-yet-listed slot as the most recently used.
func (l *lruList) pushFront(i int) {
	l.prev[i] = -1
	l.next[i] = l.head
	if l.head >= 0 {
		l.prev[l.head] = i
	}
	l.head = i
	if l.tail < 0 {
		l.tail = i
	}
}

// moveToFront marks a listed slot as the most recently used.
func (l *lruList) moveToFront(i int) {
	if l.head == i {
		return
	}
	// Unlink.
	p, n := l.prev[i], l.next[i]
	if p >= 0 {
		l.next[p] = n
	}
	if n >= 0 {
		l.prev[n] = p
	}
	if l.tail == i {
		l.tail = p
	}
	// Relink at the head.
	l.prev[i] = -1
	l.next[i] = l.head
	if l.head >= 0 {
		l.prev[l.head] = i
	}
	l.head = i
}

// back returns the least recently used slot, or -1 when the list is empty.
func (l *lruList) back() int { return l.tail }

// reset unlinks every slot, returning the list to its freshly built
// state without reallocating the link slices.
func (l *lruList) reset() {
	l.head, l.tail = -1, -1
	for i := range l.prev {
		l.prev[i] = -1
		l.next[i] = -1
	}
}
