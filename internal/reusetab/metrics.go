package reusetab

import (
	"fmt"
	"time"

	"compreuse/internal/obs"
)

// Runtime metrics of the reuse tables. All metric updates are gated on
// obs.On() at the call site: with instrumentation disabled the probe and
// record hot paths pay exactly one atomic load. Counters aggregate over
// every live table (plain and sharded alike — Sharded delegates to Table
// inside the shard lock, so nothing is double-counted); per-table
// occupancy is exported as one labeled gauge per table name.
var (
	mProbes = obs.NewCounter("crc_probes_total",
		"reuse-table probes across all tables")
	mHits = obs.NewCounter("crc_probe_hits_total",
		"probes answered from a reuse table")
	mMisses = obs.NewCounter("crc_probe_misses_total",
		"probes that fell through to the computation")
	mCollisions = obs.NewCounter("crc_collisions_total",
		"probes lost to a different key holding the direct-addressed slot")
	mRecords = obs.NewCounter("crc_records_total",
		"outputs recorded into reuse tables")
	mEvictions = obs.NewCounter("crc_evictions_total",
		"resident entries displaced by LRU replacement or direct-addressed overwrite")
	mResident = obs.NewGauge("crc_resident_entries",
		"entries currently resident across live reuse tables")
	mProbeLatency = obs.NewHistogram("crc_probe_latency_ns",
		"reuse-table probe latency in nanoseconds", obs.LatencyBuckets)
	mRecordLatency = obs.NewHistogram("crc_record_latency_ns",
		"reuse-table record latency in nanoseconds", obs.LatencyBuckets)
	mKeyBytes = obs.NewHistogram("crc_key_bytes",
		"probed key size in bytes", obs.SizeBuckets)
)

// OccupancyGauge returns the labeled per-table occupancy gauge for a table
// name. Tables sharing a name (e.g. the per-shard tables of one Sharded)
// share the gauge; callers Set it to the full table's resident count.
func OccupancyGauge(name string) *obs.Gauge {
	return obs.NewGauge(fmt.Sprintf("crc_table_occupancy{table=%q}", name),
		"resident entries per reuse table")
}

// probeObserved wraps probe with latency/size/outcome instrumentation.
// Collision and distinct-key effects are recovered as before/after deltas
// of the table's own statistics, so the uninstrumented path stays free of
// metric branches.
func (t *Table) probeObserved(seg int, key []byte) ([]uint64, bool) {
	collBefore := t.stats[seg].Collisions
	start := time.Now()
	outs, hit := t.probe(seg, key)
	mProbeLatency.Observe(time.Since(start).Nanoseconds())
	mKeyBytes.Observe(int64(len(key)))
	mProbes.Inc()
	if hit {
		mHits.Inc()
	} else {
		mMisses.Inc()
	}
	if d := t.stats[seg].Collisions - collBefore; d > 0 {
		mCollisions.Add(d)
	}
	return outs, hit
}

// recordObserved wraps record with latency/eviction/occupancy
// instrumentation. ModeProfile records are no-ops and stay uncounted.
func (t *Table) recordObserved(seg int, key []byte, outs []uint64) {
	if t.cfg.Mode == ModeProfile {
		return
	}
	evBefore := t.stats[seg].Evictions
	resBefore := t.resident
	start := time.Now()
	t.record(seg, key, outs)
	mRecordLatency.Observe(time.Since(start).Nanoseconds())
	mRecords.Inc()
	if d := t.stats[seg].Evictions - evBefore; d > 0 {
		mEvictions.Add(d)
	}
	if d := t.resident - resBefore; d != 0 {
		mResident.Add(int64(d))
	}
	if t.occGauge != nil {
		t.occGauge.Set(int64(t.resident))
	}
}
