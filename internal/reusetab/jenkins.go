// Package reusetab implements the software reuse tables of Ding & Li
// (CGO 2004, §3.1): direct-addressed hash tables keyed by the concatenated
// bit patterns of a code segment's input variables, merged tables shared by
// several segments with identical inputs (§2.5, Table 2), and the
// limited-size LRU buffers used for the paper's hardware comparison
// (Table 5).
//
// Keys at most 32 bits wide index the table by simple modularization; wider
// keys are first reduced with Bob Jenkins's lookup2 hash (the paper's
// reference [11]). A direct-addressed collision replaces the resident entry
// with the new one, as in the paper.
package reusetab

// jenkinsMix is the 96-bit mix step of Bob Jenkins's lookup2 hash
// (Dr. Dobb's Journal, September 1997).
func jenkinsMix(a, b, c uint32) (uint32, uint32, uint32) {
	a -= b
	a -= c
	a ^= c >> 13
	b -= c
	b -= a
	b ^= a << 8
	c -= a
	c -= b
	c ^= b >> 13
	a -= b
	a -= c
	a ^= c >> 12
	b -= c
	b -= a
	b ^= a << 16
	c -= a
	c -= b
	c ^= b >> 5
	a -= b
	a -= c
	a ^= c >> 3
	b -= c
	b -= a
	b ^= a << 10
	c -= a
	c -= b
	c ^= b >> 15
	return a, b, c
}

// JenkinsHash is lookup2: it hashes key to 32 bits starting from seed.
// It processes the key 12 bytes at a time.
func JenkinsHash(key []byte, seed uint32) uint32 {
	a := uint32(0x9e3779b9) // the golden ratio
	b := uint32(0x9e3779b9)
	c := seed
	n := len(key)
	i := 0
	for ; n-i >= 12; i += 12 {
		a += word32(key[i:])
		b += word32(key[i+4:])
		c += word32(key[i+8:])
		a, b, c = jenkinsMix(a, b, c)
	}
	c += uint32(len(key))
	rest := key[i:]
	// The trailing-byte switch from the reference implementation;
	// byte 8 onward shift into c above bit 8 (c's low byte holds length).
	if len(rest) > 10 {
		c += uint32(rest[10]) << 24
	}
	if len(rest) > 9 {
		c += uint32(rest[9]) << 16
	}
	if len(rest) > 8 {
		c += uint32(rest[8]) << 8
	}
	if len(rest) > 7 {
		b += uint32(rest[7]) << 24
	}
	if len(rest) > 6 {
		b += uint32(rest[6]) << 16
	}
	if len(rest) > 5 {
		b += uint32(rest[5]) << 8
	}
	if len(rest) > 4 {
		b += uint32(rest[4])
	}
	if len(rest) > 3 {
		a += uint32(rest[3]) << 24
	}
	if len(rest) > 2 {
		a += uint32(rest[2]) << 16
	}
	if len(rest) > 1 {
		a += uint32(rest[1]) << 8
	}
	if len(rest) > 0 {
		a += uint32(rest[0])
	}
	_, _, c = jenkinsMix(a, b, c)
	return c
}

func word32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
