package reusetab

import (
	"testing"

	"compreuse/internal/obs"
)

// TestProbeInstrumentation checks that enabled instrumentation feeds the
// global counters, histograms and the per-table occupancy gauge, and that
// disabling stops the flow. Deltas are used throughout because the
// counters are process-global.
func TestProbeInstrumentation(t *testing.T) {
	defer obs.Disable()

	tab := New(Config{
		Name: "instr", Segs: 1, KeyBytes: 4,
		OutWords: []int{1}, OutBytes: []int{4},
		Entries: 2, LRU: true,
	})
	probes0 := mProbes.Value()
	hits0 := mHits.Value()
	ev0 := mEvictions.Value()
	lat0 := mProbeLatency.Count()
	key0 := mKeyBytes.Count()

	// Disabled: nothing moves (the key is outside the enabled loop's set).
	tab.Probe(0, AppendInt(nil, 1000))
	tab.Record(0, AppendInt(nil, 1000), []uint64{1})
	if mProbes.Value() != probes0 || mProbeLatency.Count() != lat0 {
		t.Fatal("disabled instrumentation still counted")
	}

	obs.Enable()
	for i := int64(0); i < 4; i++ {
		key := AppendInt(nil, i)
		if _, hit := tab.Probe(0, key); !hit {
			tab.Record(0, key, []uint64{uint64(i)})
		}
		tab.Probe(0, key) // immediate re-probe hits while key is hot
	}
	if got := mProbes.Value() - probes0; got != 8 {
		t.Errorf("probe counter delta = %d, want 8", got)
	}
	if got := mHits.Value() - hits0; got != 4 {
		t.Errorf("hit counter delta = %d, want 4", got)
	}
	if got := mEvictions.Value() - ev0; got != 3 {
		t.Errorf("eviction counter delta = %d, want 3 (5 keys through 2 LRU slots)", got)
	}
	if got := mProbeLatency.Count() - lat0; got != 8 {
		t.Errorf("latency samples = %d, want 8", got)
	}
	if got := mKeyBytes.Count() - key0; got != 8 {
		t.Errorf("key-size samples = %d, want 8", got)
	}
	if got := OccupancyGauge("instr").Value(); got != 2 {
		t.Errorf("occupancy gauge = %d, want 2", got)
	}
}

// TestShardedOccupancyGauge checks the sharded table maintains one
// whole-table gauge instead of per-shard clobbering.
func TestShardedOccupancyGauge(t *testing.T) {
	defer obs.Disable()
	obs.Enable()
	s := NewSharded(Config{
		Name: "instr_sharded", Segs: 1, KeyBytes: 4,
		OutWords: []int{1}, OutBytes: []int{4},
	}, 4)
	for i := int64(0); i < 40; i++ {
		key := AppendInt(nil, i*977)
		s.Probe(0, key)
		s.Record(0, key, []uint64{uint64(i)})
	}
	if got := OccupancyGauge("instr_sharded").Value(); got != 40 {
		t.Errorf("sharded occupancy gauge = %d, want 40", got)
	}
	if s.Resident() != 40 {
		t.Errorf("Resident = %d, want 40", s.Resident())
	}
}

// benchProbeTable builds a warm unbounded table: the hot path the
// disabled-overhead budget protects.
func benchProbeTable() (*Table, [][]byte) {
	tab := New(Config{
		Name: "bench", Segs: 1, KeyBytes: 4,
		OutWords: []int{1}, OutBytes: []int{4},
	})
	keys := make([][]byte, 256)
	for i := range keys {
		keys[i] = AppendInt(nil, int64(i))
		tab.Record(0, keys[i], []uint64{uint64(i)})
	}
	return tab, keys
}

// BenchmarkProbeDisabled is the PR 2-comparable probe hot path with
// instrumentation compiled in but disabled: the delta vs the seed is the
// single obs.On() load (see obs.TestDisabledCheckUnder2ns for the <2 ns
// assertion on that load).
func BenchmarkProbeDisabled(b *testing.B) {
	obs.Disable()
	tab, keys := benchProbeTable()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Probe(0, keys[i&255])
	}
}

// BenchmarkProbeEnabled prices the full instrumentation: two time.Now
// calls, three histogram observes' worth of atomics, and the counters.
func BenchmarkProbeEnabled(b *testing.B) {
	obs.Enable()
	defer obs.Disable()
	tab, keys := benchProbeTable()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Probe(0, keys[i&255])
	}
}
