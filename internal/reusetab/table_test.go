package reusetab

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func cfg1() Config {
	return Config{
		Name:     "t",
		Segs:     1,
		KeyBytes: 4,
		OutWords: []int{1},
		OutBytes: []int{4},
	}
}

func key32(v int64) []byte { return AppendInt(nil, v) }

func TestOptimalTableHitMiss(t *testing.T) {
	tab := New(cfg1())
	if _, hit := tab.Probe(0, key32(7)); hit {
		t.Fatal("hit on empty table")
	}
	tab.Record(0, key32(7), []uint64{42})
	outs, hit := tab.Probe(0, key32(7))
	if !hit || outs[0] != 42 {
		t.Fatalf("probe after record: hit=%v outs=%v", hit, outs)
	}
	if _, hit := tab.Probe(0, key32(8)); hit {
		t.Fatal("hit on unrecorded key")
	}
	st := tab.Stats(0)
	if st.Probes != 3 || st.Hits != 1 || st.Misses != 2 || st.Records != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if tab.Distinct() != 2 {
		t.Fatalf("distinct = %d, want 2", tab.Distinct())
	}
}

func TestOptimalTableOverwrite(t *testing.T) {
	tab := New(cfg1())
	tab.Record(0, key32(1), []uint64{10})
	tab.Record(0, key32(1), []uint64{11})
	outs, hit := tab.Probe(0, key32(1))
	if !hit || outs[0] != 11 {
		t.Fatalf("latest record must win: hit=%v outs=%v", hit, outs)
	}
}

func TestDirectAddressedCollision(t *testing.T) {
	c := cfg1()
	c.Entries = 8
	tab := New(c)
	// Keys 3 and 11 collide modulo 8 (key <= 32 bits indexes by value).
	tab.Record(0, key32(3), []uint64{100})
	if _, hit := tab.Probe(0, key32(11)); hit {
		t.Fatal("11 must not hit 3's entry")
	}
	if tab.Stats(0).Collisions != 1 {
		t.Fatalf("collisions = %d, want 1", tab.Stats(0).Collisions)
	}
	// Recording 11 replaces 3 (paper: replacement on collision).
	tab.Record(0, key32(11), []uint64{200})
	if _, hit := tab.Probe(0, key32(3)); hit {
		t.Fatal("3 must have been evicted")
	}
	outs, hit := tab.Probe(0, key32(11))
	if !hit || outs[0] != 200 {
		t.Fatalf("11 must hit after replacement: %v %v", hit, outs)
	}
}

func TestDirectAddressedModularization(t *testing.T) {
	// A 32-bit key indexes by value mod size; verify two congruent keys
	// land on the same slot via access counts.
	c := cfg1()
	c.Entries = 16
	tab := New(c)
	tab.Record(0, key32(5), []uint64{1})
	tab.Probe(0, key32(5))
	tab.Probe(0, key32(21)) // 21 mod 16 == 5
	acc := tab.AccessCounts()
	if acc[5] != 2 {
		t.Fatalf("slot 5 accesses = %d, want 2 (%v)", acc[5], acc)
	}
}

func TestWideKeyUsesJenkins(t *testing.T) {
	c := cfg1()
	c.KeyBytes = 16
	c.Entries = 64
	tab := New(c)
	var key []byte
	for i := 0; i < 4; i++ {
		key = AppendInt(key, int64(i*1000))
	}
	tab.Record(0, key, []uint64{7})
	outs, hit := tab.Probe(0, key)
	if !hit || outs[0] != 7 {
		t.Fatal("wide-key probe failed")
	}
}

func TestJenkinsMatchesLength(t *testing.T) {
	// Different lengths and contents should give different hashes almost
	// always; sanity-check determinism and spread.
	h1 := JenkinsHash([]byte("hello world, this is a key"), 0)
	h2 := JenkinsHash([]byte("hello world, this is a key"), 0)
	if h1 != h2 {
		t.Fatal("Jenkins hash not deterministic")
	}
	seen := map[uint32]bool{}
	buf := make([]byte, 13)
	for i := 0; i < 1000; i++ {
		buf[i%13]++
		seen[JenkinsHash(buf, 0)] = true
	}
	if len(seen) < 990 {
		t.Fatalf("poor hash spread: %d distinct of 1000", len(seen))
	}
}

func TestLRUEviction(t *testing.T) {
	c := cfg1()
	c.Entries = 2
	c.LRU = true
	tab := New(c)
	tab.Record(0, key32(1), []uint64{1})
	tab.Record(0, key32(2), []uint64{2})
	tab.Probe(0, key32(1)) // 1 is now more recent than 2
	tab.Record(0, key32(3), []uint64{3})
	if _, hit := tab.Probe(0, key32(2)); hit {
		t.Fatal("2 should have been evicted (LRU)")
	}
	if _, hit := tab.Probe(0, key32(1)); !hit {
		t.Fatal("1 should be resident")
	}
	if _, hit := tab.Probe(0, key32(3)); !hit {
		t.Fatal("3 should be resident")
	}
}

func TestLRUUpdateInPlace(t *testing.T) {
	c := cfg1()
	c.Entries = 2
	c.LRU = true
	tab := New(c)
	tab.Record(0, key32(1), []uint64{1})
	tab.Record(0, key32(1), []uint64{9})
	outs, hit := tab.Probe(0, key32(1))
	if !hit || outs[0] != 9 {
		t.Fatalf("update in place failed: %v %v", hit, outs)
	}
}

func TestMergedTableBitVector(t *testing.T) {
	c := Config{
		Name:     "merged",
		Segs:     3,
		KeyBytes: 8,
		OutWords: []int{1, 2, 1},
		OutBytes: []int{4, 8, 4},
	}
	tab := New(c)
	key := AppendInt(AppendInt(nil, 5), 6)
	tab.Record(0, key, []uint64{10})
	// Segment 1 must miss on the same key: its valid bit is clear.
	if _, hit := tab.Probe(1, key); hit {
		t.Fatal("segment 1 must miss before its own record")
	}
	if _, hit := tab.Probe(0, key); !hit {
		t.Fatal("segment 0 must hit")
	}
	tab.Record(1, key, []uint64{20, 21})
	outs, hit := tab.Probe(1, key)
	if !hit || outs[0] != 20 || outs[1] != 21 {
		t.Fatalf("segment 1 outputs: %v %v", hit, outs)
	}
	// Segment 2 still misses.
	if _, hit := tab.Probe(2, key); hit {
		t.Fatal("segment 2 must miss")
	}
}

func TestMergedSizeIncludesBitVector(t *testing.T) {
	c := Config{
		Name: "m", Segs: 2, KeyBytes: 4,
		OutWords: []int{1, 1}, OutBytes: []int{4, 4},
		Entries: 10,
	}
	tab := New(c)
	if got := tab.EntryBytes(); got != 4+4+4+8 {
		t.Fatalf("entry bytes = %d, want 20", got)
	}
	if got := tab.SizeBytes(); got != 200 {
		t.Fatalf("size = %d, want 200", got)
	}
}

func TestProfileModeCensus(t *testing.T) {
	c := cfg1()
	c.Mode = ModeProfile
	tab := New(c)
	seq := []int64{1, 2, 1, 1, 3, 2, 1}
	for _, v := range seq {
		if _, hit := tab.Probe(0, key32(v)); hit {
			t.Fatal("profile mode must never hit")
		}
		tab.Record(0, key32(v), []uint64{uint64(v * 10)})
	}
	if tab.Distinct() != 3 {
		t.Fatalf("distinct = %d, want 3", tab.Distinct())
	}
	cen := tab.SortedCensus()
	if len(cen) != 3 {
		t.Fatalf("census size %d", len(cen))
	}
	if cen[0].Count != 4 || cen[1].Count != 2 || cen[2].Count != 1 {
		t.Fatalf("census counts: %+v", cen)
	}
	if cen[0].Rank != 0 || cen[1].Rank != 1 || cen[2].Rank != 2 {
		t.Fatalf("census ranks: %+v", cen)
	}
	st := tab.Stats(0)
	if st.Probes != 7 || st.Hits != 0 {
		t.Fatalf("profile stats: %+v", st)
	}
}

func TestKeyEncodingRoundTrip(t *testing.T) {
	vals := []int64{0, 1, -1, 1 << 20, -(1 << 20), 2147483647, -2147483648}
	var key []byte
	for _, v := range vals {
		key = AppendInt(key, v)
	}
	dec := DecodeInts(string(key))
	if len(dec) != len(vals) {
		t.Fatalf("decoded %d values", len(dec))
	}
	for i, v := range vals {
		if int64(dec[i]) != v {
			t.Errorf("value %d: got %d, want %d", i, dec[i], v)
		}
	}
}

func TestKeyEncodingProperty(t *testing.T) {
	// Distinct int32 pairs produce distinct keys; equal pairs equal keys.
	f := func(a, b int32) bool {
		k1 := string(AppendInt(nil, int64(a)))
		k2 := string(AppendInt(nil, int64(b)))
		return (k1 == k2) == (a == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloatKeyEncodingProperty(t *testing.T) {
	f := func(a, b float64) bool {
		k1 := string(AppendFloat(nil, a))
		k2 := string(AppendFloat(nil, b))
		// Bit-pattern equality, so NaN != NaN is fine (distinct bits equal).
		return (k1 == k2) == (a == b || (a != a && b != b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTableProperty_RecordThenProbeHits(t *testing.T) {
	// Property: in optimal mode, any recorded (key, out) is retrievable.
	f := func(keys []int32, outs []uint32) bool {
		tab := New(cfg1())
		n := len(keys)
		if len(outs) < n {
			n = len(outs)
		}
		want := map[int32]uint64{}
		for i := 0; i < n; i++ {
			tab.Record(0, key32(int64(keys[i])), []uint64{uint64(outs[i])})
			want[keys[i]] = uint64(outs[i])
		}
		for k, v := range want {
			got, hit := tab.Probe(0, key32(int64(k)))
			if !hit || got[0] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bad config")
		}
	}()
	New(Config{Name: "bad", Segs: 2, OutWords: []int{1}, OutBytes: []int{4, 4}})
}

func TestIndexOfNonPositiveEntries(t *testing.T) {
	// A degenerate table has one conceptual slot; IndexOf must not divide
	// by zero (it used to panic for entries <= 0).
	for _, entries := range []int{0, -1, -100} {
		if got := IndexOf("abcd", entries); got != 0 {
			t.Fatalf("IndexOf(_, %d) = %d, want 0", entries, got)
		}
		if got := IndexOf(string(key32(7)), entries); got != 0 {
			t.Fatalf("IndexOf(key32, %d) = %d, want 0", entries, got)
		}
	}
}

// TestBoundedTableDistinct is the regression test for Distinct() returning
// 0 on bounded tables: both replacement policies must report the number of
// distinct keys ever probed (the paper's N_ds), even after eviction.
func TestBoundedTableDistinct(t *testing.T) {
	for _, lru := range []bool{false, true} {
		c := cfg1()
		c.Entries = 4
		c.LRU = lru
		tab := New(c)
		// 10 distinct keys, each probed 3 times, through a 4-entry table:
		// far more distinct keys than capacity.
		for round := 0; round < 3; round++ {
			for k := int64(0); k < 10; k++ {
				if _, hit := tab.Probe(0, key32(k)); !hit {
					tab.Record(0, key32(k), []uint64{uint64(k)})
				}
			}
		}
		if got := tab.Distinct(); got != 10 {
			t.Errorf("LRU=%v: Distinct() = %d, want 10", lru, got)
		}
		st := tab.Stats(0)
		if st.Probes != 30 {
			t.Errorf("LRU=%v: probes = %d, want 30", lru, st.Probes)
		}
	}
}

// referenceLRUVictim reimplements the historical O(n) eviction scan:
// first free slot, else the lowest-indexed entry with the oldest lastUse.
func referenceLRUVictim(slots []entry) int {
	victim := -1
	var oldest int64 = 1<<63 - 1
	for i := range slots {
		if !slots[i].used {
			return i
		}
		if slots[i].lastUse < oldest {
			oldest = slots[i].lastUse
			victim = i
		}
	}
	return victim
}

// TestLRUMatchesReferenceScan drives a randomized probe-then-record
// workload (the shape the VM and MemoTable generate: every Record is
// preceded by its Probe) through the O(1) LRU and checks each insertion
// picks exactly the slot the historical O(n) timestamp scan would have.
func TestLRUMatchesReferenceScan(t *testing.T) {
	c := cfg1()
	c.Entries = 8
	c.LRU = true
	tab := New(c)
	rng := rand.New(rand.NewSource(7))
	for op := 0; op < 4000; op++ {
		k := key32(int64(rng.Intn(40)))
		if _, hit := tab.Probe(0, k); !hit {
			want := referenceLRUVictim(tab.slots)
			tab.Record(0, k, []uint64{uint64(op)})
			got := tab.lruIdx[string(k)]
			if got != want {
				t.Fatalf("op %d: O(1) LRU placed key in slot %d, reference scan wants %d", op, got, want)
			}
		}
	}
	// The resident set is exactly the keys the index maps.
	if len(tab.lruIdx) != c.Entries {
		t.Fatalf("resident keys = %d, want %d", len(tab.lruIdx), c.Entries)
	}
	for k, i := range tab.lruIdx {
		if string(tab.slots[i].key) != k {
			t.Fatalf("slot %d holds %q, index says %q", i, tab.slots[i].key, k)
		}
	}
}
