package reusetab

import (
	"math/rand"
	"sync"
	"testing"
)

func TestShardedShardCountRounding(t *testing.T) {
	cases := []struct {
		req, entries, want int
	}{
		{0, 0, 1},
		{1, 0, 1},
		{3, 0, 4},
		{8, 0, 8},
		{9, 0, 16},
		// Bounded tables clamp so every shard holds at least one entry.
		{8, 2, 2},
		{8, 1, 1},
		{4, 6, 4},
	}
	for _, c := range cases {
		cfg := cfg1()
		cfg.Entries = c.entries
		s := NewSharded(cfg, c.req)
		if s.Shards() != c.want {
			t.Errorf("NewSharded(entries=%d, %d shards) = %d stripes, want %d",
				c.entries, c.req, s.Shards(), c.want)
		}
	}
}

func TestShardedRejectsProfileMode(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for ModeProfile")
		}
	}()
	cfg := cfg1()
	cfg.Mode = ModeProfile
	NewSharded(cfg, 4)
}

// TestShardedMatchesSingleTableUnbounded drives one deterministic op
// sequence through a plain Table and an 8-way Sharded table in optimal
// (unbounded) mode. Every key lives in exactly one shard, so per-op
// results and the aggregate statistics must agree exactly.
func TestShardedMatchesSingleTableUnbounded(t *testing.T) {
	single := New(cfg1())
	sharded := NewSharded(cfg1(), 8)
	rng := rand.New(rand.NewSource(42))
	for op := 0; op < 5000; op++ {
		k := key32(int64(rng.Intn(300)))
		if rng.Intn(2) == 0 {
			o1, h1 := single.Probe(0, k)
			o2, h2 := sharded.Probe(0, k)
			if h1 != h2 {
				t.Fatalf("op %d: probe hit mismatch: single=%v sharded=%v", op, h1, h2)
			}
			if h1 && o1[0] != o2[0] {
				t.Fatalf("op %d: probe value mismatch: %d vs %d", op, o1[0], o2[0])
			}
		} else {
			v := []uint64{uint64(op)}
			single.Record(0, k, v)
			sharded.Record(0, k, v)
		}
	}
	ss, sh := single.Stats(0), sharded.Stats(0)
	if ss != sh {
		t.Fatalf("stats diverged: single=%+v sharded=%+v", ss, sh)
	}
	if single.Distinct() != sharded.Distinct() {
		t.Fatalf("distinct diverged: %d vs %d", single.Distinct(), sharded.Distinct())
	}
}

func TestShardedBoundedCapacitySplit(t *testing.T) {
	cfg := cfg1()
	cfg.Entries = 16
	s := NewSharded(cfg, 4)
	if s.Shards() != 4 {
		t.Fatalf("shards = %d", s.Shards())
	}
	// Total modeled capacity must cover the requested entry count.
	for i := 0; i < 64; i++ {
		s.Record(0, key32(int64(i)), []uint64{uint64(i)})
	}
	if got, want := s.SizeBytes(), 16*s.EntryBytes(); got != want {
		t.Fatalf("size = %d, want %d", got, want)
	}
	// A recorded key probes back through the same shard.
	s.Record(0, key32(1000), []uint64{77})
	outs, hit := s.Probe(0, key32(1000))
	if !hit || outs[0] != 77 {
		t.Fatalf("probe after record: %v %v", hit, outs)
	}
}

func TestShardedMergedSegments(t *testing.T) {
	cfg := Config{
		Name: "m", Segs: 2, KeyBytes: 8,
		OutWords: []int{1, 1}, OutBytes: []int{4, 4},
	}
	s := NewSharded(cfg, 4)
	key := AppendInt(AppendInt(nil, 3), 9)
	s.Record(0, key, []uint64{5})
	if _, hit := s.Probe(1, key); hit {
		t.Fatal("segment 1 must miss before its own record")
	}
	if outs, hit := s.Probe(0, key); !hit || outs[0] != 5 {
		t.Fatal("segment 0 must hit")
	}
	if st := s.Stats(1); st.Probes != 1 || st.Misses != 1 {
		t.Fatalf("segment 1 stats: %+v", st)
	}
	if st := s.Stats(0); st.Probes != 1 || st.Hits != 1 || st.Records != 1 {
		t.Fatalf("segment 0 stats: %+v", st)
	}
}

// TestShardedConcurrent exercises parallel probe/record churn with
// overlapping keys while other goroutines continuously read the atomic
// statistics; run under -race this is the no-torn-stats regression test.
func TestShardedConcurrent(t *testing.T) {
	for _, cfg := range []Config{
		cfg1(), // unbounded
		{Name: "lru", Segs: 1, KeyBytes: 4, OutWords: []int{1}, OutBytes: []int{4}, Entries: 32, LRU: true},
		{Name: "dir", Segs: 1, KeyBytes: 4, OutWords: []int{1}, OutBytes: []int{4}, Entries: 64},
	} {
		s := NewSharded(cfg, 8)
		var workersWG, readersWG sync.WaitGroup
		stop := make(chan struct{})
		// Stats readers poll until the workers are done.
		for r := 0; r < 2; r++ {
			readersWG.Add(1)
			go func() {
				defer readersWG.Done()
				for {
					select {
					case <-stop:
						return
					default:
						_ = s.Stats(0)
						_ = s.TotalStats()
						_ = s.Distinct()
					}
				}
			}()
		}
		// Probe/record workers over an overlapping key space (bigger than
		// the bounded capacities, so LRU mode churns through evictions).
		const workers, ops, keys = 8, 2000, 100
		workersWG.Add(workers)
		for w := 0; w < workers; w++ {
			go func(w int) {
				defer workersWG.Done()
				rng := rand.New(rand.NewSource(int64(w)))
				for i := 0; i < ops; i++ {
					k := key32(int64(rng.Intn(keys)))
					if outs, hit := s.Probe(0, k); hit {
						if outs[0] >= keys {
							t.Errorf("%s: impossible value %d", cfg.Name, outs[0])
							return
						}
					} else {
						s.Record(0, k, []uint64{uint64(rng.Intn(keys))})
					}
				}
			}(w)
		}
		workersWG.Wait()
		close(stop)
		readersWG.Wait()
		st := s.Stats(0)
		if st.Probes != workers*ops {
			t.Fatalf("%s: probes = %d, want %d", cfg.Name, st.Probes, workers*ops)
		}
		if st.Hits+st.Misses != st.Probes {
			t.Fatalf("%s: hits+misses = %d, want %d", cfg.Name, st.Hits+st.Misses, st.Probes)
		}
		if d := s.Distinct(); d <= 0 || d > keys {
			t.Fatalf("%s: distinct = %d, want 1..%d", cfg.Name, d, keys)
		}
	}
}
