package reusetab

import (
	"bytes"
	"fmt"
	"sort"

	"compreuse/internal/obs"
)

// Mode selects how a Table behaves.
type Mode int

// Table modes.
const (
	// ModeReuse is the production behavior: probe, then record on miss.
	ModeReuse Mode = iota
	// ModeProfile is value-set profiling (paper §2.1): every probe misses
	// so the segment body always runs, and the table records the census of
	// distinct input sets, per-key frequencies, and would-be collisions.
	ModeProfile
)

// Config describes one reuse table. A merged table (paper §2.5) serves
// Segs > 1 code segments that share an identical input set; each segment
// owns one valid bit and its own output columns.
type Config struct {
	// Name labels the table in diagnostics, e.g. "quan".
	Name string
	// Segs is the number of merged code segments (1 for an unmerged table).
	Segs int
	// KeyBytes is the modeled C byte width of one input set; the paper's
	// "hash key not greater than 32 bits" fast path applies when
	// KeyBytes <= 4.
	KeyBytes int
	// OutWords is the per-segment output width in VM words.
	OutWords []int
	// OutBytes is the per-segment modeled output width in C bytes.
	OutBytes []int
	// Entries is the direct-addressed table size in entries. Entries <= 0
	// means "optimal": the table grows to hold every distinct input
	// (a map), which is the configuration the paper uses for its headline
	// numbers (hash table sized from profiling).
	Entries int
	// LRU selects a fully-associative buffer with least-recently-used
	// replacement instead of direct addressing; used to emulate the
	// hardware reuse buffers of Table 5.
	LRU bool
	// Mode selects reuse or profiling behavior.
	Mode Mode
}

// SegStats accumulates per-segment counters.
type SegStats struct {
	Probes     int64
	Hits       int64
	Misses     int64
	Records    int64
	Collisions int64 // probes that missed because a different key held the slot
	// Evictions counts resident entries displaced by this segment's
	// records: LRU replacement of the least-recently-used entry, or a
	// direct-addressed overwrite of a different key's entry (§3.1's
	// replace-on-collision). Unbounded tables never evict.
	Evictions int64
}

// HitRatio returns Hits/Probes, or 0 when never probed.
func (s SegStats) HitRatio() float64 {
	if s.Probes == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Probes)
}

type entry struct {
	used bool
	// key holds the entry's input pattern as bytes (not a string) so a
	// replacement can reuse the buffer's capacity instead of allocating:
	// the probe/record hot path must stay at zero allocations in steady
	// state (formula 3 counts every nanosecond of overhead O against the
	// segment's profitability).
	key     []byte
	valid   uint64
	outs    [][]uint64
	lastUse int64
}

// reclaim repoints an entry at key, reusing the key buffer and the
// per-segment output-slice headers it already owns. The valid bits are
// cleared; stale words left in the output buffers are unreachable until
// a Record re-validates their segment.
func (e *entry) reclaim(key []byte, segs int, clock int64) {
	e.used = true
	e.key = append(e.key[:0], key...)
	e.valid = 0
	if cap(e.outs) < segs {
		e.outs = make([][]uint64, segs)
	} else {
		e.outs = e.outs[:segs]
	}
	e.lastUse = clock
}

// storeOuts copies outs into dst, reusing dst's capacity when it
// suffices. The copy (rather than retaining the caller's slice) keeps
// the table the sole owner of its stored words.
func storeOuts(dst, outs []uint64) []uint64 {
	if cap(dst) < len(outs) {
		dst = make([]uint64, len(outs))
	}
	dst = dst[:len(outs)]
	copy(dst, outs)
	return dst
}

// Table is one reuse table instance.
type Table struct {
	cfg   Config
	stats []SegStats
	clock int64
	// resident is the number of entries currently stored (distinct keys
	// for unbounded tables, occupied slots otherwise).
	resident int
	// occGauge, when non-nil, is the per-table occupancy gauge updated on
	// instrumented records. Sharded clears it on its per-shard tables and
	// maintains the whole-table gauge itself.
	occGauge *obs.Gauge

	// Direct-addressed or LRU storage.
	slots []entry
	// LRU bookkeeping: resident key → slot, the recency list, and the
	// next never-used slot (slots fill in index order before the first
	// eviction, matching the historical first-free-slot scan).
	lruIdx  map[string]int
	lruList *LRUList
	lruFree int
	// Optimal (unbounded) storage.
	byKey map[string]*entry

	// Profiling census: per-key execution counts (ModeProfile). census is
	// the union over merged segments; segCensus is per segment (a merged
	// table's members probe with their own dynamic key streams, so their
	// N_ds values differ).
	census    map[string]int64
	segCensus []map[string]int64
	// accessCounts counts probes per resident slot index for the
	// direct-addressed modes (Figures 7 and 8). In optimal mode the
	// index is the entry's insertion rank.
	accessCounts map[int]int64
	rank         map[string]int
}

// New creates a table from cfg. It panics on malformed configs (these are
// produced by the compiler, not end users).
func New(cfg Config) *Table {
	if cfg.Segs < 1 {
		panic("reusetab: Segs must be >= 1")
	}
	if len(cfg.OutWords) != cfg.Segs || len(cfg.OutBytes) != cfg.Segs {
		panic(fmt.Sprintf("reusetab %q: output specs (%d/%d) do not match Segs=%d",
			cfg.Name, len(cfg.OutWords), len(cfg.OutBytes), cfg.Segs))
	}
	if cfg.Segs > 64 {
		panic("reusetab: merged tables support at most 64 segments (one valid-bit word)")
	}
	t := &Table{
		cfg:          cfg,
		stats:        make([]SegStats, cfg.Segs),
		accessCounts: map[int]int64{},
		rank:         map[string]int{},
		occGauge:     OccupancyGauge(cfg.Name),
	}
	switch {
	case cfg.Mode == ModeProfile:
		t.census = map[string]int64{}
		t.segCensus = make([]map[string]int64, cfg.Segs)
		for i := range t.segCensus {
			t.segCensus[i] = map[string]int64{}
		}
	case cfg.Entries > 0:
		t.slots = make([]entry, cfg.Entries)
		if cfg.LRU {
			t.lruIdx = make(map[string]int, cfg.Entries)
			t.lruList = NewLRUList(cfg.Entries)
		}
	default:
		t.byKey = map[string]*entry{}
	}
	return t
}

// Config returns the table's configuration.
func (t *Table) Config() Config { return t.cfg }

// Stats returns the statistics for segment seg.
func (t *Table) Stats(seg int) SegStats { return t.stats[seg] }

// index maps a key to a direct-addressed slot.
func (t *Table) index(key []byte) int {
	return IndexOfBytes(key, len(t.slots))
}

// IndexOf maps a key to a slot in a direct-addressed table of the given
// entry count. Keys of at most 32 bits use the value itself modulo the
// table size; wider keys are first reduced with the Jenkins hash (§3.1).
// A non-positive entry count has a single conceptual slot: IndexOf
// returns 0 rather than dividing by zero.
func IndexOf(key string, entries int) int {
	if entries <= 0 {
		return 0
	}
	var h uint32
	if len(key) <= 4 {
		for i := len(key) - 1; i >= 0; i-- {
			h = h<<8 | uint32(key[i])
		}
	} else {
		h = JenkinsHash([]byte(key), 0)
	}
	return int(h % uint32(entries))
}

// IndexOfBytes is IndexOf over a byte-slice key. It is the hot-path
// variant: no string materialization, no allocation.
func IndexOfBytes(key []byte, entries int) int {
	if entries <= 0 {
		return 0
	}
	var h uint32
	if len(key) <= 4 {
		for i := len(key) - 1; i >= 0; i-- {
			h = h<<8 | uint32(key[i])
		}
	} else {
		h = JenkinsHash(key, 0)
	}
	return int(h % uint32(entries))
}

// OptimalEntries picks the table size the paper derives from value
// profiling: the smallest entry count, starting at the number of distinct
// input patterns, for which the profiled keys map injectively under the
// hash — growing geometrically up to maxFactor times the distinct count.
// When no size in range is collision-free (the paper observed this only
// for MPEG2), the best size tried is returned.
func OptimalEntries(keys []string, maxFactor float64) int {
	nds := len(keys)
	if nds == 0 {
		return 1
	}
	if maxFactor < 1 {
		maxFactor = 1
	}
	limit := int(float64(nds) * maxFactor)
	bestSize, bestColl := nds, nds+1
	used := make(map[int]struct{}, nds)
	for size := nds; size <= limit; size = grow(size) {
		clear(used)
		coll := 0
		for _, k := range keys {
			idx := IndexOf(k, size)
			if _, dup := used[idx]; dup {
				coll++
			} else {
				used[idx] = struct{}{}
			}
		}
		if coll < bestColl {
			bestColl, bestSize = coll, size
		}
		if coll == 0 {
			return size
		}
	}
	return bestSize
}

func grow(size int) int {
	next := size + size/8 + 1
	return next
}

// Probe looks key up for segment seg. On a hit it returns the stored
// output words. In ModeProfile, Probe always reports a miss and records
// the key in the census. When instrumentation is enabled (obs.Enable),
// the probe also feeds the latency/size histograms and outcome counters;
// disabled, the only added cost is the single obs.On() atomic load.
func (t *Table) Probe(seg int, key []byte) ([]uint64, bool) {
	if obs.On() {
		return t.probeObserved(seg, key)
	}
	return t.probe(seg, key)
}

// probe is the uninstrumented hot path. It allocates nothing in steady
// state: every map access spells the string conversion inline
// (m[string(key)]), which the compiler elides to a hash of the bytes; a
// string is only materialized when a first-seen key is inserted into the
// rank map. The returned slice is the table's own storage — it stays
// valid until the next Record for the same key and segment, which
// overwrites it in place (callers that retain hits across records, like
// the concurrent Sharded wrapper, must copy; the VM consumes hits
// immediately).
func (t *Table) probe(seg int, key []byte) ([]uint64, bool) {
	st := &t.stats[seg]
	st.Probes++
	t.clock++

	if t.cfg.Mode == ModeProfile {
		ks := string(key)
		t.census[ks]++
		t.segCensus[seg][ks]++
		if _, ok := t.rank[ks]; !ok {
			t.rank[ks] = len(t.rank)
		}
		t.accessCounts[t.rank[ks]]++
		return nil, false
	}

	// Track every probed key's first-seen rank in all modes, so
	// Distinct() reports the paper's N_ds for bounded tables too (it used
	// to stay 0 outside optimal/profile modes, which made every bounded
	// table look like reuse rate 1.0).
	if _, ok := t.rank[string(key)]; !ok {
		t.rank[string(key)] = len(t.rank)
	}

	bit := uint64(1) << uint(seg)
	switch {
	case t.byKey != nil:
		t.accessCounts[t.rank[string(key)]]++
		e, ok := t.byKey[string(key)]
		if !ok || e.valid&bit == 0 {
			st.Misses++
			return nil, false
		}
		st.Hits++
		return e.outs[seg], true

	case t.cfg.LRU:
		i, resident := t.lruIdx[string(key)]
		if !resident {
			st.Misses++
			return nil, false
		}
		e := &t.slots[i]
		e.lastUse = t.clock
		t.lruList.MoveToFront(i)
		t.accessCounts[i]++
		if e.valid&bit == 0 {
			st.Misses++
			return nil, false
		}
		st.Hits++
		return e.outs[seg], true

	default:
		i := t.index(key)
		t.accessCounts[i]++
		e := &t.slots[i]
		if !e.used {
			st.Misses++
			return nil, false
		}
		if !bytes.Equal(e.key, key) {
			st.Misses++
			st.Collisions++
			return nil, false
		}
		if e.valid&bit == 0 {
			st.Misses++
			return nil, false
		}
		st.Hits++
		return e.outs[seg], true
	}
}

// Record stores the outputs computed for key by segment seg. In
// ModeProfile it is a no-op (the census is taken in Probe). Like Probe,
// Record is instrumented only when obs.On().
func (t *Table) Record(seg int, key []byte, outs []uint64) {
	if obs.On() {
		t.recordObserved(seg, key, outs)
		return
	}
	t.record(seg, key, outs)
}

// record is the uninstrumented hot path. Like probe it allocates nothing
// in steady state: re-records of a resident key copy the outputs into
// the entry's existing buffers in place, and a direct-addressed or LRU
// replacement reclaims the victim entry's key and output buffers. Only
// genuinely new storage — a first-seen key's map insert, an unbounded
// table's new entry, a buffer growing past its capacity — allocates.
func (t *Table) record(seg int, key []byte, outs []uint64) {
	if t.cfg.Mode == ModeProfile {
		return
	}
	if len(outs) != t.cfg.OutWords[seg] {
		panic(fmt.Sprintf("reusetab %q: segment %d recorded %d words, want %d",
			t.cfg.Name, seg, len(outs), t.cfg.OutWords[seg]))
	}
	st := &t.stats[seg]
	st.Records++
	bit := uint64(1) << uint(seg)

	switch {
	case t.byKey != nil:
		e, ok := t.byKey[string(key)]
		if !ok {
			e = &entry{}
			e.reclaim(key, t.cfg.Segs, t.clock)
			t.byKey[string(key)] = e
			t.resident++
		}
		e.valid |= bit
		e.outs[seg] = storeOuts(e.outs[seg], outs)

	case t.cfg.LRU:
		// Update in place if resident.
		if i, resident := t.lruIdx[string(key)]; resident {
			e := &t.slots[i]
			e.valid |= bit
			e.outs[seg] = storeOuts(e.outs[seg], outs)
			e.lastUse = t.clock
			t.lruList.MoveToFront(i)
			return
		}
		// Otherwise claim the next never-used slot, or evict the least
		// recently used entry.
		var victim int
		if t.lruFree < len(t.slots) {
			victim = t.lruFree
			t.lruFree++
			t.lruList.PushFront(victim)
			t.resident++
		} else {
			victim = t.lruList.Back()
			delete(t.lruIdx, string(t.slots[victim].key))
			t.lruList.MoveToFront(victim)
			st.Evictions++
		}
		t.lruIdx[string(key)] = victim
		e := &t.slots[victim]
		e.reclaim(key, t.cfg.Segs, t.clock)
		e.valid = bit
		e.outs[seg] = storeOuts(e.outs[seg], outs)

	default:
		i := t.index(key)
		e := &t.slots[i]
		if !e.used || !bytes.Equal(e.key, key) {
			// Direct-addressed collision: replace the resident entry
			// (paper §3.1: "the previously recorded inputs and outputs in
			// the entry is replaced by the new inputs and outputs").
			if e.used {
				st.Evictions++
			} else {
				t.resident++
			}
			e.reclaim(key, t.cfg.Segs, t.clock)
		}
		e.valid |= bit
		e.outs[seg] = storeOuts(e.outs[seg], outs)
	}
}

// AppendEntries appends a copy of every entry valid for segment seg —
// key bytes and output words both copied out of table-owned storage —
// to keys and vals, returning the extended slices. It is the snapshot
// walk: the copies stay valid after the table mutates, so a caller
// (Sharded.Range) can release the table's lock before serializing them.
// ModeProfile tables have no stored entries and append nothing.
func (t *Table) AppendEntries(seg int, keys [][]byte, vals [][]uint64) ([][]byte, [][]uint64) {
	bit := uint64(1) << uint(seg)
	add := func(e *entry) {
		keys = append(keys, append([]byte(nil), e.key...))
		vals = append(vals, append([]uint64(nil), e.outs[seg]...))
	}
	switch {
	case t.byKey != nil:
		for _, e := range t.byKey {
			if e.valid&bit != 0 {
				add(e)
			}
		}
	default:
		for i := range t.slots {
			if e := &t.slots[i]; e.used && e.valid&bit != 0 {
				add(e)
			}
		}
	}
	return keys, vals
}

// Reset empties the table and zeroes its statistics without
// reallocating storage: slots are cleared in place, maps are cleared
// with their buckets retained, and the LRU recency list is unlinked.
// After Reset the table behaves exactly like a freshly built one — the
// remote tier's FLUSH operation and the admission governor's
// BYPASS→READMIT transition (which must re-measure the reuse rate R
// from a cold table) are both built on it.
func (t *Table) Reset() {
	for i := range t.stats {
		t.stats[i] = SegStats{}
	}
	t.clock = 0
	t.resident = 0
	for i := range t.slots {
		t.slots[i] = entry{}
	}
	if t.lruIdx != nil {
		clear(t.lruIdx)
		t.lruList.Reset()
		t.lruFree = 0
	}
	if t.byKey != nil {
		clear(t.byKey)
	}
	if t.census != nil {
		clear(t.census)
		for i := range t.segCensus {
			clear(t.segCensus[i])
		}
	}
	clear(t.accessCounts)
	clear(t.rank)
	if t.occGauge != nil && obs.On() {
		t.occGauge.Set(0)
	}
}

// Distinct returns the number of distinct input sets seen across all
// merged segments. In ModeProfile this is the union census size; in reuse
// modes — optimal, direct-addressed and LRU alike — it is the number of
// distinct keys ever probed, the paper's N_ds, even when the bounded
// storage itself no longer holds them.
func (t *Table) Distinct() int {
	if t.census != nil {
		return len(t.census)
	}
	return len(t.rank)
}

// SegDistinct returns the paper's N_ds for one segment: the number of
// distinct input sets that segment probed with (ModeProfile only; falls
// back to the union count otherwise).
func (t *Table) SegDistinct(seg int) int {
	if t.segCensus != nil {
		return len(t.segCensus[seg])
	}
	return t.Distinct()
}

// Census returns the per-key execution counts collected in ModeProfile,
// or nil in other modes. The returned map is live; callers must not
// mutate it.
func (t *Table) Census() map[string]int64 { return t.census }

// AccessCounts returns probe counts per table entry (slot index for
// bounded tables, insertion rank for optimal tables), sorted by index.
// This regenerates the paper's Figures 7 and 8.
func (t *Table) AccessCounts() []int64 {
	if len(t.accessCounts) == 0 {
		return nil
	}
	maxIdx := 0
	for i := range t.accessCounts {
		if i > maxIdx {
			maxIdx = i
		}
	}
	out := make([]int64, maxIdx+1)
	for i, c := range t.accessCounts {
		out[i] = c
	}
	return out
}

// SizeBytes reports the modeled memory consumption of the table: per entry,
// the input key plus every merged segment's outputs plus (for merged
// tables) an 8-byte valid-bit vector, times the entry count. For optimal
// tables the entry count is the number of distinct keys stored so far.
func (t *Table) SizeBytes() int {
	per := t.cfg.KeyBytes
	for _, b := range t.cfg.OutBytes {
		per += b
	}
	if t.cfg.Segs > 1 {
		per += 8
	}
	n := t.cfg.Entries
	if t.byKey != nil {
		n = len(t.byKey)
	}
	if t.census != nil {
		n = len(t.census)
	}
	return per * n
}

// EntryBytes returns the modeled bytes of one table entry.
func (t *Table) EntryBytes() int {
	per := t.cfg.KeyBytes
	for _, b := range t.cfg.OutBytes {
		per += b
	}
	if t.cfg.Segs > 1 {
		per += 8
	}
	return per
}

// TotalStats sums the per-segment statistics.
func (t *Table) TotalStats() SegStats {
	var sum SegStats
	for _, s := range t.stats {
		sum.Probes += s.Probes
		sum.Hits += s.Hits
		sum.Misses += s.Misses
		sum.Records += s.Records
		sum.Collisions += s.Collisions
		sum.Evictions += s.Evictions
	}
	return sum
}

// Resident returns the number of entries currently stored: distinct keys
// for unbounded tables, occupied slots for bounded ones (never more than
// Entries), 0 in ModeProfile (the census is not storage).
func (t *Table) Resident() int { return t.resident }

// SortedCensus returns the union profiling census as (key, count) pairs
// in first-seen order, for histogram rendering and table sizing.
func (t *Table) SortedCensus() []KeyCount {
	return censusPairs(t.census, t.rank)
}

// SegSortedCensus returns one segment's census in first-seen order.
func (t *Table) SegSortedCensus(seg int) []KeyCount {
	if t.segCensus == nil {
		return nil
	}
	return censusPairs(t.segCensus[seg], t.rank)
}

func censusPairs(census map[string]int64, rank map[string]int) []KeyCount {
	out := make([]KeyCount, 0, len(census))
	for k, c := range census {
		out = append(out, KeyCount{Key: k, Count: c, Rank: rank[k]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rank < out[j].Rank })
	return out
}

// KeyCount is one census line: a distinct input set, its execution count,
// and its first-seen rank.
type KeyCount struct {
	Key   string
	Count int64
	Rank  int
}
