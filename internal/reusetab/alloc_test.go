package reusetab

import (
	"testing"
)

// The paper's admission rule (formula 3, R·C − O > 0) makes the probe
// and record overhead O the margin every segment is judged against:
// shaving allocations off the hot path does not just speed it up, it
// flips currently-rejected segments profitable. These tests pin the
// steady-state hot path at exactly zero allocations per operation —
// asserted with testing.AllocsPerRun, not just observed in benchmarks —
// for every table mode the runtime serves (unbounded, direct-addressed,
// LRU, and the concurrent Sharded wrapper).

// fillKeys returns n distinct 8-byte keys.
func fillKeys(n int) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = AppendInt(AppendInt(nil, int64(i)), int64(i*31))
	}
	return keys
}

// slotDistinctKeys returns n 8-byte keys that map to n distinct slots of
// a direct-addressed table with the given entry count, so a warm working
// set stays fully resident (no replace-on-collision evictions).
func slotDistinctKeys(n, entries int) [][]byte {
	keys := make([][]byte, 0, n)
	seen := map[int]bool{}
	for i := 0; len(keys) < n; i++ {
		k := AppendInt(AppendInt(nil, int64(i)), int64(i*31))
		if idx := IndexOfBytes(k, entries); !seen[idx] {
			seen[idx] = true
			keys = append(keys, k)
		}
	}
	return keys
}

func assertZeroAllocs(t *testing.T, name string, f func()) {
	t.Helper()
	if avg := testing.AllocsPerRun(100, f); avg != 0 {
		t.Errorf("%s: %.1f allocs/op, want 0", name, avg)
	}
}

func warmTable(t *Table, keys [][]byte) {
	for _, k := range keys {
		t.Probe(0, k)
		t.Record(0, k, []uint64{1, 2})
	}
}

func allocTableConfigs() map[string]Config {
	base := Config{Segs: 1, KeyBytes: 8, OutWords: []int{2}, OutBytes: []int{16}}
	unbounded := base
	unbounded.Name = "alloc-unbounded"
	direct := base
	direct.Name = "alloc-direct"
	direct.Entries = 512
	lru := base
	lru.Name = "alloc-lru"
	lru.Entries = 512
	lru.LRU = true
	return map[string]Config{"unbounded": unbounded, "direct": direct, "lru": lru}
}

// TestTableZeroAllocSteadyState asserts that probing and re-recording a
// warm working set allocates nothing in any table mode.
func TestTableZeroAllocSteadyState(t *testing.T) {
	for mode, cfg := range allocTableConfigs() {
		// Direct-addressed tables replace on slot collision (§3.1), so a
		// colliding warm set would not stay resident; pick keys mapping to
		// distinct slots.
		var keys [][]byte
		if cfg.Entries > 0 && !cfg.LRU {
			keys = slotDistinctKeys(64, cfg.Entries)
		} else {
			keys = fillKeys(64)
		}
		tab := New(cfg)
		warmTable(tab, keys)
		outs := []uint64{7, 8}
		i := 0
		assertZeroAllocs(t, mode+"/probe-hit", func() {
			k := keys[i%len(keys)]
			i++
			if _, hit := tab.Probe(0, k); !hit {
				t.Fatalf("%s: warm probe missed", mode)
			}
		})
		assertZeroAllocs(t, mode+"/record-resident", func() {
			tab.Record(0, keys[i%len(keys)], outs)
			i++
		})
		// A re-probe of a key already counted in the rank census must not
		// allocate even when it misses (cold segment bit after eviction is
		// not reachable here, so exercise the miss path with a one-off
		// never-recorded key probed repeatedly).
		miss := AppendInt(AppendInt(nil, 1<<20), 1<<21)
		tab.Probe(0, miss) // first probe may insert into the rank census
		assertZeroAllocs(t, mode+"/probe-miss", func() {
			if _, hit := tab.Probe(0, miss); hit {
				t.Fatalf("%s: unrecorded key hit", mode)
			}
		})
	}
}

// TestTableZeroAllocDirectChurn asserts that even the direct-addressed
// replace-on-collision path stays allocation-free in steady state: the
// victim entry's key and output buffers are reclaimed, not reallocated.
func TestTableZeroAllocDirectChurn(t *testing.T) {
	cfg := allocTableConfigs()["direct"]
	cfg.Entries = 8 // force constant collisions
	tab := New(cfg)
	keys := fillKeys(64)
	// Warm: every key probed once (rank inserted) and recorded once.
	for _, k := range keys {
		tab.Probe(0, k)
		tab.Record(0, k, []uint64{1, 2})
	}
	outs := []uint64{3, 4}
	i := 0
	assertZeroAllocs(t, "direct/record-churn", func() {
		tab.Record(0, keys[i%len(keys)], outs)
		i++
	})
}

// TestShardedZeroAllocSteadyState asserts the concurrent wrapper adds no
// allocations of its own: ProbeWord and ProbeInto hits and resident
// re-records are allocation-free.
func TestShardedZeroAllocSteadyState(t *testing.T) {
	for _, shards := range []int{1, 8} {
		cfg := Config{Name: "alloc-sharded", Segs: 1, KeyBytes: 8,
			OutWords: []int{2}, OutBytes: []int{16}}
		s := NewSharded(cfg, shards)
		keys := fillKeys(64)
		for _, k := range keys {
			s.Probe(0, k)
			s.Record(0, k, []uint64{1, 2})
		}
		outs := []uint64{7, 8}
		dst := make([]uint64, 0, 2)
		i := 0
		assertZeroAllocs(t, "sharded/probe-word", func() {
			if _, hit := s.ProbeWord(0, keys[i%len(keys)]); !hit {
				t.Fatal("warm ProbeWord missed")
			}
			i++
		})
		assertZeroAllocs(t, "sharded/probe-into", func() {
			got, hit := s.ProbeInto(0, keys[i%len(keys)], dst[:0])
			if !hit || len(got) != 2 {
				t.Fatalf("warm ProbeInto: hit=%v len=%d", hit, len(got))
			}
			i++
		})
		assertZeroAllocs(t, "sharded/record-resident", func() {
			s.Record(0, keys[i%len(keys)], outs)
			i++
		})
	}
}

// BenchmarkTableProbe measures the single-threaded probe hit path; the
// acceptance gate is 0 allocs/op (tracked in BENCH_6.json).
func BenchmarkTableProbe(b *testing.B) {
	for mode, cfg := range allocTableConfigs() {
		b.Run(mode, func(b *testing.B) {
			tab := New(cfg)
			var keys [][]byte
			if cfg.Entries > 0 && !cfg.LRU {
				keys = slotDistinctKeys(256, cfg.Entries)
			} else {
				keys = fillKeys(256)
			}
			warmTable(tab, keys)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tab.Probe(0, keys[i&255])
			}
		})
	}
}

// BenchmarkTableRecord measures the single-threaded re-record path; the
// acceptance gate is 0 allocs/op.
func BenchmarkTableRecord(b *testing.B) {
	for mode, cfg := range allocTableConfigs() {
		b.Run(mode, func(b *testing.B) {
			tab := New(cfg)
			var keys [][]byte
			if cfg.Entries > 0 && !cfg.LRU {
				keys = slotDistinctKeys(256, cfg.Entries)
			} else {
				keys = fillKeys(256)
			}
			warmTable(tab, keys)
			outs := []uint64{7, 8}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tab.Record(0, keys[i&255], outs)
			}
		})
	}
}

// BenchmarkShardedProbeWord measures the MemoTable fast path under
// parallel load.
func BenchmarkShardedProbeWord(b *testing.B) {
	cfg := Config{Name: "bench-sharded", Segs: 1, KeyBytes: 8,
		OutWords: []int{1}, OutBytes: []int{8}}
	s := NewSharded(cfg, 16)
	keys := fillKeys(256)
	for _, k := range keys {
		s.Probe(0, k)
		s.Record(0, k, []uint64{1})
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			s.ProbeWord(0, keys[i&255])
			i++
		}
	})
}

// BenchmarkShardedRecord measures the concurrent re-record path.
func BenchmarkShardedRecord(b *testing.B) {
	cfg := Config{Name: "bench-sharded-rec", Segs: 1, KeyBytes: 8,
		OutWords: []int{1}, OutBytes: []int{8}}
	s := NewSharded(cfg, 16)
	keys := fillKeys(256)
	for _, k := range keys {
		s.Probe(0, k)
		s.Record(0, k, []uint64{1})
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		vals := []uint64{9}
		for pb.Next() {
			s.Record(0, keys[i&255], vals)
			i++
		}
	})
}
