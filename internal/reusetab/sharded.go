package reusetab

import (
	"fmt"
	"sync"
	"sync/atomic"

	"compreuse/internal/obs"
)

// shardSeed decorrelates shard selection from the direct-addressed slot
// hash (both use the Jenkins function; a shared seed would make every
// shard see only keys that agree with it modulo the shard count).
const shardSeed uint32 = 0x9e3779b9

// Sharded is a concurrency-safe reuse table: the same semantics as Table,
// striped over 2^k independently locked shards by a hash of the input key.
// It is the serving-path variant of the paper's software hash table — the
// VM-facing Table stays single-threaded and bit-for-bit faithful to §3.1,
// while Sharded lets many goroutines probe and record at once with
// contention limited to 1/shards of the traffic. Statistics are kept in
// per-segment atomic counters at the Sharded level, so Stats and Distinct
// never take a shard lock and never race with in-flight probes.
//
// Every key deterministically maps to one shard, so for unbounded
// ("optimal") tables the hit/miss behavior is identical to a single
// Table. Bounded tables divide their capacity across shards (each shard
// is a direct-addressed or LRU table of Entries/shards slots, rounded
// up), which preserves total capacity but redistributes collisions and
// eviction order; use a single shard when the exact §3.1 bounded-table
// behavior matters more than parallelism.
type Sharded struct {
	cfg   Config
	mask  uint32
	stats []shardedSegStats
	// distinct counts first-time keys across all shards (the shards
	// partition the key space, so the sum is exact).
	distinct atomic.Int64
	// resident counts entries currently stored across all shards,
	// maintained from per-record deltas; occGauge is the whole-table
	// occupancy gauge (the per-shard tables' own gauges are disabled so
	// shards do not clobber each other's partial counts).
	resident atomic.Int64
	occGauge *obs.Gauge
	shards   []tableShard
}

// tableShard pads each shard's lock+table to its own cache line so the
// stripes do not false-share under parallel probing.
type tableShard struct {
	mu  sync.Mutex
	tab *Table
	_   [64 - 16]byte
}

// shardedSegStats mirrors SegStats with atomically updated fields.
type shardedSegStats struct {
	probes, hits, misses, records, collisions, evictions atomic.Int64
	_                                                    [64 - 48]byte
}

// NewSharded builds a sharded table over cfg. The shard count is rounded
// up to a power of two and clamped to at least 1; for bounded configs it
// is additionally clamped so every shard holds at least one entry, and
// cfg.Entries is split evenly (rounded up) across the shards. ModeProfile
// is rejected: value-set profiling is a compile-time, single-threaded
// activity that needs the census maps of the plain Table.
func NewSharded(cfg Config, shards int) *Sharded {
	if cfg.Mode == ModeProfile {
		panic(fmt.Sprintf("reusetab %q: Sharded does not support ModeProfile; profile with a plain Table", cfg.Name))
	}
	if shards < 1 {
		shards = 1
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	if cfg.Entries > 0 && n > cfg.Entries {
		for n > 1 && n > cfg.Entries {
			n >>= 1
		}
	}
	shardCfg := cfg
	if cfg.Entries > 0 {
		shardCfg.Entries = (cfg.Entries + n - 1) / n
	}
	s := &Sharded{
		cfg:      cfg,
		mask:     uint32(n - 1),
		stats:    make([]shardedSegStats, cfg.Segs),
		occGauge: OccupancyGauge(cfg.Name),
		shards:   make([]tableShard, n),
	}
	for i := range s.shards {
		s.shards[i].tab = New(shardCfg)
		s.shards[i].tab.occGauge = nil
	}
	return s
}

// Config returns the table-wide configuration (Entries is the total
// capacity, not the per-shard split).
func (s *Sharded) Config() Config { return s.cfg }

// Shards returns the number of lock stripes.
func (s *Sharded) Shards() int { return len(s.shards) }

func (s *Sharded) shardFor(key []byte) *tableShard {
	if s.mask == 0 {
		return &s.shards[0]
	}
	return &s.shards[JenkinsHash(key, shardSeed)&s.mask]
}

// Probe looks key up for segment seg in the key's shard. It is safe for
// concurrent use with other probes, records and stats reads. A hit's
// outputs are returned as a fresh copy (the underlying Table overwrites
// its stored buffers in place on re-records, so handing out the live
// slice would race); callers on the zero-allocation path should use
// ProbeInto or ProbeWord instead.
func (s *Sharded) Probe(seg int, key []byte) ([]uint64, bool) {
	return s.ProbeInto(seg, key, nil)
}

// ProbeInto probes like Probe but appends a hit's outputs to dst and
// returns the extended slice. The copy happens under the shard lock, so
// the result can never be torn by a concurrent Record of the same key;
// with a dst of sufficient capacity a hit allocates nothing.
func (s *Sharded) ProbeInto(seg int, key []byte, dst []uint64) ([]uint64, bool) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	collBefore := sh.tab.stats[seg].Collisions
	distBefore := len(sh.tab.rank)
	outs, hit := sh.tab.Probe(seg, key)
	if hit {
		dst = append(dst, outs...)
	}
	collDelta := sh.tab.stats[seg].Collisions - collBefore
	distDelta := len(sh.tab.rank) - distBefore
	sh.mu.Unlock()

	s.countProbe(seg, hit, collDelta, distDelta)
	if !hit {
		return dst, false
	}
	return dst, true
}

// ProbeWord is the single-output fast path (OutWords == 1, the MemoTable
// configuration): the stored word is read under the shard lock and
// returned by value, so a hit allocates nothing and needs no caller
// buffer.
func (s *Sharded) ProbeWord(seg int, key []byte) (uint64, bool) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	collBefore := sh.tab.stats[seg].Collisions
	distBefore := len(sh.tab.rank)
	outs, hit := sh.tab.Probe(seg, key)
	var v uint64
	if hit && len(outs) > 0 {
		v = outs[0]
	}
	collDelta := sh.tab.stats[seg].Collisions - collBefore
	distDelta := len(sh.tab.rank) - distBefore
	sh.mu.Unlock()

	s.countProbe(seg, hit, collDelta, distDelta)
	return v, hit
}

// countProbe folds one probe's outcome into the atomic per-segment
// counters.
func (s *Sharded) countProbe(seg int, hit bool, collDelta int64, distDelta int) {
	st := &s.stats[seg]
	st.probes.Add(1)
	if hit {
		st.hits.Add(1)
	} else {
		st.misses.Add(1)
	}
	if collDelta > 0 {
		st.collisions.Add(collDelta)
	}
	if distDelta > 0 {
		s.distinct.Add(int64(distDelta))
	}
}

// Record stores the outputs computed for key by segment seg in the key's
// shard.
func (s *Sharded) Record(seg int, key []byte, outs []uint64) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	evBefore := sh.tab.stats[seg].Evictions
	resBefore := sh.tab.resident
	sh.tab.Record(seg, key, outs)
	evDelta := sh.tab.stats[seg].Evictions - evBefore
	resDelta := sh.tab.resident - resBefore
	sh.mu.Unlock()
	s.stats[seg].records.Add(1)
	if evDelta > 0 {
		s.stats[seg].evictions.Add(evDelta)
	}
	if resDelta != 0 {
		s.resident.Add(int64(resDelta))
	}
	if obs.On() {
		s.occGauge.Set(s.resident.Load())
	}
}

// Stats returns segment seg's counters. Reads are atomic snapshots of
// each field; they never block probes and never race. The outcome
// counters are loaded before Probes: every hit/miss/collision increment
// is preceded by its probe's Probes increment and the counters only
// grow, so the snapshot always satisfies Hits+Misses <= Probes (the two
// sides are equal once the table is quiescent).
func (s *Sharded) Stats(seg int) SegStats {
	st := &s.stats[seg]
	hits := st.hits.Load()
	misses := st.misses.Load()
	records := st.records.Load()
	collisions := st.collisions.Load()
	evictions := st.evictions.Load()
	probes := st.probes.Load()
	return SegStats{
		Probes:     probes,
		Hits:       hits,
		Misses:     misses,
		Records:    records,
		Collisions: collisions,
		Evictions:  evictions,
	}
}

// TotalStats sums the per-segment statistics.
func (s *Sharded) TotalStats() SegStats {
	var sum SegStats
	for seg := range s.stats {
		st := s.Stats(seg)
		sum.Probes += st.Probes
		sum.Hits += st.Hits
		sum.Misses += st.Misses
		sum.Records += st.Records
		sum.Collisions += st.Collisions
		sum.Evictions += st.Evictions
	}
	return sum
}

// Reset empties every shard and zeroes all statistics without
// reallocating. Reset locks each shard in turn rather than all at once,
// so concurrent probes never deadlock against it; a probe racing the
// reset lands either before or after its shard is cleared, and the
// atomic counters are zeroed last. Intended for quiescent or
// best-effort use (the server's FLUSH op, the governor's readmission).
func (s *Sharded) Reset() {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.tab.Reset()
		sh.mu.Unlock()
	}
	for i := range s.stats {
		st := &s.stats[i]
		st.probes.Store(0)
		st.hits.Store(0)
		st.misses.Store(0)
		st.records.Store(0)
		st.collisions.Store(0)
		st.evictions.Store(0)
	}
	s.distinct.Store(0)
	s.resident.Store(0)
	if obs.On() {
		s.occGauge.Set(0)
	}
}

// Range calls fn with every resident entry valid for segment seg, one
// shard at a time, until fn returns false. The entries are copied out
// under each shard's lock and fn runs without it, so fn may take as
// long as it likes (serialize to disk, hold other locks) without
// stalling probes for more than one shard's copy-out. The key and
// output slices are fn's to keep. Entries recorded or evicted while
// the walk is in flight may or may not be seen — Range is a
// shard-consistent snapshot, not a global one, which is all the warm
// restart needs.
func (s *Sharded) Range(seg int, fn func(key []byte, outs []uint64) bool) {
	var keys [][]byte
	var vals [][]uint64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		keys, vals = sh.tab.AppendEntries(seg, keys[:0], vals[:0])
		sh.mu.Unlock()
		for j := range keys {
			if !fn(keys[j], vals[j]) {
				return
			}
		}
	}
}

// RestoreStats overwrites segment seg's outcome counters and the
// table-wide distinct-key census with snapshot-recorded values. It
// exists for warm restarts only: a restore replays the dumped entries
// through Record (rebuilding storage and the resident count), then
// calls RestoreStats so the probe/hit/miss/record counters and N_ds
// report the pre-crash history instead of the replay's. Collision and
// eviction counters are left at their replay values — the snapshot
// format does not carry them, and nothing downstream reads them for
// admission. Keys first seen before the snapshot re-enter the distinct
// census on their first post-restore probe, so Distinct can overcount
// by at most the restored population; the governor's R window is
// recomputed live either way.
func (s *Sharded) RestoreStats(seg int, st SegStats, distinct int64) {
	cur := &s.stats[seg]
	cur.probes.Store(st.Probes)
	cur.hits.Store(st.Hits)
	cur.misses.Store(st.Misses)
	cur.records.Store(st.Records)
	s.distinct.Store(distinct)
}

// Resident returns the number of entries currently stored across all
// shards (maintained from atomic per-record deltas; never blocks probes).
func (s *Sharded) Resident() int { return int(s.resident.Load()) }

// Distinct returns the number of distinct keys ever probed across all
// shards (the paper's N_ds).
func (s *Sharded) Distinct() int { return int(s.distinct.Load()) }

// SizeBytes reports the modeled memory consumption summed over shards.
func (s *Sharded) SizeBytes() int {
	total := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		total += sh.tab.SizeBytes()
		sh.mu.Unlock()
	}
	return total
}

// EntryBytes returns the modeled bytes of one table entry.
func (s *Sharded) EntryBytes() int { return s.shards[0].tab.EntryBytes() }
