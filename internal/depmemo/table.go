// Package depmemo implements dependence-tracked selective memoization:
// a memo table keyed not on a segment's full declared input set but on
// the locations a computation *actually read*, discovered per call.
//
// The idea is Acar–Blelloch–Harper's selective memoization, applied to
// the paper's reuse scheme: a segment whose declared inputs are wide
// (say a whole board array) but whose bodies each touch only a few
// elements can be keyed on that small dynamic footprint, slashing the
// hashing overhead O of formula (3) and flipping O/C ≥ 1 rejections to
// profitable.
//
// The index is a footprint trie. An internal node names the next
// location the computation will read; its out-edges are labeled by the
// value observed there. A leaf holds the memoized outputs. Because the
// computations memoized here are deterministic, the values read so far
// determine which location is read next — so every input set that
// reaches a leaf along matching edges would have produced exactly the
// recorded outputs, even though most of the declared input space was
// never examined. Differing read-sets coexist naturally: two calls that
// branch apart at some read simply occupy different subtrees, possibly
// with different footprints.
//
// A Table is single-goroutine, like reusetab.Table; the public DepMemo
// wrapper adds locking and singleflight. Space budgets bound the number
// of resident results with LRU eviction over a fixed leaf arena,
// reusing reusetab's intrusive LRUList.
package depmemo

import (
	"encoding/binary"

	"compreuse/internal/reusetab"
)

// Loc identifies one trackable input location: an input's index in the
// call's positional input list, plus an element offset within it. The
// offset's meaning is the caller's: the MiniC interpreter uses flattened
// word offsets; the public API reserves OffWhole for a scalar's value or
// a slice's content hash and OffLen for a slice's length.
type Loc struct {
	Input int32
	Off   int32
}

// Reserved Off values for the public tracked-view API.
const (
	// OffWhole marks a dependence on an input's whole value: the scalar
	// itself, or a content hash of the full slice.
	OffWhole int32 = -1
	// OffLen marks a dependence on a slice input's length only.
	OffLen int32 = -2
)

// Step is one recorded dependence: the location read and the encoded
// value (label) observed there at the time of the read.
type Step struct {
	Loc   Loc
	Label uint64
}

// Fetcher supplies the current label of a location during a probe. It is
// an interface rather than a func so a reused implementation probes
// without allocating a closure.
type Fetcher interface {
	Fetch(Loc) uint64
}

// Config sizes a Table.
type Config struct {
	// Name labels the table in reports.
	Name string
	// Entries bounds resident results (0 = unbounded). Bounded tables
	// evict the least recently used result when full.
	Entries int
	// Ghosts keeps an evicted result's encoded dependence key (not its
	// outputs) resident, so a later probe reaching the ghost can fetch
	// the result from a remote tier by key instead of recomputing. At
	// most Entries ghosts are retained.
	Ghosts bool
	// Profile puts the table in census mode: probes always miss and
	// records count distinct footprints, mirroring reusetab.ModeProfile.
	Profile bool
}

// Stats is a Table's counter snapshot.
type Stats struct {
	// Probes and Hits count Probe calls and the subset served from a
	// resident leaf.
	Probes int64
	Hits   int64
	// Records counts Record calls (one per computed result).
	Records int64
	// Distinct counts distinct dependence paths ever recorded; it does
	// not decrease on eviction. In profile mode Records − Distinct is
	// the number of would-be hits, so R = 1 − Distinct/Records.
	Distinct int64
	// Evictions counts resident results displaced by the space budget
	// or by a conflicting record (footprint change at the same prefix).
	Evictions int64
	// FootprintSum and MaxFootprint aggregate the recorded dependence
	// path lengths (in locations); FootprintSum/Records is the mean
	// dynamic key width in words.
	FootprintSum int64
	MaxFootprint int
}

// MeanFootprint is the average recorded dependence path length.
func (s Stats) MeanFootprint() float64 {
	if s.Records == 0 {
		return 0
	}
	return float64(s.FootprintSum) / float64(s.Records)
}

// ReuseRate is R = 1 − Distinct/Records over the recorded census
// (meaningful in profile mode, where every call records).
func (s Stats) ReuseRate() float64 {
	if s.Records == 0 {
		return 0
	}
	return 1 - float64(s.Distinct)/float64(s.Records)
}

// node is one trie position. Exactly one of three shapes:
//   - internal: loc names the next location to read, edges map observed
//     labels to children;
//   - value leaf: slot ≥ 0 indexes the leaf arena holding the outputs;
//   - ghost leaf: ghost is set, gslot indexes the retained encoded key.
type node struct {
	parent *node
	inEdge uint64

	loc   Loc
	edges map[uint64]*node

	leaf  bool
	slot  int32
	ghost bool
	gslot int32
}

func (n *node) isValueLeaf() bool { return n.leaf && !n.ghost }

// Table is a footprint-trie memo table for one segment. Not safe for
// concurrent use.
type Table struct {
	cfg  Config
	root *node

	// Value-leaf arena: outs[i] backs the leaf at nodes[i]. Bounded
	// tables pre-size the arena and evict via lru; unbounded tables grow.
	leafNodes []*node
	leafOuts  [][]uint64
	leafFree  []int32
	lru       *reusetab.LRUList

	// Ghost arena: encoded keys of evicted results.
	ghostNodes []*node
	ghostKeys  [][]byte
	ghostFree  []int32
	glru       *reusetab.LRUList

	stats Stats
}

// New builds a Table.
func New(cfg Config) *Table {
	t := &Table{cfg: cfg}
	if cfg.Entries > 0 {
		t.leafNodes = make([]*node, cfg.Entries)
		t.leafOuts = make([][]uint64, cfg.Entries)
		t.leafFree = make([]int32, 0, cfg.Entries)
		for i := cfg.Entries - 1; i >= 0; i-- {
			t.leafFree = append(t.leafFree, int32(i))
		}
		t.lru = reusetab.NewLRUList(cfg.Entries)
		if cfg.Ghosts {
			t.ghostNodes = make([]*node, cfg.Entries)
			t.ghostKeys = make([][]byte, cfg.Entries)
			t.ghostFree = make([]int32, 0, cfg.Entries)
			for i := cfg.Entries - 1; i >= 0; i-- {
				t.ghostFree = append(t.ghostFree, int32(i))
			}
			t.glru = reusetab.NewLRUList(cfg.Entries)
		}
	}
	return t
}

// Config returns the table's configuration.
func (t *Table) Config() Config { return t.cfg }

// Stats returns the counter snapshot.
func (t *Table) Stats() Stats { return t.stats }

// Resident is the number of live (non-ghost) results.
func (t *Table) Resident() int {
	if t.cfg.Entries > 0 {
		return t.cfg.Entries - len(t.leafFree)
	}
	return len(t.leafNodes) - len(t.leafFree)
}

// Result is a Probe outcome.
type Result struct {
	// Outs holds the memoized outputs on a hit. The slice aliases table
	// storage: it is valid until the next Record or Reset.
	Outs []uint64
	// Key is the encoded dependence key when a ghost matched: the probe
	// proved which result is needed without computing it, and Key names
	// it for a remote tier. Nil otherwise.
	Key []byte
	// Steps is the number of locations fetched — the dynamic key width
	// the probe paid for.
	Steps int
	// Hit reports a resident result; Ghost a matched evicted one.
	Hit   bool
	Ghost bool

	// ref pins the matched node for Refill.
	ref *node
}

// Probe walks the trie, fetching each named location, until it reaches a
// leaf (hit), a ghost (known key, evicted outputs), or falls off (miss).
// In profile mode every probe misses without walking, like
// reusetab.ModeProfile.
func (t *Table) Probe(f Fetcher) Result {
	t.stats.Probes++
	if t.cfg.Profile {
		return Result{}
	}
	n := t.root
	steps := 0
	for n != nil {
		if n.leaf {
			if n.ghost {
				t.glru.MoveToFront(int(n.gslot))
				return Result{Key: t.ghostKeys[n.gslot], Steps: steps, Ghost: true, ref: n}
			}
			if t.lru != nil {
				t.lru.MoveToFront(int(n.slot))
			}
			t.stats.Hits++
			return Result{Outs: t.leafOuts[n.slot], Steps: steps, Hit: true}
		}
		label := f.Fetch(n.loc)
		steps++
		n = n.edges[label]
	}
	return Result{Steps: steps}
}

// Record stores outs for the dependence path of a just-computed call.
// Conflicts with resident structure — a previously shorter or longer
// footprint along the same prefix, which deterministic computations
// never produce but tolerant float equality or a changed compute
// function can — are resolved in favor of the new record: the
// conflicting subtree is evicted. outs is copied.
func (t *Table) Record(path []Step, outs []uint64) {
	t.stats.Records++
	t.stats.FootprintSum += int64(len(path))
	if len(path) > t.stats.MaxFootprint {
		t.stats.MaxFootprint = len(path)
	}

	if t.root == nil {
		t.root = &node{}
	}
	n := t.root
	for i := range path {
		st := &path[i]
		if n.leaf {
			// Footprint widening: the resident record read fewer
			// locations than this run. Displace it.
			t.displace(n)
		}
		if n.edges == nil {
			n.loc = st.Loc
			n.edges = map[uint64]*node{}
		} else if n.loc != st.Loc {
			// The resident subtree reads a different location here:
			// the tracked computation changed. Rebuild below this node.
			t.dropSubtree(n)
			n.loc = st.Loc
			n.edges = map[uint64]*node{}
		}
		child := n.edges[st.Label]
		if child == nil {
			child = &node{parent: n, inEdge: st.Label}
			n.edges[st.Label] = child
		}
		n = child
	}
	if n.edges != nil {
		// Footprint narrowing: the resident subtree expects more reads.
		t.dropSubtree(n)
		n.loc = Loc{}
		n.edges = nil
	}
	t.storeLeaf(n, outs)
}

// storeLeaf makes n a value leaf holding a copy of outs.
func (t *Table) storeLeaf(n *node, outs []uint64) {
	if n.ghost {
		// A ghost promoted back to a value leaf: the result was
		// recomputed (or refilled), so the key-only shell fills in.
		t.freeGhost(n)
		n.leaf = false
	}
	fresh := !n.leaf
	if fresh {
		slot, ok := t.allocSlot()
		if !ok {
			// Budget full and nothing evictable (Entries leaves are all
			// on this record's own path — impossible: a path has one
			// leaf). Defensive.
			return
		}
		n.leaf = true
		n.slot = slot
		t.leafNodes[slot] = n
		if t.lru != nil {
			t.lru.PushFront(int(slot))
		}
		t.stats.Distinct++
	} else if t.lru != nil {
		t.lru.MoveToFront(int(n.slot))
	}
	t.leafOuts[n.slot] = append(t.leafOuts[n.slot][:0], outs...)
}

// allocSlot returns a free leaf-arena slot, evicting the LRU resident
// result if the budget is exhausted.
func (t *Table) allocSlot() (int32, bool) {
	if t.cfg.Entries == 0 {
		// Unbounded: grow the arena.
		if len(t.leafFree) == 0 {
			t.leafNodes = append(t.leafNodes, nil)
			t.leafOuts = append(t.leafOuts, nil)
			return int32(len(t.leafNodes) - 1), true
		}
		slot := t.leafFree[len(t.leafFree)-1]
		t.leafFree = t.leafFree[:len(t.leafFree)-1]
		return slot, true
	}
	if len(t.leafFree) == 0 {
		victim := t.lru.Back()
		if victim < 0 {
			return 0, false
		}
		t.evictLeaf(t.leafNodes[victim])
	}
	slot := t.leafFree[len(t.leafFree)-1]
	t.leafFree = t.leafFree[:len(t.leafFree)-1]
	return slot, true
}

// evictLeaf displaces a resident result for the space budget: its slot is
// reclaimed and, with ghosts enabled, the node keeps its encoded key;
// otherwise the node is pruned from the trie.
func (t *Table) evictLeaf(n *node) {
	t.stats.Evictions++
	t.releaseSlot(n)
	if t.cfg.Ghosts {
		t.makeGhost(n)
		return
	}
	n.leaf = false
	t.prune(n)
}

// displace removes a leaf (value or ghost) because a conflicting record
// claims its node; no ghost is kept (the node is being rebuilt).
func (t *Table) displace(n *node) {
	if n.ghost {
		t.freeGhost(n)
	} else {
		t.stats.Evictions++
		t.releaseSlot(n)
	}
	n.leaf = false
}

// releaseSlot returns n's arena slot to the free list.
func (t *Table) releaseSlot(n *node) {
	slot := n.slot
	t.leafNodes[slot] = nil
	if t.leafOuts[slot] != nil {
		t.leafOuts[slot] = t.leafOuts[slot][:0]
	}
	if t.lru != nil {
		t.lru.Remove(int(slot))
	}
	t.leafFree = append(t.leafFree, slot)
	n.slot = 0
}

// makeGhost converts a just-evicted leaf into a ghost retaining its
// encoded dependence key. The oldest ghost is pruned when the ghost
// budget is full.
func (t *Table) makeGhost(n *node) {
	if len(t.ghostFree) == 0 {
		old := t.glru.Back()
		if old < 0 {
			n.leaf = false
			t.prune(n)
			return
		}
		g := t.ghostNodes[old]
		t.freeGhost(g)
		g.leaf = false
		t.prune(g)
	}
	gslot := t.ghostFree[len(t.ghostFree)-1]
	t.ghostFree = t.ghostFree[:len(t.ghostFree)-1]
	n.ghost = true
	n.gslot = gslot
	t.ghostNodes[gslot] = n
	t.ghostKeys[gslot] = t.encodeKey(t.ghostKeys[gslot][:0], n)
	t.glru.PushFront(int(gslot))
}

// freeGhost releases n's ghost-arena slot.
func (t *Table) freeGhost(n *node) {
	gslot := n.gslot
	t.ghostNodes[gslot] = nil
	t.glru.Remove(int(gslot))
	t.ghostFree = append(t.ghostFree, gslot)
	n.ghost = false
	n.gslot = 0
}

// prune removes a now-empty node from the trie, cascading up through
// internal nodes left childless.
func (t *Table) prune(n *node) {
	for n != nil && !n.leaf && len(n.edges) == 0 {
		p := n.parent
		if p == nil {
			t.root = nil
			return
		}
		delete(p.edges, n.inEdge)
		n = p
	}
}

// dropSubtree evicts every result and ghost below n (exclusive).
func (t *Table) dropSubtree(n *node) {
	for _, c := range n.edges {
		t.dropNode(c)
	}
}

func (t *Table) dropNode(n *node) {
	if n.leaf {
		if n.ghost {
			t.freeGhost(n)
		} else {
			t.stats.Evictions++
			t.releaseSlot(n)
		}
		n.leaf = false
		return
	}
	for _, c := range n.edges {
		t.dropNode(c)
	}
}

// encodeKey appends the wire encoding of n's root path to b: for each
// step, the input index (2 bytes), the element offset (4 bytes, offset
// by 2 so the reserved negative values encode), and the label (8 bytes),
// all little-endian. The encoding is canonical: one path, one key.
func (t *Table) encodeKey(b []byte, n *node) []byte {
	// Walk up collecting, then reverse in place (14-byte granules).
	start := len(b)
	for n.parent != nil {
		p := n.parent
		var step [14]byte
		binary.LittleEndian.PutUint16(step[0:], uint16(p.loc.Input))
		binary.LittleEndian.PutUint32(step[2:], uint32(p.loc.Off+2))
		binary.LittleEndian.PutUint64(step[6:], n.inEdge)
		b = append(b, step[:]...)
		n = p
	}
	// Reverse the granules so the key reads root-to-leaf.
	const g = 14
	k := (len(b) - start) / g
	for i := 0; i < k/2; i++ {
		lo := start + i*g
		hi := start + (k-1-i)*g
		for j := 0; j < g; j++ {
			b[lo+j], b[hi+j] = b[hi+j], b[lo+j]
		}
	}
	return b
}

// EncodeSteps renders a dependence path in the same canonical wire form
// as ghost keys, so a freshly computed footprint can be published to a
// remote tier under the key later ghost probes will use.
func EncodeSteps(b []byte, path []Step) []byte {
	for _, st := range path {
		var step [14]byte
		binary.LittleEndian.PutUint16(step[0:], uint16(st.Loc.Input))
		binary.LittleEndian.PutUint32(step[2:], uint32(st.Loc.Off+2))
		binary.LittleEndian.PutUint64(step[6:], st.Label)
		b = append(b, step[:]...)
	}
	return b
}

// Refill converts the ghost a probe matched back into a value leaf,
// storing outs fetched from elsewhere (a remote tier) by the ghost's
// key. key re-identifies the ghost: if the node was evicted or rebuilt
// between the probe and the refill (the caller may have dropped its
// lock for the remote round trip), the refill is silently skipped.
func (t *Table) Refill(r Result, key []byte, outs []uint64) {
	n := r.ref
	if n == nil || !n.ghost {
		return
	}
	if string(t.ghostKeys[n.gslot]) != string(key) {
		return
	}
	t.storeLeaf(n, outs)
}

// Reset drops every resident result, ghost, and counter, keeping the
// configuration and arena capacity (PR 4 convention: a reset table is
// indistinguishable from a fresh one, without reallocating).
func (t *Table) Reset() {
	t.root = nil
	if t.cfg.Entries > 0 {
		t.leafFree = t.leafFree[:0]
		for i := t.cfg.Entries - 1; i >= 0; i-- {
			t.leafFree = append(t.leafFree, int32(i))
			t.leafNodes[i] = nil
			if t.leafOuts[i] != nil {
				t.leafOuts[i] = t.leafOuts[i][:0]
			}
		}
		t.lru.Reset()
		if t.cfg.Ghosts {
			t.ghostFree = t.ghostFree[:0]
			for i := t.cfg.Entries - 1; i >= 0; i-- {
				t.ghostFree = append(t.ghostFree, int32(i))
				t.ghostNodes[i] = nil
			}
			t.glru.Reset()
		}
	} else {
		t.leafNodes = t.leafNodes[:0]
		t.leafOuts = t.leafOuts[:0]
		t.leafFree = t.leafFree[:0]
	}
	t.stats = Stats{}
}
