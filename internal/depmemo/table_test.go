package depmemo

import (
	"fmt"
	"testing"
)

// mapFetcher serves probe fetches from a map — the "current input state"
// of a simulated caller.
type mapFetcher map[Loc]uint64

func (m mapFetcher) Fetch(l Loc) uint64 { return m[l] }

func loc(in, off int32) Loc { return Loc{Input: in, Off: off} }

func steps(pairs ...uint64) []Step {
	// pairs are (input, off, label) triples flattened.
	if len(pairs)%3 != 0 {
		panic("triples")
	}
	var out []Step
	for i := 0; i < len(pairs); i += 3 {
		out = append(out, Step{Loc: loc(int32(pairs[i]), int32(pairs[i+1])), Label: pairs[i+2]})
	}
	return out
}

func TestProbeRecordRoundTrip(t *testing.T) {
	tab := New(Config{Name: "t"})
	f := mapFetcher{loc(0, 0): 7, loc(1, 3): 9}

	if r := tab.Probe(f); r.Hit || r.Ghost {
		t.Fatalf("empty table hit: %+v", r)
	}
	tab.Record(steps(0, 0, 7, 1, 3, 9), []uint64{42})

	r := tab.Probe(f)
	if !r.Hit || len(r.Outs) != 1 || r.Outs[0] != 42 {
		t.Fatalf("expected hit with 42, got %+v", r)
	}
	if r.Steps != 2 {
		t.Fatalf("hit walked %d steps, want 2", r.Steps)
	}

	// A differing value at the second location misses without touching
	// locations beyond the divergence.
	f[loc(1, 3)] = 10
	if r := tab.Probe(f); r.Hit {
		t.Fatalf("stale hit after input change: %+v", r)
	}
	tab.Record(steps(0, 0, 7, 1, 3, 10), []uint64{43})
	if r := tab.Probe(f); !r.Hit || r.Outs[0] != 43 {
		t.Fatalf("expected hit with 43, got %+v", r)
	}
	// The original input set still hits its own leaf.
	f[loc(1, 3)] = 9
	if r := tab.Probe(f); !r.Hit || r.Outs[0] != 42 {
		t.Fatalf("coexisting read-set lost: %+v", r)
	}

	st := tab.Stats()
	if st.Distinct != 2 || st.Records != 2 {
		t.Fatalf("stats: %+v", st)
	}
	if st.MeanFootprint() != 2 {
		t.Fatalf("mean footprint %v, want 2", st.MeanFootprint())
	}
}

// TestEmptyFootprint pins the constant-result case: a computation that
// read nothing matches every later probe, whatever the inputs.
func TestEmptyFootprint(t *testing.T) {
	tab := New(Config{})
	tab.Record(nil, []uint64{99})
	for i := 0; i < 3; i++ {
		f := mapFetcher{loc(0, 0): uint64(i)}
		r := tab.Probe(f)
		if !r.Hit || r.Outs[0] != 99 || r.Steps != 0 {
			t.Fatalf("probe %d: %+v", i, r)
		}
	}
	if tab.Stats().Distinct != 1 {
		t.Fatalf("distinct: %+v", tab.Stats())
	}
}

// TestDifferingFootprintsCoexist pins the trie's point: two records whose
// read-sets diverge after a shared prefix occupy different subtrees with
// different footprint widths.
func TestDifferingFootprintsCoexist(t *testing.T) {
	tab := New(Config{})
	// flag=0 → reads only the flag. flag=1 → reads the flag then x.
	tab.Record(steps(0, 0, 1, 1, 0, 5), []uint64{15})
	tab.Record(steps(0, 0, 1, 1, 0, 6), []uint64{16})
	// Note: the flag=0 path must disagree on the *label*, not record a
	// shorter path at the same prefix (determinism: same values read →
	// same next read).
	tab.Record(steps(0, 0, 0), []uint64{7})

	if r := tab.Probe(mapFetcher{loc(0, 0): 0}); !r.Hit || r.Outs[0] != 7 || r.Steps != 1 {
		t.Fatalf("short path: %+v", r)
	}
	if r := tab.Probe(mapFetcher{loc(0, 0): 1, loc(1, 0): 6}); !r.Hit || r.Outs[0] != 16 || r.Steps != 2 {
		t.Fatalf("long path: %+v", r)
	}
}

// TestFootprintWidening pins conflict resolution: when a new record reads
// *more* locations along a resident leaf's path (a nondeterministic or
// tolerance-collapsed compute), the newer, wider record wins.
func TestFootprintWidening(t *testing.T) {
	tab := New(Config{})
	tab.Record(steps(0, 0, 1), []uint64{10})
	// Same first read, but the computation now continues reading.
	tab.Record(steps(0, 0, 1, 1, 0, 2), []uint64{20})

	r := tab.Probe(mapFetcher{loc(0, 0): 1, loc(1, 0): 2})
	if !r.Hit || r.Outs[0] != 20 {
		t.Fatalf("widened record lost: %+v", r)
	}
	st := tab.Stats()
	if st.Evictions != 1 {
		t.Fatalf("widening should evict the stale leaf: %+v", st)
	}
	// And narrowing back again replaces the subtree.
	tab.Record(steps(0, 0, 1), []uint64{30})
	if r := tab.Probe(mapFetcher{loc(0, 0): 1, loc(1, 0): 2}); !r.Hit || r.Outs[0] != 30 {
		t.Fatalf("narrowed record lost: %+v", r)
	}
}

// TestBudgetEviction pins LRU behavior of the leaf arena: the least
// recently used result leaves first, and childless internal nodes are
// pruned so the trie does not leak structure.
func TestBudgetEviction(t *testing.T) {
	tab := New(Config{Entries: 2})
	for i := uint64(1); i <= 3; i++ {
		tab.Record(steps(0, 0, i), []uint64{i * 10})
	}
	// 1 was LRU → evicted; 2 and 3 resident.
	if r := tab.Probe(mapFetcher{loc(0, 0): 1}); r.Hit {
		t.Fatalf("evicted entry still hits: %+v", r)
	}
	for i := uint64(2); i <= 3; i++ {
		if r := tab.Probe(mapFetcher{loc(0, 0): i}); !r.Hit || r.Outs[0] != i*10 {
			t.Fatalf("resident %d: %+v", i, r)
		}
	}
	st := tab.Stats()
	if st.Evictions != 1 || tab.Resident() != 2 {
		t.Fatalf("stats: %+v resident=%d", st, tab.Resident())
	}

	// Touch 2 (making 3 LRU), insert 4 → 3 evicted, 2 stays.
	tab.Probe(mapFetcher{loc(0, 0): 2})
	tab.Record(steps(0, 0, 4), []uint64{40})
	if r := tab.Probe(mapFetcher{loc(0, 0): 3}); r.Hit {
		t.Fatal("LRU order violated: 3 should have been evicted")
	}
	if r := tab.Probe(mapFetcher{loc(0, 0): 2}); !r.Hit {
		t.Fatal("recently used entry evicted")
	}
}

// TestBudgetEvictionPrunesDeepPaths fills a bounded table with deep
// multi-level paths and checks eviction keeps the structure consistent.
func TestBudgetEvictionPrunesDeepPaths(t *testing.T) {
	tab := New(Config{Entries: 4})
	for i := uint64(0); i < 64; i++ {
		tab.Record(steps(0, 0, i, 1, 0, i+1, 2, 0, i+2), []uint64{i})
	}
	if tab.Resident() != 4 {
		t.Fatalf("resident %d, want 4", tab.Resident())
	}
	// The last four inserted are resident.
	for i := uint64(60); i < 64; i++ {
		f := mapFetcher{loc(0, 0): i, loc(1, 0): i + 1, loc(2, 0): i + 2}
		if r := tab.Probe(f); !r.Hit || r.Outs[0] != i {
			t.Fatalf("resident %d: %+v", i, r)
		}
	}
	if ev := tab.Stats().Evictions; ev != 60 {
		t.Fatalf("evictions %d, want 60", ev)
	}
}

// TestGhosts pins the tiered-refill shells: an evicted result keeps its
// encoded key, a probe reaching the ghost reports it, and Refill
// restores the value.
func TestGhosts(t *testing.T) {
	tab := New(Config{Entries: 1, Ghosts: true})
	tab.Record(steps(0, 0, 1), []uint64{10})
	tab.Record(steps(0, 0, 2), []uint64{20}) // evicts 1 → ghost

	f := mapFetcher{loc(0, 0): 1}
	r := tab.Probe(f)
	if r.Hit || !r.Ghost || len(r.Key) == 0 {
		t.Fatalf("expected ghost, got %+v", r)
	}
	want := EncodeSteps(nil, steps(0, 0, 1))
	if string(r.Key) != string(want) {
		t.Fatalf("ghost key %x, want %x", r.Key, want)
	}

	// Refill restores the value (and evicts 2 in turn under budget 1).
	key := append([]byte(nil), r.Key...)
	tab.Refill(r, key, []uint64{10})
	if r2 := tab.Probe(f); !r2.Hit || r2.Outs[0] != 10 {
		t.Fatalf("refilled probe: %+v", r2)
	}

	// A stale Refill (the ghost was since rebuilt) is a no-op.
	tab.Refill(r, key, []uint64{99})
	if r3 := tab.Probe(f); !r3.Hit || r3.Outs[0] != 10 {
		t.Fatalf("stale refill applied: %+v", r3)
	}
}

func TestProfileModeCensus(t *testing.T) {
	tab := New(Config{Profile: true})
	f := mapFetcher{loc(0, 0): 1}
	for i := 0; i < 5; i++ {
		if r := tab.Probe(f); r.Hit {
			t.Fatal("profile probes must miss")
		}
		tab.Record(steps(0, 0, 1, 1, 0, uint64(i%2)), []uint64{1})
	}
	st := tab.Stats()
	if st.Records != 5 || st.Distinct != 2 {
		t.Fatalf("census: %+v", st)
	}
	if got := st.ReuseRate(); got != 1-2.0/5 {
		t.Fatalf("R = %v", got)
	}
	if st.MeanFootprint() != 2 || st.MaxFootprint != 2 {
		t.Fatalf("footprint: %+v", st)
	}
}

func TestReset(t *testing.T) {
	for _, cfg := range []Config{{}, {Entries: 4}, {Entries: 4, Ghosts: true}} {
		t.Run(fmt.Sprintf("%+v", cfg), func(t *testing.T) {
			tab := New(cfg)
			for i := uint64(0); i < 8; i++ {
				tab.Record(steps(0, 0, i), []uint64{i})
			}
			tab.Reset()
			if tab.Resident() != 0 {
				t.Fatalf("resident after reset: %d", tab.Resident())
			}
			if st := tab.Stats(); st != (Stats{}) {
				t.Fatalf("stats after reset: %+v", st)
			}
			if r := tab.Probe(mapFetcher{loc(0, 0): 1}); r.Hit || r.Ghost {
				t.Fatalf("hit after reset: %+v", r)
			}
			// The table is fully usable again.
			tab.Record(steps(0, 0, 3), []uint64{33})
			if r := tab.Probe(mapFetcher{loc(0, 0): 3}); !r.Hit || r.Outs[0] != 33 {
				t.Fatalf("post-reset record lost: %+v", r)
			}
		})
	}
}

// TestConflictingLocation pins the rebuild path: a record whose next
// read names a different location than the resident subtree replaces it.
func TestConflictingLocation(t *testing.T) {
	tab := New(Config{})
	tab.Record(steps(0, 0, 1, 1, 0, 2), []uint64{1})
	tab.Record(steps(0, 0, 1, 2, 0, 3), []uint64{2}) // second read moved

	if r := tab.Probe(mapFetcher{loc(0, 0): 1, loc(2, 0): 3}); !r.Hit || r.Outs[0] != 2 {
		t.Fatalf("rebuilt path: %+v", r)
	}
	if r := tab.Probe(mapFetcher{loc(0, 0): 1, loc(1, 0): 2, loc(2, 0): 99}); r.Hit {
		t.Fatalf("stale subtree survived: %+v", r)
	}
}
