package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestMergeSnapshots(t *testing.T) {
	dst := RegistrySnapshot{
		Counters: map[string]int64{"a": 1, "b": 2},
		Gauges:   map[string]int64{"g": 10},
		Histograms: map[string]HistogramSnapshot{
			"h": {Bounds: []int64{10, 100}, Buckets: []int64{1, 2, 3}, Sum: 300, Count: 6,
				ExemplarVal: 50, ExemplarTrace: 0xA},
		},
	}
	src := RegistrySnapshot{
		Counters: map[string]int64{"b": 3, "c": 4},
		Gauges:   map[string]int64{"g": -2, "g2": 5},
		Histograms: map[string]HistogramSnapshot{
			"h": {Bounds: []int64{10, 100}, Buckets: []int64{4, 5, 6}, Sum: 700, Count: 15,
				ExemplarVal: 90, ExemplarTrace: 0xB},
			"skewed": {Bounds: []int64{1}, Buckets: []int64{1, 1}, Sum: 2, Count: 2},
		},
	}
	MergeSnapshots(&dst, &src)

	if dst.Counters["a"] != 1 || dst.Counters["b"] != 5 || dst.Counters["c"] != 4 {
		t.Errorf("counters = %v", dst.Counters)
	}
	if dst.Gauges["g"] != 8 || dst.Gauges["g2"] != 5 {
		t.Errorf("gauges = %v", dst.Gauges)
	}
	h := dst.Histograms["h"]
	if h.Sum != 1000 || h.Count != 21 {
		t.Errorf("histogram sum/count = %d/%d, want 1000/21", h.Sum, h.Count)
	}
	for i, want := range []int64{5, 7, 9} {
		if h.Buckets[i] != want {
			t.Errorf("bucket %d = %d, want %d", i, h.Buckets[i], want)
		}
	}
	if h.ExemplarVal != 90 || h.ExemplarTrace != 0xB {
		t.Errorf("exemplar = %d/%x, want the larger peer's 90/b", h.ExemplarVal, h.ExemplarTrace)
	}
	// The skewed histogram arrives as a new series, copied not aliased.
	sk := dst.Histograms["skewed"]
	sk.Buckets[0] = 999
	if src.Histograms["skewed"].Buckets[0] == 999 {
		t.Error("merge aliased the source's bucket slice")
	}

	// A second source with mismatched bounds must leave "h" untouched
	// and report the skip by name — a version-skewed fleet must not
	// present partial latency data as complete.
	skipped := MergeSnapshots(&dst, &RegistrySnapshot{Histograms: map[string]HistogramSnapshot{
		"h": {Bounds: []int64{1, 2}, Buckets: []int64{9, 9, 9}, Sum: 1, Count: 1},
	}})
	if h2 := dst.Histograms["h"]; h2.Sum != 1000 || h2.Count != 21 {
		t.Errorf("version-skewed merge corrupted h: %+v", h2)
	}
	if len(skipped) != 1 || skipped[0] != "h" {
		t.Errorf("skipped = %v, want [h]", skipped)
	}
}

// snapshotHandler serves a fixed snapshot at /metrics.json, standing in
// for a peer crcserve's metrics sidecar.
func snapshotHandler(s RegistrySnapshot) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(s)
	})
	return mux
}

func TestScrapeFleet(t *testing.T) {
	self := NewRegistry()
	self.Counter("crc_probes_total", "probes").Add(10)

	peerSnap := RegistrySnapshot{Counters: map[string]int64{"crc_probes_total": 32}}
	peer := httptest.NewServer(snapshotHandler(peerSnap))
	defer peer.Close()
	peerAddr := strings.TrimPrefix(peer.URL, "http://")

	// One healthy peer, one that does not exist: the scrape reports the
	// failure and still merges the rest.
	view := ScrapeFleet(self, []string{peerAddr, "127.0.0.1:1"}, 2*time.Second)
	if len(view.Peers) != 2 {
		t.Fatalf("peers = %+v", view.Peers)
	}
	if !view.Peers[0].OK || view.Peers[0].Error != "" {
		t.Errorf("healthy peer reported %+v", view.Peers[0])
	}
	if view.Peers[1].OK || view.Peers[1].Error == "" {
		t.Errorf("dead peer reported %+v", view.Peers[1])
	}
	if got := view.Merged.Counters["crc_probes_total"]; got != 42 {
		t.Errorf("merged counter = %d, want 42 (10 local + 32 peer)", got)
	}
}

func TestFleetHandler(t *testing.T) {
	self := NewRegistry()
	self.Counter("crc_probes_total", "probes").Add(7)

	peer := httptest.NewServer(snapshotHandler(RegistrySnapshot{
		Counters: map[string]int64{"crc_probes_total": 5},
	}))
	defer peer.Close()
	peerAddr := strings.TrimPrefix(peer.URL, "http://")

	node := httptest.NewServer(FleetHandler("node-0:8346", self, []string{peerAddr}, 2*time.Second))
	defer node.Close()

	resp, err := node.Client().Get(node.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var view FleetView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatalf("/fleet.json is not valid JSON: %v", err)
	}
	if view.Self != "node-0:8346" {
		t.Errorf("self = %q", view.Self)
	}
	if len(view.Peers) != 1 || !view.Peers[0].OK {
		t.Errorf("peers = %+v", view.Peers)
	}
	if got := view.Merged.Counters["crc_probes_total"]; got != 12 {
		t.Errorf("merged counter = %d, want 12", got)
	}
}

// TestFleetHandlerReportsSkew serves one peer whose histogram bucket
// bounds disagree with the local registry's and checks /fleet.json
// names the skipped series for that peer.
func TestFleetHandlerReportsSkew(t *testing.T) {
	self := NewRegistry()
	self.Histogram("crc_rtt_ns", "rtt", []int64{10, 100}).Observe(50)

	peer := httptest.NewServer(snapshotHandler(RegistrySnapshot{
		Histograms: map[string]HistogramSnapshot{
			// Different bucket layout: a peer running another version.
			"crc_rtt_ns": {Bounds: []int64{1, 2, 3}, Buckets: []int64{1, 1, 1, 1}, Sum: 6, Count: 4},
		},
	}))
	defer peer.Close()
	peerAddr := strings.TrimPrefix(peer.URL, "http://")

	node := httptest.NewServer(FleetHandler("node-0:8346", self, []string{peerAddr}, 2*time.Second))
	defer node.Close()

	resp, err := node.Client().Get(node.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view FleetView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	if len(view.Peers) != 1 || !view.Peers[0].OK {
		t.Fatalf("peers = %+v", view.Peers)
	}
	if got := view.Peers[0].Skipped; len(got) != 1 || got[0] != "crc_rtt_ns" {
		t.Errorf("peer skipped = %v, want [crc_rtt_ns]", got)
	}
	// The local series survives untouched.
	if h := view.Merged.Histograms["crc_rtt_ns"]; h.Count != 1 {
		t.Errorf("merged histogram corrupted: %+v", h)
	}
}
