package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"strings"
	"sync"
)

// This file renders a Registry in the three export formats:
//
//   - Prometheus text exposition format (WritePrometheus), served at
//     /metrics by Handler;
//   - a JSON snapshot (Snapshot / WriteJSON), served at /metrics.json;
//   - expvar (PublishExpvar), which piggybacks the JSON snapshot onto the
//     standard /debug/vars page.

// familyName strips a fixed label suffix: `name{label="x"}` → `name`.
func familyName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format. Metrics are sorted by name; # HELP/# TYPE headers are emitted
// once per metric family.
func WritePrometheus(w io.Writer, r *Registry) {
	seen := map[string]bool{}
	header := func(name, help, typ string) {
		fam := familyName(name)
		if seen[fam] {
			return
		}
		seen[fam] = true
		if help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", fam, help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", fam, typ)
	}
	r.visit(
		func(c *Counter) {
			header(c.name, c.help, "counter")
			fmt.Fprintf(w, "%s %d\n", c.name, c.Value())
		},
		func(g *Gauge) {
			header(g.name, g.help, "gauge")
			fmt.Fprintf(w, "%s %d\n", g.name, g.Value())
		},
		func(h *Histogram) {
			header(h.name, h.help, "histogram")
			s := h.Snapshot()
			cum := int64(0)
			for i, b := range s.Bounds {
				cum += s.Buckets[i]
				fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", h.name, b, cum)
			}
			cum += s.Buckets[len(s.Buckets)-1]
			fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.name, cum)
			fmt.Fprintf(w, "%s_sum %d\n", h.name, s.Sum)
			fmt.Fprintf(w, "%s_count %d\n", h.name, s.Count)
		},
	)
}

// RegistrySnapshot is the JSON form of a registry's current state.
type RegistrySnapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every metric's current value.
func (r *Registry) Snapshot() RegistrySnapshot {
	s := RegistrySnapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	r.visit(
		func(c *Counter) { s.Counters[c.name] = c.Value() },
		func(g *Gauge) { s.Gauges[g.name] = g.Value() },
		func(h *Histogram) { s.Histograms[h.name] = h.Snapshot() },
	)
	return s
}

// WriteJSON renders the registry snapshot as indented JSON.
func WriteJSON(w io.Writer, r *Registry) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

var expvarOnce sync.Once

// PublishExpvar publishes the default registry as the expvar variable
// "crc_metrics" (a JSON snapshot recomputed on every /debug/vars read).
// Safe to call more than once; only the first call registers.
func PublishExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("crc_metrics", expvar.Func(func() any {
			return defaultRegistry.Snapshot()
		}))
	})
}
