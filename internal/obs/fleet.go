package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"
)

// This file is the fleet-aggregation half of the observability layer.
// Every crcserve node already exports its registry at /metrics.json;
// ScrapeFleet polls a peer list, merges the per-node snapshots with the
// local registry into one fleet view, and FleetHandler serves the
// result as /fleet.json — so one curl against any node answers "what is
// the fleet's aggregate hit rate per segment" without external
// scrape infrastructure.

// FleetPeer is one scraped peer's outcome.
type FleetPeer struct {
	Addr  string `json:"addr"`
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	// Skipped lists histogram metrics this peer exported with bucket
	// bounds that do not match the merged view's (version skew): their
	// samples are absent from Merged, so the fleet's latency data for
	// these series is partial, not complete.
	Skipped []string `json:"skipped_metrics,omitempty"`
}

// FleetView is the /fleet.json document: per-peer scrape status plus
// the merged registry snapshot (self included).
type FleetView struct {
	Self   string           `json:"self,omitempty"`
	Peers  []FleetPeer      `json:"peers"`
	Merged RegistrySnapshot `json:"merged"`
}

// mFleetMergeSkipped counts histogram series dropped from fleet merges
// because a peer's bucket bounds disagreed with the merged view's.
var mFleetMergeSkipped = NewCounter("fleet_merge_skipped",
	"histogram series skipped in fleet merges over mismatched bucket bounds")

// MergeSnapshots folds src into dst: counters and gauges sum by name,
// histograms sum bucket-wise when the bounds agree, and the larger
// exemplar wins so the fleet's worst traced outlier survives the merge.
// Histograms whose bucket bounds disagree keep dst's series untouched —
// a version-skewed peer cannot corrupt the view — and their names are
// returned (sorted) so callers can report the merge as partial instead
// of silently serving incomplete latency data; each skip also bumps the
// fleet_merge_skipped counter.
func MergeSnapshots(dst *RegistrySnapshot, src *RegistrySnapshot) []string {
	if dst.Counters == nil {
		dst.Counters = map[string]int64{}
	}
	if dst.Gauges == nil {
		dst.Gauges = map[string]int64{}
	}
	if dst.Histograms == nil {
		dst.Histograms = map[string]HistogramSnapshot{}
	}
	for name, v := range src.Counters {
		dst.Counters[name] += v
	}
	for name, v := range src.Gauges {
		dst.Gauges[name] += v
	}
	var skipped []string
	for name, sh := range src.Histograms {
		dh, ok := dst.Histograms[name]
		if !ok {
			// Copy so later merges never alias the source's slices.
			nh := HistogramSnapshot{
				Bounds:        append([]int64(nil), sh.Bounds...),
				Buckets:       append([]int64(nil), sh.Buckets...),
				Sum:           sh.Sum,
				Count:         sh.Count,
				ExemplarVal:   sh.ExemplarVal,
				ExemplarTrace: sh.ExemplarTrace,
			}
			dst.Histograms[name] = nh
			continue
		}
		if !sameBounds(dh, sh) {
			skipped = append(skipped, name)
			mFleetMergeSkipped.Inc()
			continue
		}
		for i := range dh.Buckets {
			dh.Buckets[i] += sh.Buckets[i]
		}
		dh.Sum += sh.Sum
		dh.Count += sh.Count
		if sh.ExemplarVal > dh.ExemplarVal {
			dh.ExemplarVal = sh.ExemplarVal
			dh.ExemplarTrace = sh.ExemplarTrace
		}
		dst.Histograms[name] = dh
	}
	sort.Strings(skipped)
	return skipped
}

// sameBounds reports whether two histogram snapshots share a bucket
// layout and can be summed bucket-wise.
func sameBounds(a, b HistogramSnapshot) bool {
	if len(a.Bounds) != len(b.Bounds) || len(a.Buckets) != len(b.Buckets) {
		return false
	}
	for i := range a.Bounds {
		if a.Bounds[i] != b.Bounds[i] {
			return false
		}
	}
	return true
}

// ScrapeFleet polls each peer's /metrics.json concurrently (bounded by
// timeout per request) and returns the local registry's snapshot merged
// with every reachable peer. Unreachable or malformed peers are
// reported in Peers and excluded from the merge; a scrape never fails
// as a whole.
func ScrapeFleet(self *Registry, peers []string, timeout time.Duration) FleetView {
	view := FleetView{Peers: make([]FleetPeer, len(peers))}
	local := self.Snapshot()
	view.Merged = RegistrySnapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	MergeSnapshots(&view.Merged, &local)

	client := &http.Client{Timeout: timeout}
	snaps := make([]*RegistrySnapshot, len(peers))
	var wg sync.WaitGroup
	for i, addr := range peers {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			view.Peers[i].Addr = addr
			resp, err := client.Get("http://" + addr + "/metrics.json")
			if err != nil {
				view.Peers[i].Error = err.Error()
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				view.Peers[i].Error = fmt.Sprintf("status %d", resp.StatusCode)
				return
			}
			var s RegistrySnapshot
			if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
				view.Peers[i].Error = "decode: " + err.Error()
				return
			}
			view.Peers[i].OK = true
			snaps[i] = &s
		}(i, addr)
	}
	wg.Wait()
	// Merge serially in peer order for determinism, recording per peer
	// which histogram series were skipped over mismatched bounds.
	for i, s := range snaps {
		if s != nil {
			view.Peers[i].Skipped = MergeSnapshots(&view.Merged, s)
		}
	}
	return view
}

// FleetHandler serves /fleet.json: every request re-scrapes the peers'
// /metrics.json endpoints and returns the merged fleet view. self
// identifies this node in the document; peers are host:port metric
// addresses of the other nodes.
func FleetHandler(self string, reg *Registry, peers []string, timeout time.Duration) http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		view := ScrapeFleet(reg, peers, timeout)
		view.Self = self
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(view)
	}
}
