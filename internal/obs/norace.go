//go:build !race

package obs

// RaceEnabled reports whether the race detector is compiled in (timing
// assertions in tests are meaningless under its instrumentation).
const RaceEnabled = false
