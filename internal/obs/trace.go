package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the request-tracing half of the observability layer: a
// sampled, allocation-conscious span recorder. A root span is started
// where a request enters the system (TieredMemo.Do, a loadgen worker),
// child spans at each level it traverses (L1 probe, pool routing, the
// wire round trip), and server spans where a traced frame is executed
// on a crcserve node — stitched to the client side by the trace id the
// frame carried (wire.FlagTraced). Ended spans land in one fixed-size
// ring buffer, exported as JSON at /traces.
//
// Cost discipline mirrors the metrics core: with tracing disabled (the
// default) StartRoot is a single atomic load returning the zero Span,
// and every Span method no-ops on an unsampled span — the instrumented
// hot paths stay zero-allocation, pinned by the existing AllocsPerRun
// assertions. With tracing enabled, sampling keeps the recorder off
// most requests: only every sampleEvery-th root is traced, and an
// untraced request's cost is still just the atomic load plus a counter
// increment. Span names and outcomes must be static strings, so even a
// sampled span allocates nothing — End copies a fixed-size record into
// the ring under a mutex.

// traceOn is the tracing switch, independent of the metrics switch: a
// process can serve metrics permanently while sampling traces only
// when someone is looking.
var (
	traceOn    atomic.Bool
	traceEvery atomic.Int64  // sample every Nth root; <=1 traces all
	rootSeq    atomic.Uint64 // root counter driving the sampler
	spanSeq    atomic.Uint64 // span-id source (unique per process)
)

// traceSeed perturbs trace ids so separately started processes emit
// distinct id streams. Ids only need to group spans; they are not
// secrets and need no cryptographic randomness.
var traceSeed = uint64(time.Now().UnixNano()) ^ uint64(os.Getpid())<<36

// DefaultTraceCapacity is the span ring size EnableTrace(_, 0) uses.
const DefaultTraceCapacity = 4096

// maxSpanAnnotations bounds the typed key/value events a span carries;
// the fixed array keeps Span and SpanRecord allocation-free.
const maxSpanAnnotations = 4

// SpanKind classifies where a span was recorded.
type SpanKind uint8

// Span kinds.
const (
	// KindChild is an intermediate client-side span (L1 probe, pool
	// routing hop, wire round trip, compute).
	KindChild SpanKind = iota
	// KindRoot is a request's entry span; its duration is the request's
	// end-to-end latency.
	KindRoot
	// KindServer is a span adopted from a traced wire frame on the
	// serving node: same trace id as the client side, no parent link
	// (the parent lives in another process).
	KindServer
)

func (k SpanKind) String() string {
	switch k {
	case KindRoot:
		return "root"
	case KindServer:
		return "server"
	default:
		return "child"
	}
}

// Annotation is one typed event on a span: a static key and an int64
// value (a count, a nanosecond duration, a flag).
type Annotation struct {
	Key string
	Val int64
}

// SpanRecord is one ended span as stored in the ring.
type SpanRecord struct {
	Trace  uint64
	Span   uint64
	Parent uint64 // 0 for roots and server spans
	Kind   SpanKind
	Name   string
	// Outcome classifies how the span ended: "l1_hit", "hit", "miss",
	// "bypass", "compute", "failover", ... Empty when never set.
	Outcome string
	Start   int64 // unix nanoseconds
	Dur     int64 // nanoseconds
	Annots  [maxSpanAnnotations]Annotation
	NAnnot  uint8
}

// Annotations returns the span's recorded events.
func (r *SpanRecord) Annotations() []Annotation { return r.Annots[:r.NAnnot] }

// Annotation returns the value recorded under key.
func (r *SpanRecord) Annotation(key string) (int64, bool) {
	for _, a := range r.Annotations() {
		if a.Key == key {
			return a.Val, true
		}
	}
	return 0, false
}

// The span ring: a fixed buffer overwritten oldest-first. The mutex is
// uncontended in practice (sampled spans are rare by construction) and
// keeps records torn-write-free for the exporters.
var (
	ringMu    sync.Mutex
	ringBuf   []SpanRecord
	ringTotal uint64 // spans ever recorded; total - len(buf) have been dropped
)

// EnableTrace turns the span recorder on: every sampleEvery-th root
// span (1 traces every request) is recorded into a ring of capacity
// spans (0 uses DefaultTraceCapacity). Re-enabling with a different
// capacity re-allocates and clears the ring; with the same capacity the
// recorded spans survive.
func EnableTrace(sampleEvery, capacity int) {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	ringMu.Lock()
	if len(ringBuf) != capacity {
		ringBuf = make([]SpanRecord, capacity)
		ringTotal = 0
	}
	ringMu.Unlock()
	traceEvery.Store(int64(sampleEvery))
	traceOn.Store(true)
}

// DisableTrace stops recording; the ring remains readable.
func DisableTrace() { traceOn.Store(false) }

// TraceOn reports whether the span recorder is live. Hot paths call
// this (or StartRoot, which embeds the same single atomic load) once.
func TraceOn() bool { return traceOn.Load() }

// ResetTraces empties the ring without changing its capacity.
func ResetTraces() {
	ringMu.Lock()
	for i := range ringBuf {
		ringBuf[i] = SpanRecord{}
	}
	ringTotal = 0
	ringMu.Unlock()
}

// recordSpan stores one ended span, overwriting the oldest once the
// ring is full. The ring can never exceed its capacity.
func recordSpan(rec SpanRecord) {
	ringMu.Lock()
	if len(ringBuf) > 0 {
		ringBuf[ringTotal%uint64(len(ringBuf))] = rec
		ringTotal++
	}
	ringMu.Unlock()
}

// TraceSpans copies the recorded spans out, oldest first.
func TraceSpans() []SpanRecord {
	ringMu.Lock()
	defer ringMu.Unlock()
	n := ringTotal
	capn := uint64(len(ringBuf))
	if n > capn {
		n = capn
	}
	out := make([]SpanRecord, 0, n)
	start := ringTotal - n
	for i := uint64(0); i < n; i++ {
		out = append(out, ringBuf[(start+i)%capn])
	}
	return out
}

// TraceDropped returns how many spans have been overwritten since the
// ring was last (re)enabled or reset.
func TraceDropped() uint64 {
	ringMu.Lock()
	defer ringMu.Unlock()
	if ringTotal > uint64(len(ringBuf)) {
		return ringTotal - uint64(len(ringBuf))
	}
	return 0
}

// TraceCtx is the propagated half of a span: enough to parent children
// locally and to stamp a wire frame (Trace travels; Span does not).
// The zero TraceCtx means "not sampled" and makes every downstream
// span operation a no-op.
type TraceCtx struct {
	Trace uint64
	Span  uint64
}

// Sampled reports whether this context belongs to a recorded trace.
func (c TraceCtx) Sampled() bool { return c.Trace != 0 }

// Span is one in-flight span. It is a plain stack value — callers keep
// it in a local and call End when the unit of work finishes. The zero
// Span is valid and inert: every method no-ops, so unsampled requests
// pay only the branches.
type Span struct {
	trace   uint64
	id      uint64
	parent  uint64
	kind    SpanKind
	name    string
	outcome string
	start   time.Time
	annots  [maxSpanAnnotations]Annotation
	nannot  uint8
}

// mix64 is the murmur3 finalizer (full 64-bit avalanche); it turns the
// sequential root counter into well-spread trace ids.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// StartRoot begins a new trace at a request's entry point, subject to
// sampling. With tracing disabled this is one atomic load returning
// the zero Span; name must be a static string.
func StartRoot(name string) Span {
	if !traceOn.Load() {
		return Span{}
	}
	n := rootSeq.Add(1)
	if e := traceEvery.Load(); e > 1 && n%uint64(e) != 0 {
		return Span{}
	}
	id := mix64(n ^ traceSeed)
	if id == 0 {
		id = 1
	}
	return Span{trace: id, id: spanSeq.Add(1), kind: KindRoot, name: name, start: time.Now()}
}

// StartSpan begins a child span under parent. An unsampled parent
// yields the zero Span — no time is read, nothing records.
func StartSpan(parent TraceCtx, name string) Span {
	if parent.Trace == 0 {
		return Span{}
	}
	return Span{trace: parent.Trace, id: spanSeq.Add(1), parent: parent.Span,
		kind: KindChild, name: name, start: time.Now()}
}

// StartServerSpan adopts a trace id carried by a wire frame on the
// serving side. It records only when this process's tracer is on (the
// client decided the request was worth tracing; the server decides
// whether it is recording at all) and the frame was traced (trace 0
// yields the zero Span).
func StartServerSpan(trace uint64, name string) Span {
	if trace == 0 || !traceOn.Load() {
		return Span{}
	}
	return Span{trace: trace, id: spanSeq.Add(1), kind: KindServer, name: name, start: time.Now()}
}

// Sampled reports whether this span records on End.
func (s *Span) Sampled() bool { return s.trace != 0 }

// Context returns the propagation context for children and wire frames.
func (s *Span) Context() TraceCtx {
	return TraceCtx{Trace: s.trace, Span: s.id}
}

// TraceID returns the span's trace id (0 when unsampled) — the value
// stamped onto wire frames.
func (s *Span) TraceID() uint64 { return s.trace }

// Outcome sets how the span ended; o must be a static string. The last
// call wins.
func (s *Span) Outcome(o string) {
	if s.trace != 0 {
		s.outcome = o
	}
}

// Annotate attaches one typed event; key must be a static string.
// Beyond maxSpanAnnotations further events are dropped silently.
func (s *Span) Annotate(key string, val int64) {
	if s.trace == 0 || int(s.nannot) >= len(s.annots) {
		return
	}
	s.annots[s.nannot] = Annotation{Key: key, Val: val}
	s.nannot++
}

// End records the span into the ring and disarms it (a second End is a
// no-op, so deferred and explicit Ends can coexist).
func (s *Span) End() {
	if s.trace == 0 {
		return
	}
	rec := SpanRecord{
		Trace:   s.trace,
		Span:    s.id,
		Parent:  s.parent,
		Kind:    s.kind,
		Name:    s.name,
		Outcome: s.outcome,
		Start:   s.start.UnixNano(),
		Dur:     time.Since(s.start).Nanoseconds(),
		Annots:  s.annots,
		NAnnot:  s.nannot,
	}
	recordSpan(rec)
	s.trace = 0
}

// spanJSON is the /traces wire form of one span.
type spanJSON struct {
	Trace       string           `json:"trace"`
	Span        string           `json:"span"`
	Parent      string           `json:"parent,omitempty"`
	Kind        string           `json:"kind"`
	Name        string           `json:"name"`
	Outcome     string           `json:"outcome,omitempty"`
	StartUnixNS int64            `json:"start_unix_ns"`
	DurNS       int64            `json:"dur_ns"`
	Annotations map[string]int64 `json:"annotations,omitempty"`
}

// tracesJSON is the /traces document.
type tracesJSON struct {
	Enabled     bool       `json:"enabled"`
	SampleEvery int64      `json:"sample_every"`
	Capacity    int        `json:"capacity"`
	Recorded    int        `json:"recorded"`
	Dropped     uint64     `json:"dropped"`
	Spans       []spanJSON `json:"spans"`
}

func hex64(v uint64) string { return fmt.Sprintf("%016x", v) }

func spanToJSON(r *SpanRecord) spanJSON {
	j := spanJSON{
		Trace:       hex64(r.Trace),
		Span:        hex64(r.Span),
		Kind:        r.Kind.String(),
		Name:        r.Name,
		Outcome:     r.Outcome,
		StartUnixNS: r.Start,
		DurNS:       r.Dur,
	}
	if r.Parent != 0 {
		j.Parent = hex64(r.Parent)
	}
	if r.NAnnot > 0 {
		j.Annotations = make(map[string]int64, r.NAnnot)
		for _, a := range r.Annotations() {
			j.Annotations[a.Key] = a.Val
		}
	}
	return j
}

// WriteTraces renders the span ring as indented JSON (the /traces
// endpoint body): recorder state, drop accounting, and every recorded
// span oldest first.
func WriteTraces(w io.Writer) error {
	ringMu.Lock()
	capn := len(ringBuf)
	ringMu.Unlock()
	spans := TraceSpans()
	doc := tracesJSON{
		Enabled:     traceOn.Load(),
		SampleEvery: traceEvery.Load(),
		Capacity:    capn,
		Recorded:    len(spans),
		Dropped:     TraceDropped(),
		Spans:       make([]spanJSON, len(spans)),
	}
	for i := range spans {
		doc.Spans[i] = spanToJSON(&spans[i])
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// SpanStat aggregates one span name across a set of records — the
// "where did the time go" row of a latency breakdown.
type SpanStat struct {
	Name     string
	Count    int
	TotalNS  int64
	MaxNS    int64
	MaxTrace uint64 // trace id of the slowest observation: the clickable exemplar
}

// AvgNS returns the mean duration.
func (s SpanStat) AvgNS() int64 {
	if s.Count == 0 {
		return 0
	}
	return s.TotalNS / int64(s.Count)
}

// TraceSummary groups one trace's spans.
type TraceSummary struct {
	Trace uint64
	Spans []SpanRecord // in recording order
}

// Root returns the trace's root span, or nil when it rolled off the
// ring before the summary was taken.
func (t *TraceSummary) Root() *SpanRecord {
	for i := range t.Spans {
		if t.Spans[i].Kind == KindRoot {
			return &t.Spans[i]
		}
	}
	return nil
}

// Stitched reports whether the trace spans process boundaries: a root
// on the client side and at least one server span adopted from the
// traced wire frame.
func (t *TraceSummary) Stitched() bool {
	var root, server bool
	for i := range t.Spans {
		switch t.Spans[i].Kind {
		case KindRoot:
			root = true
		case KindServer:
			server = true
		}
	}
	return root && server
}

// Breakdown is the trace-derived latency analysis the loadgen and fleet
// reports print: per-span-name time accounting, per-trace summaries
// sorted slowest first, and how many traces stitched across the wire.
type Breakdown struct {
	Stats    []SpanStat     // sorted by name
	Traces   []TraceSummary // sorted by root duration, slowest first
	Stitched int            // traces with a root and a server span
}

// Summarize builds a Breakdown from raw span records (duplicates from
// overlapping snapshots are tolerated: records are deduplicated by
// (trace, span) id first).
func Summarize(spans []SpanRecord) Breakdown {
	type spanID struct{ t, s uint64 }
	seen := make(map[spanID]bool, len(spans))
	stats := map[string]*SpanStat{}
	traces := map[uint64]*TraceSummary{}
	var order []uint64
	for i := range spans {
		r := &spans[i]
		id := spanID{r.Trace, r.Span}
		if seen[id] {
			continue
		}
		seen[id] = true
		st := stats[r.Name]
		if st == nil {
			st = &SpanStat{Name: r.Name}
			stats[r.Name] = st
		}
		st.Count++
		st.TotalNS += r.Dur
		if r.Dur >= st.MaxNS {
			st.MaxNS = r.Dur
			st.MaxTrace = r.Trace
		}
		tr := traces[r.Trace]
		if tr == nil {
			tr = &TraceSummary{Trace: r.Trace}
			traces[r.Trace] = tr
			order = append(order, r.Trace)
		}
		tr.Spans = append(tr.Spans, *r)
	}

	var b Breakdown
	for _, st := range stats {
		b.Stats = append(b.Stats, *st)
	}
	sort.Slice(b.Stats, func(i, j int) bool { return b.Stats[i].Name < b.Stats[j].Name })
	for _, id := range order {
		tr := traces[id]
		if tr.Stitched() {
			b.Stitched++
		}
		b.Traces = append(b.Traces, *tr)
	}
	sort.SliceStable(b.Traces, func(i, j int) bool {
		return rootDur(&b.Traces[i]) > rootDur(&b.Traces[j])
	})
	return b
}

func rootDur(t *TraceSummary) int64 {
	if r := t.Root(); r != nil {
		return r.Dur
	}
	return -1
}

// FormatTrace renders one trace as a single annotated line, spans in
// start order: the slow-request exemplar the reports print.
//
//	trace 4f3a9c1b2d77e801 812µs: tiered.do[compute] 812µs > pool.get[miss]{hops=1} 790µs > ...
func FormatTrace(t *TraceSummary) string {
	spans := append([]SpanRecord(nil), t.Spans...)
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	var sb strings.Builder
	fmt.Fprintf(&sb, "trace %s", hex64(t.Trace))
	if r := t.Root(); r != nil {
		fmt.Fprintf(&sb, " %v", time.Duration(r.Dur).Round(time.Microsecond))
	}
	sb.WriteString(":")
	for i := range spans {
		r := &spans[i]
		if i > 0 {
			sb.WriteString(" >")
		}
		fmt.Fprintf(&sb, " %s", r.Name)
		if r.Outcome != "" {
			fmt.Fprintf(&sb, "[%s]", r.Outcome)
		}
		if r.NAnnot > 0 {
			sb.WriteString("{")
			for j, a := range r.Annotations() {
				if j > 0 {
					sb.WriteString(" ")
				}
				fmt.Fprintf(&sb, "%s=%d", a.Key, a.Val)
			}
			sb.WriteString("}")
		}
		fmt.Fprintf(&sb, " %v", time.Duration(r.Dur).Round(time.Microsecond))
	}
	return sb.String()
}

// Format prints the breakdown: the per-name time table (with the
// slowest observation's trace id, so outliers are clickable in
// /traces) and up to slowest exemplar trace lines.
func (b *Breakdown) Format(w io.Writer, slowest int) {
	if len(b.Stats) == 0 {
		fmt.Fprintln(w, "trace breakdown: no spans recorded")
		return
	}
	fmt.Fprintf(w, "trace breakdown (%d traces, %d stitched client>server):\n",
		len(b.Traces), b.Stitched)
	for _, st := range b.Stats {
		fmt.Fprintf(w, "  %-12s x%-6d avg %-10v max %-10v slowest trace %s\n",
			st.Name, st.Count,
			time.Duration(st.AvgNS()).Round(time.Microsecond),
			time.Duration(st.MaxNS).Round(time.Microsecond),
			hex64(st.MaxTrace))
	}
	n := slowest
	if n > len(b.Traces) {
		n = len(b.Traces)
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(w, "  slowest[%d] %s\n", i, FormatTrace(&b.Traces[i]))
	}
}
