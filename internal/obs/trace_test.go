package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// traceTest resets the global recorder around a test so the package's
// tests compose regardless of order.
func traceTest(t *testing.T, sampleEvery, capacity int) {
	t.Helper()
	EnableTrace(sampleEvery, capacity)
	ResetTraces()
	t.Cleanup(func() {
		DisableTrace()
		ResetTraces()
	})
}

// TestTraceDisabledZeroAlloc pins the disabled path: StartRoot plus the
// full span method surface must not allocate — it is on TieredMemo.Do's
// L1-hit path, which the memo alloc tests hold at exactly zero.
func TestTraceDisabledZeroAlloc(t *testing.T) {
	DisableTrace()
	if avg := testing.AllocsPerRun(200, func() {
		root := StartRoot("alloc.test")
		child := StartSpan(root.Context(), "child")
		child.Outcome("x")
		child.End()
		root.Annotate("k", 1)
		root.Outcome("done")
		root.End()
	}); avg != 0 {
		t.Errorf("disabled trace path allocates %.1f/op, want 0", avg)
	}
}

// TestTraceEnabledZeroAlloc pins the sampled path too: names and
// outcomes are static strings and End copies a fixed-size record into a
// preallocated ring, so even a fully traced request allocates nothing.
func TestTraceEnabledZeroAlloc(t *testing.T) {
	traceTest(t, 1, 1024)
	if avg := testing.AllocsPerRun(200, func() {
		root := StartRoot("alloc.test")
		child := StartSpan(root.Context(), "child")
		child.Outcome("x")
		child.End()
		root.Annotate("k", 1)
		root.Outcome("done")
		root.End()
	}); avg != 0 {
		t.Errorf("enabled trace path allocates %.1f/op, want 0", avg)
	}
}

func TestTraceSampling(t *testing.T) {
	traceTest(t, 4, 1024)
	for i := 0; i < 100; i++ {
		root := StartRoot("sampled")
		root.End()
	}
	got := len(TraceSpans())
	if got != 25 {
		t.Errorf("sampleEvery=4 over 100 roots recorded %d spans, want 25", got)
	}
}

// TestTraceRingBound fills a tiny ring far past capacity: the ring may
// never grow, drops must be accounted, and the survivors are the newest
// spans oldest-first.
func TestTraceRingBound(t *testing.T) {
	traceTest(t, 1, 8)
	for i := 0; i < 100; i++ {
		root := StartRoot("ring")
		root.Annotate("i", int64(i))
		root.End()
	}
	spans := TraceSpans()
	if len(spans) != 8 {
		t.Fatalf("ring holds %d spans, capacity 8", len(spans))
	}
	if d := TraceDropped(); d != 92 {
		t.Errorf("dropped = %d, want 92", d)
	}
	for i := range spans {
		if v, ok := spans[i].Annotation("i"); !ok || v != int64(92+i) {
			t.Errorf("span %d annotation i = %d (ok=%v), want %d (newest 8, oldest first)",
				i, v, ok, 92+i)
		}
	}
}

// TestSpanLifecycle covers the inert zero values and the double-End
// guard.
func TestSpanLifecycle(t *testing.T) {
	traceTest(t, 1, 64)

	var zero Span
	if zero.Sampled() {
		t.Error("zero Span claims to be sampled")
	}
	zero.Outcome("x")
	zero.Annotate("k", 1)
	zero.End() // must not record
	if n := len(TraceSpans()); n != 0 {
		t.Fatalf("zero Span recorded %d spans", n)
	}

	if sp := StartSpan(TraceCtx{}, "orphan"); sp.Sampled() {
		t.Error("child of an unsampled parent is sampled")
	}
	if sp := StartServerSpan(0, "srv"); sp.Sampled() {
		t.Error("server span with trace 0 is sampled")
	}

	root := StartRoot("life")
	if !root.Sampled() || root.TraceID() == 0 {
		t.Fatalf("root not sampled with tracing on: %+v", root)
	}
	tid := root.TraceID() // End disarms the span and zeroes its id
	root.End()
	root.End() // second End must be a no-op
	if n := len(TraceSpans()); n != 1 {
		t.Fatalf("double End recorded %d spans, want 1", n)
	}

	// A server span adopts the client's trace id verbatim.
	srv := StartServerSpan(tid, "srv.get")
	srv.End()
	spans := TraceSpans()
	if len(spans) != 2 || spans[1].Trace != spans[0].Trace || spans[1].Kind != KindServer {
		t.Fatalf("server span did not adopt the trace id: %+v", spans)
	}
}

func TestTracesEndpoint(t *testing.T) {
	traceTest(t, 1, 64)
	root := StartRoot("endpoint.do")
	child := StartSpan(root.Context(), "rpc.get")
	child.Outcome("hit")
	child.Annotate("hops", 1)
	child.End()
	srv := StartServerSpan(root.TraceID(), "srv.get")
	srv.End()
	root.Outcome("l2_hit")
	root.End()

	ts := httptest.NewServer(Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var doc struct {
		Enabled     bool  `json:"enabled"`
		SampleEvery int64 `json:"sample_every"`
		Capacity    int   `json:"capacity"`
		Recorded    int   `json:"recorded"`
		Spans       []struct {
			Trace       string           `json:"trace"`
			Span        string           `json:"span"`
			Parent      string           `json:"parent"`
			Kind        string           `json:"kind"`
			Name        string           `json:"name"`
			Outcome     string           `json:"outcome"`
			DurNS       int64            `json:"dur_ns"`
			Annotations map[string]int64 `json:"annotations"`
		} `json:"spans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("/traces is not valid JSON: %v", err)
	}
	if !doc.Enabled || doc.SampleEvery != 1 || doc.Capacity != 64 || doc.Recorded != 3 {
		t.Fatalf("header fields: %+v", doc)
	}
	byName := map[string]int{}
	for _, s := range doc.Spans {
		byName[s.Name]++
		if s.Trace != doc.Spans[0].Trace {
			t.Errorf("span %s has trace %s, want all spans on one trace %s",
				s.Name, s.Trace, doc.Spans[0].Trace)
		}
		if len(s.Trace) != 16 {
			t.Errorf("trace id %q is not 16 hex chars", s.Trace)
		}
	}
	if byName["endpoint.do"] != 1 || byName["rpc.get"] != 1 || byName["srv.get"] != 1 {
		t.Errorf("span names = %v", byName)
	}
	for _, s := range doc.Spans {
		switch s.Name {
		case "rpc.get":
			if s.Outcome != "hit" || s.Annotations["hops"] != 1 || s.Parent == "" {
				t.Errorf("rpc.get span wrong: %+v", s)
			}
		case "srv.get":
			if s.Kind != "server" || s.Parent != "" {
				t.Errorf("srv.get span wrong: %+v", s)
			}
		case "endpoint.do":
			if s.Kind != "root" || s.Outcome != "l2_hit" {
				t.Errorf("root span wrong: %+v", s)
			}
		}
	}
}

// TestSummarize checks dedup across overlapping snapshots, stitching,
// per-name stats and the exemplar trace id.
func TestSummarize(t *testing.T) {
	traceTest(t, 1, 64)

	// Trace A: stitched (root + server), slow.
	rootA := StartRoot("do")
	srvA := StartServerSpan(rootA.TraceID(), "srv.get")
	srvA.End()
	rootA.End()
	// Trace B: client-only.
	rootB := StartRoot("do")
	rootB.End()

	spans := TraceSpans()
	if len(spans) != 3 {
		t.Fatalf("recorded %d spans, want 3", len(spans))
	}
	// Feed overlapping snapshots: dedup must collapse them.
	bd := Summarize(append(spans, spans...))
	if len(bd.Traces) != 2 {
		t.Fatalf("summarize found %d traces, want 2", len(bd.Traces))
	}
	if bd.Stitched != 1 {
		t.Errorf("stitched = %d, want 1", bd.Stitched)
	}
	var doStat *SpanStat
	for i := range bd.Stats {
		if bd.Stats[i].Name == "do" {
			doStat = &bd.Stats[i]
		}
	}
	if doStat == nil || doStat.Count != 2 {
		t.Fatalf("stat for 'do' = %+v, want count 2 (dedup failed?)", doStat)
	}
	if doStat.MaxTrace == 0 {
		t.Error("exemplar trace id missing on the stat row")
	}
	line := FormatTrace(&bd.Traces[0])
	if !strings.Contains(line, "trace ") || !strings.Contains(line, "do") {
		t.Errorf("FormatTrace = %q", line)
	}
	var out strings.Builder
	bd.Format(&out, 1)
	if !strings.Contains(out.String(), "slowest[0] trace") {
		t.Errorf("breakdown format missing exemplar:\n%s", out.String())
	}
}

// TestTraceHammer runs recorders against readers under -race: spans
// from many goroutines while TraceSpans and WriteTraces snapshot
// concurrently. Correctness bar: no race reports, ring never exceeds
// capacity, every record read is internally consistent (a name we
// wrote).
func TestTraceHammer(t *testing.T) {
	traceTest(t, 1, 128)
	const writers = 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				root := StartRoot("hammer")
				child := StartSpan(root.Context(), "hammer.child")
				child.End()
				root.Outcome("ok")
				root.End()
			}
		}()
	}
	for i := 0; i < 50; i++ {
		spans := TraceSpans()
		if len(spans) > 128 {
			t.Fatalf("ring grew past capacity: %d", len(spans))
		}
		for j := range spans {
			if n := spans[j].Name; n != "hammer" && n != "hammer.child" {
				t.Fatalf("torn record: name %q", n)
			}
		}
		var sb strings.Builder
		if err := WriteTraces(&sb); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
