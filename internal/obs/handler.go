package obs

import (
	"expvar"
	"net/http"
	"net/http/pprof"
)

// Handler returns a mux serving the live observability surface of the
// default registry:
//
//	/metrics       Prometheus text exposition format
//	/metrics.json  JSON snapshot of every counter, gauge and histogram
//	/traces        JSON dump of the span ring (see EnableTrace)
//	/debug/vars    standard expvar page (includes the crc_metrics snapshot)
//	/debug/pprof/  the standard Go profiling endpoints
//
// Callers may register additional routes on the returned mux (cmd/crcbench
// adds /decisions with the compiler's cost–benefit ledger). Serving the
// mux does not enable instrumentation by itself; call Enable.
func Handler() *http.ServeMux {
	PublishExpvar()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, Default())
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = WriteJSON(w, Default())
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = WriteTraces(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
