package obs

import (
	"bytes"
	"encoding/json"
	"expvar"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// testRegistry builds a private registry with one metric of each kind and
// deterministic values, for the exporter golden tests.
func testRegistry() *Registry {
	r := NewRegistry()
	c := r.Counter("crc_probes_total", "reuse-table probes")
	c.Add(41)
	c.Inc()
	occ := r.Gauge(`crc_table_occupancy{table="quan"}`, "resident entries per table")
	occ.Set(129)
	g := r.Gauge("crc_resident_entries", "resident entries across live tables")
	g.Add(7)
	g.Add(-2)
	h := r.Histogram("crc_probe_latency_ns", "probe latency", []int64{16, 64, 256})
	for _, v := range []int64{3, 17, 64, 65, 1000} {
		h.Observe(v)
	}
	return r
}

const goldenPrometheus = `# HELP crc_probes_total reuse-table probes
# TYPE crc_probes_total counter
crc_probes_total 42
# HELP crc_resident_entries resident entries across live tables
# TYPE crc_resident_entries gauge
crc_resident_entries 5
# HELP crc_table_occupancy resident entries per table
# TYPE crc_table_occupancy gauge
crc_table_occupancy{table="quan"} 129
# HELP crc_probe_latency_ns probe latency
# TYPE crc_probe_latency_ns histogram
crc_probe_latency_ns_bucket{le="16"} 1
crc_probe_latency_ns_bucket{le="64"} 3
crc_probe_latency_ns_bucket{le="256"} 4
crc_probe_latency_ns_bucket{le="+Inf"} 5
crc_probe_latency_ns_sum 1149
crc_probe_latency_ns_count 5
`

func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	WritePrometheus(&buf, testRegistry())
	if got := buf.String(); got != goldenPrometheus {
		t.Errorf("prometheus export mismatch:\n--- got ---\n%s--- want ---\n%s", got, goldenPrometheus)
	}
}

func TestJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, testRegistry()); err != nil {
		t.Fatal(err)
	}
	var s RegistrySnapshot
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if s.Counters["crc_probes_total"] != 42 {
		t.Errorf("counter = %d, want 42", s.Counters["crc_probes_total"])
	}
	if s.Gauges[`crc_table_occupancy{table="quan"}`] != 129 {
		t.Errorf("labeled gauge = %d, want 129", s.Gauges[`crc_table_occupancy{table="quan"}`])
	}
	h := s.Histograms["crc_probe_latency_ns"]
	if h.Count != 5 || h.Sum != 1149 {
		t.Errorf("histogram count/sum = %d/%d, want 5/1149", h.Count, h.Sum)
	}
	wantBuckets := []int64{1, 2, 1, 1}
	if len(h.Buckets) != len(wantBuckets) {
		t.Fatalf("buckets = %v, want %v", h.Buckets, wantBuckets)
	}
	for i, w := range wantBuckets {
		if h.Buckets[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, h.Buckets[i], w)
		}
	}
}

func TestExpvarPublishes(t *testing.T) {
	NewCounter("crc_expvar_probe_total", "test counter").Add(3)
	PublishExpvar()
	v := expvar.Get("crc_metrics")
	if v == nil {
		t.Fatal("crc_metrics not published")
	}
	var s RegistrySnapshot
	if err := json.Unmarshal([]byte(v.String()), &s); err != nil {
		t.Fatalf("expvar value is not a snapshot: %v", err)
	}
	if s.Counters["crc_expvar_probe_total"] != 3 {
		t.Errorf("expvar counter = %d, want 3", s.Counters["crc_expvar_probe_total"])
	}
	// Publishing twice must not panic (expvar panics on duplicate names).
	PublishExpvar()
}

func TestRegistryIdempotentByName(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x", "first")
	b := r.Counter("x", "second")
	if a != b {
		t.Error("same-name counters must be shared")
	}
	h1 := r.Histogram("h", "", []int64{1, 2})
	h2 := r.Histogram("h", "", []int64{9})
	if h1 != h2 {
		t.Error("same-name histograms must be shared")
	}
	if len(h2.bounds) != 2 {
		t.Error("bounds are fixed at creation")
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("edges", "", []int64{10, 20})
	h.Observe(10) // inclusive upper bound → first bucket
	h.Observe(11)
	h.Observe(21) // +Inf bucket
	s := h.Snapshot()
	want := []int64{1, 1, 1}
	for i, w := range want {
		if s.Buckets[i] != w {
			t.Errorf("bucket %d = %d, want %d (%v)", i, s.Buckets[i], w, s.Buckets)
		}
	}
}

func TestEnableDisable(t *testing.T) {
	defer Disable()
	if On() {
		t.Fatal("instrumentation must start disabled")
	}
	Enable()
	if !On() {
		t.Fatal("Enable did not take")
	}
	Disable()
	if On() {
		t.Fatal("Disable did not take")
	}
}

// TestConcurrentHammer updates every metric kind from 8 goroutines while
// two exporters scrape the registry. Run under -race this is the data-race
// proof for the whole metrics core.
func TestConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hammer_total", "")
	g := r.Gauge("hammer_gauge", "")
	h := r.Histogram("hammer_latency_ns", "", LatencyBuckets)
	const workers = 8
	const opsPer = 5000

	stop := make(chan struct{})
	var scrapes sync.WaitGroup
	for _, export := range []func(){
		func() { WritePrometheus(&bytes.Buffer{}, r) },
		func() { _ = WriteJSON(&bytes.Buffer{}, r) },
	} {
		export := export
		scrapes.Add(1)
		go func() {
			defer scrapes.Done()
			for {
				select {
				case <-stop:
					return
				default:
					export()
				}
			}
		}()
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := int64(0); i < opsPer; i++ {
				c.Inc()
				g.Add(1)
				h.Observe((seed*opsPer + i) % 5000)
				g.Add(-1)
			}
		}(int64(w))
	}
	wg.Wait()
	close(stop)
	scrapes.Wait()

	if c.Value() != workers*opsPer {
		t.Errorf("counter = %d, want %d", c.Value(), workers*opsPer)
	}
	if g.Value() != 0 {
		t.Errorf("gauge = %d, want 0", g.Value())
	}
	if h.Count() != workers*opsPer {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*opsPer)
	}
	s := h.Snapshot()
	var total int64
	for _, b := range s.Buckets {
		total += b
	}
	if total != h.Count() {
		t.Errorf("bucket total %d != count %d", total, h.Count())
	}
}

func TestHandlerEndpoints(t *testing.T) {
	mux := Handler()
	for path, want := range map[string]string{
		"/metrics":      "# TYPE",
		"/metrics.json": `"counters"`,
		"/debug/vars":   "crc_metrics",
	} {
		req := httptest.NewRequest("GET", path, nil)
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		if rec.Code != 200 {
			t.Errorf("%s: status %d", path, rec.Code)
		}
		if !strings.Contains(rec.Body.String(), want) {
			t.Errorf("%s: body missing %q:\n%.400s", path, want, rec.Body.String())
		}
	}
	// pprof index renders without starting a profile.
	req := httptest.NewRequest("GET", "/debug/pprof/", nil)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "goroutine") {
		t.Errorf("/debug/pprof/: status %d", rec.Code)
	}
}

// TestDisabledCheckUnder2ns asserts the whole cost added to an
// instrumentation-disabled hot path — the single On() atomic load — stays
// under 2 ns/op. Skipped under the race detector, whose instrumentation
// inflates every atomic op far past the budget.
func TestDisabledCheckUnder2ns(t *testing.T) {
	if RaceEnabled {
		t.Skip("timing assertion is meaningless under -race")
	}
	if testing.Short() {
		t.Skip("timing test")
	}
	Disable()
	res := testing.Benchmark(func(b *testing.B) {
		n := 0
		for i := 0; i < b.N; i++ {
			if On() {
				n++
			}
		}
		if n != 0 {
			b.Fatal("instrumentation unexpectedly enabled")
		}
	})
	perOp := float64(res.T.Nanoseconds()) / float64(res.N)
	t.Logf("disabled-path check: %.3f ns/op", perOp)
	if perOp > 2.0 {
		t.Errorf("disabled-instrumentation check costs %.2f ns/op, budget is 2 ns", perOp)
	}
}

func BenchmarkDisabledCheck(b *testing.B) {
	Disable()
	for i := 0; i < b.N; i++ {
		if On() {
			b.Fatal("enabled")
		}
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_latency_ns", "", LatencyBuckets)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i & 8191))
	}
}
