// Package obs is the observability layer of the reuse system: an
// allocation-free metrics core (atomic counters, gauges, and fixed-bucket
// histograms) behind a package-level enable flag, with exporters for the
// Prometheus text format, expvar, and JSON snapshots, and an http.Handler
// serving them live.
//
// The paper's scheme is driven entirely by observed quantities — instance
// count N, distinct input patterns N_ds, reuse rate R, granularity C,
// hashing overhead O, and the gain R·C − O — and this package makes the
// runtime side of those quantities visible while a system serves traffic:
// probe latencies, key sizes, hit/miss/collision/eviction counts, and
// table occupancy.
//
// Cost discipline: instrumentation is off by default, and every
// instrumented hot path checks On() exactly once — a single atomic load —
// before doing any metric work. Metric updates themselves are single
// atomic adds; Observe on a histogram is a small linear bucket scan plus
// three atomic adds, with no allocation. Metrics are registered at package
// init time, so the exporters always list the full metric set even before
// instrumentation is enabled.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// on is the global instrumentation switch. The disabled fast path of every
// instrumented call site is exactly one atomic load of this flag.
var on atomic.Bool

// Enable turns instrumentation on.
func Enable() { on.Store(true) }

// Disable turns instrumentation off.
func Disable() { on.Store(false) }

// On reports whether instrumentation is enabled. Hot paths call this once
// and skip all metric work when it returns false.
func On() bool { return on.Load() }

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	name string
	help string
	v    atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for Prometheus semantics).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Name returns the registered metric name.
func (c *Counter) Name() string { return c.name }

// Gauge is an atomic instantaneous value.
type Gauge struct {
	name string
	help string
	v    atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (possibly negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Name returns the registered metric name.
func (g *Gauge) Name() string { return g.name }

// Histogram is a fixed-bucket cumulative histogram. Bounds are inclusive
// upper bounds in ascending order; an implicit +Inf bucket catches the
// rest. Observe is allocation-free: a linear scan over the (small) bounds
// slice and three atomic adds.
type Histogram struct {
	name   string
	help   string
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	sum    atomic.Int64
	count  atomic.Int64
	// Exemplar: the largest traced observation, so outliers in the
	// histogram are clickable in /traces. exVal is monotonic via CAS;
	// exTrace is stored after a successful raise and may briefly pair
	// with a newer value under a racing raise — acceptable for a
	// diagnostic pointer, and it always names a real traced sample.
	exVal   atomic.Int64
	exTrace atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// ObserveTraced records one sample and, when trace is nonzero and v is
// the largest traced value seen so far, remembers trace as the
// histogram's exemplar. Cost on the untraced path (trace == 0) is
// identical to Observe plus one predictable branch.
func (h *Histogram) ObserveTraced(v int64, trace uint64) {
	h.Observe(v)
	if trace == 0 {
		return
	}
	for {
		cur := h.exVal.Load()
		if v < cur {
			return
		}
		if h.exVal.CompareAndSwap(cur, v) {
			h.exTrace.Store(trace)
			return
		}
	}
}

// Exemplar returns the largest traced observation and its trace id
// (both zero when no traced sample has been recorded).
func (h *Histogram) Exemplar() (val int64, trace uint64) {
	return h.exVal.Load(), h.exTrace.Load()
}

// Name returns the registered metric name.
func (h *Histogram) Name() string { return h.name }

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// HistogramSnapshot is a consistent-enough copy of a histogram for export.
// Each field is loaded atomically in the reverse of Observe's write order
// (count, then sum, then buckets, against Observe's bucket→sum→count), so
// for every observation included in Count, Sum and the buckets already
// include it too: Count ≤ Σ Buckets always holds, and Sum covers at least
// the counted observations. A concurrent Observe can at worst appear in a
// bucket but not yet in sum/count; the values agree exactly once the
// writers are quiescent.
type HistogramSnapshot struct {
	// Bounds are the inclusive upper bounds; the final +Inf bucket is
	// implicit (Buckets has one more element than Bounds).
	Bounds []int64 `json:"bounds"`
	// Buckets are per-bucket (non-cumulative) observation counts.
	Buckets []int64 `json:"buckets"`
	Sum     int64   `json:"sum"`
	Count   int64   `json:"count"`
	// ExemplarVal/ExemplarTrace are the largest traced observation and
	// its trace id (see Histogram.ObserveTraced); zero when untraced.
	ExemplarVal   int64  `json:"exemplar_val,omitempty"`
	ExemplarTrace uint64 `json:"exemplar_trace,omitempty"`
}

// Snapshot copies the histogram's current state. Read order is the
// reverse of Observe's write order — see HistogramSnapshot.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds:  h.bounds,
		Buckets: make([]int64, len(h.counts)),
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	for i := range h.counts {
		s.Buckets[i] = h.counts[i].Load()
	}
	s.ExemplarVal, s.ExemplarTrace = h.Exemplar()
	return s
}

// Registry holds named metrics. The zero value is not usable; call
// NewRegistry. Registration is idempotent by name (GetOrCreate), so
// packages may re-register under the same name and share the instance.
//
// Names follow the Prometheus convention and may carry a fixed label
// suffix, e.g. `crc_table_occupancy{table="quan"}`; exporters treat the
// part before '{' as the metric family name.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// defaultRegistry is the process-wide registry used by the package-level
// constructors and the exporters' convenience entry points.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{name: name, help: help}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{name: name, help: help}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it on first use with the
// given bucket upper bounds (ascending; an implicit +Inf bucket is added).
// Bounds are fixed at creation; a later call with different bounds returns
// the existing histogram unchanged.
func (r *Registry) Histogram(name, help string, bounds []int64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		return h
	}
	b := append([]int64(nil), bounds...)
	h := &Histogram{name: name, help: help, bounds: b, counts: make([]atomic.Int64, len(b)+1)}
	r.histograms[name] = h
	return h
}

// NewCounter registers a counter in the default registry.
func NewCounter(name, help string) *Counter { return defaultRegistry.Counter(name, help) }

// NewGauge registers a gauge in the default registry.
func NewGauge(name, help string) *Gauge { return defaultRegistry.Gauge(name, help) }

// NewHistogram registers a histogram in the default registry.
func NewHistogram(name, help string, bounds []int64) *Histogram {
	return defaultRegistry.Histogram(name, help, bounds)
}

// sortedNames returns map keys in lexical order (export determinism).
func sortedNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// visit walks the registry's metrics in deterministic (sorted-name) order
// under the read lock.
func (r *Registry) visit(counter func(*Counter), gauge func(*Gauge), hist func(*Histogram)) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, n := range sortedNames(r.counters) {
		counter(r.counters[n])
	}
	for _, n := range sortedNames(r.gauges) {
		gauge(r.gauges[n])
	}
	for _, n := range sortedNames(r.histograms) {
		hist(r.histograms[n])
	}
}

// LatencyBuckets are the default probe-latency histogram bounds in
// nanoseconds: 16 ns up to ~65 µs in powers of two. A hash-table probe on
// a modern core lands in the low buckets; lock contention, cache misses
// and singleflight waits push samples up the range.
var LatencyBuckets = []int64{16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 65536}

// SizeBuckets are the default key/value size histogram bounds in bytes.
// The paper's fast path is "hash key not greater than 32 bits" (4 bytes);
// GNU Go's merged tables use 16-byte keys; UNEPIC's image rows run wider.
var SizeBuckets = []int64{4, 8, 16, 32, 64, 128, 256, 1024}
